# Empty compiler generated dependencies file for bench_video_pipeline.
# This may be replaced when dependencies are built.
