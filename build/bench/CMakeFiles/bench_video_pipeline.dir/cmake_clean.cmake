file(REMOVE_RECURSE
  "CMakeFiles/bench_video_pipeline.dir/bench_video_pipeline.cpp.o"
  "CMakeFiles/bench_video_pipeline.dir/bench_video_pipeline.cpp.o.d"
  "bench_video_pipeline"
  "bench_video_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_video_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
