# Empty compiler generated dependencies file for bench_muting.
# This may be replaced when dependencies are built.
