file(REMOVE_RECURSE
  "CMakeFiles/bench_muting.dir/bench_muting.cpp.o"
  "CMakeFiles/bench_muting.dir/bench_muting.cpp.o.d"
  "bench_muting"
  "bench_muting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_muting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
