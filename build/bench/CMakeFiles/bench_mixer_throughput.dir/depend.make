# Empty dependencies file for bench_mixer_throughput.
# This may be replaced when dependencies are built.
