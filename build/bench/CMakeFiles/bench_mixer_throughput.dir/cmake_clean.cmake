file(REMOVE_RECURSE
  "CMakeFiles/bench_mixer_throughput.dir/bench_mixer_throughput.cpp.o"
  "CMakeFiles/bench_mixer_throughput.dir/bench_mixer_throughput.cpp.o.d"
  "bench_mixer_throughput"
  "bench_mixer_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixer_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
