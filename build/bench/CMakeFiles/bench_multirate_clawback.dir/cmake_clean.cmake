file(REMOVE_RECURSE
  "CMakeFiles/bench_multirate_clawback.dir/bench_multirate_clawback.cpp.o"
  "CMakeFiles/bench_multirate_clawback.dir/bench_multirate_clawback.cpp.o.d"
  "bench_multirate_clawback"
  "bench_multirate_clawback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multirate_clawback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
