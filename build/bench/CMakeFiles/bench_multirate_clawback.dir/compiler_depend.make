# Empty compiler generated dependencies file for bench_multirate_clawback.
# This may be replaced when dependencies are built.
