file(REMOVE_RECURSE
  "CMakeFiles/bench_splitting.dir/bench_splitting.cpp.o"
  "CMakeFiles/bench_splitting.dir/bench_splitting.cpp.o.d"
  "bench_splitting"
  "bench_splitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_splitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
