# Empty dependencies file for bench_medusa.
# This may be replaced when dependencies are built.
