file(REMOVE_RECURSE
  "CMakeFiles/bench_medusa.dir/bench_medusa.cpp.o"
  "CMakeFiles/bench_medusa.dir/bench_medusa.cpp.o.d"
  "bench_medusa"
  "bench_medusa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_medusa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
