file(REMOVE_RECURSE
  "CMakeFiles/bench_clawback_convergence.dir/bench_clawback_convergence.cpp.o"
  "CMakeFiles/bench_clawback_convergence.dir/bench_clawback_convergence.cpp.o.d"
  "bench_clawback_convergence"
  "bench_clawback_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clawback_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
