# Empty compiler generated dependencies file for bench_clawback_convergence.
# This may be replaced when dependencies are built.
