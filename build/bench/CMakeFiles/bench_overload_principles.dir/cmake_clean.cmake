file(REMOVE_RECURSE
  "CMakeFiles/bench_overload_principles.dir/bench_overload_principles.cpp.o"
  "CMakeFiles/bench_overload_principles.dir/bench_overload_principles.cpp.o.d"
  "bench_overload_principles"
  "bench_overload_principles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overload_principles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
