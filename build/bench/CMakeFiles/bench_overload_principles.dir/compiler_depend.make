# Empty compiler generated dependencies file for bench_overload_principles.
# This may be replaced when dependencies are built.
