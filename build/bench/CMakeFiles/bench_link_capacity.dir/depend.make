# Empty dependencies file for bench_link_capacity.
# This may be replaced when dependencies are built.
