file(REMOVE_RECURSE
  "CMakeFiles/bench_link_capacity.dir/bench_link_capacity.cpp.o"
  "CMakeFiles/bench_link_capacity.dir/bench_link_capacity.cpp.o.d"
  "bench_link_capacity"
  "bench_link_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_link_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
