file(REMOVE_RECURSE
  "CMakeFiles/bench_superjanet.dir/bench_superjanet.cpp.o"
  "CMakeFiles/bench_superjanet.dir/bench_superjanet.cpp.o.d"
  "bench_superjanet"
  "bench_superjanet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_superjanet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
