# Empty dependencies file for bench_superjanet.
# This may be replaced when dependencies are built.
