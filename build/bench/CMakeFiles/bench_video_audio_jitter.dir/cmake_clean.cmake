file(REMOVE_RECURSE
  "CMakeFiles/bench_video_audio_jitter.dir/bench_video_audio_jitter.cpp.o"
  "CMakeFiles/bench_video_audio_jitter.dir/bench_video_audio_jitter.cpp.o.d"
  "bench_video_audio_jitter"
  "bench_video_audio_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_video_audio_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
