# Empty compiler generated dependencies file for bench_video_audio_jitter.
# This may be replaced when dependencies are built.
