file(REMOVE_RECURSE
  "CMakeFiles/bench_segment_overhead.dir/bench_segment_overhead.cpp.o"
  "CMakeFiles/bench_segment_overhead.dir/bench_segment_overhead.cpp.o.d"
  "bench_segment_overhead"
  "bench_segment_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_segment_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
