# Empty compiler generated dependencies file for bench_segment_overhead.
# This may be replaced when dependencies are built.
