# Empty compiler generated dependencies file for medusa_studio.
# This may be replaced when dependencies are built.
