file(REMOVE_RECURSE
  "CMakeFiles/medusa_studio.dir/medusa_studio.cpp.o"
  "CMakeFiles/medusa_studio.dir/medusa_studio.cpp.o.d"
  "medusa_studio"
  "medusa_studio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medusa_studio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
