file(REMOVE_RECURSE
  "CMakeFiles/tannoy.dir/tannoy.cpp.o"
  "CMakeFiles/tannoy.dir/tannoy.cpp.o.d"
  "tannoy"
  "tannoy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tannoy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
