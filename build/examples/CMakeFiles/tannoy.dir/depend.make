# Empty dependencies file for tannoy.
# This may be replaced when dependencies are built.
