# Empty compiler generated dependencies file for videomail.
# This may be replaced when dependencies are built.
