file(REMOVE_RECURSE
  "CMakeFiles/videomail.dir/videomail.cpp.o"
  "CMakeFiles/videomail.dir/videomail.cpp.o.d"
  "videomail"
  "videomail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/videomail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
