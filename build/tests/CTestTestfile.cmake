# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/segment_test[1]_include.cmake")
include("/root/repo/build/tests/control_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_test[1]_include.cmake")
include("/root/repo/build/tests/audio_test[1]_include.cmake")
include("/root/repo/build/tests/video_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/repository_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/principles_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_stress_test[1]_include.cmake")
include("/root/repo/build/tests/medusa_test[1]_include.cmake")
include("/root/repo/build/tests/wire_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/contention_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
