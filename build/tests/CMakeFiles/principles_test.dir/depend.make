# Empty dependencies file for principles_test.
# This may be replaced when dependencies are built.
