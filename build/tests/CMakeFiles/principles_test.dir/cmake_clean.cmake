file(REMOVE_RECURSE
  "CMakeFiles/principles_test.dir/principles_test.cc.o"
  "CMakeFiles/principles_test.dir/principles_test.cc.o.d"
  "principles_test"
  "principles_test.pdb"
  "principles_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/principles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
