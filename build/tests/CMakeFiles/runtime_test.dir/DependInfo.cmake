
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime_test.cc" "tests/CMakeFiles/runtime_test.dir/runtime_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pandora_core.dir/DependInfo.cmake"
  "/root/repo/build/src/medusa/CMakeFiles/pandora_medusa.dir/DependInfo.cmake"
  "/root/repo/build/src/repository/CMakeFiles/pandora_repository.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/pandora_server.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pandora_net.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/pandora_video.dir/DependInfo.cmake"
  "/root/repo/build/src/audio/CMakeFiles/pandora_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/pandora_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/pandora_control.dir/DependInfo.cmake"
  "/root/repo/build/src/segment/CMakeFiles/pandora_segment.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pandora_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
