file(REMOVE_RECURSE
  "CMakeFiles/medusa_test.dir/medusa_test.cc.o"
  "CMakeFiles/medusa_test.dir/medusa_test.cc.o.d"
  "medusa_test"
  "medusa_test.pdb"
  "medusa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medusa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
