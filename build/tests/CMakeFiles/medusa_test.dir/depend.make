# Empty dependencies file for medusa_test.
# This may be replaced when dependencies are built.
