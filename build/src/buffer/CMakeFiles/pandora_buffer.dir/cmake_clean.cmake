file(REMOVE_RECURSE
  "CMakeFiles/pandora_buffer.dir/clawback.cc.o"
  "CMakeFiles/pandora_buffer.dir/clawback.cc.o.d"
  "CMakeFiles/pandora_buffer.dir/decoupling.cc.o"
  "CMakeFiles/pandora_buffer.dir/decoupling.cc.o.d"
  "CMakeFiles/pandora_buffer.dir/pool.cc.o"
  "CMakeFiles/pandora_buffer.dir/pool.cc.o.d"
  "libpandora_buffer.a"
  "libpandora_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
