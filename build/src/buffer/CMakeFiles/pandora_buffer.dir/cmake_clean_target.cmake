file(REMOVE_RECURSE
  "libpandora_buffer.a"
)
