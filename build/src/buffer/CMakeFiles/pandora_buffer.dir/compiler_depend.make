# Empty compiler generated dependencies file for pandora_buffer.
# This may be replaced when dependencies are built.
