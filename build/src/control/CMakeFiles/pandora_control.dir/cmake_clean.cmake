file(REMOVE_RECURSE
  "CMakeFiles/pandora_control.dir/report.cc.o"
  "CMakeFiles/pandora_control.dir/report.cc.o.d"
  "libpandora_control.a"
  "libpandora_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
