file(REMOVE_RECURSE
  "libpandora_control.a"
)
