# Empty compiler generated dependencies file for pandora_control.
# This may be replaced when dependencies are built.
