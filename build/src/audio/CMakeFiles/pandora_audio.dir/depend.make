# Empty dependencies file for pandora_audio.
# This may be replaced when dependencies are built.
