
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audio/codec.cc" "src/audio/CMakeFiles/pandora_audio.dir/codec.cc.o" "gcc" "src/audio/CMakeFiles/pandora_audio.dir/codec.cc.o.d"
  "/root/repo/src/audio/mixer.cc" "src/audio/CMakeFiles/pandora_audio.dir/mixer.cc.o" "gcc" "src/audio/CMakeFiles/pandora_audio.dir/mixer.cc.o.d"
  "/root/repo/src/audio/muting.cc" "src/audio/CMakeFiles/pandora_audio.dir/muting.cc.o" "gcc" "src/audio/CMakeFiles/pandora_audio.dir/muting.cc.o.d"
  "/root/repo/src/audio/receiver.cc" "src/audio/CMakeFiles/pandora_audio.dir/receiver.cc.o" "gcc" "src/audio/CMakeFiles/pandora_audio.dir/receiver.cc.o.d"
  "/root/repo/src/audio/sender.cc" "src/audio/CMakeFiles/pandora_audio.dir/sender.cc.o" "gcc" "src/audio/CMakeFiles/pandora_audio.dir/sender.cc.o.d"
  "/root/repo/src/audio/signal.cc" "src/audio/CMakeFiles/pandora_audio.dir/signal.cc.o" "gcc" "src/audio/CMakeFiles/pandora_audio.dir/signal.cc.o.d"
  "/root/repo/src/audio/ulaw.cc" "src/audio/CMakeFiles/pandora_audio.dir/ulaw.cc.o" "gcc" "src/audio/CMakeFiles/pandora_audio.dir/ulaw.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/buffer/CMakeFiles/pandora_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/pandora_control.dir/DependInfo.cmake"
  "/root/repo/build/src/segment/CMakeFiles/pandora_segment.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pandora_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
