file(REMOVE_RECURSE
  "libpandora_audio.a"
)
