file(REMOVE_RECURSE
  "CMakeFiles/pandora_audio.dir/codec.cc.o"
  "CMakeFiles/pandora_audio.dir/codec.cc.o.d"
  "CMakeFiles/pandora_audio.dir/mixer.cc.o"
  "CMakeFiles/pandora_audio.dir/mixer.cc.o.d"
  "CMakeFiles/pandora_audio.dir/muting.cc.o"
  "CMakeFiles/pandora_audio.dir/muting.cc.o.d"
  "CMakeFiles/pandora_audio.dir/receiver.cc.o"
  "CMakeFiles/pandora_audio.dir/receiver.cc.o.d"
  "CMakeFiles/pandora_audio.dir/sender.cc.o"
  "CMakeFiles/pandora_audio.dir/sender.cc.o.d"
  "CMakeFiles/pandora_audio.dir/signal.cc.o"
  "CMakeFiles/pandora_audio.dir/signal.cc.o.d"
  "CMakeFiles/pandora_audio.dir/ulaw.cc.o"
  "CMakeFiles/pandora_audio.dir/ulaw.cc.o.d"
  "libpandora_audio.a"
  "libpandora_audio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
