file(REMOVE_RECURSE
  "CMakeFiles/pandora_video.dir/capture.cc.o"
  "CMakeFiles/pandora_video.dir/capture.cc.o.d"
  "CMakeFiles/pandora_video.dir/display.cc.o"
  "CMakeFiles/pandora_video.dir/display.cc.o.d"
  "CMakeFiles/pandora_video.dir/dpcm.cc.o"
  "CMakeFiles/pandora_video.dir/dpcm.cc.o.d"
  "CMakeFiles/pandora_video.dir/framestore.cc.o"
  "CMakeFiles/pandora_video.dir/framestore.cc.o.d"
  "libpandora_video.a"
  "libpandora_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
