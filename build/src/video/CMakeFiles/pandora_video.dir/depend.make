# Empty dependencies file for pandora_video.
# This may be replaced when dependencies are built.
