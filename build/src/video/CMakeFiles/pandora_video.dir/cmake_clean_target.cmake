file(REMOVE_RECURSE
  "libpandora_video.a"
)
