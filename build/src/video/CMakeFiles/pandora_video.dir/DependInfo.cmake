
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/capture.cc" "src/video/CMakeFiles/pandora_video.dir/capture.cc.o" "gcc" "src/video/CMakeFiles/pandora_video.dir/capture.cc.o.d"
  "/root/repo/src/video/display.cc" "src/video/CMakeFiles/pandora_video.dir/display.cc.o" "gcc" "src/video/CMakeFiles/pandora_video.dir/display.cc.o.d"
  "/root/repo/src/video/dpcm.cc" "src/video/CMakeFiles/pandora_video.dir/dpcm.cc.o" "gcc" "src/video/CMakeFiles/pandora_video.dir/dpcm.cc.o.d"
  "/root/repo/src/video/framestore.cc" "src/video/CMakeFiles/pandora_video.dir/framestore.cc.o" "gcc" "src/video/CMakeFiles/pandora_video.dir/framestore.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/buffer/CMakeFiles/pandora_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/pandora_control.dir/DependInfo.cmake"
  "/root/repo/build/src/segment/CMakeFiles/pandora_segment.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pandora_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
