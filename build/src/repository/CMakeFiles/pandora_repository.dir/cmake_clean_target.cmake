file(REMOVE_RECURSE
  "libpandora_repository.a"
)
