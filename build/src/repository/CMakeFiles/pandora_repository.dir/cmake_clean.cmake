file(REMOVE_RECURSE
  "CMakeFiles/pandora_repository.dir/repository.cc.o"
  "CMakeFiles/pandora_repository.dir/repository.cc.o.d"
  "libpandora_repository.a"
  "libpandora_repository.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_repository.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
