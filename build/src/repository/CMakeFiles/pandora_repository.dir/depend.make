# Empty dependencies file for pandora_repository.
# This may be replaced when dependencies are built.
