file(REMOVE_RECURSE
  "libpandora_runtime.a"
)
