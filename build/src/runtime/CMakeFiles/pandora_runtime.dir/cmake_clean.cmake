file(REMOVE_RECURSE
  "CMakeFiles/pandora_runtime.dir/alt.cc.o"
  "CMakeFiles/pandora_runtime.dir/alt.cc.o.d"
  "CMakeFiles/pandora_runtime.dir/scheduler.cc.o"
  "CMakeFiles/pandora_runtime.dir/scheduler.cc.o.d"
  "libpandora_runtime.a"
  "libpandora_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
