# Empty dependencies file for pandora_runtime.
# This may be replaced when dependencies are built.
