# Empty compiler generated dependencies file for pandora_medusa.
# This may be replaced when dependencies are built.
