file(REMOVE_RECURSE
  "libpandora_medusa.a"
)
