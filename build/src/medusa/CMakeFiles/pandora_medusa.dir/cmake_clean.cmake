file(REMOVE_RECURSE
  "CMakeFiles/pandora_medusa.dir/devices.cc.o"
  "CMakeFiles/pandora_medusa.dir/devices.cc.o.d"
  "libpandora_medusa.a"
  "libpandora_medusa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_medusa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
