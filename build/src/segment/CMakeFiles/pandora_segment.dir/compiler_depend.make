# Empty compiler generated dependencies file for pandora_segment.
# This may be replaced when dependencies are built.
