file(REMOVE_RECURSE
  "CMakeFiles/pandora_segment.dir/repack.cc.o"
  "CMakeFiles/pandora_segment.dir/repack.cc.o.d"
  "CMakeFiles/pandora_segment.dir/segment.cc.o"
  "CMakeFiles/pandora_segment.dir/segment.cc.o.d"
  "CMakeFiles/pandora_segment.dir/wire.cc.o"
  "CMakeFiles/pandora_segment.dir/wire.cc.o.d"
  "libpandora_segment.a"
  "libpandora_segment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_segment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
