
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/segment/repack.cc" "src/segment/CMakeFiles/pandora_segment.dir/repack.cc.o" "gcc" "src/segment/CMakeFiles/pandora_segment.dir/repack.cc.o.d"
  "/root/repo/src/segment/segment.cc" "src/segment/CMakeFiles/pandora_segment.dir/segment.cc.o" "gcc" "src/segment/CMakeFiles/pandora_segment.dir/segment.cc.o.d"
  "/root/repo/src/segment/wire.cc" "src/segment/CMakeFiles/pandora_segment.dir/wire.cc.o" "gcc" "src/segment/CMakeFiles/pandora_segment.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/pandora_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
