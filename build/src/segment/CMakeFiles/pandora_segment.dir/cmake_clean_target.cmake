file(REMOVE_RECURSE
  "libpandora_segment.a"
)
