file(REMOVE_RECURSE
  "CMakeFiles/pandora_net.dir/atm.cc.o"
  "CMakeFiles/pandora_net.dir/atm.cc.o.d"
  "libpandora_net.a"
  "libpandora_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
