file(REMOVE_RECURSE
  "libpandora_net.a"
)
