# Empty dependencies file for pandora_net.
# This may be replaced when dependencies are built.
