# Empty dependencies file for pandora_core.
# This may be replaced when dependencies are built.
