file(REMOVE_RECURSE
  "CMakeFiles/pandora_core.dir/box.cc.o"
  "CMakeFiles/pandora_core.dir/box.cc.o.d"
  "CMakeFiles/pandora_core.dir/simulation.cc.o"
  "CMakeFiles/pandora_core.dir/simulation.cc.o.d"
  "libpandora_core.a"
  "libpandora_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
