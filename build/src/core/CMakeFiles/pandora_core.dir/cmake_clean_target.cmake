file(REMOVE_RECURSE
  "libpandora_core.a"
)
