file(REMOVE_RECURSE
  "libpandora_server.a"
)
