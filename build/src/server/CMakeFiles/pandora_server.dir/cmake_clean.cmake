file(REMOVE_RECURSE
  "CMakeFiles/pandora_server.dir/netio.cc.o"
  "CMakeFiles/pandora_server.dir/netio.cc.o.d"
  "CMakeFiles/pandora_server.dir/switch.cc.o"
  "CMakeFiles/pandora_server.dir/switch.cc.o.d"
  "libpandora_server.a"
  "libpandora_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
