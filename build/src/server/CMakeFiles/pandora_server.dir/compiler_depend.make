# Empty compiler generated dependencies file for pandora_server.
# This may be replaced when dependencies are built.
