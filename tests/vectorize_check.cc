// Probe TU for the mix-kernel vectorization gate (tests/vectorize_check.cmake).
//
// Instantiates the separable mix passes exactly as the mixer's tick does
// (compile-time trip count kAudioBlockSamples).  The gate compiles this TU
// with the production optimization level plus -fopt-info-vec-optimized and
// fails if the vector reports for the arithmetic passes (AccumulateBlock,
// ClampBlock) disappear — e.g. if someone reintroduces a loop-carried
// dependency or an aliasing escape into the kernels.
#include "src/audio/mix_kernels.h"
#include "src/segment/constants.h"

namespace pandora {

void VectorizeProbe(const uint8_t* ulaw, int16_t* linear, int32_t* acc, int16_t* clamped,
                    uint8_t* out) {
  ULawDecodeBlock<kAudioBlockSamples>(ulaw, linear);
  AccumulateBlock<kAudioBlockSamples>(linear, acc);
  ClampBlock<kAudioBlockSamples>(acc, clamped);
  ULawEncodeBlock<kAudioBlockSamples>(clamped, out);
}

}  // namespace pandora
