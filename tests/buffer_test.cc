// Tests for the buffer subsystem: reference-counted pool, decoupling
// buffers with the ready-channel protocol, and clawback buffers (paper
// sections 3.4 and 3.7).
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/buffer/clawback.h"
#include "src/buffer/decoupling.h"
#include "src/buffer/pool.h"
#include "src/control/command.h"
#include "src/control/report.h"
#include "src/runtime/channel.h"
#include "src/runtime/scheduler.h"
#include "src/segment/audio_block.h"
#include "src/segment/segment.h"

namespace pandora {
namespace {

SegmentRef MakeRef(BufferPool* pool, uint32_t sequence) {
  auto ref = pool->TryAllocate();
  EXPECT_TRUE(ref.has_value());
  **ref = MakeAudioSegment(1, sequence, 0, std::vector<uint8_t>(32, 0));
  return std::move(*ref);
}

AudioBlock MakeBlock(uint8_t fill = 0) {
  AudioBlock block;
  block.samples.fill(fill);
  return block;
}

// --- BufferPool ------------------------------------------------------------

TEST(BufferPoolTest, AllocateAndReleaseRoundTrip) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 4);
  EXPECT_EQ(pool.free_count(), 4u);
  {
    auto ref = pool.TryAllocate();
    ASSERT_TRUE(ref.has_value());
    EXPECT_EQ(pool.free_count(), 3u);
    EXPECT_EQ(pool.RefCount(ref->index()), 1);
  }
  EXPECT_EQ(pool.free_count(), 4u);
  EXPECT_EQ(pool.allocations(), 1u);
}

TEST(BufferPoolTest, DupSharesBufferUntilBothReleased) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 2);
  auto a = pool.TryAllocate();
  ASSERT_TRUE(a.has_value());
  (*a)->stream = 42;
  SegmentRef b = a->Dup();
  EXPECT_EQ(pool.RefCount(a->index()), 2);
  EXPECT_EQ(b->stream, 42u);
  EXPECT_EQ(b.get(), a->get());  // same underlying buffer
  a->Reset();
  EXPECT_EQ(pool.free_count(), 1u);  // still held by b
  b.Reset();
  EXPECT_EQ(pool.free_count(), 2u);
}

TEST(BufferPoolTest, MovePassesReferenceWithoutCountChange) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 2);
  auto a = pool.TryAllocate();
  int32_t index = a->index();
  SegmentRef b = std::move(*a);
  EXPECT_FALSE(static_cast<bool>(*a));
  EXPECT_EQ(pool.RefCount(index), 1);
  b.Reset();
  EXPECT_EQ(pool.free_count(), 2u);
}

TEST(BufferPoolTest, StarvationParksRequesterAndReports) {
  Scheduler sched;
  ReportCollector reports;
  BufferPool pool(&sched, "pool", 1, &reports);
  ShutdownGuard guard(&sched);

  std::vector<int> got;
  auto hog = [](Scheduler* s, BufferPool* p, std::vector<int>* got) -> Process {
    SegmentRef first = co_await p->Allocate();
    got->push_back(1);
    co_await s->WaitFor(Millis(5));
    first.Reset();  // frees the buffer; handoff wakes the waiter
    co_await s->WaitFor(Millis(5));
  };
  auto waiter = [](BufferPool* p, std::vector<int>* got) -> Process {
    SegmentRef ref = co_await p->Allocate();  // parks: pool is empty
    got->push_back(2);
  };
  sched.Spawn(hog(&sched, &pool, &got), "hog");
  sched.Spawn(waiter(&pool, &got), "waiter");
  sched.RunUntilQuiescent();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[1], 2);
  EXPECT_EQ(pool.starvation_events(), 1u);
  EXPECT_EQ(reports.CountOf("allocator.starved"), 1u);
}

TEST(BufferPoolTest, TryAllocateFailsWhenEmptyWithoutBlocking) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 1);
  auto a = pool.TryAllocate();
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(pool.TryAllocate().has_value());
  EXPECT_EQ(pool.min_free_seen(), 0u);
}

TEST(BufferPoolTest, FreedBufferIsScrubbed) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 1);
  {
    auto ref = pool.TryAllocate();
    (*ref)->payload.assign(100, 0xAB);
    (*ref)->stream = 9;
  }
  auto again = pool.TryAllocate();
  EXPECT_TRUE((*again)->payload.empty());
  EXPECT_EQ((*again)->stream, kInvalidStream);
}

// Regression test (found by ASan via the Medusa fan-out test): a SegmentRef
// parked as a value inside a channel lives in the channel object, not a
// coroutine frame, so Scheduler::Shutdown's frame teardown alone did not
// release it.  When the channel outlives the pool — a network port's tx
// channel vs. a device-owned pool — the channel destructor then DecRef'd
// into a destroyed pool.  Shutdown must drain parked channel values while
// every pool is still alive.
TEST(BufferPoolTest, ShutdownReleasesSegmentsParkedInChannels) {
  Scheduler sched;
  // Declared before the pool, so destroyed after it: the hazardous order.
  Channel<SegmentRef> chan(&sched, "parked");
  BufferPool pool(&sched, "pool", 2);
  auto sender = [](Channel<SegmentRef>* chan, BufferPool* pool) -> Process {
    auto ref = pool->TryAllocate();
    co_await chan->Send(std::move(*ref));
  };
  sched.Spawn(sender(&chan, &pool), "tx");
  sched.RunUntilQuiescent();
  ASSERT_EQ(chan.waiting_senders(), 1u);
  ASSERT_EQ(pool.free_count(), 1u);

  sched.Shutdown();
  EXPECT_EQ(chan.waiting_senders(), 0u);
  EXPECT_EQ(pool.free_count(), pool.capacity());
}

// --- DecouplingBuffer -------------------------------------------------------

TEST(DecouplingBufferTest, PassesSegmentsThroughInOrder) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 16);
  DecouplingBuffer buffer(&sched, {.name = "d", .capacity = 8});
  ShutdownGuard guard(&sched);
  buffer.Start();

  std::vector<uint32_t> got;
  auto producer = [](BufferPool* p, DecouplingBuffer* b) -> Process {
    for (uint32_t i = 0; i < 5; ++i) {
      SegmentRef ref = MakeRef(p, i);  // named: GCC 12 co_await-arg workaround
      co_await b->input().Send(std::move(ref));
    }
  };
  auto consumer = [](DecouplingBuffer* b, std::vector<uint32_t>* got) -> Process {
    for (int i = 0; i < 5; ++i) {
      SegmentRef ref = co_await b->output().Receive();
      got->push_back(ref->header.sequence);
    }
  };
  sched.Spawn(producer(&pool, &buffer), "producer");
  sched.Spawn(consumer(&buffer, &got), "consumer");
  sched.RunFor(Millis(1));
  ASSERT_EQ(got.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(got[i], i);
  }
  EXPECT_EQ(buffer.total_in(), 5u);
  EXPECT_EQ(buffer.total_out(), 5u);
  EXPECT_EQ(pool.free_count(), 16u);  // all refs returned
}

TEST(DecouplingBufferTest, FullBufferBlocksPlainProducer) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 16);
  DecouplingBuffer buffer(&sched, {.name = "d", .capacity = 2});
  ShutdownGuard guard(&sched);
  buffer.Start();

  int sent = 0;
  auto producer = [](BufferPool* p, DecouplingBuffer* b, int* sent) -> Process {
    for (uint32_t i = 0; i < 5; ++i) {
      SegmentRef ref = MakeRef(p, i);
      co_await b->input().Send(std::move(ref));
      ++*sent;
    }
  };
  sched.Spawn(producer(&pool, &buffer, &sent), "producer");
  sched.RunFor(Millis(1));
  // Queue capacity 2 plus one segment parked in the output sender: the
  // producer completed 3 sends and is blocked on the 4th.
  EXPECT_EQ(sent, 3);
  EXPECT_TRUE(buffer.full());

  std::vector<uint32_t> got;
  auto consumer = [](DecouplingBuffer* b, std::vector<uint32_t>* got) -> Process {
    for (int i = 0; i < 5; ++i) {
      SegmentRef ref = co_await b->output().Receive();
      got->push_back(ref->header.sequence);
    }
  };
  sched.Spawn(consumer(&buffer, &got), "consumer");
  sched.RunFor(Millis(1));
  EXPECT_EQ(sent, 5);
  ASSERT_EQ(got.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(got[i], i);
  }
}

TEST(DecouplingBufferTest, ReadyChannelProtocol) {
  // Fig 3.6: immediate TRUE/FALSE after every input; deferred TRUE when a
  // slot frees; upstream drops instead of blocking after FALSE (P5).
  Scheduler sched;
  BufferPool pool(&sched, "pool", 32);
  DecouplingBuffer buffer(&sched, {.name = "d", .capacity = 2, .use_ready_channel = true});
  ShutdownGuard guard(&sched);
  buffer.Start();

  ReadySender sender(&buffer.input(), &buffer.ready());
  std::vector<bool> offered_ok;
  auto producer = [](Scheduler* s, BufferPool* p, ReadySender* snd,
                     std::vector<bool>* ok) -> Process {
    for (uint32_t i = 0; i < 10; ++i) {
      snd->Poll();  // pick up any deferred TRUE
      if (snd->can_send()) {
        SegmentRef ref = MakeRef(p, i);
        co_await snd->Send(std::move(ref));
        ok->push_back(true);
      } else {
        snd->CountDrop();
        ok->push_back(false);
      }
      co_await s->WaitFor(Millis(1));
    }
    // The protocol obliges the upstream process to keep listening on the
    // ready channel after a FALSE; a real Pandora process never terminates.
    for (;;) {
      co_await snd->ConsumeReadySignal();
    }
  };
  std::vector<uint32_t> got;
  auto consumer = [](Scheduler* s, DecouplingBuffer* b, std::vector<uint32_t>* got) -> Process {
    co_await s->WaitUntil(Millis(6));  // stall, then drain slowly
    for (;;) {
      SegmentRef ref = co_await b->output().Receive();
      got->push_back(ref->header.sequence);
      co_await s->WaitFor(Millis(2));
    }
  };
  sched.Spawn(producer(&sched, &pool, &sender, &offered_ok), "producer");
  sched.Spawn(consumer(&sched, &buffer, &got), "consumer");
  sched.RunFor(Millis(60));

  EXPECT_GT(sender.drops(), 0u);
  EXPECT_EQ(sender.sent() + sender.drops(), 10u);
  // Everything that was sent arrived, in order (a strictly increasing
  // subsequence of 0..9) — the producer never blocked.
  ASSERT_EQ(got.size(), sender.sent());
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LT(got[i - 1], got[i]);
  }
}

TEST(DecouplingBufferTest, CommandsProcessedWhileOutputStalled) {
  // Principle 4: a wedged consumer must not lock out commands.
  Scheduler sched;
  ReportCollector reports;
  BufferPool pool(&sched, "pool", 16);
  DecouplingBuffer buffer(&sched, {.name = "d", .capacity = 2}, &reports);
  ShutdownGuard guard(&sched);
  buffer.Start();

  auto producer = [](BufferPool* p, DecouplingBuffer* b) -> Process {
    for (uint32_t i = 0; i < 10; ++i) {
      SegmentRef ref = MakeRef(p, i);
      co_await b->input().Send(std::move(ref));  // will wedge: no consumer
    }
  };
  auto commander = [](Scheduler* s, DecouplingBuffer* b) -> Process {
    co_await s->WaitFor(Millis(5));
    co_await b->commands().Send(Command{CommandVerb::kReportStatus, 0, 0, 0});
  };
  sched.Spawn(producer(&pool, &buffer), "producer");
  sched.Spawn(commander(&sched, &buffer), "commander");
  sched.RunFor(Millis(10));
  EXPECT_EQ(reports.CountOf("decoupling.status"), 1u);
  EXPECT_GE(reports.CountOf("decoupling.full"), 1u);
}

TEST(DecouplingBufferTest, DynamicResizeWithoutDataLoss) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 64);
  DecouplingBuffer buffer(&sched, {.name = "d", .capacity = 2});
  ShutdownGuard guard(&sched);
  buffer.Start();

  std::vector<uint32_t> got;
  auto producer = [](Scheduler* s, BufferPool* p, DecouplingBuffer* b) -> Process {
    for (uint32_t i = 0; i < 20; ++i) {
      SegmentRef ref = MakeRef(p, i);
      co_await b->input().Send(std::move(ref));
      co_await s->WaitFor(Micros(100));
    }
  };
  auto resizer = [](Scheduler* s, DecouplingBuffer* b) -> Process {
    co_await s->WaitFor(Millis(1));
    co_await b->commands().Send(Command{CommandVerb::kResizeBuffer, 0, 8, 0});
  };
  auto consumer = [](Scheduler* s, DecouplingBuffer* b, std::vector<uint32_t>* got) -> Process {
    for (int i = 0; i < 20; ++i) {
      SegmentRef ref = co_await b->output().Receive();
      got->push_back(ref->header.sequence);
      co_await s->WaitFor(Micros(300));
    }
  };
  sched.Spawn(producer(&sched, &pool, &buffer), "producer");
  sched.Spawn(resizer(&sched, &buffer), "resizer");
  sched.Spawn(consumer(&sched, &buffer, &got), "consumer");
  sched.RunFor(Millis(20));
  ASSERT_EQ(got.size(), 20u);  // nothing lost across the resize
  for (uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(got[i], i);
  }
  EXPECT_EQ(buffer.capacity(), 8u);
}

// --- ClawbackBuffer ---------------------------------------------------------

TEST(ClawbackBufferTest, StoresAndPopsFifo) {
  ClawbackPool pool;
  ClawbackBuffer buffer(1, ClawbackConfig{}, &pool);
  AudioBlock a = MakeBlock(1);
  AudioBlock b = MakeBlock(2);
  EXPECT_EQ(buffer.Push(a), ClawbackPushResult::kStored);
  EXPECT_EQ(buffer.Push(b), ClawbackPushResult::kStored);
  EXPECT_EQ(buffer.depth_blocks(), 2u);
  EXPECT_EQ(buffer.delay(), Millis(4));
  auto got = buffer.Pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->samples[0], 1);
  got = buffer.Pop();
  EXPECT_EQ(got->samples[0], 2);
  EXPECT_FALSE(buffer.Pop().has_value());
  EXPECT_EQ(buffer.stats().empty_pops, 1u);
}

TEST(ClawbackBufferTest, SingleRateDropsAtPaperRate) {
  // "4096 in our implementation, representing 8 seconds" — with the buffer
  // above its 4ms target, the 4096th arrival is sacrificed: 2ms per 8s,
  // 1 in 4000, the Clawback Rate.
  ClawbackConfig config;
  ClawbackPool pool;
  ClawbackBuffer buffer(1, config, &pool);
  for (int i = 0; i < 12; ++i) {
    ASSERT_EQ(buffer.Push(MakeBlock()), ClawbackPushResult::kStored);
  }
  // Steady state: one push + one pop per 2ms tick, depth stays at 12.  The
  // fill-up ramp already advanced the counter a little, so the paper's
  // exact rate shows in the interval BETWEEN consecutive drops.
  std::vector<int> drops;
  for (int i = 1; i <= 14000; ++i) {
    ClawbackPushResult result = buffer.Push(MakeBlock());
    if (result == ClawbackPushResult::kDroppedClawback) {
      drops.push_back(i);
    }
    if (result == ClawbackPushResult::kStored) {
      ASSERT_TRUE(buffer.Pop().has_value());
    }
  }
  ASSERT_GE(drops.size(), 2u);
  EXPECT_EQ(drops[1] - drops[0], 4096);  // 2ms per 8.192s: "1 in 4000"
  EXPECT_LE(drops[0], 4096);             // no slower than the steady rate
}

TEST(ClawbackBufferTest, NoClawbackAtOrBelowTarget) {
  ClawbackConfig config;
  config.count_threshold = 10;  // tight threshold to catch any miscount
  ClawbackPool pool;
  ClawbackBuffer buffer(1, config, &pool);
  // Hold depth at exactly the 2-block target: never "above", never dropped.
  buffer.Push(MakeBlock());
  buffer.Push(MakeBlock());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(buffer.Pop().has_value());
    EXPECT_EQ(buffer.Push(MakeBlock()), ClawbackPushResult::kStored);
  }
  EXPECT_EQ(buffer.stats().clawback_drops, 0u);
}

TEST(ClawbackBufferTest, PerStreamLimitDropsOnArrival) {
  // "There is no point in buffering more than about 120ms of audio for a
  // single stream... we throw away samples if the buffer is above its limit
  // when they arrive."
  ClawbackConfig config;
  ClawbackPool pool;
  ClawbackBuffer buffer(1, config, &pool);
  for (int i = 0; i < config.per_stream_limit_blocks; ++i) {
    ASSERT_EQ(buffer.Push(MakeBlock()), ClawbackPushResult::kStored);
  }
  EXPECT_EQ(buffer.delay(), Millis(120));
  EXPECT_EQ(buffer.Push(MakeBlock()), ClawbackPushResult::kDroppedOverLimit);
  EXPECT_EQ(buffer.stats().limit_drops, 1u);
}

TEST(ClawbackBufferTest, SharedPoolBoundsTotalBuffering) {
  // "a total of four seconds of clawback buffering shared between all
  // active streams" — here a miniature 20ms pool shared by two buffers.
  ClawbackPool pool(Millis(20));
  ClawbackConfig config;
  ClawbackBuffer a(1, config, &pool);
  ClawbackBuffer b(2, config, &pool);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(a.Push(MakeBlock()), ClawbackPushResult::kStored);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(b.Push(MakeBlock()), ClawbackPushResult::kStored);
  }
  EXPECT_EQ(pool.in_use(), Millis(20));
  EXPECT_EQ(b.Push(MakeBlock()), ClawbackPushResult::kDroppedPoolExhausted);
  // Popping from one stream frees budget for the other.
  ASSERT_TRUE(a.Pop().has_value());
  EXPECT_EQ(b.Push(MakeBlock()), ClawbackPushResult::kStored);
  EXPECT_EQ(pool.exhaustions(), 1u);
}

struct MultiRateCase {
  int depth_blocks;
  int expected_first_drop;  // arrivals before the first clawback drop
};

class MultiRateClawbackTest : public ::testing::TestWithParam<MultiRateCase> {};

TEST_P(MultiRateClawbackTest, DropIntervalMatchesBlockSecondsRule) {
  // Paper: at 20 block-seconds, minimum contents of 10ms drops every 2000
  // blocks (4s); 50ms drops every 400 blocks (0.8s).
  const MultiRateCase c = GetParam();
  ClawbackConfig config;
  config.mode = ClawbackMode::kMultiRate;
  config.per_stream_limit_blocks = 100;
  ClawbackPool pool(Seconds(4));
  ClawbackBuffer buffer(1, config, &pool);
  for (int i = 0; i < c.depth_blocks; ++i) {
    ASSERT_EQ(buffer.Push(MakeBlock()), ClawbackPushResult::kStored);
  }
  // The first window is polluted by the fill-up ramp (its minimum is the
  // pre-jitter floor — correctly conservative); the paper's numbers are the
  // steady-state interval between drops, with the running minimum equal to
  // the held depth.
  std::vector<int> drops;
  for (int i = 1; drops.size() < 3 && i <= 60000; ++i) {
    ClawbackPushResult result = buffer.Push(MakeBlock());
    if (result == ClawbackPushResult::kDroppedClawback) {
      drops.push_back(i);
    } else {
      ASSERT_TRUE(buffer.Pop().has_value());
    }
  }
  ASSERT_EQ(drops.size(), 3u);
  EXPECT_EQ(drops[2] - drops[1], c.expected_first_drop);
}

INSTANTIATE_TEST_SUITE_P(PaperExamples, MultiRateClawbackTest,
                         ::testing::Values(MultiRateCase{5, 2000},    // 10ms -> 4s
                                           MultiRateCase{25, 400},    // 50ms -> 0.8s
                                           MultiRateCase{50, 200}));  // 100ms -> 0.4s

TEST(ClawbackBankTest, AutoActivationAndDeactivation) {
  ClawbackBank bank(ClawbackConfig{});
  EXPECT_EQ(bank.active_count(), 0u);
  EXPECT_FALSE(bank.Pop(7).has_value());  // unknown stream: nothing to mix

  bank.Push(7, MakeBlock(1));
  EXPECT_EQ(bank.active_count(), 1u);
  EXPECT_EQ(bank.activations(), 1u);

  ASSERT_TRUE(bank.Pop(7).has_value());
  // Found empty at the next mix tick: deactivated.
  EXPECT_FALSE(bank.Pop(7).has_value());
  EXPECT_EQ(bank.active_count(), 0u);
  EXPECT_EQ(bank.deactivations(), 1u);

  // Data arriving again re-creates the buffer without any control traffic.
  bank.Push(7, MakeBlock(2));
  EXPECT_EQ(bank.active_count(), 1u);
  EXPECT_EQ(bank.activations(), 2u);
}

TEST(ClawbackBankTest, TotalStatsFoldInRetiredBuffers) {
  ClawbackBank bank(ClawbackConfig{});
  bank.Push(1, MakeBlock());
  bank.Push(1, MakeBlock());
  ASSERT_TRUE(bank.Pop(1).has_value());
  ASSERT_TRUE(bank.Pop(1).has_value());
  EXPECT_FALSE(bank.Pop(1).has_value());  // deactivates
  bank.Push(2, MakeBlock());
  auto stats = bank.TotalStats();
  EXPECT_EQ(stats.pushes, 3u);
  EXPECT_EQ(stats.pops, 3u);
  EXPECT_EQ(stats.empty_pops, 1u);
}

TEST(ClawbackBankTest, PoolSharedAcrossStreams) {
  ClawbackBank bank(ClawbackConfig{}, Millis(8));  // 4 blocks total
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(bank.Push(1, MakeBlock()), ClawbackPushResult::kStored);
  }
  EXPECT_EQ(bank.Push(2, MakeBlock()), ClawbackPushResult::kDroppedPoolExhausted);
}

}  // namespace
}  // namespace pandora
