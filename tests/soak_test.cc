// Soak test: a three-way conference run for five simulated minutes.
// Checks the long-run invariants: no buffer-pool leaks, bounded clawback,
// no report storms, playout continuity, and scheduler housekeeping.
#include <gtest/gtest.h>

#include "src/core/simulation.h"

namespace pandora {
namespace {

TEST(SoakTest, FiveMinuteConferenceStaysHealthy) {
  Simulation sim;
  std::vector<PandoraBox*> boxes;
  for (const char* name : {"a", "b", "c"}) {
    PandoraBox::Options options;
    options.name = name;
    options.with_video = true;
    options.muting_enabled = true;
    options.mic = MicKind::kSpeech;
    boxes.push_back(&sim.AddBox(options));
  }
  sim.Start();

  for (PandoraBox* from : boxes) {
    bool first = true;
    for (PandoraBox* to : boxes) {
      if (from == to) {
        continue;
      }
      if (first) {
        sim.SendAudio(*from, *to);
        first = false;
      } else {
        sim.SplitAudioTo(*from, from->mic_stream(), *to);
      }
      sim.SendVideo(*from, *to, Rect{0, 0, 64, 48}, 2, 5, 2);
    }
  }

  // No housekeeping needed: the network spawns a forwarder per segment, and
  // the scheduler recycles each record the moment the forwarder finishes.
  sim.RunFor(Seconds(300));

  const uint64_t expected_blocks = 150'000;  // 300s x 500 blocks/s
  for (PandoraBox* box : boxes) {
    SCOPED_TRACE(box->name());
    // Continuity: nearly every block reached the loudspeaker.
    EXPECT_GT(box->codec_out().played_blocks(), expected_blocks - 1000);
    EXPECT_LT(box->codec_out().underruns(), 100u);
    // No end-to-end audio loss on a quiet LAN.
    EXPECT_EQ(box->audio_receiver().total_missing(), 0u);
    // Video kept pace at the requested 10 fps from both peers.
    EXPECT_GT(box->display()->frames_displayed(), 5500u);
    EXPECT_EQ(box->display()->tears(), 0u);
    // The clawback pool never leaked towards its 4s ceiling.
    EXPECT_LT(box->clawback_bank().pool().in_use(), Millis(200));
    EXPECT_EQ(box->clawback_bank().TotalStats().limit_drops, 0u);
    // Buffer pools cycle: most buffers are free at any quiet instant.
    EXPECT_GT(box->pool().free_count(), box->pool().capacity() / 2);
    // Nothing was dropped at the switches.
    EXPECT_EQ(box->server_switch().segments_dropped(), 0u);
  }
  // The host log did not storm: rate limiting keeps chatter bounded.
  EXPECT_LT(sim.reports().size(), 500u);
  // Automatic slab recycling keeps the registry at the live-process count:
  // five simulated minutes of per-segment forwarder churn leave nothing
  // tracked beyond the long-lived mesh processes.
  EXPECT_LT(sim.scheduler().tracked_process_count(), 1'000u);
}

}  // namespace
}  // namespace pandora
