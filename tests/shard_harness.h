// Shard-invariance storm harness for the sharded M:N scheduler.
//
// Drives a synthetic world that exercises exactly the machinery ShardSet
// adds over a bare Scheduler: actors pinned to shards exchange seeded
// periodic messages over links whose latency always covers the lookahead,
// deliveries spawn short-lived forwarder processes (frame-pool churn) and
// payload-deterministic replies, and an optional FaultPlan overlays crashes,
// restarts, burst loss and jitter storms on the same timeline.  Used by
// tests/shard_determinism_test.cc, the sharded leg of
// tests/fault_property_test.cc, tests/shard_soak_test.cc (TSan) and
// bench/bench_shard.cpp, so it lives in a header both tests and benches
// include.
//
// Every observable folds into one of two hash families:
//
//   shard hash (order-sensitive)   Per shard: the FNV chain of every
//       (src,dst) delivery stream terminating on the shard, folded in
//       delivery order, plus the shard's execution digest.  Equal across
//       runs and across thread counts for a fixed shard layout — the replay
//       and M:N-invariance gates.
//
//   merged hash (partition-invariant)   A commutative per-pair accumulator
//       (each delivery contributes a SplitMix64 of its absolute time,
//       payload and pair key) plus per-actor counters.  Insensitive to how
//       equal-instant deliveries on *different* pairs interleave — which is
//       the one ordering a partition change may legitimately permute — yet
//       pins the exact multiset of (time, payload) per link.  Equal across
//       shard counts for the same seed: the conservative-sync correctness
//       gate.
//
// All randomness is SplitMix64 (no std::random engines), so the hashes are
// identical across standard libraries, not just across runs.
#ifndef PANDORA_TESTS_SHARD_HARNESS_H_
#define PANDORA_TESTS_SHARD_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/plan.h"
// The shared FNV-1a helpers (FnvMix, kFnvOffset) live in the overlay's
// topology header; tests fold fingerprints with the same primitive the
// overlay run hash uses.
#include "src/overlay/topology.h"
#include "src/runtime/process.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/shard_set.h"
#include "src/runtime/time.h"

namespace pandora {

inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct ShardStormOptions {
  int shards = 8;
  int threads = 1;
  int total_actors = 32;  // actor a lives on shard a % shards
  uint64_t seed = 1;
  Duration lookahead = Millis(1);
  // Every link's latency is base_latency (0 = use lookahead) + a per-link
  // extra in [0, max_extra_latency]; keep base_latency >= lookahead so
  // cross-shard sends always clear the window.  Setting it explicitly pins
  // delivery times while the lookahead knob is swept.
  Duration base_latency = 0;
  Duration max_extra_latency = Millis(3);
  Duration duration = Seconds(2);
  int peers_per_actor = 3;
  Duration min_period = Micros(700);
  Duration max_period = Millis(5);
  bool spawn_churn = true;  // forwarder process per delivery
  bool replies = true;      // 1-in-8 deliveries answer back
  // Optional chaos overlay; only (box-crash, churn, burst-loss,
  // jitter-storm) events are materialised, the rest are counted skipped.
  const FaultPlan* plan = nullptr;
};

struct ShardStormResult {
  std::vector<uint64_t> shard_hashes;  // one per shard, order-sensitive
  uint64_t merged_hash = 0;            // partition-invariant
  uint64_t sends = 0;
  uint64_t deliveries = 0;
  uint64_t drops = 0;
  uint64_t replies = 0;
  uint64_t crashes = 0;
  uint64_t restarts = 0;
  uint64_t skipped_fault_events = 0;
  uint64_t windows = 0;
  uint64_t cross_shard_messages = 0;
  uint64_t context_switches = 0;

  friend bool operator==(const ShardStormResult& a, const ShardStormResult& b) {
    return a.shard_hashes == b.shard_hashes && a.merged_hash == b.merged_hash &&
           a.sends == b.sends && a.deliveries == b.deliveries && a.drops == b.drops &&
           a.replies == b.replies && a.crashes == b.crashes && a.restarts == b.restarts &&
           a.skipped_fault_events == b.skipped_fault_events && a.windows == b.windows &&
           a.cross_shard_messages == b.cross_shard_messages &&
           a.context_switches == b.context_switches;
  }
};

class ShardStormWorld {
 public:
  explicit ShardStormWorld(const ShardStormOptions& opt) : opt_(opt) {
    const int actors = opt_.total_actors;
    actors_.resize(static_cast<size_t>(actors));
    pairs_.resize(static_cast<size_t>(actors) * static_cast<size_t>(actors));
    for (int id = 0; id < actors; ++id) {
      Actor& a = actors_[static_cast<size_t>(id)];
      a.id = id;
      a.shard = id % opt_.shards;
      a.name = "a" + std::to_string(id);
      a.fwd_name = a.name + ".f";
      for (int j = 0; j < opt_.peers_per_actor; ++j) {
        // Stateless peer choice: identical for every partition of the same
        // actor population.  `% (actors-1)` then skip-self keeps peer != id.
        int peer = static_cast<int>(
            SplitMix64(opt_.seed ^ (0x5851f42d4c957f2dull * static_cast<uint64_t>(id + 1)) ^
                       static_cast<uint64_t>(j)) %
            static_cast<uint64_t>(actors - 1));
        if (peer >= id) {
          ++peer;
        }
        a.peers.push_back(peer);
      }
    }
    if (opt_.plan != nullptr) {
      IngestPlan(*opt_.plan);
    }
  }

  // Builds the ShardSet, spawns every actor and arms the chaos timers.
  // Split from Run() so benches can warm up, then measure a steady-state
  // window with their own clocks and allocation counters around it.
  void Start() {
    ShardSetOptions set_options;
    set_options.shards = opt_.shards;
    set_options.threads = opt_.threads;
    set_options.lookahead = opt_.lookahead;
    owned_set_ = std::make_unique<ShardSet>(set_options);
    set_ = owned_set_.get();
    for (Actor& a : actors_) {
      set_->shard(a.shard).Spawn(ActorMain(this, a.id, 0), a.name);
    }
    // Chaos timers are armed before the first window, in plan order, on the
    // victim's own shard — the crash schedule is part of the timeline, not
    // of the thread layout.
    for (const CrashEvent& ev : crash_schedule_) {
      ShardStormWorld* w = this;
      const uint32_t actor = static_cast<uint32_t>(ev.actor);
      set_->shard(actors_[ev.actor].shard)
          .AddTimer(ev.at, TimerCallback([w, actor] { w->CrashActor(actor); }));
      if (ev.restart_at != kNever) {
        set_->shard(actors_[ev.actor].shard)
            .AddTimer(ev.restart_at, TimerCallback([w, actor] { w->RestartActor(actor); }));
      }
    }
  }

  void RunUntil(Time t) { set_->RunUntil(t); }

  // Scheduler dispatches across every shard so far (the bench's event count).
  uint64_t TotalContextSwitches() const {
    uint64_t n = 0;
    for (int s = 0; s < opt_.shards; ++s) {
      n += set_->shard(s).context_switches();
    }
    return n;
  }

  // Collects the hashes and counters, then shuts the world down.
  ShardStormResult Finish() {
    ShardSet& set = *set_;
    ShardStormResult result;
    result.shard_hashes.resize(static_cast<size_t>(opt_.shards));
    const size_t actors = actors_.size();
    for (int s = 0; s < opt_.shards; ++s) {
      uint64_t h = FnvMix(0xcbf29ce484222325ull, set.ShardDigest(s));
      for (size_t src = 0; src < actors; ++src) {
        for (size_t dst = 0; dst < actors; ++dst) {
          if (actors_[dst].shard != s) {
            continue;
          }
          const PairState& p = pairs_[src * actors + dst];
          h = FnvMix(h, p.chain);
          h = FnvMix(h, p.count);
        }
      }
      result.shard_hashes[static_cast<size_t>(s)] = h;
      result.context_switches += set.shard(s).context_switches();
    }
    uint64_t merged = 0xcbf29ce484222325ull;
    for (size_t src = 0; src < actors; ++src) {
      for (size_t dst = 0; dst < actors; ++dst) {
        const PairState& p = pairs_[src * actors + dst];
        merged = FnvMix(merged, p.acc);
        merged = FnvMix(merged, p.count);
      }
    }
    for (const Actor& a : actors_) {
      merged = FnvMix(merged, a.sends);
      merged = FnvMix(merged, a.deliveries);
      merged = FnvMix(merged, a.drops);
      merged = FnvMix(merged, a.replies);
      merged = FnvMix(merged, a.crashes + a.restarts);
      result.sends += a.sends;
      result.deliveries += a.deliveries;
      result.drops += a.drops;
      result.replies += a.replies;
      result.crashes += a.crashes;
      result.restarts += a.restarts;
    }
    result.merged_hash = merged;
    result.skipped_fault_events = skipped_fault_events_;
    result.windows = set.windows();
    result.cross_shard_messages = set.cross_shard_messages();
    set.Shutdown();
    return result;
  }

  ShardStormResult Run() {
    Start();
    set_->RunUntil(opt_.duration);
    return Finish();
  }

  ShardSet* shard_set() { return set_; }

 private:
  struct Actor {
    int id = 0;
    int shard = 0;
    std::string name;      // spawn + kill-predicate identity of the main loop
    std::string fwd_name;  // ditto for this actor's forwarders
    std::vector<int> peers;
    uint64_t incarnation = 0;
    bool alive = true;
    // Single-writer counters: sends by the actor's own shard, the rest by
    // the shard the event lands on (which is also the actor's own).
    uint64_t sends = 0;
    uint64_t deliveries = 0;
    uint64_t drops = 0;
    uint64_t replies = 0;
    uint64_t crashes = 0;
    uint64_t restarts = 0;
  };

  // Per-(src,dst) delivery stream.  Written only by the destination actor's
  // shard, so no cell is ever touched by two workers.
  struct PairState {
    uint64_t chain = 0xcbf29ce484222325ull;  // order-sensitive FNV chain
    uint64_t acc = 0;                        // commutative accumulator
    uint64_t count = 0;
  };

  struct Episode {
    Time start = 0;
    Time end = kNever;
    double value = 0.0;
  };
  struct CrashEvent {
    Time at = 0;
    int actor = 0;
    Time restart_at = kNever;
  };

  void IngestPlan(const FaultPlan& plan) {
    for (const FaultEvent& ev : plan.events) {
      const Time end = ev.duration > 0 ? ev.at + ev.duration : kNever;
      switch (ev.kind) {
        case FaultKind::kBoxCrash:
        case FaultKind::kChurn: {
          CrashEvent crash;
          crash.at = ev.at;
          crash.actor = ev.target % opt_.total_actors;
          if (crash.actor < 0) {
            crash.actor += opt_.total_actors;
          }
          crash.restart_at = ev.duration > 0 ? ev.at + ev.duration : kNever;
          crash_schedule_.push_back(crash);
          break;
        }
        case FaultKind::kBurstLoss: {
          double fraction = ev.value;
          fraction = fraction < 0.0 ? 0.0 : (fraction > 1.0 ? 1.0 : fraction);
          loss_episodes_.push_back(Episode{ev.at, end, fraction});
          break;
        }
        case FaultKind::kJitterStorm: {
          // Clamp the magnitude: extra latency is always non-negative, so
          // any amount keeps the lookahead contract — the cap just keeps
          // delivery times inside the run.
          double magnitude = ev.value;
          magnitude = magnitude < 0.0 ? 0.0 : (magnitude > 2000.0 ? 2000.0 : magnitude);
          jitter_episodes_.push_back(Episode{ev.at, end, magnitude});
          break;
        }
        default:
          ++skipped_fault_events_;
          break;
      }
    }
  }

  static Process ActorMain(ShardStormWorld* w, int id, uint64_t incarnation) {
    Scheduler& sched = w->set_->shard(w->actors_[static_cast<size_t>(id)].shard);
    uint64_t rng = SplitMix64(w->opt_.seed ^
                              (0x2545f4914f6cdd1dull * static_cast<uint64_t>(id + 1)) ^
                              (incarnation * 0x9e3779b97f4a7c15ull));
    const uint64_t span =
        static_cast<uint64_t>(w->opt_.max_period - w->opt_.min_period + 1);
    for (;;) {
      rng = SplitMix64(rng);
      co_await sched.WaitFor(w->opt_.min_period + static_cast<Duration>(rng % span));
      Actor& a = w->actors_[static_cast<size_t>(id)];
      rng = SplitMix64(rng);
      const int peer = a.peers[rng % a.peers.size()];
      rng = SplitMix64(rng);
      w->Send(id, peer, rng);
    }
  }

  static Process Forwarder(ShardStormWorld* w, uint32_t src, uint32_t dst, uint64_t payload) {
    // A delivered payload becomes a short-lived process — the paper's
    // process-per-segment shape, and the FramePool churn the per-thread
    // free lists must absorb without allocating.
    Scheduler& sched = w->set_->shard(w->actors_[dst].shard);
    co_await sched.Yield();
    w->MaybeReply(src, dst, payload);
  }

  void MaybeReply(uint32_t src, uint32_t dst, uint64_t payload) {
    if (!opt_.replies || (payload & 7) != 0) {
      return;
    }
    Actor& a = actors_[dst];
    if (!a.alive) {
      return;
    }
    ++a.replies;
    Send(static_cast<int>(dst), static_cast<int>(src),
         SplitMix64(payload ^ 0xa0761d6478bd642full));
  }

  Duration LinkExtra(int src, int dst) const {
    return static_cast<Duration>(
        SplitMix64(opt_.seed ^ (static_cast<uint64_t>(src) << 32) ^
                   static_cast<uint64_t>(dst) ^ 0xe7037ed1a0b428dbull) %
        static_cast<uint64_t>(opt_.max_extra_latency + 1));
  }

  Duration JitterAt(Time now, uint64_t payload) const {
    for (const Episode& ep : jitter_episodes_) {
      if (now >= ep.start && now < ep.end && ep.value > 0.0) {
        return static_cast<Duration>(SplitMix64(payload ^ static_cast<uint64_t>(now)) %
                                     (static_cast<uint64_t>(ep.value) + 1));
      }
    }
    return 0;
  }

  bool LostAt(Time when, uint64_t payload) const {
    for (const Episode& ep : loss_episodes_) {
      if (when >= ep.start && when < ep.end) {
        const uint64_t roll =
            SplitMix64(payload ^ static_cast<uint64_t>(when) ^ 0x8bb84b93962eacc9ull) % 1000;
        return roll < static_cast<uint64_t>(ep.value * 1000.0);
      }
    }
    return false;
  }

  void Send(int src, int dst, uint64_t payload) {
    Actor& s = actors_[static_cast<size_t>(src)];
    if (!s.alive) {
      return;
    }
    ++s.sends;
    const Time now = set_->shard(s.shard).now();
    const Duration base = opt_.base_latency > 0 ? opt_.base_latency : opt_.lookahead;
    const Duration latency = base + LinkExtra(src, dst) + JitterAt(now, payload);
    ShardStormWorld* w = this;
    const uint32_t src32 = static_cast<uint32_t>(src);
    const uint32_t dst32 = static_cast<uint32_t>(dst);
    set_->Post(s.shard, actors_[static_cast<size_t>(dst)].shard, now + latency,
               TimerCallback([w, src32, dst32, payload] { w->OnDeliver(src32, dst32, payload); }));
  }

  void OnDeliver(uint32_t src, uint32_t dst, uint64_t payload) {
    Actor& a = actors_[dst];
    const Time when = set_->shard(a.shard).now();
    if (!a.alive || LostAt(when, payload)) {
      ++a.drops;
      return;
    }
    ++a.deliveries;
    PairState& p = pairs_[static_cast<size_t>(src) * actors_.size() + dst];
    p.chain = FnvMix(FnvMix(p.chain, static_cast<uint64_t>(when)), payload);
    p.acc += SplitMix64(static_cast<uint64_t>(when) ^ payload ^
                        ((static_cast<uint64_t>(src) << 32) | dst));
    ++p.count;
    if (opt_.spawn_churn) {
      set_->shard(a.shard).Spawn(Forwarder(this, src, dst, payload), a.fwd_name);
    } else {
      MaybeReply(src, dst, payload);
    }
  }

  void CrashActor(uint32_t id) {
    Actor& a = actors_[id];
    if (!a.alive) {
      return;
    }
    a.alive = false;
    ++a.crashes;
    // Kill exactly this actor's processes (main loop + forwarders), the way
    // Simulation::CrashBox takes down one box mid-run.  Scheduler context:
    // timers never run inside a process, so the predicate can't match the
    // caller.
    set_->shard(a.shard).KillProcesses([&a](const ProcessCtx& ctx) {
      return ctx.name == a.name || ctx.name == a.fwd_name;
    });
  }

  void RestartActor(uint32_t id) {
    Actor& a = actors_[id];
    if (a.alive) {
      return;
    }
    a.alive = true;
    ++a.restarts;
    ++a.incarnation;
    set_->shard(a.shard).Spawn(ActorMain(this, static_cast<int>(id), a.incarnation), a.name);
  }

  ShardStormOptions opt_;
  std::unique_ptr<ShardSet> owned_set_;  // created by Start(), lives until ~World
  ShardSet* set_ = nullptr;
  std::vector<Actor> actors_;
  std::vector<PairState> pairs_;
  std::vector<Episode> loss_episodes_;
  std::vector<Episode> jitter_episodes_;
  std::vector<CrashEvent> crash_schedule_;
  uint64_t skipped_fault_events_ = 0;
};

inline ShardStormResult RunShardStorm(const ShardStormOptions& opt) {
  ShardStormWorld world(opt);
  return world.Run();
}

}  // namespace pandora

#endif  // PANDORA_TESTS_SHARD_HARNESS_H_
