// Tests for the server subsystem: degradation policy (P1-P3), the switch
// (splitting, P5/P6, drop accounting) and the network output splitter (P2).
#include <vector>

#include <gtest/gtest.h>

#include "src/buffer/decoupling.h"
#include "src/buffer/pool.h"
#include "src/control/report.h"
#include "src/net/atm.h"
#include "src/runtime/scheduler.h"
#include "src/segment/wire.h"
#include "src/server/degrade.h"
#include "src/server/netio.h"
#include "src/server/stream_table.h"
#include "src/server/switch.h"

namespace pandora {
namespace {

StreamAttrs Attrs(StreamId id, bool incoming, bool audio, uint64_t order) {
  return StreamAttrs{id, incoming, audio, order};
}

TEST(DegradeOrderTest, IncomingBeforeOutgoing) {
  // P1: the overloaded user's own transmissions survive longest.
  EXPECT_TRUE(DegradesBefore(Attrs(1, true, true, 5), Attrs(2, false, true, 1)));
  EXPECT_FALSE(DegradesBefore(Attrs(2, false, true, 1), Attrs(1, true, true, 5)));
}

TEST(DegradeOrderTest, VideoBeforeAudio) {
  // P2, within the same direction.
  EXPECT_TRUE(DegradesBefore(Attrs(1, true, false, 9), Attrs(2, true, true, 1)));
  EXPECT_FALSE(DegradesBefore(Attrs(2, true, true, 1), Attrs(1, true, false, 9)));
}

TEST(DegradeOrderTest, OldestFirstWithinClass) {
  // P3: the unexpected new call wins over long-open streams.
  EXPECT_TRUE(DegradesBefore(Attrs(1, true, true, 1), Attrs(2, true, true, 2)));
  EXPECT_FALSE(DegradesBefore(Attrs(2, true, true, 2), Attrs(1, true, true, 1)));
}

TEST(DegradeOrderTest, RepositoryReversesDirection) {
  // Reversed P1: recordings (incoming) are the last to degrade.
  EXPECT_TRUE(DegradesBefore(Attrs(1, false, true, 5), Attrs(2, true, true, 1),
                             /*recording_priority=*/true));
}

TEST(AdaptiveDegraderTest, PressureGrowsAndRecovers) {
  Scheduler sched;
  AdaptiveDegrader degrader(AdaptiveDegrader::Options{.recovery_period = Millis(10)});
  std::vector<StreamAttrs> active = {Attrs(1, true, true, 1), Attrs(2, true, true, 2)};

  EXPECT_FALSE(degrader.ShouldDrop(active[0], active));
  degrader.OnBufferFull(0);
  EXPECT_EQ(degrader.suppressed_count(), 1);
  // Oldest (open_order 1) is shed; the newer stream keeps flowing (P3).
  EXPECT_TRUE(degrader.ShouldDrop(active[0], active));
  EXPECT_FALSE(degrader.ShouldDrop(active[1], active));

  degrader.OnBufferFull(Millis(1));
  EXPECT_TRUE(degrader.ShouldDrop(active[1], active));  // both shed now

  degrader.MaybeRecover(Millis(12));
  EXPECT_EQ(degrader.suppressed_count(), 1);
  degrader.MaybeRecover(Millis(25));
  EXPECT_EQ(degrader.suppressed_count(), 0);
  EXPECT_FALSE(degrader.ShouldDrop(active[0], active));
}

TEST(StreamTableTest, OpenOrderStampsAndRouting) {
  StreamTable table;
  table.Open(10, true, true);
  table.Open(11, false, false);
  EXPECT_LT(table.Find(10)->attrs.open_order, table.Find(11)->attrs.open_order);
  table.AddDestination(10, 0);
  table.AddDestination(10, 1);
  table.AddDestination(10, 1);  // idempotent
  EXPECT_EQ(table.Find(10)->destinations.size(), 2u);
  table.RemoveDestination(10, 0);
  EXPECT_EQ(table.Find(10)->destinations.size(), 1u);
  auto active = table.ActiveTowards(1);
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0].stream, 10u);
}

// --- Switch -------------------------------------------------------------------

struct SwitchRig {
  SwitchRig()
      : pool(&sched, "pool", 128),
        sw(&sched, SwitchOptions{.name = "sw"}, nullptr, &reports),
        out_a(&sched, {.name = "outA", .capacity = 8, .use_ready_channel = true}, &reports),
        out_b(&sched, {.name = "outB", .capacity = 8, .use_ready_channel = true}, &reports) {
    dest_a = sw.AddDestination("a", &out_a);
    dest_b = sw.AddDestination("b", &out_b);
  }

  void Start() {
    sw.Start();
    out_a.Start();
    out_b.Start();
  }

  SegmentRef MakeRef(StreamId stream, uint32_t seq) {
    auto ref = pool.TryAllocate();
    **ref = MakeAudioSegment(stream, seq, 0, std::vector<uint8_t>(32, 0));
    return std::move(*ref);
  }

  Scheduler sched;
  ReportCollector reports;
  BufferPool pool;
  Switch sw;
  DecouplingBuffer out_a;
  DecouplingBuffer out_b;
  DestinationId dest_a;
  DestinationId dest_b;
  ShutdownGuard guard{&sched};
};

Process DrainBuffer(Scheduler* sched, DecouplingBuffer* buffer, std::vector<uint32_t>* got,
                    Duration pace = 0) {
  for (;;) {
    SegmentRef ref = co_await buffer->output().Receive();
    got->push_back(ref->header.sequence);
    if (pace > 0) {
      co_await sched->WaitFor(pace);
    }
  }
}

TEST(SwitchTest, RoutesToSingleDestination) {
  SwitchRig rig;
  rig.Start();
  rig.sw.OpenRoute(5, rig.dest_a, true, true);
  std::vector<uint32_t> got;
  auto feeder = [](Scheduler* s, SwitchRig* rig) -> Process {
    for (uint32_t i = 0; i < 10; ++i) {
      SegmentRef ref = rig->MakeRef(5, i);  // named: GCC 12 co_await-arg workaround
      co_await rig->sw.input().Send(std::move(ref));
      co_await s->WaitFor(Millis(1));
    }
  };
  rig.sched.Spawn(feeder(&rig.sched, &rig), "feeder");
  rig.sched.Spawn(DrainBuffer(&rig.sched, &rig.out_a, &got), "drain");
  rig.sched.RunFor(Millis(50));
  ASSERT_EQ(got.size(), 10u);
  EXPECT_EQ(rig.sw.segments_switched(), 10u);
  EXPECT_EQ(rig.sw.segments_dropped(), 0u);
}

TEST(SwitchTest, SplitsToTwoDestinationsWithRefCounts) {
  SwitchRig rig;
  rig.Start();
  rig.sw.OpenRoute(5, rig.dest_a, true, true);
  rig.sw.OpenRoute(5, rig.dest_b, true, true);
  std::vector<uint32_t> got_a;
  std::vector<uint32_t> got_b;
  auto feeder = [](Scheduler* s, SwitchRig* rig) -> Process {
    for (uint32_t i = 0; i < 10; ++i) {
      SegmentRef ref = rig->MakeRef(5, i);  // named: GCC 12 co_await-arg workaround
      co_await rig->sw.input().Send(std::move(ref));
      co_await s->WaitFor(Millis(1));
    }
  };
  rig.sched.Spawn(feeder(&rig.sched, &rig), "feeder");
  rig.sched.Spawn(DrainBuffer(&rig.sched, &rig.out_a, &got_a), "drainA");
  rig.sched.Spawn(DrainBuffer(&rig.sched, &rig.out_b, &got_b), "drainB");
  rig.sched.RunFor(Millis(50));
  EXPECT_EQ(got_a.size(), 10u);
  EXPECT_EQ(got_b.size(), 10u);
  EXPECT_EQ(rig.pool.free_count(), 128u);  // every duplicate released
}

TEST(SwitchTest, StalledDestinationDoesNotAffectTheOtherCopy) {
  // Principle 5: destination B never drains; A must still get everything.
  SwitchRig rig;
  rig.Start();
  rig.sw.OpenRoute(5, rig.dest_a, true, true);
  rig.sw.OpenRoute(5, rig.dest_b, true, true);
  std::vector<uint32_t> got_a;
  auto feeder = [](Scheduler* s, SwitchRig* rig) -> Process {
    for (uint32_t i = 0; i < 100; ++i) {
      SegmentRef ref = rig->MakeRef(5, i);
      co_await rig->sw.input().Send(std::move(ref));
      co_await s->WaitFor(Millis(1));
    }
  };
  rig.sched.Spawn(feeder(&rig.sched, &rig), "feeder");
  rig.sched.Spawn(DrainBuffer(&rig.sched, &rig.out_a, &got_a), "drainA");
  // Nobody drains out_b.
  rig.sched.RunFor(Millis(200));
  EXPECT_EQ(got_a.size(), 100u);  // every segment, in spite of B
  EXPECT_GT(rig.sw.segments_dropped(), 80u);  // B's copies were shed
  EXPECT_GT(rig.reports.CountOf("switch.dropped.b"), 0u);
  // Sequence recovery data is intact: drops were recorded per stream.
  EXPECT_EQ(rig.sw.drops_for(5), rig.sw.segments_dropped());
}

TEST(SwitchTest, ReconfigurationDoesNotDisturbExistingCopy) {
  // Principle 6: add then remove a second destination mid-flow; destination
  // A sees a perfect, gapless sequence throughout.
  SwitchRig rig;
  rig.Start();
  rig.sw.OpenRoute(5, rig.dest_a, true, true);
  std::vector<uint32_t> got_a;
  std::vector<uint32_t> got_b;
  auto feeder = [](Scheduler* s, SwitchRig* rig) -> Process {
    for (uint32_t i = 0; i < 60; ++i) {
      SegmentRef ref = rig->MakeRef(5, i);
      co_await rig->sw.input().Send(std::move(ref));
      co_await s->WaitFor(Millis(1));
    }
  };
  auto reconfigure = [](Scheduler* s, SwitchRig* rig) -> Process {
    co_await s->WaitUntil(Millis(20));
    co_await rig->sw.commands().Send(Command{CommandVerb::kOpenRoute, 5, rig->dest_b, 1});
    co_await s->WaitUntil(Millis(40));
    co_await rig->sw.commands().Send(Command{CommandVerb::kCloseRoute, 5, rig->dest_b, 0});
  };
  rig.sched.Spawn(feeder(&rig.sched, &rig), "feeder");
  rig.sched.Spawn(reconfigure(&rig.sched, &rig), "reconf");
  rig.sched.Spawn(DrainBuffer(&rig.sched, &rig.out_a, &got_a), "drainA");
  rig.sched.Spawn(DrainBuffer(&rig.sched, &rig.out_b, &got_b), "drainB");
  rig.sched.RunFor(Millis(100));
  ASSERT_EQ(got_a.size(), 60u);
  for (uint32_t i = 0; i < 60; ++i) {
    EXPECT_EQ(got_a[i], i);  // gapless despite the mid-flow re-plumbing
  }
  EXPECT_GT(got_b.size(), 5u);
  EXPECT_LT(got_b.size(), 40u);  // only the middle window
}

TEST(SwitchTest, MoveRouteHandsOverWithoutAGapOrDuplicate) {
  // The overlay repair hook: kMoveRoute re-parents one destination in a
  // single table mutation, so there is never a route-less window (a gap)
  // nor an instant with both routes live (a duplicate).
  SwitchRig rig;
  rig.Start();
  rig.sw.OpenRoute(5, rig.dest_a, true, true);
  std::vector<uint32_t> got_a;
  std::vector<uint32_t> got_b;
  auto feeder = [](Scheduler* s, SwitchRig* rig) -> Process {
    for (uint32_t i = 0; i < 60; ++i) {
      SegmentRef ref = rig->MakeRef(5, i);
      co_await rig->sw.input().Send(std::move(ref));
      co_await s->WaitFor(Millis(1));
    }
  };
  auto mover = [](Scheduler* s, SwitchRig* rig) -> Process {
    co_await s->WaitUntil(Millis(30));
    co_await rig->sw.commands().Send(
        Command{CommandVerb::kMoveRoute, 5, rig->dest_a, rig->dest_b});
  };
  rig.sched.Spawn(feeder(&rig.sched, &rig), "feeder");
  rig.sched.Spawn(mover(&rig.sched, &rig), "mover");
  rig.sched.Spawn(DrainBuffer(&rig.sched, &rig.out_a, &got_a), "drainA");
  rig.sched.Spawn(DrainBuffer(&rig.sched, &rig.out_b, &got_b), "drainB");
  rig.sched.RunFor(Millis(100));
  // A's prefix plus B's suffix is the whole stream, each segment exactly once.
  ASSERT_EQ(got_a.size() + got_b.size(), 60u);
  for (uint32_t i = 0; i < got_a.size(); ++i) {
    EXPECT_EQ(got_a[i], i);
  }
  for (uint32_t i = 0; i < got_b.size(); ++i) {
    EXPECT_EQ(got_b[i], static_cast<uint32_t>(got_a.size()) + i);
  }
  EXPECT_GT(got_b.size(), 10u);  // the handover actually happened mid-flow
  // Moving a stream that is not routed to `from` mutates nothing.
  EXPECT_FALSE(rig.sw.table().MoveDestination(5, rig.dest_a, rig.dest_b));
}

TEST(SwitchTest, SustainedOverloadShedsOldestStreamFirst) {
  // Principle 3 via the AdaptiveDegrader: two streams into one slow
  // destination; the older stream takes the loss.
  SwitchRig rig;
  rig.Start();
  rig.sw.OpenRoute(1, rig.dest_a, true, true);  // opened first = older
  rig.sw.OpenRoute(2, rig.dest_a, true, true);
  std::vector<uint32_t> got;
  auto feeder = [](Scheduler* s, SwitchRig* rig) -> Process {
    for (uint32_t i = 0; i < 300; ++i) {
      SegmentRef ref1 = rig->MakeRef(1, i);
      co_await rig->sw.input().Send(std::move(ref1));
      SegmentRef ref2 = rig->MakeRef(2, i);
      co_await rig->sw.input().Send(std::move(ref2));
      co_await s->WaitFor(Millis(1));
    }
  };
  rig.sched.Spawn(feeder(&rig.sched, &rig), "feeder");
  // Drain at half the offered rate: sustained overload.
  rig.sched.Spawn(DrainBuffer(&rig.sched, &rig.out_a, &got, Millis(1)), "slow-drain");
  rig.sched.RunFor(Millis(400));
  EXPECT_GT(rig.sw.drops_for(1), 3 * rig.sw.drops_for(2));
}

TEST(SwitchTest, CommandsProcessedDuringDataFlow) {
  // Principle 4: a status report command lands while data is streaming.
  SwitchRig rig;
  rig.Start();
  rig.sw.OpenRoute(5, rig.dest_a, true, true);
  std::vector<uint32_t> got;
  auto feeder = [](Scheduler* s, SwitchRig* rig) -> Process {
    for (uint32_t i = 0; i < 50; ++i) {
      SegmentRef ref = rig->MakeRef(5, i);
      co_await rig->sw.input().Send(std::move(ref));
      co_await s->WaitFor(Micros(500));
    }
  };
  auto commander = [](Scheduler* s, SwitchRig* rig) -> Process {
    co_await s->WaitUntil(Millis(10));
    co_await rig->sw.commands().Send(Command{CommandVerb::kReportStatus, 0, 0, 0});
  };
  rig.sched.Spawn(feeder(&rig.sched, &rig), "feeder");
  rig.sched.Spawn(commander(&rig.sched, &rig), "commander");
  rig.sched.Spawn(DrainBuffer(&rig.sched, &rig.out_a, &got), "drain");
  rig.sched.RunFor(Millis(60));
  EXPECT_EQ(rig.reports.CountOf("switch.status"), 1u);
  EXPECT_EQ(got.size(), 50u);
}

// --- NetworkOutput -------------------------------------------------------------

TEST(NetworkOutputTest, AudioDrainedBeforeVideo) {
  Scheduler sched;
  ReportCollector reports;
  BufferPool pool(&sched, "pool", 128);
  AtmNetwork net(&sched);
  AtmPort* src = net.AddPort("src", 20'000'000);
  AtmPort* dst = net.AddPort("dst");
  StreamTable table;
  NetworkOutput netout(&sched, {.name = "no"}, &table, src, &reports);
  ShutdownGuard guard(&sched);
  netout.Start();
  net.OpenCircuit(src, 1, dst);
  net.OpenCircuit(src, 2, dst);

  std::vector<Segment> got;
  auto rx = [](AtmPort* port, std::vector<Segment>* got) -> Process {
    for (;;) {
      NetRx in = co_await port->rx().Receive();
      DecodeResult decoded = DecodeSegment(in.wire->bytes, StreamField::kOmitted, in.vci);
      EXPECT_TRUE(decoded.ok) << decoded.error;
      got->push_back(std::move(decoded.segment));
    }
  };
  auto feeder = [](Scheduler* s, BufferPool* pool, NetworkOutput* no) -> Process {
    // Queue 4 large video segments then 4 audio segments at once; audio
    // must leave the box first even though video arrived first.
    for (uint32_t i = 0; i < 4; ++i) {
      auto video = pool->TryAllocate();
      VideoHeader vh;
      vh.x_width = 100;
      vh.line_count = 40;
      **video = MakeVideoSegment(2, i, 0, vh, std::vector<uint8_t>(4000, 1));
      co_await no->input().Send(std::move(*video));
      (void)co_await no->ready().Receive();
    }
    for (uint32_t i = 0; i < 4; ++i) {
      auto audio = pool->TryAllocate();
      **audio = MakeAudioSegment(1, i, 0, std::vector<uint8_t>(32, 2));
      co_await no->input().Send(std::move(*audio));
      (void)co_await no->ready().Receive();
    }
    (void)s;
  };
  sched.Spawn(rx(dst, &got), "rx");
  sched.Spawn(feeder(&sched, &pool, &netout), "feeder");
  sched.RunFor(Millis(100));
  ASSERT_EQ(got.size(), 8u);
  // At most one video segment (already owning the sender when audio landed)
  // precedes the audio block.
  size_t first_audio = 99;
  size_t audio_seen = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].is_audio()) {
      first_audio = std::min(first_audio, i);
      ++audio_seen;
    }
  }
  EXPECT_EQ(audio_seen, 4u);
  // Up to two video segments can already be committed downstream of the
  // priority point when the first audio arrives (one held by the video
  // buffer's internal sender, one taken by the network sender); everything
  // still queued yields to audio.
  EXPECT_LE(first_audio, 2u);
}

TEST(NetworkOutputTest, SaturatedInterfaceDropsVideoNotAudio) {
  Scheduler sched;
  ReportCollector reports;
  BufferPool pool(&sched, "pool", 256);
  AtmNetwork net(&sched);
  AtmPort* src = net.AddPort("src", 2'000'000);  // slow interface
  AtmPort* dst = net.AddPort("dst");
  StreamTable table;
  NetworkOutput netout(&sched, {.name = "no", .video_buffer_capacity = 2}, &table, src, &reports);
  ShutdownGuard guard(&sched);
  netout.Start();
  net.OpenCircuit(src, 1, dst);
  net.OpenCircuit(src, 2, dst);

  auto sink = [](AtmPort* port) -> Process {
    for (;;) {
      (void)co_await port->rx().Receive();
    }
  };
  auto feeder = [](Scheduler* s, BufferPool* pool, NetworkOutput* no) -> Process {
    for (uint32_t i = 0; i < 200; ++i) {
      auto audio = pool->TryAllocate();
      **audio = MakeAudioSegment(1, i, 0, std::vector<uint8_t>(32, 2));
      co_await no->input().Send(std::move(*audio));
      (void)co_await no->ready().Receive();
      // 10KB of video every 4ms = 20 Mbit/s offered to a 2 Mbit/s link.
      auto video = pool->TryAllocate();
      VideoHeader vh;
      vh.x_width = 100;
      vh.line_count = 100;
      **video = MakeVideoSegment(2, i, 0, vh, std::vector<uint8_t>(10'000, 1));
      co_await no->input().Send(std::move(*video));
      (void)co_await no->ready().Receive();
      co_await s->WaitFor(Millis(4));
    }
  };
  sched.Spawn(sink(dst), "sink");
  sched.Spawn(feeder(&sched, &pool, &netout), "feeder");
  sched.RunFor(Seconds(1));
  const CircuitStats* audio_stats = net.StatsFor(src, 1);
  EXPECT_GT(netout.video_drops(), 50u);  // video shed at the splitter
  EXPECT_EQ(netout.audio_drops(), 0u);   // audio all forwarded
  EXPECT_GT(audio_stats->delivered, 150u);
  EXPECT_GT(reports.CountOf("netout.video_drop"), 0u);
}

}  // namespace
}  // namespace pandora
