// Stress/regression tests for the coroutine runtime with OWNING payloads.
//
// GCC 12 miscompiles owning temporaries in co_await expressions that
// suspend (see runtime/channel.h).  These tests drive every channel path —
// parked sends, parked receives, alt races, ticket deliveries — with a
// leak-counting payload so a single double-release or lost value fails.
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/runtime/alt.h"
#include "src/runtime/channel.h"
#include "src/runtime/random.h"
#include "src/runtime/scheduler.h"

namespace pandora {
namespace {

// Move-only payload with global live-count accounting.
class Counted {
 public:
  Counted() : id_(0) {}
  explicit Counted(int id) : id_(id) { ++live_count; }
  Counted(Counted&& other) noexcept : id_(std::exchange(other.id_, 0)) {}
  Counted& operator=(Counted&& other) noexcept {
    if (this != &other) {
      Release();
      id_ = std::exchange(other.id_, 0);
    }
    return *this;
  }
  Counted(const Counted&) = delete;
  Counted& operator=(const Counted&) = delete;
  ~Counted() { Release(); }

  int id() const { return id_; }
  static int live_count;

 private:
  void Release() {
    if (id_ != 0) {
      --live_count;
      id_ = 0;
    }
  }
  int id_;
};

int Counted::live_count = 0;

class CountedChannelTest : public ::testing::Test {
 protected:
  void SetUp() override { Counted::live_count = 0; }
  void TearDown() override { EXPECT_EQ(Counted::live_count, 0); }
};

TEST_F(CountedChannelTest, ParkedSendsDeliverEveryValueExactlyOnce) {
  Scheduler sched;
  Channel<Counted> ch(&sched, "ch");
  std::vector<int> got;
  {
    ShutdownGuard guard(&sched);
    // Three senders race to park; a slow receiver drains.
    auto sender = [](Channel<Counted>* ch, int base) -> Process {
      for (int i = 0; i < 50; ++i) {
        Counted value(base + i);  // named local (GCC 12 workaround)
        co_await ch->Send(std::move(value));
      }
    };
    auto receiver = [](Scheduler* s, Channel<Counted>* ch, std::vector<int>* got) -> Process {
      for (int i = 0; i < 150; ++i) {
        Counted value = co_await ch->Receive();
        got->push_back(value.id());
        co_await s->WaitFor(Micros(10));
      }
    };
    sched.Spawn(sender(&ch, 1000), "tx1");
    sched.Spawn(sender(&ch, 2000), "tx2");
    sched.Spawn(sender(&ch, 3000), "tx3");
    sched.Spawn(receiver(&sched, &ch, &got), "rx");
    sched.RunUntilQuiescent();
  }
  ASSERT_EQ(got.size(), 150u);
  std::map<int, int> seen;
  for (int id : got) {
    ++seen[id];
  }
  EXPECT_EQ(seen.size(), 150u);  // every value exactly once
}

TEST_F(CountedChannelTest, ParkedReceiversGetTicketedDeliveries) {
  Scheduler sched;
  Channel<Counted> ch(&sched, "ch");
  std::vector<int> got;
  {
    ShutdownGuard guard(&sched);
    // Receivers park FIRST, then values are pushed through the fast path.
    auto receiver = [](Channel<Counted>* ch, std::vector<int>* got) -> Process {
      for (int i = 0; i < 40; ++i) {
        Counted value = co_await ch->Receive();
        got->push_back(value.id());
      }
    };
    auto sender = [](Scheduler* s, Channel<Counted>* ch) -> Process {
      co_await s->WaitFor(Millis(1));  // let receivers park
      for (int i = 1; i <= 80; ++i) {
        Counted value(i);
        co_await ch->Send(std::move(value));
      }
    };
    sched.Spawn(receiver(&ch, &got), "rx1");
    sched.Spawn(receiver(&ch, &got), "rx2");
    sched.Spawn(sender(&sched, &ch), "tx");
    sched.RunUntilQuiescent();
  }
  ASSERT_EQ(got.size(), 80u);
  std::map<int, int> seen;
  for (int id : got) {
    ++seen[id];
  }
  EXPECT_EQ(seen.size(), 80u);
}

TEST_F(CountedChannelTest, AltRacesNeverDuplicateOrLoseValues) {
  Scheduler sched;
  Channel<Counted> a(&sched, "a");
  Channel<Counted> b(&sched, "b");
  std::vector<int> got;
  {
    ShutdownGuard guard(&sched);
    auto producer = [](Scheduler* s, Channel<Counted>* ch, int base, Duration pace) -> Process {
      for (int i = 0; i < 100; ++i) {
        Counted value(base + i);
        co_await ch->Send(std::move(value));
        co_await s->WaitFor(pace);
      }
    };
    auto selector = [](Scheduler* s, Channel<Counted>* a, Channel<Counted>* b,
                       std::vector<int>* got) -> Process {
      for (int i = 0; i < 200; ++i) {
        Alt alt(s);
        alt.OnReceive(*a).OnReceive(*b);
        int chosen = co_await alt.Select();
        Counted value;
        if (chosen == 0) {
          value = co_await a->Receive();
        } else {
          value = co_await b->Receive();
        }
        got->push_back(value.id());
      }
    };
    sched.Spawn(producer(&sched, &a, 10000, Micros(70)), "pa");
    sched.Spawn(producer(&sched, &b, 20000, Micros(110)), "pb");
    sched.Spawn(selector(&sched, &a, &b, &got), "sel");
    sched.RunUntilQuiescent();
  }
  ASSERT_EQ(got.size(), 200u);
  std::map<int, int> seen;
  for (int id : got) {
    ++seen[id];
  }
  EXPECT_EQ(seen.size(), 200u);
}

TEST_F(CountedChannelTest, ShutdownReleasesInFlightValues) {
  // Values parked inside channels or held in frames must be released when
  // the scheduler tears the world down mid-flight.
  Scheduler sched;
  Channel<Counted> ch(&sched, "ch");
  {
    ShutdownGuard guard(&sched);
    auto sender = [](Channel<Counted>* ch) -> Process {
      for (int i = 1; i <= 10; ++i) {
        Counted value(i);
        co_await ch->Send(std::move(value));  // wedges: no receiver
      }
    };
    sched.Spawn(sender(&ch), "tx");
    sched.RunFor(Millis(1));
    EXPECT_GT(Counted::live_count, 0);  // some values parked in the channel
  }
  // Channel destruction (holding parked values) happens after the guard; at
  // TearDown everything must be accounted for.
  // NOTE: ch outlives the guard here, so drop its parked values explicitly
  // by destroying it via scope end — TearDown checks the count.
}

TEST_F(CountedChannelTest, RandomizedChurn) {
  // A randomized soak across two channels, three producers, two alt-based
  // consumers and timeouts; the invariant is conservation of values.
  Scheduler sched;
  Channel<Counted> a(&sched, "a");
  Channel<Counted> b(&sched, "b");
  int produced = 0;
  int consumed = 0;
  {
    ShutdownGuard guard(&sched);
    Rng rng(777);
    auto producer = [](Scheduler* s, Channel<Counted>* ch, Rng rng, int base,
                       int* produced) -> Process {
      for (int i = 0; i < 300; ++i) {
        Counted value(base + i);
        ++*produced;
        co_await ch->Send(std::move(value));
        co_await s->WaitFor(Micros(rng.UniformInt(1, 200)));
      }
    };
    auto consumer = [](Scheduler* s, Channel<Counted>* a, Channel<Counted>* b, Rng rng,
                       int* consumed) -> Process {
      for (;;) {
        Alt alt(s);
        alt.OnReceive(*a).OnReceive(*b).OnTimeoutAfter(Micros(rng.UniformInt(50, 500)));
        int chosen = co_await alt.Select();
        if (chosen == 2) {
          continue;  // timeout: model bursty consumers
        }
        Counted value;
        if (chosen == 0) {
          value = co_await a->Receive();
        } else {
          value = co_await b->Receive();
        }
        ++*consumed;
      }
    };
    sched.Spawn(producer(&sched, &a, rng.Fork(), 100000, &produced), "p1");
    sched.Spawn(producer(&sched, &a, rng.Fork(), 200000, &produced), "p2");
    sched.Spawn(producer(&sched, &b, rng.Fork(), 300000, &produced), "p3");
    sched.Spawn(consumer(&sched, &a, &b, rng.Fork(), &consumed), "c1");
    sched.Spawn(consumer(&sched, &a, &b, rng.Fork(), &consumed), "c2");
    sched.RunFor(Seconds(2));
    EXPECT_EQ(produced, 900);
    EXPECT_EQ(consumed, produced);
  }
}

}  // namespace
}  // namespace pandora
