// Stress/regression tests for the coroutine runtime with OWNING payloads.
//
// GCC 12 miscompiles owning temporaries in co_await expressions that
// suspend (see runtime/channel.h).  These tests drive every channel path —
// parked sends, parked receives, alt races, ticket deliveries — with a
// leak-counting payload so a single double-release or lost value fails.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/runtime/alt.h"
#include "src/runtime/channel.h"
#include "src/runtime/random.h"
#include "src/runtime/scheduler.h"

namespace pandora {
namespace {

// Ordered log of engine-visible events; appends happen in dispatch order
// (single-threaded scheduler), so its hash pins the exact interleaving.
struct EventLog {
  std::string text;
  void Note(const char* who, Time now, int64_t x) {
    text += who;
    text += ':';
    text += std::to_string(now);
    text += ':';
    text += std::to_string(x);
    text += ';';
  }
};

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Move-only payload with global live-count accounting.
class Counted {
 public:
  Counted() : id_(0) {}
  explicit Counted(int id) : id_(id) { ++live_count; }
  Counted(Counted&& other) noexcept : id_(std::exchange(other.id_, 0)) {}
  Counted& operator=(Counted&& other) noexcept {
    if (this != &other) {
      Release();
      id_ = std::exchange(other.id_, 0);
    }
    return *this;
  }
  Counted(const Counted&) = delete;
  Counted& operator=(const Counted&) = delete;
  ~Counted() { Release(); }

  int id() const { return id_; }
  static int live_count;

 private:
  void Release() {
    if (id_ != 0) {
      --live_count;
      id_ = 0;
    }
  }
  int id_;
};

int Counted::live_count = 0;

class CountedChannelTest : public ::testing::Test {
 protected:
  void SetUp() override { Counted::live_count = 0; }
  void TearDown() override { EXPECT_EQ(Counted::live_count, 0); }
};

TEST_F(CountedChannelTest, ParkedSendsDeliverEveryValueExactlyOnce) {
  Scheduler sched;
  Channel<Counted> ch(&sched, "ch");
  std::vector<int> got;
  {
    ShutdownGuard guard(&sched);
    // Three senders race to park; a slow receiver drains.
    auto sender = [](Channel<Counted>* ch, int base) -> Process {
      for (int i = 0; i < 50; ++i) {
        Counted value(base + i);  // named local (GCC 12 workaround)
        co_await ch->Send(std::move(value));
      }
    };
    auto receiver = [](Scheduler* s, Channel<Counted>* ch, std::vector<int>* got) -> Process {
      for (int i = 0; i < 150; ++i) {
        Counted value = co_await ch->Receive();
        got->push_back(value.id());
        co_await s->WaitFor(Micros(10));
      }
    };
    sched.Spawn(sender(&ch, 1000), "tx1");
    sched.Spawn(sender(&ch, 2000), "tx2");
    sched.Spawn(sender(&ch, 3000), "tx3");
    sched.Spawn(receiver(&sched, &ch, &got), "rx");
    sched.RunUntilQuiescent();
  }
  ASSERT_EQ(got.size(), 150u);
  std::map<int, int> seen;
  for (int id : got) {
    ++seen[id];
  }
  EXPECT_EQ(seen.size(), 150u);  // every value exactly once
}

TEST_F(CountedChannelTest, ParkedReceiversGetTicketedDeliveries) {
  Scheduler sched;
  Channel<Counted> ch(&sched, "ch");
  std::vector<int> got;
  {
    ShutdownGuard guard(&sched);
    // Receivers park FIRST, then values are pushed through the fast path.
    auto receiver = [](Channel<Counted>* ch, std::vector<int>* got) -> Process {
      for (int i = 0; i < 40; ++i) {
        Counted value = co_await ch->Receive();
        got->push_back(value.id());
      }
    };
    auto sender = [](Scheduler* s, Channel<Counted>* ch) -> Process {
      co_await s->WaitFor(Millis(1));  // let receivers park
      for (int i = 1; i <= 80; ++i) {
        Counted value(i);
        co_await ch->Send(std::move(value));
      }
    };
    sched.Spawn(receiver(&ch, &got), "rx1");
    sched.Spawn(receiver(&ch, &got), "rx2");
    sched.Spawn(sender(&sched, &ch), "tx");
    sched.RunUntilQuiescent();
  }
  ASSERT_EQ(got.size(), 80u);
  std::map<int, int> seen;
  for (int id : got) {
    ++seen[id];
  }
  EXPECT_EQ(seen.size(), 80u);
}

TEST_F(CountedChannelTest, AltRacesNeverDuplicateOrLoseValues) {
  Scheduler sched;
  Channel<Counted> a(&sched, "a");
  Channel<Counted> b(&sched, "b");
  std::vector<int> got;
  {
    ShutdownGuard guard(&sched);
    auto producer = [](Scheduler* s, Channel<Counted>* ch, int base, Duration pace) -> Process {
      for (int i = 0; i < 100; ++i) {
        Counted value(base + i);
        co_await ch->Send(std::move(value));
        co_await s->WaitFor(pace);
      }
    };
    auto selector = [](Scheduler* s, Channel<Counted>* a, Channel<Counted>* b,
                       std::vector<int>* got) -> Process {
      for (int i = 0; i < 200; ++i) {
        Alt alt(s);
        alt.OnReceive(*a).OnReceive(*b);
        int chosen = co_await alt.Select();
        Counted value;
        if (chosen == 0) {
          value = co_await a->Receive();
        } else {
          value = co_await b->Receive();
        }
        got->push_back(value.id());
      }
    };
    sched.Spawn(producer(&sched, &a, 10000, Micros(70)), "pa");
    sched.Spawn(producer(&sched, &b, 20000, Micros(110)), "pb");
    sched.Spawn(selector(&sched, &a, &b, &got), "sel");
    sched.RunUntilQuiescent();
  }
  ASSERT_EQ(got.size(), 200u);
  std::map<int, int> seen;
  for (int id : got) {
    ++seen[id];
  }
  EXPECT_EQ(seen.size(), 200u);
}

TEST_F(CountedChannelTest, ShutdownReleasesInFlightValues) {
  // Values parked inside channels or held in frames must be released when
  // the scheduler tears the world down mid-flight.
  Scheduler sched;
  Channel<Counted> ch(&sched, "ch");
  {
    ShutdownGuard guard(&sched);
    auto sender = [](Channel<Counted>* ch) -> Process {
      for (int i = 1; i <= 10; ++i) {
        Counted value(i);
        co_await ch->Send(std::move(value));  // wedges: no receiver
      }
    };
    sched.Spawn(sender(&ch), "tx");
    sched.RunFor(Millis(1));
    EXPECT_GT(Counted::live_count, 0);  // some values parked in the channel
  }
  // Channel destruction (holding parked values) happens after the guard; at
  // TearDown everything must be accounted for.
  // NOTE: ch outlives the guard here, so drop its parked values explicitly
  // by destroying it via scope end — TearDown checks the count.
}

TEST_F(CountedChannelTest, RandomizedChurn) {
  // A randomized soak across two channels, three producers, two alt-based
  // consumers and timeouts; the invariant is conservation of values.
  Scheduler sched;
  Channel<Counted> a(&sched, "a");
  Channel<Counted> b(&sched, "b");
  int produced = 0;
  int consumed = 0;
  {
    ShutdownGuard guard(&sched);
    Rng rng(777);
    auto producer = [](Scheduler* s, Channel<Counted>* ch, Rng rng, int base,
                       int* produced) -> Process {
      for (int i = 0; i < 300; ++i) {
        Counted value(base + i);
        ++*produced;
        co_await ch->Send(std::move(value));
        co_await s->WaitFor(Micros(rng.UniformInt(1, 200)));
      }
    };
    auto consumer = [](Scheduler* s, Channel<Counted>* a, Channel<Counted>* b, Rng rng,
                       int* consumed) -> Process {
      for (;;) {
        Alt alt(s);
        alt.OnReceive(*a).OnReceive(*b).OnTimeoutAfter(Micros(rng.UniformInt(50, 500)));
        int chosen = co_await alt.Select();
        if (chosen == 2) {
          continue;  // timeout: model bursty consumers
        }
        Counted value;
        if (chosen == 0) {
          value = co_await a->Receive();
        } else {
          value = co_await b->Receive();
        }
        ++*consumed;
      }
    };
    sched.Spawn(producer(&sched, &a, rng.Fork(), 100000, &produced), "p1");
    sched.Spawn(producer(&sched, &a, rng.Fork(), 200000, &produced), "p2");
    sched.Spawn(producer(&sched, &b, rng.Fork(), 300000, &produced), "p3");
    sched.Spawn(consumer(&sched, &a, &b, rng.Fork(), &consumed), "c1");
    sched.Spawn(consumer(&sched, &a, &b, rng.Fork(), &consumed), "c2");
    sched.RunFor(Seconds(2));
    EXPECT_EQ(produced, 900);
    EXPECT_EQ(consumed, produced);
  }
}

// --- engine determinism golden ----------------------------------------------
// A seeded storm exercising every hot engine path at once: channel
// rendezvous, Alt with timeouts (arm-and-cancel churn), spawn/exit churn at
// both priorities, direct AddTimer with interleaved cancellation.  The
// dispatch interleaving is folded into a hash and pinned to a golden
// constant captured from the pre-timer-wheel engine, so any engine change
// that reorders dispatch — however slightly — fails loudly.

Process GoldenChild(Scheduler* s, int id, EventLog* log) {
  co_await s->WaitFor(Micros(50 + (id % 7) * 13));
  log->Note("c", s->now(), id);
}

Process GoldenSpawner(Scheduler* s, EventLog* log) {
  for (int i = 0; i < 500; ++i) {
    s->Spawn(GoldenChild(s, i, log), "child",
             i % 3 == 0 ? Priority::kHigh : Priority::kLow);
    co_await s->WaitFor(Micros(777));
  }
}

Process GoldenProducer(Scheduler* s, Channel<int>* ch, Rng rng, int base, EventLog* log) {
  for (int i = 0; i < 400; ++i) {
    co_await ch->Send(base + i);
    log->Note("p", s->now(), base + i);
    co_await s->WaitFor(Micros(rng.UniformInt(40, 900)));
  }
}

Process GoldenConsumer(Scheduler* s, Channel<int>* a, Channel<int>* b, Rng rng, int id,
                       EventLog* log) {
  for (;;) {
    Alt alt(s);
    alt.OnReceive(*a).OnReceive(*b).OnTimeoutAfter(Micros(rng.UniformInt(80, 600)));
    int chosen = co_await alt.Select();
    if (chosen == 2) {
      log->Note("t", s->now(), id);
      continue;
    }
    int v = 0;
    if (chosen == 0) {
      v = co_await a->Receive();
    } else {
      v = co_await b->Receive();
    }
    log->Note("r", s->now(), static_cast<int64_t>(id) * 1'000'000 + v);
  }
}

uint64_t RunGoldenStorm() {
  EventLog log;
  Scheduler sched;
  Channel<int> a(&sched, "a");
  Channel<int> b(&sched, "b");
  ShutdownGuard guard(&sched);
  Rng rng(424242);
  sched.Spawn(GoldenProducer(&sched, &a, rng.Fork(), 100000, &log), "p1");
  sched.Spawn(GoldenProducer(&sched, &a, rng.Fork(), 200000, &log), "p2");
  sched.Spawn(GoldenProducer(&sched, &b, rng.Fork(), 300000, &log), "p3");
  sched.Spawn(GoldenConsumer(&sched, &a, &b, rng.Fork(), 1, &log), "c1");
  sched.Spawn(GoldenConsumer(&sched, &a, &b, rng.Fork(), 2, &log), "c2");
  sched.Spawn(GoldenSpawner(&sched, &log), "spawner");
  // Direct timers with interleaved cancellation: equal-ish deadlines spread
  // over several wheel levels, odd ones cancelled before they can fire.
  EventLog* log_ptr = &log;
  std::vector<TimerHandle> handles;
  for (int i = 0; i < 64; ++i) {
    const int id = i;
    handles.push_back(sched.AddTimer(Millis(5) + Micros((i / 2) * 37),
                                     [log_ptr, id] { log_ptr->Note("d", 0, id); }));
  }
  for (size_t i = 1; i < handles.size(); i += 2) {
    handles[i].Cancel();
  }
  sched.RunFor(Seconds(2));
  return Fnv1a64(log.text);
}

TEST(EngineDeterminismTest, SeededStormDispatchOrderMatchesGolden) {
  // Captured from the engine before the timer-wheel/slab overhaul; the
  // rewritten engine must reproduce the interleaving bit for bit.
  const uint64_t kGolden = 7539579063732843280ull;
  const uint64_t first = RunGoldenStorm();
  const uint64_t second = RunGoldenStorm();
  EXPECT_EQ(first, second) << "engine is not run-to-run deterministic";
  EXPECT_EQ(first, kGolden) << "dispatch order diverged from the golden trace";
}

// --- timer wheel edge cases --------------------------------------------------

TEST(TimerWheelEdgeTest, EqualDeadlineFifoAcrossCascadeBoundary) {
  // Half the timers are armed from t=0 (the 5 ms deadline lands on an upper
  // wheel level); a dummy wakeup at 4.9 ms drags the cursor into the
  // deadline's own level-0 window, cascading them down; the other half is
  // then armed straight into level 0.  Arm order must survive the cascade.
  Scheduler sched;
  std::vector<int> fired;
  std::vector<int>* fired_ptr = &fired;
  const Time deadline = sched.now() + Millis(5);
  for (int i = 0; i < 8; ++i) {
    sched.AddTimer(deadline, [fired_ptr, i] { fired_ptr->push_back(i); });
  }
  sched.AddTimer(sched.now() + Micros(4'900), [fired_ptr] { fired_ptr->push_back(-1); });
  sched.RunFor(Micros(4'950));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], -1);
  for (int i = 8; i < 16; ++i) {
    sched.AddTimer(deadline, [fired_ptr, i] { fired_ptr->push_back(i); });
  }
  sched.RunFor(Millis(1));
  ASSERT_EQ(fired.size(), 17u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(fired[i + 1], i) << "equal-deadline FIFO broken at position " << i;
  }
}

TEST(TimerWheelEdgeTest, FarFutureTimersFallBackToHeapAndKeepSeqOrder) {
  // Two hours is beyond the wheel's 2^32-microsecond span, so the first
  // timer parks on the overflow heap.  A second timer armed much later for
  // the SAME absolute deadline fits the wheel; the heap node was armed first
  // (smaller seq) and must win the tie.
  Scheduler sched;
  std::vector<int> fired;
  std::vector<int>* fired_ptr = &fired;
  const Time deadline = sched.now() + Seconds(7'200);
  sched.AddTimer(deadline, [fired_ptr] { fired_ptr->push_back(1); });
  EXPECT_EQ(sched.pending_timer_count(), 1u);
  sched.AddTimer(sched.now() + Seconds(7'000), [fired_ptr] { fired_ptr->push_back(0); });
  sched.RunFor(Seconds(7'000));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 0);
  // Now inside wheel range of the heap timer's deadline: a later-armed twin.
  sched.AddTimer(deadline, [fired_ptr] { fired_ptr->push_back(2); });
  sched.RunFor(Seconds(300));
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[1], 1) << "heap-parked timer (armed first) lost the equal-deadline tie";
  EXPECT_EQ(fired[2], 2);
  EXPECT_EQ(sched.pending_timer_count(), 0u);
}

TEST(TimerWheelEdgeTest, CancelThenRefireViaRecycledNode) {
  // Cancelling A frees its intrusive node; arming B immediately reuses it.
  // The generation counter must keep A's stale handle from touching B.
  Scheduler sched;
  std::vector<int> fired;
  std::vector<int>* fired_ptr = &fired;
  TimerHandle a = sched.AddTimer(sched.now() + Millis(2), [fired_ptr] { fired_ptr->push_back(1); });
  a.Cancel();
  EXPECT_EQ(sched.pending_timer_count(), 0u);
  TimerHandle b = sched.AddTimer(sched.now() + Millis(2), [fired_ptr] { fired_ptr->push_back(2); });
  a.Cancel();  // stale: must NOT cancel b, which recycled a's node
  EXPECT_EQ(sched.pending_timer_count(), 1u);
  sched.RunFor(Millis(3));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 2);
  b.Cancel();  // fired already: safe no-op
  EXPECT_EQ(sched.pending_timer_count(), 0u);
}

TEST(TimerWheelEdgeTest, CancellationFloodKeepsPendingCountBounded) {
  // Regression for the old engine, where Cancel only flagged the record and
  // the heap kept every corpse until its deadline: a hundred thousand
  // arm/cancel cycles must leave nothing pending, on both the wheel (near
  // deadlines, O(1) unlink) and the overflow heap (far deadlines, lazy
  // prune + compaction).
  Scheduler sched;
  int fired = 0;
  int* fired_ptr = &fired;
  for (int i = 0; i < 100'000; ++i) {
    TimerHandle h =
        sched.AddTimer(sched.now() + Millis(1 + i % 50), [fired_ptr] { ++*fired_ptr; });
    h.Cancel();
    ASSERT_EQ(sched.pending_timer_count(), 0u) << "wheel cancel leaked at iteration " << i;
  }
  for (int i = 0; i < 100'000; ++i) {
    TimerHandle h =
        sched.AddTimer(sched.now() + Seconds(10'000 + i % 50), [fired_ptr] { ++*fired_ptr; });
    h.Cancel();
    ASSERT_EQ(sched.pending_timer_count(), 0u) << "heap cancel leaked at iteration " << i;
  }
  sched.RunFor(Seconds(20'000));
  EXPECT_EQ(fired, 0);
}

TEST(TimerWheelEdgeTest, KillProcessesMidStormWithPendingWheelTimers) {
  // Victims parked on WaitFor keep their slab slot pinned until the wheel
  // fires their wakeup; the fire must notice the corpse, release the slot,
  // and never resume the destroyed frame.
  Scheduler sched;
  int victim_wakeups = 0;
  int* wakeups_ptr = &victim_wakeups;
  auto victim = [](Scheduler* s, int* wakeups) -> Process {
    for (;;) {
      co_await s->WaitFor(Millis(20));
      ++*wakeups;
    }
  };
  auto survivor = [](Scheduler* s, int n, int* count) -> Process {
    for (int i = 0; i < n; ++i) {
      co_await s->WaitFor(Millis(1));
      ++*count;
    }
  };
  int survivor_wakeups = 0;
  for (int i = 0; i < 200; ++i) {
    sched.Spawn(victim(&sched, wakeups_ptr), "victim");
  }
  sched.Spawn(survivor(&sched, 60, &survivor_wakeups), "survivor");
  sched.RunFor(Millis(10));  // all victims parked mid-interval on wheel timers
  const size_t timers_before = sched.pending_timer_count();
  EXPECT_GE(timers_before, 200u);
  const size_t killed =
      sched.KillProcesses([](const ProcessCtx& ctx) { return ctx.name == "victim"; });
  EXPECT_EQ(killed, 200u);
  // Slots stay pinned by the in-flight wakeups, then drain as they fire.
  sched.RunFor(Millis(50));
  EXPECT_EQ(victim_wakeups, 0) << "a killed process was resumed by its pending timer";
  EXPECT_EQ(survivor_wakeups, 60);
  sched.RunUntilQuiescent();
  EXPECT_EQ(sched.pending_timer_count(), 0u);
  EXPECT_EQ(sched.tracked_process_count(), 0u) << "killed ctxs never returned to the slab";
}

}  // namespace
}  // namespace pandora
