// Golden determinism tests for the batched ingress/egress pipeline
// (DESIGN.md §15).
//
// The batching argument: every drain primitive harvests only work that is
// ALREADY parked at the same simulated instant, and dispatch round-trips
// cost zero simulated time, so at max_hold = 0 a batched run and the legacy
// one-segment-per-wakeup run see identical queue occupancies at every
// simulated time — every observable (deliveries, losses, gap detection,
// copies, mixer output) must coincide bit for bit.  These tests pin that
// claim end-to-end on a real multi-box world, and pin that batching stays
// thread-count- and partition-invariant when the world spans a ShardSet.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/buffer/clawback.h"
#include "src/core/box.h"
#include "src/core/simulation.h"
#include "src/net/atm.h"
#include "src/runtime/channel.h"
#include "src/runtime/time.h"

namespace pandora {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xff;
    hash *= 1099511628211ull;
  }
  return hash;
}

// Fast clawback so P8 convergence happens inside a short run (same tuning
// the chaos suite uses).
ClawbackConfig FastClawback() {
  ClawbackConfig config;
  config.count_threshold = 16;
  return config;
}

struct RingWorld {
  Simulation sim;
  std::vector<PandoraBox*> boxes;
  std::vector<StreamId> at_dst;
  std::vector<PandoraBox*> dst;
  explicit RingWorld(const SimulationOptions& options) : sim(options) {}
};

// Four audio boxes in a call ring.  With shards > 1 the boxes are pinned
// round-robin so every call crosses a shard boundary; with shards = 1 the
// same world runs on the legacy single engine.
void BuildRingWorld(RingWorld& world, const BatchOptions& batch) {
  const int shards = world.sim.shard_set().shard_count();
  for (int i = 0; i < 4; ++i) {
    PandoraBox::Options options;
    options.name = "ring" + std::to_string(i);
    options.with_video = false;
    options.clawback = FastClawback();
    options.batch = batch;
    options.shard = i % shards;
    world.boxes.push_back(&world.sim.AddBox(options));
  }
  world.sim.Start();
  CallPath wan;
  wan.direct.propagation = Millis(1);
  for (int i = 0; i < 4; ++i) {
    PandoraBox& src = *world.boxes[static_cast<size_t>(i)];
    PandoraBox& dst = *world.boxes[static_cast<size_t>((i + 1) % 4)];
    world.at_dst.push_back(world.sim.SendAudio(src, dst, wan));
    world.dst.push_back(&dst);
  }
}

// Order-sensitive digest of the run's OBSERVABLES.  Deliberately excludes
// context-switch counts: batching exists to change those.  Everything a
// listener could measure — per-circuit delivery and loss, sequence gaps,
// copies, network totals — goes in.
uint64_t ObservableFingerprint(RingWorld& world) {
  Simulation& sim = world.sim;
  uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, sim.network().total_delivered());
  hash = FnvMix(hash, sim.network().total_lost());
  hash = FnvMix(hash, sim.network().total_corrupted());
  hash = FnvMix(hash, sim.network().bytes_on_wire());
  hash = FnvMix(hash, static_cast<uint64_t>(sim.shard_set().now()));
  for (PandoraBox* box : world.boxes) {
    hash = FnvMix(hash, box->deep_copies());
  }
  for (size_t i = 0; i < world.at_dst.size(); ++i) {
    const SequenceTracker* tracker = world.dst[i]->audio_receiver().TrackerFor(world.at_dst[i]);
    if (tracker == nullptr) {
      hash = FnvMix(hash, 0);
      continue;
    }
    hash = FnvMix(hash, tracker->received());
    hash = FnvMix(hash, tracker->missing_total());
    hash = FnvMix(hash, tracker->suspects());
  }
  return hash;
}

uint64_t RunRing(int shards, int threads, const BatchOptions& batch, uint64_t* delivered) {
  SimulationOptions options;
  options.seed = 29;
  options.shards = shards;
  options.threads = threads;
  RingWorld world(options);
  BuildRingWorld(world, batch);
  world.sim.RunFor(Seconds(3));
  if (delivered != nullptr) {
    *delivered = world.sim.network().total_delivered();
  }
  return ObservableFingerprint(world);
}

TEST(BatchDeterminismTest, BatchedRunMatchesUnbatchedGoldenAtMaxHoldZero) {
  BatchOptions legacy;
  legacy.max_batch = 1;  // the pre-batching engine, path for path
  BatchOptions batched;
  batched.max_batch = 16;
  batched.max_hold = 0;

  uint64_t delivered_legacy = 0;
  uint64_t delivered_batched = 0;
  const uint64_t golden = RunRing(1, 1, legacy, &delivered_legacy);
  const uint64_t with_batching = RunRing(1, 1, batched, &delivered_batched);
  EXPECT_GT(delivered_legacy, 1000u);  // the ring actually carried traffic
  EXPECT_EQ(golden, with_batching)
      << "batched drain changed an observable (delivered " << delivered_legacy << " vs "
      << delivered_batched << ")";
}

TEST(BatchDeterminismTest, BatchBoundariesAreThreadCountAndPartitionInvariant) {
  BatchOptions batched;
  batched.max_batch = 16;

  uint64_t delivered = 0;
  const uint64_t sharded_seq = RunRing(4, 1, batched, &delivered);
  const uint64_t sharded_par = RunRing(4, 4, batched, nullptr);
  EXPECT_GT(delivered, 1000u);
  EXPECT_EQ(sharded_seq, sharded_par) << "thread count leaked into batch boundaries";
}

TEST(BatchDeterminismTest, MaxHoldCoalescesWithoutLosingTraffic) {
  // A nonzero hold delays the drain by bounded simulated time; observables
  // may legitimately shift, but nothing may be lost or reordered on a
  // lossless ring, and replay must stay exact.
  BatchOptions held;
  held.max_batch = 16;
  held.max_hold = Micros(250);

  uint64_t delivered_first = 0;
  const uint64_t first = RunRing(1, 1, held, &delivered_first);
  const uint64_t replay = RunRing(1, 1, held, nullptr);
  EXPECT_EQ(first, replay) << "max_hold > 0 run did not replay bit-exactly";
  EXPECT_GT(delivered_first, 1000u);

  SimulationOptions options;
  options.seed = 29;
  RingWorld world(options);
  BuildRingWorld(world, held);
  world.sim.RunFor(Seconds(3));
  for (size_t i = 0; i < world.at_dst.size(); ++i) {
    const SequenceTracker* tracker = world.dst[i]->audio_receiver().TrackerFor(world.at_dst[i]);
    ASSERT_NE(tracker, nullptr);
    EXPECT_GT(tracker->received(), 500u);  // ~750 segments per circuit in 3 s
    EXPECT_EQ(tracker->missing_total(), 0u) << "hold-coalesced ring lost segments";
  }
}

}  // namespace
}  // namespace pandora
