// Shard-invariance determinism suite for the M:N scheduler (ShardSet).
//
// The contract under test, from DESIGN.md section 13: per-shard dispatch
// order is a pure function of (seed, plan, shard assignment) — never of the
// executor thread count — and the single-shard configuration is bit-
// identical to a bare Scheduler, so every pre-shard golden keeps its bytes.
//
// Three configurations of the same storm are compared:
//
//   threads=1 / shards=1     the legacy engine (delegation fast path)
//   threads=1 / shards=8     conservative windows, no worker pool
//   threads=8 / shards=8     conservative windows on 8 OS threads
//
// The last two must agree on EVERYTHING (per-shard order-sensitive hashes,
// window count, cross-shard message count, context switches): M:N execution
// is pure bookkeeping.  The first must agree on the partition-invariant
// merged hash and every traffic total: conservative sync delivers the same
// multiset of (time, payload) per link that the sequential engine does.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/core/box.h"
#include "src/core/simulation.h"
#include "src/fault/plan.h"
#include "src/overlay/sharded.h"
#include "src/overlay/topology.h"
#include "src/overlay/tree.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/shard_set.h"
#include "src/runtime/time.h"
#include "tests/shard_harness.h"

namespace pandora {
namespace {

ShardStormOptions BaseStorm(uint64_t seed) {
  ShardStormOptions opt;
  opt.shards = 8;
  opt.threads = 1;
  opt.total_actors = 32;
  opt.seed = seed;
  opt.duration = Seconds(1);
  return opt;
}

TEST(ShardDeterminism, ThreadCountIsInvisible) {
  // Same partition, 1 vs 8 executor threads: every observable — including
  // the order-sensitive per-shard chains and the scheduler digests — must be
  // byte-identical.  This is the M:N core guarantee.
  ShardStormOptions sequential = BaseStorm(0xA11CE);
  ShardStormOptions threaded = sequential;
  threaded.threads = 8;

  const ShardStormResult a = RunShardStorm(sequential);
  const ShardStormResult b = RunShardStorm(threaded);

  ASSERT_EQ(a.shard_hashes.size(), 8u);
  for (size_t s = 0; s < a.shard_hashes.size(); ++s) {
    EXPECT_EQ(a.shard_hashes[s], b.shard_hashes[s]) << "shard " << s << " diverged";
  }
  EXPECT_TRUE(a == b);
  // The storm was real: traffic crossed shards and forwarders churned.
  EXPECT_GT(a.deliveries, 1000u);
  EXPECT_GT(a.cross_shard_messages, 1000u);
  EXPECT_GT(a.replies, 0u);
  EXPECT_GT(a.windows, 0u);
}

TEST(ShardDeterminism, PartitionIsInvisibleToObservables) {
  // 1 shard vs 8 shards (either thread count): the partition may only change
  // which wheel arms a timer, never what any actor observes.  Totals and the
  // commutative merged hash pin the multiset of deliveries per link.
  ShardStormOptions single = BaseStorm(0xBEEF);
  single.shards = 1;
  ShardStormOptions eight = BaseStorm(0xBEEF);
  ShardStormOptions eight_mt = eight;
  eight_mt.threads = 8;

  const ShardStormResult one = RunShardStorm(single);
  const ShardStormResult seq = RunShardStorm(eight);
  const ShardStormResult par = RunShardStorm(eight_mt);

  EXPECT_EQ(one.merged_hash, seq.merged_hash);
  EXPECT_EQ(one.merged_hash, par.merged_hash);
  EXPECT_EQ(one.sends, seq.sends);
  EXPECT_EQ(one.deliveries, seq.deliveries);
  EXPECT_EQ(one.drops, seq.drops);
  EXPECT_EQ(one.replies, seq.replies);
  EXPECT_GT(one.deliveries, 1000u);
  // The single-shard run went down the legacy fast path: no windows, no
  // mailboxes — the pre-shard engine, byte for byte.
  EXPECT_EQ(one.windows, 0u);
  EXPECT_EQ(one.cross_shard_messages, 0u);
  EXPECT_GT(seq.cross_shard_messages, 0u);
}

TEST(ShardDeterminism, ReplayIsBitExactAcrossRuns) {
  // Two cold runs of the identical threaded configuration, fault plan and
  // all: process slabs, wheels, pools and worker pool are rebuilt from
  // scratch, and every hash must still come out identical.
  RandomPlanOptions plan_options;
  plan_options.start = Millis(100);
  plan_options.horizon = Millis(700);
  plan_options.min_events = 4;
  plan_options.max_events = 8;
  plan_options.box_count = 32;
  plan_options.call_count = 4;
  plan_options.min_episode = Millis(50);
  plan_options.max_episode = Millis(200);
  const FaultPlan plan = RandomFaultPlan(0xD15EA5E, plan_options);

  ShardStormOptions opt = BaseStorm(0xF00D);
  opt.threads = 8;
  opt.plan = &plan;

  const ShardStormResult first = RunShardStorm(opt);
  const ShardStormResult second = RunShardStorm(opt);
  EXPECT_TRUE(first == second);
  EXPECT_GT(first.deliveries, 0u);
}

TEST(ShardDeterminism, ChaosOverlayIsPartitionInvariant) {
  // A scripted storm with every materialised fault kind: crashes + restarts
  // (kill sweeps mid-window), churn, burst loss and a jitter storm.  The
  // merged hash must survive repartitioning even while actors die and their
  // forwarders are swept.
  FaultPlan plan;
  FaultEvent crash;
  crash.at = Millis(200);
  crash.kind = FaultKind::kBoxCrash;
  crash.target = 3;
  crash.duration = Millis(150);
  plan.events.push_back(crash);
  FaultEvent churn;
  churn.at = Millis(300);
  churn.kind = FaultKind::kChurn;
  churn.target = 13;
  churn.duration = Millis(200);
  plan.events.push_back(churn);
  FaultEvent loss;
  loss.at = Millis(350);
  loss.kind = FaultKind::kBurstLoss;
  loss.value = 0.4;
  loss.duration = Millis(250);
  plan.events.push_back(loss);
  FaultEvent jitter;
  jitter.at = Millis(500);
  jitter.kind = FaultKind::kJitterStorm;
  jitter.value = 900;  // up to 900us of extra (still lookahead-safe) latency
  jitter.duration = Millis(300);
  plan.events.push_back(jitter);

  ShardStormOptions single = BaseStorm(0xCAFE);
  single.shards = 1;
  single.plan = &plan;
  ShardStormOptions eight_mt = BaseStorm(0xCAFE);
  eight_mt.threads = 8;
  eight_mt.plan = &plan;

  const ShardStormResult one = RunShardStorm(single);
  const ShardStormResult par = RunShardStorm(eight_mt);

  // The overlay engaged identically in both partitions.
  EXPECT_EQ(one.crashes, 2u);
  EXPECT_EQ(one.restarts, 2u);
  EXPECT_GT(one.drops, 0u);
  EXPECT_EQ(par.crashes, one.crashes);
  EXPECT_EQ(par.restarts, one.restarts);
  EXPECT_EQ(par.drops, one.drops);
  EXPECT_EQ(par.sends, one.sends);
  EXPECT_EQ(par.deliveries, one.deliveries);
  EXPECT_EQ(par.merged_hash, one.merged_hash);
}

TEST(ShardDeterminism, SingleShardIsBitIdenticalToBareScheduler) {
  // The golden-compatibility proof: the identical coroutine workload on a
  // bare Scheduler and on ShardSet{shards=1} must agree on the full
  // execution fingerprint — clock, context switches, pending timers, event
  // chain.  This is why every pre-shard golden (chaos_golden, the trace and
  // core goldens) is untouched by this refactor: Simulation now runs on a
  // ShardSet, and this path adds zero perturbation.
  auto pinger = [](Scheduler* sched, uint64_t* chain, int id, int rounds) -> Process {
    for (int i = 0; i < rounds; ++i) {
      co_await sched->WaitFor(Micros(100 + 37 * id));
      *chain = FnvMix(*chain, static_cast<uint64_t>(sched->now()) ^ static_cast<uint64_t>(id));
      if ((i & 3) == 0) {
        co_await sched->Yield();
        *chain = FnvMix(*chain, 0x5eedull + static_cast<uint64_t>(id));
      }
    }
  };
  struct Fingerprint {
    uint64_t chain = 1469598103934665603ull;
    uint64_t switches = 0;
    Time now = 0;
    size_t pending = 0;
    size_t live = 0;
  };
  const auto drive = [&](Scheduler& sched, auto run_until) {
    Fingerprint fp;
    for (int id = 0; id < 16; ++id) {
      sched.Spawn(pinger(&sched, &fp.chain, id, 40), "pinger",
                  (id & 1) != 0 ? Priority::kHigh : Priority::kLow);
    }
    run_until(Millis(30));
    fp.switches = sched.context_switches();
    fp.now = sched.now();
    fp.pending = sched.pending_timer_count();
    fp.live = sched.live_process_count();
    return fp;
  };

  Scheduler bare;
  const Fingerprint a = drive(bare, [&](Time t) { bare.RunUntil(t); });
  bare.Shutdown();

  ShardSet set(ShardSetOptions{});  // shards=1, threads=1
  const Fingerprint b = drive(set.scheduler(), [&](Time t) { set.RunUntil(t); });

  EXPECT_EQ(a.chain, b.chain);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.now, b.now);
  EXPECT_EQ(a.pending, b.pending);
  EXPECT_EQ(a.live, b.live);
  EXPECT_NE(a.switches, 0u);
  // Legacy mode never opened a window or touched a mailbox.
  EXPECT_EQ(set.windows(), 0u);
  EXPECT_EQ(set.cross_shard_messages(), 0u);
  set.Shutdown();
}

TEST(ShardDeterminism, LookaheadScalesWindowCountNotObservables) {
  // Doubling the lookahead halves (roughly) the number of windows but must
  // not change what any actor sees: the window size is an engine tuning
  // knob, not a semantic one.  (Links in the storm carry latency >= the
  // configured lookahead, so both settings satisfy the contract.)
  ShardStormOptions tight = BaseStorm(0x1DEA);
  tight.lookahead = Millis(1);
  tight.base_latency = Millis(1);  // pin link latency across the sweep
  tight.duration = Millis(500);
  ShardStormOptions wide = tight;
  wide.lookahead = Micros(500);  // same links, smaller safe horizon

  const ShardStormResult a = RunShardStorm(tight);
  const ShardStormResult c = RunShardStorm(wide);
  EXPECT_GT(c.windows, a.windows);
  EXPECT_EQ(a.merged_hash, c.merged_hash);
  EXPECT_EQ(a.sends, c.sends);
  EXPECT_EQ(a.deliveries, c.deliveries);
}

// --- Spanning Simulation worlds ---------------------------------------------
// The full product stack — PandoraBoxes, the ATM fabric, host plumbing —
// placed across the ShardSet rather than the synthetic storm actors above.

struct SpanningCalls {
  std::vector<PandoraBox*> boxes;
  std::vector<StreamId> at_dst;
  std::vector<PandoraBox*> dst;
};

// Four audio-only boxes pinned round-robin onto the set's shards, a ring of
// calls between neighbours (every leg cross-shard when shards > 1) plus one
// split copy two shards away.  Cross-shard circuits carry a 1 ms final
// propagation — exactly the set's lookahead floor.
SpanningCalls BuildSpanningWorld(Simulation& sim) {
  SpanningCalls world;
  const int shards = sim.shard_set().shard_count();
  for (int i = 0; i < 4; ++i) {
    PandoraBox::Options options;
    options.name = "span" + std::to_string(i);
    options.with_video = false;
    options.shard = i % shards;
    world.boxes.push_back(&sim.AddBox(options));
  }
  sim.Start();
  CallPath wan;
  wan.direct.propagation = Millis(1);
  for (int i = 0; i < 4; ++i) {
    PandoraBox& src = *world.boxes[static_cast<size_t>(i)];
    PandoraBox& dst = *world.boxes[static_cast<size_t>((i + 1) % 4)];
    world.at_dst.push_back(sim.SendAudio(src, dst, wan));
    world.dst.push_back(&dst);
  }
  world.at_dst.push_back(
      sim.SplitAudioTo(*world.boxes[0], world.boxes[0]->mic_stream(), *world.boxes[2], wan));
  world.dst.push_back(world.boxes[2]);
  return world;
}

// Order-sensitive digest of everything the world observed: fabric totals,
// per-shard execution fingerprints, per-box wire-path copies, per-call
// receive trackers, per-shard report logs.
uint64_t SpanningFingerprint(Simulation& sim, const SpanningCalls& world) {
  uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, sim.network().total_delivered());
  hash = FnvMix(hash, sim.network().total_lost());
  hash = FnvMix(hash, sim.network().total_corrupted());
  for (int s = 0; s < sim.shard_set().shard_count(); ++s) {
    Scheduler& shard = sim.shard_set().shard(s);
    hash = FnvMix(hash, shard.context_switches());
    hash = FnvMix(hash, static_cast<uint64_t>(shard.now()));
    hash = FnvMix(hash, shard.pending_timer_count());
    hash = FnvMix(hash, sim.reports_for(s).size());
  }
  for (PandoraBox* box : world.boxes) {
    hash = FnvMix(hash, box->crash_count());
    hash = FnvMix(hash, box->crashed() ? 1u : box->deep_copies());
  }
  for (size_t i = 0; i < world.at_dst.size(); ++i) {
    if (world.dst[i]->crashed()) {
      hash = FnvMix(hash, 0xdead);
      continue;
    }
    const SequenceTracker* tracker =
        world.dst[i]->audio_receiver().TrackerFor(world.at_dst[i]);
    if (tracker == nullptr) {
      hash = FnvMix(hash, 0);
      continue;
    }
    hash = FnvMix(hash, tracker->received());
    hash = FnvMix(hash, tracker->missing_total());
  }
  return hash;
}

TEST(SpanningSimulation, ThreadCountIsInvisible) {
  // The acceptance bar for the spanning refactor: a Simulation whose boxes
  // live on four different shards produces byte-identical observables at 1
  // and 4 worker threads.
  SimulationOptions options;
  options.seed = 0x5A17;
  options.shards = 4;
  options.threads = 1;
  Simulation seq(options);
  SpanningCalls seq_world = BuildSpanningWorld(seq);
  seq.RunFor(Seconds(2));

  options.threads = 4;
  Simulation par(options);
  SpanningCalls par_world = BuildSpanningWorld(par);
  par.RunFor(Seconds(2));

  EXPECT_EQ(SpanningFingerprint(seq, seq_world), SpanningFingerprint(par, par_world));
  // The world genuinely spanned: live audio crossed shard boundaries.
  EXPECT_GT(seq.network().total_delivered(), 1000u);
  EXPECT_GT(seq.shard_set().cross_shard_messages(), 1000u);
  EXPECT_GT(par.shard_set().windows(), 0u);
}

TEST(SpanningSimulation, LegacyCtorIsTheSingleShardOptionsWorld) {
  // Simulation(seed) must be exactly SimulationOptions{seed} with one shard:
  // same placement (none), same RNG streams, same execution fingerprint.
  Simulation legacy(7);
  SpanningCalls legacy_world = BuildSpanningWorld(legacy);
  legacy.RunFor(Seconds(1));

  SimulationOptions options;
  options.seed = 7;
  Simulation modern(options);
  SpanningCalls modern_world = BuildSpanningWorld(modern);
  modern.RunFor(Seconds(1));

  EXPECT_EQ(SpanningFingerprint(legacy, legacy_world),
            SpanningFingerprint(modern, modern_world));
  // Single-shard worlds ride the legacy fast path: no windows, no mailboxes.
  EXPECT_EQ(modern.shard_set().windows(), 0u);
  EXPECT_EQ(modern.shard_set().cross_shard_messages(), 0u);
}

TEST(SpanningSimulation, SeededPlacementIsDeterministicAndSpreads) {
  // Boxes that leave Options::shard at -1 draw from the Simulation's seeded
  // placement stream: two worlds with one seed place identically, and the
  // draws actually use more than one shard.
  SimulationOptions options;
  options.seed = 99;
  options.shards = 4;
  Simulation a(options);
  Simulation b(options);
  std::vector<int> placed_a;
  std::vector<int> placed_b;
  for (int i = 0; i < 16; ++i) {
    PandoraBox::Options box_options;
    box_options.name = "p" + std::to_string(i);
    box_options.with_video = false;
    placed_a.push_back(a.AddBox(box_options).shard());
    placed_b.push_back(b.AddBox(box_options).shard());
  }
  EXPECT_EQ(placed_a, placed_b);
  std::set<int> distinct(placed_a.begin(), placed_a.end());
  EXPECT_GT(distinct.size(), 1u);
  for (int shard : placed_a) {
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
  }
}

// --- The lookahead contract, enforced loudly --------------------------------

TEST(ShardSetPostDeathTest, PostInsideWindowViolatesLookaheadContract) {
  // A cross-shard message due at the sender's own `now` lands inside the
  // very window it was produced in: the destination may already have run
  // past that instant, so Post must refuse to rewrite history.
  ShardSetOptions options;
  options.shards = 2;
  options.threads = 1;  // no worker threads: safe for the default death-test style
  ShardSet set(options);
  ShardSet* sp = &set;
  set.shard(0).AddTimer(Millis(5), TimerCallback([sp] {
    sp->Post(0, 1, sp->shard(0).now(), TimerCallback([] {}));
  }));
  EXPECT_DEATH(set.RunUntilQuiescent(), "cross-shard Post inside the conservative window");
  set.Shutdown();
}

TEST(ShardSetPostDeathTest, PostGlobalIntoExecutedWindowDies) {
  ShardSetOptions options;
  options.shards = 2;
  options.threads = 1;
  ShardSet set(options);
  set.shard(0).AddTimer(Millis(5), TimerCallback([] {}));
  set.RunUntilQuiescent();
  EXPECT_DEATH(set.PostGlobal(Millis(1), TimerCallback([] {})), "already-executed window");
  set.Shutdown();
}

TEST(SpanningSimulationDeathTest, CrossShardCircuitBelowLookaheadFloorDies) {
  // The contract surfaces at plumbing time, not delivery time: opening a
  // circuit whose final-stage propagation undercuts the lookahead dies in
  // OpenCircuit, long before any segment could violate a window.
  SimulationOptions options;
  options.shards = 2;
  Simulation sim(options);
  PandoraBox::Options box_options;
  box_options.name = "near";
  box_options.with_video = false;
  box_options.shard = 0;
  PandoraBox& near_box = sim.AddBox(box_options);
  box_options.name = "far";
  box_options.shard = 1;
  PandoraBox& far_box = sim.AddBox(box_options);
  sim.Start();
  // Default direct quality: 20 us propagation, far below the 1 ms lookahead.
  EXPECT_DEATH(sim.SendAudio(near_box, far_box),
               "cross-shard circuit latency below the ShardSet lookahead floor");
}

// --- Sharded overlay data plane ---------------------------------------------

TEST(ShardedOverlay, RunHashIsThreadAndPartitionInvariant) {
  // A 600-receiver striped overlay under a churn storm: the observable run
  // hash must not depend on the worker-thread count, nor — because loss
  // draws are stateless per copy and every counter is per-receiver — on the
  // partition itself (1 shard vs 4).
  TopologyParams params;
  params.seed = 71;
  params.receivers = 600;
  params.fanout = 4;
  const auto run = [&params](int shards, int threads) {
    OverlayTopology topology = GenerateTopology(params);
    StripedTrees trees = TreeBuilder::Build(topology, 2, TreePolicy::kBalancedFanout);
    ChurnStormOptions storm;
    storm.receiver_count = params.receivers;
    storm.start = Millis(300);
    storm.horizon = Millis(1200);
    storm.min_events = 24;
    storm.max_events = 32;
    storm.permanent_fraction = 0.1;
    const FaultPlan plan = RandomChurnPlan(/*seed=*/5, storm);

    ShardSetOptions shard_options;
    shard_options.shards = shards;
    shard_options.threads = threads;
    ShardSet set(shard_options);
    ShardedOverlayMulticast multicast(&set, &topology, &trees, MulticastParams{}, 404);
    ShardedOverlayChurnDriver churn(&set, &multicast, plan);
    multicast.Start(/*emit_until=*/Millis(1800));
    churn.Start();
    set.RunUntilQuiescent();
    EXPECT_GT(multicast.emitted(), 0);
    EXPECT_GT(multicast.repairs(), 0);
    const uint64_t hash = multicast.RunHash();
    set.Shutdown();
    return hash;
  };
  const uint64_t single = run(1, 1);
  const uint64_t sharded = run(4, 1);
  const uint64_t threaded = run(4, 4);
  EXPECT_EQ(single, sharded);
  EXPECT_EQ(sharded, threaded);
}

}  // namespace
}  // namespace pandora
