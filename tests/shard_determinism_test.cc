// Shard-invariance determinism suite for the M:N scheduler (ShardSet).
//
// The contract under test, from DESIGN.md section 13: per-shard dispatch
// order is a pure function of (seed, plan, shard assignment) — never of the
// executor thread count — and the single-shard configuration is bit-
// identical to a bare Scheduler, so every pre-shard golden keeps its bytes.
//
// Three configurations of the same storm are compared:
//
//   threads=1 / shards=1     the legacy engine (delegation fast path)
//   threads=1 / shards=8     conservative windows, no worker pool
//   threads=8 / shards=8     conservative windows on 8 OS threads
//
// The last two must agree on EVERYTHING (per-shard order-sensitive hashes,
// window count, cross-shard message count, context switches): M:N execution
// is pure bookkeeping.  The first must agree on the partition-invariant
// merged hash and every traffic total: conservative sync delivers the same
// multiset of (time, payload) per link that the sequential engine does.
#include <gtest/gtest.h>

#include "src/fault/plan.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/shard_set.h"
#include "src/runtime/time.h"
#include "tests/shard_harness.h"

namespace pandora {
namespace {

ShardStormOptions BaseStorm(uint64_t seed) {
  ShardStormOptions opt;
  opt.shards = 8;
  opt.threads = 1;
  opt.total_actors = 32;
  opt.seed = seed;
  opt.duration = Seconds(1);
  return opt;
}

TEST(ShardDeterminism, ThreadCountIsInvisible) {
  // Same partition, 1 vs 8 executor threads: every observable — including
  // the order-sensitive per-shard chains and the scheduler digests — must be
  // byte-identical.  This is the M:N core guarantee.
  ShardStormOptions sequential = BaseStorm(0xA11CE);
  ShardStormOptions threaded = sequential;
  threaded.threads = 8;

  const ShardStormResult a = RunShardStorm(sequential);
  const ShardStormResult b = RunShardStorm(threaded);

  ASSERT_EQ(a.shard_hashes.size(), 8u);
  for (size_t s = 0; s < a.shard_hashes.size(); ++s) {
    EXPECT_EQ(a.shard_hashes[s], b.shard_hashes[s]) << "shard " << s << " diverged";
  }
  EXPECT_TRUE(a == b);
  // The storm was real: traffic crossed shards and forwarders churned.
  EXPECT_GT(a.deliveries, 1000u);
  EXPECT_GT(a.cross_shard_messages, 1000u);
  EXPECT_GT(a.replies, 0u);
  EXPECT_GT(a.windows, 0u);
}

TEST(ShardDeterminism, PartitionIsInvisibleToObservables) {
  // 1 shard vs 8 shards (either thread count): the partition may only change
  // which wheel arms a timer, never what any actor observes.  Totals and the
  // commutative merged hash pin the multiset of deliveries per link.
  ShardStormOptions single = BaseStorm(0xBEEF);
  single.shards = 1;
  ShardStormOptions eight = BaseStorm(0xBEEF);
  ShardStormOptions eight_mt = eight;
  eight_mt.threads = 8;

  const ShardStormResult one = RunShardStorm(single);
  const ShardStormResult seq = RunShardStorm(eight);
  const ShardStormResult par = RunShardStorm(eight_mt);

  EXPECT_EQ(one.merged_hash, seq.merged_hash);
  EXPECT_EQ(one.merged_hash, par.merged_hash);
  EXPECT_EQ(one.sends, seq.sends);
  EXPECT_EQ(one.deliveries, seq.deliveries);
  EXPECT_EQ(one.drops, seq.drops);
  EXPECT_EQ(one.replies, seq.replies);
  EXPECT_GT(one.deliveries, 1000u);
  // The single-shard run went down the legacy fast path: no windows, no
  // mailboxes — the pre-shard engine, byte for byte.
  EXPECT_EQ(one.windows, 0u);
  EXPECT_EQ(one.cross_shard_messages, 0u);
  EXPECT_GT(seq.cross_shard_messages, 0u);
}

TEST(ShardDeterminism, ReplayIsBitExactAcrossRuns) {
  // Two cold runs of the identical threaded configuration, fault plan and
  // all: process slabs, wheels, pools and worker pool are rebuilt from
  // scratch, and every hash must still come out identical.
  RandomPlanOptions plan_options;
  plan_options.start = Millis(100);
  plan_options.horizon = Millis(700);
  plan_options.min_events = 4;
  plan_options.max_events = 8;
  plan_options.box_count = 32;
  plan_options.call_count = 4;
  plan_options.min_episode = Millis(50);
  plan_options.max_episode = Millis(200);
  const FaultPlan plan = RandomFaultPlan(0xD15EA5E, plan_options);

  ShardStormOptions opt = BaseStorm(0xF00D);
  opt.threads = 8;
  opt.plan = &plan;

  const ShardStormResult first = RunShardStorm(opt);
  const ShardStormResult second = RunShardStorm(opt);
  EXPECT_TRUE(first == second);
  EXPECT_GT(first.deliveries, 0u);
}

TEST(ShardDeterminism, ChaosOverlayIsPartitionInvariant) {
  // A scripted storm with every materialised fault kind: crashes + restarts
  // (kill sweeps mid-window), churn, burst loss and a jitter storm.  The
  // merged hash must survive repartitioning even while actors die and their
  // forwarders are swept.
  FaultPlan plan;
  FaultEvent crash;
  crash.at = Millis(200);
  crash.kind = FaultKind::kBoxCrash;
  crash.target = 3;
  crash.duration = Millis(150);
  plan.events.push_back(crash);
  FaultEvent churn;
  churn.at = Millis(300);
  churn.kind = FaultKind::kChurn;
  churn.target = 13;
  churn.duration = Millis(200);
  plan.events.push_back(churn);
  FaultEvent loss;
  loss.at = Millis(350);
  loss.kind = FaultKind::kBurstLoss;
  loss.value = 0.4;
  loss.duration = Millis(250);
  plan.events.push_back(loss);
  FaultEvent jitter;
  jitter.at = Millis(500);
  jitter.kind = FaultKind::kJitterStorm;
  jitter.value = 900;  // up to 900us of extra (still lookahead-safe) latency
  jitter.duration = Millis(300);
  plan.events.push_back(jitter);

  ShardStormOptions single = BaseStorm(0xCAFE);
  single.shards = 1;
  single.plan = &plan;
  ShardStormOptions eight_mt = BaseStorm(0xCAFE);
  eight_mt.threads = 8;
  eight_mt.plan = &plan;

  const ShardStormResult one = RunShardStorm(single);
  const ShardStormResult par = RunShardStorm(eight_mt);

  // The overlay engaged identically in both partitions.
  EXPECT_EQ(one.crashes, 2u);
  EXPECT_EQ(one.restarts, 2u);
  EXPECT_GT(one.drops, 0u);
  EXPECT_EQ(par.crashes, one.crashes);
  EXPECT_EQ(par.restarts, one.restarts);
  EXPECT_EQ(par.drops, one.drops);
  EXPECT_EQ(par.sends, one.sends);
  EXPECT_EQ(par.deliveries, one.deliveries);
  EXPECT_EQ(par.merged_hash, one.merged_hash);
}

TEST(ShardDeterminism, SingleShardIsBitIdenticalToBareScheduler) {
  // The golden-compatibility proof: the identical coroutine workload on a
  // bare Scheduler and on ShardSet{shards=1} must agree on the full
  // execution fingerprint — clock, context switches, pending timers, event
  // chain.  This is why every pre-shard golden (chaos_golden, the trace and
  // core goldens) is untouched by this refactor: Simulation now runs on a
  // ShardSet, and this path adds zero perturbation.
  auto pinger = [](Scheduler* sched, uint64_t* chain, int id, int rounds) -> Process {
    for (int i = 0; i < rounds; ++i) {
      co_await sched->WaitFor(Micros(100 + 37 * id));
      *chain = FnvMix(*chain, static_cast<uint64_t>(sched->now()) ^ static_cast<uint64_t>(id));
      if ((i & 3) == 0) {
        co_await sched->Yield();
        *chain = FnvMix(*chain, 0x5eedull + static_cast<uint64_t>(id));
      }
    }
  };
  struct Fingerprint {
    uint64_t chain = 1469598103934665603ull;
    uint64_t switches = 0;
    Time now = 0;
    size_t pending = 0;
    size_t live = 0;
  };
  const auto drive = [&](Scheduler& sched, auto run_until) {
    Fingerprint fp;
    for (int id = 0; id < 16; ++id) {
      sched.Spawn(pinger(&sched, &fp.chain, id, 40), "pinger",
                  (id & 1) != 0 ? Priority::kHigh : Priority::kLow);
    }
    run_until(Millis(30));
    fp.switches = sched.context_switches();
    fp.now = sched.now();
    fp.pending = sched.pending_timer_count();
    fp.live = sched.live_process_count();
    return fp;
  };

  Scheduler bare;
  const Fingerprint a = drive(bare, [&](Time t) { bare.RunUntil(t); });
  bare.Shutdown();

  ShardSet set(ShardSetOptions{});  // shards=1, threads=1
  const Fingerprint b = drive(set.scheduler(), [&](Time t) { set.RunUntil(t); });

  EXPECT_EQ(a.chain, b.chain);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.now, b.now);
  EXPECT_EQ(a.pending, b.pending);
  EXPECT_EQ(a.live, b.live);
  EXPECT_NE(a.switches, 0u);
  // Legacy mode never opened a window or touched a mailbox.
  EXPECT_EQ(set.windows(), 0u);
  EXPECT_EQ(set.cross_shard_messages(), 0u);
  set.Shutdown();
}

TEST(ShardDeterminism, LookaheadScalesWindowCountNotObservables) {
  // Doubling the lookahead halves (roughly) the number of windows but must
  // not change what any actor sees: the window size is an engine tuning
  // knob, not a semantic one.  (Links in the storm carry latency >= the
  // configured lookahead, so both settings satisfy the contract.)
  ShardStormOptions tight = BaseStorm(0x1DEA);
  tight.lookahead = Millis(1);
  tight.base_latency = Millis(1);  // pin link latency across the sweep
  tight.duration = Millis(500);
  ShardStormOptions wide = tight;
  wide.lookahead = Micros(500);  // same links, smaller safe horizon

  const ShardStormResult a = RunShardStorm(tight);
  const ShardStormResult c = RunShardStorm(wide);
  EXPECT_GT(c.windows, a.windows);
  EXPECT_EQ(a.merged_hash, c.merged_hash);
  EXPECT_EQ(a.sends, c.sends);
  EXPECT_EQ(a.deliveries, c.deliveries);
}

}  // namespace
}  // namespace pandora
