// Unit tests for the CSP runtime substrate: scheduler, channels, alt,
// timers, tasks and serial resources.
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/buffer/small_vec.h"
#include "src/runtime/alt.h"
#include "src/runtime/channel.h"
#include "src/runtime/process.h"
#include "src/runtime/random.h"
#include "src/runtime/resource.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/stats.h"
#include "src/runtime/task.h"
#include "src/runtime/time.h"

namespace pandora {
namespace {

TEST(TimeTest, ConversionsRoundTrip) {
  EXPECT_EQ(Millis(2), 2000);
  EXPECT_EQ(Seconds(8), 8'000'000);
  EXPECT_EQ(SecondsF(0.5), 500'000);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(20)), 20.0);
  // 64us timestamp ticks (paper fig 3.1).
  EXPECT_EQ(FromTimestampTicks(ToTimestampTicks(6400)), 6400);
  EXPECT_EQ(ToTimestampTicks(65), 1u);
}

TEST(SchedulerTest, RunsSpawnedProcessToCompletion) {
  Scheduler sched;
  int ran = 0;
  auto proc = [](int* flag) -> Process {
    *flag = 1;
    co_return;
  };
  ProcessHandle h = sched.Spawn(proc(&ran), "p");
  EXPECT_FALSE(h.done());
  sched.RunUntilQuiescent();
  EXPECT_TRUE(h.done());
  EXPECT_EQ(ran, 1);
}

TEST(SchedulerTest, ClockAdvancesOnlyWhenIdle) {
  Scheduler sched;
  std::vector<Time> wakes;
  auto proc = [](Scheduler* s, std::vector<Time>* w) -> Process {
    co_await s->WaitFor(Millis(2));
    w->push_back(s->now());
    co_await s->WaitFor(Millis(3));
    w->push_back(s->now());
  };
  sched.Spawn(proc(&sched, &wakes), "sleeper");
  sched.RunUntilQuiescent();
  ASSERT_EQ(wakes.size(), 2u);
  EXPECT_EQ(wakes[0], Millis(2));
  EXPECT_EQ(wakes[1], Millis(5));
}

TEST(SchedulerTest, RunUntilStopsAtLimitAndAdvancesClock) {
  Scheduler sched;
  int fired = 0;
  auto proc = [](Scheduler* s, int* f) -> Process {
    co_await s->WaitUntil(Millis(10));
    *f = 1;
  };
  sched.Spawn(proc(&sched, &fired), "late");
  sched.RunUntil(Millis(5));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sched.now(), Millis(5));
  sched.RunFor(Millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), Millis(15));
}

TEST(SchedulerTest, HighPriorityRunsFirst) {
  Scheduler sched;
  std::vector<int> order;
  auto proc = [](std::vector<int>* order, int id) -> Process {
    order->push_back(id);
    co_return;
  };
  sched.Spawn(proc(&order, 1), "low1", Priority::kLow);
  sched.Spawn(proc(&order, 2), "high", Priority::kHigh);
  sched.Spawn(proc(&order, 3), "low2", Priority::kLow);
  sched.RunUntilQuiescent();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 3);
}

TEST(SchedulerTest, ProcessExceptionPropagatesFromRun) {
  Scheduler sched;
  auto proc = []() -> Process {
    co_await std::suspend_never{};
    throw std::runtime_error("boom");
  };
  sched.Spawn(proc(), "thrower");
  EXPECT_THROW(sched.RunUntilQuiescent(), std::runtime_error);
}

TEST(SchedulerTest, TimerCancellationPreventsFiring) {
  Scheduler sched;
  int fired = 0;
  TimerHandle t = sched.AddTimer(Millis(1), [&] { fired = 1; });
  t.Cancel();
  sched.RunUntilQuiescent();
  EXPECT_EQ(fired, 0);
}

TEST(SchedulerTest, TimersFireInTimeThenFifoOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.AddTimer(Millis(2), [&] { order.push_back(2); });
  sched.AddTimer(Millis(1), [&] { order.push_back(1); });
  sched.AddTimer(Millis(2), [&] { order.push_back(3); });
  sched.RunUntilQuiescent();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
}

TEST(ChannelTest, RendezvousTransfersValue) {
  Scheduler sched;
  Channel<int> ch(&sched);
  int got = 0;
  auto sender = [](Channel<int>* c) -> Process { co_await c->Send(42); };
  auto receiver = [](Channel<int>* c, int* out) -> Process { *out = co_await c->Receive(); };
  sched.Spawn(sender(&ch), "tx");
  sched.Spawn(receiver(&ch, &got), "rx");
  sched.RunUntilQuiescent();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(ch.transfers(), 1u);
}

TEST(ChannelTest, SenderBlocksUntilReceiverArrives) {
  Scheduler sched;
  Channel<int> ch(&sched);
  Time send_done = -1;
  auto sender = [](Scheduler* s, Channel<int>* c, Time* done) -> Process {
    co_await c->Send(1);
    *done = s->now();
  };
  auto receiver = [](Scheduler* s, Channel<int>* c) -> Process {
    co_await s->WaitFor(Millis(7));
    (void)co_await c->Receive();
  };
  sched.Spawn(sender(&sched, &ch, &send_done), "tx");
  sched.Spawn(receiver(&sched, &ch), "rx");
  sched.RunUntilQuiescent();
  EXPECT_EQ(send_done, Millis(7));
}

TEST(ChannelTest, ReceiverBlocksUntilSenderArrives) {
  Scheduler sched;
  Channel<int> ch(&sched);
  Time recv_done = -1;
  auto receiver = [](Scheduler* s, Channel<int>* c, Time* done) -> Process {
    (void)co_await c->Receive();
    *done = s->now();
  };
  auto sender = [](Scheduler* s, Channel<int>* c) -> Process {
    co_await s->WaitFor(Millis(3));
    co_await c->Send(9);
  };
  sched.Spawn(receiver(&sched, &ch, &recv_done), "rx");
  sched.Spawn(sender(&sched, &ch), "tx");
  sched.RunUntilQuiescent();
  EXPECT_EQ(recv_done, Millis(3));
}

TEST(ChannelTest, ManyMessagesInOrder) {
  Scheduler sched;
  Channel<int> ch(&sched);
  std::vector<int> got;
  auto sender = [](Channel<int>* c) -> Process {
    for (int i = 0; i < 100; ++i) {
      co_await c->Send(i);
    }
  };
  auto receiver = [](Channel<int>* c, std::vector<int>* out) -> Process {
    for (int i = 0; i < 100; ++i) {
      out->push_back(co_await c->Receive());
    }
  };
  sched.Spawn(sender(&ch), "tx");
  sched.Spawn(receiver(&ch, &got), "rx");
  sched.RunUntilQuiescent();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(got[i], i);
  }
}

TEST(ChannelTest, MultipleSendersQueueFifo) {
  Scheduler sched;
  Channel<int> ch(&sched);
  std::vector<int> got;
  auto sender = [](Channel<int>* c, int id) -> Process { co_await c->Send(id); };
  auto receiver = [](Channel<int>* c, std::vector<int>* out) -> Process {
    for (int i = 0; i < 3; ++i) {
      out->push_back(co_await c->Receive());
    }
  };
  sched.Spawn(sender(&ch, 1), "tx1");
  sched.Spawn(sender(&ch, 2), "tx2");
  sched.Spawn(sender(&ch, 3), "tx3");
  sched.Spawn(receiver(&ch, &got), "rx");
  sched.RunUntilQuiescent();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[1], 2);
  EXPECT_EQ(got[2], 3);
}

TEST(ChannelTest, TrySendAndTryReceive) {
  Scheduler sched;
  Channel<int> ch(&sched);
  EXPECT_FALSE(ch.TrySend(5));           // no receiver parked
  EXPECT_FALSE(ch.TryReceive().has_value());  // no sender parked

  auto sender = [](Channel<int>* c) -> Process { co_await c->Send(7); };
  sched.Spawn(sender(&ch), "tx");
  sched.RunUntilQuiescent();  // sender parks
  ASSERT_EQ(ch.waiting_senders(), 1u);
  auto v = ch.TryReceive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  sched.RunUntilQuiescent();  // let the sender finish
  EXPECT_EQ(ch.waiting_senders(), 0u);
}

TEST(ChannelTest, MoveOnlyPayload) {
  Scheduler sched;
  Channel<std::unique_ptr<int>> ch(&sched);
  int got = 0;
  auto sender = [](Channel<std::unique_ptr<int>>* c) -> Process {
    co_await c->Send(std::make_unique<int>(31));
  };
  auto receiver = [](Channel<std::unique_ptr<int>>* c, int* out) -> Process {
    auto p = co_await c->Receive();
    *out = *p;
  };
  sched.Spawn(sender(&ch), "tx");
  sched.Spawn(receiver(&ch, &got), "rx");
  sched.RunUntilQuiescent();
  EXPECT_EQ(got, 31);
}

TEST(TaskTest, NestedTaskReturnsValueAndResumesParent) {
  Scheduler sched;
  int result = 0;
  auto inner = [](Scheduler* s) -> Task<int> {
    co_await s->WaitFor(Millis(1));
    co_return 5;
  };
  auto proc = [&inner](Scheduler* s, int* out) -> Process {
    int a = co_await inner(s);
    int b = co_await inner(s);
    *out = a + b;
  };
  sched.Spawn(proc(&sched, &result), "nested");
  sched.RunUntilQuiescent();
  EXPECT_EQ(result, 10);
  EXPECT_EQ(sched.now(), Millis(2));
}

TEST(TaskTest, TaskExceptionPropagatesToAwaiter) {
  Scheduler sched;
  bool caught = false;
  auto inner = []() -> Task<void> {
    throw std::runtime_error("inner");
    co_return;
  };
  auto proc = [&inner](bool* caught) -> Process {
    try {
      co_await inner();
    } catch (const std::runtime_error&) {
      *caught = true;
    }
  };
  sched.Spawn(proc(&caught), "catcher");
  sched.RunUntilQuiescent();
  EXPECT_TRUE(caught);
}

TEST(AltTest, PicksReadyChannel) {
  Scheduler sched;
  Channel<int> a(&sched, "a");
  Channel<int> b(&sched, "b");
  int chosen = -1;
  int value = 0;
  auto sender = [](Channel<int>* c) -> Process { co_await c->Send(11); };
  auto selector = [](Scheduler* s, Channel<int>* a, Channel<int>* b, int* chosen,
                     int* value) -> Process {
    Alt alt(s);
    alt.OnReceive(*a).OnReceive(*b);
    *chosen = co_await alt.Select();
    *value = co_await (*chosen == 0 ? *a : *b).Receive();
  };
  sched.Spawn(sender(&b), "tx");
  sched.Spawn(selector(&sched, &a, &b, &chosen, &value), "sel");
  sched.RunUntilQuiescent();
  EXPECT_EQ(chosen, 1);
  EXPECT_EQ(value, 11);
}

TEST(AltTest, PriorityOrderWhenBothReady) {
  Scheduler sched;
  Channel<int> a(&sched, "a");
  Channel<int> b(&sched, "b");
  int chosen = -1;
  auto sender = [](Channel<int>* c, int v) -> Process { co_await c->Send(v); };
  auto selector = [](Scheduler* s, Channel<int>* a, Channel<int>* b, int* chosen) -> Process {
    // Let both senders park first.
    co_await s->WaitFor(Millis(1));
    Alt alt(s);
    alt.OnReceive(*a).OnReceive(*b);
    *chosen = co_await alt.Select();
    (void)co_await (*chosen == 0 ? *a : *b).Receive();
    // Drain the other so the test ends quiescent with no parked sender.
    (void)co_await (*chosen == 0 ? *b : *a).Receive();
  };
  sched.Spawn(sender(&b, 2), "txb");
  sched.Spawn(sender(&a, 1), "txa");
  sched.Spawn(selector(&sched, &a, &b, &chosen), "sel");
  sched.RunUntilQuiescent();
  EXPECT_EQ(chosen, 0);  // guard 0 (channel a) wins even though b sent first
}

TEST(AltTest, TimeoutFiresWhenNoSender) {
  Scheduler sched;
  Channel<int> a(&sched, "a");
  int chosen = -1;
  Time when = -1;
  auto selector = [](Scheduler* s, Channel<int>* a, int* chosen, Time* when) -> Process {
    Alt alt(s);
    alt.OnReceive(*a).OnTimeoutAfter(Millis(4));
    *chosen = co_await alt.Select();
    *when = s->now();
  };
  sched.Spawn(selector(&sched, &a, &chosen, &when), "sel");
  sched.RunUntilQuiescent();
  EXPECT_EQ(chosen, 1);
  EXPECT_EQ(when, Millis(4));
}

TEST(AltTest, ChannelBeatsLaterTimeout) {
  Scheduler sched;
  Channel<int> a(&sched, "a");
  int chosen = -1;
  auto sender = [](Scheduler* s, Channel<int>* c) -> Process {
    co_await s->WaitFor(Millis(1));
    co_await c->Send(1);
  };
  auto selector = [](Scheduler* s, Channel<int>* a, int* chosen) -> Process {
    Alt alt(s);
    alt.OnReceive(*a).OnTimeoutAfter(Millis(10));
    *chosen = co_await alt.Select();
    if (*chosen == 0) {
      (void)co_await a->Receive();
    }
  };
  sched.Spawn(sender(&sched, &a), "tx");
  sched.Spawn(selector(&sched, &a, &chosen), "sel");
  sched.RunUntilQuiescent();
  EXPECT_EQ(chosen, 0);
  EXPECT_EQ(sched.now(), Millis(1));
}

TEST(AltTest, SkipGuardMakesSelectNonBlocking) {
  Scheduler sched;
  Channel<int> a(&sched, "a");
  int chosen = -1;
  auto selector = [](Scheduler* s, Channel<int>* a, int* chosen) -> Process {
    Alt alt(s);
    alt.OnReceive(*a).OnSkip();
    *chosen = co_await alt.Select();
  };
  sched.Spawn(selector(&sched, &a, &chosen), "sel");
  sched.RunUntilQuiescent();
  EXPECT_EQ(chosen, 1);
  EXPECT_EQ(sched.now(), 0);
}

TEST(AltTest, LostRaceReparksAndEventuallyWins) {
  // Two consumers compete for one channel: a plain receiver and an alt.
  // Whoever loses must not deadlock or mis-fire.
  Scheduler sched;
  Channel<int> ch(&sched, "ch");
  std::vector<int> alt_got;
  auto plain_rx = [](Channel<int>* c) -> Process { (void)co_await c->Receive(); };
  auto alt_rx = [](Scheduler* s, Channel<int>* c, std::vector<int>* got) -> Process {
    Alt alt(s);
    alt.OnReceive(*c);
    (void)co_await alt.Select();
    got->push_back(co_await c->Receive());
  };
  auto sender = [](Scheduler* s, Channel<int>* c) -> Process {
    co_await c->Send(1);
    co_await s->WaitFor(Millis(1));
    co_await c->Send(2);
  };
  sched.Spawn(alt_rx(&sched, &ch, &alt_got), "altrx");
  sched.Spawn(plain_rx(&ch), "plainrx");
  sched.Spawn(sender(&sched, &ch), "tx");
  sched.RunUntilQuiescent();
  ASSERT_EQ(alt_got.size(), 1u);
  // The alt was notified for message 1 but the parked plain receiver might
  // win it; either way the alt ends up with exactly one of the messages.
  EXPECT_TRUE(alt_got[0] == 1 || alt_got[0] == 2);
}

TEST(AltTest, CommandPriorityNotStarvedByDataFirehose) {
  // Principle 4: a command channel listed first in the alt must get through
  // even when the data guard is always ready.
  Scheduler sched;
  Channel<int> commands(&sched, "cmd");
  Channel<int> data(&sched, "data");
  int commands_seen = 0;
  int data_seen = 0;
  bool stop = false;

  auto worker = [](Scheduler* s, Channel<int>* cmd, Channel<int>* data, int* cseen, int* dseen,
                   bool* stop) -> Process {
    while (!*stop) {
      Alt alt(s);
      alt.OnReceive(*cmd).OnReceive(*data);
      int g = co_await alt.Select();
      if (g == 0) {
        (void)co_await cmd->Receive();
        ++*cseen;
        *stop = true;
      } else {
        (void)co_await data->Receive();
        ++*dseen;
      }
    }
  };
  auto firehose = [](Scheduler* s, Channel<int>* data, bool* stop) -> Process {
    while (!*stop) {
      co_await data->Send(0);
      co_await s->WaitFor(Micros(10));  // producing a segment takes time
    }
  };
  auto commander = [](Scheduler* s, Channel<int>* cmd) -> Process {
    co_await s->WaitFor(Millis(1));
    co_await cmd->Send(99);
  };
  sched.Spawn(worker(&sched, &commands, &data, &commands_seen, &data_seen, &stop), "worker");
  sched.Spawn(firehose(&sched, &data, &stop), "firehose");
  sched.Spawn(commander(&sched, &commands), "commander");
  sched.RunUntil(Millis(5));
  EXPECT_EQ(commands_seen, 1);
  EXPECT_GT(data_seen, 0);
}

// A waiter that, when notified, unregisters an arbitrary set of waiters
// (itself included) from the channel — the reentrancy pattern that would
// invalidate iterators if NotifyAltWaiters walked its live vector.
class UnregisteringWaiter : public AltWaiter {
 public:
  explicit UnregisteringWaiter(ChannelBase* channel) : channel_(channel) {}

  void AlsoUnregister(AltWaiter* other) { victims_.push_back(other); }

  void NotifyFromChannel() override {
    ++notifications;
    channel_->UnregisterAltWaiter(this);
    for (AltWaiter* victim : victims_) {
      channel_->UnregisterAltWaiter(victim);
    }
  }

  int notifications = 0;

 private:
  ChannelBase* channel_;
  std::vector<AltWaiter*> victims_;
};

TEST(ChannelAltWaiterTest, UnregisterDuringNotifyDoesNotInvalidateIteration) {
  // Regression test: a notified waiter unregisters itself AND the next
  // waiter in line mid-notification.  The channel must neither skip-crash on
  // invalidated iterators nor notify the waiter that was just removed.
  Scheduler sched;
  Channel<int> ch(&sched, "ch");
  UnregisteringWaiter first(&ch);
  UnregisteringWaiter second(&ch);
  UnregisteringWaiter third(&ch);
  first.AlsoUnregister(&second);
  ch.RegisterAltWaiter(&first);
  ch.RegisterAltWaiter(&second);
  ch.RegisterAltWaiter(&third);

  auto sender = [](Channel<int>* c) -> Process { co_await c->Send(7); };
  sched.Spawn(sender(&ch), "tx");
  sched.RunUntilQuiescent();

  EXPECT_EQ(first.notifications, 1);
  // `second` was unregistered by `first` before its turn: never notified.
  EXPECT_EQ(second.notifications, 0);
  EXPECT_EQ(third.notifications, 1);

  // Every waiter (third included) unregistered itself during round one, so
  // the list is empty; a fresh registration must still work and a second
  // notification round must reach only it.
  third.notifications = 0;
  ch.RegisterAltWaiter(&third);
  std::optional<int> got = ch.TryReceive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
  auto sender2 = [](Channel<int>* c) -> Process { co_await c->Send(8); };
  sched.Spawn(sender2(&ch), "tx2");
  sched.RunUntilQuiescent();
  EXPECT_EQ(first.notifications, 1);
  EXPECT_EQ(second.notifications, 0);
  EXPECT_EQ(third.notifications, 1);
  ch.UnregisterAltWaiter(&third);
  EXPECT_TRUE(ch.TryReceive().has_value());
}

TEST(ChannelBatchTest, TryReceiveBatchOnEmptyChannelDrainsNothing) {
  Scheduler sched;
  Channel<int> ch(&sched, "ch");
  SmallVec<int, 8> out;
  EXPECT_EQ(ch.TryReceiveBatch(out, 8), 0);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(sched.events(), sched.context_switches());
}

TEST(ChannelBatchTest, TryReceiveBatchDrainsParkedSendersFifo) {
  Scheduler sched;
  Channel<int> ch(&sched, "ch");
  int finished = 0;
  auto sender = [](Channel<int>* c, int id, int* done) -> Process {
    co_await c->Send(id);
    ++*done;
  };
  for (int i = 0; i < 5; ++i) {
    sched.Spawn(sender(&ch, i, &finished), "tx");
  }
  sched.RunUntilQuiescent();  // all five park
  ASSERT_EQ(ch.waiting_senders(), 5u);

  SmallVec<int, 8> out;
  EXPECT_EQ(ch.TryReceiveBatch(out, 8), 5);
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i);  // FIFO: park order preserved
  }
  EXPECT_EQ(ch.waiting_senders(), 0u);
  // Elements beyond the first replaced whole dispatches in the unbatched
  // engine and are credited to events() (DESIGN.md §15 accounting).
  EXPECT_EQ(sched.events(), sched.context_switches() + 4);
  sched.RunUntilQuiescent();  // woken senders finish
  EXPECT_EQ(finished, 5);
}

TEST(ChannelBatchTest, TryReceiveBatchRespectsMaxAndLeavesTailParked) {
  Scheduler sched;
  Channel<int> ch(&sched, "ch");
  auto sender = [](Channel<int>* c, int id) -> Process { co_await c->Send(id); };
  for (int i = 0; i < 5; ++i) {
    sched.Spawn(sender(&ch, i), "tx");
  }
  sched.RunUntilQuiescent();

  SmallVec<int, 8> out;
  EXPECT_EQ(ch.TryReceiveBatch(out, 2), 2);
  EXPECT_EQ(ch.waiting_senders(), 3u);
  EXPECT_EQ(ch.TryReceiveBatch(out, 8), 3);  // appends after existing contents
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i);
  }
}

TEST(ChannelBatchTest, TryReceiveBatchSurvivesRingWraparoundAndSpill) {
  // Repeated park/drain rounds walk the sender ring's head past its initial
  // capacity (wraparound), and a 4-inline SmallVec receiving 6 elements per
  // round must spill to the heap without losing order.
  Scheduler sched;
  Channel<int> ch(&sched, "ch");
  auto sender = [](Channel<int>* c, int id) -> Process { co_await c->Send(id); };
  int next_id = 0;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 6; ++i) {
      sched.Spawn(sender(&ch, next_id++), "tx");
    }
    sched.RunUntilQuiescent();
    ASSERT_EQ(ch.waiting_senders(), 6u);
    SmallVec<int, 4> out;
    EXPECT_EQ(ch.TryReceiveBatch(out, 6), 6);
    ASSERT_EQ(out.size(), 6u);
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(out[static_cast<size_t>(i)], round * 6 + i);
    }
    sched.RunUntilQuiescent();
  }
  EXPECT_EQ(ch.transfers(), 24u);
}

TEST(ChannelBatchTest, TrySendBatchDeliversPrefixToParkedReceivers) {
  Scheduler sched;
  Channel<int> ch(&sched, "ch");
  std::vector<int> got;
  auto receiver = [](Channel<int>* c, std::vector<int>* out) -> Process {
    out->push_back(co_await c->Receive());
  };
  for (int i = 0; i < 3; ++i) {
    sched.Spawn(receiver(&ch, &got), "rx");
  }
  sched.RunUntilQuiescent();  // all three park
  ASSERT_EQ(ch.waiting_receivers(), 3u);

  SmallVec<int, 8> values;
  for (int i = 0; i < 5; ++i) {
    values.push_back(10 + i);
  }
  EXPECT_EQ(ch.TrySendBatch(values), 3);
  // The consumed prefix is popped; the unsent tail stays in order.
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], 13);
  EXPECT_EQ(values[1], 14);
  sched.RunUntilQuiescent();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 10);
  EXPECT_EQ(got[1], 11);
  EXPECT_EQ(got[2], 12);
}

TEST(ChannelBatchTest, TrySendBatchWithoutReceiversIsANoOp) {
  Scheduler sched;
  Channel<int> ch(&sched, "ch");
  SmallVec<int, 4> values;
  values.push_back(1);
  values.push_back(2);
  EXPECT_EQ(ch.TrySendBatch(values), 0);
  EXPECT_EQ(values.size(), 2u);  // nothing consumed, nothing destroyed
  EXPECT_EQ(ch.transfers(), 0u);
}

TEST(ChannelBatchTest, TrySendBatchRespectsExplicitMax) {
  Scheduler sched;
  Channel<int> ch(&sched, "ch");
  std::vector<int> got;
  auto receiver = [](Channel<int>* c, std::vector<int>* out) -> Process {
    out->push_back(co_await c->Receive());
  };
  for (int i = 0; i < 3; ++i) {
    sched.Spawn(receiver(&ch, &got), "rx");
  }
  sched.RunUntilQuiescent();
  SmallVec<int, 8> values;
  for (int i = 0; i < 5; ++i) {
    values.push_back(i);
  }
  EXPECT_EQ(ch.TrySendBatch(values, 2), 2);
  EXPECT_EQ(values.size(), 3u);
  EXPECT_EQ(ch.waiting_receivers(), 1u);
}

TEST(ChannelBatchTest, BatchDrainInterleavesWithAltWaiters) {
  // An Alt parked on the channel is notified the moment the first sender
  // parks and wins that value; a batch drainer arriving later must harvest
  // exactly the values the Alt did not take — no double delivery, no skip,
  // and FIFO order among what remains.  The late fourth send finds neither
  // and stays parked (a plain TryReceive completes it).
  Scheduler sched;
  Channel<int> ch(&sched, "ch");
  std::vector<int> drained;
  int alt_got = -1;
  bool alt_parked_once = false;

  auto alt_worker = [](Scheduler* s, Channel<int>* c, int* out, bool* parked) -> Process {
    *parked = true;
    Alt alt(s);
    alt.OnReceive(*c);
    (void)co_await alt.Select();
    std::optional<int> v = c->TryReceive();
    *out = v.value_or(-2);
  };
  auto sender = [](Scheduler* s, Channel<int>* c, int id, Duration delay) -> Process {
    co_await s->WaitFor(delay);
    co_await c->Send(id);
  };
  auto drainer = [](Scheduler* s, Channel<int>* c, std::vector<int>* out) -> Process {
    co_await s->WaitFor(Micros(10));  // after the Alt consumed its winner
    SmallVec<int, 8> batch;
    c->TryReceiveBatch(batch, 8);
    for (size_t i = 0; i < batch.size(); ++i) {
      out->push_back(batch[i]);
    }
  };
  sched.Spawn(alt_worker(&sched, &ch, &alt_got, &alt_parked_once), "alt");
  for (int i = 0; i < 3; ++i) {
    sched.Spawn(sender(&sched, &ch, i, Micros(5)), "tx");
  }
  sched.Spawn(sender(&sched, &ch, 99, Micros(20)), "late-tx");
  sched.Spawn(drainer(&sched, &ch, &drained), "drain");
  sched.RunUntilQuiescent();

  EXPECT_TRUE(alt_parked_once);
  EXPECT_EQ(alt_got, 0);  // the Alt won the first parked value
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0], 1);
  EXPECT_EQ(drained[1], 2);
  ASSERT_EQ(ch.waiting_senders(), 1u);  // the late send found no taker
  std::optional<int> late = ch.TryReceive();
  ASSERT_TRUE(late.has_value());
  EXPECT_EQ(*late, 99);
}

TEST(ChannelBatchTest, MoveOnlyPayloadRoundTripsThroughBatch) {
  Scheduler sched;
  Channel<std::unique_ptr<int>> ch(&sched, "ch");
  auto sender = [](Channel<std::unique_ptr<int>>* c, int v) -> Process {
    co_await c->Send(std::make_unique<int>(v));
  };
  for (int i = 0; i < 3; ++i) {
    sched.Spawn(sender(&ch, 100 + i), "tx");
  }
  sched.RunUntilQuiescent();
  SmallVec<std::unique_ptr<int>, 2> out;  // spills: move-only heap growth path
  EXPECT_EQ(ch.TryReceiveBatch(out, 8), 3);
  ASSERT_EQ(out.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_NE(out[static_cast<size_t>(i)], nullptr);
    EXPECT_EQ(*out[static_cast<size_t>(i)], 100 + i);
  }
  out.pop_front_n(2);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out[0], 102);
}

TEST(ResourceTest, SerialResourceQueuesFifo) {
  Scheduler sched;
  SerialResource res(&sched, "cpu");
  std::vector<Time> done;
  auto user = [](SerialResource* r, std::vector<Time>* done, Duration cost) -> Process {
    co_await r->Acquire(cost);
    done->push_back(r->scheduler()->now());
  };
  sched.Spawn(user(&res, &done, Micros(100)), "u1");
  sched.Spawn(user(&res, &done, Micros(50)), "u2");
  sched.RunUntilQuiescent();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], Micros(100));
  EXPECT_EQ(done[1], Micros(150));
  EXPECT_EQ(res.busy_time(), Micros(150));
}

TEST(ResourceTest, UtilizationTracksBusyFraction) {
  Scheduler sched;
  SerialResource res(&sched, "cpu");
  auto user = [](Scheduler* s, SerialResource* r) -> Process {
    co_await r->Acquire(Millis(2));
    co_await s->WaitUntil(Millis(10));
  };
  sched.Spawn(user(&sched, &res), "u");
  sched.RunUntilQuiescent();
  EXPECT_DOUBLE_EQ(res.Utilization(), 0.2);
}

TEST(ResourceTest, BandwidthGateTransmissionTime) {
  Scheduler sched;
  BandwidthGate link(&sched, "link", 20'000'000);  // 20 Mbit/s server link
  // 1000 bytes = 8000 bits at 20 Mbit/s = 400us.
  EXPECT_EQ(link.TransmissionTime(1000), Micros(400));
  // An 8kHz 2-block audio segment (32 data bytes + 36 header) = 68 bytes:
  // 544 bits -> 27.2us -> ceil 28us.
  EXPECT_EQ(link.TransmissionTime(68), Micros(28));
}

TEST(ResourceTest, NonInterleavedTransmissionDelaysFollower) {
  // A big video segment on the link delays a small audio segment queued
  // behind it -- the E7 phenomenon in miniature.
  Scheduler sched;
  BandwidthGate link(&sched, "net", 20'000'000);
  Time audio_done = -1;
  auto video = [](BandwidthGate* l) -> Process {
    co_await l->Transmit(50'000);  // 20ms at 20Mbit/s
  };
  auto audio = [](Scheduler* s, BandwidthGate* l, Time* done) -> Process {
    co_await l->Transmit(68);
    *done = s->now();
  };
  sched.Spawn(video(&link), "video", Priority::kHigh);
  sched.Spawn(audio(&sched, &link, &audio_done), "audio", Priority::kLow);
  sched.RunUntilQuiescent();
  EXPECT_EQ(audio_done, link.TransmissionTime(50'000) + link.TransmissionTime(68));
  EXPECT_GE(audio_done, Millis(20));
}

TEST(RandomTest, DeterministicAcrossRuns) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
  Rng c(123);
  EXPECT_EQ(c.UniformInt(0, 100), Rng(123).UniformInt(0, 100));
}

TEST(RandomTest, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_FALSE(Rng(1).Bernoulli(0.0));
  EXPECT_TRUE(Rng(1).Bernoulli(1.0));
}

TEST(SchedulerTest, CompletedProcessesRecycleAutomatically) {
  Scheduler sched;
  auto quick = []() -> Process { co_return; };
  std::vector<ProcessHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(sched.Spawn(quick(), "q" + std::to_string(i)));
  }
  sched.RunUntilQuiescent();
  // Slab recycling releases bookkeeping the moment a process finishes: no
  // manual sweep, nothing left tracked, and the shim has nothing to do.
  EXPECT_EQ(sched.live_process_count(), 0u);
  EXPECT_EQ(sched.tracked_process_count(), 0u);
  EXPECT_EQ(sched.PruneCompleted(), 0u);
  // Handles over recycled slots stay safe: they read done, not the slot's
  // next occupant.
  for (const ProcessHandle& h : handles) {
    EXPECT_TRUE(h.done());
    EXPECT_NO_THROW(h.CheckError());
  }
  // The scheduler keeps working, reusing the recycled records.
  int ran = 0;
  auto proc = [](int* flag) -> Process {
    *flag = 1;
    co_return;
  };
  ProcessHandle after = sched.Spawn(proc(&ran), "after");
  // A fresh spawn in a recycled slot must not look done through old handles.
  EXPECT_FALSE(after.done());
  sched.RunUntilQuiescent();
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(after.done());
  EXPECT_EQ(sched.tracked_process_count(), 0u);
}

TEST(SchedulerTest, ContextSwitchCounting) {
  Scheduler sched;
  Channel<int> ch(&sched);
  auto ping = [](Channel<int>* c) -> Process {
    for (int i = 0; i < 10; ++i) {
      co_await c->Send(i);
    }
  };
  auto pong = [](Channel<int>* c) -> Process {
    for (int i = 0; i < 10; ++i) {
      (void)co_await c->Receive();
    }
  };
  sched.Spawn(ping(&ch), "ping");
  sched.Spawn(pong(&ch), "pong");
  sched.RunUntilQuiescent();
  // Rendezvous fast paths let one resumption complete several transfers, so
  // the switch count is below 2 per message but still at least half of them.
  EXPECT_GE(sched.context_switches(), 10u);
  EXPECT_EQ(ch.transfers(), 10u);
}

TEST(StatsTest, BasicMoments) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.Variance(), 0.0);
  acc.Add(2.0);
  acc.Add(4.0);
  acc.Add(6.0);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 6.0);
  // Population variance of {2, 4, 6} is 8/3.
  EXPECT_NEAR(acc.Variance(), 8.0 / 3.0, 1e-12);
}

TEST(StatsTest, VarianceStableWithLargeOffset) {
  // Regression: the naive sum_sq/n - mean^2 form cancels catastrophically
  // when samples carry a large common offset — exactly the shape of
  // latencies measured against a big absolute simulated timestamp.  The
  // true population variance of {x, x+1, x+2} is 2/3 for any offset x.
  StatAccumulator acc;
  acc.Add(1e9 + 0.0);
  acc.Add(1e9 + 1.0);
  acc.Add(1e9 + 2.0);
  EXPECT_NEAR(acc.Mean(), 1e9 + 1.0, 1e-3);
  EXPECT_NEAR(acc.Variance(), 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(acc.StdDev(), std::sqrt(2.0 / 3.0), 1e-6);
}

}  // namespace
}  // namespace pandora
