// Edge-case coverage across modules: command-driven stop/start, buffer
// shrink, playout overflow, empty playback, mid-flight circuit teardown.
#include <gtest/gtest.h>

#include "src/audio/codec.h"
#include "src/audio/sender.h"
#include "src/audio/signal.h"
#include "src/buffer/decoupling.h"
#include "src/buffer/pool.h"
#include "src/net/atm.h"
#include "src/repository/repository.h"
#include "src/runtime/scheduler.h"
#include "src/segment/wire.h"
#include "src/video/capture.h"
#include "src/video/framestore.h"

namespace pandora {
namespace {

TEST(EdgeTest, AudioSenderStopAndRestart) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 16);
  SineSource tone(440.0);
  Channel<AudioBlock> mic(&sched, "mic");
  Channel<SegmentRef> wire(&sched, "wire");
  CodecInput codec(&sched, {.name = "in"}, &tone, &mic);
  AudioSender sender(&sched, {.name = "snd", .stream = 1}, &mic, &pool, &wire);
  ShutdownGuard guard(&sched);
  codec.Start();
  sender.Start();

  uint64_t received = 0;
  auto sink = [](Channel<SegmentRef>* wire, uint64_t* n) -> Process {
    for (;;) {
      (void)co_await wire->Receive();
      ++*n;
    }
  };
  auto commander = [](Scheduler* s, CommandChannel* cmd) -> Process {
    co_await s->WaitUntil(Millis(100));
    co_await cmd->Send(Command{CommandVerb::kStop, 1, 0, 0});
    co_await s->WaitUntil(Millis(200));
    co_await cmd->Send(Command{CommandVerb::kStartStream, 1, 0, 0});
  };
  sched.Spawn(sink(&wire, &received), "sink");
  sched.Spawn(commander(&sched, &sender.commands()), "cmd");

  sched.RunFor(Millis(100));
  uint64_t at_stop = received;
  EXPECT_GT(at_stop, 20u);
  sched.RunFor(Millis(100));
  // While stopped the codec data is discarded at source.
  EXPECT_LE(received, at_stop + 1);
  sched.RunFor(Millis(100));
  EXPECT_GT(received, at_stop + 20);
}

TEST(EdgeTest, VideoCaptureStopAndRestart) {
  Scheduler sched;
  MovingBarPattern pattern(32);
  FrameStore store(&sched, &pattern, 32, 24);
  BufferPool pool(&sched, "pool", 32);
  Channel<SegmentRef> wire(&sched, "wire");
  VideoCapture capture(&sched,
                       {.name = "cap", .stream = 1, .rect = {0, 0, 32, 24},
                        .segments_per_frame = 1},
                       &store, &pool, &wire);
  ShutdownGuard guard(&sched);
  capture.Start();
  auto sink = [](Channel<SegmentRef>* wire) -> Process {
    for (;;) {
      (void)co_await wire->Receive();
    }
  };
  auto commander = [](Scheduler* s, CommandChannel* cmd) -> Process {
    co_await s->WaitUntil(Millis(500));
    co_await cmd->Send(Command{CommandVerb::kStop, 1, 0, 0});
    co_await s->WaitUntil(Seconds(1));
    co_await cmd->Send(Command{CommandVerb::kStartStream, 1, 0, 0});
  };
  sched.Spawn(sink(&wire), "sink");
  sched.Spawn(commander(&sched, &capture.commands()), "cmd");

  sched.RunFor(Millis(500));
  uint64_t at_stop = capture.frames_captured();
  EXPECT_NEAR(static_cast<double>(at_stop), 12.0, 2.0);
  sched.RunFor(Millis(500));
  EXPECT_EQ(capture.frames_captured(), at_stop);  // paused
  sched.RunFor(Millis(500));
  EXPECT_GT(capture.frames_captured(), at_stop + 8);  // resumed
}

TEST(EdgeTest, BufferShrinkBelowDepthPausesIntakeWithoutLoss) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 64);
  DecouplingBuffer buffer(&sched, {.name = "d", .capacity = 8});
  ShutdownGuard guard(&sched);
  buffer.Start();

  auto producer = [](Scheduler* s, BufferPool* p, DecouplingBuffer* b) -> Process {
    for (uint32_t i = 0; i < 20; ++i) {
      auto maybe = p->TryAllocate();
      **maybe = MakeAudioSegment(1, i, 0, std::vector<uint8_t>(16, 0));
      SegmentRef ref = std::move(*maybe);
      co_await b->input().Send(std::move(ref));
      co_await s->WaitFor(Micros(100));
    }
  };
  auto shrink = [](Scheduler* s, DecouplingBuffer* b) -> Process {
    co_await s->WaitUntil(Micros(450));  // several queued
    co_await b->commands().Send(Command{CommandVerb::kResizeBuffer, 0, 2, 0});
  };
  std::vector<uint32_t> got;
  auto consumer = [](Scheduler* s, DecouplingBuffer* b, std::vector<uint32_t>* got) -> Process {
    co_await s->WaitUntil(Millis(1));  // start draining late
    for (int i = 0; i < 20; ++i) {
      SegmentRef ref = co_await b->output().Receive();
      got->push_back(ref->header.sequence);
      co_await s->WaitFor(Micros(200));
    }
  };
  sched.Spawn(producer(&sched, &pool, &buffer), "producer");
  sched.Spawn(shrink(&sched, &buffer), "shrink");
  sched.Spawn(consumer(&sched, &buffer, &got), "consumer");
  sched.RunFor(Millis(20));
  ASSERT_EQ(got.size(), 20u);  // no loss across the shrink
  for (uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(got[i], i);
  }
  EXPECT_EQ(buffer.capacity(), 2u);
}

TEST(EdgeTest, CodecOutputOverflowDropsOldest) {
  Scheduler sched;
  CodecOutput out(&sched, {.name = "out", .prime_blocks = 1, .max_fifo_blocks = 4});
  // Not started: nothing drains, so submissions overflow.
  for (int i = 0; i < 10; ++i) {
    AudioBlock block;
    block.source_time = i;
    out.SubmitBlock(block);
  }
  EXPECT_EQ(out.fifo_depth(), 4u);
  EXPECT_EQ(out.overflow_drops(), 6u);
}

TEST(EdgeTest, PlaybackOfUnknownRecordingIsANoOp) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 8);
  Repository repo(&sched, {.name = "repo"});
  ShutdownGuard guard(&sched);
  repo.Start();
  Channel<SegmentRef> out(&sched, "out");
  ProcessHandle handle = repo.Play(99, 1, &out, &pool);
  sched.RunFor(Millis(10));
  EXPECT_TRUE(handle.done());  // returned immediately, sent nothing
  EXPECT_EQ(out.waiting_senders(), 0u);
}

TEST(EdgeTest, CircuitClosedMidFlightDiscardsCleanly) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 32);
  AtmNetwork net(&sched);
  AtmPort* a = net.AddPort("a");
  AtmPort* b = net.AddPort("b");
  net.OpenCircuit(a, 42, b);
  ShutdownGuard guard(&sched);

  uint64_t delivered = 0;
  auto rx = [](AtmPort* port, uint64_t* n) -> Process {
    for (;;) {
      (void)co_await port->rx().Receive();
      ++*n;
    }
  };
  auto tx = [](Scheduler* s, BufferPool* p, AtmPort* a) -> Process {
    for (uint32_t i = 0; i < 20; ++i) {
      auto maybe = p->TryAllocate();
      **maybe = MakeAudioSegment(1, i, 0, std::vector<uint8_t>(16, 0));
      WireRef wire = co_await a->wire_pool().Allocate();
      EncodeSegmentInto(**maybe, StreamField::kOmitted, &wire->bytes);
      maybe->Reset();
      NetTx out;
      out.vci = 42;
      out.wire = std::move(wire);
      co_await a->tx().Send(std::move(out));
      co_await s->WaitFor(Millis(1));
    }
  };
  auto closer = [](Scheduler* s, AtmNetwork* net, AtmPort* a) -> Process {
    co_await s->WaitUntil(Millis(10));
    net->CloseCircuit(a, 42);
  };
  sched.Spawn(rx(b, &delivered), "rx");
  sched.Spawn(tx(&sched, &pool, a), "tx");
  sched.Spawn(closer(&sched, &net, a), "closer");
  sched.RunFor(Millis(100));
  EXPECT_GT(delivered, 5u);
  EXPECT_LT(delivered, 15u);          // the rest hit the closed circuit
  EXPECT_GT(a->unrouted(), 5u);       // and were discarded, not leaked
  EXPECT_EQ(pool.free_count(), 32u);  // every buffer recycled
  EXPECT_EQ(a->wire_pool().free_count(), a->wire_pool().capacity());  // wire images too
}

TEST(EdgeTest, ShutdownGuardIsIdempotent) {
  Scheduler sched;
  {
    ShutdownGuard guard(&sched);
    auto proc = [](Scheduler* s) -> Process { co_await s->WaitFor(Seconds(1)); };
    sched.Spawn(proc(&sched), "sleeper");
    sched.RunFor(Millis(1));
  }
  // Guard fired; explicit Shutdown again is safe, and so is destruction.
  sched.Shutdown();
  EXPECT_EQ(sched.live_process_count(), 0u);
}

}  // namespace
}  // namespace pandora
