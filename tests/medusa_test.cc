// Tests for the Medusa exploded-Pandora devices (paper section 5.2).
#include <gtest/gtest.h>

#include "src/medusa/devices.h"

namespace pandora {
namespace {

// NOTE: each test declares its ShutdownGuard AFTER the devices, so frames
// die before the device pools/channels they reference.
struct MedusaRig {
  MedusaRig() : net(&sched, 99) {}

  Scheduler sched;
  AtmNetwork net;
};

TEST(MedusaTest, MicrophoneToSpeakerDeliversContinuousAudio) {
  MedusaRig rig;
  NetMicrophone mic(&rig.sched, &rig.net, {.name = "mic", .stream = 1});
  NetSpeaker speaker(&rig.sched, &rig.net, {.name = "spk"});
  StreamId stream = ConnectAudio(&rig.net, &mic, &speaker);
  ShutdownGuard guard(&rig.sched);
  mic.Start();
  speaker.Start();
  rig.sched.RunFor(Seconds(5));

  EXPECT_GT(speaker.codec_out().played_blocks(), 2400u);
  const SequenceTracker* tracker = speaker.receiver().TrackerFor(stream);
  ASSERT_NE(tracker, nullptr);
  EXPECT_EQ(tracker->missing_total(), 0u);
  // Best-case latency regime: no server boards in the path.
  const StatAccumulator* latency = speaker.mixer().LatencyFor(stream);
  ASSERT_NE(latency, nullptr);
  EXPECT_LT(latency->Mean(), 12000.0);
}

TEST(MedusaTest, SpeakerMixesSeveralMicrophones) {
  MedusaRig rig;
  NetMicrophone mic1(&rig.sched, &rig.net, {.name = "mic1", .stream = 1, .frequency = 300.0});
  NetMicrophone mic2(&rig.sched, &rig.net, {.name = "mic2", .stream = 1, .frequency = 500.0});
  NetMicrophone mic3(&rig.sched, &rig.net, {.name = "mic3", .stream = 1, .frequency = 800.0});
  NetSpeaker speaker(&rig.sched, &rig.net, {.name = "spk"});
  StreamId s1 = ConnectAudio(&rig.net, &mic1, &speaker);
  StreamId s2 = ConnectAudio(&rig.net, &mic2, &speaker);
  StreamId s3 = ConnectAudio(&rig.net, &mic3, &speaker);
  ShutdownGuard guard(&rig.sched);
  EXPECT_NE(s1, s2);
  EXPECT_NE(s2, s3);
  mic1.Start();
  mic2.Start();
  mic3.Start();
  speaker.Start();
  rig.sched.RunFor(Seconds(3));

  // All three streams active and mixed ("no limit is placed on the number
  // of incoming streams").
  for (StreamId s : {s1, s2, s3}) {
    const SequenceTracker* tracker = speaker.receiver().TrackerFor(s);
    ASSERT_NE(tracker, nullptr) << s;
    EXPECT_GT(tracker->received(), 700u);
    EXPECT_EQ(tracker->missing_total(), 0u);
  }
  EXPECT_GT(speaker.mixer().blocks_mixed(), 4000u);
}

TEST(MedusaTest, MicrophoneFansOutToSeveralSpeakers) {
  MedusaRig rig;
  NetMicrophone mic(&rig.sched, &rig.net, {.name = "mic", .stream = 1});
  NetSpeaker spk1(&rig.sched, &rig.net, {.name = "spk1"});
  NetSpeaker spk2(&rig.sched, &rig.net, {.name = "spk2"});
  ConnectAudio(&rig.net, &mic, &spk1);
  ConnectAudio(&rig.net, &mic, &spk2);
  ShutdownGuard guard(&rig.sched);
  mic.Start();
  spk1.Start();
  spk2.Start();
  rig.sched.RunFor(Seconds(2));
  EXPECT_GT(spk1.codec_out().played_blocks(), 900u);
  EXPECT_GT(spk2.codec_out().played_blocks(), 900u);
}

TEST(MedusaTest, CameraToDisplayShowsFrames) {
  MedusaRig rig;
  NetCamera camera(&rig.sched, &rig.net, {.name = "cam", .stream = 1});
  NetDisplay display(&rig.sched, &rig.net, {.name = "disp"});
  ConnectVideo(&rig.net, &camera, &display);
  ShutdownGuard guard(&rig.sched);
  camera.Start();
  display.Start();
  rig.sched.RunFor(Seconds(2));
  EXPECT_GT(display.display().frames_displayed(), 40u);
  EXPECT_EQ(display.display().tears(), 0u);
  EXPECT_EQ(display.display().undecodable_segments(), 0u);
}

TEST(MedusaTest, TwoCamerasOnOneDisplayInterleave) {
  MedusaRig rig;
  NetCamera cam1(&rig.sched, &rig.net,
                 {.name = "cam1", .stream = 1, .rect = {0, 0, 64, 24}, .segments_per_frame = 2});
  NetCamera cam2(&rig.sched, &rig.net,
                 {.name = "cam2", .stream = 1, .rect = {0, 24, 64, 24}, .segments_per_frame = 2});
  NetDisplay display(&rig.sched, &rig.net, {.name = "disp"});
  StreamId v1 = ConnectVideo(&rig.net, &cam1, &display);
  StreamId v2 = ConnectVideo(&rig.net, &cam2, &display);
  ShutdownGuard guard(&rig.sched);
  cam1.Start();
  cam2.Start();
  display.Start();
  rig.sched.RunFor(Seconds(2));
  EXPECT_GT(display.display().MeasuredFps(v1, Seconds(2)), 20.0);
  EXPECT_GT(display.display().MeasuredFps(v2, Seconds(2)), 20.0);
  // The line cache reloaded as the two streams interleaved.
  EXPECT_GT(display.display().cache_reloads(), 40u);
}

TEST(MedusaTest, ClawbackStillAdaptsAcrossTheFabric) {
  // Principle 8 carries over: the same devices, a jittery path, no tuning.
  MedusaRig rig;
  HopQuality bad;
  bad.jitter_max = Millis(25);
  NetHop* hop = rig.net.AddHop("bad", bad);
  NetMicrophone mic(&rig.sched, &rig.net, {.name = "mic", .stream = 1});
  NetSpeaker speaker(&rig.sched, &rig.net, {.name = "spk"});
  ConnectAudio(&rig.net, &mic, &speaker, {hop});
  ShutdownGuard guard(&rig.sched);
  mic.Start();
  speaker.Start();
  rig.sched.RunFor(Seconds(20));
  auto stats = speaker.bank().TotalStats();
  EXPECT_GT(stats.max_depth, 5u);    // grew to ride the jitter
  EXPECT_EQ(stats.limit_drops, 0u);  // but never hit the 120ms wall
  EXPECT_GT(speaker.codec_out().played_blocks(), 9000u);
}

}  // namespace
}  // namespace pandora
