// Chaos property suite: >=200 random seeded FaultPlans driven against a
// three-box topology, asserting the paper's degradation invariants hold
// under (and after) every storm the plan generator can produce:
//
//   P1 — at any destination with a mixed population, incoming streams shed
//        before outgoing ones (per-destination Switch::ShedStats);
//   P2 — the audio drop fraction at the sender's network splitter never
//        exceeds the video drop fraction;
//   P5 — a good split copy, whose circuit the plan is forbidden to impair,
//        loses zero segments while its sibling copies are being choked;
//   P8 — clawback depth re-converges to the pre-storm band within bounded
//        simulated time after the last fault is restored.
//
// Every failure message embeds the full plan text, so a red run can be
// replayed exactly with PANDORA_FAULT_PLAN="<text>" (see README).
//
// PANDORA_CHAOS_SEED_BASE offsets the seed range (the chaos_sweep CTest
// target runs this suite under 9 distinct bases); PANDORA_CHAOS_PLANS
// overrides the plan count (default 200).
//
// The ShardedChaosReplay suite at the bottom is the sharded engine's chaos
// leg: random fault plans against the multi-shard storm harness at
// threads=8, every storm run twice and required to replay bit-exact.
// PANDORA_CHAOS_SHARD_PLANS overrides its plan count (default 50); a
// dedicated chaos_sweep seed base drives it in the sweep.
//
// The ShardSpanningChurn suite drives the same random-plan machinery against
// a real spanning Simulation — PandoraBoxes pinned across a four-shard set,
// every call crossing a shard boundary, the stop-the-world fault driver
// firing crashes and restores at barriers.  Each plan runs at 1 and 4 worker
// threads plus a cold replay, all three required to fingerprint identically.
// PANDORA_CHAOS_SPAN_PLANS overrides its plan count (default 20).
#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/box.h"
#include "src/core/simulation.h"
#include "src/fault/driver.h"
#include "src/fault/plan.h"
#include "tests/shard_harness.h"

namespace pandora {
namespace {

uint64_t EnvSeedBase() {
  const char* base = std::getenv("PANDORA_CHAOS_SEED_BASE");
  return base == nullptr ? 0 : std::strtoull(base, nullptr, 10);
}

int EnvPlanCount() {
  const char* count = std::getenv("PANDORA_CHAOS_PLANS");
  return count == nullptr ? 200 : std::atoi(count);
}

// Chaos boxes claw delay back fast (1 drop per 16 arrivals above target =
// ~31 blocks/s) so P8 convergence is observable inside one short test run;
// the paper's 8-second production threshold would need minutes.
ClawbackConfig FastClawback() {
  ClawbackConfig config;
  config.count_threshold = 16;
  return config;
}

struct ChaosWorld {
  Simulation sim;
  PandoraBox* a = nullptr;  // squeezed sender: audio+video to b, split to c
  PandoraBox* b = nullptr;  // the box the plan may crash
  PandoraBox* c = nullptr;  // receiver of the protected good copy
  StreamId audio_at_b = kInvalidStream;  // call 0
  StreamId video_at_b = kInvalidStream;  // call 1
  StreamId audio_at_c = kInvalidStream;  // call 2 — protected (P5 good copy)
  StreamId audio_at_a = kInvalidStream;  // call 3
};

void BuildWorld(ChaosWorld& world) {
  PandoraBox::Options options;
  options.name = "a";
  options.with_video = true;
  options.clawback = FastClawback();
  // The squeezed uplink (bench E9's recipe): 64x48 video at 25fps offers
  // ~614kbit/s + headers into 500kbit/s, so the splitter must shed video
  // continuously — P2 is exercised on every seed, not just stormy ones.
  options.network_egress_bps = 500'000;
  world.a = &world.sim.AddBox(options);

  options = PandoraBox::Options{};
  options.name = "b";
  options.with_video = true;
  options.clawback = FastClawback();
  options.display_buffer = 6;  // small: storms can congest the display path
  world.b = &world.sim.AddBox(options);

  options = PandoraBox::Options{};
  options.name = "c";
  options.with_video = false;
  options.clawback = FastClawback();
  world.c = &world.sim.AddBox(options);

  world.sim.Start();
  world.audio_at_b = world.sim.SendAudio(*world.a, *world.b);                      // call 0
  world.video_at_b = world.sim.SendVideo(*world.a, *world.b, Rect{0, 0, 64, 48},  // call 1
                                         1, 1, 4);
  world.audio_at_c = world.sim.SplitAudioTo(*world.a, world.a->mic_stream(),      // call 2
                                            *world.c);
  world.audio_at_a = world.sim.SendAudio(*world.b, *world.a);                     // call 3
  // Local camera on b's own display: mixes an OUTGOING stream into the same
  // destination population as call 1's incoming video, so P1's ordering has
  // a mixed population to act on.
  world.sim.ShowLocalVideo(*world.b, Rect{0, 0, 64, 48});
}

RandomPlanOptions ChaosPlanOptions() {
  RandomPlanOptions options;
  options.start = Millis(800);     // let traffic plateau first
  options.horizon = Millis(2800);  // faults land inside a 2s storm window
  options.min_events = 3;
  options.max_events = 6;
  options.call_count = 4;
  options.box_count = 3;
  options.protected_calls = {2};     // the P5 good copy is never impaired
  options.protected_boxes = {0, 2};  // only b crashes: a seeded sender or a
                                     // good-copy receiver would reset the
                                     // sequence spaces P5/P2 measure
  options.min_episode = Millis(100);
  options.max_episode = Millis(500);
  return options;
}

double DropFraction(uint64_t drops, uint64_t sent) {
  const uint64_t offered = drops + sent;
  return offered == 0 ? 0.0 : static_cast<double>(drops) / static_cast<double>(offered);
}

void CheckP1(const ChaosWorld& world, const std::string& plan_text) {
  if (world.b->crashed()) {
    return;  // plan ended inside a crash window; nothing to inspect
  }
  const Switch::ShedStats& sheds =
      world.b->server_switch().shed_stats_for(world.b->dest_display());
  if (sheds.outgoing == 0) {
    return;
  }
  // Outgoing video was shed at a destination that also carries incoming
  // video: the incoming stream must have been sacrificed no later (one
  // 100ms slack window covers segment arrival interleaving around the
  // moment suppression widened to cover both classes).
  EXPECT_GT(sheds.incoming, 0u) << "P1: outgoing shed with incoming unscathed; " << plan_text;
  EXPECT_NE(sheds.first_incoming, -1) << plan_text;
  EXPECT_LE(sheds.first_incoming, sheds.first_outgoing + Millis(100))
      << "P1: outgoing shed began before incoming; " << plan_text;
}

void CheckP2(const ChaosWorld& world, const std::string& plan_text) {
  const NetworkOutput& out = world.a->network_output();
  const double audio_fraction = DropFraction(out.audio_drops(), out.audio_sent());
  const double video_fraction = DropFraction(out.video_drops(), out.video_sent());
  EXPECT_LE(audio_fraction, video_fraction + 1e-9)
      << "P2: audio shed harder than video at the splitter (audio " << audio_fraction
      << " vs video " << video_fraction << "); " << plan_text;
  // The squeezed uplink guarantees the property is exercised, not vacuous.
  EXPECT_GT(out.video_drops() + out.video_sent(), 0u) << plan_text;
}

void CheckP5(const ChaosWorld& world, const std::string& plan_text) {
  const SequenceTracker* tracker = world.c->audio_receiver().TrackerFor(world.audio_at_c);
  ASSERT_NE(tracker, nullptr) << plan_text;
  EXPECT_GT(tracker->received(), 500u) << "P5: good copy barely flowed; " << plan_text;
  EXPECT_EQ(tracker->missing_total(), 0u)
      << "P5: the protected split copy lost segments while siblings were choked; "
      << plan_text;
}

// Deepest live clawback buffer across the topology right now.  The squeezed
// uplink makes audio arrivals inherently bursty (a 768-byte video segment
// holds the 500kbit/s port for ~12ms), so depths breathe between 0 and ~14
// blocks even with no faults — P8 is therefore judged against the natural
// band, not an absolute figure.
size_t MaxClawbackDepth(ChaosWorld& world) {
  size_t max_depth = 0;
  for (PandoraBox* box : {world.a, world.b, world.c}) {
    if (box->crashed()) {
      continue;
    }
    ClawbackBank& bank = box->clawback_bank();
    for (StreamId stream : bank.ActiveStreams()) {
      ClawbackBuffer* buffer = bank.Find(stream);
      if (buffer != nullptr) {
        max_depth = std::max(max_depth, buffer->depth_blocks());
      }
    }
  }
  return max_depth;
}

// Runs `slices` x 100ms, sampling the deepest buffer after each slice.
size_t SampleDepthBand(ChaosWorld& world, int slices) {
  size_t band = 0;
  for (int i = 0; i < slices; ++i) {
    world.sim.RunFor(Millis(100));
    band = std::max(band, MaxClawbackDepth(world));
  }
  return band;
}

class ChaosProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChaosProperty, InvariantsHoldUnderRandomFaultPlan) {
  if (GetParam() >= EnvPlanCount()) {
    GTEST_SKIP() << "beyond PANDORA_CHAOS_PLANS";
  }
  const uint64_t seed = EnvSeedBase() + static_cast<uint64_t>(GetParam()) + 1;
  const FaultPlan plan = RandomFaultPlan(seed, ChaosPlanOptions());
  const std::string plan_text = "replay with PANDORA_FAULT_PLAN=\"" + FormatFaultPlan(plan) +
                                "\" (seed " + std::to_string(seed) + ")";
  SCOPED_TRACE(plan_text);

  ChaosWorld world;
  BuildWorld(world);
  FaultDriver driver(&world.sim, plan);
  driver.Start();

  // Pre-storm baseline: the natural depth band before the first fault can
  // land (plans start at 800ms).
  const size_t baseline_band = SampleDepthBand(world, 8);

  // Run out the storm window (last onset < 2.8s, episodes <= 500ms), then a
  // settle window for P8 re-convergence.
  world.sim.RunFor(Millis(2600));
  ASSERT_TRUE(driver.quiescent()) << plan_text;
  EXPECT_GT(driver.applied() + driver.skipped(), 0u) << plan_text;
  world.sim.RunFor(Millis(1800));

  // P8: after settling, the depth band is back to the pre-storm band (plus
  // slack for sampling the oscillation at different phases).  A jitter
  // storm's cushion (~20 blocks for 40ms of jitter) persisting past the
  // settle window fails this; clawback working claws it back at ~31
  // blocks/s (1 in 16 above target).
  const size_t post_band = SampleDepthBand(world, 8);
  EXPECT_LE(post_band, baseline_band + 8)
      << "P8: clawback never re-converged to the pre-storm band (" << post_band << " vs "
      << baseline_band << " blocks); " << plan_text;

  CheckP1(world, plan_text);
  CheckP2(world, plan_text);
  CheckP5(world, plan_text);
}

INSTANTIATE_TEST_SUITE_P(TwoHundredPlans, ChaosProperty, ::testing::Range(0, 200));

TEST(ChaosCorruptionStorm, DecodeFailuresNeverCrashABoxOrStallAudio) {
  // A pure wire-corruption storm: sustained overlapping bit-flip episodes on
  // every unprotected call.  The property under test is the wire path's
  // containment of in-flight damage — corrupted images are rejected at the
  // destination decoder (counted + reported), absorbed downstream as
  // ordinary loss, and must never crash a box or wedge its receive path.
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("seed=99;"
                             " @900ms wire-corrupt call=0 value=0.4 for=600ms;"
                             " @1s wire-corrupt call=1 value=0.5 for=800ms;"
                             " @1200ms wire-corrupt call=3 value=0.3 for=500ms;"
                             " @2s wire-corrupt call=0 value=0.25 for=400ms",
                             &plan, &error))
      << error;

  ChaosWorld world;
  BuildWorld(world);
  FaultDriver driver(&world.sim, plan);
  driver.Start();

  world.sim.RunFor(Millis(3000));
  ASSERT_TRUE(driver.quiescent());
  EXPECT_GT(driver.applied(), 0u);
  EXPECT_FALSE(world.a->crashed());
  EXPECT_FALSE(world.b->crashed());
  EXPECT_FALSE(world.c->crashed());
  // The storm was real: b rejected corrupted wire images at its decoder.
  EXPECT_GT(world.b->network_input().decode_failures(), 0u);

  // Audio through the stormed call keeps flowing after the last episode is
  // restored (P2 keeps audio ahead of video, P4 keeps control responsive —
  // a decode failure consumes no pool buffer and blocks nothing).
  const SequenceTracker* tracker = world.b->audio_receiver().TrackerFor(world.audio_at_b);
  ASSERT_NE(tracker, nullptr);
  const uint64_t before_settle = tracker->received();
  world.sim.RunFor(Millis(1000));
  EXPECT_GT(tracker->received(), before_settle + 40)
      << "audio stalled after the corruption storm";
  // Some of the bit flips landed in the sequence field: those segments are
  // discarded as suspect, and — the regression this test exists for — the
  // tracker's expectation survives them, so the flips cost one segment
  // each, not the rest of the stream.
  EXPECT_GT(tracker->suspects(), 0u);
  CheckP2(world, "scripted corruption storm");
}

// --- Sharded chaos leg ------------------------------------------------------

int EnvShardPlanCount() {
  const char* count = std::getenv("PANDORA_CHAOS_SHARD_PLANS");
  return count == nullptr ? 50 : std::atoi(count);
}

class ShardedChaosReplay : public ::testing::TestWithParam<int> {};

TEST_P(ShardedChaosReplay, RandomPlanReplaysBitExactAtEightThreads) {
  if (GetParam() >= EnvShardPlanCount()) {
    GTEST_SKIP() << "beyond PANDORA_CHAOS_SHARD_PLANS";
  }
  const uint64_t seed = EnvSeedBase() + static_cast<uint64_t>(GetParam()) + 1;
  RandomPlanOptions plan_options;
  plan_options.start = Millis(100);
  plan_options.horizon = Millis(700);
  plan_options.min_events = 3;
  plan_options.max_events = 8;
  plan_options.box_count = 24;  // targets map onto the storm's 24 actors
  plan_options.call_count = 4;
  plan_options.min_episode = Millis(40);
  plan_options.max_episode = Millis(250);
  const FaultPlan plan = RandomFaultPlan(seed, plan_options);
  SCOPED_TRACE("sharded storm under plan seed " + std::to_string(seed) + ": " +
               FormatFaultPlan(plan));

  ShardStormOptions opt;
  opt.shards = 8;
  opt.threads = 8;
  opt.total_actors = 24;
  opt.seed = seed;
  opt.duration = Millis(900);
  opt.plan = &plan;

  // Two cold runs, eight OS threads each: every per-shard order-sensitive
  // hash, every counter and the window/mailbox bookkeeping must match — the
  // M:N engine's replay guarantee holds under whatever this plan throws.
  const ShardStormResult first = RunShardStorm(opt);
  const ShardStormResult second = RunShardStorm(opt);
  EXPECT_TRUE(first == second);
  EXPECT_GT(first.deliveries, 0u);

  // And the partition must stay invisible: the same storm collapsed onto
  // one shard (the legacy engine) sees the identical traffic.
  ShardStormOptions single = opt;
  single.shards = 1;
  single.threads = 1;
  const ShardStormResult legacy = RunShardStorm(single);
  EXPECT_EQ(legacy.merged_hash, first.merged_hash);
  EXPECT_EQ(legacy.deliveries, first.deliveries);
  EXPECT_EQ(legacy.drops, first.drops);
}

INSTANTIATE_TEST_SUITE_P(FiftyPlans, ShardedChaosReplay, ::testing::Range(0, 50));

// --- Shard-spanning Simulation churn leg ------------------------------------

int EnvSpanPlanCount() {
  const char* count = std::getenv("PANDORA_CHAOS_SPAN_PLANS");
  return count == nullptr ? 20 : std::atoi(count);
}

struct SpanningWorld {
  Simulation sim;
  std::vector<PandoraBox*> boxes;
  std::vector<StreamId> at_dst;
  std::vector<PandoraBox*> dst;
  explicit SpanningWorld(const SimulationOptions& options) : sim(options) {}
};

// Four audio-only boxes pinned round-robin across the set's shards, a ring
// of calls between neighbours — with four shards, every call is cross-shard
// and rides the mailbox path under the lookahead contract (1 ms propagation
// = the lookahead floor, so each segment lands in the very next window).
void BuildSpanningWorld(SpanningWorld& world) {
  const int shards = world.sim.shard_set().shard_count();
  for (int i = 0; i < 4; ++i) {
    PandoraBox::Options options;
    options.name = "span" + std::to_string(i);
    options.with_video = false;
    options.clawback = FastClawback();
    options.shard = i % shards;
    world.boxes.push_back(&world.sim.AddBox(options));
  }
  world.sim.Start();
  CallPath wan;
  wan.direct.propagation = Millis(1);
  for (int i = 0; i < 4; ++i) {
    PandoraBox& src = *world.boxes[static_cast<size_t>(i)];
    PandoraBox& dst = *world.boxes[static_cast<size_t>((i + 1) % 4)];
    world.at_dst.push_back(world.sim.SendAudio(src, dst, wan));
    world.dst.push_back(&dst);
  }
}

// Order-sensitive digest of everything observable after a spanning storm.
uint64_t SpanningFingerprint(SpanningWorld& world) {
  Simulation& sim = world.sim;
  uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, sim.network().total_delivered());
  hash = FnvMix(hash, sim.network().total_lost());
  hash = FnvMix(hash, sim.network().total_corrupted());
  for (int s = 0; s < sim.shard_set().shard_count(); ++s) {
    Scheduler& shard = sim.shard_set().shard(s);
    hash = FnvMix(hash, shard.context_switches());
    hash = FnvMix(hash, static_cast<uint64_t>(shard.now()));
    hash = FnvMix(hash, sim.reports_for(s).size());
  }
  for (PandoraBox* box : world.boxes) {
    hash = FnvMix(hash, box->crash_count());
    hash = FnvMix(hash, box->crashed() ? 1u : box->deep_copies());
  }
  for (size_t i = 0; i < world.at_dst.size(); ++i) {
    if (world.dst[i]->crashed()) {
      hash = FnvMix(hash, 0xdead);
      continue;
    }
    const SequenceTracker* tracker =
        world.dst[i]->audio_receiver().TrackerFor(world.at_dst[i]);
    if (tracker == nullptr) {
      hash = FnvMix(hash, 0);
      continue;
    }
    hash = FnvMix(hash, tracker->received());
    hash = FnvMix(hash, tracker->missing_total());
    hash = FnvMix(hash, tracker->suspects());
  }
  return hash;
}

class ShardSpanningChurn : public ::testing::TestWithParam<int> {};

TEST_P(ShardSpanningChurn, SpanningWorldSurvivesChurnThreadInvariantly) {
  if (GetParam() >= EnvSpanPlanCount()) {
    GTEST_SKIP() << "beyond PANDORA_CHAOS_SPAN_PLANS";
  }
  const uint64_t seed = EnvSeedBase() + static_cast<uint64_t>(GetParam()) + 101;
  RandomPlanOptions plan_options;
  plan_options.start = Millis(600);
  plan_options.horizon = Millis(2000);
  plan_options.min_events = 3;
  plan_options.max_events = 6;
  plan_options.box_count = 4;
  plan_options.call_count = 4;
  plan_options.min_episode = Millis(100);
  plan_options.max_episode = Millis(400);
  const FaultPlan plan = RandomFaultPlan(seed, plan_options);
  SCOPED_TRACE("spanning world under plan seed " + std::to_string(seed) + ": " +
               FormatFaultPlan(plan));

  const auto run = [&](int threads) {
    SimulationOptions options;
    options.seed = seed;
    options.shards = 4;
    options.threads = threads;
    SpanningWorld world(options);
    BuildSpanningWorld(world);
    FaultDriver driver(&world.sim, plan);
    driver.Start();
    world.sim.RunFor(Millis(3200));
    EXPECT_TRUE(driver.quiescent()) << "fault driver still live at +3.2s";
    EXPECT_GT(world.sim.shard_set().cross_shard_messages(), 0u);
    return SpanningFingerprint(world);
  };

  const uint64_t sequential = run(1);
  const uint64_t threaded = run(4);
  const uint64_t replay = run(4);
  EXPECT_EQ(sequential, threaded) << "thread count leaked into observables";
  EXPECT_EQ(threaded, replay) << "cold replay diverged";
}

INSTANTIATE_TEST_SUITE_P(TwentyPlans, ShardSpanningChurn, ::testing::Range(0, 20));

}  // namespace
}  // namespace pandora
