// Allocation gate for the event engine (ISSUE 5 tentpole).
//
// bench_engine (E17) reports allocs/event as a ratio; this test is the strict
// CI tripwire behind it: after one warmup pass fills every free list (timer
// wheel arena, process slab, coroutine frame pool, channel rings, delivery
// tables), a measured pass over the same storm shapes must perform EXACTLY
// ZERO calls into the global heap.  Any regression — a std::function sneaking
// back onto the timer path, a container growing in steady state, a coroutine
// frame missing the pool — fails deterministically instead of nudging a ratio.
//
// The global operator new/delete replacement below mirrors bench_engine.cpp.
// gtest itself allocates freely; all assertions read the counter first and
// only then run EXPECT machinery, so the measured window stays clean.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "src/runtime/alt.h"
#include "src/runtime/channel.h"
#include "src/runtime/random.h"
#include "src/runtime/scheduler.h"

#if defined(__SANITIZE_ADDRESS__)
#define PANDORA_ALLOC_GATE_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PANDORA_ALLOC_GATE_DISABLED 1
#endif
#endif

namespace {
uint64_t g_alloc_count = 0;

void* CountedAlloc(std::size_t n) {
  ++g_alloc_count;
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountedAlignedAlloc(std::size_t n, std::size_t align) {
  ++g_alloc_count;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n == 0 ? 1 : n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace pandora {
namespace {

constexpr uint64_t kWarmupIters = 40'000;
constexpr uint64_t kMeasuredIters = 40'000;

class EngineAllocTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef PANDORA_ALLOC_GATE_DISABLED
    GTEST_SKIP() << "frame pool runs in passthrough mode under ASan; "
                    "allocs/event is gated on the plain build only";
#endif
  }
};

// Runs drive(iters) twice — warmup then measured — and returns the number of
// global-heap calls inside the measured pass.
template <typename Drive>
uint64_t MeasuredAllocs(Drive drive) {
  drive(kWarmupIters);
  const uint64_t before = g_alloc_count;
  drive(kMeasuredIters);
  return g_alloc_count - before;
}

TEST_F(EngineAllocTest, TimerChurnIsAllocationFree) {
  Scheduler sched;
  ShutdownGuard guard(&sched);
  auto sleeper = [](Scheduler* s, Rng rng, uint64_t n) -> Process {
    for (uint64_t i = 0; i < n; ++i) {
      co_await s->WaitFor(Micros(rng.UniformInt(200, 20'000)));
    }
  };
  auto horizon = [](Scheduler* s, uint64_t n) -> Process {
    for (uint64_t i = 0; i < n; ++i) {
      co_await s->WaitFor(Seconds(8));
    }
  };
  const uint64_t allocs = MeasuredAllocs([&](uint64_t iters) {
    // Fresh seed per pass: the measured pass replays the warmup workload
    // exactly, so peak concurrency (ring/slab/arena capacity) cannot exceed
    // what the warmup provisioned.
    Rng rng(11);
    const uint64_t per_proc = iters / 32 + 1;
    for (int p = 0; p < 32; ++p) {
      sched.Spawn(sleeper(&sched, rng.Fork(), per_proc), "t");
    }
    sched.Spawn(horizon(&sched, per_proc / 400 + 1), "h");
    sched.RunUntilQuiescent();
  });
  EXPECT_EQ(allocs, 0u) << "timer arm/fire touched the heap in steady state";
}

TEST_F(EngineAllocTest, RendezvousIsAllocationFree) {
  Scheduler sched;
  ShutdownGuard guard(&sched);
  // Channels outlive both passes so ring and ticket-table capacity from the
  // warmup carries into the measured window.
  Channel<int> ping(&sched, "ping");
  Channel<int> pong(&sched, "pong");
  auto client = [](Channel<int>* a, Channel<int>* b, uint64_t n) -> Process {
    for (uint64_t i = 0; i < n; ++i) {
      co_await a->Send(static_cast<int>(i));
      (void)co_await b->Receive();
    }
  };
  auto server = [](Channel<int>* a, Channel<int>* b, uint64_t n) -> Process {
    for (uint64_t i = 0; i < n; ++i) {
      int v = co_await a->Receive();
      co_await b->Send(v + 1);
    }
  };
  const uint64_t allocs = MeasuredAllocs([&](uint64_t iters) {
    const uint64_t per_side = iters / 4 + 1;
    sched.Spawn(client(&ping, &pong, per_side), "c");
    sched.Spawn(server(&ping, &pong, per_side), "s");
    sched.RunUntilQuiescent();
  });
  EXPECT_EQ(allocs, 0u) << "channel rendezvous touched the heap in steady state";
}

TEST_F(EngineAllocTest, SpawnChurnIsAllocationFree) {
  Scheduler sched;
  ShutdownGuard guard(&sched);
  auto forwarder = [](Scheduler* s) -> Process { co_await s->WaitFor(Micros(100)); };
  const uint64_t allocs = MeasuredAllocs([&](uint64_t iters) {
    const uint64_t batches = iters / (2 * 1024) + 1;
    for (uint64_t b = 0; b < batches; ++b) {
      for (int i = 0; i < 1024; ++i) {
        sched.Spawn(forwarder(&sched), "f", Priority::kHigh);
      }
      sched.RunUntilQuiescent();
    }
  });
  EXPECT_EQ(allocs, 0u) << "spawn/exit churn touched the heap in steady state";
}

TEST_F(EngineAllocTest, AltSelectIsAllocationFree) {
  Scheduler sched;
  ShutdownGuard guard(&sched);
  Channel<int> a(&sched, "a");
  Channel<int> b(&sched, "b");
  auto producer = [](Scheduler* s, Channel<int>* ch, Rng rng, uint64_t n) -> Process {
    for (uint64_t i = 0; i < n; ++i) {
      co_await ch->Send(static_cast<int>(i));
      co_await s->WaitFor(Micros(rng.UniformInt(150, 600)));
    }
  };
  auto consumer = [](Scheduler* s, Channel<int>* ca, Channel<int>* cb, Rng rng,
                     uint64_t n) -> Process {
    for (uint64_t done = 0; done < n;) {
      Alt alt(s);
      alt.OnReceive(*ca).OnReceive(*cb).OnTimeoutAfter(Micros(rng.UniformInt(100, 400)));
      int chosen = co_await alt.Select();
      if (chosen == 0) {
        (void)co_await ca->Receive();
        ++done;
      } else if (chosen == 1) {
        (void)co_await cb->Receive();
        ++done;
      }
    }
  };
  const uint64_t allocs = MeasuredAllocs([&](uint64_t iters) {
    Rng rng(23);  // identical workload both passes; see TimerChurn note
    // Production and consumption balance exactly: a surplus value would
    // strand a parked producer past quiescence, and the stragglers piling up
    // across passes would grow the process slab mid-measurement.
    const uint64_t half = iters / 8 + 1;
    sched.Spawn(producer(&sched, &a, rng.Fork(), half), "pa");
    sched.Spawn(producer(&sched, &b, rng.Fork(), half), "pb");
    sched.Spawn(consumer(&sched, &a, &b, rng.Fork(), 2 * half), "c");
    sched.RunUntilQuiescent();
  });
  EXPECT_EQ(allocs, 0u) << "ALT selection touched the heap in steady state";
}

}  // namespace
}  // namespace pandora
