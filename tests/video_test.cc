// Tests for the video subsystem: DPCM line coding, the framestore scan
// model, the slice pipeline with its hold-back buffer, capture at
// fractional frame rates, and tear-free display (paper sections 3.3, 3.6).
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/buffer/pool.h"
#include "src/control/report.h"
#include "src/runtime/scheduler.h"
#include "src/video/capture.h"
#include "src/video/display.h"
#include "src/video/dpcm.h"
#include "src/video/framestore.h"
#include "src/video/pipeline.h"

namespace pandora {
namespace {

std::vector<uint8_t> SmoothLine(int width) {
  std::vector<uint8_t> line(static_cast<size_t>(width));
  for (int i = 0; i < width; ++i) {
    line[static_cast<size_t>(i)] = static_cast<uint8_t>(100 + (i % 7));
  }
  return line;
}

TEST(DpcmTest, RawAndDpcmAreLossless) {
  auto line = SmoothLine(64);
  for (LineCoding coding : {LineCoding::kRawLine, LineCoding::kDpcmLine}) {
    auto bytes = CompressLine(coding, line.data(), 64);
    EXPECT_EQ(bytes.size(), CompressedLineSize(coding, 64));
    auto decoded = DecompressLine(bytes, 64);
    ASSERT_TRUE(decoded.ok);
    EXPECT_EQ(decoded.pixels, line);
  }
}

TEST(DpcmTest, SubsampleHalvesSizeAndInterpolatesClose) {
  auto line = SmoothLine(64);
  auto bytes = CompressLine(LineCoding::kSubsampledDpcmLine, line.data(), 64);
  EXPECT_EQ(bytes.size(), 1u + 32u);
  auto decoded = DecompressLine(bytes, 64);
  ASSERT_TRUE(decoded.ok);
  for (int i = 0; i < 63; ++i) {
    EXPECT_NEAR(decoded.pixels[static_cast<size_t>(i)], line[static_cast<size_t>(i)], 4)
        << "i=" << i;
  }
  // The final odd pixel has no right neighbour: it replicates the left one.
  EXPECT_EQ(decoded.pixels[63], decoded.pixels[62]);
}

TEST(DpcmTest, VerticalDeltaNeedsTheLineAbove) {
  auto above = SmoothLine(32);
  std::vector<uint8_t> line(32);
  for (int i = 0; i < 32; ++i) {
    line[static_cast<size_t>(i)] = static_cast<uint8_t>(above[static_cast<size_t>(i)] + 3);
  }
  auto bytes = CompressLine(LineCoding::kVerticalDelta, line.data(), 32, above.data());
  auto with = DecompressLine(bytes, 32, above.data());
  ASSERT_TRUE(with.ok);
  EXPECT_EQ(with.pixels, line);
  // Without the interpolation state the line is undecodable — this is the
  // failure the per-stream cache prevents.
  auto without = DecompressLine(bytes, 32);
  EXPECT_FALSE(without.ok);
}

TEST(DpcmTest, RejectsTruncatedAndWrongSizedLines) {
  auto line = SmoothLine(16);
  auto bytes = CompressLine(LineCoding::kDpcmLine, line.data(), 16);
  bytes.pop_back();
  EXPECT_FALSE(DecompressLine(bytes, 16).ok);
  EXPECT_FALSE(DecompressLine({}, 16).ok);
}

TEST(LastLineCacheTest, CountsInterleaveReloads) {
  LastLineCache cache;
  cache.Store(1, SmoothLine(8));
  cache.Store(2, SmoothLine(8));
  EXPECT_NE(cache.Fetch(1), nullptr);  // reload 1 (first use)
  EXPECT_NE(cache.Fetch(1), nullptr);  // same stream: no reload
  EXPECT_NE(cache.Fetch(2), nullptr);  // interleave: reload 2
  EXPECT_NE(cache.Fetch(1), nullptr);  // interleave back: reload 3
  EXPECT_EQ(cache.reloads(), 3u);
  cache.Drop(1);
  EXPECT_EQ(cache.Fetch(1), nullptr);  // dropped state is gone
}

TEST(FrameStoreTest, ScanAdvancesThroughFramePeriod) {
  Scheduler sched;
  MovingBarPattern pattern(64);
  FrameStore store(&sched, &pattern, 64, 48);
  EXPECT_EQ(store.FrameAt(0), 0u);
  EXPECT_EQ(store.ScanLineAt(0), 0);
  EXPECT_EQ(store.ScanLineAt(Millis(20)), 24);  // halfway through 40ms
  EXPECT_EQ(store.FrameAt(Millis(40)), 1u);
  EXPECT_EQ(store.ScanLineAt(Millis(40)), 0);
}

TEST(FrameStoreTest, ImmediateReadTearsWhenScanInsideRows) {
  Scheduler sched;
  MovingBarPattern pattern(64);
  FrameStore store(&sched, &pattern, 64, 48);
  sched.RunFor(Millis(20));  // scan at line 24
  auto torn = store.ReadRectangleNow({0, 16, 64, 16});  // rows 16..32 straddle
  EXPECT_TRUE(torn.torn);
  auto clean = store.ReadRectangleNow({0, 32, 64, 8});  // fully below scan
  EXPECT_FALSE(clean.torn);
}

TEST(FrameStoreTest, SafeReadWaitsForScanToClear) {
  Scheduler sched;
  MovingBarPattern pattern(64);
  FrameStore store(&sched, &pattern, 64, 48);
  ShutdownGuard guard(&sched);
  FrameStore::ReadResult result;
  bool done = false;
  auto reader = [](Scheduler* s, FrameStore* store, FrameStore::ReadResult* out,
                   bool* done) -> Process {
    co_await s->WaitUntil(Millis(20));  // scan at line 24, inside rows 16..32
    *out = co_await store->ReadRectangleSafe({0, 16, 64, 16});
    *done = true;
  };
  sched.Spawn(reader(&sched, &store, &result, &done), "reader");
  sched.RunFor(Millis(60));
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.torn);
  EXPECT_GE(store.safe_waits(), 1u);
}

TEST(PipelineTest, CompressorHoldsOneSlice) {
  PipelinedCompressor engine;
  EXPECT_FALSE(engine.Push({1, 2, 3}).has_value());  // swallowed
  auto out = engine.Push({4, 5});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, (std::vector<uint8_t>{1, 2, 3}));
  // Dummy data flushes the last real slice.
  auto flushed = engine.Push({});
  ASSERT_TRUE(flushed.has_value());
  EXPECT_EQ(*flushed, (std::vector<uint8_t>{4, 5}));
}

TEST(PipelineTest, HoldbackBufferRetainsLastSliceAndFollowers) {
  SliceHoldbackBuffer buffer;
  // Header before any slice passes straight through.
  auto released = buffer.Push({SliceKind::kHeaderDesc, 1, 0, 0, 0});
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].kind, SliceKind::kHeaderDesc);

  // First slice is held.
  EXPECT_TRUE(buffer.Push({SliceKind::kSliceDesc, 1, 0, 8, 100}).empty());
  // The tail queues behind the held slice.
  EXPECT_TRUE(buffer.Push({SliceKind::kTailDesc, 1, 0, 0, 0}).empty());
  ASSERT_EQ(buffer.held().size(), 2u);

  // A dummy (new data entering the pipe) releases the slice + tail, and is
  // itself held — the server must not read dummy lines still in the pipe.
  released = buffer.Push({SliceKind::kDummyDesc, 1, 0, 2, 0});
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0].kind, SliceKind::kSliceDesc);
  EXPECT_EQ(released[1].kind, SliceKind::kTailDesc);
  ASSERT_EQ(buffer.held().size(), 1u);
  EXPECT_EQ(buffer.held()[0].kind, SliceKind::kDummyDesc);

  // Next segment's first slice flushes the dummy through.
  released = buffer.Push({SliceKind::kSliceDesc, 1, 1, 8, 100});
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].kind, SliceKind::kDummyDesc);
}

TEST(PipelineTest, SeveralSlicesInTransitForConcurrency) {
  SliceHoldbackBuffer buffer;
  buffer.Push({SliceKind::kSliceDesc, 1, 0, 8, 100});
  auto r1 = buffer.Push({SliceKind::kSliceDesc, 1, 0, 8, 100});
  auto r2 = buffer.Push({SliceKind::kSliceDesc, 1, 0, 8, 100});
  // Each new slice releases exactly the previous one: a window of one slice
  // held, others flowing.
  EXPECT_EQ(r1.size(), 1u);
  EXPECT_EQ(r2.size(), 1u);
}

// --- Capture -> Display integration ------------------------------------------

struct VideoRig {
  explicit VideoRig(VideoCaptureOptions capture_options, bool scan_aware = true)
      : pattern(64),
        store(&sched, &pattern, 64, 48),
        pool(&sched, "pool", 64),
        wire(&sched, "wire"),
        capture(&sched, std::move(capture_options), &store, &pool, &wire),
        display(&sched,
                {.name = "disp", .width = 64, .height = 48, .scan_aware_copy = scan_aware},
                &wire, &reports) {}

  void Start() {
    capture.Start();
    display.Start();
  }

  Scheduler sched;
  ReportCollector reports;
  MovingBarPattern pattern;
  FrameStore store;
  BufferPool pool;
  Channel<SegmentRef> wire;
  VideoCapture capture;
  VideoDisplay display;
  ShutdownGuard guard{&sched};
};

VideoCaptureOptions BasicCapture(StreamId stream, int numer, int denom, int segments) {
  VideoCaptureOptions options;
  options.name = "cap" + std::to_string(stream);
  options.stream = stream;
  options.rect = {0, 0, 64, 48};
  options.rate_numer = numer;
  options.rate_denom = denom;
  options.segments_per_frame = segments;
  options.coding = LineCoding::kDpcmLine;  // lossless: exact comparison
  return options;
}

TEST(VideoRigTest, FullRateCaptureDisplaysEveryFrame) {
  VideoRig rig(BasicCapture(1, 1, 1, 4));
  rig.Start();
  rig.sched.RunFor(Seconds(2));
  // 25 fps over 2s with a little pipeline latency.
  EXPECT_GE(rig.capture.frames_captured(), 48u);
  EXPECT_GE(rig.display.frames_displayed(), 47u);
  EXPECT_EQ(rig.display.frames_dropped_incomplete(), 0u);
  EXPECT_EQ(rig.display.undecodable_segments(), 0u);
  EXPECT_EQ(rig.display.tears(), 0u);
  EXPECT_NEAR(rig.display.MeasuredFps(1, Seconds(2)), 25.0, 1.5);
}

TEST(VideoRigTest, DisplayedPixelsMatchTheCameraPattern) {
  VideoRig rig(BasicCapture(1, 1, 1, 3));
  rig.Start();
  rig.sched.RunFor(Millis(500));
  ASSERT_GT(rig.display.frames_displayed(), 0u);
  // The screen holds some complete recent frame; find which frame by
  // matching the bar position, then demand a pixel-exact match.
  const auto& screen = rig.display.screen();
  bool matched = false;
  for (uint32_t frame = 0; frame < 14 && !matched; ++frame) {
    bool all = true;
    for (int y = 0; y < 48 && all; ++y) {
      for (int x = 0; x < 64 && all; ++x) {
        if (screen[static_cast<size_t>(y) * 64 + static_cast<size_t>(x)] !=
            rig.pattern.PixelAt(frame, x, y)) {
          all = false;
        }
      }
    }
    matched = all;
  }
  EXPECT_TRUE(matched) << "screen does not equal any recent camera frame";
}

TEST(VideoRigTest, FractionalFrameRateGivesRequestedAverage) {
  // "For example, 2/5 gives an average of 10 frames per second."
  VideoRig rig(BasicCapture(1, 2, 5, 2));
  rig.Start();
  rig.sched.RunFor(Seconds(2));
  EXPECT_NEAR(static_cast<double>(rig.capture.frames_captured()) / 2.0, 10.0, 1.0);
  EXPECT_NEAR(rig.display.MeasuredFps(1, Seconds(2)), 10.0, 1.0);
}

TEST(VideoRigTest, FrameRateCommandChangesRateMidStream) {
  VideoRig rig(BasicCapture(1, 1, 1, 2));
  rig.Start();
  auto commander = [](Scheduler* s, CommandChannel* cmd) -> Process {
    co_await s->WaitUntil(Seconds(1));
    co_await cmd->Send(Command{CommandVerb::kSetFrameRate, 1, 1, 5});  // -> 5 fps
  };
  rig.sched.Spawn(commander(&rig.sched, &rig.capture.commands()), "commander");
  rig.sched.RunFor(Seconds(1));
  uint64_t first_second = rig.capture.frames_captured();
  rig.sched.RunFor(Seconds(1));
  uint64_t second_second = rig.capture.frames_captured() - first_second;
  EXPECT_GE(first_second, 23u);
  EXPECT_NEAR(static_cast<double>(second_second), 5.0, 1.0);
}

TEST(VideoRigTest, LostSegmentDropsWholeFrameNeverPartial) {
  // Principle of 3.6: no partial frames.  Drop one mid-frame segment; that
  // frame must vanish entirely and later frames recover.
  Scheduler sched;
  MovingBarPattern pattern(64);
  FrameStore store(&sched, &pattern, 64, 48);
  BufferPool pool(&sched, "pool", 64);
  Channel<SegmentRef> from_capture(&sched, "cap.out");
  Channel<SegmentRef> to_display(&sched, "disp.in");
  VideoCapture capture(&sched, BasicCapture(1, 1, 1, 4), &store, &pool, &from_capture);
  ReportCollector reports;
  VideoDisplay display(&sched, {.name = "disp", .width = 64, .height = 48}, &to_display,
                       &reports);
  ShutdownGuard guard(&sched);

  auto lossy = [](Channel<SegmentRef>* in, Channel<SegmentRef>* out) -> Process {
    uint64_t n = 0;
    for (;;) {
      SegmentRef ref = co_await in->Receive();
      if (++n % 13 == 0) {
        continue;  // drop
      }
      co_await out->Send(std::move(ref));
    }
  };
  capture.Start();
  display.Start();
  sched.Spawn(lossy(&from_capture, &to_display), "lossy");
  sched.RunFor(Seconds(2));

  EXPECT_GT(display.frames_dropped_incomplete() + display.undecodable_segments(), 0u);
  EXPECT_GT(display.frames_displayed(), 20u);  // most frames still shown
  // Complete-frame accounting: displayed + dropped ≈ captured.
  EXPECT_LE(display.frames_displayed(), capture.frames_captured());
}

TEST(VideoRigTest, InterleavedStreamsReloadTheLineCache) {
  Scheduler sched;
  MovingBarPattern pattern(64);
  FrameStore store(&sched, &pattern, 64, 48);
  BufferPool pool(&sched, "pool", 128);
  Channel<SegmentRef> wire(&sched, "wire");
  VideoCapture cap1(&sched, BasicCapture(1, 1, 1, 4), &store, &pool, &wire);
  VideoCapture cap2(&sched, BasicCapture(2, 1, 1, 4), &store, &pool, &wire);
  VideoDisplay display(&sched, {.name = "disp", .width = 64, .height = 48}, &wire);
  ShutdownGuard guard(&sched);
  cap1.Start();
  cap2.Start();
  display.Start();
  sched.RunFor(Seconds(1));
  // Both streams display, and the interleaving forced cache reloads far in
  // excess of the two first-use reloads.
  EXPECT_GT(display.MeasuredFps(1, Seconds(1)), 20.0);
  EXPECT_GT(display.MeasuredFps(2, Seconds(1)), 20.0);
  EXPECT_GT(display.cache_reloads(), 40u);
  EXPECT_EQ(display.undecodable_segments(), 0u);
}

TEST(VideoRigTest, ScanUnawareCopyTears) {
  // Slow the slice transport so complete frames arrive mid-scan: the blit
  // then lands while the display controller is sweeping the region.
  VideoCaptureOptions slow = BasicCapture(1, 1, 1, 2);
  slow.per_line_cost = Micros(100);

  VideoRig aware(slow, /*scan_aware=*/true);
  aware.Start();
  aware.sched.RunFor(Seconds(1));
  EXPECT_EQ(aware.display.tears(), 0u);
  EXPECT_GT(aware.display.frames_displayed(), 20u);

  VideoRig naive(slow, /*scan_aware=*/false);
  naive.Start();
  naive.sched.RunFor(Seconds(1));
  EXPECT_GT(naive.display.tears(), 0u);
}

}  // namespace
}  // namespace pandora
