// Tests for the ATM network simulation: circuits, VCI relabelling, FIFO
// delivery under jitter, loss, multi-hop paths and the non-interleaving
// interface (paper sections 1.1, 4.2).
#include <vector>

#include <gtest/gtest.h>

#include "src/buffer/pool.h"
#include "src/net/atm.h"
#include "src/runtime/scheduler.h"
#include "src/segment/segment.h"
#include "src/segment/wire.h"

namespace pandora {
namespace {

SegmentRef MakeAudioRef(BufferPool* pool, StreamId stream, uint32_t seq, size_t bytes = 32) {
  auto ref = pool->TryAllocate();
  EXPECT_TRUE(ref.has_value());
  **ref = MakeAudioSegment(stream, seq, 0, std::vector<uint8_t>(bytes, 7));
  return std::move(*ref);
}

struct NetRig {
  explicit NetRig(uint64_t seed = 1) : pool(&sched, "pool", 256), net(&sched, seed) {
    a = net.AddPort("a");
    b = net.AddPort("b");
  }

  Scheduler sched;
  BufferPool pool;
  AtmNetwork net;
  AtmPort* a;
  AtmPort* b;
  ShutdownGuard guard{&sched};
};

// Encodes `ref` into `port`'s wire pool and hands the wire image to the
// interface — the source-side half of the wire path, done by hand so this
// file stays at the net layer (the server-layer helper is SendEncodedSegment).
Task<void> SendOneEncoded(AtmPort* port, SegmentRef ref, Vci vci) {
  WireRef wire = co_await port->wire_pool().Allocate();
  EncodeSegmentInto(*ref, StreamField::kOmitted, &wire->bytes);
  ref.Reset();
  // Built in a named local: GCC 12 mishandles move-only aggregate
  // temporaries inside co_await argument expressions (see channel.h).
  NetTx tx;
  tx.vci = vci;
  tx.wire = std::move(wire);
  co_await port->tx().Send(std::move(tx));
}

Process SendSegments(Scheduler* sched, BufferPool* pool, AtmPort* port, Vci vci, int count,
                     Duration spacing, size_t bytes = 32) {
  for (int i = 0; i < count; ++i) {
    co_await SendOneEncoded(port, MakeAudioRef(pool, 99, static_cast<uint32_t>(i), bytes), vci);
    co_await sched->WaitFor(spacing);
  }
}

Process CollectSegments(AtmPort* port, std::vector<Segment>* out) {
  for (;;) {
    NetRx in = co_await port->rx().Receive();
    DecodeResult decoded = DecodeSegment(in.wire->bytes, StreamField::kOmitted, in.vci);
    EXPECT_TRUE(decoded.ok) << decoded.error;
    out->push_back(std::move(decoded.segment));
  }
}

TEST(AtmTest, DeliversWithVciRelabelling) {
  NetRig rig;
  rig.net.OpenCircuit(rig.a, /*vci=*/42, rig.b);
  std::vector<Segment> got;
  rig.sched.Spawn(SendSegments(&rig.sched, &rig.pool, rig.a, 42, 5, Millis(4)), "tx");
  rig.sched.Spawn(CollectSegments(rig.b, &got), "rx");
  rig.sched.RunFor(Millis(100));
  ASSERT_EQ(got.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(got[i].stream, 42u);  // the VCI is the destination stream id
    EXPECT_EQ(got[i].header.sequence, i);
  }
  EXPECT_EQ(rig.pool.free_count(), 256u);     // source buffers recycled at encode
  EXPECT_EQ(rig.a->wire_pool().free_count(), 256u);  // wire buffers recycled at decode
}

TEST(AtmTest, UnroutedVciIsDiscarded) {
  NetRig rig;
  std::vector<Segment> got;
  rig.sched.Spawn(SendSegments(&rig.sched, &rig.pool, rig.a, 7, 3, Millis(1)), "tx");
  rig.sched.Spawn(CollectSegments(rig.b, &got), "rx");
  rig.sched.RunFor(Millis(50));
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(rig.a->unrouted(), 3u);
}

TEST(AtmTest, JitterNeverReordersACircuit) {
  NetRig rig(1234);
  HopQuality direct;
  direct.jitter_max = Millis(20);  // huge vs the 2ms spacing
  rig.net.OpenCircuit(rig.a, 42, rig.b, {}, direct);
  std::vector<Segment> got;
  rig.sched.Spawn(SendSegments(&rig.sched, &rig.pool, rig.a, 42, 100, Millis(2)), "tx");
  rig.sched.Spawn(CollectSegments(rig.b, &got), "rx");
  rig.sched.RunFor(Seconds(2));
  ASSERT_EQ(got.size(), 100u);
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(got[i].header.sequence, i);
  }
  const CircuitStats* stats = rig.net.StatsFor(rig.a, 42);
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->latency.max() - stats->latency.min(), 5000.0);  // jitter happened
}

TEST(AtmTest, LossRateApproximatelyHonoured) {
  NetRig rig(7);
  HopQuality direct;
  direct.loss_rate = 0.2;
  rig.net.OpenCircuit(rig.a, 42, rig.b, {}, direct);
  std::vector<Segment> got;
  rig.sched.Spawn(SendSegments(&rig.sched, &rig.pool, rig.a, 42, 1000, Millis(1)), "tx");
  rig.sched.Spawn(CollectSegments(rig.b, &got), "rx");
  rig.sched.RunFor(Seconds(2));
  const CircuitStats* stats = rig.net.StatsFor(rig.a, 42);
  EXPECT_NEAR(static_cast<double>(stats->lost) / 1000.0, 0.2, 0.05);
  EXPECT_EQ(stats->delivered + stats->lost, 1000u);
}

TEST(AtmTest, ReopenedCircuitDoesNotReceiveOldIncarnationTraffic) {
  NetRig rig;
  HopQuality direct;
  direct.propagation = Millis(10);
  rig.net.OpenCircuit(rig.a, 42, rig.b, {}, direct);
  std::vector<Segment> got;
  rig.sched.Spawn(SendSegments(&rig.sched, &rig.pool, rig.a, 42, 1, Millis(1)), "tx");
  rig.sched.Spawn(CollectSegments(rig.b, &got), "rx");

  // Close and re-open under the same (port, VCI) key while the segment is
  // in flight — exactly what a box crash + restart does to a call's
  // circuit.  The old-incarnation segment must not be delivered into the
  // new call or touch its zeroed FIFO clamps (ABA on the key).
  rig.sched.RunFor(Millis(5));
  rig.net.CloseCircuit(rig.a, 42);
  rig.net.OpenCircuit(rig.a, 42, rig.b, {}, direct);
  rig.sched.RunFor(Millis(50));

  EXPECT_TRUE(got.empty());
  EXPECT_EQ(rig.net.total_lost(), 1u);
  const CircuitStats* stats = rig.net.StatsFor(rig.a, 42);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->offered, 0u);  // the new incarnation's stats stay fresh
  EXPECT_EQ(stats->delivered, 0u);
}

TEST(AtmTest, MultiHopPathAccumulatesLatency) {
  NetRig rig;
  HopQuality hop_quality;
  hop_quality.propagation = Millis(1);
  NetHop* h1 = rig.net.AddHop("bridge1", hop_quality);
  NetHop* h2 = rig.net.AddHop("bridge2", hop_quality);
  NetHop* h3 = rig.net.AddHop("bridge3", hop_quality);
  rig.net.OpenCircuit(rig.a, 42, rig.b, {h1, h2, h3});
  std::vector<Segment> got;
  rig.sched.Spawn(SendSegments(&rig.sched, &rig.pool, rig.a, 42, 10, Millis(4)), "tx");
  rig.sched.Spawn(CollectSegments(rig.b, &got), "rx");
  rig.sched.RunFor(Millis(200));
  ASSERT_EQ(got.size(), 10u);
  const CircuitStats* stats = rig.net.StatsFor(rig.a, 42);
  EXPECT_GT(stats->latency.Mean(), 3000.0);  // 3 x 1ms propagation + transmission
}

TEST(AtmTest, SharedHopContentionDelaysOtherCircuit) {
  // Two circuits share one slow bridge: heavy traffic on circuit 1 delays
  // circuit 2 (store-and-forward queueing).
  Scheduler sched;
  BufferPool pool(&sched, "pool", 512);
  AtmNetwork net(&sched);
  AtmPort* a = net.AddPort("a", 100'000'000);
  AtmPort* b = net.AddPort("b", 100'000'000);
  AtmPort* c = net.AddPort("c", 100'000'000);
  HopQuality slow;
  slow.bits_per_second = 2'000'000;  // 2 Mbit/s bottleneck
  NetHop* bridge = net.AddHop("bridge", slow);
  net.OpenCircuit(a, 42, b, {bridge});
  net.OpenCircuit(c, 43, b, {bridge});
  ShutdownGuard guard(&sched);

  std::vector<Segment> got;
  // 8KB bursts every 10ms from a (32ms serialization each at 2Mbit/s).
  sched.Spawn(SendSegments(&sched, &pool, a, 42, 20, Millis(10), 8000), "bulk");
  sched.Spawn(SendSegments(&sched, &pool, c, 43, 20, Millis(10), 32), "small");
  sched.Spawn(CollectSegments(b, &got), "rx");
  sched.RunFor(Seconds(2));
  const CircuitStats* small = net.StatsFor(c, 43);
  ASSERT_NE(small, nullptr);
  // The small circuit's latency is dominated by waiting behind bulk
  // transfers on the shared hop.
  EXPECT_GT(small->latency.max(), 20000.0);
}

TEST(AtmTest, NonInterleavedInterfaceDelaysAudioBehindVideo) {
  // E7 at port level: a 50KB video segment occupies the 20Mbit/s interface
  // for 20ms; audio queued behind it inherits that as jitter.
  NetRig rig;
  rig.net.OpenCircuit(rig.a, 42, rig.b);
  rig.net.OpenCircuit(rig.a, 43, rig.b);
  std::vector<Segment> got;
  rig.sched.Spawn(CollectSegments(rig.b, &got), "rx");

  auto mixed_tx = [](Scheduler* s, BufferPool* pool, AtmPort* a) -> Process {
    // Send the video first, then immediately the audio.
    co_await SendOneEncoded(a, MakeAudioRef(pool, 1, 0, 50'000), 43);
    co_await SendOneEncoded(a, MakeAudioRef(pool, 2, 0, 32), 42);
    (void)s;
  };
  rig.sched.Spawn(mixed_tx(&rig.sched, &rig.pool, rig.a), "tx");
  rig.sched.RunFor(Millis(100));
  const CircuitStats* audio_stats = rig.net.StatsFor(rig.a, 42);
  ASSERT_EQ(audio_stats->delivered, 1u);
  // Note: circuit latency starts after interface serialization; measure via
  // delivery time instead.
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1].stream, 42u);
  // The audio could not start serializing until the ~20ms video finished.
  EXPECT_GT(rig.a->egress().busy_time(), Millis(20));
}

}  // namespace
}  // namespace pandora
