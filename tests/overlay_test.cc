// Unit coverage for src/overlay/: topology generator determinism (golden
// hash), tree-builder invariants, the churn FaultPlan kind's text round
// trip, and the multicast data plane's basic delivery / leave-repair-rejoin
// cycle on small overlays.  The transitive P5/P6 properties over random
// topologies live in overlay_property_test.cc.
#include <string>

#include <gtest/gtest.h>

#include "src/fault/plan.h"
#include "src/overlay/churn.h"
#include "src/overlay/multicast.h"
#include "src/overlay/repair.h"
#include "src/overlay/topology.h"
#include "src/overlay/tree.h"

namespace pandora {
namespace {

TopologyParams SmallParams(uint64_t seed, int receivers) {
  TopologyParams params;
  params.seed = seed;
  params.receivers = receivers;
  return params;
}

TEST(OverlayTopology, SameSeedSameTopologyDifferentSeedDiffers) {
  const OverlayTopology a = GenerateTopology(SmallParams(42, 500));
  const OverlayTopology b = GenerateTopology(SmallParams(42, 500));
  const OverlayTopology c = GenerateTopology(SmallParams(43, 500));
  ASSERT_EQ(a.links.size(), b.links.size());
  for (size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links[i].bits_per_second, b.links[i].bits_per_second);
    EXPECT_EQ(a.links[i].latency, b.links[i].latency);
  }
  EXPECT_EQ(TopologyHash(a), TopologyHash(b));
  EXPECT_NE(TopologyHash(a), TopologyHash(c));
}

TEST(OverlayTopology, GoldenHashPinned) {
  // Pins the generator's exact output: any change to the draw order, tier
  // table or hash folding shows up here before it silently invalidates
  // every checked-in BENCH_overlay.json trajectory.
  const OverlayTopology topology = GenerateTopology(SmallParams(1993, 1000));
  // Recompute by hand only when the generator contract deliberately changes.
  EXPECT_EQ(TopologyHash(topology), UINT64_C(0xffb8f9e0fbed8ac3));
}

TEST(OverlayTree, BuildInvariantsAcrossStripesAndPolicies) {
  const OverlayTopology topology = GenerateTopology(SmallParams(7, 300));
  for (int k : {1, 2, 3}) {
    for (TreePolicy policy : {TreePolicy::kBalancedFanout, TreePolicy::kNearOptimalDelay}) {
      StripedTrees trees = TreeBuilder::Build(topology, k, policy);
      EXPECT_TRUE(SpansAll(trees));
      EXPECT_TRUE(InteriorDisjoint(trees));
      EXPECT_TRUE(RespectsFanout(trees));
      EXPECT_TRUE(IsAcyclic(trees));
    }
  }
}

TEST(OverlayTree, NearOptimalDelayNeverWorseThanBalanced) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const OverlayTopology topology = GenerateTopology(SmallParams(seed, 400));
    for (int k : {1, 2}) {
      const StripedTrees balanced = TreeBuilder::Build(topology, k, TreePolicy::kBalancedFanout);
      const StripedTrees optimal = TreeBuilder::Build(topology, k, TreePolicy::kNearOptimalDelay);
      EXPECT_LE(ComputeDelayStats(topology, optimal).mean_us,
                ComputeDelayStats(topology, balanced).mean_us + 1e-9)
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(OverlayChurnPlan, TextRoundTripIsExact) {
  ChurnStormOptions storm;
  storm.receiver_count = 200;
  storm.protected_receivers = {0, 17};
  storm.permanent_fraction = 0.25;
  const FaultPlan plan = RandomChurnPlan(99, storm);
  ASSERT_GE(plan.events.size(), static_cast<size_t>(storm.min_events));
  for (const FaultEvent& event : plan.events) {
    EXPECT_EQ(event.kind, FaultKind::kChurn);
    EXPECT_NE(event.target, 0);
    EXPECT_NE(event.target, 17);
  }

  const std::string text = FormatFaultPlan(plan);
  EXPECT_NE(text.find("churn recv="), std::string::npos);
  FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan(text, &parsed, &error)) << error;
  EXPECT_EQ(FormatFaultPlan(parsed), text);
  ASSERT_EQ(parsed.events.size(), plan.events.size());
  for (size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i].at, plan.events[i].at);
    EXPECT_EQ(parsed.events[i].kind, plan.events[i].kind);
    EXPECT_EQ(parsed.events[i].target, plan.events[i].target);
    EXPECT_EQ(parsed.events[i].duration, plan.events[i].duration);
  }
}

TEST(OverlayChurnPlan, HandWrittenClauseParses) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("seed=5; @2s churn recv=117 for=400ms", &plan, &error)) << error;
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kChurn);
  EXPECT_EQ(TargetOf(plan.events[0].kind), FaultTarget::kReceiver);
  EXPECT_EQ(plan.events[0].target, 117);
  EXPECT_EQ(plan.events[0].at, Seconds(2));
  EXPECT_EQ(plan.events[0].duration, Millis(400));
}

TEST(OverlayMulticast, LosslessOverlayDeliversEverySegmentToEveryone) {
  const OverlayTopology topology = GenerateTopology(SmallParams(11, 120));
  StripedTrees trees = TreeBuilder::Build(topology, 2, TreePolicy::kBalancedFanout);
  Scheduler sched;
  OverlayMulticast multicast(&sched, &topology, &trees, MulticastParams{}, 1);
  multicast.Start(Millis(400));
  sched.RunUntilQuiescent();

  ASSERT_GT(multicast.emitted(), 0);
  for (int r = 0; r < topology.receiver_count(); ++r) {
    EXPECT_EQ(multicast.stats(r).delivered, multicast.emitted()) << "r=" << r;
    EXPECT_EQ(multicast.stats(r).dropped_queue, 0) << "r=" << r;
    EXPECT_EQ(multicast.stats(r).dropped_loss, 0) << "r=" << r;
  }
  // Everyone present from the start gets exactly one join-latency sample.
  EXPECT_EQ(multicast.join_latencies().size(), static_cast<size_t>(topology.receiver_count()));
}

TEST(OverlayMulticast, LeaveRepairsAndRejoinMeasuresJoinLatency) {
  const OverlayTopology topology = GenerateTopology(SmallParams(13, 150));
  StripedTrees trees = TreeBuilder::Build(topology, 2, TreePolicy::kBalancedFanout);
  Scheduler sched;
  OverlayMulticast multicast(&sched, &topology, &trees, MulticastParams{}, 1);
  // The first root child of tree 0 relays the largest subtree.
  const int leaver = trees.root_children[0][0];
  ASSERT_FALSE(trees.children[0][static_cast<size_t>(leaver)].empty());

  OverlayMulticast* mc = &multicast;
  multicast.Start(Millis(600));
  sched.AddTimer(Millis(200), TimerCallback([mc, leaver] { mc->Leave(leaver); }));
  sched.AddTimer(Millis(400), TimerCallback([mc, leaver] { mc->Join(leaver); }));
  sched.RunUntilQuiescent();

  // The subtree was re-parented (repair log has the leave repairs plus the
  // rejoin) and the final structure is sound again.
  EXPECT_GT(multicast.repairs(), 0);
  EXPECT_TRUE(SpansAll(trees));
  EXPECT_TRUE(InteriorDisjoint(trees));
  EXPECT_TRUE(RespectsFanout(trees));
  EXPECT_TRUE(IsAcyclic(trees));
  EXPECT_EQ(multicast.repair().overflow(), 0);
  // One extra join sample beyond the initial population: the rejoin.
  EXPECT_EQ(multicast.join_latencies().size(),
            static_cast<size_t>(topology.receiver_count()) + 1);
  // The leaver missed the segments emitted while it was away but is back to
  // receiving afterwards.
  EXPECT_LT(multicast.stats(leaver).delivered, multicast.emitted());
  EXPECT_GT(multicast.stats(leaver).last_delivery, Millis(400));
}

TEST(OverlayChurnDriver, AppliesPlanAndSkipsDoubleDepartures) {
  const OverlayTopology topology = GenerateTopology(SmallParams(17, 100));
  StripedTrees trees = TreeBuilder::Build(topology, 2, TreePolicy::kBalancedFanout);
  Scheduler sched;
  OverlayMulticast multicast(&sched, &topology, &trees, MulticastParams{}, 1);

  FaultPlan plan;
  std::string error;
  // Receiver 5 departs twice while away (second is a skip), rejoins once.
  ASSERT_TRUE(ParseFaultPlan("seed=1; @100ms churn recv=5 for=300ms;"
                             " @200ms churn recv=5 for=50ms; @150ms churn recv=9",
                             &plan, &error))
      << error;
  OverlayChurnDriver churn(&sched, &multicast, plan);
  multicast.Start(Millis(600));
  churn.Start();
  sched.RunUntilQuiescent();

  EXPECT_EQ(churn.departures(), 3);
  EXPECT_EQ(churn.rejoins(), 2);
  EXPECT_EQ(churn.ignored(), 0);
  // One departure and one rejoin were no-ops (5 already absent; then its
  // first rejoin fires at 400ms, the second at 250ms finds it still absent
  // ... exactly one of the two rejoins lands, the other is skipped).
  EXPECT_GT(multicast.churn_skipped(), 0);
  // Receiver 9 never rejoins (duration 0: gone for good).
  EXPECT_TRUE(trees.absent(9));
  EXPECT_FALSE(trees.absent(5));
  EXPECT_TRUE(IsAcyclic(trees));
  EXPECT_TRUE(InteriorDisjoint(trees));
}

TEST(OverlayFaultDriverSplit, SimulationDriverSkipsReceiverEvents) {
  // The Simulation-level FaultDriver has no receiver registry; a mixed plan
  // replayed there must count churn events as skipped, not crash.  Checked
  // here via TargetOf only (the Simulation-level behavior is covered in
  // fault_test.cc); the overlay driver mirrors it for non-churn kinds.
  EXPECT_EQ(TargetOf(FaultKind::kChurn), FaultTarget::kReceiver);
  EXPECT_EQ(TargetOf(FaultKind::kBoxCrash), FaultTarget::kBox);
  EXPECT_EQ(TargetOf(FaultKind::kBurstLoss), FaultTarget::kCall);
}

}  // namespace
}  // namespace pandora
