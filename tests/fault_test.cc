// Fault-injection subsystem: plan round-trips, driver apply/restore
// semantics, box crash/restart integrity (no leaks, stream tables scrubbed,
// live calls undisturbed) and deterministic chaos replay.
#include <cstdlib>

#include <gtest/gtest.h>

#include "src/core/box.h"
#include "src/core/simulation.h"
#include "src/fault/driver.h"
#include "src/fault/plan.h"
#include "src/segment/segment.h"
#include "src/server/switch.h"

namespace pandora {
namespace {

PandoraBox::Options BoxOptions(const std::string& name, bool with_video = false) {
  PandoraBox::Options options;
  options.name = name;
  options.with_video = with_video;
  return options;
}

// --- FaultPlan text format and random generation ----------------------------

TEST(FaultPlanTest, KindNamesRoundTrip) {
  for (FaultKind kind : {FaultKind::kCircuitDown, FaultKind::kBandwidthCollapse,
                         FaultKind::kBurstLoss, FaultKind::kJitterStorm, FaultKind::kBoxCrash,
                         FaultKind::kClockStep, FaultKind::kPoolPressure}) {
    FaultKind parsed;
    ASSERT_TRUE(ParseFaultKind(FormatFaultKind(kind), &parsed)) << FormatFaultKind(kind);
    EXPECT_EQ(parsed, kind);
  }
}

TEST(FaultPlanTest, FormatParseRoundTripsRandomPlans) {
  RandomPlanOptions options;
  options.call_count = 4;
  options.box_count = 3;
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    FaultPlan plan = RandomFaultPlan(seed, options);
    ASSERT_FALSE(plan.events.empty());
    FaultPlan reparsed;
    std::string error;
    ASSERT_TRUE(ParseFaultPlan(FormatFaultPlan(plan), &reparsed, &error)) << error;
    ASSERT_EQ(reparsed.seed, plan.seed);
    ASSERT_EQ(reparsed.events.size(), plan.events.size());
    for (size_t i = 0; i < plan.events.size(); ++i) {
      EXPECT_EQ(reparsed.events[i].at, plan.events[i].at);
      EXPECT_EQ(reparsed.events[i].kind, plan.events[i].kind);
      EXPECT_EQ(reparsed.events[i].target, plan.events[i].target);
      EXPECT_EQ(reparsed.events[i].value, plan.events[i].value);  // %.17g is exact
      EXPECT_EQ(reparsed.events[i].duration, plan.events[i].duration);
    }
  }
}

TEST(FaultPlanTest, ParseAcceptsHandWrittenPlans) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan(
      "seed=7; @1500ms burst-loss call=1 value=0.25 for=300ms; @2s crash box=0 for=1s", &plan,
      &error))
      << error;
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].at, Millis(1500));
  EXPECT_EQ(plan.events[0].kind, FaultKind::kBurstLoss);
  EXPECT_EQ(plan.events[0].target, 1);
  EXPECT_DOUBLE_EQ(plan.events[0].value, 0.25);
  EXPECT_EQ(plan.events[0].duration, Millis(300));
  EXPECT_EQ(plan.events[1].kind, FaultKind::kBoxCrash);
  EXPECT_EQ(plan.events[1].duration, Seconds(1));
}

TEST(FaultPlanTest, ParseRejectsMalformedInput) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(ParseFaultPlan("@1s wibble call=0", &plan, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseFaultPlan("crash box=0", &plan, &error));  // missing @time
  EXPECT_FALSE(ParseFaultPlan("@1s crash", &plan, &error));    // missing target
  EXPECT_FALSE(ParseFaultPlan("@zz crash box=0", &plan, &error));
}

TEST(FaultPlanTest, RandomPlansAreDeterministicAndConstrained) {
  RandomPlanOptions options;
  options.call_count = 5;
  options.box_count = 4;
  options.protected_calls = {2};
  options.protected_boxes = {0, 3};
  options.allow_clock_step = false;
  options.start = Seconds(1);
  options.horizon = Seconds(3);
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    FaultPlan a = RandomFaultPlan(seed, options);
    FaultPlan b = RandomFaultPlan(seed, options);
    ASSERT_EQ(FormatFaultPlan(a), FormatFaultPlan(b));
    for (const FaultEvent& event : a.events) {
      EXPECT_GE(event.at, options.start);
      EXPECT_LT(event.at, options.horizon);
      EXPECT_GT(event.duration, 0);
      EXPECT_NE(event.kind, FaultKind::kClockStep);
      if (TargetOf(event.kind) == FaultTarget::kCall) {
        EXPECT_NE(event.target, 2);
      } else {
        EXPECT_NE(event.target, 0);
        EXPECT_NE(event.target, 3);
      }
    }
  }
}

TEST(FaultPlanTest, EnvVarOverride) {
  FaultPlan plan;
  unsetenv("PANDORA_FAULT_PLAN");
  EXPECT_FALSE(FaultPlanFromEnv(&plan));
  setenv("PANDORA_FAULT_PLAN", "seed=3; @1s circuit-down call=0 for=200ms", 1);
  ASSERT_TRUE(FaultPlanFromEnv(&plan));
  EXPECT_EQ(plan.seed, 3u);
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kCircuitDown);
  unsetenv("PANDORA_FAULT_PLAN");
}

// --- FaultDriver semantics --------------------------------------------------

TEST(FaultDriverTest, CircuitEpisodeRestoresPriorQuality) {
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a"));
  PandoraBox& b = sim.AddBox(BoxOptions("b"));
  sim.Start();
  StreamId at_b = sim.SendAudio(a, b);

  FaultPlan plan;
  ASSERT_TRUE(ParseFaultPlan("@1s burst-loss call=0 value=0.5 for=400ms;"
                             "@2s jitter-storm call=0 value=15000 for=300ms",
                             &plan));
  FaultDriver driver(&sim, plan);
  driver.Start();
  sim.RunFor(Seconds(4));

  EXPECT_TRUE(driver.quiescent());
  EXPECT_EQ(driver.applied(), 2u);
  EXPECT_EQ(driver.restored(), 2u);
  EXPECT_EQ(driver.skipped(), 0u);
  const HopQuality* quality = sim.network().CircuitQuality(a.port(), at_b);
  ASSERT_NE(quality, nullptr);
  EXPECT_EQ(quality->loss_rate, 0.0);
  EXPECT_EQ(quality->jitter_max, 0);

  // The burst episode lost roughly half of 400ms of 4ms segments (~50 of
  // 100); outside the episodes the stream was clean.
  const SequenceTracker* tracker = b.audio_receiver().TrackerFor(at_b);
  ASSERT_NE(tracker, nullptr);
  EXPECT_GT(tracker->missing_total(), 20u);
  EXPECT_LT(tracker->missing_total(), 90u);
  EXPECT_GT(tracker->received(), 800u);
}

TEST(FaultDriverTest, OverlappingEpisodesRestoreThePreStormState) {
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a"));
  PandoraBox& b = sim.AddBox(BoxOptions("b"));
  sim.Start();
  StreamId at_b = sim.SendAudio(a, b);

  // Jitter episode B starts inside episode A and outlives A's restore; a
  // burst-loss episode overlaps both.  A's restore must not truncate B, and
  // B's restore must put back the PRE-storm state, not A's impairment
  // (which is what a restore-time snapshot of "current" would capture).
  FaultPlan plan;
  ASSERT_TRUE(ParseFaultPlan("@1s jitter-storm call=0 value=20000 for=600ms;"
                             "@1200ms jitter-storm call=0 value=30000 for=1s;"
                             "@1300ms burst-loss call=0 value=0.4 for=400ms",
                             &plan));
  FaultDriver driver(&sim, plan);
  driver.Start();

  // 1.9s: A (1.6s) and the burst episode (1.7s) have nominally ended, B is
  // still active — the circuit must still carry B's jitter, with the burst
  // restore having put back only its own field.
  sim.RunFor(Millis(1900));
  const HopQuality* quality = sim.network().CircuitQuality(a.port(), at_b);
  ASSERT_NE(quality, nullptr);
  EXPECT_EQ(quality->jitter_max, 30000);
  EXPECT_EQ(quality->loss_rate, 0.0);

  sim.RunFor(Millis(2100));
  EXPECT_TRUE(driver.quiescent());
  EXPECT_EQ(driver.applied(), 3u);
  EXPECT_EQ(driver.restored(), 3u);
  quality = sim.network().CircuitQuality(a.port(), at_b);
  ASSERT_NE(quality, nullptr);
  EXPECT_EQ(quality->jitter_max, 0);
  EXPECT_EQ(quality->loss_rate, 0.0);
  EXPECT_EQ(quality->bits_per_second, HopQuality{}.bits_per_second);
}

TEST(FaultDriverTest, OverlappingCircuitDownStaysDownUntilTheLastEpisodeEnds) {
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a"));
  PandoraBox& b = sim.AddBox(BoxOptions("b"));
  sim.Start();
  StreamId at_b = sim.SendAudio(a, b);

  // Two overlapping outages covering 1.0s..1.8s: the first restore (1.4s)
  // must not bring the circuit up under the second episode.
  FaultPlan plan;
  ASSERT_TRUE(ParseFaultPlan("@1s circuit-down call=0 for=400ms;"
                             "@1200ms circuit-down call=0 for=600ms",
                             &plan));
  FaultDriver driver(&sim, plan);
  driver.Start();
  sim.RunFor(Seconds(3));

  EXPECT_TRUE(driver.quiescent());
  const SequenceTracker* tracker = b.audio_receiver().TrackerFor(at_b);
  ASSERT_NE(tracker, nullptr);
  // ~200 segments fall in the union of the outages (a truncated second
  // episode would lose only ~100); delivery resumes afterwards.
  EXPECT_GT(tracker->missing_total(), 160u);
  EXPECT_LT(tracker->missing_total(), 240u);
  EXPECT_GT(tracker->received(), 450u);
}

TEST(FaultDriverTest, BridgedCircuitQualityFaultsAreSkipped) {
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a"));
  PandoraBox& b = sim.AddBox(BoxOptions("b"));
  CallPath path;
  path.hops = {sim.network().AddHop("bridge", HopQuality{})};
  sim.Start();
  StreamId at_b = sim.SendAudio(a, b, path);

  // ForwardProc never consults the direct quality on a bridged circuit, so
  // a quality storm there must count as skipped, not silently applied.
  FaultPlan plan;
  ASSERT_TRUE(ParseFaultPlan("@1s burst-loss call=0 value=0.5 for=300ms", &plan));
  FaultDriver driver(&sim, plan);
  driver.Start();
  sim.RunFor(Seconds(2));

  EXPECT_TRUE(driver.quiescent());
  EXPECT_EQ(driver.applied(), 0u);
  EXPECT_EQ(driver.skipped(), 1u);
  EXPECT_EQ(driver.restored(), 0u);
  const SequenceTracker* tracker = b.audio_receiver().TrackerFor(at_b);
  ASSERT_NE(tracker, nullptr);
  EXPECT_EQ(tracker->missing_total(), 0u);
}

TEST(FaultDriverTest, ReceiverChurnClausesAreSkippedNotApplied) {
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a"));
  PandoraBox& b = sim.AddBox(BoxOptions("b"));
  sim.Start();
  StreamId at_b = sim.SendAudio(a, b);

  // Mixed plan: churn clauses target overlay receivers, which the
  // Simulation-level driver has no registry for.  They must count as
  // skipped — the call-level clause still applies and restores.
  FaultPlan plan;
  ASSERT_TRUE(ParseFaultPlan("@500ms churn recv=12 for=200ms;"
                             " @1s burst-loss call=0 value=0.25 for=200ms;"
                             " @900ms churn recv=31",
                             &plan));
  FaultDriver driver(&sim, plan);
  driver.Start();
  sim.RunFor(Seconds(2));

  EXPECT_TRUE(driver.quiescent());
  EXPECT_EQ(driver.applied(), 1u);
  EXPECT_EQ(driver.skipped(), 2u);
  EXPECT_EQ(driver.restored(), 1u);
  // The call is alive and streaming after the mixed storm.
  const SequenceTracker* tracker = b.audio_receiver().TrackerFor(at_b);
  ASSERT_NE(tracker, nullptr);
  EXPECT_GT(tracker->received(), 0u);
}

TEST(FaultDriverTest, CircuitDownLosesOnlyDuringEpisode) {
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a"));
  PandoraBox& b = sim.AddBox(BoxOptions("b"));
  sim.Start();
  StreamId at_b = sim.SendAudio(a, b);

  FaultPlan plan;
  ASSERT_TRUE(ParseFaultPlan("@1s circuit-down call=0 for=500ms", &plan));
  FaultDriver driver(&sim, plan);
  driver.Start();
  sim.RunFor(Seconds(3));

  EXPECT_TRUE(driver.quiescent());
  const SequenceTracker* tracker = b.audio_receiver().TrackerFor(at_b);
  ASSERT_NE(tracker, nullptr);
  // ~125 segments fall in the 500ms outage; delivery resumes afterwards.
  EXPECT_GT(tracker->missing_total(), 100u);
  EXPECT_LT(tracker->missing_total(), 150u);
  EXPECT_GT(tracker->received(), 550u);
}

TEST(FaultDriverTest, StaleTargetsAreSkippedNotFatal) {
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a"));
  PandoraBox& b = sim.AddBox(BoxOptions("b"));
  sim.Start();
  StreamId at_b = sim.SendAudio(a, b);

  // Call 7 and box 9 do not exist; call 0 is hung up before its fault fires.
  FaultPlan plan;
  ASSERT_TRUE(ParseFaultPlan("@1s burst-loss call=7 value=0.5 for=100ms;"
                             "@1s crash box=9 for=100ms;"
                             "@2s circuit-down call=0 for=100ms",
                             &plan));
  FaultDriver driver(&sim, plan);
  driver.Start();
  sim.RunFor(Millis(1500));
  sim.HangUpAudio(a, b, at_b);
  sim.RunFor(Millis(2000));

  EXPECT_TRUE(driver.quiescent());
  EXPECT_EQ(driver.applied(), 0u);
  EXPECT_EQ(driver.skipped(), 3u);
}

TEST(FaultDriverTest, PoolPressureEpisodeStarvesThenReleases) {
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a"));
  PandoraBox& b = sim.AddBox(BoxOptions("b"));
  sim.Start();
  StreamId at_b = sim.SendAudio(a, b);

  FaultPlan plan;
  // Seize nearly the whole sender-side pool for half a second.
  ASSERT_TRUE(ParseFaultPlan("@1s pool-pressure box=0 value=250 for=500ms", &plan));
  FaultDriver driver(&sim, plan);
  driver.Start();
  sim.RunFor(Millis(1200));
  EXPECT_GT(a.pool().pressure_held(), 200u);
  sim.RunFor(Millis(1800));
  EXPECT_TRUE(driver.quiescent());
  EXPECT_EQ(a.pool().pressure_held(), 0u);

  // Audio kept being delivered after the squeeze ended.
  const SequenceTracker* tracker = b.audio_receiver().TrackerFor(at_b);
  ASSERT_NE(tracker, nullptr);
  uint64_t received_after = tracker->received();
  EXPECT_GT(received_after, 500u);
}

TEST(FaultDriverTest, OverlappingPoolPressureReleasesOnlyAfterTheLastEpisode) {
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a"));
  PandoraBox& b = sim.AddBox(BoxOptions("b"));
  sim.Start();
  sim.SendAudio(a, b);

  FaultPlan plan;
  ASSERT_TRUE(ParseFaultPlan("@1s pool-pressure box=0 value=60 for=300ms;"
                             "@1100ms pool-pressure box=0 value=60 for=600ms",
                             &plan));
  FaultDriver driver(&sim, plan);
  driver.Start();

  // 1.5s: the first episode's restore has fired but the second is active —
  // the seized buffers must still be held, not released wholesale.
  sim.RunFor(Millis(1500));
  EXPECT_GT(a.pool().pressure_held(), 0u);
  sim.RunFor(Millis(1500));
  EXPECT_TRUE(driver.quiescent());
  EXPECT_EQ(a.pool().pressure_held(), 0u);
}

// --- Crash / restart --------------------------------------------------------

TEST(FaultCrashTest, DeadPeersRowsDropLiveCallsUndisturbed) {
  Simulation sim;
  PandoraBox& src = sim.AddBox(BoxOptions("src"));
  PandoraBox& b = sim.AddBox(BoxOptions("b"));
  PandoraBox& c = sim.AddBox(BoxOptions("c"));
  sim.Start();
  sim.SendAudio(src, b);
  StreamId at_c = sim.SplitAudioTo(src, src.mic_stream(), c);
  sim.RunFor(Seconds(1));

  const SequenceTracker* c_tracker = c.audio_receiver().TrackerFor(at_c);
  ASSERT_NE(c_tracker, nullptr);
  uint64_t c_before = c_tracker->received();

  sim.CrashBox(b);
  sim.RunFor(Seconds(1));

  // The source's table kept the mic stream but dropped the dead VCI.
  const StreamRoute* route = src.server_switch().table().Find(src.mic_stream());
  ASSERT_NE(route, nullptr);
  ASSERT_EQ(route->out_vcis.size(), 1u);
  EXPECT_EQ(route->out_vcis[0], at_c);

  // The good copy never lost a segment and kept flowing (principle 6).
  EXPECT_EQ(c_tracker->missing_total(), 0u);
  EXPECT_GT(c_tracker->received(), c_before + 200);
}

TEST(FaultCrashTest, ReceiverCrashAndRestartReplumbsSameStreamId) {
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a"));
  PandoraBox& b = sim.AddBox(BoxOptions("b"));
  sim.Start();
  StreamId at_b = sim.SendAudio(a, b);
  sim.RunFor(Seconds(1));

  sim.CrashBox(b);
  EXPECT_TRUE(b.crashed());
  EXPECT_EQ(b.crash_count(), 1u);
  sim.RunFor(Millis(300));

  sim.RestartBox(b);
  EXPECT_FALSE(b.crashed());
  sim.RunFor(Seconds(1));

  // Same stream id at the destination; the rebuilt receiver sees traffic.
  const SequenceTracker* tracker = b.audio_receiver().TrackerFor(at_b);
  ASSERT_NE(tracker, nullptr);
  EXPECT_GT(tracker->received(), 200u);
  EXPECT_GT(b.codec_out().played_blocks(), 400u);
}

TEST(FaultCrashTest, SenderCrashScrubsReceiverRouteThenRestartsClean) {
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a", /*with_video=*/true));
  PandoraBox& b = sim.AddBox(BoxOptions("b", /*with_video=*/true));
  sim.Start();
  StreamId audio_at_b = sim.SendAudio(a, b);
  StreamId video_at_b = sim.SendVideo(a, b, Rect{0, 0, 64, 48}, 1, 1, 4);
  sim.RunFor(Seconds(1));

  sim.CrashBox(a);
  // The receiver's table no longer routes the dead peer's streams.
  EXPECT_EQ(b.server_switch().table().Find(audio_at_b), nullptr);
  EXPECT_EQ(b.server_switch().table().Find(video_at_b), nullptr);
  sim.RunFor(Millis(500));

  uint64_t frames_before = b.display()->frames_displayed();
  sim.RestartBox(a);
  sim.RunFor(Seconds(2));

  // Restart re-plumbed both legs with the original ids: audio plays and the
  // re-added camera produces frames again.
  EXPECT_NE(b.server_switch().table().Find(audio_at_b), nullptr);
  EXPECT_NE(b.server_switch().table().Find(video_at_b), nullptr);
  const SequenceTracker* tracker = b.audio_receiver().TrackerFor(audio_at_b);
  ASSERT_NE(tracker, nullptr);
  EXPECT_GT(tracker->received(), 200u);
  EXPECT_GT(b.display()->frames_displayed(), frames_before + 20);
}

TEST(FaultCrashTest, CrashMidSegmentUnderLoadLeaksNothing) {
  // Both directions, video both ways, and a crash landed mid-run: every
  // segment parked in the dead box's channels, decoupling buffers, clawback
  // bank and network queues must drain back to its pool before the pool is
  // destroyed (ASan/LSan in the sanitized configuration proves the "leaks
  // nothing" half; the continued health of the survivor proves isolation).
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a", /*with_video=*/true));
  PandoraBox& b = sim.AddBox(BoxOptions("b", /*with_video=*/true));
  sim.Start();
  sim.SendAudio(a, b);
  sim.SendAudio(b, a);
  sim.SendVideo(a, b, Rect{0, 0, 64, 48}, 1, 1, 4);
  sim.SendVideo(b, a, Rect{0, 0, 64, 48}, 1, 1, 4);
  sim.RunFor(Millis(1234));  // deliberately not segment-aligned

  sim.CrashBox(b);
  sim.RunFor(Seconds(1));

  // The survivor's own audio pipeline is still healthy.
  EXPECT_FALSE(a.crashed());
  uint64_t played = a.codec_out().played_blocks();
  sim.RunFor(Seconds(1));
  EXPECT_GT(a.codec_out().played_blocks(), played);

  // Crash the survivor too: both pools must unwind cleanly at teardown.
  sim.CrashBox(a);
  sim.RunFor(Millis(200));
}

TEST(FaultCrashTest, RepeatedCrashRestartCyclesStayStable) {
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a"));
  PandoraBox& b = sim.AddBox(BoxOptions("b"));
  sim.Start();
  StreamId at_b = sim.SendAudio(a, b);
  StreamId at_a = sim.SendAudio(b, a);
  for (int cycle = 0; cycle < 3; ++cycle) {
    sim.RunFor(Millis(700));
    sim.CrashBox(b);
    sim.RunFor(Millis(300));
    sim.RestartBox(b);
  }
  sim.RunFor(Seconds(1));
  EXPECT_EQ(b.crash_count(), 3u);
  const SequenceTracker* tracker = b.audio_receiver().TrackerFor(at_b);
  ASSERT_NE(tracker, nullptr);
  EXPECT_GT(tracker->received(), 150u);
  ASSERT_NE(a.audio_receiver().TrackerFor(at_a), nullptr);
}

// --- Deterministic replay ---------------------------------------------------

struct ChaosOutcome {
  uint64_t delivered = 0;
  uint64_t lost = 0;
  uint64_t a_played = 0;
  uint64_t b_played = 0;
  uint64_t b_received = 0;
  size_t applied = 0;
  size_t skipped = 0;
  size_t restored = 0;
  Time quiescent_at = 0;

  bool operator==(const ChaosOutcome&) const = default;
};

ChaosOutcome RunChaosOnce(const FaultPlan& plan) {
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a", /*with_video=*/true));
  PandoraBox& b = sim.AddBox(BoxOptions("b", /*with_video=*/true));
  sim.Start();
  StreamId at_b = sim.SendAudio(a, b);
  sim.SendAudio(b, a);
  sim.SendVideo(a, b, Rect{0, 0, 64, 48}, 1, 1, 4);
  FaultDriver driver(&sim, plan);
  driver.Start();
  sim.RunFor(Seconds(5));

  ChaosOutcome outcome;
  outcome.delivered = sim.network().total_delivered();
  outcome.lost = sim.network().total_lost();
  outcome.a_played = a.crashed() ? 0 : a.codec_out().played_blocks();
  outcome.b_played = b.crashed() ? 0 : b.codec_out().played_blocks();
  const SequenceTracker* tracker =
      b.crashed() ? nullptr : b.audio_receiver().TrackerFor(at_b);
  outcome.b_received = tracker != nullptr ? tracker->received() : 0;
  outcome.applied = driver.applied();
  outcome.skipped = driver.skipped();
  outcome.restored = driver.restored();
  outcome.quiescent_at = driver.quiescent_at();
  return outcome;
}

TEST(FaultDriverTest, ChaosRunsReplayBitIdentically) {
  RandomPlanOptions options;
  options.call_count = 3;
  options.box_count = 2;
  options.start = Millis(800);
  options.horizon = Seconds(3);
  for (uint64_t seed : {11u, 47u, 90210u}) {
    FaultPlan plan = RandomFaultPlan(seed, options);
    ChaosOutcome first = RunChaosOnce(plan);
    ChaosOutcome second = RunChaosOnce(plan);
    EXPECT_EQ(first, second) << "seed " << seed << " plan: " << FormatFaultPlan(plan);
    EXPECT_GT(first.applied + first.skipped, 0u);
  }
}

// --- P1 shed accounting at a mixed-direction destination --------------------

TEST(FaultShedStatsTest, IncomingShedsBeforeOutgoingAtMixedDestination) {
  // Switch-level: one congested destination fed by an incoming and an
  // outgoing video stream.  The degrader must sacrifice the incoming one
  // first (P1); the per-destination shed stats make the ordering checkable
  // without parsing traces.
  Scheduler sched;
  BufferPool pool(&sched, "pool", 128);
  SwitchOptions sw_options;
  sw_options.name = "sw";
  Switch sw(&sched, sw_options);
  DecouplingBuffer out(&sched, {.name = "out", .capacity = 8, .use_ready_channel = true});
  ShutdownGuard guard(&sched);
  DestinationId dest = sw.AddDestination("out", &out);
  sw.OpenRoute(1, dest, /*incoming=*/true, /*audio=*/false);
  sw.OpenRoute(2, dest, /*incoming=*/false, /*audio=*/false);
  sw.Start();
  out.Start();

  auto feeder = [](Scheduler* s, BufferPool* p, Switch* sw) -> Process {
    VideoHeader vh;
    for (uint32_t i = 0; i < 2000; ++i) {
      for (StreamId stream : {StreamId{1}, StreamId{2}}) {
        auto ref = p->TryAllocate();
        if (ref.has_value()) {
          **ref = MakeVideoSegment(stream, i, s->now(), vh, std::vector<uint8_t>(64, 0));
          co_await sw->input().Send(std::move(*ref));
        }
      }
      co_await s->WaitFor(Millis(1));
    }
  };
  auto slow_drain = [](Scheduler* s, DecouplingBuffer* out) -> Process {
    for (;;) {
      (void)co_await out->output().Receive();
      co_await s->WaitFor(Millis(1));  // half the offered rate
    }
  };
  sched.Spawn(feeder(&sched, &pool, &sw), "feeder");
  sched.Spawn(slow_drain(&sched, &out), "drain");
  sched.RunFor(Seconds(3));

  const Switch::ShedStats& sheds = sw.shed_stats_for(dest);
  EXPECT_GT(sheds.incoming, 0u);
  ASSERT_NE(sheds.first_incoming, -1);
  if (sheds.outgoing > 0) {
    EXPECT_LE(sheds.first_incoming, sheds.first_outgoing);
    EXPECT_GE(sheds.incoming, sheds.outgoing);
  }
}

}  // namespace
}  // namespace pandora
