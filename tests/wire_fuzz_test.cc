// Fuzz-style robustness tests for the wire codec: random and mutated byte
// strings must never crash the decoder or produce an "ok" segment that
// violates its own header invariants.
#include <vector>

#include <gtest/gtest.h>

#include "src/runtime/random.h"
#include "src/segment/segment.h"
#include "src/segment/wire.h"

namespace pandora {
namespace {

void CheckDecodedInvariants(const std::vector<uint8_t>& bytes, StreamField stream_field,
                            StreamId vci_stream, const DecodeResult& result) {
  // PeekWireHeader never crashes either, and a successful full decode
  // implies a successful peek reporting the same common-header values (the
  // forwarding path relies on this: hops peek, only the destination
  // decodes).  The converse is NOT asserted — a peek cannot see
  // type-specific damage.
  WireHeaderPeek peek;
  const bool peeked = PeekWireHeader(bytes, stream_field, &peek, vci_stream);
  if (!result.ok) {
    return;
  }
  const Segment& segment = result.segment;
  ASSERT_TRUE(peeked);
  EXPECT_EQ(peek.stream, segment.stream);
  EXPECT_EQ(peek.sequence, segment.header.sequence);
  EXPECT_EQ(peek.type, segment.header.type);
  EXPECT_EQ(peek.length, segment.header.length);
  EXPECT_EQ(segment.header.version_id, kSegmentVersionId);
  EXPECT_EQ(segment.EncodedSize(), segment.header.length);
  if (segment.is_audio()) {
    EXPECT_EQ(segment.audio().data_length, segment.payload.size());
  } else if (segment.is_video()) {
    EXPECT_EQ(segment.video().data_length, segment.payload.size());
    EXPECT_LT(segment.video().segment_number, segment.video().segments_in_frame);
  }
}

TEST(WireFuzzTest, RandomBytesNeverCrashOrLie) {
  Rng rng(20260707);
  for (int iteration = 0; iteration < 5000; ++iteration) {
    size_t length = static_cast<size_t>(rng.UniformInt(0, 200));
    std::vector<uint8_t> bytes(length);
    for (uint8_t& byte : bytes) {
      byte = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    CheckDecodedInvariants(bytes, StreamField::kIncluded, kInvalidStream, DecodeSegment(bytes));
    CheckDecodedInvariants(bytes, StreamField::kOmitted, 9,
                           DecodeSegment(bytes, StreamField::kOmitted, 9));
  }
}

TEST(WireFuzzTest, SingleByteMutationsOfValidSegments) {
  Rng rng(7);
  Segment audio = MakeAudioSegment(3, 17, Millis(8), std::vector<uint8_t>(32, 0x5A));
  VideoHeader vh;
  vh.segments_in_frame = 2;
  vh.segment_number = 1;
  vh.x_width = 16;
  vh.line_count = 4;
  Segment video = MakeVideoSegment(4, 9, Millis(12), vh, std::vector<uint8_t>(64, 0x3C));
  video.compression_args = {1, 2, 3};
  video.header.length = static_cast<uint32_t>(video.EncodedSize());

  for (const Segment& original : {audio, video}) {
    std::vector<uint8_t> bytes = EncodeSegment(original);
    ASSERT_TRUE(DecodeSegment(bytes).ok);
    for (size_t position = 0; position < bytes.size(); ++position) {
      std::vector<uint8_t> mutated = bytes;
      mutated[position] ^= static_cast<uint8_t>(rng.UniformInt(1, 255));
      CheckDecodedInvariants(mutated, StreamField::kIncluded, kInvalidStream,
                             DecodeSegment(mutated));
    }
  }
}

TEST(WireFuzzTest, TruncationsAtEveryLength) {
  Segment audio = MakeAudioSegment(3, 17, Millis(8), std::vector<uint8_t>(48, 0x11));
  std::vector<uint8_t> bytes = EncodeSegment(audio);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + static_cast<ptrdiff_t>(cut));
    DecodeResult result = DecodeSegment(truncated);
    EXPECT_FALSE(result.ok) << "cut=" << cut;  // every strict prefix is invalid
  }
}

TEST(WireFuzzTest, ExtensionsAtEveryLength) {
  Segment audio = MakeAudioSegment(3, 17, Millis(8), std::vector<uint8_t>(16, 0x22));
  std::vector<uint8_t> bytes = EncodeSegment(audio);
  for (size_t extra = 1; extra <= 8; ++extra) {
    std::vector<uint8_t> extended = bytes;
    extended.insert(extended.end(), extra, 0xEE);
    EXPECT_FALSE(DecodeSegment(extended).ok) << "extra=" << extra;
  }
}

}  // namespace
}  // namespace pandora
