// Cross-module property sweeps: u-law codec algebra, muting tables and the
// muting state machine timing, sequence-number wrap behaviour, repack/unpack
// roundtrips for every live segment size, and single-rate clawback cadence.
#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/audio/muting.h"
#include "src/audio/ulaw.h"
#include "src/buffer/clawback.h"
#include "src/segment/audio_block.h"
#include "src/segment/constants.h"
#include "src/segment/repack.h"
#include "src/segment/segment.h"
#include "src/segment/sequence.h"

namespace pandora {
namespace {

// --- u-law codec algebra -----------------------------------------------------

TEST(ULawProperty, SilenceDecodesToZero) {
  EXPECT_EQ(ULawDecode(kULawSilence), 0);
  EXPECT_EQ(ULawDecode(ULawEncode(0)), 0);
}

TEST(ULawProperty, DecodeEncodeDecodeIsStable) {
  // Every codeword decodes to a value that re-encodes to a codeword with the
  // same decoded value (sign-of-zero codewords may alias).
  for (int b = 0; b < 256; ++b) {
    int16_t decoded = ULawDecode(static_cast<uint8_t>(b));
    EXPECT_EQ(ULawDecode(ULawEncode(decoded)), decoded) << "codeword " << b;
  }
}

TEST(ULawProperty, RoundTripErrorBoundedAndSignPreserved) {
  // Max u-law quantization step is 256 at the loudest segment; clipping can
  // add at most one further step at the very top of the range.
  int32_t max_error = 0;
  for (int32_t x = -32768; x <= 32767; x += 7) {
    int16_t linear = static_cast<int16_t>(x);
    int16_t back = ULawDecode(ULawEncode(linear));
    int32_t error = back > x ? back - x : x - back;
    if (error > max_error) {
      max_error = error;
    }
    if (x > 512) {
      EXPECT_GT(back, 0) << "x=" << x;
    }
    if (x < -512) {
      EXPECT_LT(back, 0) << "x=" << x;
    }
  }
  EXPECT_LE(max_error, 1024);
}

TEST(ULawProperty, RoundTripIsMonotone) {
  int16_t previous = ULawDecode(ULawEncode(static_cast<int16_t>(-32768)));
  for (int32_t x = -32768 + 16; x <= 32767; x += 16) {
    int16_t current = ULawDecode(ULawEncode(static_cast<int16_t>(x)));
    EXPECT_GE(current, previous) << "x=" << x;
    previous = current;
  }
}

// --- muting tables -----------------------------------------------------------

class MutingTableProperty : public ::testing::TestWithParam<double> {};

TEST_P(MutingTableProperty, ScalesMagnitudeByFactorWithinOneStep) {
  const double factor = GetParam();
  MutingTable table(factor);
  for (int b = 0; b < 256; ++b) {
    int32_t original = ULawDecode(static_cast<uint8_t>(b));
    int32_t scaled = ULawDecode(table.Apply(static_cast<uint8_t>(b)));
    double target = factor * static_cast<double>(original);
    EXPECT_LE(std::abs(static_cast<double>(scaled) - target), 520.0)
        << "codeword " << b << " factor " << factor;
    // Attenuation never amplifies beyond the original magnitude.
    EXPECT_LE(std::abs(scaled), std::abs(original) + 4) << "codeword " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, MutingTableProperty, ::testing::Values(0.2, 0.5, 0.8, 1.0));

TEST(MutingTableProperty, UnityFactorIsIdentityOnDecodedValues) {
  MutingTable table(1.0);
  for (int b = 0; b < 256; ++b) {
    EXPECT_EQ(ULawDecode(table.Apply(static_cast<uint8_t>(b))),
              ULawDecode(static_cast<uint8_t>(b)));
  }
}

// --- muting state machine timing ----------------------------------------------

AudioBlock LoudBlock() {
  AudioBlock block;
  block.samples.fill(ULawEncode(8000));
  return block;
}

class MutingTimingProperty
    : public ::testing::TestWithParam<std::tuple<Duration, Duration>> {};

TEST_P(MutingTimingProperty, FollowsTwoStageProfileExactly) {
  auto [deep_hold, release_hold] = GetParam();
  MutingConfig config;
  config.deep_hold = deep_hold;
  config.release_hold = release_hold;
  MutingControl muting(config);

  EXPECT_DOUBLE_EQ(muting.FactorAt(0), 1.0);
  muting.ObserveSpeakerBlock(0, LoudBlock());
  // Attack: one 2ms step at the half factor.
  EXPECT_DOUBLE_EQ(muting.FactorAt(0), config.half_factor);
  EXPECT_DOUBLE_EQ(muting.FactorAt(config.attack_step - 1), config.half_factor);
  // Deep until the speaker has been quiet for deep_hold.
  EXPECT_DOUBLE_EQ(muting.FactorAt(config.attack_step), config.deep_factor);
  EXPECT_DOUBLE_EQ(muting.FactorAt(deep_hold - 1), config.deep_factor);
  // Release: half factor for release_hold, then full volume.
  EXPECT_DOUBLE_EQ(muting.FactorAt(deep_hold), config.half_factor);
  EXPECT_DOUBLE_EQ(muting.FactorAt(deep_hold + release_hold - 1), config.half_factor);
  EXPECT_DOUBLE_EQ(muting.FactorAt(deep_hold + release_hold), 1.0);
  EXPECT_EQ(muting.activations(), 1u);
}

TEST_P(MutingTimingProperty, ReverberationDuringReleaseReentersDeep) {
  auto [deep_hold, release_hold] = GetParam();
  MutingConfig config;
  config.deep_hold = deep_hold;
  config.release_hold = release_hold;
  MutingControl muting(config);

  muting.ObserveSpeakerBlock(0, LoudBlock());
  // Mid-release the room gets loud again: straight back to the deep factor,
  // and the quiet clock restarts from the new loud time.
  Time reloud = deep_hold + release_hold / 2;
  muting.ObserveSpeakerBlock(reloud, LoudBlock());
  EXPECT_DOUBLE_EQ(muting.FactorAt(reloud), config.deep_factor);
  EXPECT_DOUBLE_EQ(muting.FactorAt(reloud + deep_hold - 1), config.deep_factor);
  EXPECT_DOUBLE_EQ(muting.FactorAt(reloud + deep_hold), config.half_factor);
  EXPECT_DOUBLE_EQ(muting.FactorAt(reloud + deep_hold + release_hold), 1.0);
  // Re-entering deep from release is not a fresh activation.
  EXPECT_EQ(muting.activations(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Holds, MutingTimingProperty,
                         ::testing::Values(std::make_tuple(Millis(10), Millis(10)),
                                           std::make_tuple(Millis(22), Millis(22)),
                                           std::make_tuple(Millis(40), Millis(20))));

TEST(MutingTimingProperty, DisabledControlIsTransparent) {
  MutingConfig config;
  config.enabled = false;
  MutingControl muting(config);
  muting.ObserveSpeakerBlock(0, LoudBlock());
  EXPECT_DOUBLE_EQ(muting.FactorAt(0), 1.0);
  AudioBlock block = LoudBlock();
  AudioBlock copy = block;
  muting.ApplyToMicBlock(0, &block);
  EXPECT_EQ(block.samples, copy.samples);
  EXPECT_EQ(muting.activations(), 0u);
}

// --- sequence numbers across the 2^32 wrap ------------------------------------

class SequenceWrapProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SequenceWrapProperty, InOrderRunSurvivesWrap) {
  const uint32_t start = GetParam();
  SequenceTracker tracker;
  EXPECT_EQ(tracker.Observe(start).outcome, SequenceTracker::Outcome::kFirst);
  for (uint32_t i = 1; i <= 10; ++i) {
    EXPECT_EQ(tracker.Observe(start + i).outcome, SequenceTracker::Outcome::kInOrder)
        << "offset " << i;
  }
  EXPECT_EQ(tracker.received(), 11u);
  EXPECT_EQ(tracker.missing_total(), 0u);
}

TEST_P(SequenceWrapProperty, GapCountedAcrossWrap) {
  const uint32_t start = GetParam();
  SequenceTracker tracker;
  tracker.Observe(start);
  SequenceTracker::Observation obs = tracker.Observe(start + 5);
  EXPECT_EQ(obs.outcome, SequenceTracker::Outcome::kGap);
  EXPECT_EQ(obs.missing, 4u);
  EXPECT_EQ(tracker.Observe(start + 6).outcome, SequenceTracker::Outcome::kInOrder);
  // LossFraction = missing / (received + missing).
  EXPECT_DOUBLE_EQ(tracker.LossFraction(), 4.0 / 7.0);
}

TEST_P(SequenceWrapProperty, DuplicateAndStaleClassified) {
  const uint32_t start = GetParam();
  SequenceTracker tracker;
  tracker.Observe(start);
  EXPECT_EQ(tracker.Observe(start).outcome, SequenceTracker::Outcome::kDuplicate);
  EXPECT_EQ(tracker.Observe(start - 5).outcome, SequenceTracker::Outcome::kStale);
  EXPECT_EQ(tracker.duplicates(), 1u);
  EXPECT_EQ(tracker.stale(), 1u);
  // Neither event inflates the loss statistics.
  EXPECT_EQ(tracker.missing_total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(StartPoints, SequenceWrapProperty,
                         ::testing::Values(100u, 0xFFFFFFFAu, 0xFFFFFFFFu));

// --- repack/unpack roundtrip for every live segment size ----------------------

class RepackRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RepackRoundTrip, PreservesEveryByteThroughStorageFormat) {
  const int live_blocks = GetParam();
  const int total_blocks = 97;  // not a multiple of either segment size
  std::vector<uint8_t> original;
  for (int i = 0; i < total_blocks * kAudioBlockBytes; ++i) {
    original.push_back(static_cast<uint8_t>(i % 251));
  }

  // Record: live segments of `live_blocks` blocks into 40ms stored segments.
  AudioRepacker repacker(7);
  std::vector<Segment> stored;
  uint32_t sequence = 0;
  Time t = 0;
  size_t offset = 0;
  while (offset < original.size()) {
    size_t bytes = std::min(static_cast<size_t>(live_blocks) * kAudioBlockBytes,
                            original.size() - offset);
    std::vector<uint8_t> chunk(original.begin() + static_cast<ptrdiff_t>(offset),
                               original.begin() + static_cast<ptrdiff_t>(offset + bytes));
    Segment live = MakeAudioSegment(7, sequence++, t, std::move(chunk));
    std::vector<Segment> out = repacker.Push(live);
    for (Segment& segment : out) {
      stored.push_back(std::move(segment));
    }
    t += static_cast<Duration>(bytes / kAudioBlockBytes) * kAudioBlockDuration;
    offset += bytes;
  }
  std::optional<Segment> tail = repacker.Flush();
  if (tail.has_value()) {
    stored.push_back(std::move(*tail));
  }
  EXPECT_EQ(repacker.blocks_consumed(), static_cast<uint64_t>(total_blocks));

  // Stored format: exactly 20 blocks per segment except a short final one,
  // with contiguous sequence numbers.
  ASSERT_FALSE(stored.empty());
  for (size_t i = 0; i < stored.size(); ++i) {
    EXPECT_EQ(stored[i].header.sequence, static_cast<uint32_t>(i));
    if (i + 1 < stored.size()) {
      EXPECT_EQ(stored[i].AudioBlockCount(), kRepositoryBlocksPerSegment);
    } else {
      EXPECT_LE(stored[i].AudioBlockCount(), kRepositoryBlocksPerSegment);
      EXPECT_GT(stored[i].AudioBlockCount(), 0);
    }
  }

  // Replay: unpack back to live segments of the same size and compare bytes.
  AudioUnpacker unpacker(7, live_blocks);
  std::vector<uint8_t> replayed;
  for (const Segment& segment : stored) {
    std::vector<Segment> lives = unpacker.Push(segment);
    for (const Segment& live : lives) {
      replayed.insert(replayed.end(), live.payload.begin(), live.payload.end());
      EXPECT_EQ(live.AudioBlockCount(), live_blocks);
    }
  }
  std::optional<Segment> last = unpacker.Flush();
  if (last.has_value()) {
    replayed.insert(replayed.end(), last->payload.begin(), last->payload.end());
  }
  EXPECT_EQ(replayed, original);
}

INSTANTIATE_TEST_SUITE_P(LiveSizes, RepackRoundTrip, ::testing::Range(1, 13));

TEST(RepackProperty, HeaderOverheadFallsWithSegmentSize) {
  for (int blocks = 1; blocks < 20; ++blocks) {
    EXPECT_GT(AudioHeaderOverhead(blocks), AudioHeaderOverhead(blocks + 1)) << blocks;
  }
  // 40ms repository segments: 36 bytes of header on 320 bytes of data.
  EXPECT_DOUBLE_EQ(AudioHeaderOverhead(kRepositoryBlocksPerSegment), 36.0 / (36.0 + 320.0));
}

TEST(RepackProperty, SplitIntoBlocksDropsTrailingPartial) {
  std::vector<uint8_t> samples(static_cast<size_t>(3 * kAudioBlockBytes + 5), 9);
  Segment segment = MakeAudioSegment(1, 0, Millis(100), std::move(samples));
  std::vector<AudioBlock> blocks = SplitIntoBlocks(segment);
  ASSERT_EQ(blocks.size(), 3u);
  for (size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].source_time,
              segment.source_time() + static_cast<Duration>(i) * kAudioBlockDuration);
    for (uint8_t sample : blocks[i].samples) {
      EXPECT_EQ(sample, 9);
    }
  }
}

// --- single-rate clawback cadence ----------------------------------------------

class ClawbackCadenceProperty
    : public ::testing::TestWithParam<std::tuple<uint32_t, int>> {};

TEST_P(ClawbackCadenceProperty, ClawsBackToTargetThenHolds) {
  auto [threshold, target] = GetParam();
  ClawbackConfig config;
  config.mode = ClawbackMode::kSingleRate;
  config.count_threshold = threshold;
  config.lower_target_blocks = target;
  ClawbackBuffer buffer(1, config, nullptr);

  AudioBlock block;
  // Prime a backlog well above the lower target (jitter burst).
  const int backlog = target + 6;
  for (int i = 0; i < backlog; ++i) {
    ASSERT_EQ(buffer.Push(block), ClawbackPushResult::kStored);
  }

  // Steady state: one block in, one block out per 2ms tick.  Every
  // `threshold` arrivals above target sacrifices one block, so the delay
  // walks down to the target and then stays there.
  const uint64_t ticks = static_cast<uint64_t>(threshold) * (backlog + 2);
  for (uint64_t i = 0; i < ticks; ++i) {
    buffer.Push(block);
    ASSERT_TRUE(buffer.Pop().has_value());
  }
  EXPECT_EQ(buffer.depth_blocks(), static_cast<size_t>(target));
  EXPECT_EQ(buffer.stats().clawback_drops, static_cast<uint64_t>(backlog - target));

  // At the target no further blocks are sacrificed.
  const uint64_t drops_at_target = buffer.stats().clawback_drops;
  for (uint64_t i = 0; i < static_cast<uint64_t>(threshold) * 3; ++i) {
    buffer.Push(block);
    ASSERT_TRUE(buffer.Pop().has_value());
  }
  EXPECT_EQ(buffer.stats().clawback_drops, drops_at_target);
  EXPECT_EQ(buffer.depth_blocks(), static_cast<size_t>(target));
}

TEST_P(ClawbackCadenceProperty, FirstDropArrivesAfterThresholdArrivals) {
  auto [threshold, target] = GetParam();
  ClawbackConfig config;
  config.mode = ClawbackMode::kSingleRate;
  config.count_threshold = threshold;
  config.lower_target_blocks = target;
  ClawbackBuffer buffer(1, config, nullptr);

  AudioBlock block;
  for (int i = 0; i < target + 1; ++i) {
    ASSERT_EQ(buffer.Push(block), ClawbackPushResult::kStored);
  }
  // The buffer is now one block above target; each further arrival ticks the
  // clawback counter once (push + pop keeps the depth constant).
  uint64_t arrivals_until_drop = 0;
  for (;;) {
    ++arrivals_until_drop;
    ClawbackPushResult result = buffer.Push(block);
    if (result == ClawbackPushResult::kDroppedClawback) {
      break;
    }
    ASSERT_EQ(result, ClawbackPushResult::kStored);
    ASSERT_TRUE(buffer.Pop().has_value());
    ASSERT_LE(arrivals_until_drop, static_cast<uint64_t>(threshold) + 1);
  }
  // Priming never ticks the counter (the depth check precedes each store),
  // so the drop lands on exactly the threshold-th above-target arrival.
  EXPECT_EQ(arrivals_until_drop, static_cast<uint64_t>(threshold));
}

INSTANTIATE_TEST_SUITE_P(RatesAndTargets, ClawbackCadenceProperty,
                         ::testing::Combine(::testing::Values(8u, 64u, 4096u),
                                            ::testing::Values(2, 5)));

}  // namespace
}  // namespace pandora
