// Tests for the audio subsystem: mu-law codec, signal sources, capture /
// playout, block handler, receiver, mixer and muting (paper sections 3.2,
// 3.5, 3.8, 4.3).
#include <array>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/audio/codec.h"
#include "src/audio/mix_kernels.h"
#include "src/audio/mixer.h"
#include "src/audio/muting.h"
#include "src/audio/receiver.h"
#include "src/audio/sender.h"
#include "src/audio/signal.h"
#include "src/audio/ulaw.h"
#include "src/buffer/clawback.h"
#include "src/buffer/pool.h"
#include "src/control/report.h"
#include "src/runtime/scheduler.h"

namespace pandora {
namespace {

TEST(MixKernelTest, DecodeTableMatchesReferenceCodecOverFullDomain) {
  // mix_kernels.h promises its compile-time companding tables compute the
  // same G.711 function as src/audio/ulaw.cc; the vectorized mixer's
  // bit-identity to the old fused loop rests on this.
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(kULawDecodeTable[static_cast<size_t>(i)], ULawDecode(static_cast<uint8_t>(i)))
        << "codeword " << i;
  }
}

TEST(MixKernelTest, EncodeTableMatchesReferenceCodecOverFullDomain) {
  for (int i = -32768; i <= 32767; ++i) {
    const auto sample = static_cast<int16_t>(i);
    EXPECT_EQ(kULawEncodeTable[static_cast<uint16_t>(sample)], ULawEncode(sample))
        << "sample " << i;
  }
}

TEST(MixKernelTest, SeparablePassesMatchFusedReferenceMix) {
  // Mix three µ-law streams through the separable kernels and through a
  // scalar decode/sum/clamp/encode reference; outputs must be identical
  // byte-for-byte (including saturation cases driven by the large inputs).
  std::array<std::array<uint8_t, kAudioBlockSamples>, 3> streams;
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < kAudioBlockSamples; ++i) {
      const int16_t linear = static_cast<int16_t>(((s + 1) * 9000) * ((i % 2 == 0) ? 1 : -1) +
                                                  i * 137 - s * 55);
      streams[static_cast<size_t>(s)][static_cast<size_t>(i)] = ULawEncode(linear);
    }
  }

  alignas(16) int32_t acc[kAudioBlockSamples] = {};
  alignas(16) int16_t linear[kAudioBlockSamples];
  for (const auto& stream : streams) {
    ULawDecodeBlock<kAudioBlockSamples>(stream.data(), linear);
    AccumulateBlock<kAudioBlockSamples>(linear, acc);
  }
  alignas(16) int16_t clamped[kAudioBlockSamples];
  uint8_t kernel_out[kAudioBlockSamples];
  ClampBlock<kAudioBlockSamples>(acc, clamped);
  ULawEncodeBlock<kAudioBlockSamples>(clamped, kernel_out);

  for (int i = 0; i < kAudioBlockSamples; ++i) {
    int32_t sum = 0;
    for (const auto& stream : streams) {
      sum += ULawDecode(stream[static_cast<size_t>(i)]);
    }
    const int32_t sat = sum < -32768 ? -32768 : (sum > 32767 ? 32767 : sum);
    EXPECT_EQ(kernel_out[i], ULawEncode(static_cast<int16_t>(sat))) << "sample " << i;
  }
}

TEST(ULawTest, SilenceAndExtremes) {
  EXPECT_EQ(ULawEncode(0), kULawSilence);
  EXPECT_EQ(ULawDecode(kULawSilence), 0);
  EXPECT_GT(ULawDecode(ULawEncode(30000)), 28000);
  EXPECT_LT(ULawDecode(ULawEncode(-30000)), -28000);
}

TEST(ULawTest, RoundTripIsCloseAcrossTheRange) {
  for (int v = -32000; v <= 32000; v += 17) {
    int16_t in = static_cast<int16_t>(v);
    int16_t out = ULawDecode(ULawEncode(in));
    // Companding error grows with magnitude: ~1/16 relative plus a floor.
    double tolerance = std::abs(v) / 12.0 + 16.0;
    EXPECT_NEAR(out, in, tolerance) << "v=" << v;
  }
}

TEST(ULawTest, DecodeEncodeIsIdentityOnCodewords) {
  // Decoded values are exact codeword centres: re-encoding must return the
  // same byte (this is what makes table-based muting lossless at 100%).
  for (int u = 0; u < 256; ++u) {
    uint8_t byte = static_cast<uint8_t>(u);
    int16_t linear = ULawDecode(byte);
    uint8_t re = ULawEncode(linear);
    EXPECT_EQ(ULawDecode(re), linear) << "u=" << u;
  }
}

TEST(ULawTest, MonotonicOverPositiveRange) {
  int16_t prev = ULawDecode(ULawEncode(0));
  for (int v = 1; v <= 32000; v += 11) {
    int16_t now = ULawDecode(ULawEncode(static_cast<int16_t>(v)));
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(SignalTest, SineHasExpectedAmplitudeAndPeriod) {
  SineSource sine(500.0, 10000.0);  // period 2ms
  EXPECT_EQ(sine.SampleAt(0), 0);
  EXPECT_NEAR(sine.SampleAt(500), 10000, 2);  // quarter period = 500us
  EXPECT_NEAR(sine.SampleAt(1000), 0, 2);
  EXPECT_NEAR(sine.SampleAt(1500), -10000, 2);
  EXPECT_NEAR(sine.SampleAt(Millis(2)), 0, 2);
}

TEST(SignalTest, SpeechLikeHasTalkAndSilentPhases) {
  SpeechLikeSource speech(9000.0, 4.0, 0.5);  // 250ms cycle, 125ms talk
  bool saw_loud = false;
  for (Time t = 0; t < Millis(125); t += 125) {
    if (std::abs(speech.SampleAt(t)) > 2000) {
      saw_loud = true;
    }
  }
  EXPECT_TRUE(saw_loud);
  for (Time t = Millis(130); t < Millis(245); t += 125) {
    EXPECT_EQ(speech.SampleAt(t), 0) << "t=" << t;
  }
}

// --- Muting (fig 4.1) --------------------------------------------------------

AudioBlock LoudBlock(int16_t level = 8000) {
  AudioBlock block;
  block.samples.fill(ULawEncode(level));
  return block;
}

AudioBlock QuietBlock() {
  AudioBlock block;
  block.samples.fill(kULawSilence);
  return block;
}

TEST(MutingTableTest, ScalesSamples) {
  MutingTable half(0.5);
  uint8_t loud = ULawEncode(8000);
  int16_t scaled = ULawDecode(half.Apply(loud));
  EXPECT_NEAR(scaled, 4000, 300);
  // Unity table is the identity on codewords.
  MutingTable unity(1.0);
  for (int u = 0; u < 256; ++u) {
    EXPECT_EQ(ULawDecode(unity.Apply(static_cast<uint8_t>(u))),
              ULawDecode(static_cast<uint8_t>(u)));
  }
}

TEST(MutingControlTest, TwoStageProfileMatchesFigure41) {
  MutingControl muting;
  // Quiet: full volume.
  EXPECT_DOUBLE_EQ(muting.FactorAt(0), 1.0);

  // Loud block at t=10ms: attack at 50% for one 2ms step, then 20%.
  muting.ObserveSpeakerBlock(Millis(10), LoudBlock());
  EXPECT_DOUBLE_EQ(muting.FactorAt(Millis(10)), 0.5);
  EXPECT_DOUBLE_EQ(muting.FactorAt(Millis(11)), 0.5);
  EXPECT_DOUBLE_EQ(muting.FactorAt(Millis(12)), 0.2);
  EXPECT_DOUBLE_EQ(muting.FactorAt(Millis(20)), 0.2);

  // 22ms of quiet after the last loud block -> 50%.
  EXPECT_DOUBLE_EQ(muting.FactorAt(Millis(31)), 0.2);
  EXPECT_DOUBLE_EQ(muting.FactorAt(Millis(32)), 0.5);
  EXPECT_DOUBLE_EQ(muting.FactorAt(Millis(53)), 0.5);
  // 22ms more -> back to 100%.
  EXPECT_DOUBLE_EQ(muting.FactorAt(Millis(54)), 1.0);
  EXPECT_EQ(muting.activations(), 1u);
}

TEST(MutingControlTest, ContinuedLoudnessHoldsDeepFactor) {
  MutingControl muting;
  for (Time t = 0; t < Millis(100); t += Millis(2)) {
    muting.ObserveSpeakerBlock(t, LoudBlock());
  }
  EXPECT_DOUBLE_EQ(muting.FactorAt(Millis(100)), 0.2);
  // Quiet resumes the release schedule from the LAST loud block.
  EXPECT_DOUBLE_EQ(muting.FactorAt(Millis(119)), 0.2);
  EXPECT_DOUBLE_EQ(muting.FactorAt(Millis(121)), 0.5);
  EXPECT_DOUBLE_EQ(muting.FactorAt(Millis(143)), 1.0);
  EXPECT_EQ(muting.activations(), 1u);  // one continuous activation
}

TEST(MutingControlTest, LoudnessDuringReleaseReturnsToDeep) {
  MutingControl muting;
  muting.ObserveSpeakerBlock(0, LoudBlock());
  // In release at 24ms (2ms attack + 22ms deep hold after last loud at 0).
  EXPECT_DOUBLE_EQ(muting.FactorAt(Millis(25)), 0.5);
  muting.ObserveSpeakerBlock(Millis(26), LoudBlock());
  EXPECT_DOUBLE_EQ(muting.FactorAt(Millis(26)), 0.2);
}

TEST(MutingControlTest, QuietBlocksDoNotTrigger) {
  MutingControl muting;
  for (Time t = 0; t < Millis(50); t += Millis(2)) {
    muting.ObserveSpeakerBlock(t, QuietBlock());
  }
  EXPECT_DOUBLE_EQ(muting.FactorAt(Millis(50)), 1.0);
  EXPECT_EQ(muting.activations(), 0u);
}

TEST(MutingControlTest, AppliesFactorToMicBlocks) {
  MutingControl muting;
  muting.ObserveSpeakerBlock(0, LoudBlock());
  AudioBlock mic = LoudBlock(10000);
  muting.ApplyToMicBlock(Millis(4), &mic);  // deep region: 20%
  EXPECT_NEAR(ULawDecode(mic.samples[0]), 2000, 200);
}

TEST(MutingControlTest, DisabledIsTransparent) {
  MutingConfig config;
  config.enabled = false;
  MutingControl muting(config);
  muting.ObserveSpeakerBlock(0, LoudBlock());
  EXPECT_DOUBLE_EQ(muting.FactorAt(Millis(2)), 1.0);
}

// --- Codec ------------------------------------------------------------------

TEST(CodecInputTest, EmitsOneBlockPer2msWithSourceTimes) {
  Scheduler sched;
  SineSource tone(440.0);
  Channel<AudioBlock> out(&sched, "mic");
  CodecInput codec(&sched, {.name = "in", .clock_drift = 0.0}, &tone, &out);
  ShutdownGuard guard(&sched);

  std::vector<AudioBlock> got;
  auto sink = [](Channel<AudioBlock>* c, std::vector<AudioBlock>* got) -> Process {
    for (;;) {
      got->push_back(co_await c->Receive());
    }
  };
  sched.Spawn(sink(&out, &got), "sink");
  codec.Start();
  sched.RunFor(Millis(20));
  ASSERT_EQ(got.size(), 10u);
  EXPECT_EQ(got[0].source_time, 0);
  EXPECT_EQ(got[1].source_time, Millis(2));
  EXPECT_EQ(got[9].source_time, Millis(18));
}

TEST(CodecInputTest, ClockDriftShiftsCadence) {
  Scheduler sched;
  SilenceSource silence;
  Channel<AudioBlock> out(&sched, "mic");
  // A fast source clock (+1%) emits blocks slightly more often.
  CodecInput codec(&sched, {.name = "in", .clock_drift = 0.01}, &silence, &out);
  ShutdownGuard guard(&sched);
  uint64_t count = 0;
  auto sink = [](Channel<AudioBlock>* c, uint64_t* n) -> Process {
    for (;;) {
      (void)co_await c->Receive();
      ++*n;
    }
  };
  sched.Spawn(sink(&out, &count), "sink");
  codec.Start();
  sched.RunFor(Seconds(2));
  // 1000 blocks at nominal rate; +1% -> ~1010.
  EXPECT_GE(count, 1008u);
  EXPECT_LE(count, 1012u);
}

TEST(CodecOutputTest, PrimesThenPlays) {
  Scheduler sched;
  CodecOutput out(&sched, {.name = "out", .prime_blocks = 2});
  ShutdownGuard guard(&sched);
  out.Start();
  sched.RunFor(Millis(10));
  EXPECT_EQ(out.played_blocks(), 0u);  // nothing submitted: still priming
  EXPECT_EQ(out.underruns(), 0u);      // priming is not an underrun

  AudioBlock block;
  block.source_time = sched.now();
  out.SubmitBlock(block);
  out.SubmitBlock(block);
  sched.RunFor(Millis(10));
  EXPECT_EQ(out.played_blocks(), 2u);
  EXPECT_GT(out.underruns(), 0u);  // ran dry after the two blocks
}

TEST(CodecOutputTest, LatencyMeasuredFromSourceTime) {
  Scheduler sched;
  CodecOutput out(&sched, {.name = "out", .prime_blocks = 1});
  ShutdownGuard guard(&sched);
  out.Start();
  AudioBlock block;
  block.source_time = 0;
  out.SubmitBlock(block);
  sched.RunFor(Millis(4));
  ASSERT_EQ(out.played_blocks(), 1u);
  EXPECT_EQ(out.latency().Mean(), 2000.0);  // played at first 2ms tick
}

// --- Sender / Receiver / Mixer ------------------------------------------------

TEST(AudioSenderTest, AccumulatesBlocksIntoSegments) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 16);
  Channel<AudioBlock> mic(&sched, "mic");
  Channel<SegmentRef> wire(&sched, "wire");
  AudioSender sender(&sched, {.name = "snd", .stream = 5, .blocks_per_segment = 2}, &mic, &pool,
                     &wire);
  ShutdownGuard guard(&sched);
  sender.Start();

  std::vector<uint32_t> sequences;
  std::vector<int> block_counts;
  auto feeder = [](Scheduler* s, Channel<AudioBlock>* mic) -> Process {
    for (int i = 0; i < 6; ++i) {
      AudioBlock block;
      block.source_time = s->now();
      block.samples.fill(static_cast<uint8_t>(i));
      co_await mic->Send(block);
      co_await s->WaitFor(Millis(2));
    }
  };
  auto sink = [](Channel<SegmentRef>* wire, std::vector<uint32_t>* seqs,
                 std::vector<int>* counts) -> Process {
    for (;;) {
      SegmentRef ref = co_await wire->Receive();
      seqs->push_back(ref->header.sequence);
      counts->push_back(ref->AudioBlockCount());
    }
  };
  sched.Spawn(feeder(&sched, &mic), "feeder");
  sched.Spawn(sink(&wire, &sequences, &block_counts), "sink");
  sched.RunFor(Millis(20));
  ASSERT_EQ(sequences.size(), 3u);
  EXPECT_EQ(sequences, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(block_counts, (std::vector<int>{2, 2, 2}));
  EXPECT_EQ(sender.blocks_consumed(), 6u);
}

TEST(AudioSenderTest, BlocksPerSegmentCommandTakesEffectMidStream) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 16);
  Channel<AudioBlock> mic(&sched, "mic");
  Channel<SegmentRef> wire(&sched, "wire");
  AudioSender sender(&sched, {.name = "snd", .stream = 5, .blocks_per_segment = 1}, &mic, &pool,
                     &wire);
  ShutdownGuard guard(&sched);
  sender.Start();

  std::vector<int> block_counts;
  auto feeder = [](Scheduler* s, Channel<AudioBlock>* mic, CommandChannel* cmd) -> Process {
    AudioBlock block;
    for (int i = 0; i < 2; ++i) {
      block.source_time = s->now();
      co_await mic->Send(block);
      co_await s->WaitFor(Millis(2));
    }
    co_await cmd->Send(Command{CommandVerb::kSetBlocksPerSegment, 5, 3, 0});
    for (int i = 0; i < 6; ++i) {
      block.source_time = s->now();
      co_await mic->Send(block);
      co_await s->WaitFor(Millis(2));
    }
  };
  auto sink = [](Channel<SegmentRef>* wire, std::vector<int>* counts) -> Process {
    for (;;) {
      SegmentRef ref = co_await wire->Receive();
      counts->push_back(ref->AudioBlockCount());
    }
  };
  sched.Spawn(feeder(&sched, &mic, &sender.commands()), "feeder");
  sched.Spawn(sink(&wire, &block_counts), "sink");
  sched.RunFor(Millis(40));
  EXPECT_EQ(block_counts, (std::vector<int>{1, 1, 3, 3}));
}

// A self-contained audio loop: codec capture -> sender -> wire -> receiver
// -> clawback bank -> mixer -> codec playout, all on one scheduler.
struct AudioLoop {
  explicit AudioLoop(double source_drift = 0.0, MixRecovery recovery = MixRecovery::kReplayLast,
                     bool record = false)
      : pool(&sched, "pool", 64),
        mic(&sched, "mic"),
        wire(&sched, "wire"),
        tone(440.0, 9000.0),
        codec_in(&sched, {.name = "codec.in", .clock_drift = source_drift}, &tone, &mic),
        sender(&sched, {.name = "sender", .stream = 1}, &mic, &pool, &wire),
        bank(ClawbackConfig{}),
        receiver(&sched, {.name = "recv"}, &wire, &bank),
        codec_out(&sched,
                  {.name = "codec.out", .prime_blocks = 2, .record_samples = record}),
        mixer(&sched, {.name = "mixer", .recovery = recovery}, &bank, nullptr, &codec_out) {}

  void Start() {
    codec_in.Start();
    sender.Start();
    receiver.Start();
    codec_out.Start();
    mixer.Start();
  }

  Scheduler sched;
  BufferPool pool;
  Channel<AudioBlock> mic;
  Channel<SegmentRef> wire;
  SineSource tone;
  CodecInput codec_in;
  AudioSender sender;
  ClawbackBank bank;
  AudioReceiver receiver;
  CodecOutput codec_out;
  AudioMixer mixer;
  ShutdownGuard guard{&sched};
};

TEST(AudioLoopTest, EndToEndDeliversContinuousAudio) {
  AudioLoop loop;
  loop.Start();
  loop.sched.RunFor(Seconds(2));
  // ~1000 blocks captured, nearly all played.
  EXPECT_GT(loop.codec_out.played_blocks(), 980u);
  EXPECT_EQ(loop.receiver.total_missing(), 0u);
  // Direct wire: latency stays in the best-case regime (paper: 8ms).
  EXPECT_LT(loop.codec_out.latency().Mean(), 10000.0);
  EXPECT_GE(loop.codec_out.latency().Mean(), 4000.0);
}

TEST(AudioLoopTest, SourceClockDriftIsAbsorbedByClawback) {
  // Quartz drift (paper: ~1e-5, must be < the 1-in-4000 clawback rate).
  // Exaggerated to 2e-4 so the effect shows within a one-minute run: the
  // fast source produces ~6 extra blocks; clawback removes them and the
  // buffer depth stays bounded near its target.
  AudioLoop loop(/*source_drift=*/2e-4);
  loop.Start();
  loop.sched.RunFor(Seconds(60));
  auto stats = loop.bank.TotalStats();
  EXPECT_GT(stats.clawback_drops, 2u);
  EXPECT_LT(stats.max_depth, 10u);  // never built an unbounded backlog
  EXPECT_EQ(stats.limit_drops, 0u);
  // Playout never starved for long: underruns bounded.
  EXPECT_LT(loop.codec_out.underruns(), 30u);
}

TEST(AudioMixerTest, TwoStreamsSumInLinearSpace) {
  Scheduler sched;
  ClawbackBank bank{ClawbackConfig{}};
  CodecOutput out(&sched, {.name = "out", .prime_blocks = 1, .record_samples = true});
  AudioMixer mixer(&sched, {.name = "mix"}, &bank, nullptr, &out);
  ShutdownGuard guard(&sched);
  out.Start();
  mixer.Start();

  // Two identical constant-amplitude streams.
  auto feeder = [](Scheduler* s, ClawbackBank* bank) -> Process {
    AudioBlock block;
    block.samples.fill(ULawEncode(6000));
    for (int i = 0; i < 100; ++i) {
      block.source_time = s->now();
      bank->Push(1, block);
      bank->Push(2, block);
      co_await s->WaitFor(Millis(2));
    }
  };
  sched.Spawn(feeder(&sched, &bank), "feeder");
  sched.RunFor(Millis(150));

  ASSERT_GT(out.recorded().size(), 100u);
  // Steady samples should decode to ~12000 (6000 + 6000).
  int16_t mid = ULawDecode(out.recorded()[out.recorded().size() / 2].ulaw);
  EXPECT_NEAR(mid, 12000, 800);
}

TEST(AudioMixerTest, SaturatesInsteadOfWrapping) {
  Scheduler sched;
  ClawbackBank bank{ClawbackConfig{}};
  CodecOutput out(&sched, {.name = "out", .prime_blocks = 1, .record_samples = true});
  AudioMixer mixer(&sched, {.name = "mix"}, &bank, nullptr, &out);
  ShutdownGuard guard(&sched);
  out.Start();
  mixer.Start();

  auto feeder = [](Scheduler* s, ClawbackBank* bank) -> Process {
    AudioBlock block;
    block.samples.fill(ULawEncode(30000));
    for (int i = 0; i < 20; ++i) {
      block.source_time = s->now();
      bank->Push(1, block);
      bank->Push(2, block);
      co_await s->WaitFor(Millis(2));
    }
  };
  sched.Spawn(feeder(&sched, &bank), "feeder");
  sched.RunFor(Millis(60));
  for (const PlayedSample& sample : out.recorded()) {
    EXPECT_GE(ULawDecode(sample.ulaw), 0) << "wrapped negative";
  }
}

TEST(AudioMixerTest, ReplayLastBlockOnEmptyBuffer) {
  Scheduler sched;
  ClawbackBank bank{ClawbackConfig{}};
  AudioMixer mixer(&sched, {.name = "mix", .recovery = MixRecovery::kReplayLast}, &bank);
  ShutdownGuard guard(&sched);
  mixer.Start();

  auto feeder = [](Scheduler* s, ClawbackBank* bank) -> Process {
    AudioBlock block;
    block.samples.fill(ULawEncode(5000));
    // Feed 5 blocks, pause (forcing empties), feed again.
    for (int i = 0; i < 5; ++i) {
      block.source_time = s->now();
      bank->Push(9, block);
      co_await s->WaitFor(Millis(2));
    }
    co_await s->WaitFor(Millis(10));
    for (int i = 0; i < 5; ++i) {
      block.source_time = s->now();
      bank->Push(9, block);
      co_await s->WaitFor(Millis(2));
    }
  };
  sched.Spawn(feeder(&sched, &bank), "feeder");
  sched.RunFor(Millis(50));
  EXPECT_GE(mixer.replays(), 1u);
  EXPECT_GT(mixer.blocks_mixed(), 8u);
}

TEST(AudioMixerTest, CpuOverloadMakesTicksLate) {
  // E4's mechanism in miniature: with default costs, 6 plain streams
  // exceed the 2ms budget and the mixer cannot hold its cadence.
  Scheduler sched;
  CpuModel cpu(&sched, "audio.cpu");
  ClawbackBank bank{ClawbackConfig{}};
  AudioMixer mixer(&sched, {.name = "mix", .jitter_correction = false}, &bank, &cpu);
  ShutdownGuard guard(&sched);
  mixer.Start();

  auto feeder = [](Scheduler* s, ClawbackBank* bank, int streams) -> Process {
    AudioBlock block;
    block.samples.fill(ULawEncode(1000));
    for (int i = 0; i < 500; ++i) {
      block.source_time = s->now();
      for (int st = 1; st <= streams; ++st) {
        bank->Push(static_cast<StreamId>(st), block);
      }
      co_await s->WaitFor(Millis(2));
    }
  };
  sched.Spawn(feeder(&sched, &bank, 6), "feeder");
  sched.RunFor(Seconds(1));
  EXPECT_GT(mixer.late_ticks(), mixer.ticks() / 2);
  EXPECT_GT(cpu.Utilization(), 0.99);
}

TEST(AudioMixerTest, FiveStreamsFitTheBudget) {
  Scheduler sched;
  CpuModel cpu(&sched, "audio.cpu");
  ClawbackBank bank{ClawbackConfig{}};
  AudioMixer mixer(&sched, {.name = "mix", .jitter_correction = false}, &bank, &cpu);
  ShutdownGuard guard(&sched);
  mixer.Start();

  auto feeder = [](Scheduler* s, ClawbackBank* bank) -> Process {
    AudioBlock block;
    block.samples.fill(ULawEncode(1000));
    for (int i = 0; i < 500; ++i) {
      block.source_time = s->now();
      for (int st = 1; st <= 5; ++st) {
        bank->Push(static_cast<StreamId>(st), block);
      }
      co_await s->WaitFor(Millis(2));
    }
  };
  sched.Spawn(feeder(&sched, &bank), "feeder");
  sched.RunFor(Seconds(1));
  EXPECT_EQ(mixer.max_lateness(), 0);
  EXPECT_LT(cpu.Utilization(), 1.0);
  EXPECT_GT(cpu.Utilization(), 0.90);  // near the edge, as the paper says
}

TEST(AudioLoopTest, LossCreatesGapsThatReceiverDetects) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 64);
  Channel<AudioBlock> mic(&sched, "mic");
  Channel<SegmentRef> wire_in(&sched, "wire.in");
  Channel<SegmentRef> wire_out(&sched, "wire.out");
  SineSource tone(440.0);
  CodecInput codec_in(&sched, {.name = "in"}, &tone, &mic);
  AudioSender sender(&sched, {.name = "snd", .stream = 2}, &mic, &pool, &wire_in);
  ClawbackBank bank{ClawbackConfig{}};
  AudioReceiver receiver(&sched, {.name = "rcv"}, &wire_out, &bank);
  AudioMixer mixer(&sched, {.name = "mix"}, &bank);
  ShutdownGuard guard(&sched);

  // Drop every 5th segment in flight.
  auto lossy_relay = [](Channel<SegmentRef>* in, Channel<SegmentRef>* out) -> Process {
    int n = 0;
    for (;;) {
      SegmentRef ref = co_await in->Receive();
      if (++n % 5 == 0) {
        continue;  // lost
      }
      co_await out->Send(std::move(ref));
    }
  };
  codec_in.Start();
  sender.Start();
  sched.Spawn(lossy_relay(&wire_in, &wire_out), "relay");
  receiver.Start();
  mixer.Start();
  sched.RunFor(Seconds(2));

  const SequenceTracker* tracker = receiver.TrackerFor(2);
  ASSERT_NE(tracker, nullptr);
  EXPECT_GT(tracker->gap_events(), 50u);
  EXPECT_NEAR(tracker->LossFraction(), 0.2, 0.03);
  // The mixer papered over the holes with replays or silences.
  EXPECT_GT(mixer.replays() + mixer.silences(), 50u);
}

}  // namespace
}  // namespace pandora
