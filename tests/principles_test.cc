// Property-style sweeps over the degradation ordering and clawback
// parameters (TEST_P), plus checks of the principles index.
#include <tuple>

#include <gtest/gtest.h>

#include "src/buffer/clawback.h"
#include "src/core/principles.h"
#include "src/server/degrade.h"

namespace pandora {
namespace {

// --- DegradesBefore is a strict weak ordering over stream attributes --------

StreamAttrs MakeAttrs(int bits, uint64_t order) {
  StreamAttrs attrs;
  attrs.stream = static_cast<StreamId>(order + 1);
  attrs.incoming = (bits & 1) != 0;
  attrs.audio = (bits & 2) != 0;
  attrs.open_order = order;
  return attrs;
}

class DegradeOrderProperty : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(DegradeOrderProperty, Antisymmetric) {
  auto [bits_a, bits_b, recording] = GetParam();
  StreamAttrs a = MakeAttrs(bits_a, 1);
  StreamAttrs b = MakeAttrs(bits_b, 2);
  // Never both directions.
  EXPECT_FALSE(DegradesBefore(a, b, recording) && DegradesBefore(b, a, recording));
  // Distinct streams always have an order (totality via open_order).
  EXPECT_TRUE(DegradesBefore(a, b, recording) || DegradesBefore(b, a, recording));
}

TEST_P(DegradeOrderProperty, RecordingOnlyFlipsDirectionTerm) {
  auto [bits_a, bits_b, recording] = GetParam();
  StreamAttrs a = MakeAttrs(bits_a, 1);
  StreamAttrs b = MakeAttrs(bits_b, 2);
  if (a.incoming == b.incoming) {
    // Within one direction class the recording flag must not matter.
    EXPECT_EQ(DegradesBefore(a, b, false), DegradesBefore(a, b, true));
  }
  (void)recording;
}

INSTANTIATE_TEST_SUITE_P(AllAttributePairs, DegradeOrderProperty,
                         ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 4),
                                            ::testing::Bool()));

// Transitivity over a mixed population.
TEST(DegradeOrderTest, TransitiveOverMixedPopulation) {
  std::vector<StreamAttrs> population;
  for (int bits = 0; bits < 4; ++bits) {
    for (uint64_t order = 1; order <= 3; ++order) {
      population.push_back(MakeAttrs(bits, order * 10 + static_cast<uint64_t>(bits)));
    }
  }
  for (const auto& a : population) {
    for (const auto& b : population) {
      for (const auto& c : population) {
        if (DegradesBefore(a, b) && DegradesBefore(b, c)) {
          EXPECT_TRUE(DegradesBefore(a, c));
        }
      }
    }
  }
}

// --- Clawback rate scales linearly with the count threshold -----------------

class ClawbackRateProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ClawbackRateProperty, DropIntervalEqualsThreshold) {
  const uint32_t threshold = GetParam();
  ClawbackConfig config;
  config.count_threshold = threshold;
  ClawbackPool pool(Seconds(4));
  ClawbackBuffer buffer(1, config, &pool);
  AudioBlock block;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(buffer.Push(block), ClawbackPushResult::kStored);
  }
  std::vector<int> drops;
  for (int i = 1; drops.size() < 3 && i <= static_cast<int>(threshold) * 4 + 100; ++i) {
    if (buffer.Push(block) == ClawbackPushResult::kDroppedClawback) {
      drops.push_back(i);
    } else {
      ASSERT_TRUE(buffer.Pop().has_value());
    }
  }
  ASSERT_GE(drops.size(), 2u);
  EXPECT_EQ(static_cast<uint32_t>(drops[1] - drops[0]), threshold);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ClawbackRateProperty,
                         ::testing::Values(64u, 512u, 4096u, 8192u));

// --- Multi-rate level acts as a time constant -------------------------------

class MultiRateLevelProperty : public ::testing::TestWithParam<double> {};

TEST_P(MultiRateLevelProperty, SteadyIntervalMatchesLevelOverFloor) {
  const double level = GetParam();
  ClawbackConfig config;
  config.mode = ClawbackMode::kMultiRate;
  config.block_seconds_level = level;
  config.per_stream_limit_blocks = 100;
  ClawbackPool pool(Seconds(8));
  ClawbackBuffer buffer(1, config, &pool);
  AudioBlock block;
  const int depth = 10;  // floor of 20ms = 0.02 block-seconds per block
  for (int i = 0; i < depth; ++i) {
    ASSERT_EQ(buffer.Push(block), ClawbackPushResult::kStored);
  }
  std::vector<int> drops;
  for (int i = 1; drops.size() < 3 && i <= 400000; ++i) {
    if (buffer.Push(block) == ClawbackPushResult::kDroppedClawback) {
      drops.push_back(i);
    } else {
      ASSERT_TRUE(buffer.Pop().has_value());
    }
  }
  ASSERT_EQ(drops.size(), 3u);
  const int expected = static_cast<int>(level / (depth * 0.002));
  EXPECT_EQ(drops[2] - drops[1], expected);
}

INSTANTIATE_TEST_SUITE_P(Levels, MultiRateLevelProperty, ::testing::Values(5.0, 20.0, 40.0));

TEST(PrinciplesTest, IndexIsComplete) {
  // The enum is documentation, but keep its values pinned to the paper's
  // numbering.
  EXPECT_EQ(static_cast<int>(Principle::kOutgoingPriority), 1);
  EXPECT_EQ(static_cast<int>(Principle::kAudioPriority), 2);
  EXPECT_EQ(static_cast<int>(Principle::kNewStreamPriority), 3);
  EXPECT_EQ(static_cast<int>(Principle::kCommandPriority), 4);
  EXPECT_EQ(static_cast<int>(Principle::kUpstreamIndependence), 5);
  EXPECT_EQ(static_cast<int>(Principle::kReconfigurationContinuity), 6);
  EXPECT_EQ(static_cast<int>(Principle::kMinimiseDelay), 7);
  EXPECT_EQ(static_cast<int>(Principle::kLocalAdaptation), 8);
}

}  // namespace
}  // namespace pandora
