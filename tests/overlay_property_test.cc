// Overlay property suite: transitive P5/P6 over random generated
// topologies (ROADMAP item 2, ISSUE 7 tentpole d).
//
//   - Structure: >= 100 random (population, fanout, stripes, policy) tree
//     builds hold SpansAll / InteriorDisjoint / RespectsFanout / IsAcyclic,
//     and the near-optimal-delay ordering never loses to the balanced fill
//     on mean delay (the rearrangement bound is a theorem, so it gets
//     asserted on every topology, not spot-checked).
//   - P5 transitively: one choked interior relay starves only its own
//     subtree; every receiver outside it takes full delivery, bit for bit.
//   - P6 transitively: repair after one relay's departure re-parents only
//     that relay's stripe; sibling trees' structures are untouched and
//     their stripes flow loss-free through the repair.
//   - Churn storms converge: after a seeded join/leave storm quiesces,
//     every present receiver is rooted again and still receiving.
//   - City scale: a 10^4-receiver, k=2 striped overlay under a 100+-event
//     storm replays bit-exactly — the second run drives the plan through
//     its text round trip, so (format -> parse -> replay) must reproduce
//     the exact RunHash of the original.
//
// PANDORA_CHAOS_SEED_BASE offsets the seed range (chaos_sweep runs this
// suite as its 10th seed base); PANDORA_CHAOS_PLANS scales the per-test
// topology counts.
#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/plan.h"
#include "src/overlay/churn.h"
#include "src/overlay/multicast.h"
#include "src/overlay/topology.h"
#include "src/overlay/tree.h"
#include "src/runtime/random.h"

namespace pandora {
namespace {

uint64_t EnvSeedBase() {
  const char* base = std::getenv("PANDORA_CHAOS_SEED_BASE");
  return base == nullptr ? 0 : std::strtoull(base, nullptr, 10);
}

int EnvPlanCount(int fallback) {
  const char* count = std::getenv("PANDORA_CHAOS_PLANS");
  return count == nullptr ? fallback : std::atoi(count);
}

// Draws a random-but-buildable configuration: fanout comfortably above the
// stripe count so every tree's interior group can absorb the population.
struct DrawnWorld {
  TopologyParams params;
  int stripes = 1;
  TreePolicy policy = TreePolicy::kBalancedFanout;
};

DrawnWorld DrawWorld(uint64_t seed) {
  Rng rng(seed);
  DrawnWorld world;
  world.params.seed = seed;
  world.params.receivers = static_cast<int>(rng.UniformInt(60, 400));
  world.stripes = static_cast<int>(rng.UniformInt(1, 3));
  world.params.fanout = static_cast<int>(rng.UniformInt(2 * world.stripes + 2, 10));
  world.policy = rng.Bernoulli(0.5) ? TreePolicy::kNearOptimalDelay : TreePolicy::kBalancedFanout;
  return world;
}

std::string Describe(const DrawnWorld& world) {
  return "seed=" + std::to_string(world.params.seed) +
         " n=" + std::to_string(world.params.receivers) +
         " fanout=" + std::to_string(world.params.fanout) +
         " k=" + std::to_string(world.stripes) +
         (world.policy == TreePolicy::kNearOptimalDelay ? " policy=near-optimal"
                                                        : " policy=balanced");
}

// Strict descendants of `root` in tree t.
std::vector<int> SubtreeOf(const StripedTrees& trees, int t, int root) {
  std::vector<int> result;
  std::vector<int> frontier = trees.children[static_cast<size_t>(t)][static_cast<size_t>(root)];
  while (!frontier.empty()) {
    int at = frontier.back();
    frontier.pop_back();
    result.push_back(at);
    const std::vector<int>& kids = trees.children[static_cast<size_t>(t)][static_cast<size_t>(at)];
    frontier.insert(frontier.end(), kids.begin(), kids.end());
  }
  return result;
}

// A relay with a non-trivial subtree in its interior tree, or -1.
int PickInteriorRelay(const StripedTrees& trees, Rng& rng) {
  const int t = 0;
  const std::vector<int>& roots = trees.root_children[static_cast<size_t>(t)];
  std::vector<int> relays;
  for (int r : roots) {
    if (!trees.children[static_cast<size_t>(t)][static_cast<size_t>(r)].empty()) {
      relays.push_back(r);
    }
  }
  if (relays.empty()) {
    return -1;
  }
  return relays[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(relays.size()) - 1))];
}

void ExpectStructuralInvariants(const StripedTrees& trees, const std::string& what) {
  EXPECT_TRUE(SpansAll(trees)) << what;
  EXPECT_TRUE(InteriorDisjoint(trees)) << what;
  EXPECT_TRUE(RespectsFanout(trees)) << what;
  EXPECT_TRUE(IsAcyclic(trees)) << what;
}

TEST(OverlayProperty, RandomTreesHoldInvariantsAndDelayBound) {
  const uint64_t base = EnvSeedBase();
  const int count = EnvPlanCount(120);
  for (int i = 0; i < count; ++i) {
    const DrawnWorld world = DrawWorld(base + 500 + static_cast<uint64_t>(i));
    const OverlayTopology topology = GenerateTopology(world.params);
    const StripedTrees trees = TreeBuilder::Build(topology, world.stripes, world.policy);
    ExpectStructuralInvariants(trees, Describe(world));

    const StripedTrees balanced =
        TreeBuilder::Build(topology, world.stripes, TreePolicy::kBalancedFanout);
    const StripedTrees optimal =
        TreeBuilder::Build(topology, world.stripes, TreePolicy::kNearOptimalDelay);
    EXPECT_LE(ComputeDelayStats(topology, optimal).mean_us,
              ComputeDelayStats(topology, balanced).mean_us + 1e-9)
        << Describe(world);
  }
}

TEST(OverlayProperty, ChokedRelayStarvesOnlyItsOwnSubtree) {
  const uint64_t base = EnvSeedBase();
  const int count = std::max(1, EnvPlanCount(120) / 5);
  for (int i = 0; i < count; ++i) {
    DrawnWorld world = DrawWorld(base + 9000 + static_cast<uint64_t>(i));
    world.stripes = 1;  // single tree: the cross-subtree claim in isolation
    OverlayTopology topology = GenerateTopology(world.params);
    StripedTrees trees = TreeBuilder::Build(topology, world.stripes, world.policy);
    Rng pick(world.params.seed ^ 0xc0ffee);
    const int choked = PickInteriorRelay(trees, pick);
    if (choked < 0) {
      continue;
    }
    // An uplink three orders of magnitude below the stream rate: its first
    // few copies crawl out, then the lane budget sheds the rest.
    topology.links[static_cast<size_t>(choked)].bits_per_second = 1'000;
    const std::vector<int> starved = SubtreeOf(trees, 0, choked);

    Scheduler sched;
    OverlayMulticast multicast(&sched, &topology, &trees, MulticastParams{}, world.params.seed);
    multicast.Start(Millis(400));
    sched.RunUntilQuiescent();

    std::vector<bool> in_subtree(static_cast<size_t>(topology.receiver_count()), false);
    for (int r : starved) {
      in_subtree[static_cast<size_t>(r)] = true;
    }
    int64_t starved_drops = 0;
    for (int r = 0; r < topology.receiver_count(); ++r) {
      if (in_subtree[static_cast<size_t>(r)]) {
        starved_drops += multicast.stats(r).dropped_queue;
        continue;
      }
      if (r == choked) {
        continue;  // the choked relay itself still RECEIVES fine
      }
      // P5, transitively: everyone outside the choked subtree is whole.
      EXPECT_EQ(multicast.stats(r).delivered, multicast.emitted())
          << Describe(world) << " r=" << r << " choked=" << choked;
      EXPECT_EQ(multicast.stats(r).dropped_queue, 0) << Describe(world) << " r=" << r;
    }
    EXPECT_GT(starved_drops, 0) << Describe(world) << " choked=" << choked
                                << " subtree=" << starved.size();
  }
}

TEST(OverlayProperty, RepairOfOneTreeNeverDisturbsTheOthers) {
  const uint64_t base = EnvSeedBase();
  const int count = std::max(1, EnvPlanCount(120) / 5);
  for (int i = 0; i < count; ++i) {
    DrawnWorld world = DrawWorld(base + 17000 + static_cast<uint64_t>(i));
    world.stripes = std::max(2, world.stripes);
    world.params.fanout = std::max(world.params.fanout, 2 * world.stripes + 2);
    const OverlayTopology topology = GenerateTopology(world.params);
    StripedTrees trees = TreeBuilder::Build(topology, world.stripes, world.policy);
    Rng pick(world.params.seed ^ 0xdecade);
    const int leaver = PickInteriorRelay(trees, pick);
    if (leaver < 0) {
      continue;
    }
    const int home = trees.interior_tree(leaver);
    ASSERT_EQ(home, 0);  // PickInteriorRelay draws from tree 0

    const std::vector<std::vector<int>> parents_before = trees.parent;

    Scheduler sched;
    OverlayMulticast multicast(&sched, &topology, &trees, MulticastParams{}, world.params.seed);
    OverlayMulticast* mc = &multicast;
    multicast.Start(Millis(400));
    sched.AddTimer(Millis(150), TimerCallback([mc, leaver] { mc->Leave(leaver); }));
    sched.RunUntilQuiescent();

    // P6, structural: in every OTHER tree no receiver but the leaver was
    // re-parented — repair touched exactly one stripe.
    for (int t = 0; t < trees.stripes; ++t) {
      if (t == home) {
        continue;
      }
      for (int r = 0; r < topology.receiver_count(); ++r) {
        if (r == leaver) {
          continue;
        }
        EXPECT_EQ(trees.parent[static_cast<size_t>(t)][static_cast<size_t>(r)],
                  parents_before[static_cast<size_t>(t)][static_cast<size_t>(r)])
            << Describe(world) << " tree=" << t << " r=" << r << " leaver=" << leaver;
      }
      // P6, observable: the other stripes flowed loss-free through the
      // departure and the repair.
      for (int r = 0; r < topology.receiver_count(); ++r) {
        if (r == leaver) {
          continue;
        }
        EXPECT_EQ(multicast.delivered_on_tree(r, t), multicast.emitted_on_tree(t))
            << Describe(world) << " tree=" << t << " r=" << r;
      }
    }
    EXPECT_GT(multicast.repairs(), 0) << Describe(world);
    EXPECT_EQ(multicast.repair().overflow(), 0) << Describe(world);
  }
}

TEST(OverlayProperty, ChurnStormsConvergeAndKeepDelivering) {
  const uint64_t base = EnvSeedBase();
  const int count = std::max(1, EnvPlanCount(120) / 10);
  for (int i = 0; i < count; ++i) {
    DrawnWorld world = DrawWorld(base + 33000 + static_cast<uint64_t>(i));
    const OverlayTopology topology = GenerateTopology(world.params);
    StripedTrees trees = TreeBuilder::Build(topology, world.stripes, world.policy);

    ChurnStormOptions storm;
    storm.receiver_count = world.params.receivers;
    storm.start = Millis(100);
    storm.horizon = Millis(400);
    storm.min_events = 16;
    storm.max_events = 48;
    storm.min_away = Millis(20);
    storm.max_away = Millis(150);
    storm.permanent_fraction = 0.1;
    const FaultPlan plan = RandomChurnPlan(world.params.seed ^ 0xbeef, storm);

    Scheduler sched;
    OverlayMulticast multicast(&sched, &topology, &trees, MulticastParams{}, world.params.seed);
    OverlayChurnDriver churn(&sched, &multicast, plan);
    multicast.Start(Millis(900));
    churn.Start();

    // Let the storm and every scheduled repair play out, then snapshot and
    // verify the tail of the emission reaches every present receiver.
    sched.RunUntil(Millis(700));
    std::vector<int64_t> delivered_mid(static_cast<size_t>(world.params.receivers), 0);
    for (int r = 0; r < world.params.receivers; ++r) {
      delivered_mid[static_cast<size_t>(r)] = multicast.stats(r).delivered;
    }
    sched.RunUntilQuiescent();

    const std::string what = Describe(world) + " plan=\"" + FormatFaultPlan(plan) + "\"";
    ExpectStructuralInvariants(trees, what);
    EXPECT_EQ(multicast.repair().overflow(), 0) << what;
    for (int r = 0; r < world.params.receivers; ++r) {
      if (trees.absent(r)) {
        continue;
      }
      // Present after the storm means receiving after the storm (P8's
      // reconvergence flavor, transitively through the repaired trees).
      EXPECT_GT(multicast.stats(r).delivered, delivered_mid[static_cast<size_t>(r)])
          << what << " r=" << r;
    }
  }
}

TEST(OverlayProperty, CityScaleStripedStormReplaysBitExact) {
  // The ISSUE 7 acceptance scenario: 10^4 receivers, k=2 striping, a
  // 100+-event seeded storm — run once from the generated plan and once
  // from the plan's TEXT (format -> parse), which must reproduce the exact
  // observable outcome hash.
  TopologyParams params;
  params.seed = 1993;
  params.receivers = 10'000;
  const uint64_t storm_seed = 7 + EnvSeedBase();

  ChurnStormOptions storm;
  storm.receiver_count = params.receivers;
  storm.start = Seconds(1);
  storm.horizon = Millis(1600);
  storm.min_events = 100;
  storm.max_events = 128;
  storm.permanent_fraction = 0.05;
  const FaultPlan plan = RandomChurnPlan(storm_seed, storm);
  ASSERT_GE(plan.events.size(), 100u);

  FaultPlan replayed;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan(FormatFaultPlan(plan), &replayed, &error)) << error;

  auto run = [&](const FaultPlan& p) {
    OverlayTopology topology = GenerateTopology(params);
    StripedTrees trees = TreeBuilder::Build(topology, 2, TreePolicy::kBalancedFanout);
    Scheduler sched;
    OverlayMulticast multicast(&sched, &topology, &trees, MulticastParams{}, 404);
    OverlayChurnDriver churn(&sched, &multicast, p);
    multicast.Start(Millis(1900));
    churn.Start();
    sched.RunUntilQuiescent();
    ExpectStructuralInvariants(trees, "city-scale storm seed=" + std::to_string(storm_seed));
    EXPECT_GT(multicast.repairs(), 0);
    EXPECT_EQ(multicast.repair().overflow(), 0);
    return multicast.RunHash();
  };

  const uint64_t first = run(plan);
  const uint64_t second = run(replayed);
  EXPECT_EQ(first, second) << "text round-trip replay diverged; plan=\""
                           << FormatFaultPlan(plan) << "\"";
}

}  // namespace
}  // namespace pandora
