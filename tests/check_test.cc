// Death tests for PANDORA_CHECK/PANDORA_DCHECK and the buffer-refcount
// invariants they guard.
//
// This translation unit is compiled with -DNDEBUG (see tests/CMakeLists.txt)
// to prove the release-build contract: PANDORA_CHECK still aborts, and
// PANDORA_DCHECK becomes a true no-op that does not evaluate its operands.
#include <utility>

#include <gtest/gtest.h>

#include "src/buffer/pool.h"
#include "src/runtime/check.h"
#include "src/runtime/scheduler.h"

namespace pandora {

// Test-only access to BufferPool's private refcount mutators, so the death
// tests can commit the violations that SegmentRef's RAII normally prevents.
class BufferPoolPeer {
 public:
  static void IncRef(BufferPool* pool, int32_t index) { pool->IncRef(index); }
  static void DecRef(BufferPool* pool, int32_t index) { pool->DecRef(index); }
};

namespace {

TEST(PandoraCheckTest, PassingCheckIsSilent) {
  PANDORA_CHECK(2 + 2 == 4);
  PANDORA_CHECK(true, "with a message");
}

TEST(PandoraCheckDeathTest, FailingCheckAbortsEvenUnderNdebug) {
#ifndef NDEBUG
  GTEST_SKIP() << "this TU is meant to build with NDEBUG; check CMakeLists";
#endif
  EXPECT_DEATH(PANDORA_CHECK(1 == 2), "PANDORA_CHECK failed: 1 == 2");
}

TEST(PandoraCheckDeathTest, MessageAppearsInFailureOutput) {
  EXPECT_DEATH(PANDORA_CHECK(false, "the turbo encabulator is misaligned"),
               "turbo encabulator is misaligned");
}

TEST(PandoraCheckDeathTest, FailureReportsFileAndLine) {
  EXPECT_DEATH(PANDORA_CHECK(false), "check_test.cc:");
}

TEST(PandoraCheckTest, DcheckDoesNotEvaluateOperandsUnderNdebug) {
  int evaluations = 0;
  auto probe = [&evaluations] {
    ++evaluations;
    return true;
  };
  PANDORA_DCHECK(probe());
#ifdef NDEBUG
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_EQ(evaluations, 1);
#endif
}

TEST(PandoraCheckTest, CheckAlwaysEvaluatesItsOperandExactlyOnce) {
  int evaluations = 0;
  PANDORA_CHECK([&evaluations] {
    ++evaluations;
    return true;
  }());
  EXPECT_EQ(evaluations, 1);
}

// --- Refcount invariants (the paper's allocator, section 3.4) --------------

TEST(BufferPoolDeathTest, DoubleFreeAborts) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 2);
  auto ref = pool.TryAllocate();
  ASSERT_TRUE(ref.has_value());
  int32_t index = ref->index();
  EXPECT_DEATH(
      {
        BufferPoolPeer::DecRef(&pool, index);  // drops the last reference
        BufferPoolPeer::DecRef(&pool, index);  // double free
      },
      "already freed|refs > 0");
}

TEST(BufferPoolDeathTest, IncRefOnFreedBufferAborts) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 2);
  int32_t index;
  {
    auto ref = pool.TryAllocate();
    ASSERT_TRUE(ref.has_value());
    index = ref->index();
  }  // ref released: slot is back on the free list with refs == 0
  EXPECT_DEATH(BufferPoolPeer::IncRef(&pool, index), "already freed|refs > 0");
}

TEST(BufferPoolDeathTest, OutOfRangeIndexAborts) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 2);
  EXPECT_DEATH(BufferPoolPeer::IncRef(&pool, 99), "out of range");
}

TEST(BufferPoolDeathTest, DereferencingEmptySegmentRefAborts) {
  SegmentRef empty;
  EXPECT_DEATH((void)empty.get(), "empty buffer reference");
}

}  // namespace
}  // namespace pandora
