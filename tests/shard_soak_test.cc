// Thread-sanitizer soak for the sharded M:N scheduler.
//
// This suite exists to put every cross-thread edge of ShardSet under load
// while TSan watches (the PANDORA_TSAN CI leg): the coordinator/worker
// barrier handshake, mailbox production from many shards draining into many
// wheels, per-thread FramePool recycling under heavy spawn churn, kill
// sweeps racing nothing (they run inside a shard's own window), and the
// merged trace export reading every shard's buffer after the barriers have
// quiesced.  The assertions are deliberately light — the shard-invariance
// golden test owns exactness; under TSan this file's job is to make every
// racy interleaving REACHABLE, and let the sanitizer fail the run if any
// access is unsynchronised.
//
// Kept in the plain tier-1 run as well (it is cheap without instrumentation
// and doubles as an uneven-assignment regression test: shards % threads != 0
// exercises workers owning different shard counts).
#include <gtest/gtest.h>

#include "src/fault/plan.h"
#include "src/runtime/shard_set.h"
#include "src/runtime/time.h"
#include "tests/shard_harness.h"

namespace pandora {
namespace {

TEST(ShardSoak, StormWithChurnAndChaosUnderFullThreading) {
  RandomPlanOptions plan_options;
  plan_options.start = Millis(50);
  plan_options.horizon = Millis(600);
  plan_options.min_events = 6;
  plan_options.max_events = 10;
  plan_options.box_count = 48;
  plan_options.call_count = 4;
  plan_options.min_episode = Millis(40);
  plan_options.max_episode = Millis(150);
  const FaultPlan plan = RandomFaultPlan(0x50AC, plan_options);

  ShardStormOptions opt;
  opt.shards = 8;
  opt.threads = 8;
  opt.total_actors = 48;
  opt.seed = 0x50AC;
  opt.duration = Millis(800);
  opt.plan = &plan;

  const ShardStormResult result = RunShardStorm(opt);
  EXPECT_GT(result.deliveries, 1000u);
  EXPECT_GT(result.cross_shard_messages, 0u);
  EXPECT_GT(result.windows, 0u);
}

TEST(ShardSoak, UnevenShardToWorkerAssignment) {
  // 8 shards on 3 workers: worker 0 owns shards {0,3,6}, worker 1 {1,4,7},
  // worker 2 {2,5}.  The result must match the sequential run anyway — and
  // under TSan the lopsided finish times stress the done_cv_ handshake.
  ShardStormOptions opt;
  opt.shards = 8;
  opt.threads = 3;
  opt.total_actors = 24;
  opt.seed = 0x0DD;
  opt.duration = Millis(600);

  ShardStormOptions sequential = opt;
  sequential.threads = 1;

  const ShardStormResult uneven = RunShardStorm(opt);
  const ShardStormResult seq = RunShardStorm(sequential);
  EXPECT_TRUE(uneven == seq);
  EXPECT_GT(uneven.deliveries, 0u);
}

TEST(ShardSoak, RepeatedWorldsRecycleCleanly) {
  // Build and tear down threaded worlds back to back: worker pools started
  // and joined, slabs/wheels/outboxes destroyed while another world's
  // threads run.  Leaks or use-after-join here are TSan/ASan food.
  uint64_t previous = 0;
  for (int round = 0; round < 3; ++round) {
    ShardStormOptions opt;
    opt.shards = 6;
    opt.threads = 6;
    opt.total_actors = 18;
    opt.seed = 0x7EA + static_cast<uint64_t>(round);
    opt.duration = Millis(300);
    const ShardStormResult result = RunShardStorm(opt);
    EXPECT_GT(result.deliveries, 0u);
    EXPECT_NE(result.merged_hash, previous);  // seeds differ, storms differ
    previous = result.merged_hash;
  }
}

TEST(ShardSoak, MergedTraceExportAfterThreadedRun) {
  // Tracing writes per-shard buffers from worker threads; the merge reads
  // them all on the coordinator after the final barrier.  TSan checks the
  // happens-before edge; the JSON shape check is incidental.
  ShardSetOptions set_options;
  set_options.shards = 4;
  set_options.threads = 4;
  ShardSet set(set_options);
  set.EnableTrace(1024);
  for (int s = 0; s < 4; ++s) {
    auto ticker = [](Scheduler* sched, int rounds) -> Process {
      for (int i = 0; i < rounds; ++i) {
        co_await sched->WaitFor(Micros(500));
      }
    };
    set.shard(s).Spawn(ticker(&set.shard(s), 50), "ticker");
  }
  set.RunUntil(Millis(40));
  const std::string json = set.ExportMergedTraceJson();
  EXPECT_NE(json.find("\"s0:"), std::string::npos);
  EXPECT_NE(json.find("\"s3:"), std::string::npos);
  set.Shutdown();
}

}  // namespace
}  // namespace pandora
