// Tests for Pandora segment formats, wire codec, sequence tracking and
// repository repacking (paper sections 3.2, 3.3, 3.8).
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/segment/audio_block.h"
#include "src/segment/constants.h"
#include "src/segment/repack.h"
#include "src/segment/segment.h"
#include "src/segment/sequence.h"
#include "src/segment/wire.h"

namespace pandora {
namespace {

std::vector<uint8_t> Ramp(size_t n, uint8_t start = 0) {
  std::vector<uint8_t> data(n);
  std::iota(data.begin(), data.end(), start);
  return data;
}

TEST(SegmentTest, AudioHeaderIs36Bytes) {
  // The paper's repository format: "320 bytes of data plus a new 36 byte
  // header" — 20 common + 16 audio-specific.
  EXPECT_EQ(kCommonHeaderBytes, 20u);
  EXPECT_EQ(kAudioHeaderBytes, 16u);
  EXPECT_EQ(kAudioSegmentHeaderBytes, 36u);
}

TEST(SegmentTest, MakeAudioSegmentFillsFields) {
  Segment segment = MakeAudioSegment(7, 42, Millis(10), Ramp(32));
  EXPECT_EQ(segment.stream, 7u);
  EXPECT_EQ(segment.header.sequence, 42u);
  EXPECT_TRUE(segment.is_audio());
  EXPECT_EQ(segment.AudioBlockCount(), 2);
  EXPECT_EQ(segment.audio().data_length, 32u);
  EXPECT_EQ(segment.EncodedSize(), 36u + 32u);
  EXPECT_EQ(segment.header.length, 68u);
  // 10ms = 10000us = 156.25 ticks of 64us -> 156 -> 9984us.
  EXPECT_EQ(segment.source_time(), (Millis(10) / 64) * 64);
}

TEST(SegmentTest, DefaultSegmentIs4msTwoBlocks) {
  EXPECT_EQ(kDefaultBlocksPerSegment, 2);
  EXPECT_EQ(kDefaultBlocksPerSegment * kAudioBlockDuration, Millis(4));
  EXPECT_EQ(kMaxBlocksPerSegment * kAudioBlockDuration, Millis(24));
  EXPECT_EQ(kRepositoryBlocksPerSegment * kAudioBlockBytes, kRepositorySegmentBytes);
  EXPECT_EQ(kRepositoryBlocksPerSegment * kAudioBlockDuration, kRepositorySegmentDuration);
}

TEST(WireTest, AudioRoundTripWithStreamField) {
  Segment segment = MakeAudioSegment(9, 3, Millis(2), Ramp(64));
  std::vector<uint8_t> bytes = EncodeSegment(segment, StreamField::kIncluded);
  EXPECT_EQ(bytes.size(), segment.EncodedSize() + 4);

  DecodeResult decoded = DecodeSegment(bytes, StreamField::kIncluded);
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(decoded.segment.stream, 9u);
  EXPECT_EQ(decoded.segment.header.sequence, 3u);
  EXPECT_EQ(decoded.segment.header.timestamp, segment.header.timestamp);
  EXPECT_EQ(decoded.segment.payload, segment.payload);
  EXPECT_EQ(decoded.segment.audio().sampling_rate, kAudioSampleRateHz);
}

TEST(WireTest, AudioRoundTripViaVci) {
  Segment segment = MakeAudioSegment(9, 3, Millis(2), Ramp(32));
  std::vector<uint8_t> bytes = EncodeSegment(segment, StreamField::kOmitted);
  EXPECT_EQ(bytes.size(), segment.EncodedSize());
  DecodeResult decoded = DecodeSegment(bytes, StreamField::kOmitted, /*vci_stream=*/55);
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(decoded.segment.stream, 55u);  // recovered from the VCI
  EXPECT_EQ(decoded.segment.payload, segment.payload);
}

TEST(WireTest, VideoRoundTripWithCompressionArgs) {
  VideoHeader vh;
  vh.frame_number = 100;
  vh.segments_in_frame = 4;
  vh.segment_number = 2;
  vh.x_offset = 16;
  vh.y_offset = 32;
  vh.pixel_format = PixelFormat::kGrey8;
  vh.compression_type = VideoCoding::kDpcmSubsampled;
  vh.x_width = 128;
  vh.start_line_y = 64;
  vh.line_count = 8;
  Segment segment = MakeVideoSegment(4, 17, Millis(40), vh, Ramp(128 * 8));
  segment.compression_args = {2, 7};  // e.g. sub-sample ratio, quantiser
  segment.header.length = static_cast<uint32_t>(segment.EncodedSize());

  std::vector<uint8_t> bytes = EncodeSegment(segment);
  DecodeResult decoded = DecodeSegment(bytes);
  ASSERT_TRUE(decoded.ok) << decoded.error;
  const VideoHeader& got = decoded.segment.video();
  EXPECT_EQ(got.frame_number, 100u);
  EXPECT_EQ(got.segments_in_frame, 4u);
  EXPECT_EQ(got.segment_number, 2u);
  EXPECT_EQ(got.x_width, 128u);
  EXPECT_EQ(got.line_count, 8u);
  EXPECT_EQ(decoded.segment.compression_args, (std::vector<uint32_t>{2, 7}));
  EXPECT_EQ(decoded.segment.payload.size(), 1024u);
}

TEST(WireTest, RejectsBadVersion) {
  Segment segment = MakeAudioSegment(1, 0, 0, Ramp(16));
  std::vector<uint8_t> bytes = EncodeSegment(segment);
  bytes[4] ^= 0xff;  // corrupt version id (after 4-byte stream field)
  DecodeResult decoded = DecodeSegment(bytes);
  EXPECT_FALSE(decoded.ok);
  EXPECT_EQ(decoded.error, "bad version id");
}

TEST(WireTest, RejectsTruncation) {
  Segment segment = MakeAudioSegment(1, 0, 0, Ramp(32));
  std::vector<uint8_t> bytes = EncodeSegment(segment);
  for (size_t cut : {size_t{3}, size_t{10}, size_t{30}, bytes.size() - 1}) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeSegment(truncated).ok) << "cut=" << cut;
  }
}

TEST(WireTest, RejectsLengthMismatch) {
  Segment segment = MakeAudioSegment(1, 0, 0, Ramp(32));
  std::vector<uint8_t> bytes = EncodeSegment(segment);
  bytes.push_back(0);  // trailing garbage
  EXPECT_FALSE(DecodeSegment(bytes).ok);
}

TEST(WireTest, RejectsBadSegmentNumbering) {
  VideoHeader vh;
  vh.segments_in_frame = 2;
  vh.segment_number = 2;  // out of range
  vh.x_width = 4;
  vh.line_count = 1;
  Segment segment = MakeVideoSegment(1, 0, 0, vh, Ramp(4));
  std::vector<uint8_t> bytes = EncodeSegment(segment);
  DecodeResult decoded = DecodeSegment(bytes);
  EXPECT_FALSE(decoded.ok);
}

TEST(SequenceTest, InOrderStream) {
  SequenceTracker tracker;
  EXPECT_EQ(tracker.Observe(10).outcome, SequenceTracker::Outcome::kFirst);
  for (uint32_t s = 11; s < 20; ++s) {
    EXPECT_EQ(tracker.Observe(s).outcome, SequenceTracker::Outcome::kInOrder);
  }
  EXPECT_EQ(tracker.received(), 10u);
  EXPECT_EQ(tracker.missing_total(), 0u);
  EXPECT_DOUBLE_EQ(tracker.LossFraction(), 0.0);
}

TEST(SequenceTest, DetectsGapAsSoonAsLaterArrives) {
  SequenceTracker tracker;
  tracker.Observe(0);
  auto obs = tracker.Observe(4);  // 1,2,3 missing
  EXPECT_EQ(obs.outcome, SequenceTracker::Outcome::kGap);
  EXPECT_EQ(obs.missing, 3u);
  EXPECT_EQ(tracker.missing_total(), 3u);
  EXPECT_EQ(tracker.max_gap(), 3u);
  EXPECT_EQ(tracker.Observe(5).outcome, SequenceTracker::Outcome::kInOrder);
}

TEST(SequenceTest, DuplicateAndStale) {
  SequenceTracker tracker;
  tracker.Observe(0);
  tracker.Observe(1);
  EXPECT_EQ(tracker.Observe(1).outcome, SequenceTracker::Outcome::kDuplicate);
  EXPECT_EQ(tracker.Observe(0).outcome, SequenceTracker::Outcome::kStale);
  EXPECT_EQ(tracker.duplicates(), 1u);
  EXPECT_EQ(tracker.stale(), 1u);
}

TEST(SequenceTest, WrapAround) {
  SequenceTracker tracker;
  tracker.Observe(0xFFFFFFFEu);
  EXPECT_EQ(tracker.Observe(0xFFFFFFFFu).outcome, SequenceTracker::Outcome::kInOrder);
  EXPECT_EQ(tracker.Observe(0u).outcome, SequenceTracker::Outcome::kInOrder);
  EXPECT_EQ(tracker.Observe(1u).outcome, SequenceTracker::Outcome::kInOrder);
}

TEST(SequenceTest, BitFlippedSequenceIsSuspectAndStreamSurvives) {
  SequenceTracker tracker;
  tracker.Observe(100);
  tracker.Observe(101);
  // A bit flip in the (checksum-less) sequence field: an implausible jump.
  // The segment is discarded but the expectation must survive, else every
  // genuine segment afterwards would read as stale forever.
  EXPECT_EQ(tracker.Observe(101 | (1u << 30)).outcome, SequenceTracker::Outcome::kSuspect);
  EXPECT_EQ(tracker.Observe(102).outcome, SequenceTracker::Outcome::kInOrder);
  EXPECT_EQ(tracker.Observe(103).outcome, SequenceTracker::Outcome::kInOrder);
  EXPECT_EQ(tracker.suspects(), 1u);
  EXPECT_EQ(tracker.resyncs(), 0u);
  EXPECT_EQ(tracker.missing_total(), 0u);
}

TEST(SequenceTest, GapWithinPlausibleJumpStillReportsGap) {
  SequenceTracker tracker;
  tracker.Observe(0);
  auto obs = tracker.Observe(4096);  // exactly at the plausibility boundary
  EXPECT_EQ(obs.outcome, SequenceTracker::Outcome::kGap);
  EXPECT_EQ(obs.missing, 4095u);
  EXPECT_EQ(tracker.suspects(), 0u);
}

TEST(SequenceTest, ConsecutiveSuspectsConfirmReorigination) {
  SequenceTracker tracker;
  tracker.Observe(5);
  tracker.Observe(6);
  // The sender re-originated far away (e.g. restart).  The first arrival in
  // the new space is suspect; its direct successor confirms, re-anchoring at
  // the cost of exactly one segment and no gap accounting.
  EXPECT_EQ(tracker.Observe(900000).outcome, SequenceTracker::Outcome::kSuspect);
  EXPECT_EQ(tracker.Observe(900001).outcome, SequenceTracker::Outcome::kResync);
  EXPECT_EQ(tracker.Observe(900002).outcome, SequenceTracker::Outcome::kInOrder);
  EXPECT_EQ(tracker.suspects(), 1u);
  EXPECT_EQ(tracker.resyncs(), 1u);
  EXPECT_EQ(tracker.missing_total(), 0u);
}

TEST(SequenceTest, NonConsecutiveSuspectsDoNotResync) {
  SequenceTracker tracker;
  tracker.Observe(5);
  // Two independent bit flips land in different places: neither confirms
  // the other, and the original expectation still stands.
  EXPECT_EQ(tracker.Observe(1u << 29).outcome, SequenceTracker::Outcome::kSuspect);
  EXPECT_EQ(tracker.Observe(1u << 27).outcome, SequenceTracker::Outcome::kSuspect);
  EXPECT_EQ(tracker.Observe(6).outcome, SequenceTracker::Outcome::kInOrder);
  EXPECT_EQ(tracker.suspects(), 2u);
  EXPECT_EQ(tracker.resyncs(), 0u);
}

TEST(AudioBlockTest, SplitReconstructsTimes) {
  Segment segment = MakeAudioSegment(1, 0, Millis(64), Ramp(48));
  std::vector<AudioBlock> blocks = SplitIntoBlocks(segment);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].source_time, Millis(64));
  EXPECT_EQ(blocks[1].source_time, Millis(66));
  EXPECT_EQ(blocks[2].source_time, Millis(68));
  EXPECT_EQ(blocks[0].samples[0], 0);
  EXPECT_EQ(blocks[1].samples[0], 16);
  EXPECT_EQ(blocks[2].samples[15], 47);
}

TEST(RepackTest, MergesLiveSegmentsInto40msSegments) {
  AudioRepacker repacker(3);
  std::vector<Segment> out;
  // 30 live segments of 2 blocks = 60 blocks = 3 x 20-block segments.
  uint32_t seq = 0;
  Time t = 0;
  for (int i = 0; i < 30; ++i) {
    Segment live = MakeAudioSegment(3, seq++, t, Ramp(32, static_cast<uint8_t>(i)));
    t += Millis(4);
    for (Segment& s : repacker.Push(live)) {
      out.push_back(std::move(s));
    }
  }
  EXPECT_FALSE(repacker.Flush().has_value());
  ASSERT_EQ(out.size(), 3u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].payload.size(), static_cast<size_t>(kRepositorySegmentBytes));
    EXPECT_EQ(out[i].header.sequence, static_cast<uint32_t>(i));
    EXPECT_EQ(out[i].audio().compression, AudioCoding::kRepacked);
    EXPECT_EQ(out[i].EncodedSize(), 36u + 320u);  // the paper's exact numbers
  }
  // Timestamps advance by 40ms per stored segment.
  EXPECT_EQ(out[1].source_time() - out[0].source_time(), Millis(40));
  EXPECT_EQ(out[2].source_time() - out[1].source_time(), Millis(40));
}

TEST(RepackTest, AcceptsMixedSegmentSizesAndFlushesRemainder) {
  AudioRepacker repacker(5);
  size_t emitted = 0;
  uint32_t seq = 0;
  Time t = 0;
  // Mixture of 1..12 block segments ("Incoming segments of any mixture of
  // sizes are accepted").
  int total_blocks = 0;
  for (int blocks : {1, 12, 2, 7, 3, 12, 5, 1, 2}) {
    total_blocks += blocks;
    Segment live =
        MakeAudioSegment(5, seq++, t, Ramp(static_cast<size_t>(blocks) * kAudioBlockBytes));
    t += blocks * kAudioBlockDuration;
    emitted += repacker.Push(live).size();
  }
  auto tail = repacker.Flush();
  int whole = total_blocks / kRepositoryBlocksPerSegment;
  EXPECT_EQ(emitted, static_cast<size_t>(whole));
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->payload.size(),
            static_cast<size_t>(total_blocks % kRepositoryBlocksPerSegment) * kAudioBlockBytes);
}

TEST(RepackTest, UnpackerRestoresLiveSegments) {
  // Round trip: live -> repository -> live(2 blocks each), byte-identical.
  AudioRepacker repacker(8);
  AudioUnpacker unpacker(8, kDefaultBlocksPerSegment);
  std::vector<uint8_t> original;
  std::vector<Segment> stored;
  uint32_t seq = 0;
  Time t = Millis(100);
  for (int i = 0; i < 10; ++i) {
    auto payload = Ramp(64, static_cast<uint8_t>(3 * i));
    original.insert(original.end(), payload.begin(), payload.end());
    Segment live = MakeAudioSegment(8, seq++, t, payload);
    t += Millis(8);
    for (Segment& s : repacker.Push(live)) {
      stored.push_back(std::move(s));
    }
  }
  if (auto tail = repacker.Flush()) {
    stored.push_back(std::move(*tail));
  }

  std::vector<uint8_t> restored;
  Time first_live_time = -1;
  for (const Segment& s : stored) {
    for (const Segment& live : unpacker.Push(s)) {
      if (first_live_time < 0) {
        first_live_time = live.source_time();
      }
      EXPECT_EQ(live.AudioBlockCount(), kDefaultBlocksPerSegment);
      restored.insert(restored.end(), live.payload.begin(), live.payload.end());
    }
  }
  if (auto tail = unpacker.Flush()) {
    restored.insert(restored.end(), tail->payload.begin(), tail->payload.end());
  }
  EXPECT_EQ(restored, original);
  EXPECT_EQ(first_live_time, (Millis(100) / 64) * 64);
}

TEST(RepackTest, HeaderOverheadShrinksWithBlockCount) {
  // E13's shape: 36-byte headers dominate 2ms segments, are negligible at
  // the repository's 40ms.
  double live_min = AudioHeaderOverhead(1);
  double live_default = AudioHeaderOverhead(kDefaultBlocksPerSegment);
  double repo = AudioHeaderOverhead(kRepositoryBlocksPerSegment);
  EXPECT_NEAR(live_min, 36.0 / 52.0, 1e-9);
  EXPECT_GT(live_default, repo);
  EXPECT_LT(repo, 0.11);
  EXPECT_GT(live_min, 0.6);
}

class RepackBlockCountTest : public ::testing::TestWithParam<int> {};

TEST_P(RepackBlockCountTest, RoundTripPreservesEveryByteForAnyBlockCount) {
  const int blocks = GetParam();
  AudioRepacker repacker(1);
  AudioUnpacker unpacker(1, blocks);
  std::vector<uint8_t> original;
  std::vector<uint8_t> restored;
  uint32_t seq = 0;
  for (int i = 0; i < 50; ++i) {
    auto payload = Ramp(static_cast<size_t>(blocks) * kAudioBlockBytes, static_cast<uint8_t>(i));
    original.insert(original.end(), payload.begin(), payload.end());
    Segment live = MakeAudioSegment(1, seq++, i * Millis(2) * blocks, payload);
    for (const Segment& stored : repacker.Push(live)) {
      for (const Segment& out : unpacker.Push(stored)) {
        restored.insert(restored.end(), out.payload.begin(), out.payload.end());
      }
    }
  }
  if (auto tail = repacker.Flush()) {
    for (const Segment& out : unpacker.Push(*tail)) {
      restored.insert(restored.end(), out.payload.begin(), out.payload.end());
    }
  }
  if (auto tail = unpacker.Flush()) {
    restored.insert(restored.end(), tail->payload.begin(), tail->payload.end());
  }
  EXPECT_EQ(restored, original);
}

INSTANTIATE_TEST_SUITE_P(AllLiveBlockCounts, RepackBlockCountTest,
                         ::testing::Values(1, 2, 3, 5, 7, 12));

}  // namespace
}  // namespace pandora
