// Tests for the command/report control plane (paper sections 1.1, 3.8).
#include <gtest/gtest.h>

#include "src/control/command.h"
#include "src/control/report.h"
#include "src/runtime/scheduler.h"

namespace pandora {
namespace {

TEST(ReporterTest, FirstReportEmitsImmediately) {
  Scheduler sched;
  ReportCollector collector;
  Reporter reporter(&sched, &collector, "boxA.switch");
  reporter.Report("drops", ReportSeverity::kWarning, "dropped segments", 5);
  ASSERT_EQ(collector.size(), 1u);
  EXPECT_EQ(collector.log()[0].source, "boxA.switch");
  EXPECT_EQ(collector.log()[0].kind, "drops");
  EXPECT_EQ(collector.log()[0].value, 5);
  EXPECT_EQ(collector.log()[0].suppressed, 0u);
}

TEST(ReporterTest, MinimumPeriodSuppressesRepeats) {
  // "subject to a minimum period between reports for any particular sort of
  // error" (section 3.8).
  Scheduler sched;
  ReportCollector collector;
  Reporter reporter(&sched, &collector, "p", Seconds(1));

  reporter.Report("overload", ReportSeverity::kError, "x");
  for (int i = 0; i < 10; ++i) {
    reporter.Report("overload", ReportSeverity::kError, "x");
  }
  EXPECT_EQ(collector.size(), 1u);
  EXPECT_EQ(reporter.suppressed_total(), 10u);

  sched.RunFor(Seconds(2));
  reporter.Report("overload", ReportSeverity::kError, "x");
  ASSERT_EQ(collector.size(), 2u);
  // Folded-in count of what was swallowed.
  EXPECT_EQ(collector.log()[1].suppressed, 10u);
  EXPECT_EQ(collector.CountOf("overload"), 12u);
}

TEST(ReporterTest, DifferentKindsRateLimitedIndependently) {
  Scheduler sched;
  ReportCollector collector;
  Reporter reporter(&sched, &collector, "p", Seconds(1));
  reporter.Report("a", ReportSeverity::kInfo, "1");
  reporter.Report("b", ReportSeverity::kInfo, "2");
  reporter.Report("a", ReportSeverity::kInfo, "3");
  EXPECT_EQ(collector.size(), 2u);
}

TEST(ReporterTest, ReportNowBypassesRateLimit) {
  Scheduler sched;
  ReportCollector collector;
  Reporter reporter(&sched, &collector, "p", Seconds(10));
  reporter.ReportNow("status", ReportSeverity::kInfo, "length=3");
  reporter.ReportNow("status", ReportSeverity::kInfo, "length=4");
  EXPECT_EQ(collector.size(), 2u);
}

TEST(ReporterTest, NullSinkIsSafe) {
  Scheduler sched;
  Reporter reporter(&sched, nullptr, "p");
  reporter.Report("x", ReportSeverity::kInfo, "no sink");
  reporter.ReportNow("x", ReportSeverity::kInfo, "no sink");
  EXPECT_EQ(reporter.emitted(), 0u);
}

TEST(ReportCollectorTest, FormatRendersLogLines) {
  Scheduler sched;
  ReportCollector collector;
  Reporter reporter(&sched, &collector, "boxA.audio");
  sched.RunFor(Millis(5));
  reporter.Report("clawback.limit", ReportSeverity::kError, "over limit", 3);
  std::string text = collector.Format();
  EXPECT_NE(text.find("ERROR"), std::string::npos);
  EXPECT_NE(text.find("boxA.audio"), std::string::npos);
  EXPECT_NE(text.find("clawback.limit"), std::string::npos);
  EXPECT_NE(text.find("value=3"), std::string::npos);
}

TEST(CommandTest, CommandChannelCarriesCommands) {
  Scheduler sched;
  CommandChannel commands(&sched, "cmd");
  Command got;
  auto receiver = [](CommandChannel* c, Command* out) -> Process {
    *out = co_await c->Receive();
  };
  auto sender = [](CommandChannel* c) -> Process {
    Command cmd;
    cmd.verb = CommandVerb::kResizeBuffer;
    cmd.stream = 12;
    cmd.arg0 = 64;
    co_await c->Send(cmd);
  };
  sched.Spawn(receiver(&commands, &got), "rx");
  sched.Spawn(sender(&commands), "tx");
  sched.RunUntilQuiescent();
  EXPECT_EQ(got.verb, CommandVerb::kResizeBuffer);
  EXPECT_EQ(got.stream, 12u);
  EXPECT_EQ(got.arg0, 64);
}

}  // namespace
}  // namespace pandora
