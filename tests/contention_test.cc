// Resource-contention behaviours: the repository's reversed principle 1
// (recording beats playback for the disk) and decoupling-buffer capacity
// properties under sustained pressure.
#include <vector>

#include <gtest/gtest.h>

#include "src/buffer/decoupling.h"
#include "src/buffer/pool.h"
#include "src/repository/repository.h"
#include "src/runtime/scheduler.h"
#include "src/segment/segment.h"

namespace pandora {
namespace {

TEST(RepositoryContentionTest, RecordingWinsTheDiskOverPlayback) {
  // "the incoming data streams should be recorded as accurately as
  // possible, even if that means degrading streams that are currently
  // being played out."  With a disk that can only just carry one stream,
  // the recording must stay complete while playback slips.
  Scheduler sched;
  BufferPool pool(&sched, "pool", 256);
  // A 68-byte segment every 4ms = 136 kbit/s per stream; disk fits ~1.5.
  Repository repo(&sched, {.name = "repo", .disk_bits_per_second = 200'000});
  ShutdownGuard guard(&sched);
  repo.Start();

  // Pre-store a recording to play back.
  repo.Arm(1);
  auto prefeed = [](Scheduler* s, Repository* repo, BufferPool* p) -> Process {
    for (uint32_t i = 0; i < 250; ++i) {
      auto maybe = p->TryAllocate();
      **maybe = MakeAudioSegment(1, i, s->now(), std::vector<uint8_t>(32, 1));
      SegmentRef ref = std::move(*maybe);
      co_await repo->input().Send(std::move(ref));
      (void)co_await repo->ready().Receive();
      co_await s->WaitFor(Millis(4));
    }
  };
  sched.Spawn(prefeed(&sched, &repo, &pool), "prefeed");
  sched.RunFor(Seconds(2));
  repo.Finish(1);
  ASSERT_EQ(repo.Find(1)->segments_received, 250u);

  // Now record stream 2 while playing stream 1 back, on the same disk.
  repo.Arm(2);
  Channel<SegmentRef> playout(&sched, "playout");
  std::vector<Time> playback_arrivals;
  auto sink = [](Scheduler* s, Channel<SegmentRef>* out, std::vector<Time>* when) -> Process {
    for (;;) {
      (void)co_await out->Receive();
      when->push_back(s->now());
    }
  };
  auto live_feed = [](Scheduler* s, Repository* repo, BufferPool* p) -> Process {
    for (uint32_t i = 0; i < 250; ++i) {
      auto maybe = p->TryAllocate();
      **maybe = MakeAudioSegment(2, i, s->now(), std::vector<uint8_t>(32, 2));
      SegmentRef ref = std::move(*maybe);
      co_await repo->input().Send(std::move(ref));
      (void)co_await repo->ready().Receive();
      co_await s->WaitFor(Millis(4));
    }
  };
  Time playback_start = sched.now();
  sched.Spawn(sink(&sched, &playout, &playback_arrivals), "sink");
  repo.Play(1, 10, &playout, &pool);
  sched.Spawn(live_feed(&sched, &repo, &pool), "live");
  sched.RunFor(Seconds(4));

  // The recording is COMPLETE despite the contended disk.
  ASSERT_NE(repo.Find(2), nullptr);
  EXPECT_EQ(repo.Find(2)->segments_received, 250u);
  // Playback slipped: the recording originally spanned ~1s of timestamps
  // (250 x 4ms), but its replay took appreciably longer than that.
  ASSERT_FALSE(playback_arrivals.empty());
  Duration playback_span = playback_arrivals.back() - playback_start;
  EXPECT_GT(playback_span, Millis(1300));
}

class DecouplingCapacityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DecouplingCapacityTest, PipelineDepthIsCapacityPlusOne) {
  // With no consumer, a plain buffer accepts exactly capacity + 1 segments
  // (the +1 parked in its output sender) and then exerts back pressure.
  const size_t capacity = GetParam();
  Scheduler sched;
  BufferPool pool(&sched, "pool", 64);
  DecouplingBuffer buffer(&sched, {.name = "d", .capacity = capacity});
  ShutdownGuard guard(&sched);
  buffer.Start();

  int sent = 0;
  auto producer = [](BufferPool* p, DecouplingBuffer* b, int* sent) -> Process {
    for (uint32_t i = 0; i < 40; ++i) {
      auto maybe = p->TryAllocate();
      if (!maybe.has_value()) {
        co_return;
      }
      **maybe = MakeAudioSegment(1, i, 0, std::vector<uint8_t>(16, 0));
      SegmentRef ref = std::move(*maybe);
      co_await b->input().Send(std::move(ref));
      ++*sent;
    }
  };
  sched.Spawn(producer(&pool, &buffer, &sent), "producer");
  sched.RunFor(Millis(5));
  EXPECT_EQ(static_cast<size_t>(sent), capacity + 1);
  EXPECT_TRUE(buffer.full());

  // Draining recovers everything in order.
  std::vector<uint32_t> got;
  auto consumer = [](DecouplingBuffer* b, std::vector<uint32_t>* got, size_t n) -> Process {
    for (size_t i = 0; i < n; ++i) {
      SegmentRef ref = co_await b->output().Receive();
      got->push_back(ref->header.sequence);
    }
  };
  sched.Spawn(consumer(&buffer, &got, capacity + 1), "consumer");
  sched.RunFor(Millis(5));
  ASSERT_EQ(got.size(), capacity + 1);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], i);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, DecouplingCapacityTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

}  // namespace
}  // namespace pandora
