# Mix-kernel vectorization gate: compiles tests/vectorize_check.cc at the
# production optimization level with GCC's vectorizer report enabled and
# fails unless the arithmetic passes of src/audio/mix_kernels.h still
# vectorize.  Run via ctest (registered in tests/CMakeLists.txt).
#
# Inputs: -DCXX=<compiler> -DSRC_DIR=<repo root> -DPROBE=<probe TU>
#         -DWORK_DIR=<scratch dir>

execute_process(
  COMMAND ${CXX} -std=c++20 -O2 -I${SRC_DIR} -fopt-info-vec-optimized
          -c ${PROBE} -o ${WORK_DIR}/vectorize_check.o
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(NOT rc EQUAL 0)
  message(FATAL_ERROR "vectorize probe failed to compile:\n${err}")
endif()

# GCC prints one "optimized: loop vectorized" line per vectorized loop, tagged
# with the mix_kernels.h source line.  AccumulateBlock and ClampBlock must
# both vectorize; the µ-law table passes are gathers and may legitimately
# stay scalar.
string(REGEX MATCHALL "mix_kernels\\.h:[0-9]+:[0-9]+: optimized: (loop|basic block part) vectorized"
       reports "${out}${err}")
list(LENGTH reports nvec)
if(nvec LESS 2)
  message(FATAL_ERROR
    "expected >= 2 vectorized mix-kernel loops (AccumulateBlock, ClampBlock), "
    "got ${nvec}.\nVectorizer output:\n${out}${err}")
endif()
message(STATUS "mix kernels vectorized: ${nvec} loops")
