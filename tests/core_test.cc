// Integration tests: whole Pandora boxes talking over the ATM fabric via
// the Simulation facade (paper sections 1.1, 4.1).
#include <gtest/gtest.h>

#include "src/core/box.h"
#include "src/core/simulation.h"

namespace pandora {
namespace {

PandoraBox::Options BoxOptions(const std::string& name, bool with_video = false) {
  PandoraBox::Options options;
  options.name = name;
  options.with_video = with_video;
  return options;
}

TEST(SimulationTest, OneWayAudioCallDeliversContinuousAudio) {
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a"));
  PandoraBox& b = sim.AddBox(BoxOptions("b"));
  sim.Start();
  StreamId stream = sim.SendAudio(a, b);
  sim.RunFor(Seconds(5));

  // ~2500 blocks captured at a; b plays nearly all of them.
  EXPECT_GT(b.codec_out().played_blocks(), 2400u);
  EXPECT_EQ(b.audio_receiver().total_missing(), 0u);
  const SequenceTracker* tracker = b.audio_receiver().TrackerFor(stream);
  ASSERT_NE(tracker, nullptr);
  EXPECT_GT(tracker->received(), 1200u);  // 4ms segments

  // Latency at the mixer: capture + segmentisation + links + clawback.
  const StatAccumulator* latency = b.mixer().LatencyFor(stream);
  ASSERT_NE(latency, nullptr);
  EXPECT_LT(latency->Mean(), 20000.0);
  EXPECT_GT(latency->Mean(), 3000.0);
}

TEST(SimulationTest, BidirectionalCallBothWaysFlow) {
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a"));
  PandoraBox& b = sim.AddBox(BoxOptions("b"));
  sim.Start();
  sim.SendAudio(a, b);
  sim.SendAudio(b, a);
  sim.RunFor(Seconds(3));
  EXPECT_GT(a.codec_out().played_blocks(), 1400u);
  EXPECT_GT(b.codec_out().played_blocks(), 1400u);
  EXPECT_EQ(a.audio_receiver().total_missing(), 0u);
  EXPECT_EQ(b.audio_receiver().total_missing(), 0u);
}

TEST(SimulationTest, VideoCallDisplaysRemoteCamera) {
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a", /*with_video=*/true));
  PandoraBox& b = sim.AddBox(BoxOptions("b", /*with_video=*/true));
  sim.Start();
  sim.SendVideo(a, b, Rect{0, 0, 64, 48}, /*rate_numer=*/1, /*rate_denom=*/1,
                /*segments_per_frame=*/4);
  sim.RunFor(Seconds(2));
  ASSERT_NE(b.display(), nullptr);
  EXPECT_GT(b.display()->frames_displayed(), 40u);
  EXPECT_EQ(b.display()->tears(), 0u);
  EXPECT_EQ(b.display()->undecodable_segments(), 0u);
}

TEST(SimulationTest, AudioLeadsOrMatchesVideo) {
  // Section 2.3: "It is also irritating if the video lags appreciably
  // behind the audio.  In the real world, we are used to seeing events
  // slightly before we hear them" — here we just require both to arrive
  // within tens of milliseconds on a quiet network.
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a", true));
  PandoraBox& b = sim.AddBox(BoxOptions("b", true));
  sim.Start();
  sim.SendAudio(a, b);
  sim.SendVideo(a, b, Rect{0, 0, 64, 48}, 1, 1, 4);
  sim.RunFor(Seconds(2));
  double audio_latency = b.mixer().all_latency().Mean();
  double video_latency = b.display()->frame_latency().Mean();
  EXPECT_LT(audio_latency, 20000.0);
  EXPECT_LT(video_latency, 60000.0);
}

TEST(SimulationTest, TannoyReachesEveryDestination) {
  // One microphone split to three boxes (section 4.1's tannoy command).
  Simulation sim;
  PandoraBox& src = sim.AddBox(BoxOptions("src"));
  PandoraBox& d1 = sim.AddBox(BoxOptions("d1"));
  PandoraBox& d2 = sim.AddBox(BoxOptions("d2"));
  PandoraBox& d3 = sim.AddBox(BoxOptions("d3"));
  sim.Start();
  sim.SendAudio(src, d1);
  sim.SplitAudioTo(src, src.mic_stream(), d2);
  sim.SplitAudioTo(src, src.mic_stream(), d3);
  sim.RunFor(Seconds(2));
  for (PandoraBox* box : {&d1, &d2, &d3}) {
    EXPECT_GT(box->codec_out().played_blocks(), 900u) << box->name();
    EXPECT_EQ(box->audio_receiver().total_missing(), 0u) << box->name();
  }
}

TEST(SimulationTest, MidCallSplitDoesNotDisturbFirstDestination) {
  // Principle 6 at system scale: add a destination 1s into the call; the
  // original destination's sequence stays gapless.
  Simulation sim;
  PandoraBox& src = sim.AddBox(BoxOptions("src"));
  PandoraBox& d1 = sim.AddBox(BoxOptions("d1"));
  PandoraBox& d2 = sim.AddBox(BoxOptions("d2"));
  sim.Start();
  StreamId at_d1 = sim.SendAudio(src, d1);
  sim.RunFor(Seconds(1));
  sim.SplitAudioTo(src, src.mic_stream(), d2);
  sim.RunFor(Seconds(1));
  const SequenceTracker* tracker = d1.audio_receiver().TrackerFor(at_d1);
  ASSERT_NE(tracker, nullptr);
  EXPECT_EQ(tracker->missing_total(), 0u);
  EXPECT_GT(d2.codec_out().played_blocks(), 400u);
}

TEST(SimulationTest, HangUpLeavesOtherCopiesUndisturbed) {
  // "closing down one of several destinations, should not affect the other
  // copies of that stream" — the second half of principle 6.
  Simulation sim;
  PandoraBox& src = sim.AddBox(BoxOptions("src"));
  PandoraBox& d1 = sim.AddBox(BoxOptions("d1"));
  PandoraBox& d2 = sim.AddBox(BoxOptions("d2"));
  sim.Start();
  StreamId at_d1 = sim.SendAudio(src, d1);
  StreamId at_d2 = sim.SplitAudioTo(src, src.mic_stream(), d2);
  sim.RunFor(Seconds(1));
  const SequenceTracker* t2 = d2.audio_receiver().TrackerFor(at_d2);
  ASSERT_NE(t2, nullptr);
  uint64_t d2_at_hangup = t2->received();
  EXPECT_GT(d2_at_hangup, 200u);

  sim.HangUpAudio(src, d2, at_d2);
  sim.RunFor(Seconds(1));

  // d1 never saw a gap; d2 stopped receiving at the hang-up.
  const SequenceTracker* t1 = d1.audio_receiver().TrackerFor(at_d1);
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t1->missing_total(), 0u);
  EXPECT_GT(t1->received(), 450u);
  EXPECT_LE(t2->received(), d2_at_hangup + 5);  // a few in-flight stragglers
}

TEST(SimulationTest, MutingEngagesOnLoudFarEnd) {
  Simulation sim;
  PandoraBox::Options a_options = BoxOptions("a");
  a_options.muting_enabled = true;
  a_options.mic = MicKind::kSilence;  // a listens
  PandoraBox& a = sim.AddBox(a_options);
  PandoraBox::Options b_options = BoxOptions("b");
  b_options.mic_amplitude = 12000.0;  // b talks loudly
  PandoraBox& b = sim.AddBox(b_options);
  sim.Start();
  sim.SendAudio(b, a);  // loud speech arrives at a's loudspeaker
  sim.SendAudio(a, b);  // a's mic stream is the one being muted
  sim.RunFor(Seconds(2));
  EXPECT_GE(a.muting().activations(), 1u);
  EXPECT_LT(a.muting().FactorAt(sim.now()), 1.0);
}

TEST(SimulationTest, RecordAndPlayBackViaRepository) {
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a"));
  PandoraBox::Options b_options = BoxOptions("b");
  b_options.with_repository = true;
  PandoraBox& b = sim.AddBox(b_options);
  sim.Start();

  StreamId stream = sim.SendAudio(a, b);
  sim.RecordStream(b, stream);
  sim.RunFor(Seconds(2));
  sim.FinishRecording(b, stream);

  const Repository::Recording* recording = b.repository()->Find(stream);
  ASSERT_NE(recording, nullptr);
  EXPECT_GT(recording->segments_received, 400u);
  EXPECT_TRUE(recording->repacked);
  EXPECT_LT(recording->stored_bytes, recording->raw_bytes);

  uint64_t played_before = b.codec_out().played_blocks();
  sim.PlayRecording(b, stream);
  sim.RunFor(Seconds(3));
  // Playback reached the loudspeaker alongside the (still running) live
  // stream; at least the recording's worth of extra blocks was mixed.
  EXPECT_GT(b.clawback_bank().TotalStats().pushes, played_before + 500);
}

TEST(SimulationTest, VideoRecordAndReplay) {
  // Video recording: the repository stores any segment type; only audio is
  // repacked.  Played back, the frames reach the display intact.
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a", /*with_video=*/true));
  PandoraBox::Options b_options = BoxOptions("b", /*with_video=*/true);
  b_options.with_repository = true;
  PandoraBox& b = sim.AddBox(b_options);
  sim.Start();

  StreamId video = sim.SendVideo(a, b, Rect{0, 0, 64, 48}, 1, 1, 4);
  sim.RecordStream(b, video, /*audio=*/false);
  sim.RunFor(Seconds(2));
  sim.FinishRecording(b, video);

  const Repository::Recording* recording = b.repository()->Find(video);
  ASSERT_NE(recording, nullptr);
  EXPECT_GT(recording->segments_received, 150u);  // ~48 frames x 4 segments
  EXPECT_FALSE(recording->repacked);              // repacking is audio-only

  uint64_t frames_before = b.display()->frames_displayed();
  sim.PlayVideoRecording(b, video);
  sim.RunFor(Seconds(3));
  // The ~48 recorded frames replayed on top of the still-live stream.
  EXPECT_GT(b.display()->frames_displayed(), frames_before + 40);
}

TEST(SimulationTest, ReportsReachTheHostLog) {
  Simulation sim;
  PandoraBox& a = sim.AddBox(BoxOptions("a"));
  PandoraBox& b = sim.AddBox(BoxOptions("b"));
  sim.Start();
  sim.SendAudio(a, b);
  sim.RunFor(Seconds(1));
  // A healthy run may or may not report; force one via a status command.
  auto commander = [](Scheduler* s, Switch* sw) -> Process {
    co_await sw->commands().Send(Command{CommandVerb::kReportStatus, 0, 0, 0});
    (void)s;
  };
  sim.scheduler().Spawn(commander(&sim.scheduler(), &b.server_switch()), "host");
  sim.RunFor(Millis(10));
  EXPECT_GE(sim.reports().CountOf("switch.status"), 1u);
}

TEST(SimulationTest, FindBoxResolvesByNameIndex) {
  // FindBox is an indexed lookup now, not a linear scan; the observable
  // contract is unchanged — including first-wins for duplicate names.
  Simulation sim;
  PandoraBox& alpha = sim.AddBox(BoxOptions("alpha"));
  PandoraBox& beta = sim.AddBox(BoxOptions("beta"));
  EXPECT_EQ(sim.FindBox("alpha"), &alpha);
  EXPECT_EQ(sim.FindBox("beta"), &beta);
  EXPECT_EQ(sim.FindBox("gamma"), nullptr);
  EXPECT_EQ(sim.FindBox(""), nullptr);

  sim.AddBox(BoxOptions("alpha"));  // duplicate: the first box keeps the name
  EXPECT_EQ(sim.FindBox("alpha"), &alpha);
}

TEST(SimulationTest, SourceClockDriftAbsorbedAcrossBoxes) {
  Simulation sim;
  PandoraBox::Options a_options = BoxOptions("a");
  a_options.audio_clock_drift = 2e-4;  // fast source quartz (exaggerated)
  PandoraBox& a = sim.AddBox(a_options);
  PandoraBox& b = sim.AddBox(BoxOptions("b"));
  sim.Start();
  sim.SendAudio(a, b);
  sim.RunFor(Seconds(30));
  auto stats = b.clawback_bank().TotalStats();
  EXPECT_GT(stats.clawback_drops, 0u);
  EXPECT_LT(stats.max_depth, 12u);
  EXPECT_EQ(stats.limit_drops, 0u);
}

}  // namespace
}  // namespace pandora
