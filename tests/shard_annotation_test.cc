// The shard annotations (src/runtime/shard.h) are vocabulary for
// tools/lint/shard_audit.py: they must expand to nothing at all, so
// annotating a declaration can never change codegen, layout or
// initialization.  Stringification proves the zero-overhead claim at
// compile time: an empty expansion stringifies to "".

#include "src/runtime/shard.h"

#include <cstddef>
#include <string>

#include <gtest/gtest.h>

namespace pandora {
namespace {

#define PANDORA_TEST_STR_IMPL(x) #x
#define PANDORA_TEST_STR(x) PANDORA_TEST_STR_IMPL(x)

// An empty macro expansion stringifies to the empty string literal, whose
// sizeof is exactly the terminating NUL.
static_assert(sizeof(PANDORA_TEST_STR(PANDORA_SHARD_LOCAL)) == 1,
              "PANDORA_SHARD_LOCAL must expand to nothing");
static_assert(sizeof(PANDORA_TEST_STR(PANDORA_SHARD_SHARED("any reason"))) == 1,
              "PANDORA_SHARD_SHARED must swallow its reason entirely");

// Annotated declarations are plain declarations: same type, same size,
// same constant-initializability as their unannotated spelling.
PANDORA_SHARD_LOCAL int g_annotated_counter = 41;
PANDORA_SHARD_SHARED("test-only: single-threaded gtest process")
constinit int g_annotated_shared = 7;

static_assert(sizeof(g_annotated_counter) == sizeof(int));

TEST(ShardAnnotationTest, ExpandsToNothing) {
  EXPECT_STREQ(PANDORA_TEST_STR(PANDORA_SHARD_LOCAL), "");
  EXPECT_STREQ(PANDORA_TEST_STR(PANDORA_SHARD_SHARED("why")), "");
}

TEST(ShardAnnotationTest, AnnotatedVariablesBehaveNormally) {
  EXPECT_EQ(g_annotated_counter, 41);
  ++g_annotated_counter;
  EXPECT_EQ(g_annotated_counter, 42);
  EXPECT_EQ(g_annotated_shared, 7);

  PANDORA_SHARD_LOCAL static std::string scratch = "pandora";
  scratch += ".shard";
  EXPECT_EQ(scratch, "pandora.shard");
}

}  // namespace
}  // namespace pandora
