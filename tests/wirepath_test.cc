// Wire-path tests (DESIGN.md §9): the zero-copy contract end-to-end.
//
// A segment is serialized exactly once at the source port and parsed exactly
// once at the destination; everything between moves refcounted handles to
// immutable encoded bytes.  The per-box deep_copies counter proves it:
// copies-per-delivered-segment stays <= 2 no matter how many hops the
// circuit crosses.  The receive side's decode-failure path (bit corruption,
// truncation in flight) is exercised against a LIVE NetworkInput, and the
// wire-corrupt fault kind round-trips through the FaultPlan text format.
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/buffer/pool.h"
#include "src/control/report.h"
#include "src/core/box.h"
#include "src/core/simulation.h"
#include "src/fault/plan.h"
#include "src/net/atm.h"
#include "src/runtime/scheduler.h"
#include "src/segment/segment.h"
#include "src/segment/wire.h"
#include "src/server/netio.h"

namespace pandora {
namespace {

// --- Copies per delivered segment --------------------------------------------

TEST(WirePathTest, CopiesPerDeliveredSegmentAtMostTwoAcrossThreeHops) {
  // A 3-hop bridged audio circuit: if any intermediate stage deep-copied,
  // the bound below would read ~1 extra copy per hop (>= 4x delivered).
  Simulation sim;
  PandoraBox::Options options;
  options.name = "a";
  PandoraBox& a = sim.AddBox(options);
  options = PandoraBox::Options{};
  options.name = "b";
  PandoraBox& b = sim.AddBox(options);
  sim.Start();

  HopQuality hop_quality;
  hop_quality.propagation = Millis(1);
  CallPath path;
  path.hops = {sim.network().AddHop("bridge1", hop_quality),
               sim.network().AddHop("bridge2", hop_quality),
               sim.network().AddHop("bridge3", hop_quality)};
  const StreamId at_b = sim.SendAudio(a, b, path);
  sim.RunFor(Seconds(3));

  const CircuitStats* stats = sim.network().StatsFor(a.port(), at_b);
  ASSERT_NE(stats, nullptr);
  ASSERT_GT(stats->delivered, 100u);
  EXPECT_EQ(stats->lost, 0u);

  // a only encodes (one wire serialization per offered segment), b only
  // decodes (one pool copy per delivery); neither grows with hop count.
  EXPECT_GT(a.deep_copies(), 0u);
  EXPECT_GT(b.deep_copies(), 0u);
  EXPECT_LE(a.deep_copies(), stats->offered + 2);  // +: encoded, not yet offered
  EXPECT_LE(b.deep_copies(), stats->delivered);
  const uint64_t total_copies = a.deep_copies() + b.deep_copies();
  EXPECT_LE(total_copies, 2 * stats->delivered + 8)
      << "wire path deep-copied in flight (copies " << total_copies << ", delivered "
      << stats->delivered << ")";
  EXPECT_GT(sim.network().bytes_on_wire(), 0u);
}

// --- Copy-on-corrupt isolation -----------------------------------------------

TEST(WirePathTest, CorruptionOnOneCircuitNeverDamagesSiblingFanoutCopies) {
  // One encoded buffer fanned out to two circuits by Dup(); the circuit to
  // `noisy` corrupts every traversal.  The strike must damage a COPY — the
  // sibling handle's bytes stay pristine.
  Scheduler sched;
  BufferPool pool(&sched, "pool", 32);
  AtmNetwork net(&sched, /*seed=*/11);
  AtmPort* src = net.AddPort("src");
  AtmPort* noisy = net.AddPort("noisy");
  AtmPort* clean = net.AddPort("clean");
  HopQuality corrupting;
  corrupting.corrupt_rate = 1.0;
  net.OpenCircuit(src, 42, noisy, {}, corrupting);
  net.OpenCircuit(src, 43, clean);
  ShutdownGuard guard(&sched);

  const std::vector<uint8_t> payload(64, 0x5A);
  constexpr int kCount = 40;

  auto tx = [](Scheduler* s, BufferPool* pool, AtmPort* src,
               const std::vector<uint8_t>* payload) -> Process {
    for (uint32_t i = 0; i < kCount; ++i) {
      auto ref = pool->TryAllocate();
      **ref = MakeAudioSegment(9, i, 0, *payload);
      WireRef wire = co_await src->wire_pool().Allocate();
      EncodeSegmentInto(**ref, StreamField::kOmitted, &wire->bytes);
      ref->Reset();
      NetTx to_noisy;
      to_noisy.vci = 42;
      to_noisy.wire = wire.Dup();
      co_await src->tx().Send(std::move(to_noisy));
      NetTx to_clean;
      to_clean.vci = 43;
      to_clean.wire = std::move(wire);
      co_await src->tx().Send(std::move(to_clean));
      co_await s->WaitFor(Millis(1));
    }
  };
  int clean_ok = 0;
  auto rx_clean = [](AtmPort* port, const std::vector<uint8_t>* payload, int* ok) -> Process {
    for (;;) {
      NetRx in = co_await port->rx().Receive();
      DecodeResult decoded = DecodeSegment(in.wire->bytes, StreamField::kOmitted, in.vci);
      EXPECT_TRUE(decoded.ok) << decoded.error;
      EXPECT_EQ(decoded.segment.payload, *payload);  // byte-for-byte pristine
      ++*ok;
    }
  };
  auto rx_noisy = [](AtmPort* port) -> Process {
    for (;;) {
      // Damaged copies arrive here; a flip can land anywhere, so decode may
      // fail or "succeed" with a damaged payload — either way it must not
      // leak back into the clean circuit's bytes.
      (void)co_await port->rx().Receive();
    }
  };
  sched.Spawn(tx(&sched, &pool, src, &payload), "tx");
  sched.Spawn(rx_clean(clean, &payload, &clean_ok), "rx.clean");
  sched.Spawn(rx_noisy(noisy), "rx.noisy");
  sched.RunFor(Millis(200));

  EXPECT_EQ(clean_ok, kCount);
  EXPECT_EQ(net.total_corrupted(), static_cast<uint64_t>(kCount));
  const CircuitStats* noisy_stats = net.StatsFor(src, 42);
  ASSERT_NE(noisy_stats, nullptr);
  EXPECT_EQ(noisy_stats->corrupted, static_cast<uint64_t>(kCount));
  EXPECT_EQ(net.StatsFor(src, 43)->corrupted, 0u);
  EXPECT_EQ(src->wire_pool().free_count(), src->wire_pool().capacity());
}

// --- Decode-failure path through a live NetworkInput -------------------------

TEST(WirePathTest, NetworkInputCountsReportsAndRecoversPastMalformedWireImages) {
  Scheduler sched;
  ReportCollector reports;
  BufferPool pool(&sched, "pool", 8);
  AtmNetwork net(&sched);
  AtmPort* dst = net.AddPort("dst");
  Channel<SegmentRef> to_switch(&sched, "out");
  uint64_t deep_copies = 0;
  NetworkInput netin(&sched, {.name = "netin"}, dst, &pool, &to_switch, &reports, &deep_copies);
  ShutdownGuard guard(&sched);
  netin.Start();

  auto make_wire = [&](uint32_t seq) {
    Segment segment = MakeAudioSegment(7, seq, 0, std::vector<uint8_t>(32, 0x11));
    auto wire = dst->wire_pool().TryAllocate();
    EXPECT_TRUE(wire.has_value());
    EncodeSegmentInto(segment, StreamField::kOmitted, &(*wire)->bytes);
    return std::move(*wire);
  };

  auto inject = [](AtmPort* dst, WireRef wire) -> Task<void> {
    NetRx in;
    in.vci = 7;
    in.wire = std::move(wire);
    co_await dst->rx().Send(std::move(in));
  };
  auto feeder = [&make_wire, &inject](AtmPort* dst) -> Process {
    // seq 0: intact.
    co_await inject(dst, make_wire(0));
    // seq 1: truncated in flight (half the image lost).
    WireRef truncated = make_wire(1);
    truncated->bytes.resize(truncated->bytes.size() / 2);
    co_await inject(dst, std::move(truncated));
    // seq 2: version field mangled (bytes 0..3 with the stream omitted).
    WireRef mangled = make_wire(2);
    mangled->bytes[0] ^= 0xFF;
    co_await inject(dst, std::move(mangled));
    // seq 3: single bit flipped in the declared-length field.
    WireRef flipped = make_wire(3);
    flipped->bytes[16] ^= 0x04;
    co_await inject(dst, std::move(flipped));
    // seq 4: intact — the input must still be alive and forwarding.
    co_await inject(dst, make_wire(4));
  };
  std::vector<uint32_t> forwarded;
  auto drain = [](Channel<SegmentRef>* out, std::vector<uint32_t>* got) -> Process {
    for (;;) {
      SegmentRef ref = co_await out->Receive();
      EXPECT_EQ(ref->stream, 7u);
      got->push_back(ref->header.sequence);
    }
  };
  sched.Spawn(feeder(dst), "feeder");
  sched.Spawn(drain(&to_switch, &forwarded), "drain");
  sched.RunFor(Millis(50));

  // The three malformed images were counted and reported, never forwarded,
  // and the good segment behind them got through (the sequence gap is the
  // clawback buffer's job downstream).
  EXPECT_EQ(netin.decode_failures(), 3u);
  // The control plane rate-limits reports per error type, so a burst of
  // decode failures may collapse into one report; the exact count lives in
  // the decode_failures() counter asserted above.
  EXPECT_GE(reports.CountOf("netin.decode_failure"), 1u);
  ASSERT_EQ(forwarded, (std::vector<uint32_t>{0, 4}));
  EXPECT_EQ(netin.received(), 2u);
  EXPECT_EQ(deep_copies, 2u);  // one pool copy per GOOD segment only
  EXPECT_EQ(dst->wire_pool().free_count(), dst->wire_pool().capacity());
}

// --- EncodedSize()/header.length drift ---------------------------------------

TEST(WirePathDeathTest, EncodeCatchesHeaderLengthDrift) {
#ifdef NDEBUG
  GTEST_SKIP() << "PANDORA_DCHECK is a no-op under NDEBUG";
#endif
  Segment segment = MakeAudioSegment(3, 0, 0, std::vector<uint8_t>(16, 0x22));
  ASSERT_EQ(segment.header.length, segment.EncodedSize());
  segment.payload.push_back(0x23);  // mutated without restamping length
  EXPECT_DEATH((void)EncodeSegment(segment), "drifted from EncodedSize");
  // Restamping heals it.
  segment.header.length = static_cast<uint32_t>(segment.EncodedSize());
  std::vector<uint8_t> bytes = EncodeSegment(segment);
  EXPECT_TRUE(DecodeSegment(bytes).ok);
}

// --- wire-corrupt in the FaultPlan text format -------------------------------

TEST(WireCorruptPlanTest, RoundTripsThroughTextFormat) {
  FaultPlan plan;
  plan.seed = 17;
  FaultEvent event;
  event.at = Millis(1500);
  event.kind = FaultKind::kWireCorrupt;
  event.target = 2;
  event.value = 0.375;
  event.duration = Millis(250);
  plan.events.push_back(event);

  const std::string text = FormatFaultPlan(plan);
  EXPECT_NE(text.find("wire-corrupt call=2"), std::string::npos) << text;
  FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan(text, &parsed, &error)) << error;
  EXPECT_EQ(FormatFaultPlan(parsed), text);  // bit-exact round trip
  ASSERT_EQ(parsed.events.size(), 1u);
  EXPECT_EQ(parsed.events[0].kind, FaultKind::kWireCorrupt);
  EXPECT_EQ(parsed.events[0].value, 0.375);
  EXPECT_EQ(parsed.events[0].duration, Millis(250));
  EXPECT_EQ(TargetOf(FaultKind::kWireCorrupt), FaultTarget::kCall);

  FaultKind kind = FaultKind::kCircuitDown;
  ASSERT_TRUE(ParseFaultKind("wire-corrupt", &kind));
  EXPECT_EQ(kind, FaultKind::kWireCorrupt);
}

TEST(WireCorruptPlanTest, RandomPlansRespectAllowWireCorrupt) {
  RandomPlanOptions options;
  options.call_count = 3;
  options.min_events = 8;
  options.max_events = 8;

  options.allow_wire_corrupt = false;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    for (const FaultEvent& event : RandomFaultPlan(seed, options).events) {
      EXPECT_NE(event.kind, FaultKind::kWireCorrupt) << "seed " << seed;
    }
  }

  options.allow_wire_corrupt = true;
  int wire_corrupt_events = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    for (const FaultEvent& event : RandomFaultPlan(seed, options).events) {
      if (event.kind == FaultKind::kWireCorrupt) {
        ++wire_corrupt_events;
        EXPECT_GE(event.value, 0.05);
        EXPECT_LE(event.value, 0.5);
      }
    }
  }
  EXPECT_GT(wire_corrupt_events, 0);
}

}  // namespace
}  // namespace pandora
