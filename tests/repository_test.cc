// Tests for the repository: accurate recording (reversed P1), the 2ms -> 40ms
// repacking pass, and timestamp-paced playback (paper sections 2.1, 3.2).
#include <vector>

#include <gtest/gtest.h>

#include "src/buffer/pool.h"
#include "src/control/report.h"
#include "src/repository/repository.h"
#include "src/runtime/scheduler.h"
#include "src/segment/segment.h"

namespace pandora {
namespace {

struct RepoRig {
  RepoRig() : pool(&sched, "pool", 256), repo(&sched, {.name = "repo"}, &reports) {}

  void Start() { repo.Start(); }

  SegmentRef MakeAudio(StreamId stream, uint32_t seq, Time ts, int blocks = 2) {
    auto ref = pool.TryAllocate();
    **ref = MakeAudioSegment(stream, seq, ts,
                             std::vector<uint8_t>(static_cast<size_t>(blocks) * 16,
                                                  static_cast<uint8_t>(seq)));
    return std::move(*ref);
  }

  Scheduler sched;
  ReportCollector reports;
  BufferPool pool;
  Repository repo;
  ShutdownGuard guard{&sched};
};

Process FeedRecording(Scheduler* sched, RepoRig* rig, StreamId stream, int count) {
  for (int i = 0; i < count; ++i) {
    SegmentRef ref = rig->MakeAudio(stream, static_cast<uint32_t>(i), sched->now());
    co_await rig->repo.input().Send(std::move(ref));
    (void)co_await rig->repo.ready().Receive();
    co_await sched->WaitFor(Millis(4));
  }
}

TEST(RepositoryTest, RecordsArmedStreamsOnly) {
  RepoRig rig;
  rig.Start();
  rig.repo.Arm(7);
  rig.sched.Spawn(FeedRecording(&rig.sched, &rig, 7, 10), "feed7");
  rig.sched.Spawn(FeedRecording(&rig.sched, &rig, 8, 10), "feed8");  // not armed
  rig.sched.RunFor(Millis(100));
  EXPECT_EQ(rig.repo.segments_recorded(), 10u);
  EXPECT_EQ(rig.repo.segments_discarded(), 10u);
  const Repository::Recording* recording = rig.repo.Find(7);
  ASSERT_NE(recording, nullptr);
  EXPECT_EQ(recording->segments_received, 10u);
}

TEST(RepositoryTest, FinishRepacksAudioToPaperFormat) {
  RepoRig rig;
  rig.Start();
  rig.repo.Arm(7);
  // 60 live segments x 2 blocks = 120 blocks = 6 x 40ms stored segments.
  rig.sched.Spawn(FeedRecording(&rig.sched, &rig, 7, 60), "feed");
  rig.sched.RunFor(Millis(400));
  const Repository::Recording* recording = rig.repo.Find(7);
  ASSERT_EQ(recording->segments_received, 60u);
  size_t raw = recording->raw_bytes;
  EXPECT_EQ(raw, 60u * (36 + 32));

  rig.repo.Finish(7);
  EXPECT_TRUE(recording->repacked);
  ASSERT_EQ(recording->segments.size(), 6u);
  for (const Segment& stored : recording->segments) {
    EXPECT_EQ(stored.payload.size(), 320u);
    EXPECT_EQ(stored.EncodedSize(), 356u);  // 36-byte header + 320 data
  }
  // Header overhead shrank from 36/68 to 36/356 of each segment.
  EXPECT_LT(recording->stored_bytes, raw);
  EXPECT_EQ(recording->stored_bytes, 6u * 356u);
}

TEST(RepositoryTest, PlaybackIsPacedByRecordedTimestamps) {
  RepoRig rig;
  rig.Start();
  rig.repo.Arm(7);
  rig.sched.Spawn(FeedRecording(&rig.sched, &rig, 7, 50), "feed");
  rig.sched.RunFor(Millis(300));
  rig.repo.Finish(7);

  Channel<SegmentRef> out(&rig.sched, "playout");
  std::vector<Time> arrivals;
  std::vector<int> block_counts;
  auto sink = [](Scheduler* s, Channel<SegmentRef>* out, std::vector<Time>* arrivals,
                 std::vector<int>* blocks) -> Process {
    for (;;) {
      SegmentRef ref = co_await out->Receive();
      arrivals->push_back(s->now());
      blocks->push_back(ref->AudioBlockCount());
    }
  };
  rig.sched.Spawn(sink(&rig.sched, &out, &arrivals, &block_counts), "sink");
  Time play_start = rig.sched.now();
  rig.repo.Play(7, /*as_stream=*/20, &out, &rig.pool, /*blocks_per_segment=*/2);
  rig.sched.RunFor(Millis(400));

  // 100 recorded blocks replayed as 50 two-block live segments.
  ASSERT_EQ(arrivals.size(), 50u);
  for (int count : block_counts) {
    EXPECT_EQ(count, 2);
  }
  // Paced in real time: the run spans ~the original 200ms recording window.
  Duration span = arrivals.back() - play_start;
  EXPECT_GT(span, Millis(150));
  EXPECT_LT(span, Millis(260));
}

TEST(RepositoryTest, PlaybackPreservesPayloadBytes) {
  RepoRig rig;
  rig.Start();
  rig.repo.Arm(7);
  rig.sched.Spawn(FeedRecording(&rig.sched, &rig, 7, 20), "feed");
  rig.sched.RunFor(Millis(150));
  rig.repo.Finish(7);

  std::vector<uint8_t> original;
  // Reconstruct what was recorded: segment i filled with byte value i.
  for (uint32_t i = 0; i < 20; ++i) {
    original.insert(original.end(), 32, static_cast<uint8_t>(i));
  }

  Channel<SegmentRef> out(&rig.sched, "playout");
  std::vector<uint8_t> replayed;
  auto sink = [](Channel<SegmentRef>* out, std::vector<uint8_t>* bytes) -> Process {
    for (;;) {
      SegmentRef ref = co_await out->Receive();
      bytes->insert(bytes->end(), ref->payload.begin(), ref->payload.end());
    }
  };
  rig.sched.Spawn(sink(&out, &replayed), "sink");
  rig.repo.Play(7, 20, &out, &rig.pool);
  rig.sched.RunFor(Millis(200));
  EXPECT_EQ(replayed, original);
}

TEST(RepositoryTest, TimestampOffsetsRecordedForSync) {
  RepoRig rig;
  rig.Start();
  rig.repo.Arm(1);
  rig.repo.Arm(2);
  auto feed_late = [](Scheduler* s, RepoRig* rig) -> Process {
    co_await s->WaitUntil(Millis(100));  // stream 2 starts 100ms later
    SegmentRef ref = rig->MakeAudio(2, 0, s->now());
    co_await rig->repo.input().Send(std::move(ref));
    (void)co_await rig->repo.ready().Receive();
  };
  rig.sched.Spawn(FeedRecording(&rig.sched, &rig, 1, 5), "feed1");
  rig.sched.Spawn(feed_late(&rig.sched, &rig), "feed2");
  rig.sched.RunFor(Millis(200));
  const Repository::Recording* r1 = rig.repo.Find(1);
  const Repository::Recording* r2 = rig.repo.Find(2);
  Duration offset = FromTimestampTicks(r2->first_timestamp) -
                    FromTimestampTicks(r1->first_timestamp);
  EXPECT_NEAR(static_cast<double>(offset), 100000.0, 200.0);
}

}  // namespace
}  // namespace pandora
