# Pinned-seed golden run: bench_chaos executed twice with the same built-in
# plan must produce byte-identical summary JSON — the determinism guarantee
# the whole fault subsystem rests on.  Invoked by the chaos_golden CTest
# entry (see tests/CMakeLists.txt).
if(NOT DEFINED BENCH_CHAOS OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "chaos_golden.cmake needs -DBENCH_CHAOS=<bin> -DWORK_DIR=<dir>")
endif()

set(first "${WORK_DIR}/chaos_golden_1.json")
set(second "${WORK_DIR}/chaos_golden_2.json")

foreach(out IN ITEMS ${first} ${second})
  execute_process(COMMAND ${BENCH_CHAOS} --json=${out}
                  RESULT_VARIABLE rc OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_chaos failed (exit ${rc}) writing ${out}")
  endif()
endforeach()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${first} ${second}
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "bench_chaos summary JSON differs between two pinned-seed runs: "
                      "${first} vs ${second} — chaos runs are no longer deterministic")
endif()
message(STATUS "chaos golden: two pinned-seed runs byte-identical")
