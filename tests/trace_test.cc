// Tests for the tracing & telemetry subsystem (src/trace/).
//
// Two layers: unit tests of the recorder itself (interning, capacity,
// histograms, macro guards), and a golden export test that runs a real
// two-box audio call with tracing on and checks that the exported
// Chrome/Perfetto JSON is structurally sound — every event carries the
// required fields, B/E spans balance per track, timestamps are monotonic.
// Finally a determinism guard: a traced run must produce byte-identical
// stream metrics to an untraced one.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/box.h"
#include "src/core/simulation.h"
#include "src/trace/trace.h"

namespace pandora {
namespace {

// --- A minimal JSON parser, just enough to validate the export ---------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& At(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out);
    }
    if (c == '[') {
      return ParseArray(out);
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }
  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) {
      return false;
    }
    SkipWs();
    if (Consume('}')) {
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (!Consume(':')) {
        return false;
      }
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      return Consume('}');
    }
  }
  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) {
      return false;
    }
    SkipWs();
    if (Consume(']')) {
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->array.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      return Consume(']');
    }
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            *out += esc;
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'b':
          case 'f':
          case 'r':
            *out += ' ';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return false;
            }
            pos_ += 4;  // escaped control character; content irrelevant here
            *out += '?';
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;
  }
  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- Recorder unit tests ------------------------------------------------------

TEST(TraceRecorderTest, DisabledRecordsNothing) {
  TraceRecorder rec;
  Time clock = 0;
  rec.BindClock(&clock);
  TraceSiteId site = 0;
  PANDORA_TRACE_BEGIN(&rec, site, std::string("proc.a"));
  PANDORA_TRACE_END(&rec, site);
  EXPECT_EQ(site, 0u);  // name_expr never evaluated, nothing interned
  EXPECT_EQ(rec.event_count(), 0u);
  // A null recorder is equally inert.
  TraceRecorder* null_rec = nullptr;
  PANDORA_TRACE_COUNTER(null_rec, site, std::string("x"), 1);
  EXPECT_EQ(site, 0u);
}

TEST(TraceRecorderTest, SitesInternOnceAndDedupeByName) {
  TraceRecorder rec;
  Time clock = 0;
  rec.BindClock(&clock);
  rec.Enable();
  TraceSiteId a = 0;
  TraceSiteId b = 0;
  PANDORA_TRACE_INSTANT(&rec, a, std::string("proc.tick"));
  PANDORA_TRACE_INSTANT(&rec, b, std::string("proc.tick"));
  EXPECT_NE(a, 0u);
  EXPECT_EQ(a, b);  // same name -> same track from a different call site
  EXPECT_EQ(rec.event_count(), 2u);
}

TEST(TraceRecorderTest, CapacityDropsAndCounts) {
  TraceRecorder rec;
  Time clock = 0;
  rec.BindClock(&clock);
  rec.Enable(/*max_events=*/4);
  TraceSiteId site = 0;
  for (int i = 0; i < 10; ++i) {
    PANDORA_TRACE_COUNTER(&rec, site, std::string("proc.n"), i);
  }
  EXPECT_EQ(rec.event_count(), 4u);
  EXPECT_EQ(rec.dropped_events(), 6u);
}

TEST(TraceRecorderTest, HistogramBucketsAndQuantiles) {
  TraceRecorder rec;
  Time clock = 0;
  rec.BindClock(&clock);
  rec.Enable();
  TraceSiteId hist = 0;
  for (int64_t v : {1, 2, 3, 1000, 4000}) {
    PANDORA_TRACE_HISTOGRAM(&rec, hist, std::string("lat"), "us", v);
  }
  ASSERT_EQ(rec.histograms().size(), 1u);
  const TraceHistogram& h = rec.histograms()[0];
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.min, 1);
  EXPECT_EQ(h.max, 4000);
  EXPECT_DOUBLE_EQ(h.sum, 5006.0);
  uint64_t total = 0;
  for (uint64_t b : h.buckets) {
    total += b;
  }
  EXPECT_EQ(total, 5u);
}

TEST(TraceRecorderTest, HistogramQuantileIsAConservativeUpperBound) {
  // TraceHistogramQuantile backs the bench gates: it reports the upper edge
  // of the power-of-2 bucket holding the requested rank, never below the
  // true value and never above the recorded max.
  TraceRecorder rec;
  Time clock = 0;
  rec.BindClock(&clock);
  rec.Enable();
  TraceSiteId hist = 0;
  for (int64_t v = 1; v <= 100; ++v) {
    PANDORA_TRACE_HISTOGRAM(&rec, hist, std::string("lat"), "us", v);
  }
  ASSERT_EQ(rec.histograms().size(), 1u);
  const TraceHistogram& h = rec.histograms()[0];
  const int64_t p50 = TraceHistogramQuantile(h, 0.5);
  const int64_t p99 = TraceHistogramQuantile(h, 0.99);
  EXPECT_GE(p50, 50);
  EXPECT_LE(p50, 100);
  EXPECT_GE(p99, 99);
  EXPECT_LE(p99, h.max);
  EXPECT_LE(p50, p99);
  // Degenerate histogram: no samples means no estimate.
  TraceHistogram empty;
  EXPECT_EQ(TraceHistogramQuantile(empty, 0.99), 0);
}

TEST(TraceRecorderTest, ExportClosesOpenSpans) {
  TraceRecorder rec;
  Time clock = 0;
  rec.BindClock(&clock);
  rec.Enable();
  TraceSiteId site = 0;
  PANDORA_TRACE_BEGIN(&rec, site, std::string("proc.run"));
  clock = 10;
  PANDORA_TRACE_END(&rec, site);
  clock = 20;
  PANDORA_TRACE_BEGIN(&rec, site, std::string("proc.run"));  // left open on purpose

  JsonValue root;
  ASSERT_TRUE(JsonParser(rec.ExportJson()).Parse(&root));
  int begins = 0;
  int ends = 0;
  for (const JsonValue& event : root.At("traceEvents").array) {
    if (event.At("ph").str == "B") {
      ++begins;
    } else if (event.At("ph").str == "E") {
      ++ends;
    }
  }
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);  // the dangling B was closed synthetically
}

// --- Golden export from a real simulation ------------------------------------

PandoraBox::Options BoxOptions(const std::string& name) {
  PandoraBox::Options options;
  options.name = name;
  options.with_video = false;
  return options;
}

TEST(TraceExportTest, TwoBoxAudioCallExportsWellFormedTrace) {
  Simulation sim;
  PandoraBox& tx = sim.AddBox(BoxOptions("tx"));
  PandoraBox& rx = sim.AddBox(BoxOptions("rx"));
  sim.scheduler().trace()->Enable();
  sim.Start();
  StreamId stream = sim.SendAudio(tx, rx);

  // Ask the sender for a status report so the trace carries at least one
  // control-plane instant mirrored by the ReportCollector.
  auto commander = [](CommandChannel* cmd, StreamId s) -> Process {
    co_await cmd->Send(Command{CommandVerb::kReportStatus, s, 0, 0});
  };
  sim.scheduler().Spawn(commander(&tx.audio_sender().commands(), stream), "host.status");

  sim.RunFor(Millis(500));

  std::string json = sim.scheduler().trace()->ExportJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << "export is not valid JSON";
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  ASSERT_TRUE(root.Has("traceEvents"));
  ASSERT_TRUE(root.Has("displayTimeUnit"));
  ASSERT_TRUE(root.Has("pandoraHistograms"));
  EXPECT_EQ(root.At("pandoraDroppedEvents").number, 0.0);

  const std::vector<JsonValue>& events = root.At("traceEvents").array;
  ASSERT_GT(events.size(), 100u);

  // Every event carries the required trace-event fields, with metadata
  // ('M') naming the tracks.
  bool saw_begin = false;
  bool saw_complete = false;
  bool saw_depth_counter = false;
  bool saw_instant = false;
  bool saw_process_meta = false;
  std::map<std::pair<double, double>, int> depth_by_track;
  std::map<std::pair<double, double>, double> last_ts_by_track;
  for (const JsonValue& event : events) {
    ASSERT_TRUE(event.Has("name"));
    ASSERT_TRUE(event.Has("ph"));
    ASSERT_TRUE(event.Has("pid"));
    ASSERT_TRUE(event.Has("tid"));
    ASSERT_EQ(event.At("ph").str.size(), 1u);
    const std::string& ph = event.At("ph").str;
    if (ph == "M") {
      saw_process_meta |= event.At("name").str == "process_name";
      continue;
    }
    ASSERT_TRUE(event.Has("ts"));
    std::pair<double, double> track{event.At("pid").number, event.At("tid").number};
    double ts = event.At("ts").number;
    auto last = last_ts_by_track.find(track);
    if (last != last_ts_by_track.end()) {
      EXPECT_GE(ts, last->second) << "timestamps must be monotonic per track";
    }
    last_ts_by_track[track] = ts;
    if (ph == "B") {
      saw_begin = true;
      ++depth_by_track[track];
    } else if (ph == "E") {
      --depth_by_track[track];
      EXPECT_GE(depth_by_track[track], 0) << "E without a matching open B";
    } else if (ph == "X") {
      saw_complete = true;
      EXPECT_TRUE(event.Has("dur"));
    } else if (ph == "C") {
      EXPECT_TRUE(event.Has("args"));
      const std::string& name = event.At("name").str;
      saw_depth_counter |= name.size() > 6 && name.rfind(".depth") == name.size() - 6;
    } else if (ph == "i") {
      saw_instant = true;
      EXPECT_EQ(event.At("s").str, "t");
    }
  }
  for (const auto& [track, depth] : depth_by_track) {
    EXPECT_EQ(depth, 0) << "unbalanced span on pid=" << track.first << " tid=" << track.second;
  }
  EXPECT_TRUE(saw_begin) << "no scheduler run-slice spans";
  EXPECT_TRUE(saw_complete) << "no link/CPU transmission spans";
  EXPECT_TRUE(saw_depth_counter) << "no buffer occupancy counters";
  EXPECT_TRUE(saw_instant) << "no instant events (report mirror)";
  EXPECT_TRUE(saw_process_meta) << "no process_name metadata";

  // Per-(stream, hop) latency histograms made it into the custom section.
  const std::vector<JsonValue>& hists = root.At("pandoraHistograms").array;
  ASSERT_FALSE(hists.empty());
  bool saw_net_latency = false;
  for (const JsonValue& h : hists) {
    ASSERT_TRUE(h.Has("name"));
    ASSERT_TRUE(h.Has("count"));
    ASSERT_TRUE(h.Has("buckets"));
    EXPECT_EQ(h.At("buckets").array.size(), static_cast<size_t>(kTraceHistogramBuckets));
    saw_net_latency |= h.At("name").str.find(".net.") != std::string::npos &&
                       h.At("count").number > 0;
  }
  EXPECT_TRUE(saw_net_latency) << "no populated network latency histogram";
}

// --- Determinism guard --------------------------------------------------------

struct RunMetrics {
  uint64_t played = 0;
  uint64_t underruns = 0;
  uint64_t missing = 0;
  uint64_t delivered = 0;
  uint64_t lost = 0;
  uint64_t context_switches = 0;
  uint64_t latency_count = 0;
  double latency_mean = 0.0;
  double latency_max = 0.0;
};

RunMetrics RunSeededCall(bool traced) {
  Simulation sim(/*seed=*/1234);
  PandoraBox& tx = sim.AddBox(BoxOptions("tx"));
  PandoraBox& rx = sim.AddBox(BoxOptions("rx"));
  if (traced) {
    sim.scheduler().trace()->Enable();
  }
  sim.Start();
  // A lossy, jittery path so the run exercises drops, clawback and the
  // degradation machinery — the parts most tempted to consult the recorder.
  CallPath path;
  path.direct.loss_rate = 0.01;
  path.direct.jitter_max = Millis(5);
  StreamId stream = sim.SendAudio(tx, rx, path);
  sim.RunFor(Seconds(3));

  RunMetrics m;
  m.played = rx.codec_out().played_blocks();
  m.underruns = rx.codec_out().underruns();
  m.missing = rx.audio_receiver().total_missing();
  m.delivered = sim.network().total_delivered();
  m.lost = sim.network().total_lost();
  m.context_switches = sim.scheduler().context_switches();
  const StatAccumulator* latency = rx.mixer().LatencyFor(stream);
  if (latency != nullptr) {
    m.latency_count = latency->count();
    m.latency_mean = latency->Mean();
    m.latency_max = latency->max();
  }
  return m;
}

TEST(TraceDeterminismTest, TracingDoesNotPerturbTheSimulation) {
  RunMetrics off = RunSeededCall(/*traced=*/false);
  RunMetrics on = RunSeededCall(/*traced=*/true);
  EXPECT_EQ(off.played, on.played);
  EXPECT_EQ(off.underruns, on.underruns);
  EXPECT_EQ(off.missing, on.missing);
  EXPECT_EQ(off.delivered, on.delivered);
  EXPECT_EQ(off.lost, on.lost);
  EXPECT_EQ(off.context_switches, on.context_switches);
  EXPECT_EQ(off.latency_count, on.latency_count);
  EXPECT_DOUBLE_EQ(off.latency_mean, on.latency_mean);
  EXPECT_DOUBLE_EQ(off.latency_max, on.latency_max);
  // The comparison is only meaningful if the call actually flowed.
  EXPECT_GT(off.played, 500u);
  EXPECT_GT(off.lost, 0u);
}

}  // namespace
}  // namespace pandora
