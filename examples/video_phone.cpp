// Video phone: the paper's flagship application (section 4.1) — a live
// bidirectional audio + video call with hands-free echo muting.
//
// Exercises: bidirectional audio with clawback jitter buffering, video
// capture -> compression -> display, the muting function of section 4.3,
// and lip-sync bookkeeping (audio vs video latency).
#include <cstdio>

#include "src/core/simulation.h"

namespace {

void PrintSide(const char* who, pandora::PandoraBox& box, pandora::StreamId audio_stream) {
  using pandora::StatAccumulator;
  const StatAccumulator* audio = box.mixer().LatencyFor(audio_stream);
  std::printf("%s:\n", who);
  std::printf("  audio blocks played  : %llu (underruns %llu)\n",
              static_cast<unsigned long long>(box.codec_out().played_blocks()),
              static_cast<unsigned long long>(box.codec_out().underruns()));
  if (audio != nullptr) {
    std::printf("  audio latency        : %.2f ms mean\n", audio->Mean() / 1000.0);
  }
  if (box.display() != nullptr) {
    std::printf("  video frames shown   : %llu (%.1f fps, tears %llu)\n",
                static_cast<unsigned long long>(box.display()->frames_displayed()),
                box.display()->frame_latency().count() > 0
                    ? static_cast<double>(box.display()->frames_displayed()) / 10.0
                    : 0.0,
                static_cast<unsigned long long>(box.display()->tears()));
    std::printf("  video frame latency  : %.2f ms mean\n",
                box.display()->frame_latency().Mean() / 1000.0);
  }
  std::printf("  muting activations   : %llu\n",
              static_cast<unsigned long long>(box.muting().activations()));
}

}  // namespace

int main() {
  using namespace pandora;

  Simulation sim;
  PandoraBox::Options options;
  options.with_video = true;
  options.muting_enabled = true;  // hands-free conversation
  options.mic = MicKind::kSpeech;

  options.name = "alice";
  PandoraBox& alice = sim.AddBox(options);
  options.name = "bob";
  options.mic_amplitude = 11000.0;
  PandoraBox& bob = sim.AddBox(options);

  sim.Start();

  StreamId audio_at_bob = sim.SendAudio(alice, bob);
  StreamId audio_at_alice = sim.SendAudio(bob, alice);
  sim.SendVideo(alice, bob, Rect{0, 0, 64, 48}, /*rate_numer=*/1, /*rate_denom=*/1,
                /*segments_per_frame=*/4);
  sim.SendVideo(bob, alice, Rect{0, 0, 64, 48}, 1, 1, 4);

  std::printf("video phone: alice <-> bob, audio + 25fps video + muting\n\n");
  sim.RunFor(Seconds(10));

  PrintSide("alice", alice, audio_at_alice);
  PrintSide("bob", bob, audio_at_bob);

  std::printf("\nnetwork: %llu segments delivered, %llu lost\n",
              static_cast<unsigned long long>(sim.network().total_delivered()),
              static_cast<unsigned long long>(sim.network().total_lost()));
  return 0;
}
