// Videomail: record a live stream on a repository, repack it for storage,
// and play it back later (sections 2.1, 3.2, 4.1).
//
// Demonstrates the reversed principle 1 (recordings are never degraded),
// the 2ms -> 40ms storage repacking with its header-overhead savings, and
// timestamp-paced playback "directly to any Pandora box".
#include <cstdio>

#include "src/core/simulation.h"

int main() {
  using namespace pandora;

  Simulation sim;
  PandoraBox::Options caller_options;
  caller_options.name = "caller";
  caller_options.with_video = true;
  caller_options.mic = MicKind::kSpeech;
  PandoraBox& caller = sim.AddBox(caller_options);

  PandoraBox::Options mailbox_options;
  mailbox_options.name = "mailbox";
  mailbox_options.with_video = true;
  mailbox_options.with_repository = true;
  PandoraBox& mailbox = sim.AddBox(mailbox_options);

  sim.Start();

  // The caller leaves a 6-second audio+video message; the mailbox records
  // both while playing them live.
  StreamId stream = sim.SendAudio(caller, mailbox);
  StreamId video = sim.SendVideo(caller, mailbox, Rect{0, 0, 64, 48}, 2, 5, 2);  // 10 fps
  sim.RecordStream(mailbox, stream);
  sim.RecordStream(mailbox, video, /*audio=*/false);
  std::printf("recording a 6s audio+video message from caller...\n");
  sim.RunFor(Seconds(6));
  sim.FinishRecording(mailbox, stream);
  sim.FinishRecording(mailbox, video);

  const Repository::Recording* recording = mailbox.repository()->Find(stream);
  std::printf("  segments recorded : %llu\n",
              static_cast<unsigned long long>(recording->segments_received));
  std::printf("  raw size          : %zu bytes (36-byte header per 4ms segment)\n",
              recording->raw_bytes);
  std::printf("  repacked size     : %zu bytes (36-byte header per 40ms segment)\n",
              recording->stored_bytes);
  std::printf("  storage saving    : %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(recording->stored_bytes) /
                                 static_cast<double>(recording->raw_bytes)));

  const Repository::Recording* video_rec = mailbox.repository()->Find(video);
  std::printf("  video segments recorded : %llu (video is stored as captured)\n",
              static_cast<unsigned long long>(video_rec->segments_received));

  // Later: the mailbox owner plays the message back — audio to the
  // loudspeaker, video to the display, both paced by recorded timestamps.
  std::printf("\nplaying the message back (speaker + display)...\n");
  uint64_t blocks_before = mailbox.codec_out().played_blocks();
  uint64_t frames_before = mailbox.display()->frames_displayed();
  sim.PlayRecording(mailbox, stream);
  sim.PlayVideoRecording(mailbox, video);
  sim.RunFor(Seconds(7));
  std::printf("  blocks played during playback window: %llu\n",
              static_cast<unsigned long long>(mailbox.codec_out().played_blocks() -
                                              blocks_before));
  std::printf("  frames shown during playback window : %llu\n",
              static_cast<unsigned long long>(mailbox.display()->frames_displayed() -
                                              frames_before));
  return 0;
}
