// Quickstart: two Pandora boxes, one live audio stream between them.
//
// Demonstrates the section 1.1 control flow — allocate a stream number,
// configure destination back to source, start the source — and prints the
// latency/continuity numbers the paper's section 4.2 discusses.
#include <cstdio>

#include "src/core/simulation.h"

int main() {
  using namespace pandora;

  Simulation sim;
  PandoraBox::Options alice_options;
  alice_options.name = "alice";
  alice_options.with_video = false;
  alice_options.mic = MicKind::kSpeech;
  PandoraBox& alice = sim.AddBox(alice_options);

  PandoraBox::Options bob_options;
  bob_options.name = "bob";
  bob_options.with_video = false;
  PandoraBox& bob = sim.AddBox(bob_options);

  sim.Start();

  // Host plumbing: destination first, then the circuit, then the source.
  StreamId stream = sim.SendAudio(alice, bob);
  std::printf("opened audio stream: alice.mic (stream %u) -> bob (stream %u)\n",
              alice.mic_stream(), stream);

  sim.RunFor(Seconds(10));

  const SequenceTracker* tracker = bob.audio_receiver().TrackerFor(stream);
  const StatAccumulator* latency = bob.mixer().LatencyFor(stream);
  std::printf("\nafter 10 simulated seconds:\n");
  std::printf("  segments received at bob : %llu\n",
              static_cast<unsigned long long>(tracker ? tracker->received() : 0));
  std::printf("  segments missing         : %llu\n",
              static_cast<unsigned long long>(tracker ? tracker->missing_total() : 0));
  std::printf("  blocks played at speaker : %llu (underruns %llu)\n",
              static_cast<unsigned long long>(bob.codec_out().played_blocks()),
              static_cast<unsigned long long>(bob.codec_out().underruns()));
  if (latency != nullptr) {
    std::printf("  mic->mixer latency       : mean %.2f ms  (min %.2f, max %.2f)\n",
                latency->Mean() / 1000.0, latency->min() / 1000.0, latency->max() / 1000.0);
  }
  std::printf("  mixer->speaker buffering : %.2f ms\n",
              bob.codec_out().latency().Mean() / 1000.0);
  std::printf("  jitter buffer (clawback) : max depth %zu blocks, clawback drops %llu\n",
              bob.clawback_bank().TotalStats().max_depth,
              static_cast<unsigned long long>(bob.clawback_bank().TotalStats().clawback_drops));
  std::printf("\nhost report log:\n%s", sim.reports().Format().c_str());
  return 0;
}
