// Medusa studio: the paper's future-work architecture (section 5.2) — an
// exploded Pandora where the microphone, camera, speaker and display are
// independent devices "linked only by the LAN".
//
// Two microphones and two cameras feed a monitoring room's speaker and
// display across the ATM fabric.  The same Pandora principles run in every
// device: clawback jitter buffering at the speaker, whole-frame display
// with the interpolation line cache, per-VCI fan-out at the sources.
#include <cstdio>

#include "src/medusa/devices.h"

int main() {
  using namespace pandora;

  Scheduler sched;
  AtmNetwork net(&sched, 7);

  // A slightly unruly studio LAN.
  HopQuality lan;
  lan.jitter_max = Millis(6);
  NetHop* hop = net.AddHop("studio-lan", lan);

  NetMicrophone presenter(&sched, &net,
                          {.name = "mic.presenter", .stream = 1, .kind = MicKind::kSpeech});
  NetMicrophone guest(&sched, &net,
                      {.name = "mic.guest", .stream = 1, .kind = MicKind::kSine,
                       .frequency = 330.0, .amplitude = 5000.0});
  NetCamera wide(&sched, &net, {.name = "cam.wide", .stream = 1, .rect = {0, 0, 64, 24},
                                .segments_per_frame = 2});
  NetCamera close(&sched, &net, {.name = "cam.close", .stream = 1, .rect = {0, 24, 64, 24},
                                 .segments_per_frame = 2});
  NetSpeaker monitor_audio(&sched, &net, {.name = "monitor.speaker"});
  NetDisplay monitor_video(&sched, &net, {.name = "monitor.display"});

  StreamId a1 = ConnectAudio(&net, &presenter, &monitor_audio, {hop});
  StreamId a2 = ConnectAudio(&net, &guest, &monitor_audio, {hop});
  StreamId v1 = ConnectVideo(&net, &wide, &monitor_video, {hop});
  StreamId v2 = ConnectVideo(&net, &close, &monitor_video, {hop});

  // Declared after the devices: frames die before the pools they touch.
  ShutdownGuard guard(&sched);

  presenter.Start();
  guest.Start();
  wide.Start();
  close.Start();
  monitor_audio.Start();
  monitor_video.Start();

  std::printf("medusa studio: 2 mics + 2 cameras -> monitor speaker + display\n");
  sched.RunFor(Seconds(10));

  std::printf("\nmonitor speaker:\n");
  std::printf("  blocks played       : %llu (underruns %llu)\n",
              static_cast<unsigned long long>(monitor_audio.codec_out().played_blocks()),
              static_cast<unsigned long long>(monitor_audio.codec_out().underruns()));
  for (StreamId s : {a1, a2}) {
    const SequenceTracker* t = monitor_audio.receiver().TrackerFor(s);
    const StatAccumulator* l = monitor_audio.mixer().LatencyFor(s);
    std::printf("  stream %u            : %llu segments, %llu missing, %.2f ms latency\n", s,
                static_cast<unsigned long long>(t ? t->received() : 0),
                static_cast<unsigned long long>(t ? t->missing_total() : 0),
                l ? l->Mean() / 1000.0 : 0.0);
  }
  auto cb = monitor_audio.bank().TotalStats();
  std::printf("  clawback            : max depth %zu blocks (%zu ms of jitter absorbed)\n",
              cb.max_depth, cb.max_depth * 2);

  std::printf("\nmonitor display:\n");
  std::printf("  frames displayed    : %llu (tears %llu)\n",
              static_cast<unsigned long long>(monitor_video.display().frames_displayed()),
              static_cast<unsigned long long>(monitor_video.display().tears()));
  std::printf("  wide / close fps    : %.1f / %.1f\n",
              monitor_video.display().MeasuredFps(v1, Seconds(10)),
              monitor_video.display().MeasuredFps(v2, Seconds(10)));
  std::printf("  line-cache reloads  : %llu (interleaved streams)\n",
              static_cast<unsigned long long>(monitor_video.display().cache_reloads()));
  return 0;
}
