// Tannoy: one-to-many audio broadcast (section 4.1) with a misbehaving
// destination — a live demonstration of principles 5 and 6.
//
// One source speaks to three destinations.  One destination sits behind a
// congested bridge; the paper's design keeps the other two unaffected, and
// the slow copy recovers via sequence numbers.  Halfway through, a fourth
// destination joins and later leaves — without disturbing anyone.
#include <cstdio>

#include "src/core/simulation.h"

int main() {
  using namespace pandora;

  Simulation sim;
  PandoraBox::Options options;
  options.with_video = false;
  options.mic = MicKind::kSpeech;

  options.name = "announcer";
  PandoraBox& announcer = sim.AddBox(options);
  options.mic = MicKind::kSilence;
  options.name = "office1";
  PandoraBox& office1 = sim.AddBox(options);
  options.name = "office2";
  PandoraBox& office2 = sim.AddBox(options);
  options.name = "basement";
  PandoraBox& basement = sim.AddBox(options);
  options.name = "latecomer";
  PandoraBox& latecomer = sim.AddBox(options);

  // The basement sits behind a slow, lossy bridge.
  HopQuality bad;
  bad.bits_per_second = 300'000;
  bad.jitter_max = Millis(15);
  bad.loss_rate = 0.02;
  NetHop* bridge = sim.network().AddHop("basement-bridge", bad);

  sim.Start();

  StreamId s1 = sim.SendAudio(announcer, office1);
  StreamId s2 = sim.SplitAudioTo(announcer, announcer.mic_stream(), office2);
  CallPath basement_path;
  basement_path.hops.push_back(bridge);
  StreamId s3 = sim.SplitAudioTo(announcer, announcer.mic_stream(), basement, basement_path);

  std::printf("tannoy running to office1, office2 and (via a bad bridge) basement...\n");
  sim.RunFor(Seconds(5));

  std::printf("latecomer joins mid-broadcast (principle 6)...\n");
  StreamId s4 = sim.SplitAudioTo(announcer, announcer.mic_stream(), latecomer);
  sim.RunFor(Seconds(5));

  struct Row {
    const char* name;
    PandoraBox* box;
    StreamId stream;
  };
  for (const Row& row : {Row{"office1", &office1, s1}, Row{"office2", &office2, s2},
                         Row{"basement", &basement, s3}, Row{"latecomer", &latecomer, s4}}) {
    const SequenceTracker* tracker = row.box->audio_receiver().TrackerFor(row.stream);
    std::printf("  %-9s blocks played %6llu | segments %6llu | missing %4llu | loss %5.2f%%\n",
                row.name,
                static_cast<unsigned long long>(row.box->codec_out().played_blocks()),
                static_cast<unsigned long long>(tracker ? tracker->received() : 0),
                static_cast<unsigned long long>(tracker ? tracker->missing_total() : 0),
                tracker ? tracker->LossFraction() * 100.0 : 0.0);
  }
  std::printf("\nannouncer-side drops for the basement copy are invisible to the others;\n");
  std::printf("office1/office2 missing counts above should be zero.\n");
  return 0;
}
