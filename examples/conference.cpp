// Conference: a three-way video call (section 4.1's "multi-way video call
// systems") — every participant hears and sees both others.
//
// Exercises N x (N-1) live streams, software mixing of multiple incoming
// audio streams at every box, muting in a multi-party setting ("the problem
// becomes worse if several offices are all linked in a conference"), and
// the per-stream clawback lifecycle.
#include <cstdio>
#include <vector>

#include "src/core/simulation.h"

int main() {
  using namespace pandora;

  Simulation sim;
  std::vector<PandoraBox*> boxes;
  for (const char* name : {"amy", "ben", "cat"}) {
    PandoraBox::Options options;
    options.name = name;
    options.with_video = true;
    options.muting_enabled = true;
    options.mic = MicKind::kSpeech;
    boxes.push_back(&sim.AddBox(options));
  }
  sim.Start();

  // Full mesh: audio + video both ways between every pair.
  struct Leg {
    PandoraBox* from;
    PandoraBox* to;
    StreamId audio;
    StreamId video;
  };
  std::vector<Leg> legs;
  for (PandoraBox* from : boxes) {
    for (PandoraBox* to : boxes) {
      if (from == to) {
        continue;
      }
      Leg leg;
      leg.from = from;
      leg.to = to;
      if (from->mic_stream() != 0 && !legs.empty() &&
          legs.back().from == from) {
        // Further copies of the same microphone: split, don't resend.
        leg.audio = sim.SplitAudioTo(*from, from->mic_stream(), *to);
      } else {
        leg.audio = sim.SendAudio(*from, *to);
      }
      leg.video = sim.SendVideo(*from, *to, Rect{0, 0, 64, 48}, 2, 5, 2);  // 10 fps
      legs.push_back(leg);
    }
  }

  std::printf("three-way conference: %zu audio + %zu video legs\n\n", legs.size(),
              legs.size());
  sim.RunFor(Seconds(10));

  for (PandoraBox* box : boxes) {
    std::printf("%s:\n", box->name().c_str());
    std::printf("  hears %zu streams; blocks played %llu (underruns %llu)\n",
                box->clawback_bank().ActiveStreams().size(),
                static_cast<unsigned long long>(box->codec_out().played_blocks()),
                static_cast<unsigned long long>(box->codec_out().underruns()));
    std::printf("  sees  frames displayed %llu (tears %llu)\n",
                static_cast<unsigned long long>(box->display()->frames_displayed()),
                static_cast<unsigned long long>(box->display()->tears()));
    std::printf("  muting activations %llu (hands-free echo control)\n",
                static_cast<unsigned long long>(box->muting().activations()));
  }

  std::printf("\nend-to-end audio latency per leg (mic -> far mixer):\n");
  for (const Leg& leg : legs) {
    const StatAccumulator* latency = leg.to->mixer().LatencyFor(leg.audio);
    std::printf("  %s -> %s : %.2f ms mean, %.2f ms max\n", leg.from->name().c_str(),
                leg.to->name().c_str(), latency ? latency->Mean() / 1000.0 : 0.0,
                latency ? latency->max() / 1000.0 : 0.0);
  }
  std::printf("\nnetwork: %llu segments delivered, %llu lost\n",
              static_cast<unsigned long long>(sim.network().total_delivered()),
              static_cast<unsigned long long>(sim.network().total_lost()));
  return 0;
}
