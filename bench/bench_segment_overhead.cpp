// E13 — Audio segment format and repacking overhead (paper section 3.2).
//
// Claims: live audio segments usually carry 2 blocks (4ms, principle 7) and
// can carry 1..12 ("perhaps using 12 blocks = 24ms... or 1 block = 2ms");
// stored audio is repacked into "40ms long segments containing 320 bytes of
// data plus a new 36 byte header".
//
// The bench prints header overhead across the whole block-count range and
// verifies the repacking arithmetic end to end.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/segment/repack.h"
#include "src/segment/segment.h"
#include "src/segment/wire.h"

int main() {
  using namespace pandora;
  BenchHeader("E13", "segment header overhead vs blocks per segment",
              "36-byte header; 2 blocks/segment default; repository repacks to 40ms/320B");

  std::printf("\n  %-8s %-10s %-10s %-10s %-12s\n", "blocks", "duration", "data", "total",
              "header");
  std::printf("  %-8s %-10s %-10s %-10s %-12s\n", "", "(ms)", "(bytes)", "(bytes)", "overhead");
  for (int blocks : {1, 2, 3, 4, 6, 8, 12, 20}) {
    Segment segment = MakeAudioSegment(
        1, 0, 0, std::vector<uint8_t>(static_cast<size_t>(blocks) * kAudioBlockBytes, 0));
    const char* note = "";
    if (blocks == kDefaultBlocksPerSegment) {
      note = "  <- live default (4ms)";
    } else if (blocks == kMaxBlocksPerSegment) {
      note = "  <- overloaded receiver";
    } else if (blocks == kRepositoryBlocksPerSegment) {
      note = "  <- repository format";
    }
    std::printf("  %-8d %-10lld %-10zu %-10zu %8.1f%%%s\n", blocks,
                static_cast<long long>(blocks * kAudioBlockDuration / kMillisecond),
                segment.payload.size(), segment.EncodedSize(),
                AudioHeaderOverhead(blocks) * 100.0, note);
  }

  // Repacking a minute of live default-format audio.
  AudioRepacker repacker(1);
  size_t live_bytes = 0;
  size_t stored_bytes = 0;
  uint32_t sequence = 0;
  Time t = 0;
  for (int i = 0; i < 15000; ++i) {  // 60s of 4ms segments
    Segment live = MakeAudioSegment(1, sequence++, t,
                                    std::vector<uint8_t>(2 * kAudioBlockBytes, 0));
    t += Millis(4);
    live_bytes += live.EncodedSize();
    for (const Segment& stored : repacker.Push(live)) {
      stored_bytes += stored.EncodedSize();
    }
  }
  if (auto tail = repacker.Flush()) {
    stored_bytes += tail->EncodedSize();
  }

  std::printf("\n  one minute of speech stored on the repository:\n");
  BenchRow("live format (36B header per 4ms)", static_cast<double>(live_bytes) / 1024.0, "KiB",
           "");
  BenchRow("repacked (36B header per 40ms)", static_cast<double>(stored_bytes) / 1024.0, "KiB",
           "");
  BenchRow("disk space saved by repacking",
           100.0 * (1.0 - static_cast<double>(stored_bytes) / static_cast<double>(live_bytes)),
           "%", "(paper's motivation for the repacking pass)");

  // Wire round-trip sanity at both extremes.
  Segment live = MakeAudioSegment(7, 1, Millis(4), std::vector<uint8_t>(32, 9));
  auto decoded = DecodeSegment(EncodeSegment(live));
  BenchRow("wire round-trip (live segment)", decoded.ok ? 1 : 0, "", "1 = intact");
  return 0;
}
