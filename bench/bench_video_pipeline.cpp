// E14 — The video pipeline's visual-integrity machinery (paper section 3.6).
//
// Claims: frames are never displayed partially ("the effect of a tear can
// be seen when part of the image is moving parallel to a segment
// boundary"); the blit avoids the display scan; interleaved streams force
// interpolation-state reloads (the software line cache); and the
// compression pipeline's last slice needs a dummy-line flush.
//
// Workload: two interleaved camera streams through one display, swept over
// loss rates; plus a scan-aware vs naive blit comparison.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/buffer/pool.h"
#include "src/runtime/random.h"
#include "src/runtime/scheduler.h"
#include "src/video/capture.h"
#include "src/video/display.h"
#include "src/video/framestore.h"

namespace pandora {
namespace {

struct Outcome {
  uint64_t frames_displayed = 0;
  uint64_t dropped_incomplete = 0;
  uint64_t undecodable = 0;
  uint64_t tears = 0;
  uint64_t cache_reloads = 0;
  double fps1 = 0.0;
  double fps2 = 0.0;
};

Process LossyRelay(Scheduler* sched, Channel<SegmentRef>* in, Channel<SegmentRef>* out,
                   double loss, Rng* rng) {
  for (;;) {
    SegmentRef ref = co_await in->Receive();
    if (rng->Bernoulli(loss)) {
      continue;
    }
    co_await out->Send(std::move(ref));
    (void)sched;
  }
}

Outcome Run(double loss, bool scan_aware, bool two_streams) {
  Scheduler sched;
  MovingBarPattern pattern(128);
  FrameStore store(&sched, &pattern, 128, 96);
  BufferPool pool(&sched, "pool", 256);
  Channel<SegmentRef> from_captures(&sched, "cap.out");
  Channel<SegmentRef> to_display(&sched, "disp.in");
  Rng rng(7);
  ShutdownGuard guard(&sched);

  VideoCaptureOptions base;
  base.rect = {0, 0, 128, 96};
  base.segments_per_frame = 4;
  base.coding = LineCoding::kDpcmLine;
  base.per_line_cost = Micros(40);  // slow transport: blits land mid-scan
  base.name = "cap1";
  base.stream = 1;
  VideoCapture cap1(&sched, base, &store, &pool, &from_captures);
  base.name = "cap2";
  base.stream = 2;
  base.rect = {0, 0, 128, 48};
  VideoCapture cap2(&sched, base, &store, &pool, &from_captures);

  VideoDisplay display(
      &sched, {.name = "disp", .width = 128, .height = 96, .scan_aware_copy = scan_aware},
      &to_display);
  cap1.Start();
  if (two_streams) {
    cap2.Start();
  }
  display.Start();
  sched.Spawn(LossyRelay(&sched, &from_captures, &to_display, loss, &rng), "relay");
  const Duration kRun = Seconds(5);
  sched.RunFor(kRun);

  Outcome o;
  o.frames_displayed = display.frames_displayed();
  o.dropped_incomplete = display.frames_dropped_incomplete();
  o.undecodable = display.undecodable_segments();
  o.tears = display.tears();
  o.cache_reloads = display.cache_reloads();
  o.fps1 = display.MeasuredFps(1, kRun);
  o.fps2 = display.MeasuredFps(2, kRun);
  return o;
}

}  // namespace
}  // namespace pandora

int main() {
  using namespace pandora;
  BenchHeader("E14", "video pipeline: whole frames only, scan-aware blits, line cache",
              "no partial frames displayed; careful timing avoids tears entirely");

  std::printf("\n  loss sweep (two interleaved streams, scan-aware blit):\n");
  std::printf("  %-8s %-10s %-10s %-12s %-8s %-8s %-8s\n", "loss", "displayed", "dropped",
              "undecodable", "tears", "fps#1", "fps#2");
  for (double loss : {0.0, 0.02, 0.10}) {
    Outcome o = Run(loss, /*scan_aware=*/true, /*two_streams=*/true);
    std::printf("  %6.0f%% %-10llu %-10llu %-12llu %-8llu %-8.1f %-8.1f\n", loss * 100.0,
                static_cast<unsigned long long>(o.frames_displayed),
                static_cast<unsigned long long>(o.dropped_incomplete),
                static_cast<unsigned long long>(o.undecodable),
                static_cast<unsigned long long>(o.tears), o.fps1, o.fps2);
  }

  Outcome aware = Run(0.0, true, false);
  Outcome naive = Run(0.0, false, false);
  Outcome interleaved = Run(0.0, true, true);
  std::printf("\n");
  BenchRow("tears with scan-aware copy", static_cast<double>(aware.tears), "",
           "(paper: 0 — microsecond scheduling)");
  BenchRow("tears with naive copy", static_cast<double>(naive.tears), "",
           "(what the care buys)");
  BenchRow("line-cache reloads, one stream", static_cast<double>(aware.cache_reloads), "", "");
  BenchRow("line-cache reloads, interleaved", static_cast<double>(interleaved.cache_reloads),
           "", "(every stream switch reloads the engine)");
  BenchNote("with loss, whole frames vanish but nothing partial is ever shown — the");
  BenchNote("incomplete assemblies are dropped when the next frame starts.");
  return 0;
}
