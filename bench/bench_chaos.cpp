// E15 — Chaos: a three-box call through a scripted fault storm.
//
// Claims: the degradation machinery holds its ordering promises while the
// environment is actively hostile — audio survives a storm that video does
// not (P2), incoming streams are sacrificed before outgoing ones (P1) and
// old before new (P3), a box power-cycle mid-call re-plumbs
// deterministically — and once the storm passes, the clawback buffers walk
// their delay back down to the quiet-time band.
//
// Workload: boxes a, b, c.  a sends audio+two videos to b through a
// squeezed 900kbit/s uplink (P2 pressure), b answers with audio and two
// videos, and a splits its microphone to c over a circuit the storm never
// touches (the P5 good copy).  On a, the two incoming videos from b plus
// a's own local-camera stream are additionally routed to a deliberately
// congested destination drained at half the offered rate, so the P1/P3
// shedding order is exercised by real, storm-modulated traffic.  The
// pinned plan crashes b for 600ms mid-call, then lashes the re-established
// circuits with burst loss, a bandwidth collapse and jitter storms, and
// finally seizes a quarter of a's buffer pool.
//
// The whole run is simulated time: two invocations produce byte-identical
// summary JSON (the chaos_golden CTest entry diffs exactly that).  Override
// the storm with PANDORA_FAULT_PLAN=<plan text> to replay a failing seed
// from the property suite.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "src/buffer/decoupling.h"
#include "src/core/simulation.h"
#include "src/fault/driver.h"
#include "src/fault/plan.h"
#include "src/server/switch.h"

namespace pandora {
namespace {

// The scripted storm (all times are onsets in simulated time; every episode
// restores what it broke).  Call indices follow the plumbing order in main.
constexpr const char* kPinnedPlan =
    "seed=424242;"
    " @1200ms crash box=1 for=600ms;"
    " @2200ms burst-loss call=0 value=0.3 for=300ms;"
    " @2600ms bandwidth-collapse call=1 value=256000 for=400ms;"
    " @3100ms jitter-storm call=5 value=30000 for=500ms;"
    " @3150ms jitter-storm call=3 value=24000 for=450ms;"
    " @3700ms pool-pressure box=0 value=24 for=300ms";

// Depth every live clawback buffer must re-reach after the storm: the lower
// target (2 blocks) plus slack for blocks legitimately in flight.
constexpr uint32_t kReplateauBlocks = 4;

bool AllClawedBack(Simulation& sim) {
  for (size_t i = 0; i < sim.box_count(); ++i) {
    PandoraBox& box = sim.box(i);
    if (box.crashed()) {
      continue;
    }
    for (StreamId stream : box.clawback_bank().ActiveStreams()) {
      ClawbackBuffer* buffer = box.clawback_bank().Find(stream);
      if (buffer != nullptr && buffer->depth_blocks() > kReplateauBlocks) {
        return false;
      }
    }
  }
  return true;
}

// Per-stream switch drop counters reset when churn closes and re-opens the
// route (a crash of the sending box does exactly that), so the bench sums
// across route epochs by sampling every slice.
struct DropAccumulator {
  uint64_t base = 0;
  uint64_t prev = 0;
  void Sample(uint64_t now) {
    if (now < prev) {
      base += prev;  // the route was torn down and recreated
    }
    prev = now;
  }
  uint64_t total() const { return base + prev; }
};

// The half-rate consumer behind the congested auxiliary destination.
Process AuxDrain(Scheduler* sched, DecouplingBuffer* buffer) {
  for (;;) {
    (void)co_await buffer->output().Receive();
    co_await sched->WaitFor(Millis(2));
  }
}

double Percent(uint64_t part, uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace
}  // namespace pandora

int main(int argc, char** argv) {
  using namespace pandora;
  BenchParseArgs(argc, argv);
  BenchHeader("E15", "three-box call through a scripted fault storm",
              "orderly degradation under faults; clawback re-plateaus after the storm");

  FaultPlan plan;
  std::string parse_error;
  if (!FaultPlanFromEnv(&plan, &parse_error)) {
    if (!parse_error.empty()) {
      std::fprintf(stderr, "PANDORA_FAULT_PLAN rejected: %s\n", parse_error.c_str());
      return 2;
    }
    const bool ok = ParseFaultPlan(kPinnedPlan, &plan, &parse_error);
    if (!ok) {
      std::fprintf(stderr, "pinned plan rejected: %s\n", parse_error.c_str());
      return 2;
    }
  }

  Simulation sim;
  PandoraBox::Options options;
  options.name = "a";
  options.with_video = true;
  // Two 64x48@25fps videos (~614kbit/s each) plus audio into 900kbit/s:
  // persistent overload, so the P2 class ordering is exercised from t=0.
  options.network_egress_bps = 900'000;
  options.clawback.count_threshold = 256;  // claw ~2 blocks/s: visible re-plateau
  PandoraBox& a = sim.AddBox(options);

  options = PandoraBox::Options{};
  options.name = "b";
  options.with_video = true;
  options.clawback.count_threshold = 256;
  PandoraBox& b = sim.AddBox(options);

  options = PandoraBox::Options{};
  options.name = "c";
  options.with_video = false;
  options.clawback.count_threshold = 256;
  PandoraBox& c = sim.AddBox(options);

  BenchEnableTrace(sim.scheduler());
  sim.Start();
  StreamId audio_at_b = sim.SendAudio(a, b);                                 // call 0
  StreamId video_at_b = sim.SendVideo(a, b, Rect{0, 0, 64, 48}, 1, 1, 4);   // call 1
  StreamId audio_at_c = sim.SplitAudioTo(a, a.mic_stream(), c);             // call 2
  sim.SendAudio(b, a);                                                      // call 3
  sim.SendVideo(a, b, Rect{0, 0, 64, 48}, 1, 1, 4);                         // call 4
  StreamId video_old = sim.SendVideo(b, a, Rect{0, 0, 64, 48}, 1, 1, 4);    // call 5
  StreamId video_new = sim.SendVideo(b, a, Rect{0, 0, 64, 48}, 1, 1, 4);    // call 6
  StreamId camera = sim.ShowLocalVideo(a, Rect{0, 0, 64, 48});
  (void)video_at_b;

  // The congested auxiliary destination at a: three video streams (~600
  // segments/s) into a half-rate drain, carrying a mixed population —
  // incoming video_old (longest open), incoming video_new, and a's own
  // OUTGOING camera stream — so the degrader's P1/P3 ordering decides who
  // suffers.
  DecouplingBuffer aux(&sim.scheduler(),
                       {.name = "bench.aux", .capacity = 8, .use_ready_channel = true});
  aux.Start();
  DestinationId aux_dest = a.server_switch().AddDestination("bench.aux", &aux);
  a.server_switch().OpenRoute(video_old, aux_dest, /*incoming=*/true, /*audio=*/false);
  a.server_switch().OpenRoute(video_new, aux_dest, /*incoming=*/true, /*audio=*/false);
  a.server_switch().OpenRoute(camera, aux_dest, /*incoming=*/false, /*audio=*/false);
  sim.scheduler().Spawn(AuxDrain(&sim.scheduler(), &aux), "bench.aux_drain");

  FaultDriver driver(&sim, plan);
  driver.Start();

  // Run out the storm (pinned plan quiesces at 4.0s) in slices, sampling
  // the per-stream drop counters so the totals survive b's crash (which
  // closes and re-opens the routes, resetting the live counters).
  DropAccumulator old_drops;
  DropAccumulator new_drops;
  auto sample = [&] {
    old_drops.Sample(a.server_switch().drops_for(video_old));
    new_drops.Sample(a.server_switch().drops_for(video_new));
  };
  while (!driver.quiescent() && sim.now() < Seconds(20)) {
    sim.RunFor(Millis(100));
    sample();
  }
  const Time storm_over = driver.quiescent() ? driver.quiescent_at() : sim.now();
  Time replateau_at = -1;
  while (sim.now() < storm_over + Seconds(30)) {
    sim.RunFor(Millis(100));
    sample();
    if (replateau_at < 0 && AllClawedBack(sim)) {
      replateau_at = sim.now();
    }
    if (replateau_at >= 0 && sim.now() >= replateau_at + Seconds(1)) {
      break;  // a post-plateau margin so final counters settle
    }
  }

  std::printf("\n  storm: %zu events applied, %zu skipped (stale targets)\n",
              static_cast<size_t>(driver.applied()), static_cast<size_t>(driver.skipped()));
  BenchRow("faults applied", static_cast<double>(driver.applied()), "");
  BenchRow("box b power cycles survived", static_cast<double>(b.crash_count()), "",
           "(call re-plumbed with the same stream ids)");

  // --- audio through the storm ---
  const SequenceTracker* at_b = b.audio_receiver().TrackerFor(audio_at_b);
  const SequenceTracker* at_c = c.audio_receiver().TrackerFor(audio_at_c);
  const double storm_loss =
      at_b == nullptr ? 100.0
                      : Percent(at_b->missing_total(), at_b->received() + at_b->missing_total());
  const double good_loss =
      at_c == nullptr ? 100.0
                      : Percent(at_c->missing_total(), at_c->received() + at_c->missing_total());
  BenchRow("audio loss on the stormed circuit", storm_loss, "%",
           "(burst-loss episode + crash re-plumb)");
  BenchRow("audio loss on the good split copy", good_loss, "%", "(paper P5: 0)");

  // --- P2 at a's squeezed uplink ---
  const NetworkOutput& out = a.network_output();
  const double audio_fraction = Percent(out.audio_drops(), out.audio_drops() + out.audio_sent());
  const double video_fraction = Percent(out.video_drops(), out.video_drops() + out.video_sent());
  const bool p2_held = audio_fraction <= video_fraction + 1e-9;
  BenchRow("audio shed fraction at the uplink", audio_fraction, "%");
  BenchRow("video shed fraction at the uplink", video_fraction, "%");
  BenchRow("P2 held (audio <= video)", p2_held ? 1.0 : 0.0, "", p2_held ? "yes" : "NO");

  // --- P1/P3 at the congested mixed destination on a ---
  const Switch::ShedStats& sheds = a.server_switch().shed_stats_for(aux_dest);
  const bool p1_held =
      sheds.outgoing == 0 ||
      (sheds.incoming > 0 && sheds.first_incoming <= sheds.first_outgoing);
  BenchRow("incoming sheds at the congested dest", static_cast<double>(sheds.incoming), "");
  BenchRow("outgoing sheds at the congested dest", static_cast<double>(sheds.outgoing), "");
  BenchRow("P1 held (incoming shed first)", p1_held ? 1.0 : 0.0, "",
           sheds.incoming == 0 && sheds.outgoing == 0 ? "yes (not exercised)"
           : p1_held                                  ? "yes"
                                                      : "NO");
  const bool p3_held = old_drops.total() >= new_drops.total();
  BenchRow("drops on the LONGEST-OPEN video", static_cast<double>(old_drops.total()), "");
  BenchRow("drops on the NEWEST video", static_cast<double>(new_drops.total()), "");
  BenchRow("P3 held (oldest degraded first)", p3_held ? 1.0 : 0.0, "", p3_held ? "yes" : "NO");

  // --- clawback re-plateau ---
  const double replateau_ms =
      replateau_at < 0 ? -1.0 : static_cast<double>(replateau_at - storm_over) / 1000.0;
  BenchRow("time to clawback re-plateau", replateau_ms, "ms",
           replateau_at < 0 ? "NEVER within 30s" : "(storm end -> all depths <= 4 blocks)");

  BenchNote("replay any plan against this topology: PANDORA_FAULT_PLAN=\"<plan>\" bench_chaos");
  BenchExportTrace(sim.scheduler());
  const int rc = BenchFinish();
  // `aux` (and the frames pumping it) must not outlive each other across
  // main's reverse-declaration teardown: destroy every coroutine frame now,
  // while aux's channels are still alive.  ~Simulation's own Shutdown call
  // is then a no-op.
  sim.scheduler().Shutdown();
  return rc != 0 || !p2_held || !p3_held || !p1_held ? (rc != 0 ? rc : 3) : 0;
}
