// Shared helpers for the Pandora benchmark harness.
//
// Each bench binary reproduces one experiment from DESIGN.md section 3 and
// prints the paper's claim next to the measured value.  Benches are plain
// executables (google-benchmark is linked for the micro-benchmarks that use
// it; the system experiments below are single deterministic runs over
// simulated time, where wall-clock benchmarking machinery adds nothing).
#ifndef PANDORA_BENCH_BENCH_COMMON_H_
#define PANDORA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

namespace pandora {

inline void BenchHeader(const std::string& id, const std::string& title,
                        const std::string& claim) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id.c_str(), title.c_str());
  std::printf("paper: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

inline void BenchRow(const std::string& label, double value, const std::string& unit,
                     const std::string& note = "") {
  std::printf("  %-38s %12.3f %-8s %s\n", label.c_str(), value, unit.c_str(), note.c_str());
}

inline void BenchNote(const std::string& text) { std::printf("  %s\n", text.c_str()); }

}  // namespace pandora

#endif  // PANDORA_BENCH_BENCH_COMMON_H_
