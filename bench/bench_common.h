// Shared helpers for the Pandora benchmark harness.
//
// Each bench binary reproduces one experiment from DESIGN.md section 3 and
// prints the paper's claim next to the measured value.  Benches are plain
// executables (google-benchmark is linked for the micro-benchmarks that use
// it; the system experiments below are single deterministic runs over
// simulated time, where wall-clock benchmarking machinery adds nothing).
//
// Every bench accepts:
//   --json=<path>       also emit every BenchRow as a JSON record
//                       {exp_id, label, value, unit} (the BENCH_*.json
//                       perf-trajectory format)
//   --trace-out=<path>  run with the telemetry recorder enabled and export
//                       a Chrome/Perfetto trace of the (last) run
// PANDORA_TRACE=1 in the environment also enables recording (see
// src/trace/trace.h); --trace-out both enables and exports.
#ifndef PANDORA_BENCH_BENCH_COMMON_H_
#define PANDORA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/runtime/scheduler.h"
#include "src/trace/trace.h"

namespace pandora {

struct BenchJsonRecord {
  std::string exp_id;
  std::string label;
  double value = 0.0;
  std::string unit;
};

struct BenchOutputState {
  std::string exp_id;
  std::string json_path;
  std::string trace_path;
  std::vector<BenchJsonRecord> rows;
};

inline BenchOutputState& BenchState() {
  static BenchOutputState state;
  return state;
}

// Consumes --json= and --trace-out=; unknown arguments are ignored so
// benches stay forgiving about harness-added flags.
inline void BenchParseArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--json=", 0) == 0) {
      BenchState().json_path = std::string(arg.substr(7));
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      BenchState().trace_path = std::string(arg.substr(12));
    }
  }
}

inline bool BenchTraceRequested() { return !BenchState().trace_path.empty(); }

// Call before Simulation::Start / RunFor: turns the recorder on when a trace
// was requested on the command line.
inline void BenchEnableTrace(Scheduler& sched) {
  if (BenchTraceRequested()) {
    sched.trace()->Enable();
  }
}

// Call after the run, while the Scheduler is still alive.  Overwrites the
// output, so in a bench that sweeps configurations the last traced run wins.
inline void BenchExportTrace(Scheduler& sched) {
  if (BenchTraceRequested() && sched.trace()->enabled()) {
    if (!sched.trace()->ExportJsonTo(BenchState().trace_path)) {
      std::fprintf(stderr, "failed to write trace to %s\n", BenchState().trace_path.c_str());
    }
  }
}

inline void BenchHeader(const std::string& id, const std::string& title,
                        const std::string& claim) {
  BenchState().exp_id = id;
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id.c_str(), title.c_str());
  std::printf("paper: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

inline void BenchRow(const std::string& label, double value, const std::string& unit,
                     const std::string& note = "") {
  std::printf("  %-38s %12.3f %-8s %s\n", label.c_str(), value, unit.c_str(), note.c_str());
  BenchState().rows.push_back(BenchJsonRecord{BenchState().exp_id, label, value, unit});
}

inline void BenchNote(const std::string& text) { std::printf("  %s\n", text.c_str()); }

inline void BenchAppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      *out += ' ';
    } else {
      *out += c;
    }
  }
}

// Writes the collected rows as a JSON array if --json= was given.  Call at
// the end of main; returns the process exit code.
inline int BenchFinish() {
  const BenchOutputState& state = BenchState();
  if (state.json_path.empty()) {
    return 0;
  }
  std::string out = "[\n";
  for (size_t i = 0; i < state.rows.size(); ++i) {
    const BenchJsonRecord& row = state.rows[i];
    out += "  {\"exp_id\":\"";
    BenchAppendJsonEscaped(&out, row.exp_id);
    out += "\",\"label\":\"";
    BenchAppendJsonEscaped(&out, row.label);
    out += "\",\"value\":";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", row.value);
    out += buf;
    out += ",\"unit\":\"";
    BenchAppendJsonEscaped(&out, row.unit);
    out += "\"}";
    out += (i + 1 == state.rows.size()) ? "\n" : ",\n";
  }
  out += "]\n";
  std::ofstream file(state.json_path, std::ios::out | std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "failed to write bench JSON to %s\n", state.json_path.c_str());
    return 1;
  }
  file << out;
  return file.flush() ? 0 : 1;
}

}  // namespace pandora

#endif  // PANDORA_BENCH_BENCH_COMMON_H_
