// E19: sharded scheduler scaling — wall-clock events/sec of the same storm
// under the M:N worker pool at 1, 2, 4 and 8 OS threads, plus the legacy
// single-shard engine as the no-window baseline.
//
// The paper scales by adding transputers to the backplane and letting the
// switch fabric carry the streams between them (sections 3.1, 4); this
// reproduction scales the same world picture by partitioning the simulation
// into shards under conservative time synchronisation (DESIGN.md section
// 13).  Two claims are scored:
//
//   events/sec    scheduler dispatches per wall-clock second at each thread
//                 count, on an identical 64-actor cross-shard storm.  The
//                 speedup rows are measured/threads=1 — the M:N win.
//   allocs/event  global operator-new calls per dispatch in the measured
//                 (post-warmup) window.  Must stay zero: the per-thread
//                 FramePool free lists and the capacity-retaining mailboxes
//                 absorb cross-shard churn without touching the heap.
//
// The --json output is the perf trajectory checked in as BENCH_shard.json.
// CI gates (plain build only): allocs/event == 0 at every thread count,
// throughput within 20 % of the checked-in trajectory, and — only when the
// runner actually has >= 8 hardware threads — >= 3x speedup at 8 threads.
// The "hardware threads" row is emitted so the gate can tell a slow engine
// from a small machine.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>

#include "bench/bench_common.h"
#include "tests/shard_harness.h"

// --- global counting allocator ----------------------------------------------
// Unlike bench_engine's plain counter, the measured region here is
// multi-threaded (shard workers), so the count is a relaxed atomic: exact in
// total, order irrelevant.
namespace {
std::atomic<uint64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountedAlignedAlloc(std::size_t n, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n == 0 ? 1 : n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace pandora {
namespace {

struct ShardScore {
  double events_per_sec = 0.0;
  double allocs_per_event = 0.0;
  uint64_t merged_hash = 0;
};

ShardStormOptions StormConfig(int shards, int threads) {
  ShardStormOptions opt;
  opt.shards = shards;
  opt.threads = threads;
  opt.total_actors = 64;
  opt.seed = 0xE19;
  opt.duration = Seconds(12);  // overwritten by the phase driver below
  return opt;
}

// One cold world per configuration: warm to 2 s of simulated time (free
// lists, slabs, mailbox and scratch capacity all reach steady state), then
// measure the next 10 s of simulated time under wall clock + allocation
// counters.
ShardScore RunConfig(int shards, int threads, bool traced = false) {
  ShardStormWorld world(StormConfig(shards, threads));
  world.Start();
  if (traced) {
    // Per-shard recorders fill during the run; the merged export below
    // re-interns every site under an "sN:" prefix (one Perfetto track group
    // per shard).  Capacity is reserved up front, so recording costs no
    // allocations inside the measured window.
    world.shard_set()->EnableTrace(1 << 15);
  }
  world.RunUntil(Seconds(2));

  const uint64_t events_before = world.TotalContextSwitches();
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const auto wall_before = std::chrono::steady_clock::now();
  world.RunUntil(Seconds(12));
  const auto wall_after = std::chrono::steady_clock::now();
  const uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  const uint64_t events = world.TotalContextSwitches() - events_before;

  ShardScore score;
  const double wall_s = std::chrono::duration<double>(wall_after - wall_before).count();
  score.events_per_sec = wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0;
  score.allocs_per_event =
      events > 0 ? static_cast<double>(allocs) / static_cast<double>(events) : 0.0;
  if (traced && !world.shard_set()->ExportMergedTraceTo(BenchState().trace_path)) {
    std::fprintf(stderr, "failed to write merged trace to %s\n",
                 BenchState().trace_path.c_str());
  }
  score.merged_hash = world.Finish().merged_hash;
  return score;
}

}  // namespace
}  // namespace pandora

int main(int argc, char** argv) {
  using namespace pandora;
  BenchParseArgs(argc, argv);
  // --shards=N / --threads=M pin a single configuration instead of the
  // default 1/2/4/8-thread sweep (hand experiments; README "Sharded
  // execution").  BenchParseArgs ignores the flags, so parse them here.
  int only_shards = 0;
  int only_threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind("--shards=", 0) == 0) {
      only_shards = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--threads=", 0) == 0) {
      only_threads = std::atoi(arg.c_str() + 10);
    }
  }
  BenchHeader("E19", "sharded scheduler scaling (events/sec by thread count)",
              "sections 3.1/4: Pandora scales by adding boards to the backplane; "
              "the reproduction scales the same worlds across shards under "
              "conservative synchronisation");

  if (only_shards > 0 || only_threads > 0) {
    const int shards = only_shards > 0 ? only_shards : 8;
    const int threads = only_threads > 0 ? only_threads : 1;
    const ShardScore score = RunConfig(shards, threads, BenchTraceRequested());
    const std::string tag =
        std::to_string(shards) + " shards, " + std::to_string(threads) + " threads ";
    BenchRow(tag + "events/sec", score.events_per_sec, "ev/s");
    BenchRow(tag + "allocs/event", score.allocs_per_event, "alloc");
    BenchRow("hardware threads", static_cast<double>(std::thread::hardware_concurrency()),
             "cpus");
    return BenchFinish();
  }

  const ShardScore legacy = RunConfig(/*shards=*/1, /*threads=*/1);
  BenchRow("legacy 1-shard events/sec", legacy.events_per_sec, "ev/s");
  BenchRow("legacy 1-shard allocs/event", legacy.allocs_per_event, "alloc");

  double base_eps = 0.0;
  uint64_t base_hash = 0;
  for (const int threads : {1, 2, 4, 8}) {
    // The 8-thread leg carries the merged per-shard trace when requested.
    const ShardScore score =
        RunConfig(/*shards=*/8, threads, /*traced=*/threads == 8 && BenchTraceRequested());
    const std::string tag = "8 shards, " + std::to_string(threads) + " threads ";
    BenchRow(tag + "events/sec", score.events_per_sec, "ev/s");
    BenchRow(tag + "allocs/event", score.allocs_per_event, "alloc");
    if (threads == 1) {
      base_eps = score.events_per_sec;
      base_hash = score.merged_hash;
    } else {
      BenchRow(tag + "speedup", base_eps > 0 ? score.events_per_sec / base_eps : 0.0, "x");
      // Scaling must never buy divergence: every thread count reproduces the
      // sequential run's merged observable hash or the bench itself fails.
      if (score.merged_hash != base_hash) {
        std::fprintf(stderr, "FATAL: merged hash diverged at %d threads\n", threads);
        return 1;
      }
    }
  }
  BenchRow("hardware threads", static_cast<double>(std::thread::hardware_concurrency()), "cpus");
  BenchNote("events = scheduler dispatches summed over shards; identical 64-actor "
            "storm per configuration; merged observable hash cross-checked against "
            "the sequential run at every thread count");
  return BenchFinish();
}
