// E9 — Degradation order under overload (paper section 2.1, principles 1-3).
//
// Claims: under overload, incoming streams degrade before outgoing ones
// (P1), video before audio (P2), and the longest-open streams first (P3).
//
// Workload: a box with a squeezed network interface carrying four outgoing
// streams opened in order: old video, old audio, new video, new audio —
// while also receiving streams.  We report per-stream delivery so the
// degradation ordering is visible, plus a P3 A/B: two same-class streams of
// different ages through one congested destination.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/buffer/decoupling.h"
#include "src/buffer/pool.h"
#include "src/core/simulation.h"
#include "src/server/switch.h"

namespace pandora {
namespace {

// P2 at the interface: audio and video sharing a starved 2Mbit/s uplink.
void RunAudioVideoSqueeze() {
  Simulation sim;
  PandoraBox::Options options;
  options.with_video = true;
  options.video_width = 320;
  options.video_height = 240;
  options.name = "tx";
  options.network_egress_bps = 2'000'000;  // the squeezed interface itself
  PandoraBox& tx = sim.AddBox(options);
  options.name = "rx";
  options.network_egress_bps = 20'000'000;
  PandoraBox& rx = sim.AddBox(options);
  sim.Start();

  StreamId audio = sim.SendAudio(tx, rx);
  StreamId video = sim.SendVideo(tx, rx, Rect{0, 0, 320, 240}, 1, 1, 4);
  // Raw video at 25fps = ~15Mbit/s offered to a 2Mbit/s path: hopeless.
  sim.RunFor(Seconds(10));

  const SequenceTracker* audio_tracker = rx.audio_receiver().TrackerFor(audio);
  double audio_loss = audio_tracker != nullptr ? audio_tracker->LossFraction() : 1.0;
  uint64_t video_drops = tx.network_output().video_drops();
  uint64_t audio_drops = tx.network_output().audio_drops();
  std::printf("\n  P2 — 2Mbit/s uplink, audio + 25fps video offered together:\n");
  BenchRow("audio loss at destination", audio_loss * 100.0, "%", "(paper: audio protected)");
  BenchRow("video segments shed at the splitter", static_cast<double>(video_drops), "",
           "(paper: video degrades first)");
  BenchRow("audio segments shed at the splitter", static_cast<double>(audio_drops), "",
           "(paper: 0)");
  std::printf("  video stream=%u displayed %.1f fps of 25 offered\n", video,
              rx.display()->MeasuredFps(video, Seconds(10)));
}

// P3 in isolation: two equal audio streams, different ages, one congested
// destination buffer drained at half the offered rate.
void RunAgePriority() {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 128);
  Switch sw(&sched, SwitchOptions{.name = "sw"});
  DecouplingBuffer out(&sched, {.name = "out", .capacity = 8, .use_ready_channel = true});
  ShutdownGuard guard(&sched);
  DestinationId dest = sw.AddDestination("out", &out);
  sw.OpenRoute(1, dest, true, true);  // opened first: the OLD stream
  sw.OpenRoute(2, dest, true, true);  // the NEW stream (the incoming call)
  sw.Start();
  out.Start();

  auto feeder = [](Scheduler* s, BufferPool* p, Switch* sw) -> Process {
    for (uint32_t i = 0; i < 2000; ++i) {
      for (StreamId stream : {StreamId{1}, StreamId{2}}) {
        auto ref = p->TryAllocate();
        if (ref.has_value()) {
          **ref = MakeAudioSegment(stream, i, s->now(), std::vector<uint8_t>(32, 0));
          co_await sw->input().Send(std::move(*ref));
        }
      }
      co_await s->WaitFor(Millis(1));
    }
  };
  auto slow_drain = [](Scheduler* s, DecouplingBuffer* out) -> Process {
    for (;;) {
      (void)co_await out->output().Receive();
      co_await s->WaitFor(Millis(1));  // half the offered rate
    }
  };
  sched.Spawn(feeder(&sched, &pool, &sw), "feeder");
  sched.Spawn(slow_drain(&sched, &out), "drain");
  sched.RunFor(Seconds(3));

  std::printf("\n  P3 — two audio streams, one congested output, drain at half rate:\n");
  BenchRow("drops on the LONGEST-OPEN stream", static_cast<double>(sw.drops_for(1)), "",
           "(paper: degraded first)");
  BenchRow("drops on the NEWEST stream", static_cast<double>(sw.drops_for(2)), "",
           "(paper: protected — the unexpected call gets through)");
}

}  // namespace
}  // namespace pandora

int main() {
  using namespace pandora;
  BenchHeader("E9", "who degrades first under overload?",
              "P1 incoming before outgoing; P2 video before audio; P3 oldest first");
  RunAudioVideoSqueeze();
  RunAgePriority();
  std::printf("\n");
  BenchNote("P1 shows in the architecture: outgoing chains run at high priority and the");
  BenchNote("degradation comparator ranks incoming attrs first (tests: server_test.cc).");
  return 0;
}
