// E8 — The muting function (paper section 4.3, figure 4.1).
//
// Claim: hands-free echo suppression mutes the microphone in two stages —
// 100% -> 50% for one 2ms block -> 20% while the loudspeaker is loud and
// for 22ms after it goes quiet, then 50% for a further 22ms, then 100% —
// with at least 4ms of reaction margin (detection happens before the
// speaker fifo, muting after the codec output fifo).
//
// Workload: a loudspeaker burst from t=20ms to t=40ms; the mute factor is
// sampled every 2ms and printed as the figure 4.1 trace.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/audio/muting.h"
#include "src/audio/ulaw.h"

namespace pandora {
namespace {

AudioBlock Block(int16_t level) {
  AudioBlock block;
  block.samples.fill(ULawEncode(level));
  return block;
}

}  // namespace
}  // namespace pandora

int main() {
  using namespace pandora;
  BenchHeader("E8", "two-stage muting function trace",
              "factor 100% -> 50% (2ms) -> 20%; quiet 22ms -> 50%; quiet 22ms more -> 100%");

  MutingControl muting;
  const Time burst_start = Millis(20);
  const Time burst_end = Millis(40);

  std::printf("\n  figure 4.1 trace (speaker burst %lld..%lldms):\n",
              static_cast<long long>(ToMillis(burst_start)),
              static_cast<long long>(ToMillis(burst_end)));
  std::printf("  t(ms)  speaker   mic-factor\n");
  Time first_mute = -1;
  Time back_to_full = -1;
  Time last_loud = -1;
  for (Time t = 0; t <= Millis(110); t += Millis(2)) {
    bool loud = t >= burst_start && t < burst_end;
    if (loud) {
      last_loud = t;
    }
    muting.ObserveSpeakerBlock(t, Block(loud ? 9000 : 0));
    double factor = muting.FactorAt(t);
    if (loud && factor < 1.0 && first_mute < 0) {
      first_mute = t;
    }
    if (t > burst_end && factor == 1.0 && back_to_full < 0) {
      back_to_full = t;
    }
    if (t % Millis(2) == 0) {
      std::printf("  %5lld  %-8s  %3.0f%%\n", static_cast<long long>(ToMillis(t)),
                  loud ? "LOUD" : "quiet", factor * 100.0);
    }
  }

  // The mic block being scaled left the codec fifo >=4ms after detection.
  MutingControl margin_check;
  margin_check.ObserveSpeakerBlock(0, Block(9000));
  AudioBlock mic = Block(10000);
  margin_check.ApplyToMicBlock(Millis(4), &mic);
  double attenuated = static_cast<double>(ULawDecode(mic.samples[0])) / 10000.0;

  std::printf("\n");
  BenchRow("reaction delay (first muted block)", ToMillis(first_mute - burst_start), "ms",
           "(paper: immediate, >=4ms margin available)");
  BenchRow("recovery after the last loud block", ToMillis(back_to_full - last_loud), "ms",
           "(paper: 22ms at 20% + 22ms at 50%)");
  BenchRow("mic gain 4ms after detection", attenuated * 100.0, "%", "(paper: 20%)");
  return 0;
}
