// E7 — Audio jitter induced by non-interleaved video transmission
// (paper section 4.2).
//
// Claim: "Our network code introduces more latency than necessary because
// segment transmissions are not interleaved.  Thus video segments can hold
// up following audio segments, introducing up to 20ms of jitter in a
// stream."  A 50KB video segment at 20Mbit/s occupies the interface for
// exactly 20ms.
//
// Workload: two boxes; a live audio stream, with and without a concurrent
// single-strip (large-segment) video stream through the same interface.
// We report the audio's network-latency spread (jitter) and the clawback
// buffer's response.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/simulation.h"

namespace pandora {
namespace {

struct Outcome {
  double inter_arrival_mean_ms = 0.0;
  double inter_arrival_max_ms = 0.0;
  double jitter_ms = 0.0;  // max inter-arrival minus the nominal 4ms spacing
  double clawback_depth_ms = 0.0;
  double video_segment_ms = 0.0;  // serialization time of one video segment
};

Outcome Run(bool with_video, int segments_per_frame) {
  Simulation sim;
  PandoraBox::Options options;
  options.with_video = true;
  options.video_width = 320;
  options.video_height = 240;
  options.name = "tx";
  PandoraBox& tx = sim.AddBox(options);
  options.name = "rx";
  PandoraBox& rx = sim.AddBox(options);
  BenchEnableTrace(sim.scheduler());
  sim.Start();

  StreamId audio = sim.SendAudio(tx, rx);
  if (with_video) {
    // Raw coding makes the segment big: 320x240 = 76.8KB/frame.
    StreamId at_rx = sim.AllocateStream();
    rx.server_switch().OpenRoute(at_rx, rx.dest_display(), true, false);
    sim.network().OpenCircuit(tx.port(), at_rx, rx.port());
    StreamId local = sim.AllocateStream();
    tx.server_switch().OpenRoute(local, tx.dest_network(), false, false, at_rx);
    tx.AddCameraStream(local, Rect{0, 0, 320, 240}, 1, 1, segments_per_frame,
                       LineCoding::kRawLine);
  }
  sim.RunFor(Seconds(10));
  BenchExportTrace(sim.scheduler());

  Outcome o;
  // The hold-up happens at the (non-interleaving) egress, BEFORE a segment
  // enters the circuit, so it shows as stretched inter-arrival spacing at
  // the destination rather than as circuit transit time.
  const CircuitStats* stats = sim.network().StatsFor(tx.port(), audio);
  if (stats != nullptr && stats->inter_arrival.count() > 0) {
    o.inter_arrival_mean_ms = stats->inter_arrival.Mean() / 1000.0;
    o.inter_arrival_max_ms = stats->inter_arrival.max() / 1000.0;
    o.jitter_ms = (stats->inter_arrival.max() - 4000.0) / 1000.0;
  }
  auto cb = rx.clawback_bank().TotalStats();
  o.clawback_depth_ms = static_cast<double>(cb.max_depth) * 2.0;
  size_t video_bytes = 320 * 240 / static_cast<size_t>(segments_per_frame) +
                       static_cast<size_t>(240 / segments_per_frame) + 68;
  o.video_segment_ms = static_cast<double>(video_bytes) * 8.0 / 20e6 * 1000.0;
  return o;
}

}  // namespace
}  // namespace pandora

int main(int argc, char** argv) {
  using namespace pandora;
  BenchParseArgs(argc, argv);
  BenchHeader("E7", "audio jitter behind non-interleaved video segments",
              "video segments hold up audio at the interface: up to 20ms of jitter");

  std::printf("\n  %-26s %-13s %-13s %-12s %-14s\n", "configuration", "mean spacing",
              "max spacing", "jitter", "clawback max");
  std::printf("  %-26s %-13s %-13s %-12s %-14s\n", "", "(ms)", "(ms)", "(ms)", "depth (ms)");

  Outcome quiet = Run(false, 1);
  std::printf("  %-26s %-13.3f %-13.3f %-12.3f %-14.1f\n", "audio alone",
              quiet.inter_arrival_mean_ms, quiet.inter_arrival_max_ms, quiet.jitter_ms,
              quiet.clawback_depth_ms);

  Outcome whole_frame = Run(true, 1);
  std::printf("  %-26s %-13.3f %-13.3f %-12.3f %-14.1f  <- one ~77KB segment/frame\n",
              "audio + video (1 strip)", whole_frame.inter_arrival_mean_ms,
              whole_frame.inter_arrival_max_ms, whole_frame.jitter_ms,
              whole_frame.clawback_depth_ms);

  Outcome sliced = Run(true, 8);
  std::printf("  %-26s %-13.3f %-13.3f %-12.3f %-14.1f  <- 8 strips/frame\n",
              "audio + video (8 strips)", sliced.inter_arrival_mean_ms,
              sliced.inter_arrival_max_ms, sliced.jitter_ms, sliced.clawback_depth_ms);

  std::printf("\n");
  BenchRow("whole-frame video segment on the wire", whole_frame.video_segment_ms, "ms",
           "(serialization at 20Mbit/s)");
  BenchRow("audio jitter behind whole-frame video", whole_frame.jitter_ms, "ms",
           "(paper: up to ~20ms with their ~50KB segments)");
  BenchRow("audio jitter with smaller segments", sliced.jitter_ms, "ms",
           "(smaller segments -> less hold-up)");
  BenchNote("the clawback buffer grows to ride out exactly this jitter (E1)");
  return BenchFinish();
}
