// E17: engine throughput — wall-clock events/sec and heap allocations/event
// for the discrete-event runtime itself.
//
// The paper's whole design leans on the transputer's "very cheap context
// switches" and its one-microsecond timer (section 3.1); E5 shows a server
// board shrugging off ~5 kHz switching.  For the reproduction to be the
// cheap substrate the paper assumed, the engine hot path (timer arm/fire,
// channel rendezvous, process spawn/exit, ALT selection, batched channel
// drains) must not touch the heap in steady state.  This bench drives five
// calibrated storms plus a mixed storm over the workload's real horizons
// (2 ms block timers up to 8 s clawback timers) and reports, per storm:
//
//   events/sec    wall-clock scheduler dispatches per second (simulated time
//                 is free; this is the real cost of running an experiment)
//   allocs/event  global operator-new calls per dispatch, measured AFTER a
//                 warmup pass so steady-state recycling is what is scored
//
// The --json output is the perf trajectory point checked in as
// BENCH_engine.json; CI fails if allocs/event leaves zero or events/sec
// regresses more than 20 % against the checked-in numbers (plain build
// only; sanitizers change both numbers by design).
#include <execinfo.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/buffer/small_vec.h"
#include "src/runtime/alt.h"
#include "src/runtime/channel.h"
#include "src/runtime/random.h"
#include "src/runtime/scheduler.h"

// --- global counting allocator ----------------------------------------------
// Counts every path into the heap; the storms below read the counter around
// the measured region.  Single-threaded by repo contract (pandora-lint bans
// threads in src/), so a plain counter is exact.
namespace {
uint64_t g_alloc_count = 0;
bool g_trap_allocs = false;  // set PANDORA_BENCH_TRAP=1: abort on measured-pass alloc

void* CountedAlloc(std::size_t n) {
  ++g_alloc_count;
  if (g_trap_allocs) {
    g_trap_allocs = false;  // no recursion while reporting
    void* frames[32];
    int depth = backtrace(frames, 32);
    backtrace_symbols_fd(frames, depth, 2);
    std::fputs("---\n", stderr);
    g_trap_allocs = true;
  }
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountedAlignedAlloc(std::size_t n, std::size_t align) {
  ++g_alloc_count;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n == 0 ? 1 : n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace pandora {
namespace {

struct StormScore {
  double events_per_sec = 0.0;
  double allocs_per_event = 0.0;
};

// Runs a storm twice on one scheduler: Setup builds the storm's channels
// and lanes ONCE (world construction is not what this bench scores), then a
// warmup Drive pass fills every free list, pool, ticket table and container
// capacity, and a measured Drive pass is scored.  events() counts scheduler
// dispatches plus batched-drain elements that each replaced a dispatch in
// the one-segment-per-wakeup engine (DESIGN.md §15), so throughput stays
// comparable across engines; allocs/event must be exactly zero.
template <typename Storm>
StormScore RunStorm(uint64_t warmup_iters, uint64_t iters) {
  Scheduler sched;
  ShutdownGuard guard(&sched);
  Storm storm;  // declared after the scheduler: channels die before it does
  storm.Setup(sched);
  // Two warmup passes, each the full measured length.  Slab growth happens
  // only when the CONCURRENT-live high-water mark of process records or
  // timer nodes rises, and that peak depends on where in the timer wheel's
  // phase a pass starts.  One pass leaves ~5 allocations inside the measured
  // region (the second pass starts at a different wheel phase and peaks a
  // hair higher); two passes cover both phases and the measured pass runs
  // allocation-free — exactly 0, not rounded.
  storm.Drive(sched, warmup_iters);
  storm.Drive(sched, warmup_iters);

  const uint64_t events_before = sched.events();
  const uint64_t allocs_before = g_alloc_count;
  if (std::getenv("PANDORA_BENCH_TRAP") != nullptr) {
    g_trap_allocs = true;  // debugging aid: die loudly at the stray alloc
  }
  const auto wall_before = std::chrono::steady_clock::now();
  storm.Drive(sched, iters);
  const auto wall_after = std::chrono::steady_clock::now();
  g_trap_allocs = false;
  const uint64_t allocs = g_alloc_count - allocs_before;
  const uint64_t events = sched.events() - events_before;

  StormScore score;
  const double wall_s = std::chrono::duration<double>(wall_after - wall_before).count();
  score.events_per_sec = wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0;
  score.allocs_per_event =
      events > 0 ? static_cast<double>(allocs) / static_cast<double>(events) : 0.0;
  return score;
}

// --- storm 1: timer churn ---------------------------------------------------
// 64 processes sleeping jittered intervals across the paper's 2 ms segment
// cadence, with a handful of long 8 s clawback-horizon timers armed in the
// background so the far levels of the timer structure stay populated.
struct TimerChurnStorm {
  void Setup(Scheduler&) {}
  void Drive(Scheduler& sched, uint64_t iters) {
    const int kProcs = 64;
    const uint64_t per_proc = iters / kProcs + 1;
    auto sleeper = [](Scheduler* s, Rng rng, uint64_t n) -> Process {
      for (uint64_t i = 0; i < n; ++i) {
        co_await s->WaitFor(Micros(rng.UniformInt(200, 20'000)));
      }
    };
    auto horizon = [](Scheduler* s, uint64_t n) -> Process {
      for (uint64_t i = 0; i < n; ++i) {
        co_await s->WaitFor(Seconds(8));
      }
    };
    Rng rng(101);
    for (int p = 0; p < kProcs; ++p) {
      sched.Spawn(sleeper(&sched, rng.Fork(), per_proc), "t");
    }
    sched.Spawn(horizon(&sched, per_proc / 400 + 1), "h");
    sched.RunUntilQuiescent();
  }
};

// --- storm 2: channel rendezvous --------------------------------------------
// 8 ping/pong pairs; every transfer parks one side, so both the parked-send
// and the ticketed-delivery paths are on the measured loop.  The channel
// pairs are built in Setup: constructing channels is world bring-up, not the
// steady state this bench scores.
struct RendezvousStorm {
  static constexpr int kPairs = 8;
  struct Pair {
    Pair(Scheduler* s) : ping(s, "ping"), pong(s, "pong") {}
    Channel<int> ping;
    Channel<int> pong;
  };
  std::vector<std::unique_ptr<Pair>> pairs;

  void Setup(Scheduler& sched) {
    for (int p = 0; p < kPairs; ++p) {
      pairs.push_back(std::make_unique<Pair>(&sched));
    }
  }

  void Drive(Scheduler& sched, uint64_t iters) {
    const uint64_t per_pair = iters / (4 * kPairs) + 1;
    auto client = [](Pair* pair, uint64_t n) -> Process {
      for (uint64_t i = 0; i < n; ++i) {
        co_await pair->ping.Send(static_cast<int>(i));
        (void)co_await pair->pong.Receive();
      }
    };
    auto server = [](Pair* pair, uint64_t n) -> Process {
      for (uint64_t i = 0; i < n; ++i) {
        int v = co_await pair->ping.Receive();
        co_await pair->pong.Send(v + 1);
      }
    };
    for (auto& pair : pairs) {
      sched.Spawn(client(pair.get(), per_pair), "c");
      sched.Spawn(server(pair.get(), per_pair), "s");
    }
    sched.RunUntilQuiescent();
  }
};

// --- storm 3: spawn/exit churn ----------------------------------------------
// Mimics the network's per-segment forwarders (src/net/atm.cc): a short
// coroutine per delivered segment, thousands of times per simulated second.
// Records recycle into the slab the moment each forwarder finishes — no
// PruneCompleted housekeeping between batches (it is a no-op shim now).
struct SpawnChurnStorm {
  void Setup(Scheduler&) {}
  void Drive(Scheduler& sched, uint64_t iters) {
    const uint64_t batches = iters / (2 * 4096) + 1;
    auto forwarder = [](Scheduler* s) -> Process { co_await s->WaitFor(Micros(100)); };
    for (uint64_t b = 0; b < batches; ++b) {
      for (int i = 0; i < 4096; ++i) {
        sched.Spawn(forwarder(&sched), "f", Priority::kHigh);
      }
      sched.RunUntilQuiescent();
    }
  }
};

// --- storm 4: ALT storm -----------------------------------------------------
// Consumers select over two data channels plus a timeout guard; producers
// pace so a large fraction of selects arm-and-cancel the timeout (the
// Alt-heavy shape every receiver-with-deadline in the system has).
struct AltStorm {
  static constexpr int kConsumers = 8;
  struct Lane {
    Lane(Scheduler* s) : a(s, "a"), b(s, "b") {}
    Channel<int> a;
    Channel<int> b;
  };
  std::vector<std::unique_ptr<Lane>> lanes;

  void Setup(Scheduler& sched) {
    for (int i = 0; i < kConsumers; ++i) {
      lanes.push_back(std::make_unique<Lane>(&sched));
    }
  }

  void Drive(Scheduler& sched, uint64_t iters) {
    const uint64_t per_consumer = iters / (4 * kConsumers) + 1;
    auto producer = [](Scheduler* s, Channel<int>* ch, Rng rng, uint64_t n) -> Process {
      for (uint64_t i = 0; i < n; ++i) {
        co_await ch->Send(static_cast<int>(i));
        co_await s->WaitFor(Micros(rng.UniformInt(150, 600)));
      }
    };
    auto consumer = [](Scheduler* s, Lane* lane, Rng rng, uint64_t n) -> Process {
      for (uint64_t done = 0; done < n;) {
        Alt alt(s);
        alt.OnReceive(lane->a).OnReceive(lane->b).OnTimeoutAfter(
            Micros(rng.UniformInt(100, 400)));
        int chosen = co_await alt.Select();
        if (chosen == 0) {
          (void)co_await lane->a.Receive();
          ++done;
        } else if (chosen == 1) {
          (void)co_await lane->b.Receive();
          ++done;
        }
      }
    };
    Rng rng(202);
    for (auto& lane : lanes) {
      sched.Spawn(producer(&sched, &lane->a, rng.Fork(), per_consumer / 2 + 1), "pa");
      sched.Spawn(producer(&sched, &lane->b, rng.Fork(), per_consumer / 2 + 1), "pb");
      sched.Spawn(consumer(&sched, lane.get(), rng.Fork(), per_consumer), "c");
    }
    sched.RunUntilQuiescent();
  }
};

// --- storm 5: batched drain -------------------------------------------------
// The converted ingress/egress shape (DESIGN.md §15): many producers feed one
// consumer which blocks for the first element, then drains every sender that
// parked behind it in one wakeup via TryReceiveBatch.  Each drained element
// retires a sender for the cost of a ready-list push instead of a full
// dispatch round-trip — the same economy NetworkInput, NetworkOutput and the
// switch now run on.
struct BatchDrainStorm {
  static constexpr int kProducers = 16;
  std::unique_ptr<Channel<int>> ch;

  void Setup(Scheduler& sched) { ch = std::make_unique<Channel<int>>(&sched, "drain"); }

  void Drive(Scheduler& sched, uint64_t iters) {
    // ~2 events per element: one dispatch pair amortized across the batch
    // plus one batched credit per drained element.
    const uint64_t per_producer = iters / (2 * kProducers) + 1;
    auto producer = [](Channel<int>* ch, uint64_t n) -> Process {
      for (uint64_t i = 0; i < n; ++i) {
        co_await ch->Send(static_cast<int>(i));
      }
    };
    auto consumer = [](Channel<int>* ch, uint64_t total) -> Process {
      SmallVec<int, 64> batch;
      for (uint64_t got = 0; got < total;) {
        (void)co_await ch->Receive();
        ++got;
        batch.clear();
        got += static_cast<uint64_t>(ch->TryReceiveBatch(batch, kProducers - 1));
      }
    };
    for (int p = 0; p < kProducers; ++p) {
      sched.Spawn(producer(ch.get(), per_producer), "p");
    }
    sched.Spawn(consumer(ch.get(), kProducers * per_producer), "c");
    sched.RunUntilQuiescent();
  }
};

// --- storm 6: mixed ---------------------------------------------------------
// All five shapes back-to-back on one scheduler, weighted the way a real box
// mesh spends its dispatches: per-segment wire traffic (now the batched
// drain shape end to end) dominates, with timers, rendezvous control
// round-trips, forwarder spawns and Alt deadlines sharing the rest — the
// profile E5/E16 worlds actually produce.
struct MixedStorm {
  TimerChurnStorm timers;
  RendezvousStorm rendezvous;
  SpawnChurnStorm spawns;
  AltStorm alts;
  BatchDrainStorm drain;

  void Setup(Scheduler& sched) {
    timers.Setup(sched);
    rendezvous.Setup(sched);
    spawns.Setup(sched);
    alts.Setup(sched);
    drain.Setup(sched);
  }

  void Drive(Scheduler& sched, uint64_t iters) {
    // Weights follow the dispatch profile of a running call mesh: every
    // segment crosses switch → egress → wire → ingress → switch → buffer, so
    // per-segment events outnumber block-timer fires well over 10:1.
    timers.Drive(sched, iters / 16);
    rendezvous.Drive(sched, iters / 8);
    spawns.Drive(sched, iters / 8);
    alts.Drive(sched, iters / 8);
    drain.Drive(sched, (9 * iters) / 16);
  }
};

void Report(const std::string& name, const StormScore& score) {
  BenchRow(name + " events/sec", score.events_per_sec, "ev/s");
  BenchRow(name + " allocs/event", score.allocs_per_event, "alloc");
}

}  // namespace
}  // namespace pandora

int main(int argc, char** argv) {
  using namespace pandora;
  BenchParseArgs(argc, argv);
  BenchHeader("E17", "engine throughput (events/sec, allocations/event)",
              "section 3.1: 'very cheap' context switches and a 1 us timer are "
              "the substrate every other experiment stands on");

  // Warmup runs the SAME iteration count as the measured pass (twice — see
  // RunStorm): each storm reseeds its Rngs per Drive, so a warmup pass
  // replays the measured pass's workload and every recycling structure
  // (process-record slab, timer-node arena, channel ticket tables) reaches
  // its high-water capacity before measurement starts.
  const uint64_t kWarmup = 2'000'000;
  const uint64_t kIters = 2'000'000;
  Report("timer churn", RunStorm<TimerChurnStorm>(kWarmup, kIters));
  Report("rendezvous", RunStorm<RendezvousStorm>(kWarmup, kIters));
  Report("spawn churn", RunStorm<SpawnChurnStorm>(kWarmup, kIters));
  Report("alt storm", RunStorm<AltStorm>(kWarmup, kIters));
  Report("batched drain", RunStorm<BatchDrainStorm>(kWarmup, kIters));
  Report("mixed storm", RunStorm<MixedStorm>(kWarmup, kIters));
  BenchNote("events = dispatches + batched-drain credits (Scheduler::events); "
            "allocs counted by a global counting operator new around the "
            "measured (post-warmup) pass");
  return BenchFinish();
}
