// E17: engine throughput — wall-clock events/sec and heap allocations/event
// for the discrete-event runtime itself.
//
// The paper's whole design leans on the transputer's "very cheap context
// switches" and its one-microsecond timer (section 3.1); E5 shows a server
// board shrugging off ~5 kHz switching.  For the reproduction to be the
// cheap substrate the paper assumed, the engine hot path (timer arm/fire,
// channel rendezvous, process spawn/exit, ALT selection) must not touch the
// heap in steady state.  This bench drives four calibrated storms plus a
// mixed storm over the workload's real horizons (2 ms block timers up to
// 8 s clawback timers) and reports, per storm:
//
//   events/sec    wall-clock scheduler dispatches per second (simulated time
//                 is free; this is the real cost of running an experiment)
//   allocs/event  global operator-new calls per dispatch, measured AFTER a
//                 warmup pass so steady-state recycling is what is scored
//
// The --json output is the perf trajectory point checked in as
// BENCH_engine.json; CI fails if allocs/event leaves zero or events/sec
// regresses more than 20 % against the checked-in numbers (plain build
// only; sanitizers change both numbers by design).
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/runtime/alt.h"
#include "src/runtime/channel.h"
#include "src/runtime/random.h"
#include "src/runtime/scheduler.h"

// --- global counting allocator ----------------------------------------------
// Counts every path into the heap; the storms below read the counter around
// the measured region.  Single-threaded by repo contract (pandora-lint bans
// threads in src/), so a plain counter is exact.
namespace {
uint64_t g_alloc_count = 0;

void* CountedAlloc(std::size_t n) {
  ++g_alloc_count;
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountedAlignedAlloc(std::size_t n, std::size_t align) {
  ++g_alloc_count;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n == 0 ? 1 : n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace pandora {
namespace {

struct StormScore {
  double events_per_sec = 0.0;
  double allocs_per_event = 0.0;
};

// Runs `drive(sched, iters)` twice on one scheduler: a warmup pass (fills
// every free list, pool and container capacity) and a measured pass.
template <typename Drive>
StormScore RunStorm(Drive drive, uint64_t warmup_iters, uint64_t iters) {
  Scheduler sched;
  ShutdownGuard guard(&sched);
  drive(sched, warmup_iters);

  const uint64_t events_before = sched.context_switches();
  const uint64_t allocs_before = g_alloc_count;
  const auto wall_before = std::chrono::steady_clock::now();
  drive(sched, iters);
  const auto wall_after = std::chrono::steady_clock::now();
  const uint64_t allocs = g_alloc_count - allocs_before;
  const uint64_t events = sched.context_switches() - events_before;

  StormScore score;
  const double wall_s = std::chrono::duration<double>(wall_after - wall_before).count();
  score.events_per_sec = wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0;
  score.allocs_per_event =
      events > 0 ? static_cast<double>(allocs) / static_cast<double>(events) : 0.0;
  return score;
}

// --- storm 1: timer churn ---------------------------------------------------
// 64 processes sleeping jittered intervals across the paper's 2 ms segment
// cadence, with a handful of long 8 s clawback-horizon timers armed in the
// background so the far levels of the timer structure stay populated.
void DriveTimerChurn(Scheduler& sched, uint64_t iters) {
  const int kProcs = 64;
  const uint64_t per_proc = iters / kProcs + 1;
  auto sleeper = [](Scheduler* s, Rng rng, uint64_t n) -> Process {
    for (uint64_t i = 0; i < n; ++i) {
      co_await s->WaitFor(Micros(rng.UniformInt(200, 20'000)));
    }
  };
  auto horizon = [](Scheduler* s, uint64_t n) -> Process {
    for (uint64_t i = 0; i < n; ++i) {
      co_await s->WaitFor(Seconds(8));
    }
  };
  Rng rng(101);
  for (int p = 0; p < kProcs; ++p) {
    sched.Spawn(sleeper(&sched, rng.Fork(), per_proc), "t");
  }
  sched.Spawn(horizon(&sched, per_proc / 400 + 1), "h");
  sched.RunUntilQuiescent();
}

// --- storm 2: channel rendezvous --------------------------------------------
// 8 ping/pong pairs; every transfer parks one side, so both the parked-send
// and the ticketed-delivery paths are on the measured loop.
void DriveRendezvous(Scheduler& sched, uint64_t iters) {
  const int kPairs = 8;
  const uint64_t per_pair = iters / (4 * kPairs) + 1;
  struct Pair {
    Pair(Scheduler* s) : ping(s, "ping"), pong(s, "pong") {}
    Channel<int> ping;
    Channel<int> pong;
  };
  std::vector<std::unique_ptr<Pair>> pairs;
  for (int p = 0; p < kPairs; ++p) {
    pairs.push_back(std::make_unique<Pair>(&sched));
  }
  auto client = [](Pair* pair, uint64_t n) -> Process {
    for (uint64_t i = 0; i < n; ++i) {
      co_await pair->ping.Send(static_cast<int>(i));
      (void)co_await pair->pong.Receive();
    }
  };
  auto server = [](Pair* pair, uint64_t n) -> Process {
    for (uint64_t i = 0; i < n; ++i) {
      int v = co_await pair->ping.Receive();
      co_await pair->pong.Send(v + 1);
    }
  };
  for (auto& pair : pairs) {
    sched.Spawn(client(pair.get(), per_pair), "c");
    sched.Spawn(server(pair.get(), per_pair), "s");
  }
  sched.RunUntilQuiescent();
}

// --- storm 3: spawn/exit churn ----------------------------------------------
// Mimics the network's per-segment forwarders (src/net/atm.cc): a short
// coroutine per delivered segment, thousands of times per simulated second.
// Records recycle into the slab the moment each forwarder finishes — no
// PruneCompleted housekeeping between batches (it is a no-op shim now).
void DriveSpawnChurn(Scheduler& sched, uint64_t iters) {
  const uint64_t batches = iters / (2 * 4096) + 1;
  auto forwarder = [](Scheduler* s) -> Process { co_await s->WaitFor(Micros(100)); };
  for (uint64_t b = 0; b < batches; ++b) {
    for (int i = 0; i < 4096; ++i) {
      sched.Spawn(forwarder(&sched), "f", Priority::kHigh);
    }
    sched.RunUntilQuiescent();
  }
}

// --- storm 4: ALT storm -----------------------------------------------------
// Consumers select over two data channels plus a timeout guard; producers
// pace so a large fraction of selects arm-and-cancel the timeout (the
// Alt-heavy shape every receiver-with-deadline in the system has).
void DriveAltStorm(Scheduler& sched, uint64_t iters) {
  const int kConsumers = 8;
  const uint64_t per_consumer = iters / (4 * kConsumers) + 1;
  struct Lane {
    Lane(Scheduler* s) : a(s, "a"), b(s, "b") {}
    Channel<int> a;
    Channel<int> b;
  };
  std::vector<std::unique_ptr<Lane>> lanes;
  for (int i = 0; i < kConsumers; ++i) {
    lanes.push_back(std::make_unique<Lane>(&sched));
  }
  auto producer = [](Scheduler* s, Channel<int>* ch, Rng rng, uint64_t n) -> Process {
    for (uint64_t i = 0; i < n; ++i) {
      co_await ch->Send(static_cast<int>(i));
      co_await s->WaitFor(Micros(rng.UniformInt(150, 600)));
    }
  };
  auto consumer = [](Scheduler* s, Lane* lane, Rng rng, uint64_t n) -> Process {
    for (uint64_t done = 0; done < n;) {
      Alt alt(s);
      alt.OnReceive(lane->a).OnReceive(lane->b).OnTimeoutAfter(Micros(rng.UniformInt(100, 400)));
      int chosen = co_await alt.Select();
      if (chosen == 0) {
        (void)co_await lane->a.Receive();
        ++done;
      } else if (chosen == 1) {
        (void)co_await lane->b.Receive();
        ++done;
      }
    }
  };
  Rng rng(202);
  for (auto& lane : lanes) {
    sched.Spawn(producer(&sched, &lane->a, rng.Fork(), per_consumer / 2 + 1), "pa");
    sched.Spawn(producer(&sched, &lane->b, rng.Fork(), per_consumer / 2 + 1), "pb");
    sched.Spawn(consumer(&sched, lane.get(), rng.Fork(), per_consumer), "c");
  }
  sched.RunUntilQuiescent();
}

// --- storm 5: mixed ---------------------------------------------------------
// All four shapes back-to-back on one scheduler; closest to the alloc mix a
// real box mesh produces over a run.
void DriveMixed(Scheduler& sched, uint64_t iters) {
  DriveTimerChurn(sched, iters / 4);
  DriveRendezvous(sched, iters / 4);
  DriveSpawnChurn(sched, iters / 4);
  DriveAltStorm(sched, iters / 4);
}

void Report(const std::string& name, const StormScore& score) {
  BenchRow(name + " events/sec", score.events_per_sec, "ev/s");
  BenchRow(name + " allocs/event", score.allocs_per_event, "alloc");
}

}  // namespace
}  // namespace pandora

int main(int argc, char** argv) {
  using namespace pandora;
  BenchParseArgs(argc, argv);
  BenchHeader("E17", "engine throughput (events/sec, allocations/event)",
              "section 3.1: 'very cheap' context switches and a 1 us timer are "
              "the substrate every other experiment stands on");

  const uint64_t kWarmup = 200'000;
  const uint64_t kIters = 2'000'000;
  Report("timer churn", RunStorm(DriveTimerChurn, kWarmup, kIters));
  Report("rendezvous", RunStorm(DriveRendezvous, kWarmup, kIters));
  Report("spawn churn", RunStorm(DriveSpawnChurn, kWarmup, kIters));
  Report("alt storm", RunStorm(DriveAltStorm, kWarmup, kIters));
  Report("mixed storm", RunStorm(DriveMixed, kWarmup, kIters));
  BenchNote("events = scheduler dispatches; allocs counted by a global "
            "counting operator new around the measured (post-warmup) pass");
  return BenchFinish();
}
