// E2 — Multi-rate clawback decay (paper section 3.7.2).
//
// Claim: with the block-seconds product rule at a level of 20 block-seconds,
// "if the minimum contents were 10ms, we would be removing a 2ms block
// every 2000 blocks, or 4 seconds.  If the minimum contents were 50ms, then
// we would remove a 2ms block every 400 blocks, or 0.8 seconds.  The block
// seconds level represents a time constant for the exponential decay of the
// jitter correction delay.  The time to halve the delay when the jitter
// source is removed is roughly 0.7 times the level that has been set for
// the product, which would be about 14 seconds."
//
// Workload: a buffer pre-loaded with 100ms of correction delay (a severe
// jitter episode just ended); steady 2ms arrivals and 2ms pops.  We log the
// decay and measure the half-life, and separately verify the steady-state
// drop intervals at held depths.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/buffer/clawback.h"
#include "src/segment/audio_block.h"

namespace pandora {
namespace {

ClawbackConfig MultiRate() {
  ClawbackConfig config;
  config.mode = ClawbackMode::kMultiRate;
  config.per_stream_limit_blocks = 200;
  config.block_seconds_level = 20.0;
  return config;
}

// Steady-state drop interval with depth held constant.
int DropInterval(int depth_blocks) {
  ClawbackPool pool(Seconds(8));
  ClawbackBuffer buffer(1, MultiRate(), &pool);
  AudioBlock block;
  for (int i = 0; i < depth_blocks; ++i) {
    buffer.Push(block);
  }
  std::vector<int> drops;
  for (int i = 1; drops.size() < 3 && i <= 200000; ++i) {
    if (buffer.Push(block) == ClawbackPushResult::kDroppedClawback) {
      drops.push_back(i);
    } else {
      buffer.Pop();
    }
  }
  return drops.size() >= 3 ? drops[2] - drops[1] : -1;
}

}  // namespace
}  // namespace pandora

int main() {
  using namespace pandora;
  BenchHeader("E2", "multi-rate clawback: drop frequency proportional to the buffer floor",
              "20 block-seconds: 10ms floor -> drop per 4s; 50ms -> per 0.8s; half-life ~14s");

  std::printf("\n  steady-state drop interval vs held correction delay:\n");
  std::printf("  %-12s %-16s %-16s %-14s\n", "floor", "measured", "measured", "paper");
  std::printf("  %-12s %-16s %-16s %-14s\n", "(ms)", "(blocks)", "(seconds)", "(seconds)");
  struct Case {
    int depth;
    double paper_seconds;
  };
  for (const auto& c : {Case{5, 4.0}, Case{25, 0.8}, Case{50, 0.4}}) {
    int interval = DropInterval(c.depth);
    std::printf("  %-12d %-16d %-16.2f %-14.2f\n", c.depth * 2, interval,
                interval * 0.002, c.paper_seconds);
  }

  // Decay curve from 100ms with the jitter source removed.
  ClawbackPool pool(Seconds(8));
  ClawbackBuffer buffer(1, MultiRate(), &pool);
  AudioBlock block;
  for (int i = 0; i < 50; ++i) {
    buffer.Push(block);  // 100ms of stale correction delay
  }
  std::printf("\n  decay of a 100ms correction delay (jitter gone):\n");
  std::printf("  t(s)  delay(ms)\n");
  // One arrival and one mixer pop per 2ms tick: a clawback drop therefore
  // shrinks the delay by one block.  The measurement window is polluted by
  // the fill-up ramp until the first drop resets it, so the half-life is
  // measured from the first drop.
  double half_life = -1;
  const double start_ms = 100.0;
  int first_drop_tick = -1;
  int tick = 0;
  for (; tick <= 120 * 500; ++tick) {  // 120 seconds of 2ms ticks
    if (buffer.Push(block) == ClawbackPushResult::kDroppedClawback && first_drop_tick < 0) {
      first_drop_tick = tick;
    }
    buffer.Pop();
    double delay_ms = ToMillis(buffer.delay());
    if (tick % (5 * 500) == 0) {
      std::printf("  %4d  %8.1f\n", tick / 500, delay_ms);
    }
    if (half_life < 0 && first_drop_tick >= 0 && delay_ms <= start_ms / 2.0) {
      half_life = (tick - first_drop_tick) * 0.002;
    }
  }

  std::printf("\n");
  BenchRow("first drop after the episode", first_drop_tick * 0.002, "s",
           "(window priming: min tracks the pre-jitter floor until one drop)");
  BenchRow("half-life measured from the first drop", half_life, "s",
           "(paper: ~0.7 x 20 block-seconds = 14s)");
  return 0;
}
