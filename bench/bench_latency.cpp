// E6 — Best one-way audio trip time (paper section 4.2).
//
// Claim: "When other streams are quiet, the best one-way trip time from
// microphone input of one box to speaker output of another box over the
// network was 8ms.  4ms of this can be accounted for in the buffering to
// the codec, and 2ms in the buffering from the codec."
//
// Workload: two boxes on a quiet network, one live audio stream.  We
// decompose the measured latency into the paper's stages and sweep the
// blocks-per-segment setting (1 block = lowest latency, 12 = overloaded
// recipient).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/simulation.h"

namespace pandora {
namespace {

struct Decomposition {
  double mixer_latency_ms = 0.0;   // mic -> destination mixer
  double playout_ms = 0.0;         // mixer -> loudspeaker (codec buffering)
  double network_ms = 0.0;         // wire transit
  double total_ms = 0.0;
  double min_total_ms = 0.0;
};

Decomposition Run(int blocks_per_segment) {
  Simulation sim;
  PandoraBox::Options options;
  options.with_video = false;
  options.name = "tx";
  PandoraBox& tx = sim.AddBox(options);
  options.name = "rx";
  PandoraBox& rx = sim.AddBox(options);
  BenchEnableTrace(sim.scheduler());
  sim.Start();
  StreamId stream = sim.SendAudio(tx, rx);
  if (blocks_per_segment != kDefaultBlocksPerSegment) {
    auto commander = [](Scheduler* s, CommandChannel* cmd, StreamId stream,
                        int blocks) -> Process {
      co_await cmd->Send(Command{CommandVerb::kSetBlocksPerSegment, stream, blocks, 0});
      (void)s;
    };
    sim.scheduler().Spawn(
        commander(&sim.scheduler(), &tx.audio_sender().commands(), stream, blocks_per_segment),
        "host.blocks");
  }
  sim.RunFor(Seconds(10));
  BenchExportTrace(sim.scheduler());

  Decomposition d;
  const StatAccumulator* mixer_latency = rx.mixer().LatencyFor(stream);
  const CircuitStats* net = sim.network().StatsFor(tx.port(), stream);
  d.mixer_latency_ms = mixer_latency != nullptr ? mixer_latency->Mean() / 1000.0 : 0.0;
  d.playout_ms = rx.codec_out().latency().Mean() / 1000.0;
  d.network_ms = net != nullptr ? net->latency.Mean() / 1000.0 : 0.0;
  d.total_ms = d.mixer_latency_ms + d.playout_ms;
  d.min_total_ms =
      (mixer_latency != nullptr ? mixer_latency->min() / 1000.0 : 0.0) +
      rx.codec_out().latency().min() / 1000.0;
  return d;
}

}  // namespace
}  // namespace pandora

int main(int argc, char** argv) {
  using namespace pandora;
  BenchParseArgs(argc, argv);
  BenchHeader("E6", "one-way mic -> speaker latency decomposition",
              "best trip 8ms: 4ms buffering to the codec + 2ms from the codec + transit");

  std::printf("\n  %-16s %-12s %-12s %-12s %-10s %-10s\n", "blocks/segment", "mic->mixer",
              "playout", "network", "mean", "best");
  std::printf("  %-16s %-12s %-12s %-12s %-10s %-10s\n", "", "(ms)", "(ms)", "(ms)", "(ms)",
              "(ms)");
  for (int blocks : {1, 2, 4, 12}) {
    Decomposition d = Run(blocks);
    const char* note = "";
    if (blocks == 1) {
      note = "  <- lowest latency (2ms segments)";
    } else if (blocks == 2) {
      note = "  <- default (principle 7)";
    } else if (blocks == 12) {
      note = "  <- overloaded recipient (24ms)";
    }
    std::printf("  %-16d %-12.2f %-12.2f %-12.2f %-10.2f %-10.2f%s\n", blocks,
                d.mixer_latency_ms, d.playout_ms, d.network_ms, d.total_ms, d.min_total_ms,
                note);
  }

  Decomposition best = Run(1);
  std::printf("\n");
  BenchRow("best one-way trip (1-block segments)", best.min_total_ms, "ms", "(paper: 8ms)");
  BenchRow("playout (buffering to codec)", best.playout_ms, "ms", "(paper: ~4ms)");
  BenchNote("the 'from the codec' 2ms is the block accumulation inside mic->mixer");
  return BenchFinish();
}
