// E20: batched-pipeline sweep — what the batched ingress/egress drains
// (DESIGN.md §15) buy and cost on a real call mesh.
//
// Four audio boxes in a WAN call ring, one circuit per edge, run at every
// point of a (max_batch x max_hold) grid.  Per configuration this reports:
//
//   sim rate      simulated seconds per wall-clock second — the real price
//                 of running an experiment; batching exists to raise this
//   events/sec    wall-clock dispatches + batched-drain credits per second
//   latency max   worst end-to-end audio block latency observed at any
//                 box's mixer (mixing time minus source timestamp).  The
//                 max bounds the p99 from above, so gating it is strictly
//                 harsher than the paper's 10-20 ms end-to-end budget for
//                 interactive audio (section 2).
//
// Claims gated in CI (plain build):
//   - max_batch = 16, max_hold = 0 leaves the latency profile IDENTICAL to
//     the legacy max_batch = 1 engine (batch boundaries only harvest work
//     already parked at the same simulated instant — P7 unharmed);
//   - a nonzero max_hold adds at most the pipeline's stage budget to the
//     worst block (a segment crosses at most 8 batched drains end to end,
//     and the mixer quantizes arrival to its 2 ms tick) and stays inside
//     the 20 ms budget;
//   - batching never slows the mesh down (sim-rate >= the legacy engine's).
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/buffer/clawback.h"
#include "src/core/box.h"
#include "src/core/simulation.h"
#include "src/runtime/channel.h"
#include "src/runtime/time.h"

namespace pandora {
namespace {

struct BatchScore {
  double sim_rate = 0.0;        // simulated seconds per wall second
  double events_per_sec = 0.0;  // dispatches + batched credits per wall second
  double latency_max_us = 0.0;  // worst e2e audio block latency at any mixer
  double latency_mean_us = 0.0;
  uint64_t delivered = 0;
};

// One cold world per grid point: 2 simulated seconds of warmup (clawback
// converges, every pool and slab reaches its high-water mark), then 10
// measured simulated seconds.  The mixer latency accumulators span the whole
// run; every configuration carries the identical startup transient, so
// differences between configurations are pure batching effects.
BatchScore RunConfig(int max_batch, Duration max_hold) {
  SimulationOptions sim_options;
  sim_options.seed = 29;
  Simulation sim(sim_options);

  ClawbackConfig clawback;
  clawback.count_threshold = 16;  // converge within warmup (chaos-suite tuning)

  std::vector<PandoraBox*> boxes;
  for (int i = 0; i < 4; ++i) {
    PandoraBox::Options options;
    options.name = "ring" + std::to_string(i);
    options.with_video = false;
    options.clawback = clawback;
    options.batch.max_batch = max_batch;
    options.batch.max_hold = max_hold;
    boxes.push_back(&sim.AddBox(options));
  }
  sim.Start();
  CallPath wan;
  wan.direct.propagation = Millis(1);
  for (int i = 0; i < 4; ++i) {
    sim.SendAudio(*boxes[static_cast<size_t>(i)], *boxes[static_cast<size_t>((i + 1) % 4)], wan);
  }
  sim.RunFor(Seconds(2));

  const uint64_t events_before = sim.scheduler().events();
  const auto wall_before = std::chrono::steady_clock::now();
  sim.RunFor(Seconds(10));
  const auto wall_after = std::chrono::steady_clock::now();
  const uint64_t events = sim.scheduler().events() - events_before;

  BatchScore score;
  const double wall_s = std::chrono::duration<double>(wall_after - wall_before).count();
  score.sim_rate = wall_s > 0 ? 10.0 / wall_s : 0.0;
  score.events_per_sec = wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0;
  double weighted_sum = 0.0;
  double samples = 0.0;
  for (PandoraBox* box : boxes) {
    const StatAccumulator& lat = box->mixer().all_latency();
    if (lat.count() == 0) {
      continue;
    }
    score.latency_max_us = std::max(score.latency_max_us, lat.max());
    weighted_sum += lat.Mean() * static_cast<double>(lat.count());
    samples += static_cast<double>(lat.count());
  }
  score.latency_mean_us = samples > 0 ? weighted_sum / samples : 0.0;
  score.delivered = sim.network().total_delivered();
  return score;
}

std::string Tag(int max_batch, Duration max_hold) {
  std::string tag = "batch=" + std::to_string(max_batch);
  if (max_hold > 0) {
    tag += " hold=" + std::to_string(max_hold) + "us";
  }
  return tag;
}

void ReportConfig(const std::string& tag, const BatchScore& score) {
  BenchRow(tag + " sim rate", score.sim_rate, "sim-s/s");
  BenchRow(tag + " events/sec", score.events_per_sec, "ev/s");
  BenchRow(tag + " e2e latency max", score.latency_max_us, "us");
  BenchRow(tag + " e2e latency mean", score.latency_mean_us, "us");
  BenchRow(tag + " delivered", static_cast<double>(score.delivered), "seg");
}

}  // namespace
}  // namespace pandora

int main(int argc, char** argv) {
  using namespace pandora;
  BenchParseArgs(argc, argv);
  BenchHeader("E20", "batched pipeline sweep (sim rate, e2e latency by batch budget)",
              "section 2's 10-20 ms end-to-end audio budget must survive the "
              "batched drains; section 3.1's cheap dispatch is what they amortize");

  const BatchScore legacy = RunConfig(1, 0);
  ReportConfig(Tag(1, 0), legacy);
  BatchScore batch16;
  for (int max_batch : {4, 16, 64}) {
    const BatchScore score = RunConfig(max_batch, 0);
    ReportConfig(Tag(max_batch, 0), score);
    if (max_batch == 16) {
      batch16 = score;
    }
  }
  for (Duration hold : {Micros(250), Micros(1000)}) {
    ReportConfig(Tag(16, hold), RunConfig(16, hold));
  }

  BenchRow("batch=16 sim-rate speedup vs legacy",
           legacy.sim_rate > 0 ? batch16.sim_rate / legacy.sim_rate : 0.0, "x");
  BenchNote("one cold 4-box ring per grid point; latency spans warmup too, "
            "identically for every configuration.  max >= p99, so the gated "
            "ceiling is stricter than a p99 gate at the same value");
  return BenchFinish();
}
