// MEDUSA — the exploded Pandora (paper section 5.2, future work).
//
// Claim: "The main difference in Medusa is that the Pandora boards
// communicating over a network of links and ATM rings have been replaced by
// Medusa boards communicating over an ATM switch fabric so that we have an
// exploded Pandora...  the principles employed in Pandora will still be
// applicable", with streams "more independent than in Pandora" because they
// no longer converge on a server transputer.
//
// Comparison: one live audio stream, box-to-box (through two server boards
// and two inter-board links) vs device-to-device (straight onto the
// fabric), on the same network; then both architectures under the same
// jitter episode, showing the clawback behaving identically.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/simulation.h"
#include "src/medusa/devices.h"

namespace pandora {
namespace {

struct Outcome {
  double latency_mean_ms = 0.0;
  double latency_min_ms = 0.0;
  double played_blocks = 0.0;
  double clawback_max_ms = 0.0;
};

Outcome RunPandora(Duration jitter_max) {
  Simulation sim;
  PandoraBox::Options options;
  options.with_video = false;
  options.name = "tx";
  PandoraBox& tx = sim.AddBox(options);
  options.name = "rx";
  PandoraBox& rx = sim.AddBox(options);
  sim.Start();
  CallPath path;
  path.direct.jitter_max = jitter_max;
  StreamId stream = sim.SendAudio(tx, rx, path);
  sim.RunFor(Seconds(30));

  Outcome o;
  const StatAccumulator* latency = rx.mixer().LatencyFor(stream);
  if (latency != nullptr) {
    o.latency_mean_ms = latency->Mean() / 1000.0;
    o.latency_min_ms = latency->min() / 1000.0;
  }
  o.played_blocks = static_cast<double>(rx.codec_out().played_blocks());
  o.clawback_max_ms = static_cast<double>(rx.clawback_bank().TotalStats().max_depth) * 2.0;
  return o;
}

Outcome RunMedusa(Duration jitter_max) {
  Scheduler sched;
  AtmNetwork net(&sched, 1);
  NetMicrophone mic(&sched, &net, {.name = "mic", .stream = 1});
  NetSpeaker speaker(&sched, &net, {.name = "spk"});
  ShutdownGuard guard(&sched);
  HopQuality direct;
  direct.jitter_max = jitter_max;
  StreamId stream = ConnectAudio(&net, &mic, &speaker, {}, direct);
  mic.Start();
  speaker.Start();
  sched.RunFor(Seconds(30));

  Outcome o;
  const StatAccumulator* latency = speaker.mixer().LatencyFor(stream);
  if (latency != nullptr) {
    o.latency_mean_ms = latency->Mean() / 1000.0;
    o.latency_min_ms = latency->min() / 1000.0;
  }
  o.played_blocks = static_cast<double>(speaker.codec_out().played_blocks());
  o.clawback_max_ms = static_cast<double>(speaker.bank().TotalStats().max_depth) * 2.0;
  return o;
}

}  // namespace
}  // namespace pandora

int main() {
  using namespace pandora;
  BenchHeader("MEDUSA", "exploded Pandora: devices on the fabric vs full boxes",
              "same principles, fewer boards in the path; streams fully independent");

  std::printf("\n  one audio stream for 30s (mic -> far mixer latency):\n");
  std::printf("  %-26s %-12s %-12s %-12s %-14s\n", "architecture", "mean (ms)", "min (ms)",
              "blocks", "clawback max");
  Outcome pandora_quiet = RunPandora(0);
  std::printf("  %-26s %-12.2f %-12.2f %-12.0f %-14.1f\n", "Pandora boxes (quiet)",
              pandora_quiet.latency_mean_ms, pandora_quiet.latency_min_ms,
              pandora_quiet.played_blocks, pandora_quiet.clawback_max_ms);
  Outcome medusa_quiet = RunMedusa(0);
  std::printf("  %-26s %-12.2f %-12.2f %-12.0f %-14.1f\n", "Medusa devices (quiet)",
              medusa_quiet.latency_mean_ms, medusa_quiet.latency_min_ms,
              medusa_quiet.played_blocks, medusa_quiet.clawback_max_ms);

  Outcome pandora_jitter = RunPandora(Millis(15));
  std::printf("  %-26s %-12.2f %-12.2f %-12.0f %-14.1f\n", "Pandora boxes (15ms jit)",
              pandora_jitter.latency_mean_ms, pandora_jitter.latency_min_ms,
              pandora_jitter.played_blocks, pandora_jitter.clawback_max_ms);
  Outcome medusa_jitter = RunMedusa(Millis(15));
  std::printf("  %-26s %-12.2f %-12.2f %-12.0f %-14.1f\n", "Medusa devices (15ms jit)",
              medusa_jitter.latency_mean_ms, medusa_jitter.latency_min_ms,
              medusa_jitter.played_blocks, medusa_jitter.clawback_max_ms);

  std::printf("\n");
  BenchRow("latency saved by exploding the box",
           pandora_quiet.latency_mean_ms - medusa_quiet.latency_mean_ms, "ms",
           "(no server boards / inter-board links in the path)");
  BenchRow("clawback growth under jitter, Pandora", pandora_jitter.clawback_max_ms, "ms", "");
  BenchRow("clawback growth under jitter, Medusa", medusa_jitter.clawback_max_ms, "ms",
           "(same mechanism, same adaptation — the principles carry over)");
  return 0;
}
