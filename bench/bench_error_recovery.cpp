// E11 — Audio loss recovery quality (paper section 3.8).
//
// Claims: "Dropping occasional 2ms blocks was noticeable in most music, but
// rarely in speech.  If 2ms blocks are repeatedly dropped, the speech
// sounds 'gravelly'...  Replaying the last 2ms block occasionally is
// perfectly acceptable for speech, and replaying 2ms blocks frequently
// gives a garbled effect.  We replay the last 2ms block, and try to ensure
// that it does not happen frequently."
//
// Objective proxies: per-second recovery-event rate, SNR of the played
// waveform against the reference (both for a sustained tone — the paper's
// "solo violin" worst case — and for speech-like audio), swept over segment
// loss rates, comparing silence insertion vs replay-last-block.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/audio/codec.h"
#include "src/audio/mixer.h"
#include "src/audio/receiver.h"
#include "src/audio/sender.h"
#include "src/audio/signal.h"
#include "src/buffer/clawback.h"
#include "src/buffer/pool.h"
#include "src/runtime/random.h"
#include "src/runtime/scheduler.h"

namespace pandora {
namespace {

Process LossyRelay(Scheduler* sched, Channel<SegmentRef>* in, Channel<SegmentRef>* out,
                   double loss_rate, Rng* rng) {
  for (;;) {
    SegmentRef ref = co_await in->Receive();
    if (rng->Bernoulli(loss_rate)) {
      continue;
    }
    co_await out->Send(std::move(ref));
    (void)sched;
  }
}

struct Outcome {
  double snr_db = 0.0;
  double recovery_events_per_s = 0.0;  // replays + silences at the mixer
  double loss_seen = 0.0;
};

Outcome Run(double loss_rate, MixRecovery recovery, bool speech) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 64);
  Channel<AudioBlock> mic(&sched, "mic");
  Channel<SegmentRef> wire_in(&sched, "wire.in");
  Channel<SegmentRef> wire_out(&sched, "wire.out");
  std::unique_ptr<SampleSource> source;
  if (speech) {
    source = std::make_unique<SpeechLikeSource>(9000.0);
  } else {
    source = std::make_unique<SineSource>(440.0, 9000.0);  // sustained "violin"
  }
  CodecInput codec_in(&sched, {.name = "in"}, source.get(), &mic);
  AudioSender sender(&sched, {.name = "snd", .stream = 1}, &mic, &pool, &wire_in);
  ClawbackBank bank{ClawbackConfig{}};
  AudioReceiver receiver(&sched, {.name = "rcv"}, &wire_out, &bank);
  CodecOutput codec_out(&sched, {.name = "out", .record_samples = true});
  AudioMixer mixer(&sched, {.name = "mix", .recovery = recovery}, &bank, nullptr, &codec_out);
  Rng rng(99);
  ShutdownGuard guard(&sched);

  codec_in.Start();
  sender.Start();
  sched.Spawn(LossyRelay(&sched, &wire_in, &wire_out, loss_rate, &rng), "relay");
  receiver.Start();
  codec_out.Start();
  mixer.Start();
  const Duration kRun = Seconds(10);
  sched.RunFor(kRun);

  Outcome o;
  Duration latency = static_cast<Duration>(codec_out.latency().Mean()) +
                     static_cast<Duration>(mixer.all_latency().Mean());
  o.snr_db = ComputeSnrDb(source.get(), codec_out.recorded(), latency);
  o.recovery_events_per_s =
      static_cast<double>(mixer.replays() + mixer.silences()) / ToSeconds(kRun);
  const SequenceTracker* tracker = receiver.TrackerFor(1);
  o.loss_seen = tracker != nullptr ? tracker->LossFraction() : 0.0;
  return o;
}

}  // namespace
}  // namespace pandora

int main() {
  using namespace pandora;
  BenchHeader("E11", "loss recovery: silence insertion vs replay-last-block",
              "occasional drops fine (esp. speech); frequent replays garble; tones worst");

  for (bool speech : {false, true}) {
    std::printf("\n  source: %s\n", speech ? "speech-like" : "440Hz tone (solo violin proxy)");
    std::printf("  %-12s %-12s %-18s %-18s\n", "segment", "loss seen", "silence policy",
                "replay policy");
    std::printf("  %-12s %-12s %-9s %-9s %-9s %-9s\n", "loss", "", "SNR(dB)", "events/s",
                "SNR(dB)", "events/s");
    for (double loss : {0.0, 0.01, 0.05, 0.2}) {
      Outcome silence = Run(loss, MixRecovery::kSilence, speech);
      Outcome replay = Run(loss, MixRecovery::kReplayLast, speech);
      std::printf("  %10.0f%% %10.1f%% %-9.1f %-9.1f %-9.1f %-9.1f\n", loss * 100.0,
                  silence.loss_seen * 100.0, silence.snr_db, silence.recovery_events_per_s,
                  replay.snr_db, replay.recovery_events_per_s);
    }
  }

  std::printf("\n");
  BenchNote("shape to check: clean runs have high SNR; replay beats silence for speech at");
  BenchNote("low loss (the paper's choice); at 20% loss both degrade badly ('gravelly').");
  return 0;
}
