// E1 — Clawback convergence (paper section 3.7.2).
//
// Claim: the clawback mechanism removes one 2ms block every 4096 arrivals
// above the 4ms target ("the delay for jitter correction to be reduced at
// the rate of 2ms every 8s, or 1 in 4000; this is called the Clawback
// Rate") so that after jitter falls from 20ms to its usual 2ms, "it will
// take about one minute to adjust".
//
// Workload: one audio stream, blocks every 2ms; network jitter uniform
// [0, 20ms) for the first 30 seconds, then [0, 2ms).  The destination mixes
// every 2ms.  We log the jitter-correction delay each second and report how
// long the buffer takes to claw back to the 4ms target.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/buffer/clawback.h"
#include "src/runtime/random.h"
#include "src/runtime/scheduler.h"
#include "src/segment/audio_block.h"

namespace pandora {
namespace {

struct JitterPhase {
  Time until;
  Duration jitter_max;
};

Process Producer(Scheduler* sched, ClawbackBank* bank, const std::vector<JitterPhase>* phases,
                 Rng* rng, Time end) {
  Time nominal = 0;
  Time last_arrival = 0;
  while (nominal < end) {
    Duration jitter_max = phases->back().jitter_max;
    for (const JitterPhase& phase : *phases) {
      if (nominal < phase.until) {
        jitter_max = phase.jitter_max;
        break;
      }
    }
    Time arrival = nominal + static_cast<Duration>(rng->Uniform(0.0, ToSeconds(jitter_max) * 1e6));
    arrival = std::max(arrival, last_arrival + 1);  // FIFO network
    last_arrival = arrival;
    if (arrival > sched->now()) {
      co_await sched->WaitUntil(arrival);
    }
    AudioBlock block;
    block.source_time = nominal;
    bank->Push(1, block);
    nominal += kAudioBlockDuration;
  }
}

Process Mixer(Scheduler* sched, ClawbackBank* bank, std::vector<double>* delay_by_second,
              Time end) {
  Time next = 0;
  while (next < end) {
    co_await sched->WaitUntil(next);
    // Record the pre-pop depth once per second.
    if (next % kSecond == 0) {
      ClawbackBuffer* buffer = bank->Find(1);
      delay_by_second->push_back(buffer != nullptr ? ToMillis(buffer->delay()) : 0.0);
    }
    (void)bank->Pop(1);
    next += kAudioBlockDuration;
  }
}

}  // namespace
}  // namespace pandora

int main(int argc, char** argv) {
  using namespace pandora;
  BenchParseArgs(argc, argv);
  BenchHeader("E1", "clawback convergence after a jitter episode",
              "clawback rate = 1 in 4000 (2ms per 8.192s); 20ms -> 4ms takes ~1 minute");

  const Time kSwitchover = Seconds(30);
  const Time kEnd = Seconds(150);
  Scheduler sched;
  BenchEnableTrace(sched);
  ClawbackBank bank{ClawbackConfig{}};
  bank.BindTrace(sched.trace(), "clawback");
  Rng rng(42);
  std::vector<JitterPhase> phases = {{kSwitchover, Millis(20)}, {kEnd, Millis(2)}};
  std::vector<double> delay_by_second;
  {
    ShutdownGuard guard(&sched);
    sched.Spawn(Producer(&sched, &bank, &phases, &rng, kEnd), "producer");
    sched.Spawn(Mixer(&sched, &bank, &delay_by_second, kEnd), "mixer");
    sched.RunUntilQuiescent();
    BenchExportTrace(sched);
  }

  std::printf("\n  jitter-correction delay over time (1 sample/s):\n");
  std::printf("  t(s)  delay(ms)\n");
  for (size_t t = 0; t < delay_by_second.size(); t += 5) {
    std::printf("  %4zu  %8.1f %s\n", t, delay_by_second[t],
                t < 30 ? "(jitter 20ms)" : "(jitter 2ms)");
  }

  // Peak correction during the jitter episode.
  double peak = 0;
  for (size_t t = 5; t < 30 && t < delay_by_second.size(); ++t) {
    peak = std::max(peak, delay_by_second[t]);
  }
  // Time from the switchover until the delay stays at its steady plateau.
  // With 2ms of residual jitter the buffer settles one block above the 4ms
  // target (the cushion that absorbs the remaining jitter), so the plateau
  // is ~6ms.
  double settled = -1;
  for (size_t t = 30; t < delay_by_second.size(); ++t) {
    if (delay_by_second[t] <= 6.0) {
      bool stays = true;
      for (size_t u = t; u < delay_by_second.size(); ++u) {
        if (delay_by_second[u] > 8.0) {
          stays = false;
          break;
        }
      }
      if (stays) {
        settled = static_cast<double>(t) - 30.0;
        break;
      }
    }
  }

  auto stats = bank.TotalStats();
  std::printf("\n");
  BenchRow("peak correction during 20ms jitter", peak, "ms", "(paper: ~20ms)");
  BenchRow("time to claw back to the target", settled, "s", "(paper: ~1 minute)");
  BenchRow("clawback drops over the run", static_cast<double>(stats.clawback_drops), "blocks",
           "(one per 8.192s while above target)");
  BenchRow("audio discarded by clawback",
           100.0 * static_cast<double>(stats.clawback_drops) /
               static_cast<double>(stats.pushes),
           "%", "(1 in 4000 = 0.025%)");
  return BenchFinish();
}
