// E10 — Stream splitting: upstream independence and reconfiguration
// continuity (paper section 2.2, principles 5 and 6).
//
// Claims: "Downstream performance bottlenecks should not affect streams
// that have been split off earlier" and "Splitting a stream to an extra
// destination, or closing down one of several destinations, should not
// affect the other copies of that stream."
//
// Workload: a tannoy from one source to three destinations, one of which
// sits behind a hopeless 300kbit/s bridge; then a fourth destination joins
// and leaves mid-broadcast.  We report per-copy loss.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/simulation.h"

int main(int argc, char** argv) {
  using namespace pandora;
  BenchParseArgs(argc, argv);
  BenchHeader("E10", "split streams: one bad destination, live reconfiguration",
              "P5: other copies unaffected by a bottleneck; P6: joins/leaves are seamless");

  Simulation sim;
  BenchEnableTrace(sim.scheduler());
  PandoraBox::Options options;
  options.with_video = false;
  options.name = "announcer";
  PandoraBox& announcer = sim.AddBox(options);
  options.name = "good1";
  PandoraBox& good1 = sim.AddBox(options);
  options.name = "good2";
  PandoraBox& good2 = sim.AddBox(options);
  options.name = "choked";
  PandoraBox& choked = sim.AddBox(options);
  options.name = "latecomer";
  PandoraBox& latecomer = sim.AddBox(options);

  HopQuality bad;
  bad.bits_per_second = 100'000;  // cannot possibly carry the stream
  bad.jitter_max = Millis(20);
  NetHop* bridge = sim.network().AddHop("bad-bridge", bad);

  sim.Start();
  StreamId s1 = sim.SendAudio(announcer, good1);
  StreamId s2 = sim.SplitAudioTo(announcer, announcer.mic_stream(), good2);
  CallPath bad_path;
  bad_path.hops.push_back(bridge);
  StreamId s3 = sim.SplitAudioTo(announcer, announcer.mic_stream(), choked, bad_path);

  sim.RunFor(Seconds(10));
  StreamId s4 = sim.SplitAudioTo(announcer, announcer.mic_stream(), latecomer);
  sim.RunFor(Seconds(5));
  // The latecomer leaves again: only its VCI is closed (principle 6).
  sim.HangUpAudio(announcer, latecomer, s4);
  sim.RunFor(Seconds(5));

  struct Row {
    const char* name;
    PandoraBox* box;
    StreamId stream;
  };
  std::printf("\n  %-11s %-10s %-10s %-9s %-9s\n", "destination", "segments", "missing",
              "loss", "played");
  for (const Row& row : {Row{"good1", &good1, s1}, Row{"good2", &good2, s2},
                         Row{"choked", &choked, s3}, Row{"latecomer", &latecomer, s4}}) {
    const SequenceTracker* tracker = row.box->audio_receiver().TrackerFor(row.stream);
    std::printf("  %-11s %-10llu %-10llu %8.2f%% %-9llu\n", row.name,
                static_cast<unsigned long long>(tracker ? tracker->received() : 0),
                static_cast<unsigned long long>(tracker ? tracker->missing_total() : 0),
                tracker ? tracker->LossFraction() * 100.0 : 0.0,
                static_cast<unsigned long long>(row.box->codec_out().played_blocks()));
  }

  const SequenceTracker* g1 = good1.audio_receiver().TrackerFor(s1);
  const SequenceTracker* g2 = good2.audio_receiver().TrackerFor(s2);
  const SequenceTracker* ch = choked.audio_receiver().TrackerFor(s3);
  std::printf("\n");
  BenchRow("good copies' missing segments",
           static_cast<double>((g1 ? g1->missing_total() : 0) +
                               (g2 ? g2->missing_total() : 0)),
           "", "(paper: 0 — P5/P6 hold)");
  BenchRow("choked copy's loss", ch ? ch->LossFraction() * 100.0 : 0.0, "%",
           "(shed at the source's interface, detected by sequence numbers)");
  BenchExportTrace(sim.scheduler());
  return BenchFinish();
}
