// E5 — Server-link capacity and context-switch rate (paper section 4.2).
//
// Claims: "The 20Mbit/s link to the server transputer is not a limiting
// factor; it would be capable of taking 100 audio streams if we could
// process them.  The context switching rate is probably around 5kHz, and is
// not a problem for the transputer."
//
// Workload: N audio senders share one 20Mbit/s link (LinkRelay-style gate);
// we measure the link utilization and the scheduler's context-switch rate
// per simulated second.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/runtime/resource.h"
#include "src/runtime/scheduler.h"
#include "src/segment/constants.h"
#include "src/segment/segment.h"

namespace pandora {
namespace {

// One audio stream's worth of link traffic: a 68-byte (2-block) segment
// every 4ms, serialized through the shared gate.
Process AudioStreamLoad(Scheduler* sched, BandwidthGate* link, Time end) {
  const size_t segment_bytes = kAudioSegmentHeaderBytes + 2 * kAudioBlockBytes + 4;
  Time next = sched->now();
  while (sched->now() < end) {
    co_await sched->WaitUntil(next);
    next += Millis(4);
    co_await link->Transmit(segment_bytes);
  }
}

struct Outcome {
  double utilization = 0.0;
  double switch_rate_hz = 0.0;
  double max_queue_ms = 0.0;
};

Outcome Run(int streams) {
  Scheduler sched;
  ShutdownGuard guard(&sched);
  BandwidthGate link(&sched, "server.link", 20'000'000);
  const Time kEnd = Seconds(5);
  for (int i = 0; i < streams; ++i) {
    sched.Spawn(AudioStreamLoad(&sched, &link, kEnd), "stream" + std::to_string(i));
  }
  sched.RunUntilQuiescent();
  Outcome outcome;
  outcome.utilization = static_cast<double>(link.busy_time()) / static_cast<double>(kEnd);
  outcome.switch_rate_hz = static_cast<double>(sched.context_switches()) / ToSeconds(kEnd);
  outcome.max_queue_ms = ToMillis(link.max_queue_delay());
  return outcome;
}

}  // namespace
}  // namespace pandora

int main() {
  using namespace pandora;
  BenchHeader("E5", "how many audio streams fit the 20Mbit/s server link?",
              "the link could take ~100 audio streams; context switching ~5kHz is no problem");

  std::printf("\n  %-8s %-14s %-18s %-16s\n", "streams", "link util", "ctx switches/s",
              "max queue (ms)");
  double util_100 = 0;
  double switches_100 = 0;
  for (int n : {1, 5, 25, 50, 100, 200, 400}) {
    Outcome o = Run(n);
    if (n == 100) {
      util_100 = o.utilization;
      switches_100 = o.switch_rate_hz;
    }
    std::printf("  %-8d %12.1f%%  %-18.0f %-16.3f %s\n", n, o.utilization * 100.0,
                o.switch_rate_hz, o.max_queue_ms, o.utilization < 0.9 ? "" : "<- saturating");
  }

  std::printf("\n");
  BenchRow("link utilization at 100 streams", util_100 * 100.0, "%",
           "(paper: feasible, CPU is the limit instead)");
  BenchRow("context switches/s at 100 streams", switches_100, "Hz",
           "(paper: ~5kHz is no problem for the transputer)");
  return 0;
}
