// E16 — Wire-path copy discipline (DESIGN.md section 9).
//
// Claim: a segment is serialized exactly once at the source port and parsed
// exactly once at the destination; ATM hops between them move refcounted
// handles to the same immutable byte image.  So deep copies per delivered
// segment must stay at 2 (one encode + one decode into a pool buffer)
// regardless of how many bridges the circuit crosses, and wire overhead is
// the 36-byte header, not a per-hop reassembly tax.
//
// The bench sweeps hop count on a quiet two-box audio call and prints the
// measured copies-per-delivered-segment next to the per-hop cost a
// store-and-forward implementation would pay.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/simulation.h"
#include "src/net/atm.h"
#include "src/segment/constants.h"

namespace pandora {
namespace {

struct WirePathRun {
  uint64_t offered = 0;
  uint64_t delivered = 0;
  uint64_t encode_copies = 0;  // source-side deep copies
  uint64_t decode_copies = 0;  // destination-side deep copies
  uint64_t wire_bytes = 0;
  double copies_per_delivered = 0.0;
  double wire_overhead_pct = 0.0;
};

WirePathRun Run(int hop_count) {
  Simulation sim;
  PandoraBox::Options options;
  options.with_video = false;
  options.name = "tx";
  PandoraBox& tx = sim.AddBox(options);
  options.name = "rx";
  PandoraBox& rx = sim.AddBox(options);
  BenchEnableTrace(sim.scheduler());
  sim.Start();

  CallPath path;
  HopQuality quality;
  quality.propagation = Millis(1);
  for (int hop = 0; hop < hop_count; ++hop) {
    char name[32];
    std::snprintf(name, sizeof(name), "bridge%d", hop);
    path.hops.push_back(sim.network().AddHop(name, quality));
  }
  const StreamId stream = sim.SendAudio(tx, rx, path);
  sim.RunFor(Seconds(10));
  BenchExportTrace(sim.scheduler());

  WirePathRun run;
  const CircuitStats* stats = sim.network().StatsFor(tx.port(), stream);
  if (stats == nullptr) {
    return run;
  }
  run.offered = stats->offered;
  run.delivered = stats->delivered;
  run.encode_copies = tx.deep_copies();
  run.decode_copies = rx.deep_copies();
  run.wire_bytes = sim.network().bytes_on_wire();
  if (run.delivered > 0) {
    run.copies_per_delivered =
        static_cast<double>(run.encode_copies + run.decode_copies) /
        static_cast<double>(run.delivered);
    // bytes_on_wire counts every transmission stage (source egress plus one
    // per bridge), so normalize by traversals to get the per-image size.
    const double payload = kDefaultBlocksPerSegment * kAudioBlockBytes;  // 32 bytes
    const double per_image = static_cast<double>(run.wire_bytes) /
                             (static_cast<double>(run.offered) * (1.0 + hop_count));
    run.wire_overhead_pct = 100.0 * (per_image - payload) / payload;
  }
  return run;
}

}  // namespace
}  // namespace pandora

int main(int argc, char** argv) {
  using namespace pandora;
  BenchParseArgs(argc, argv);
  BenchHeader("E16", "deep copies per delivered segment vs hop count",
              "encode once, decode once: 2 copies end-to-end however long the bridge chain");

  std::printf("\n  %-8s %-10s %-10s %-10s %-10s %-14s %-14s\n", "hops", "offered", "delivered",
              "encodes", "decodes", "copies/deliv", "store&fwd would");
  WirePathRun baseline;
  WirePathRun longest;
  for (int hops : {0, 1, 3, 5}) {
    WirePathRun run = Run(hops);
    if (hops == 0) {
      baseline = run;
    }
    longest = run;
    // A store-and-forward bridge chain re-serializes at every hop: encode,
    // N bridge copies, decode.
    std::printf("  %-8d %-10llu %-10llu %-10llu %-10llu %-14.3f %-14.3f\n", hops,
                static_cast<unsigned long long>(run.offered),
                static_cast<unsigned long long>(run.delivered),
                static_cast<unsigned long long>(run.encode_copies),
                static_cast<unsigned long long>(run.decode_copies), run.copies_per_delivered,
                static_cast<double>(2 + hops));
  }

  std::printf("\n");
  BenchRow("copies/delivered, direct circuit", baseline.copies_per_delivered, "",
           "(encode + decode)");
  BenchRow("copies/delivered, 5-hop bridge", longest.copies_per_delivered, "",
           "(unchanged: hops move handles)");
  BenchRow("copies a store-and-forward 5-hop path would make", 7.0, "", "(2 + one per bridge)");
  BenchRow("wire bytes per image", baseline.offered > 0
               ? static_cast<double>(baseline.wire_bytes) / static_cast<double>(baseline.offered)
               : 0.0,
           "bytes", "(32B payload + 36B header)");
  BenchRow("wire header overhead", longest.wire_overhead_pct, "%",
           "(same image at every traversal; no per-hop reassembly tax)");
  return BenchFinish();
}
