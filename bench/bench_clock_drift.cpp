// E3 — Clock drift absorbed by the clawback rate (paper section 3.7.2).
//
// Claim: "The only remaining problem is clock drift where the source clock
// is faster than the destination clock.  This is covered by the same
// clawback mechanism provided that the clawback rate is greater than the
// maximum clock drift rate.  Since our clocks are controlled by quartz
// oscillators with a 1 in 1e5 drift rate, our 1 in 4000 clawback rate is
// sufficient to satisfy this condition."
//
// Workload: a fast source codec (drift swept up to and past 1/4000) feeding
// a destination over a quiet wire for 10 simulated minutes.  Below the
// clawback rate the buffer stays bounded; above it, the excess outruns the
// clawback and the buffer climbs to its 120ms limit.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/simulation.h"

namespace pandora {
namespace {

struct Outcome {
  size_t max_depth_blocks = 0;
  uint64_t clawback_drops = 0;
  uint64_t limit_drops = 0;
  uint64_t underruns = 0;
  bool bounded = false;
};

Outcome Run(double drift, Duration duration) {
  Simulation sim;
  PandoraBox::Options options;
  options.with_video = false;
  options.name = "src";
  options.audio_clock_drift = drift;
  PandoraBox& src = sim.AddBox(options);
  options.name = "dst";
  options.audio_clock_drift = 0.0;
  PandoraBox& dst = sim.AddBox(options);
  sim.Start();
  sim.SendAudio(src, dst);
  sim.RunFor(duration);

  Outcome o;
  auto stats = dst.clawback_bank().TotalStats();
  o.max_depth_blocks = stats.max_depth;
  o.clawback_drops = stats.clawback_drops;
  o.limit_drops = stats.limit_drops;
  o.underruns = dst.codec_out().underruns();
  o.bounded = stats.limit_drops == 0 && stats.max_depth < 20;
  return o;
}

}  // namespace
}  // namespace pandora

int main() {
  using namespace pandora;
  BenchHeader("E3", "clock drift vs the clawback rate",
              "drift < 1/4000 (the clawback rate) is absorbed; quartz is ~1e-5");

  const Duration kRun = Seconds(600);
  std::printf("\n  %-14s %-14s %-16s %-12s %-10s %s\n", "drift", "max depth", "clawback",
              "limit", "underruns", "verdict");
  std::printf("  %-14s %-14s %-16s %-12s %-10s\n", "(fraction)", "(blocks)", "drops", "drops",
              "");
  struct Case {
    double drift;
    const char* label;
  };
  for (const Case& c : {Case{1e-5, "quartz (paper)"}, Case{1e-4, ""},
                        Case{2e-4, "near the rate"}, Case{5e-4, "2x the rate"}}) {
    Outcome o = Run(c.drift, kRun);
    std::printf("  %-14g %-14zu %-16llu %-12llu %-10llu %s %s\n", c.drift, o.max_depth_blocks,
                static_cast<unsigned long long>(o.clawback_drops),
                static_cast<unsigned long long>(o.limit_drops),
                static_cast<unsigned long long>(o.underruns),
                o.bounded ? "BOUNDED" : "OVERRUN", c.label);
  }

  std::printf("\n");
  BenchNote("clawback removes 1 block per 8.192s = a 1-in-4096 rate: drifts below it");
  BenchNote("hold the buffer near its 4ms target; drifts above it pile up against the");
  BenchNote("120ms limit and force limit drops, exactly as the paper's condition states.");
  return 0;
}
