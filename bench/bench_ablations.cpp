// Ablations — what each Pandora design choice buys (DESIGN.md section 5).
//
// Three A/B comparisons that disable one mechanism at a time:
//  A1. Clawback OFF: the jitter buffer still grows during an episode but
//      never recovers — the conversation keeps the worst-case echo delay
//      forever (the paper's argument against plain elastic buffers).
//  A2. The audio/video interface split OFF (one shared buffer, no audio
//      priority): a video burst starves audio at the saturated interface.
//  A3. The ready channel OFF (plain blocking buffer at the switch): a
//      stalled destination back-pressures the switch and a split copy's
//      gaps appear on the healthy destination too (principle 5 violated).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/buffer/clawback.h"
#include "src/buffer/decoupling.h"
#include "src/buffer/pool.h"
#include "src/core/simulation.h"
#include "src/runtime/random.h"
#include "src/server/switch.h"

namespace pandora {
namespace {

// --- A1: clawback on/off under a jitter episode -----------------------------

struct A1Outcome {
  double delay_at_end_ms = 0.0;
  double peak_ms = 0.0;
};

A1Outcome RunClawback(bool clawback_enabled) {
  Scheduler sched;
  ClawbackConfig config;
  if (!clawback_enabled) {
    // An effectively infinite threshold never sacrifices a block: the
    // buffer becomes the plain elastic buffer of [Swinehart83].
    config.count_threshold = 0x7fffffff;
  }
  ClawbackBank bank{config};
  Rng rng(42);
  ShutdownGuard guard(&sched);

  auto producer = [](Scheduler* s, ClawbackBank* bank, Rng* rng) -> Process {
    Time nominal = 0;
    Time last = 0;
    while (nominal < Seconds(120)) {
      Duration jitter_max = nominal < Seconds(20) ? Millis(20) : Millis(2);
      Time arrival = nominal + static_cast<Duration>(
                                   rng->Uniform(0.0, static_cast<double>(jitter_max)));
      arrival = std::max(arrival, last + 1);
      last = arrival;
      if (arrival > s->now()) {
        co_await s->WaitUntil(arrival);
      }
      AudioBlock block;
      bank->Push(1, block);
      nominal += kAudioBlockDuration;
    }
  };
  double peak = 0.0;
  auto mixer = [](Scheduler* s, ClawbackBank* bank, double* peak) -> Process {
    for (Time t = 0; t < Seconds(120); t += kAudioBlockDuration) {
      co_await s->WaitUntil(t);
      ClawbackBuffer* buffer = bank->Find(1);
      if (buffer != nullptr) {
        *peak = std::max(*peak, ToMillis(buffer->delay()));
      }
      (void)bank->Pop(1);
    }
  };
  sched.Spawn(producer(&sched, &bank, &rng), "producer");
  sched.Spawn(mixer(&sched, &bank, &peak), "mixer");
  sched.RunUntilQuiescent();

  A1Outcome o;
  ClawbackBuffer* buffer = bank.Find(1);
  o.delay_at_end_ms = buffer != nullptr ? ToMillis(buffer->delay()) : 0.0;
  o.peak_ms = peak;
  return o;
}

// --- A2: interface audio/video split on/off ---------------------------------

struct A2Outcome {
  double audio_loss_pct = 0.0;
  double audio_latency_ms = 0.0;
  uint64_t video_shed = 0;
};

A2Outcome RunSplit(bool split_enabled) {
  Simulation sim;
  PandoraBox::Options options;
  options.with_video = true;
  options.video_width = 320;
  options.video_height = 240;
  options.name = "tx";
  options.network_egress_bps = 2'000'000;
  if (!split_enabled) {
    // Ablate both halves of the mechanism: a generous shared-size video
    // queue and no audio priority at the interface.
    options.netout.video_buffer_capacity = options.netout.audio_buffer_capacity;
    options.netout.audio_priority = false;
  } else {
    options.netout.video_buffer_capacity = 6;
    options.netout.audio_priority = true;
  }
  PandoraBox& tx = sim.AddBox(options);
  options.name = "rx";
  options.network_egress_bps = 20'000'000;
  PandoraBox& rx = sim.AddBox(options);
  sim.Start();
  StreamId audio = sim.SendAudio(tx, rx);
  sim.SendVideo(tx, rx, Rect{0, 0, 320, 240}, 1, 1, 4);
  sim.RunFor(Seconds(10));

  A2Outcome o;
  // Loss as heard: blocks that never reached the loudspeaker in time.
  const SequenceTracker* tracker = rx.audio_receiver().TrackerFor(audio);
  uint64_t offered = tx.audio_sender().segments_sent();
  uint64_t received = tracker != nullptr ? tracker->received() : 0;
  o.audio_loss_pct =
      offered == 0 ? 0.0 : 100.0 * (1.0 - static_cast<double>(received) / offered);
  const StatAccumulator* latency = rx.mixer().LatencyFor(audio);
  o.audio_latency_ms = latency != nullptr ? latency->Mean() / 1000.0 : 0.0;
  o.video_shed = tx.network_output().video_drops();
  return o;
}

// --- A3: ready channel on/off at the switch ---------------------------------

struct A3Outcome {
  uint64_t healthy_received = 0;
  uint64_t healthy_expected = 0;
  bool switch_wedged = false;
};

A3Outcome RunReady(bool ready_enabled) {
  Scheduler sched;
  BufferPool pool(&sched, "pool", 128);
  Switch sw(&sched, SwitchOptions{.name = "sw"});
  // Healthy destination drains promptly; the stalled one never drains.
  DecouplingBuffer healthy(&sched,
                           {.name = "healthy", .capacity = 8, .use_ready_channel = true});
  DecouplingBuffer stalled(
      &sched, {.name = "stalled", .capacity = 8, .use_ready_channel = ready_enabled});
  ShutdownGuard guard(&sched);
  DestinationId d_healthy = sw.AddDestination("healthy", &healthy);
  DestinationId d_stalled = sw.AddDestination("stalled", &stalled);
  sw.OpenRoute(5, d_healthy, true, true);
  sw.OpenRoute(5, d_stalled, true, true);
  sw.Start();
  healthy.Start();
  stalled.Start();

  uint64_t received = 0;
  auto feeder = [](Scheduler* s, BufferPool* p, Switch* sw) -> Process {
    for (uint32_t i = 0; i < 500; ++i) {
      auto maybe = p->TryAllocate();
      if (maybe.has_value()) {
        **maybe = MakeAudioSegment(5, i, s->now(), std::vector<uint8_t>(32, 0));
        SegmentRef ref = std::move(*maybe);
        co_await sw->input().Send(std::move(ref));
      }
      co_await s->WaitFor(Millis(2));
    }
  };
  auto drain = [](DecouplingBuffer* buffer, uint64_t* received) -> Process {
    for (;;) {
      (void)co_await buffer->output().Receive();
      ++*received;
    }
  };
  sched.Spawn(feeder(&sched, &pool, &sw), "feeder");
  sched.Spawn(drain(&healthy, &received), "drain");
  sched.RunFor(Seconds(2));

  A3Outcome o;
  o.healthy_received = received;
  o.healthy_expected = 500;
  // Without the ready channel the switch blocks on the stalled buffer and
  // stops serving everyone.
  o.switch_wedged = received < 450;
  return o;
}

}  // namespace
}  // namespace pandora

int main() {
  using namespace pandora;
  BenchHeader("ABLATIONS", "what each design choice buys",
              "clawback vs elastic buffer; interface split; ready channel vs blocking");

  std::printf("\n  A1 — clawback vs plain elastic buffer (20ms jitter for 20s, then 2ms):\n");
  A1Outcome with_cb = RunClawback(true);
  A1Outcome without_cb = RunClawback(false);
  BenchRow("final echo delay WITH clawback", with_cb.delay_at_end_ms, "ms",
           "(recovered to the target)");
  BenchRow("final echo delay WITHOUT clawback", without_cb.delay_at_end_ms, "ms",
           "(stuck at the episode's worst case forever)");

  std::printf("\n  A2 — audio/video interface split (2Mbit/s uplink, raw 25fps video):\n");
  A2Outcome with_split = RunSplit(true);
  A2Outcome without_split = RunSplit(false);
  BenchRow("audio loss WITH the split", with_split.audio_loss_pct, "%",
           "(video shed instead: principle 2)");
  BenchRow("audio latency WITH the split", with_split.audio_latency_ms, "ms",
           "(late behind 77ms video serializations, but intact)");
  BenchRow("audio loss WITHOUT the split", without_split.audio_loss_pct, "%",
           "(audio starves behind queued video)");
  BenchRow("audio latency WITHOUT the split", without_split.audio_latency_ms, "ms",
           "(survivors only: almost everything was squeezed out)");

  std::printf("\n  A3 — ready channel vs blocking buffer (one stalled split destination):\n");
  A3Outcome with_ready = RunReady(true);
  A3Outcome without_ready = RunReady(false);
  BenchRow("healthy copy delivery WITH ready channel",
           100.0 * static_cast<double>(with_ready.healthy_received) /
               static_cast<double>(with_ready.healthy_expected),
           "%", "(principle 5 holds)");
  BenchRow("healthy copy delivery WITHOUT it",
           100.0 * static_cast<double>(without_ready.healthy_received) /
               static_cast<double>(without_ready.healthy_expected),
           "%", "(the stalled copy wedges the switch)");
  return 0;
}
