// E12 — The SuperJanet trial: high jitter across bridged networks
// (paper section 3.7.2).
//
// Claim: "The efficacy of this approach was demonstrated when Pandora was
// used in trials of a new country-wide academic computer network,
// SuperJanet.  Unmodified Pandora's Boxes communicated audio and video
// successfully under the high jitter conditions of a connection from
// Cambridge to London involving several networks and protocol conversions."
//
// Workload: an UNMODIFIED box pair (every parameter at its default) across
// a three-hop path with heavy, bursty jitter and a little loss, compared to
// the same boxes on the local LAN.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/simulation.h"

namespace pandora {
namespace {

struct Outcome {
  double played_fraction = 0.0;
  double underrun_rate_per_s = 0.0;
  double clawback_delay_ms = 0.0;  // max jitter-correction depth
  double net_jitter_ms = 0.0;
  double loss_pct = 0.0;
};

Outcome Run(bool superjanet) {
  Simulation sim(/*seed=*/2026);
  PandoraBox::Options options;
  options.with_video = false;
  options.name = "cambridge";
  PandoraBox& cam = sim.AddBox(options);
  options.name = "london";
  PandoraBox& lon = sim.AddBox(options);

  CallPath path;
  if (superjanet) {
    HopQuality campus;
    campus.bits_per_second = 34'000'000;
    campus.jitter_max = Millis(8);
    HopQuality backbone;
    backbone.bits_per_second = 10'000'000;
    backbone.jitter_max = Millis(40);  // protocol conversions, cross traffic
    backbone.loss_rate = 0.002;
    HopQuality metro;
    metro.bits_per_second = 34'000'000;
    metro.jitter_max = Millis(12);
    path.hops.push_back(sim.network().AddHop("campus", campus));
    path.hops.push_back(sim.network().AddHop("backbone", backbone));
    path.hops.push_back(sim.network().AddHop("metro", metro));
  }
  sim.Start();
  StreamId stream = sim.SendAudio(cam, lon, path);
  const Duration kRun = Seconds(60);
  sim.RunFor(kRun);

  Outcome o;
  uint64_t captured = cam.audio_sender().blocks_consumed();
  o.played_fraction = captured == 0
                          ? 0.0
                          : static_cast<double>(lon.codec_out().played_blocks()) /
                                static_cast<double>(captured);
  o.underrun_rate_per_s = static_cast<double>(lon.codec_out().underruns()) / ToSeconds(kRun);
  o.clawback_delay_ms = static_cast<double>(lon.clawback_bank().TotalStats().max_depth) * 2.0;
  const CircuitStats* stats = sim.network().StatsFor(cam.port(), stream);
  if (stats != nullptr && stats->latency.count() > 0) {
    o.net_jitter_ms = (stats->latency.max() - stats->latency.min()) / 1000.0;
    o.loss_pct = 100.0 * static_cast<double>(stats->lost) /
                 static_cast<double>(stats->offered == 0 ? 1 : stats->offered);
  }
  return o;
}

}  // namespace
}  // namespace pandora

int main() {
  using namespace pandora;
  BenchHeader("E12", "unmodified boxes across a bridged, high-jitter path",
              "Cambridge->London over several networks: audio still works, no retuning");

  std::printf("\n  %-22s %-10s %-12s %-12s %-12s %-8s\n", "path", "played", "underruns/s",
              "clawback", "net jitter", "loss");
  std::printf("  %-22s %-10s %-12s %-12s %-12s %-8s\n", "", "", "", "max (ms)", "(ms)", "");
  Outcome lan = Run(false);
  std::printf("  %-22s %8.1f%% %-12.2f %-12.1f %-12.2f %6.2f%%\n", "local LAN",
              lan.played_fraction * 100.0, lan.underrun_rate_per_s, lan.clawback_delay_ms,
              lan.net_jitter_ms, lan.loss_pct);
  Outcome sj = Run(true);
  std::printf("  %-22s %8.1f%% %-12.2f %-12.1f %-12.2f %6.2f%%\n", "SuperJanet (3 hops)",
              sj.played_fraction * 100.0, sj.underrun_rate_per_s, sj.clawback_delay_ms,
              sj.net_jitter_ms, sj.loss_pct);

  std::printf("\n");
  BenchRow("audio delivered over the bad path", sj.played_fraction * 100.0, "%",
           "(paper: 'communicated successfully')");
  BenchRow("jitter absorbed by clawback buffering", sj.clawback_delay_ms, "ms",
           "(grew automatically; LAN default ~4ms)");
  BenchNote("no parameter was changed between rows — principle 8's local adaptation");
  return 0;
}
