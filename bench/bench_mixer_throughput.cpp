// E4 — Audio mixing capacity of the audio-board CPU (paper section 4.2).
//
// Claim: "The T425 transputer used on the audio board can mix five audio
// streams in the straightforward case, but only three if we have jitter
// correction, muting, an outgoing stream and the interface code running at
// the same time."
//
// Workload: N incoming streams feed the clawback bank at the nominal 2ms
// block rate; the mixer charges the calibrated per-operation costs
// (src/audio/costs.h) against a CpuModel.  A configuration "works" when the
// mixer holds its 2ms cadence (no schedule slip) and playout never starves.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/audio/codec.h"
#include "src/audio/costs.h"
#include "src/audio/mixer.h"
#include "src/audio/muting.h"
#include "src/audio/ulaw.h"
#include "src/buffer/clawback.h"
#include "src/runtime/resource.h"
#include "src/runtime/scheduler.h"

namespace pandora {
namespace {

struct Outcome {
  double cpu_utilization = 0.0;
  uint64_t late_ticks = 0;
  Duration max_lateness = 0;
  uint64_t underruns = 0;
  bool ok = false;
};

Process FeedStreams(Scheduler* sched, ClawbackBank* bank, int streams, Time end) {
  AudioBlock block;
  block.samples.fill(ULawEncode(2000));
  while (sched->now() < end) {
    block.source_time = sched->now();
    for (int s = 1; s <= streams; ++s) {
      bank->Push(static_cast<StreamId>(s), block);
    }
    co_await sched->WaitFor(kAudioBlockDuration);
  }
}

// Models the outgoing (microphone) stream's block handler charging the CPU.
Process OutgoingLoad(Scheduler* sched, CpuModel* cpu, const AudioCpuCosts& costs, Time end) {
  while (sched->now() < end) {
    co_await cpu->Consume(costs.outgoing_stream);
    co_await sched->WaitFor(kAudioBlockDuration);
  }
}

// Models the interface code (command parsing, reports) running alongside.
Process InterfaceLoad(Scheduler* sched, CpuModel* cpu, const AudioCpuCosts& costs, Time end) {
  while (sched->now() < end) {
    co_await cpu->Consume(costs.interface_code);
    co_await sched->WaitFor(kAudioBlockDuration);
  }
}

Outcome RunConfig(int streams, bool full_featured) {
  Scheduler sched;
  ShutdownGuard guard(&sched);
  BenchEnableTrace(sched);
  CpuModel cpu(&sched, "audio.cpu");
  ClawbackBank bank{ClawbackConfig{}};
  bank.BindTrace(sched.trace(), "clawback");
  CodecOutput out(&sched, {.name = "codec.out"});
  MutingControl muting;
  AudioCpuCosts costs;

  AudioMixerOptions options;
  options.jitter_correction = full_featured;
  AudioMixer mixer(&sched, options, &bank, &cpu, &out, full_featured ? &muting : nullptr);

  const Time kEnd = Seconds(5);
  sched.Spawn(FeedStreams(&sched, &bank, streams, kEnd), "feed");
  if (full_featured) {
    sched.Spawn(OutgoingLoad(&sched, &cpu, costs, kEnd), "outgoing");
    sched.Spawn(InterfaceLoad(&sched, &cpu, costs, kEnd), "interface");
  }
  out.Start();
  mixer.Start();
  sched.RunUntil(kEnd);
  BenchExportTrace(sched);

  Outcome outcome;
  outcome.cpu_utilization = cpu.Utilization();
  outcome.late_ticks = mixer.late_ticks();
  outcome.max_lateness = mixer.max_lateness();
  outcome.underruns = out.underruns();
  outcome.ok = mixer.max_lateness() == 0 && out.underruns() < 5;
  return outcome;
}

}  // namespace
}  // namespace pandora

int main(int argc, char** argv) {
  using namespace pandora;
  BenchParseArgs(argc, argv);
  BenchHeader("E4", "how many streams can the audio board mix?",
              "T425 mixes 5 plain streams; only 3 with jitter correction + muting + "
              "outgoing stream + interface code");

  std::printf("\n  plain mixing (no jitter correction, nothing else running):\n");
  std::printf("  %-8s %-10s %-12s %-14s %-10s %s\n", "streams", "cpu", "late ticks",
              "max slip(us)", "underruns", "verdict");
  int plain_max = 0;
  for (int n = 1; n <= 8; ++n) {
    Outcome o = RunConfig(n, /*full_featured=*/false);
    if (o.ok) {
      plain_max = n;
    }
    std::printf("  %-8d %-10.2f %-12llu %-14lld %-10llu %s\n", n, o.cpu_utilization,
                static_cast<unsigned long long>(o.late_ticks),
                static_cast<long long>(o.max_lateness),
                static_cast<unsigned long long>(o.underruns), o.ok ? "OK" : "OVERLOADED");
  }

  std::printf("\n  full-featured (jitter correction + muting + outgoing + interface):\n");
  std::printf("  %-8s %-10s %-12s %-14s %-10s %s\n", "streams", "cpu", "late ticks",
              "max slip(us)", "underruns", "verdict");
  int full_max = 0;
  for (int n = 1; n <= 6; ++n) {
    Outcome o = RunConfig(n, /*full_featured=*/true);
    if (o.ok) {
      full_max = n;
    }
    std::printf("  %-8d %-10.2f %-12llu %-14lld %-10llu %s\n", n, o.cpu_utilization,
                static_cast<unsigned long long>(o.late_ticks),
                static_cast<long long>(o.max_lateness),
                static_cast<unsigned long long>(o.underruns), o.ok ? "OK" : "OVERLOADED");
  }

  std::printf("\n");
  BenchRow("max plain streams", plain_max, "", "(paper: 5)");
  BenchRow("max full-featured streams", full_max, "", "(paper: 3)");
  return BenchFinish();
}
