// E18 — Overlay distribution trees: striping vs. single-tree repair, and
// join-to-first-segment latency under a churn storm (ROADMAP item 2;
// "Multiple-Tree Push-based Overlay Streaming" + "Deterministic
// Near-Optimal P2P Streaming").
//
// Claims under test, at city scale (10^4 receivers):
//   - P5/P6 transitively: a departed interior relay takes down exactly its
//     own subtree on exactly its own stripe; with k >= 2 interior-disjoint
//     trees the orphans keep receiving the other k-1 stripes mid-repair, so
//     audio loss during a single-tree repair drops by ~(k-1)/k vs. the
//     k = 1 baseline.
//   - The near-optimal-delay interior ordering never does worse than the
//     balanced fill on mean source->receiver delay (rearrangement bound).
//   - Join-to-first-segment latency under a seeded 100+-event churn storm
//     stays bounded (p99 reported, gated in CI against BENCH_overlay.json).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/fault/plan.h"
#include "src/overlay/churn.h"
#include "src/overlay/multicast.h"
#include "src/overlay/topology.h"
#include "src/overlay/tree.h"

namespace {

using namespace pandora;

constexpr int kReceivers = 10'000;
constexpr uint64_t kTopologySeed = 1993;
constexpr uint64_t kLossSeed = 404;

struct RepairRunResult {
  int64_t emitted = 0;
  int64_t lost = 0;        // segments never delivered to never-churned receivers
  double loss_pct = 0.0;
};

// One departure of the highest-impact relay (the first root child of tree 0
// owns the largest subtree under the heap-style fill), never rejoining.
// Loss is counted over every OTHER receiver, which should see exactly the
// repair-window gap on the one affected stripe and nothing anywhere else.
RepairRunResult RunSingleRepair(int stripes, TreePolicy policy) {
  TopologyParams params;
  params.seed = kTopologySeed;
  params.receivers = kReceivers;
  OverlayTopology topology = GenerateTopology(params);
  StripedTrees trees = TreeBuilder::Build(topology, stripes, policy);

  Scheduler sched;
  OverlayMulticast multicast(&sched, &topology, &trees, MulticastParams{}, kLossSeed);
  const int leaver = trees.root_children[0][0];
  multicast.Start(/*emit_until=*/Seconds(2));
  OverlayMulticast* mc = &multicast;
  sched.AddTimer(Seconds(1), TimerCallback([mc, leaver] { mc->Leave(leaver); }));
  sched.RunUntilQuiescent();

  RepairRunResult result;
  result.emitted = multicast.emitted();
  for (int r = 0; r < kReceivers; ++r) {
    if (r == leaver) {
      continue;
    }
    result.lost += result.emitted - multicast.stats(r).delivered;
  }
  result.loss_pct = 100.0 * static_cast<double>(result.lost) /
                    (static_cast<double>(result.emitted) * (kReceivers - 1));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchParseArgs(argc, argv);
  BenchHeader("E18", "overlay trees: multiple-tree striping, churn repair, join latency",
              "P5/P6 transitively: repair of one stripe never disturbs the others");

  // --- Part 1: audio loss during a single-tree repair, k = 1 vs. striped.
  const RepairRunResult k1 = RunSingleRepair(1, TreePolicy::kBalancedFanout);
  const RepairRunResult k2 = RunSingleRepair(2, TreePolicy::kBalancedFanout);
  const RepairRunResult k3 = RunSingleRepair(3, TreePolicy::kBalancedFanout);
  BenchRow("receivers", kReceivers, "", "(10^4-receiver overlay, fanout 8)");
  BenchRow("segments lost in repair, k=1", static_cast<double>(k1.lost), "seg",
           "(single tree: orphans lose every stripe)");
  BenchRow("segments lost in repair, k=2", static_cast<double>(k2.lost), "seg",
           "(striped: only the repaired stripe gaps)");
  BenchRow("segments lost in repair, k=3", static_cast<double>(k3.lost), "seg");
  BenchRow("audio loss during repair, k=1", k1.loss_pct, "%");
  BenchRow("audio loss during repair, k=2", k2.loss_pct, "%",
           "(paper: P6 -> measurably below the k=1 baseline)");
  BenchRow("audio loss during repair, k=3", k3.loss_pct, "%");

  // --- Part 2: the near-optimal-delay ordering vs. the balanced fill.
  {
    TopologyParams params;
    params.seed = kTopologySeed;
    params.receivers = kReceivers;
    OverlayTopology topology = GenerateTopology(params);
    StripedTrees balanced = TreeBuilder::Build(topology, 2, TreePolicy::kBalancedFanout);
    StripedTrees optimal = TreeBuilder::Build(topology, 2, TreePolicy::kNearOptimalDelay);
    const DelayStats ds_bal = ComputeDelayStats(topology, balanced);
    const DelayStats ds_opt = ComputeDelayStats(topology, optimal);
    BenchRow("mean delay, balanced fill", ds_bal.mean_us, "us");
    BenchRow("mean delay, near-optimal order", ds_opt.mean_us, "us",
             "(rearrangement bound: never above balanced)");
  }

  // --- Part 3: seeded churn storm on the k = 2 striped overlay.
  {
    TopologyParams params;
    params.seed = kTopologySeed;
    params.receivers = kReceivers;
    OverlayTopology topology = GenerateTopology(params);
    StripedTrees trees = TreeBuilder::Build(topology, 2, TreePolicy::kBalancedFanout);

    ChurnStormOptions storm;
    storm.receiver_count = kReceivers;
    storm.start = Seconds(1);
    storm.horizon = Seconds(3);
    storm.min_events = 96;
    storm.max_events = 128;
    storm.permanent_fraction = 0.05;
    FaultPlan plan = RandomChurnPlan(/*seed=*/7, storm);

    Scheduler sched;
    BenchEnableTrace(sched);
    OverlayMulticast multicast(&sched, &topology, &trees, MulticastParams{}, kLossSeed);
    OverlayChurnDriver churn(&sched, &multicast, plan);
    multicast.Start(/*emit_until=*/Millis(3800));
    churn.Start();
    sched.RunUntilQuiescent();

    std::vector<Duration> joins = multicast.join_latencies();
    std::sort(joins.begin(), joins.end());
    const Duration p50 = joins[joins.size() / 2];
    const Duration p99 = joins[(joins.size() * 99) / 100];
    BenchRow("churn events applied", static_cast<double>(churn.departures()), "",
             "(" + std::to_string(churn.rejoins()) + " rejoins)");
    BenchRow("subtree re-parents", static_cast<double>(multicast.repairs()), "");
    BenchRow("join-to-first-segment p50", static_cast<double>(p50), "us");
    BenchRow("join-to-first-segment p99", static_cast<double>(p99), "us",
             "(gated: a regression here is a repair-path stall)");
    BenchRow("run hash", static_cast<double>(multicast.RunHash() % 1000000), "",
             "(low 6 digits; bit-exact replay is asserted by tests)");
    BenchExportTrace(sched);
  }

  return BenchFinish();
}
