// E18 — Overlay distribution trees: striping vs. single-tree repair, and
// join-to-first-segment latency under a churn storm (ROADMAP item 2;
// "Multiple-Tree Push-based Overlay Streaming" + "Deterministic
// Near-Optimal P2P Streaming").
//
// Claims under test, at city scale (10^4 receivers):
//   - P5/P6 transitively: a departed interior relay takes down exactly its
//     own subtree on exactly its own stripe; with k >= 2 interior-disjoint
//     trees the orphans keep receiving the other k-1 stripes mid-repair, so
//     audio loss during a single-tree repair drops by ~(k-1)/k vs. the
//     k = 1 baseline.
//   - The near-optimal-delay interior ordering never does worse than the
//     balanced fill on mean source->receiver delay (rearrangement bound).
//   - Join-to-first-segment latency under a seeded 100+-event churn storm
//     stays bounded (p99 reported, gated in CI against BENCH_overlay.json).
//   - Sharded (Part 4): the SAME churn storm at 10^5 receivers spanning a
//     ShardSet stays allocation-free per delivered copy in steady state, and
//     every worker-thread count reproduces one observable run hash.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/fault/plan.h"
#include "src/overlay/churn.h"
#include "src/overlay/multicast.h"
#include "src/overlay/sharded.h"
#include "src/overlay/topology.h"
#include "src/overlay/tree.h"
#include "src/runtime/shard_set.h"

// --- global counting allocator ----------------------------------------------
// Same shape as bench_shard's: the Part 4 measured region is multi-threaded
// (shard workers), so the count is a relaxed atomic — exact in total, order
// irrelevant.
namespace {
std::atomic<uint64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountedAlignedAlloc(std::size_t n, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n == 0 ? 1 : n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace pandora;

constexpr int kReceivers = 10'000;
constexpr int kShardedReceivers = 100'000;
constexpr uint64_t kTopologySeed = 1993;
constexpr uint64_t kLossSeed = 404;

struct RepairRunResult {
  int64_t emitted = 0;
  int64_t lost = 0;        // segments never delivered to never-churned receivers
  double loss_pct = 0.0;
};

// One departure of the highest-impact relay (the first root child of tree 0
// owns the largest subtree under the heap-style fill), never rejoining.
// Loss is counted over every OTHER receiver, which should see exactly the
// repair-window gap on the one affected stripe and nothing anywhere else.
RepairRunResult RunSingleRepair(int stripes, TreePolicy policy) {
  TopologyParams params;
  params.seed = kTopologySeed;
  params.receivers = kReceivers;
  OverlayTopology topology = GenerateTopology(params);
  StripedTrees trees = TreeBuilder::Build(topology, stripes, policy);

  Scheduler sched;
  OverlayMulticast multicast(&sched, &topology, &trees, MulticastParams{}, kLossSeed);
  const int leaver = trees.root_children[0][0];
  multicast.Start(/*emit_until=*/Seconds(2));
  OverlayMulticast* mc = &multicast;
  sched.AddTimer(Seconds(1), TimerCallback([mc, leaver] { mc->Leave(leaver); }));
  sched.RunUntilQuiescent();

  RepairRunResult result;
  result.emitted = multicast.emitted();
  for (int r = 0; r < kReceivers; ++r) {
    if (r == leaver) {
      continue;
    }
    result.lost += result.emitted - multicast.stats(r).delivered;
  }
  result.loss_pct = 100.0 * static_cast<double>(result.lost) /
                    (static_cast<double>(result.emitted) * (kReceivers - 1));
  return result;
}

struct ShardedStormScore {
  double deliveries_per_sec = 0.0;  // wall-clock rate over the measured window
  double allocs_per_delivery = 0.0;
  uint64_t run_hash = 0;
  Duration join_p50 = 0;
  Duration join_p99 = 0;
  int64_t repairs = 0;
  int64_t emitted = 0;
};

int64_t TotalDelivered(const ShardedOverlayMulticast& multicast, int receivers) {
  int64_t total = 0;
  for (int r = 0; r < receivers; ++r) {
    total += multicast.stats(r).delivered;
  }
  return total;
}

// Part 4 worker: the Part 3 churn storm, scaled to 10^5 receivers and spread
// across a ShardSet.  Warm to the storm's onset at 1 s of simulated time
// (free lists, mailbox and log capacity all reach steady state on the
// initial join wave), then run to quiescence under wall-clock + allocation
// counters.
ShardedStormScore RunShardedStorm(int shards, int threads, bool traced) {
  TopologyParams params;
  params.seed = kTopologySeed;
  params.receivers = kShardedReceivers;
  OverlayTopology topology = GenerateTopology(params);
  StripedTrees trees = TreeBuilder::Build(topology, 2, TreePolicy::kBalancedFanout);

  ChurnStormOptions storm;
  storm.receiver_count = kShardedReceivers;
  storm.start = Seconds(1);
  storm.horizon = Seconds(3);
  storm.min_events = 96;
  storm.max_events = 128;
  storm.permanent_fraction = 0.05;
  FaultPlan plan = RandomChurnPlan(/*seed=*/7, storm);

  ShardSetOptions shard_options;
  shard_options.shards = shards;
  shard_options.threads = threads;
  shard_options.lookahead = Millis(1);  // == the fastest access-link latency
  ShardSet set(shard_options);
  if (traced) {
    set.EnableTrace(1 << 15);
  }
  ShardedOverlayMulticast multicast(&set, &topology, &trees, MulticastParams{}, kLossSeed);
  ShardedOverlayChurnDriver churn(&set, &multicast, plan);
  multicast.Start(/*emit_until=*/Millis(3800));
  churn.Start();
  set.RunUntil(Seconds(1));

  const int64_t delivered_before = TotalDelivered(multicast, kShardedReceivers);
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const auto wall_before = std::chrono::steady_clock::now();
  set.RunUntilQuiescent();
  const auto wall_after = std::chrono::steady_clock::now();
  const uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  const int64_t delivered = TotalDelivered(multicast, kShardedReceivers) - delivered_before;

  ShardedStormScore score;
  const double wall_s = std::chrono::duration<double>(wall_after - wall_before).count();
  score.deliveries_per_sec = wall_s > 0 ? static_cast<double>(delivered) / wall_s : 0.0;
  score.allocs_per_delivery =
      delivered > 0 ? static_cast<double>(allocs) / static_cast<double>(delivered) : 0.0;
  score.run_hash = multicast.RunHash();
  score.repairs = multicast.repairs();
  score.emitted = multicast.emitted();
  std::vector<Duration> joins = multicast.JoinLatencies();
  std::sort(joins.begin(), joins.end());
  if (!joins.empty()) {
    score.join_p50 = joins[joins.size() / 2];
    score.join_p99 = joins[(joins.size() * 99) / 100];
  }
  if (traced && !set.ExportMergedTraceTo(BenchState().trace_path)) {
    std::fprintf(stderr, "failed to write merged trace to %s\n", BenchState().trace_path.c_str());
  }
  return score;
}

}  // namespace

int main(int argc, char** argv) {
  BenchParseArgs(argc, argv);
  // --shards=N / --threads=M pin the Part 4 spanning configuration (and skip
  // the single-engine parts, which a sharded CI leg re-measures for nothing).
  int only_shards = 0;
  int only_threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind("--shards=", 0) == 0) {
      only_shards = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--threads=", 0) == 0) {
      only_threads = std::atoi(arg.c_str() + 10);
    }
  }
  BenchHeader("E18", "overlay trees: multiple-tree striping, churn repair, join latency",
              "P5/P6 transitively: repair of one stripe never disturbs the others");

  if (only_shards > 0 || only_threads > 0) {
    const int shards = only_shards > 0 ? only_shards : 8;
    const int threads = only_threads > 0 ? only_threads : 1;
    const ShardedStormScore score = RunShardedStorm(shards, threads, BenchTraceRequested());
    const std::string tag =
        std::to_string(shards) + " shards, " + std::to_string(threads) + " threads ";
    BenchRow("sharded receivers", kShardedReceivers, "", "(10^5-receiver spanning overlay)");
    BenchRow(tag + "deliveries/sec", score.deliveries_per_sec, "ev/s");
    BenchRow(tag + "allocs/delivery", score.allocs_per_delivery, "alloc");
    BenchRow(tag + "join p50", static_cast<double>(score.join_p50), "us");
    BenchRow(tag + "join p99", static_cast<double>(score.join_p99), "us");
    BenchRow(tag + "run hash", static_cast<double>(score.run_hash % 1000000), "");
    BenchRow("hardware threads", static_cast<double>(std::thread::hardware_concurrency()),
             "cpus");
    return BenchFinish();
  }

  // --- Part 1: audio loss during a single-tree repair, k = 1 vs. striped.
  const RepairRunResult k1 = RunSingleRepair(1, TreePolicy::kBalancedFanout);
  const RepairRunResult k2 = RunSingleRepair(2, TreePolicy::kBalancedFanout);
  const RepairRunResult k3 = RunSingleRepair(3, TreePolicy::kBalancedFanout);
  BenchRow("receivers", kReceivers, "", "(10^4-receiver overlay, fanout 8)");
  BenchRow("segments lost in repair, k=1", static_cast<double>(k1.lost), "seg",
           "(single tree: orphans lose every stripe)");
  BenchRow("segments lost in repair, k=2", static_cast<double>(k2.lost), "seg",
           "(striped: only the repaired stripe gaps)");
  BenchRow("segments lost in repair, k=3", static_cast<double>(k3.lost), "seg");
  BenchRow("audio loss during repair, k=1", k1.loss_pct, "%");
  BenchRow("audio loss during repair, k=2", k2.loss_pct, "%",
           "(paper: P6 -> measurably below the k=1 baseline)");
  BenchRow("audio loss during repair, k=3", k3.loss_pct, "%");

  // --- Part 2: the near-optimal-delay ordering vs. the balanced fill.
  {
    TopologyParams params;
    params.seed = kTopologySeed;
    params.receivers = kReceivers;
    OverlayTopology topology = GenerateTopology(params);
    StripedTrees balanced = TreeBuilder::Build(topology, 2, TreePolicy::kBalancedFanout);
    StripedTrees optimal = TreeBuilder::Build(topology, 2, TreePolicy::kNearOptimalDelay);
    const DelayStats ds_bal = ComputeDelayStats(topology, balanced);
    const DelayStats ds_opt = ComputeDelayStats(topology, optimal);
    BenchRow("mean delay, balanced fill", ds_bal.mean_us, "us");
    BenchRow("mean delay, near-optimal order", ds_opt.mean_us, "us",
             "(rearrangement bound: never above balanced)");
  }

  // --- Part 3: seeded churn storm on the k = 2 striped overlay.
  {
    TopologyParams params;
    params.seed = kTopologySeed;
    params.receivers = kReceivers;
    OverlayTopology topology = GenerateTopology(params);
    StripedTrees trees = TreeBuilder::Build(topology, 2, TreePolicy::kBalancedFanout);

    ChurnStormOptions storm;
    storm.receiver_count = kReceivers;
    storm.start = Seconds(1);
    storm.horizon = Seconds(3);
    storm.min_events = 96;
    storm.max_events = 128;
    storm.permanent_fraction = 0.05;
    FaultPlan plan = RandomChurnPlan(/*seed=*/7, storm);

    Scheduler sched;
    BenchEnableTrace(sched);
    OverlayMulticast multicast(&sched, &topology, &trees, MulticastParams{}, kLossSeed);
    OverlayChurnDriver churn(&sched, &multicast, plan);
    multicast.Start(/*emit_until=*/Millis(3800));
    churn.Start();
    sched.RunUntilQuiescent();

    std::vector<Duration> joins = multicast.join_latencies();
    std::sort(joins.begin(), joins.end());
    const Duration p50 = joins[joins.size() / 2];
    const Duration p99 = joins[(joins.size() * 99) / 100];
    BenchRow("churn events applied", static_cast<double>(churn.departures()), "",
             "(" + std::to_string(churn.rejoins()) + " rejoins)");
    BenchRow("subtree re-parents", static_cast<double>(multicast.repairs()), "");
    BenchRow("join-to-first-segment p50", static_cast<double>(p50), "us");
    BenchRow("join-to-first-segment p99", static_cast<double>(p99), "us",
             "(gated: a regression here is a repair-path stall)");
    BenchRow("run hash", static_cast<double>(multicast.RunHash() % 1000000), "",
             "(low 6 digits; bit-exact replay is asserted by tests)");
    BenchExportTrace(sched);
  }

  // --- Part 4: the same storm at 10^5 receivers spanning 8 shards.  The
  // worker-thread sweep must reproduce one observable run hash (windowed
  // conservative sync: OS scheduling cannot perturb outcomes) and stay
  // allocation-free per delivered copy in steady state.
  {
    BenchRow("sharded receivers", kShardedReceivers, "", "(10^5-receiver spanning overlay)");
    uint64_t base_hash = 0;
    for (const int threads : {1, 2, 8}) {
      // The 8-thread leg carries the merged per-shard trace when requested.
      const ShardedStormScore score =
          RunShardedStorm(/*shards=*/8, threads, threads == 8 && BenchTraceRequested());
      const std::string tag = "8 shards, " + std::to_string(threads) + " threads ";
      BenchRow(tag + "deliveries/sec", score.deliveries_per_sec, "ev/s");
      BenchRow(tag + "allocs/delivery", score.allocs_per_delivery, "alloc",
               "(gated: must stay 0.000)");
      if (threads == 1) {
        base_hash = score.run_hash;
        BenchRow(tag + "join p50", static_cast<double>(score.join_p50), "us");
        BenchRow(tag + "join p99", static_cast<double>(score.join_p99), "us",
                 "(gated: a regression here is a repair-path stall)");
        BenchRow(tag + "re-parents", static_cast<double>(score.repairs), "");
        BenchRow(tag + "run hash", static_cast<double>(score.run_hash % 1000000), "");
      } else if (score.run_hash != base_hash) {
        std::fprintf(stderr, "FATAL: sharded overlay run hash diverged at %d threads\n",
                     threads);
        return 1;
      }
    }
  }
  BenchRow("hardware threads", static_cast<double>(std::thread::hardware_concurrency()), "cpus");

  return BenchFinish();
}
