// The capture-to-server slice transport model (section 3.6).
//
// Video data leaves the capture board in slices of a few lines through a
// fifo and a PIPELINED COMPRESSION ENGINE that "does not drain
// automatically": the engine always retains the most recent slice until
// more data pushes it through.  "In order to flush the last slice of data
// from the pipeline without waiting for the next segment to arrive, we send
// a few dummy lines after each video segment."
//
// Slice DESCRIPTIONS travel separately over the transputer link and "can be
// considered to be a model of the data that is in transit through the
// fifo's and compression hardware".  One link buffer is special: "It is
// designed to always hold back one slice description at all times, with any
// tail or head descriptions that follow, until another slice description is
// read" — so the server never attempts to read data (including dummies)
// that is still inside the compression pipe, while still allowing several
// slices in transit for concurrency.
#ifndef PANDORA_SRC_VIDEO_PIPELINE_H_
#define PANDORA_SRC_VIDEO_PIPELINE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "src/segment/constants.h"

namespace pandora {

enum class SliceKind : uint8_t {
  kHeaderDesc,  // precedes a segment's first slice: coding, stream, header
  kSliceDesc,   // one slice of compressed lines
  kTailDesc,    // marks a segment's last slice sent
  kDummyDesc,   // flush padding after a segment
};

struct SliceDesc {
  SliceKind kind = SliceKind::kSliceDesc;
  StreamId stream = kInvalidStream;
  uint32_t segment_sequence = 0;
  uint32_t lines = 0;
  uint32_t bytes = 0;
};

// The non-draining compression engine: holds exactly one slice of data.
// Push returns the slice that the new data pushed out (nothing on the very
// first push).
class PipelinedCompressor {
 public:
  std::optional<std::vector<uint8_t>> Push(std::vector<uint8_t> slice) {
    std::optional<std::vector<uint8_t>> emerged = std::move(held_);
    held_ = std::move(slice);
    ++pushes_;
    return emerged;
  }

  bool holding() const { return held_.has_value(); }
  uint64_t pushes() const { return pushes_; }

 private:
  std::optional<std::vector<uint8_t>> held_;
  uint64_t pushes_ = 0;
};

// The special link buffer.  Push delivers the descriptions that may now be
// forwarded to the server; slice-like descriptions (real slices and dummy
// flush slices) release the previously held group and become the new held
// item, while header/tail descriptions queue behind the held slice.
class SliceHoldbackBuffer {
 public:
  std::vector<SliceDesc> Push(const SliceDesc& desc) {
    std::vector<SliceDesc> released;
    if (desc.kind == SliceKind::kSliceDesc || desc.kind == SliceKind::kDummyDesc) {
      // New data has entered the pipe: everything previously modelled as
      // in-transit has now been pushed through to the server side.
      released.assign(held_.begin(), held_.end());
      held_.clear();
      held_.push_back(desc);
    } else {
      if (held_.empty()) {
        // Nothing in the pipe to wait for: pass straight through.
        released.push_back(desc);
      } else {
        held_.push_back(desc);
      }
    }
    forwarded_ += released.size();
    return released;
  }

  const std::deque<SliceDesc>& held() const { return held_; }
  uint64_t forwarded() const { return forwarded_; }

 private:
  std::deque<SliceDesc> held_;
  uint64_t forwarded_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_VIDEO_PIPELINE_H_
