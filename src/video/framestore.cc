#include "src/video/framestore.h"

#include "src/runtime/check.h"

namespace pandora {

FrameStore::FrameStore(Scheduler* sched, const FramePattern* pattern, int width, int height)
    : sched_(sched), pattern_(pattern), width_(width), height_(height) {
  PANDORA_CHECK(width > 0 && height > 0);
}

uint8_t FrameStore::PixelAtTime(Time t, int x, int y) const {
  // Rows at or above the camera scan hold the frame being written; rows
  // below still hold the previous frame.
  uint32_t writing = FrameAt(t);
  int scan = ScanLineAt(t);
  uint32_t frame = (y < scan) ? writing : (writing == 0 ? 0 : writing - 1);
  return pattern_->PixelAt(frame, x, y);
}

FrameStore::ReadResult FrameStore::ReadRectangleNow(const Rect& rect) const {
  PANDORA_CHECK(rect.x >= 0 && rect.y >= 0);
  PANDORA_CHECK(rect.x + rect.width <= width_ && rect.y + rect.height <= height_);
  Time now = sched_->now();
  ReadResult result;
  result.pixels.reserve(static_cast<size_t>(rect.width) * static_cast<size_t>(rect.height));
  for (int row = 0; row < rect.height; ++row) {
    for (int col = 0; col < rect.width; ++col) {
      result.pixels.push_back(PixelAtTime(now, rect.x + col, rect.y + row));
    }
  }
  int scan = ScanLineAt(now);
  result.torn = scan > rect.y && scan < rect.y + rect.height;
  uint32_t writing = FrameAt(now);
  result.frame = (rect.y < scan) ? writing : (writing == 0 ? 0 : writing - 1);
  return result;
}

Task<FrameStore::ReadResult> FrameStore::ReadRectangleSafe(Rect rect) {
  for (;;) {
    Time now = sched_->now();
    int scan = ScanLineAt(now);
    if (scan <= rect.y || scan >= rect.y + rect.height) {
      co_return ReadRectangleNow(rect);
    }
    // Wait for the scan to leave the rectangle's rows: it exits at the time
    // the camera reaches the row past the bottom edge (ceiling division —
    // flooring could wake us a microsecond early and spin).
    ++safe_waits_;
    Time frame_start = (now / kFramePeriod) * kFramePeriod;
    Time exit_offset = (static_cast<Time>(rect.y + rect.height) * kFramePeriod + height_ - 1) /
                       height_;
    Time exit_time = frame_start + exit_offset;
    if (exit_time <= now) {
      exit_time = frame_start + kFramePeriod;
    }
    co_await sched_->WaitUntil(exit_time);
  }
}

}  // namespace pandora
