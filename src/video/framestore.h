// FrameStore: the capture board's dual-ported frame memory (section 3.6).
//
// "Rectangular blocks are read from a video framestore at intervals
// determined by the requested frame rates of the streams...  The reading of
// the blocks is carefully timed so that the data from the camera being
// written continuously on a second port does not update any part of a block
// while it is being read."
//
// The camera paints the store top-to-bottom over each 40ms frame period; a
// rectangle read while the camera scan is inside its rows would mix two
// frames (a tear).  ReadRectangleSafe waits for the scan to clear the rows;
// ReadRectangleNow reads immediately and reports whether it tore — used to
// quantify what the careful timing buys (bench E14).
#ifndef PANDORA_SRC_VIDEO_FRAMESTORE_H_
#define PANDORA_SRC_VIDEO_FRAMESTORE_H_

#include <cstdint>
#include <vector>

#include "src/runtime/scheduler.h"
#include "src/runtime/task.h"
#include "src/runtime/time.h"
#include "src/segment/constants.h"

namespace pandora {

// Deterministic synthetic camera content: pixel value as a pure function of
// (frame, x, y), so any stage of the pipeline can be verified bit-exactly.
class FramePattern {
 public:
  virtual ~FramePattern() = default;
  virtual uint8_t PixelAt(uint32_t frame, int x, int y) const = 0;
};

// A bright vertical bar sweeping across a dim gradient: motion parallel to
// segment boundaries, the paper's worst case for visible tears.
class MovingBarPattern : public FramePattern {
 public:
  MovingBarPattern(int width, int bar_width = 8, int step_per_frame = 4)
      : width_(width), bar_width_(bar_width), step_(step_per_frame) {}

  uint8_t PixelAt(uint32_t frame, int x, int y) const override {
    int bar_x = static_cast<int>(frame) * step_ % width_;
    int dx = x - bar_x;
    if (dx < 0) {
      dx += width_;
    }
    if (dx < bar_width_) {
      return 240;
    }
    return static_cast<uint8_t>(16 + (x + y) % 64);
  }

 private:
  int width_;
  int bar_width_;
  int step_;
};

struct Rect {
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;
};

class FrameStore {
 public:
  FrameStore(Scheduler* sched, const FramePattern* pattern, int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  // Frame number the camera is writing at time `t`.
  uint32_t FrameAt(Time t) const { return static_cast<uint32_t>(t / kFramePeriod); }
  // Line the camera scan is writing at time `t`.
  int ScanLineAt(Time t) const {
    Time in_frame = t % kFramePeriod;
    return static_cast<int>(in_frame * height_ / kFramePeriod);
  }

  struct ReadResult {
    std::vector<uint8_t> pixels;  // row-major rect.width x rect.height
    uint32_t frame = 0;           // frame number the top row came from
    bool torn = false;            // rows span two camera frames
  };

  // Immediate read: rows already passed by this frame's scan show the new
  // frame, the rest still hold the previous frame.  Torn iff the scan is
  // inside the rectangle's rows.
  ReadResult ReadRectangleNow(const Rect& rect) const;

  // The paper's carefully-timed read: waits until the camera scan is
  // outside [rect.y, rect.y+height) before reading.  Never tears.
  Task<FrameStore::ReadResult> ReadRectangleSafe(Rect rect);

  uint64_t safe_waits() const { return safe_waits_; }

 private:
  uint8_t PixelAtTime(Time t, int x, int y) const;

  Scheduler* sched_;
  const FramePattern* pattern_;
  int width_;
  int height_;
  uint64_t safe_waits_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_VIDEO_FRAMESTORE_H_
