// Line-oriented video coding (sections 3.3, 3.6).
//
// "Each line of video data has a one byte compression header added, which
// is used by the compression hardware to determine what sub-sampling and
// DPCM coding should be applied."  The decompression hardware "expands the
// DPCM coded video, and can also interpolate both horizontally and
// vertically".
//
// Codings:
//  * kRawLine — header + the pixels untouched.
//  * kDpcmLine — header + mod-256 prediction residuals against the previous
//    pixel (lossless, no size change; models DPCM fidelity).
//  * kSubsampledDpcmLine — header + residuals of every second pixel (2:1);
//    decompression interpolates the missing pixels horizontally.
//
// Vertical interpolation: a line may also be coded against the line above
// (kVerticalDelta), which is where the paper's interleaving problem bites —
// the first line of a segment needs the LAST LINE OF THE PREVIOUS SEGMENT
// of the same stream.  Pandora keeps "a software cache of the last line
// processed on each stream, and reload[s] the interpolation hardware
// whenever we interleave segments" — LastLineCache below.
#ifndef PANDORA_SRC_VIDEO_DPCM_H_
#define PANDORA_SRC_VIDEO_DPCM_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/segment/constants.h"

namespace pandora {

enum class LineCoding : uint8_t {
  kRawLine = 0,
  kDpcmLine = 1,
  kSubsampledDpcmLine = 2,
  kVerticalDelta = 3,  // residuals against the line above
};

// Compresses one line of `width` pixels.  For kVerticalDelta, `above` must
// point at the previous line (same width).
std::vector<uint8_t> CompressLine(LineCoding coding, const uint8_t* pixels, int width,
                                  const uint8_t* above = nullptr);

struct DecompressedLine {
  bool ok = false;
  std::vector<uint8_t> pixels;
};

// Decompresses one line; `above` is required for kVerticalDelta (this is
// the interpolation-hardware state the cache reloads).
DecompressedLine DecompressLine(const std::vector<uint8_t>& bytes, int width,
                                const uint8_t* above = nullptr);

// Encoded size of a line for a given coding.
size_t CompressedLineSize(LineCoding coding, int width);

// "Maintain a software cache of the last line processed on each stream, and
// reload the interpolation hardware whenever we interleave segments."
class LastLineCache {
 public:
  // Called after a segment's last line decompresses.
  void Store(StreamId stream, std::vector<uint8_t> line) { lines_[stream] = std::move(line); }

  // Called before decompressing a segment's first line; counts a hardware
  // reload when the previous segment processed belonged to another stream.
  const std::vector<uint8_t>* Fetch(StreamId stream) {
    if (last_stream_ != stream) {
      ++reloads_;
      last_stream_ = stream;
    }
    auto it = lines_.find(stream);
    return it == lines_.end() ? nullptr : &it->second;
  }

  void Drop(StreamId stream) { lines_.erase(stream); }
  uint64_t reloads() const { return reloads_; }
  size_t cached_streams() const { return lines_.size(); }

 private:
  std::map<StreamId, std::vector<uint8_t>> lines_;
  StreamId last_stream_ = kInvalidStream;
  uint64_t reloads_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_VIDEO_DPCM_H_
