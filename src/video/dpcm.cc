#include "src/video/dpcm.h"

#include "src/runtime/check.h"

namespace pandora {

size_t CompressedLineSize(LineCoding coding, int width) {
  switch (coding) {
    case LineCoding::kRawLine:
    case LineCoding::kDpcmLine:
    case LineCoding::kVerticalDelta:
      return 1 + static_cast<size_t>(width);
    case LineCoding::kSubsampledDpcmLine:
      return 1 + static_cast<size_t>((width + 1) / 2);
  }
  return 0;
}

std::vector<uint8_t> CompressLine(LineCoding coding, const uint8_t* pixels, int width,
                                  const uint8_t* above) {
  std::vector<uint8_t> out;
  out.reserve(CompressedLineSize(coding, width));
  out.push_back(static_cast<uint8_t>(coding));
  switch (coding) {
    case LineCoding::kRawLine:
      out.insert(out.end(), pixels, pixels + width);
      break;
    case LineCoding::kDpcmLine: {
      uint8_t prediction = 0;
      for (int i = 0; i < width; ++i) {
        out.push_back(static_cast<uint8_t>(pixels[i] - prediction));
        prediction = pixels[i];
      }
      break;
    }
    case LineCoding::kSubsampledDpcmLine: {
      uint8_t prediction = 0;
      for (int i = 0; i < width; i += 2) {
        out.push_back(static_cast<uint8_t>(pixels[i] - prediction));
        prediction = pixels[i];
      }
      break;
    }
    case LineCoding::kVerticalDelta: {
      PANDORA_CHECK(above != nullptr);
      for (int i = 0; i < width; ++i) {
        out.push_back(static_cast<uint8_t>(pixels[i] - above[i]));
      }
      break;
    }
  }
  return out;
}

DecompressedLine DecompressLine(const std::vector<uint8_t>& bytes, int width,
                                const uint8_t* above) {
  DecompressedLine result;
  if (bytes.empty()) {
    return result;
  }
  LineCoding coding = static_cast<LineCoding>(bytes[0]);
  if (bytes.size() != CompressedLineSize(coding, width)) {
    return result;
  }
  result.pixels.resize(static_cast<size_t>(width));
  switch (coding) {
    case LineCoding::kRawLine:
      for (int i = 0; i < width; ++i) {
        result.pixels[static_cast<size_t>(i)] = bytes[static_cast<size_t>(i) + 1];
      }
      break;
    case LineCoding::kDpcmLine: {
      uint8_t value = 0;
      for (int i = 0; i < width; ++i) {
        value = static_cast<uint8_t>(value + bytes[static_cast<size_t>(i) + 1]);
        result.pixels[static_cast<size_t>(i)] = value;
      }
      break;
    }
    case LineCoding::kSubsampledDpcmLine: {
      // Recover the even pixels, then interpolate odd ones horizontally.
      uint8_t value = 0;
      for (int i = 0, j = 1; i < width; i += 2, ++j) {
        value = static_cast<uint8_t>(value + bytes[static_cast<size_t>(j)]);
        result.pixels[static_cast<size_t>(i)] = value;
      }
      for (int i = 1; i < width; i += 2) {
        int left = result.pixels[static_cast<size_t>(i - 1)];
        int right = (i + 1 < width) ? result.pixels[static_cast<size_t>(i + 1)] : left;
        result.pixels[static_cast<size_t>(i)] = static_cast<uint8_t>((left + right) / 2);
      }
      break;
    }
    case LineCoding::kVerticalDelta: {
      if (above == nullptr) {
        return result;  // interpolation state missing: undecodable
      }
      for (int i = 0; i < width; ++i) {
        result.pixels[static_cast<size_t>(i)] =
            static_cast<uint8_t>(above[i] + bytes[static_cast<size_t>(i) + 1]);
      }
      break;
    }
    default:
      return result;
  }
  result.ok = true;
  return result;
}

}  // namespace pandora
