// VideoCapture: one video stream from a rectangle of the camera's field of
// view (sections 3.3, 3.6).
//
// "The capture transputer can read several streams from different
// overlapping rectangles...  The frame rates are expressed as a fraction of
// full 25Hz frame rate.  For example, 2/5 gives an average of 10 frames per
// second."  A frame is divided into horizontal strips, each sent as one
// Pandora segment "despatched as soon as the data is ready, reducing
// latencies and buffering requirements".
//
// Lines are compressed per the one-byte line headers of dpcm.h: a strip's
// first line self-codes (or vertically against the previous strip via the
// destination's line cache) and the data is pushed through the pipelined
// compressor model with a dummy-line flush per segment.
#ifndef PANDORA_SRC_VIDEO_CAPTURE_H_
#define PANDORA_SRC_VIDEO_CAPTURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/buffer/pool.h"
#include "src/control/command.h"
#include "src/control/report.h"
#include "src/runtime/alt.h"
#include "src/runtime/resource.h"
#include "src/runtime/scheduler.h"
#include "src/video/dpcm.h"
#include "src/video/framestore.h"
#include "src/video/pipeline.h"

namespace pandora {

struct VideoCaptureOptions {
  std::string name = "video.capture";
  StreamId stream = kInvalidStream;
  Rect rect;
  // Frame rate as a fraction of 25Hz: numer/denom (2/5 = 10 fps).
  int rate_numer = 1;
  int rate_denom = 1;
  int segments_per_frame = 1;  // horizontal strips per frame
  LineCoding coding = LineCoding::kSubsampledDpcmLine;
  int lines_per_slice = 8;
  // Transport time per compressed slice through fifo + compression engine.
  Duration per_line_cost = Micros(4);
  bool start_immediately = true;
};

class VideoCapture {
 public:
  VideoCapture(Scheduler* sched, VideoCaptureOptions options, FrameStore* store, BufferPool* pool,
               Channel<SegmentRef>* segments_out, CpuModel* cpu = nullptr,
               ReportSink* report_sink = nullptr);

  void Start(Priority priority = Priority::kLow);

  CommandChannel& commands() { return command_; }

  uint64_t frames_captured() const { return frames_captured_; }
  uint64_t segments_sent() const { return segments_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t slices_pushed() const { return compressor_.pushes(); }

 private:
  Process Run();
  Task<void> CaptureFrame(uint32_t frame_number);
  void HandleCommand(const Command& command);

  Scheduler* sched_;
  VideoCaptureOptions options_;
  FrameStore* store_;
  BufferPool* pool_;
  Channel<SegmentRef>* segments_out_;
  CpuModel* cpu_;
  Reporter reporter_;
  CommandChannel command_;

  PipelinedCompressor compressor_;
  SliceHoldbackBuffer holdback_;

  bool producing_;
  int rate_accumulator_ = 0;
  uint32_t frame_counter_ = 0;  // capture's own frame numbering
  uint32_t sequence_ = 0;
  uint64_t frames_captured_ = 0;
  uint64_t segments_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  bool started_ = false;
};

}  // namespace pandora

#endif  // PANDORA_SRC_VIDEO_CAPTURE_H_
