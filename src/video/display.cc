#include "src/video/display.h"

#include <algorithm>

#include "src/runtime/check.h"

namespace pandora {

VideoDisplay::VideoDisplay(Scheduler* sched, VideoDisplayOptions options,
                           Channel<SegmentRef>* segments_in, ReportSink* report_sink)
    : sched_(sched),
      options_(std::move(options)),
      segments_in_(segments_in),
      reporter_(sched, report_sink, options_.name),
      screen_(static_cast<size_t>(options_.width) * static_cast<size_t>(options_.height), 0) {}

void VideoDisplay::Start(Priority priority) {
  PANDORA_CHECK(!started_);
  started_ = true;
  sched_->Spawn(Run(), options_.name, priority);
}

double VideoDisplay::MeasuredFps(StreamId stream, Duration elapsed) const {
  auto it = frames_by_stream_.find(stream);
  if (it == frames_by_stream_.end() || elapsed <= 0) {
    return 0.0;
  }
  return static_cast<double>(it->second) / ToSeconds(elapsed);
}

bool VideoDisplay::DecompressInto(const Segment& segment, Assembly* assembly) {
  const VideoHeader& vh = segment.video();
  const int width = static_cast<int>(vh.x_width);
  const int lines = static_cast<int>(vh.line_count);
  Part part;
  part.rect = {static_cast<int>(vh.x_offset), static_cast<int>(vh.start_line_y), width, lines};
  part.pixels.reserve(static_cast<size_t>(width) * static_cast<size_t>(lines));

  size_t offset = 0;
  std::vector<uint8_t> previous_line;
  for (int line = 0; line < lines; ++line) {
    if (offset >= segment.payload.size()) {
      return false;
    }
    LineCoding coding = static_cast<LineCoding>(segment.payload[offset]);
    size_t line_size = CompressedLineSize(coding, width);
    if (line_size == 0 || offset + line_size > segment.payload.size()) {
      return false;
    }
    std::vector<uint8_t> bytes(segment.payload.begin() + static_cast<ptrdiff_t>(offset),
                               segment.payload.begin() + static_cast<ptrdiff_t>(offset + line_size));
    offset += line_size;

    const uint8_t* above = nullptr;
    if (coding == LineCoding::kVerticalDelta) {
      if (line == 0) {
        // Cross-segment vertical interpolation: reload the engine from the
        // per-stream software cache (the paper's choice 3).
        const std::vector<uint8_t>* cached = line_cache_.Fetch(segment.stream);
        if (cached == nullptr || cached->size() != static_cast<size_t>(width)) {
          return false;  // interpolation state lost (e.g. after a gap)
        }
        above = cached->data();
      } else {
        above = previous_line.data();
      }
    }
    DecompressedLine decoded = DecompressLine(bytes, width, above);
    if (!decoded.ok) {
      return false;
    }
    part.pixels.insert(part.pixels.end(), decoded.pixels.begin(), decoded.pixels.end());
    previous_line = std::move(decoded.pixels);
  }
  line_cache_.Store(segment.stream, previous_line);
  assembly->parts.push_back(std::move(part));
  return true;
}

Task<void> VideoDisplay::DisplayFrame(StreamId stream, Assembly& assembly) {
  // Union of rows touched, for scan avoidance.
  int top = options_.height;
  int bottom = 0;
  for (const Part& part : assembly.parts) {
    top = std::min(top, part.rect.y);
    bottom = std::max(bottom, part.rect.y + part.rect.height);
  }

  if (!options_.scan_aware_copy) {
    // A naive blit lands wherever the scan happens to be: if the scan is
    // sweeping the region's rows, part of the old frame is still being
    // shown below it while we overwrite above — a visible tear.
    int scan = ScanLineAt(sched_->now());
    if (scan > top && scan < bottom) {
      ++tears_;
      reporter_.Report("display.tear", ReportSeverity::kWarning,
                       "blit crossed the display scan", static_cast<int64_t>(stream));
    }
  }
  // Scan-aware copy needs no waiting: "the ability to schedule processes
  // with precisions of a few microseconds allows us to make full use of our
  // knowledge of the display scan, copying frames both in front of and
  // behind the scan" — every row is written either after the scan passed it
  // or before the scan reaches it, so the copy never tears.

  co_await sched_->WaitFor(options_.copy_duration);
  for (const Part& part : assembly.parts) {
    for (int row = 0; row < part.rect.height; ++row) {
      int y = part.rect.y + row;
      if (y < 0 || y >= options_.height) {
        continue;
      }
      for (int col = 0; col < part.rect.width; ++col) {
        int x = part.rect.x + col;
        if (x < 0 || x >= options_.width) {
          continue;
        }
        screen_[static_cast<size_t>(y) * options_.width + static_cast<size_t>(x)] =
            part.pixels[static_cast<size_t>(row) * part.rect.width + static_cast<size_t>(col)];
      }
    }
  }
  ++frames_displayed_;
  ++frames_by_stream_[stream];
  frame_latency_.Add(static_cast<double>(sched_->now() - assembly.first_segment_time));
}

Task<void> VideoDisplay::HandleSegment(SegmentRef ref) {
  const Segment& segment = *ref;
  if (!segment.is_video()) {
    co_return;
  }
  ++segments_received_;
  const VideoHeader& vh = segment.video();

  auto observation = trackers_[segment.stream].Observe(segment.header.sequence);
  if (observation.outcome == SequenceTracker::Outcome::kGap) {
    // Interpolation state is no longer trustworthy across the hole.
    line_cache_.Drop(segment.stream);
    reporter_.Report("display.gap", ReportSeverity::kWarning,
                     "missing video segments on stream " + std::to_string(segment.stream),
                     static_cast<int64_t>(observation.missing));
  } else if (observation.outcome == SequenceTracker::Outcome::kDuplicate ||
             observation.outcome == SequenceTracker::Outcome::kStale ||
             observation.outcome == SequenceTracker::Outcome::kSuspect) {
    co_return;  // suspect: a likely bit-flipped header; expectation kept
  } else if (observation.outcome == SequenceTracker::Outcome::kResync) {
    // Re-anchored to a new sequence space; interpolation state is stale.
    line_cache_.Drop(segment.stream);
  }

  Assembly& assembly = assemblies_[segment.stream];
  if (assembly.have_segment.empty() || assembly.frame_number != vh.frame_number) {
    if (!assembly.have_segment.empty() &&
        assembly.segments_received < assembly.segments_expected) {
      // A new frame started before the old one completed: the old frame is
      // never displayed (no partial frames, no tears).
      ++frames_dropped_incomplete_;
      reporter_.Report("display.incomplete", ReportSeverity::kWarning,
                       "frame dropped with missing segments", assembly.frame_number);
    }
    assembly = Assembly();
    assembly.frame_number = vh.frame_number;
    assembly.segments_expected = vh.segments_in_frame;
    assembly.first_segment_time = segment.source_time();
    assembly.have_segment.assign(vh.segments_in_frame, false);
  }
  if (vh.segment_number >= assembly.have_segment.size() ||
      assembly.have_segment[vh.segment_number]) {
    co_return;
  }
  assembly.have_segment[vh.segment_number] = true;
  ++assembly.segments_received;

  if (!DecompressInto(segment, &assembly)) {
    ++undecodable_segments_;
    assembly.poisoned = true;
    reporter_.Report("display.undecodable", ReportSeverity::kError,
                     "segment thrown away: decode failed", static_cast<int64_t>(segment.stream));
  }

  if (assembly.segments_received == assembly.segments_expected) {
    if (!assembly.poisoned) {
      co_await DisplayFrame(segment.stream, assembly);
    } else {
      ++frames_dropped_incomplete_;
    }
    assemblies_.erase(segment.stream);
  }
}

Process VideoDisplay::Run() {
  for (;;) {
    SegmentRef ref = co_await segments_in_->Receive();
    co_await HandleSegment(std::move(ref));
  }
}

}  // namespace pandora
