#include "src/video/capture.h"

#include <algorithm>

#include "src/runtime/check.h"

namespace pandora {

VideoCapture::VideoCapture(Scheduler* sched, VideoCaptureOptions options, FrameStore* store,
                           BufferPool* pool, Channel<SegmentRef>* segments_out, CpuModel* cpu,
                           ReportSink* report_sink)
    : sched_(sched),
      options_(std::move(options)),
      store_(store),
      pool_(pool),
      segments_out_(segments_out),
      cpu_(cpu),
      reporter_(sched, report_sink, options_.name),
      command_(sched, options_.name + ".cmd"),
      producing_(options_.start_immediately) {
  PANDORA_CHECK(options_.rate_numer >= 0 && options_.rate_denom > 0);
  PANDORA_CHECK(options_.segments_per_frame > 0);
}

void VideoCapture::Start(Priority priority) {
  PANDORA_CHECK(!started_);
  started_ = true;
  sched_->Spawn(Run(), options_.name, priority);
}

void VideoCapture::HandleCommand(const Command& command) {
  switch (command.verb) {
    case CommandVerb::kStartStream:
      producing_ = true;
      break;
    case CommandVerb::kStop:
      producing_ = false;
      break;
    case CommandVerb::kSetFrameRate:
      if (command.arg1 > 0 && command.arg0 >= 0 && command.arg0 <= command.arg1) {
        options_.rate_numer = static_cast<int>(command.arg0);
        options_.rate_denom = static_cast<int>(command.arg1);
        rate_accumulator_ = 0;
      }
      break;
    case CommandVerb::kReportStatus:
      reporter_.ReportNow("capture.status", ReportSeverity::kInfo,
                          "frames=" + std::to_string(frames_captured_) +
                              " segments=" + std::to_string(segments_sent_),
                          static_cast<int64_t>(frames_captured_));
      break;
    default:
      break;
  }
}

Task<void> VideoCapture::CaptureFrame(uint32_t frame_number) {
  const int strip_height =
      (options_.rect.height + options_.segments_per_frame - 1) / options_.segments_per_frame;
  int emitted = 0;
  // Last line of the previous strip, for vertical-delta coding of the next
  // strip's first line (the display reconstructs it from its line cache).
  std::vector<uint8_t> prev_strip_last_line;
  for (int strip = 0; strip < options_.segments_per_frame; ++strip) {
    const int y0 = options_.rect.y + strip * strip_height;
    const int lines = std::min(strip_height, options_.rect.y + options_.rect.height - y0);
    if (lines <= 0) {
      break;
    }
    Rect strip_rect{options_.rect.x, y0, options_.rect.width, lines};
    // "The reading of the blocks is carefully timed" — never tears.
    FrameStore::ReadResult read = co_await store_->ReadRectangleSafe(strip_rect);

    // Compress line by line.  The strip's first line self-codes on the
    // frame's first strip; later strips vertically code against the last
    // line of the previous strip (resolved by the display's line cache).
    std::vector<uint8_t> data;
    const uint8_t* previous_line = nullptr;
    for (int line = 0; line < lines; ++line) {
      const uint8_t* pixels = read.pixels.data() + static_cast<size_t>(line) * strip_rect.width;
      LineCoding coding;
      const uint8_t* above = nullptr;
      if (line == 0) {
        if (strip == 0 || prev_strip_last_line.empty()) {
          coding = options_.coding;  // self-coded: no cross-segment state
        } else {
          coding = LineCoding::kVerticalDelta;
          above = prev_strip_last_line.data();
        }
      } else {
        coding = options_.coding;
        above = previous_line;
      }
      std::vector<uint8_t> compressed = CompressLine(coding, pixels, strip_rect.width, above);
      data.insert(data.end(), compressed.begin(), compressed.end());
      previous_line = pixels;
    }
    prev_strip_last_line.assign(
        read.pixels.end() - strip_rect.width, read.pixels.end());

    // Transport through the slice pipeline: descriptions over the link,
    // data through the fifo + non-draining compression engine.
    SliceDesc header{SliceKind::kHeaderDesc, options_.stream, sequence_, 0, 0};
    holdback_.Push(header);
    const int total_lines = lines;
    int lines_left = total_lines;
    size_t offset = 0;
    while (lines_left > 0) {
      int slice_lines = std::min(options_.lines_per_slice, lines_left);
      size_t slice_bytes = 0;
      for (int l = 0; l < slice_lines; ++l) {
        // Sizes are deterministic per coding; header byte included.
        LineCoding lc = static_cast<LineCoding>(data[offset + slice_bytes]);
        slice_bytes += CompressedLineSize(lc, strip_rect.width);
      }
      std::vector<uint8_t> slice(data.begin() + static_cast<ptrdiff_t>(offset),
                                 data.begin() + static_cast<ptrdiff_t>(offset + slice_bytes));
      offset += slice_bytes;
      lines_left -= slice_lines;
      compressor_.Push(std::move(slice));
      holdback_.Push(SliceDesc{SliceKind::kSliceDesc, options_.stream, sequence_,
                               static_cast<uint32_t>(slice_lines),
                               static_cast<uint32_t>(slice_bytes)});
      // Fifo/engine transport time for the slice.
      co_await sched_->WaitFor(static_cast<Duration>(slice_lines) * options_.per_line_cost);
    }
    holdback_.Push(SliceDesc{SliceKind::kTailDesc, options_.stream, sequence_, 0, 0});
    // Dummy flush: pushes the last real slice out of the engine; its own
    // description is held back until the next segment's data arrives.
    compressor_.Push(std::vector<uint8_t>());
    holdback_.Push(SliceDesc{SliceKind::kDummyDesc, options_.stream, sequence_, 2, 0});
    co_await sched_->WaitFor(2 * options_.per_line_cost);

    if (cpu_ != nullptr) {
      co_await cpu_->Consume(Micros(20) + static_cast<Duration>(lines));
    }

    // Build and launch the Pandora segment (fig 3.2).
    VideoHeader vh;
    vh.frame_number = frame_number;
    vh.segments_in_frame = static_cast<uint32_t>(options_.segments_per_frame);
    vh.segment_number = static_cast<uint32_t>(strip);
    vh.x_offset = static_cast<uint32_t>(strip_rect.x);
    vh.y_offset = static_cast<uint32_t>(strip_rect.y);
    vh.pixel_format = PixelFormat::kGrey8;
    vh.compression_type = options_.coding == LineCoding::kRawLine ? VideoCoding::kRaw
                                                                  : VideoCoding::kDpcmSubsampled;
    vh.x_width = static_cast<uint32_t>(strip_rect.width);
    vh.start_line_y = static_cast<uint32_t>(y0);
    vh.line_count = static_cast<uint32_t>(lines);

    SegmentRef ref = co_await pool_->Allocate();
    *ref = MakeVideoSegment(options_.stream, sequence_++, sched_->now(), vh, std::move(data));
    ref->compression_args = {static_cast<uint32_t>(options_.coding)};
    ref->header.length = static_cast<uint32_t>(ref->EncodedSize());
    bytes_sent_ += ref->EncodedSize();
    ++segments_sent_;
    ++emitted;
    co_await segments_out_->Send(std::move(ref));
  }
  if (emitted > 0) {
    ++frames_captured_;
  }
}

Process VideoCapture::Run() {
  Time next_frame = ((sched_->now() / kFramePeriod) + 1) * kFramePeriod;
  for (;;) {
    Alt alt(sched_);
    alt.OnReceive(command_);
    alt.OnTimeout(next_frame);
    int chosen = co_await alt.Select();
    if (chosen == 0) {
      Command command = co_await command_.Receive();
      HandleCommand(command);
      continue;
    }
    next_frame += kFramePeriod;
    if (!producing_) {
      continue;
    }
    // Bresenham-style fraction of the 25Hz tick: capture when the
    // accumulator crosses the denominator.
    rate_accumulator_ += options_.rate_numer;
    if (rate_accumulator_ < options_.rate_denom) {
      continue;
    }
    rate_accumulator_ -= options_.rate_denom;
    co_await CaptureFrame(frame_counter_);
    ++frame_counter_;
  }
}

}  // namespace pandora
