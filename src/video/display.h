// VideoDisplay: decompression, frame assembly and tear-free display
// (section 3.6, mixer board).
//
// "We do not display any part of a video frame until all of the segments
// have been received, otherwise the effect of a tear can be seen when part
// of the image is moving parallel to a segment boundary.  Once we have all
// the data for a frame, it is copied into the display frame buffer as soon
// as possible, care being taken to avoid the scan of the display
// controller, as this can also lead to tears."
//
// Decompression keeps a software cache of the last line processed on each
// stream (dpcm.h, LastLineCache) and reloads the interpolation state
// whenever arriving segments interleave streams.
#ifndef PANDORA_SRC_VIDEO_DISPLAY_H_
#define PANDORA_SRC_VIDEO_DISPLAY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/buffer/pool.h"
#include "src/control/report.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/stats.h"
#include "src/segment/sequence.h"
#include "src/video/dpcm.h"
#include "src/video/framestore.h"

namespace pandora {

struct VideoDisplayOptions {
  std::string name = "video.display";
  int width = 320;
  int height = 240;
  // Avoid the display controller's scan when copying (true in Pandora;
  // false quantifies the tears that careful timing prevents — bench E14).
  bool scan_aware_copy = true;
  // Wall time the blit of one frame region takes.
  Duration copy_duration = Micros(500);
};

class VideoDisplay {
 public:
  VideoDisplay(Scheduler* sched, VideoDisplayOptions options, Channel<SegmentRef>* segments_in,
               ReportSink* report_sink = nullptr);

  void Start(Priority priority = Priority::kHigh);

  // The visible screen (row-major width x height).
  const std::vector<uint8_t>& screen() const { return screen_; }

  // Display-controller scan line at time t (40ms refresh, top to bottom).
  int ScanLineAt(Time t) const {
    return static_cast<int>((t % kFramePeriod) * options_.height / kFramePeriod);
  }

  uint64_t segments_received() const { return segments_received_; }
  uint64_t frames_displayed() const { return frames_displayed_; }
  uint64_t frames_dropped_incomplete() const { return frames_dropped_incomplete_; }
  uint64_t undecodable_segments() const { return undecodable_segments_; }
  uint64_t tears() const { return tears_; }
  uint64_t cache_reloads() const { return line_cache_.reloads(); }

  // Frame latency: display time minus the frame's first segment timestamp.
  const StatAccumulator& frame_latency() const { return frame_latency_; }
  // Measured display rate for one stream over the run (frames/sec).
  double MeasuredFps(StreamId stream, Duration elapsed) const;

 private:
  struct Part {
    Rect rect;
    std::vector<uint8_t> pixels;
  };
  struct Assembly {
    uint32_t frame_number = 0;
    uint32_t segments_expected = 0;
    uint32_t segments_received = 0;
    Time first_segment_time = 0;
    std::vector<Part> parts;
    std::vector<bool> have_segment;
    bool poisoned = false;  // an undecodable segment: never display
  };

  Process Run();
  Task<void> HandleSegment(SegmentRef ref);
  Task<void> DisplayFrame(StreamId stream, Assembly& assembly);
  bool DecompressInto(const Segment& segment, Assembly* assembly);

  Scheduler* sched_;
  VideoDisplayOptions options_;
  Channel<SegmentRef>* segments_in_;
  Reporter reporter_;

  std::vector<uint8_t> screen_;
  LastLineCache line_cache_;
  std::map<StreamId, Assembly> assemblies_;  // one in-flight frame per stream
  std::map<StreamId, SequenceTracker> trackers_;
  std::map<StreamId, uint64_t> frames_by_stream_;

  uint64_t segments_received_ = 0;
  uint64_t frames_displayed_ = 0;
  uint64_t frames_dropped_incomplete_ = 0;
  uint64_t undecodable_segments_ = 0;
  uint64_t tears_ = 0;
  StatAccumulator frame_latency_;
  bool started_ = false;
};

}  // namespace pandora

#endif  // PANDORA_SRC_VIDEO_DISPLAY_H_
