#include "src/buffer/pool.h"

#include "src/runtime/check.h"

namespace pandora {

SegmentRef SegmentRef::Dup() const {
  if (pool_ == nullptr) {
    return SegmentRef();
  }
  pool_->IncRef(index_);
  return SegmentRef(pool_, index_);
}

Segment& SegmentRef::operator*() const { return *get(); }
Segment* SegmentRef::operator->() const { return get(); }

Segment* SegmentRef::get() const {
  PANDORA_CHECK(pool_ != nullptr, "dereferencing an empty SegmentRef");
  return &pool_->SlotAt(index_).segment;
}

void SegmentRef::Reset() {
  if (pool_ != nullptr) {
    pool_->DecRef(index_);
    pool_ = nullptr;
    index_ = -1;
  }
}

BufferPool::BufferPool(Scheduler* sched, std::string name, size_t capacity,
                       ReportSink* report_sink)
    : sched_(sched),
      name_(std::move(name)),
      reporter_(sched, report_sink, name_),
      slots_(capacity),
      handoff_(sched, name_ + ".handoff"),
      min_free_seen_(capacity) {
  free_.reserve(capacity);
  // Hand out low indices first so tests are deterministic.
  for (size_t i = capacity; i > 0; --i) {
    free_.push_back(static_cast<int32_t>(i - 1));
  }
  // The handoff channel passes raw slot indices whose refcount was already
  // transferred to the woken requester.  If that requester is killed before
  // resuming (box crash), the kill sweep hands the index back so the buffer
  // is not lost for the rest of the run.
  handoff_.set_kill_drop_handler([this](int32_t&& index) { DecRef(index); });
}

size_t BufferPool::InjectPressure(size_t count) {
  size_t seized = 0;
  while (seized < count && !free_.empty()) {
    int32_t index = free_.back();
    free_.pop_back();
    SlotAt(index).refs = 1;
    pressured_.push_back(index);
    ++seized;
  }
  if (free_.size() < min_free_seen_) {
    min_free_seen_ = free_.size();
  }
  if (seized > 0) {
    reporter_.Report("allocator.pressure", ReportSeverity::kWarning,
                     "fault injection seized buffers");
  }
  return seized;
}

void BufferPool::ReleasePressure() {
  while (!pressured_.empty()) {
    int32_t index = pressured_.back();
    pressured_.pop_back();
    // DecRef takes the normal free path: direct handoff to the longest
    // parked requester first, free list otherwise.
    DecRef(index);
  }
}

Task<SegmentRef> BufferPool::Allocate() {
  if (!free_.empty()) {
    int32_t index = free_.back();
    free_.pop_back();
    if (free_.size() < min_free_seen_) {
      min_free_seen_ = free_.size();
    }
    co_return MakeRef(index);
  }
  ++starvation_events_;
  min_free_seen_ = 0;
  reporter_.Report("allocator.starved", ReportSeverity::kError,
                   "no buffers available; requester descheduled");
  // Park until DecRef hands a freed buffer straight to us.  The slot's
  // reference count is already set to 1 by the handoff path.
  int32_t index = co_await handoff_.Receive();
  ++allocations_;
  co_return SegmentRef(this, index);
}

std::optional<SegmentRef> BufferPool::TryAllocate() {
  if (free_.empty()) {
    return std::nullopt;
  }
  int32_t index = free_.back();
  free_.pop_back();
  if (free_.size() < min_free_seen_) {
    min_free_seen_ = free_.size();
  }
  return MakeRef(index);
}

SegmentRef BufferPool::MakeRef(int32_t index) {
  Slot& slot = SlotAt(index);
  PANDORA_CHECK(slot.refs == 0, "allocating a buffer that is still referenced");
  slot.refs = 1;
  ++allocations_;
  return SegmentRef(this, index);
}

BufferPool::Slot& BufferPool::SlotAt(int32_t index) {
  PANDORA_CHECK(index >= 0 && static_cast<size_t>(index) < slots_.size(),
                "buffer index out of range");
  return slots_[static_cast<size_t>(index)];
}

void BufferPool::IncRef(int32_t index) {
  Slot& slot = SlotAt(index);
  PANDORA_CHECK(slot.refs > 0, "IncRef on a buffer that was already freed");
  ++slot.refs;
}

void BufferPool::DecRef(int32_t index) {
  Slot& slot = SlotAt(index);
  PANDORA_CHECK(slot.refs > 0, "DecRef on a buffer that was already freed");
  if (--slot.refs > 0) {
    return;
  }
  // Keep the payload's capacity (real Pandora reuses fixed buffers) but
  // drop contents so stale data cannot leak between streams.
  slot.segment.payload.clear();
  slot.segment.compression_args.clear();
  slot.segment.stream = kInvalidStream;
  if (sched_->shutting_down()) {
    // Teardown: parked requesters' frames may already be gone; just free.
    free_.push_back(index);
    return;
  }
  if (handoff_.TrySend(index)) {
    // A starved requester was parked: the buffer goes straight to it.
    slot.refs = 1;
    return;
  }
  free_.push_back(index);
}

}  // namespace pandora
