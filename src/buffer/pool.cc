#include "src/buffer/pool.h"

#include "src/segment/wire.h"

namespace pandora {

// Explicit instantiations of both pool payloads: every member of the
// template is compiled (and its PANDORA_CHECKs kept honest) even if some
// path is unused in a given build.  The wire-buffer pool instantiates here
// rather than in src/segment/wire.cc because RefPool reports starvation
// through the control plane, which layers above src/segment/.
template class PoolRef<Segment>;
template class RefPool<Segment>;
template class PoolRef<WireBuffer>;
template class RefPool<WireBuffer>;

}  // namespace pandora
