// SmallVec<T, N>: a push-back vector with N elements of inline storage.
//
// Alt guard lists are tiny (a command guard, a data guard or two, a
// timeout) and rebuilt on every select; putting them in a std::vector costs
// a heap allocation per Alt construction — one per receive-with-deadline in
// the steady state.  SmallVec keeps the common case entirely inside the
// owning object (for an Alt, inside the coroutine frame, which the frame
// pool already recycles) and only touches the heap past N elements.
//
// Since the batched data plane (DESIGN.md §15) drains move-only payloads
// (SegmentRef, NetRx) into SmallVecs, element types may be any movable
// type: trivially copyable elements grow by memcpy, everything else by
// move-construct + destroy.  Batch consumers use pop_front_n to retire a
// consumed prefix without disturbing the unconsumed tail's order.
#ifndef PANDORA_SRC_BUFFER_SMALL_VEC_H_
#define PANDORA_SRC_BUFFER_SMALL_VEC_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "src/runtime/check.h"

namespace pandora {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0);
  static_assert(std::is_nothrow_move_constructible_v<T>);
  static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__);

 public:
  SmallVec() = default;
  ~SmallVec() {
    DestroyAll();
    if (heap_ != nullptr) {
      ::operator delete(static_cast<void*>(heap_));
    }
  }

  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      Grow();
    }
    ::new (static_cast<void*>(data() + size_)) T(value);
    ++size_;
  }
  void push_back(T&& value) {
    if (size_ == capacity_) {
      Grow();
    }
    ::new (static_cast<void*>(data() + size_)) T(std::move(value));
    ++size_;
  }

  T& operator[](std::size_t i) {
    PANDORA_DCHECK(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    PANDORA_DCHECK(i < size_);
    return data()[i];
  }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  void clear() {
    DestroyAll();
    size_ = 0;
  }

  // Retires the first `n` elements, sliding the survivors down in order.
  // Batch producers fill a SmallVec, hand a prefix to a sink (e.g.
  // Channel::TrySendBatch) and keep the unconsumed tail for the next cycle.
  void pop_front_n(std::size_t n) {
    PANDORA_DCHECK(n <= size_);
    if (n == 0) {
      return;
    }
    T* d = data();
    if constexpr (std::is_trivially_copyable_v<T>) {
      std::memmove(static_cast<void*>(d), static_cast<const void*>(d + n),
                   (size_ - n) * sizeof(T));
    } else {
      for (std::size_t i = n; i < size_; ++i) {
        d[i - n] = std::move(d[i]);
      }
      for (std::size_t i = size_ - n; i < size_; ++i) {
        d[i].~T();
      }
    }
    size_ -= n;
  }

 private:
  T* data() { return heap_ != nullptr ? heap_ : reinterpret_cast<T*>(inline_); }
  const T* data() const { return heap_ != nullptr ? heap_ : reinterpret_cast<const T*>(inline_); }

  void DestroyAll() {
    if constexpr (!std::is_trivially_destructible_v<T>) {
      T* d = data();
      for (std::size_t i = 0; i < size_; ++i) {
        d[i].~T();
      }
    }
  }

  void Grow() {
    const std::size_t next = capacity_ * 2;
    T* grown = static_cast<T*>(::operator new(next * sizeof(T)));
    if constexpr (std::is_trivially_copyable_v<T>) {
      std::memcpy(static_cast<void*>(grown), static_cast<const void*>(data()), size_ * sizeof(T));
    } else {
      T* d = data();
      for (std::size_t i = 0; i < size_; ++i) {
        ::new (static_cast<void*>(grown + i)) T(std::move(d[i]));
        d[i].~T();
      }
    }
    if (heap_ != nullptr) {
      ::operator delete(static_cast<void*>(heap_));
    }
    heap_ = grown;
    capacity_ = next;
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace pandora

#endif  // PANDORA_SRC_BUFFER_SMALL_VEC_H_
