// SmallVec<T, N>: a push-back vector with N elements of inline storage.
//
// Alt guard lists are tiny (a command guard, a data guard or two, a
// timeout) and rebuilt on every select; putting them in a std::vector costs
// a heap allocation per Alt construction — one per receive-with-deadline in
// the steady state.  SmallVec keeps the common case entirely inside the
// owning object (for an Alt, inside the coroutine frame, which the frame
// pool already recycles) and only touches the heap past N elements.
// Restricted to trivially copyable element types so spill and growth are a
// memcpy-shaped move with no exception-safety cliffs.
#ifndef PANDORA_SRC_BUFFER_SMALL_VEC_H_
#define PANDORA_SRC_BUFFER_SMALL_VEC_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>

#include "src/runtime/check.h"

namespace pandora {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0);
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(std::is_trivially_destructible_v<T>);
  static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__);

 public:
  SmallVec() = default;
  ~SmallVec() {
    if (heap_ != nullptr) {
      ::operator delete(static_cast<void*>(heap_));
    }
  }

  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      Grow();
    }
    data()[size_++] = value;
  }

  T& operator[](std::size_t i) {
    PANDORA_DCHECK(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    PANDORA_DCHECK(i < size_);
    return data()[i];
  }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  void clear() { size_ = 0; }

 private:
  T* data() { return heap_ != nullptr ? heap_ : reinterpret_cast<T*>(inline_); }
  const T* data() const { return heap_ != nullptr ? heap_ : reinterpret_cast<const T*>(inline_); }

  void Grow() {
    const std::size_t next = capacity_ * 2;
    T* grown = static_cast<T*>(::operator new(next * sizeof(T)));
    std::memcpy(static_cast<void*>(grown), static_cast<const void*>(data()), size_ * sizeof(T));
    if (heap_ != nullptr) {
      ::operator delete(static_cast<void*>(heap_));
    }
    heap_ = grown;
    capacity_ = next;
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace pandora

#endif  // PANDORA_SRC_BUFFER_SMALL_VEC_H_
