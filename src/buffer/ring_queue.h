// RingQueue<T>: a FIFO over a power-of-two ring that never allocates in
// steady state.
//
// std::deque allocates a fresh chunk roughly every eight elements as its
// ends churn, which shows up as one malloc per rendezvous in the channel
// hot path.  RingQueue keeps one contiguous buffer, doubles it only on
// high-water growth (absorbed by warmup), and constructs/destroys elements
// in place.  Element order is strict FIFO; remove_if compacts in order, so
// the channels' kill sweeps preserve the queue discipline the paper's
// rendezvous semantics require.
#ifndef PANDORA_SRC_BUFFER_RING_QUEUE_H_
#define PANDORA_SRC_BUFFER_RING_QUEUE_H_

#include <cstddef>
#include <new>
#include <utility>

#include "src/runtime/check.h"

namespace pandora {

template <typename T>
class RingQueue {
 public:
  RingQueue() = default;
  ~RingQueue() {
    clear();
    Release();
  }

  RingQueue(const RingQueue&) = delete;
  RingQueue& operator=(const RingQueue&) = delete;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push_back(T value) {
    if (size_ == capacity_) {
      Grow();
    }
    ::new (static_cast<void*>(Slot(size_))) T(std::move(value));
    ++size_;
  }

  T& front() {
    PANDORA_DCHECK(size_ > 0);
    return *Slot(0);
  }
  const T& front() const {
    PANDORA_DCHECK(size_ > 0);
    return *Slot(0);
  }

  void pop_front() {
    PANDORA_DCHECK(size_ > 0);
    Slot(0)->~T();
    head_ = (head_ + 1) & (capacity_ - 1);
    --size_;
  }

  void clear() {
    while (size_ > 0) {
      pop_front();
    }
  }

  // Removes every element matching `pred`, preserving the relative order of
  // survivors (in-order compaction towards the head).
  template <typename Pred>
  void remove_if(Pred pred) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      T* slot = Slot(i);
      if (pred(*slot)) {
        slot->~T();
      } else {
        if (kept != i) {
          ::new (static_cast<void*>(Slot(kept))) T(std::move(*slot));
          slot->~T();
        }
        ++kept;
      }
    }
    size_ = kept;
  }

 private:
  T* Slot(std::size_t i) { return storage_ + ((head_ + i) & (capacity_ - 1)); }
  const T* Slot(std::size_t i) const { return storage_ + ((head_ + i) & (capacity_ - 1)); }

  static T* AllocStorage(std::size_t count) {
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      return static_cast<T*>(::operator new(count * sizeof(T), std::align_val_t(alignof(T))));
    } else {
      return static_cast<T*>(::operator new(count * sizeof(T)));
    }
  }

  void Release() {
    if (storage_ == nullptr) {
      return;
    }
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      ::operator delete(static_cast<void*>(storage_), std::align_val_t(alignof(T)));
    } else {
      ::operator delete(static_cast<void*>(storage_));
    }
    storage_ = nullptr;
  }

  void Grow() {
    const std::size_t next = capacity_ == 0 ? 8 : capacity_ * 2;
    T* grown = AllocStorage(next);
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(grown + i)) T(std::move(*Slot(i)));
      Slot(i)->~T();
    }
    Release();
    storage_ = grown;
    capacity_ = next;
    head_ = 0;
  }

  T* storage_ = nullptr;
  std::size_t capacity_ = 0;  // always zero or a power of two
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_BUFFER_RING_QUEUE_H_
