// Clawback buffers (paper section 3.7.2, figure 3.8).
//
// "These buffers are designed to remove the effects of drift and jitter,
// and should be placed downstream of any components that introduce variable
// delays... as close to the destination as possible."  One exists per audio
// stream arriving at a destination; the audio mixer reads a 2ms block from
// each every 2ms.
//
// Mechanism:
//  * Empty at mixing time -> the stream is skipped (equivalent to 2ms of
//    silence); the late data then sits one block deeper, building a cushion
//    against future jitter.
//  * Arriving blocks are stored with essentially no upper bound (linked
//    lists sharing a common pool, 4 seconds across all streams) but capped
//    per stream (120ms) because larger jitter means something else broke.
//  * Clawback proper: every arrival compares the buffer level against a
//    lower target (4ms).  Single-rate: a counter above target; at 4096
//    (~8s) the incoming block is dropped — delay shrinks by 2ms per 8s
//    ("1 in 4000", the Clawback Rate), which also absorbs any clock drift
//    slower than 1 in 4000 (quartz is ~1 in 1e5).
//  * Multi-rate (proposed for high-jitter networks): keep a running minimum
//    of buffer contents; drop and reset whenever (minimum contents) x
//    (blocks since last reset) exceeds a level in block-seconds (20 here).
//    The level acts as a time constant: delay halves in ~0.7 x level.
//
// A ClawbackBank owns one buffer per active stream: "the audio code does
// not have to be informed of the creation or deletion of streams; it just
// adapts to the incoming data" — a buffer found empty at mixing time is
// deactivated, and a block arriving for an unknown stream creates one.
#ifndef PANDORA_SRC_BUFFER_CLAWBACK_H_
#define PANDORA_SRC_BUFFER_CLAWBACK_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/control/report.h"
#include "src/runtime/time.h"
#include "src/trace/trace.h"
#include "src/segment/audio_block.h"
#include "src/segment/constants.h"

namespace pandora {

// Shared memory budget across every clawback buffer at a destination:
// "we have a total of four seconds of clawback buffering shared between all
// active streams".
class ClawbackPool {
 public:
  explicit ClawbackPool(Duration total = Seconds(4)) : total_(total) {}

  bool TryReserve(Duration amount) {
    if (in_use_ + amount > total_) {
      ++exhaustions_;
      return false;
    }
    in_use_ += amount;
    return true;
  }
  void Release(Duration amount) { in_use_ -= amount; }

  Duration total() const { return total_; }
  Duration in_use() const { return in_use_; }
  uint64_t exhaustions() const { return exhaustions_; }

 private:
  Duration total_;
  Duration in_use_ = 0;
  uint64_t exhaustions_ = 0;
};

enum class ClawbackMode {
  kSingleRate,  // fixed 1-in-N clawback rate (deployed Pandora)
  kMultiRate,   // block-seconds product rule (section 3.7.2 proposal)
};

struct ClawbackConfig {
  ClawbackMode mode = ClawbackMode::kSingleRate;
  // Lower target the buffer tries to claw back to ("our default is 4ms").
  int lower_target_blocks = 2;
  // Single-rate: arrivals above target before one block is dropped
  // ("4096 in our implementation, representing 8 seconds").
  uint32_t count_threshold = 4096;
  // Per-stream cap ("no point in buffering more than about 120ms").
  int per_stream_limit_blocks = 60;
  // Multi-rate: the block-seconds level ("20 block seconds would be
  // suitable for our environment").
  double block_seconds_level = 20.0;
};

enum class ClawbackPushResult {
  kStored,
  kDroppedOverLimit,      // buffer above its 120ms limit on arrival
  kDroppedClawback,       // deliberate delay-reduction drop
  kDroppedPoolExhausted,  // shared 4s pool had no room
};

class ClawbackBuffer {
 public:
  ClawbackBuffer(StreamId stream, const ClawbackConfig& config, ClawbackPool* pool,
                 Reporter* reporter = nullptr);
  ~ClawbackBuffer();

  ClawbackBuffer(const ClawbackBuffer&) = delete;
  ClawbackBuffer& operator=(const ClawbackBuffer&) = delete;

  // A block arrived from the network side.
  ClawbackPushResult Push(const AudioBlock& block);

  // The mixer takes one block every 2ms; nullopt = empty (insert silence).
  std::optional<AudioBlock> Pop();

  StreamId stream() const { return stream_; }
  size_t depth_blocks() const { return blocks_.size(); }
  // The jitter-correction delay this buffer is currently adding.
  Duration delay() const { return static_cast<Duration>(blocks_.size()) * kAudioBlockDuration; }

  struct Stats {
    uint64_t pushes = 0;
    uint64_t pops = 0;
    uint64_t empty_pops = 0;
    uint64_t clawback_drops = 0;
    uint64_t limit_drops = 0;
    uint64_t pool_drops = 0;
    size_t max_depth = 0;
  };
  const Stats& stats() const { return stats_; }

  // Optional telemetry: occupancy counter + drop instants on tracks under
  // `bank_prefix` (e.g. "rx.clawback.s3.depth").  Buffers have no Scheduler
  // of their own, so the owner supplies the recorder.
  void BindTrace(TraceRecorder* trace, const std::string& bank_prefix);

 private:
  bool AboveTarget() const {
    return blocks_.size() > static_cast<size_t>(config_.lower_target_blocks);
  }
  // True if the arriving block should be sacrificed to claw delay back.
  bool ClawbackDue();

  StreamId stream_;
  ClawbackConfig config_;
  ClawbackPool* pool_;
  Reporter* reporter_;
  std::deque<AudioBlock> blocks_;

  // Single-rate state.
  uint32_t above_target_count_ = 0;
  // Multi-rate state.
  size_t running_min_blocks_ = 0;
  bool running_min_valid_ = false;
  uint64_t blocks_since_reset_ = 0;

  Stats stats_;

  TraceRecorder* trace_ = nullptr;
  std::string trace_prefix_;  // "<bank prefix>.s<stream>"
  TraceSiteId trace_depth_site_ = 0;
  TraceSiteId trace_drop_site_ = 0;
};

// Per-destination collection of clawback buffers with the paper's automatic
// lifecycle: created by arriving data, deactivated when found empty.
class ClawbackBank {
 public:
  ClawbackBank(const ClawbackConfig& config, Duration pool_budget = Seconds(4),
               Reporter* reporter = nullptr)
      : config_(config), pool_(pool_budget), reporter_(reporter) {}

  ClawbackPushResult Push(StreamId stream, const AudioBlock& block);

  // Returns the streams the mixer should read this cycle.
  std::vector<StreamId> ActiveStreams() const;

  // Pops a block for mixing; an empty result deactivates the stream.
  std::optional<AudioBlock> Pop(StreamId stream);

  ClawbackBuffer* Find(StreamId stream);
  size_t active_count() const { return buffers_.size(); }
  const ClawbackPool& pool() const { return pool_; }
  uint64_t activations() const { return activations_; }
  uint64_t deactivations() const { return deactivations_; }

  // Aggregate stats folded in from buffers as they deactivate, plus live.
  ClawbackBuffer::Stats TotalStats() const;

  // Optional telemetry: per-stream occupancy/drops plus a shared-pool
  // counter, on tracks under `prefix` (e.g. "rx.clawback").  Applies to
  // buffers created afterwards; banks auto-create buffers per stream, so
  // bind before traffic starts.
  void BindTrace(TraceRecorder* trace, std::string prefix);

 private:
  ClawbackConfig config_;
  ClawbackPool pool_;
  Reporter* reporter_;
  std::map<StreamId, ClawbackBuffer> buffers_;
  ClawbackBuffer::Stats retired_;
  uint64_t activations_ = 0;
  uint64_t deactivations_ = 0;

  TraceRecorder* trace_ = nullptr;
  std::string trace_prefix_;
  TraceSiteId trace_pool_site_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_BUFFER_CLAWBACK_H_
