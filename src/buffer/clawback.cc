#include "src/buffer/clawback.h"

#include <algorithm>
#include <string>
#include <utility>

namespace pandora {

// Drop-instant "reason" argument values (see DESIGN.md section 7).
namespace {
constexpr int64_t kDropReasonLimit = 1;
constexpr int64_t kDropReasonClawback = 2;
constexpr int64_t kDropReasonPool = 3;
}  // namespace

void ClawbackBuffer::BindTrace(TraceRecorder* trace, const std::string& bank_prefix) {
  trace_ = trace;
  if (trace_ != nullptr) {
    trace_prefix_ = bank_prefix + ".s" + std::to_string(stream_);
  }
}

void ClawbackBank::BindTrace(TraceRecorder* trace, std::string prefix) {
  trace_ = trace;
  trace_prefix_ = std::move(prefix);
  for (auto& [stream, buffer] : buffers_) {
    buffer.BindTrace(trace_, trace_prefix_);
  }
}

ClawbackBuffer::ClawbackBuffer(StreamId stream, const ClawbackConfig& config, ClawbackPool* pool,
                               Reporter* reporter)
    : stream_(stream), config_(config), pool_(pool), reporter_(reporter) {}

ClawbackBuffer::~ClawbackBuffer() {
  if (pool_ != nullptr && !blocks_.empty()) {
    pool_->Release(static_cast<Duration>(blocks_.size()) * kAudioBlockDuration);
  }
}

bool ClawbackBuffer::ClawbackDue() {
  switch (config_.mode) {
    case ClawbackMode::kSingleRate:
      // "Every time a block is added, the clawback mechanism checks the
      // count of blocks in the buffer against a lower target...  If it is
      // above this target level, a count is incremented.  When this count
      // exceeds some value (4096...), the current incoming block is dropped."
      if (AboveTarget()) {
        ++above_target_count_;
        if (above_target_count_ >= config_.count_threshold) {
          above_target_count_ = 0;
          return true;
        }
      }
      return false;
    case ClawbackMode::kMultiRate: {
      // "Remove a block and reset the counts whenever the product
      // (minimum contents) x (blocks since last reset) exceeds some level
      // (expressed in block seconds)."
      const size_t contents = blocks_.size();
      if (contents == 0) {
        // The buffer touched empty: the correction delay is already at its
        // floor, so there is nothing to claw back — restart the window.
        blocks_since_reset_ = 0;
        running_min_valid_ = false;
        return false;
      }
      if (!running_min_valid_ || contents < running_min_blocks_) {
        running_min_blocks_ = contents;
        running_min_valid_ = true;
      }
      ++blocks_since_reset_;
      const double min_seconds =
          static_cast<double>(running_min_blocks_) * ToSeconds(kAudioBlockDuration);
      if (min_seconds * static_cast<double>(blocks_since_reset_) >= config_.block_seconds_level) {
        blocks_since_reset_ = 0;
        running_min_valid_ = false;
        return true;
      }
      return false;
    }
  }
  return false;
}

ClawbackPushResult ClawbackBuffer::Push(const AudioBlock& block) {
  ++stats_.pushes;

  // "We throw away samples if the buffer is above its limit when they
  // arrive... the process reports this condition so that the cause can be
  // investigated."
  if (blocks_.size() >= static_cast<size_t>(config_.per_stream_limit_blocks)) {
    ++stats_.limit_drops;
    if (reporter_ != nullptr) {
      reporter_->Report("clawback.limit", ReportSeverity::kError,
                        "stream buffered past its jitter limit; investigate upstream",
                        static_cast<int64_t>(stream_));
    }
    PANDORA_TRACE_INSTANT2(trace_, trace_drop_site_, trace_prefix_ + ".drop", "reason",
                           kDropReasonLimit, "depth", static_cast<int64_t>(blocks_.size()));
    return ClawbackPushResult::kDroppedOverLimit;
  }

  if (ClawbackDue()) {
    ++stats_.clawback_drops;
    PANDORA_TRACE_INSTANT2(trace_, trace_drop_site_, trace_prefix_ + ".drop", "reason",
                           kDropReasonClawback, "depth", static_cast<int64_t>(blocks_.size()));
    return ClawbackPushResult::kDroppedClawback;
  }

  if (pool_ != nullptr && !pool_->TryReserve(kAudioBlockDuration)) {
    ++stats_.pool_drops;
    if (reporter_ != nullptr) {
      reporter_->Report("clawback.pool", ReportSeverity::kError,
                        "shared clawback pool exhausted", static_cast<int64_t>(stream_));
    }
    PANDORA_TRACE_INSTANT2(trace_, trace_drop_site_, trace_prefix_ + ".drop", "reason",
                           kDropReasonPool, "depth", static_cast<int64_t>(blocks_.size()));
    return ClawbackPushResult::kDroppedPoolExhausted;
  }

  blocks_.push_back(block);
  stats_.max_depth = std::max(stats_.max_depth, blocks_.size());
  PANDORA_TRACE_COUNTER(trace_, trace_depth_site_, trace_prefix_ + ".depth",
                        static_cast<int64_t>(blocks_.size()));
  return ClawbackPushResult::kStored;
}

std::optional<AudioBlock> ClawbackBuffer::Pop() {
  ++stats_.pops;
  if (blocks_.empty()) {
    ++stats_.empty_pops;
    return std::nullopt;
  }
  AudioBlock block = blocks_.front();
  blocks_.pop_front();
  if (pool_ != nullptr) {
    pool_->Release(kAudioBlockDuration);
  }
  PANDORA_TRACE_COUNTER(trace_, trace_depth_site_, trace_prefix_ + ".depth",
                        static_cast<int64_t>(blocks_.size()));
  return block;
}

ClawbackPushResult ClawbackBank::Push(StreamId stream, const AudioBlock& block) {
  auto it = buffers_.find(stream);
  if (it == buffers_.end()) {
    // "If a block arrives for a stream that does not have a buffer, a new
    // clawback buffer will be inserted, and mixing will resume."
    it = buffers_
             .emplace(std::piecewise_construct, std::forward_as_tuple(stream),
                      std::forward_as_tuple(stream, config_, &pool_, reporter_))
             .first;
    it->second.BindTrace(trace_, trace_prefix_);
    ++activations_;
  }
  ClawbackPushResult result = it->second.Push(block);
  PANDORA_TRACE_COUNTER(trace_, trace_pool_site_, trace_prefix_ + ".pool_in_use",
                        pool_.in_use());
  return result;
}

std::vector<StreamId> ClawbackBank::ActiveStreams() const {
  std::vector<StreamId> streams;
  streams.reserve(buffers_.size());
  for (const auto& [stream, buffer] : buffers_) {
    streams.push_back(stream);
  }
  return streams;
}

std::optional<AudioBlock> ClawbackBank::Pop(StreamId stream) {
  auto it = buffers_.find(stream);
  if (it == buffers_.end()) {
    return std::nullopt;
  }
  std::optional<AudioBlock> block = it->second.Pop();
  if (!block.has_value()) {
    // "The time saved when a clawback buffer is found to be empty is used
    // to deactivate the stream, removing the clawback buffer altogether."
    const ClawbackBuffer::Stats& s = it->second.stats();
    retired_.pushes += s.pushes;
    retired_.pops += s.pops;
    retired_.empty_pops += s.empty_pops;
    retired_.clawback_drops += s.clawback_drops;
    retired_.limit_drops += s.limit_drops;
    retired_.pool_drops += s.pool_drops;
    retired_.max_depth = std::max(retired_.max_depth, s.max_depth);
    buffers_.erase(it);
    ++deactivations_;
  }
  return block;
}

ClawbackBuffer* ClawbackBank::Find(StreamId stream) {
  auto it = buffers_.find(stream);
  return it == buffers_.end() ? nullptr : &it->second;
}

ClawbackBuffer::Stats ClawbackBank::TotalStats() const {
  ClawbackBuffer::Stats total = retired_;
  for (const auto& [stream, buffer] : buffers_) {
    const ClawbackBuffer::Stats& s = buffer.stats();
    total.pushes += s.pushes;
    total.pops += s.pops;
    total.empty_pops += s.empty_pops;
    total.clawback_drops += s.clawback_drops;
    total.limit_drops += s.limit_drops;
    total.pool_drops += s.pool_drops;
    total.max_depth = std::max(total.max_depth, s.max_depth);
  }
  return total;
}

}  // namespace pandora
