// RefPool: the allocator process with reference counting (fig 3.3/3.4).
//
// "The input processes obtain empty buffers from an allocator process in
// advance, fill them as the data become available, and then transmit the
// buffer index numbers through the rest of the system...  The allocator
// keeps a reference count of the number of processes using each buffer"
// (section 3.4).  Copying happens once in and once out per output device;
// everything between passes 32-bit buffer indices.
//
// "If there are no buffers available, then the allocator will not listen
// for any requests, and the requesting processes will be descheduled by the
// usual channel synchronisation mechanism until the allocator is ready to
// receive again.  The allocator reports this (serious) fault on its report
// channel so that it can be logged."
//
// The pool is a template over the buffer type so the same allocator,
// starvation-reporting and pressure-injection machinery backs both the
// box-side segment pools (BufferPool of Segment) and the port-side wire
// pools (WirePool of encoded bytes, src/segment/wire.h).  A freed buffer is
// scrubbed through the unqualified customization point `PoolRecycle(T&)`,
// found by ADL, which must drop contents while keeping heap capacity.
//
// PoolRef is the RAII face of a buffer index: moving it passes the
// reference on (no count change, the common case the paper optimises);
// Dup() increments the count (stream splitting); destruction decrements it.
#ifndef PANDORA_SRC_BUFFER_POOL_H_
#define PANDORA_SRC_BUFFER_POOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/control/report.h"
#include "src/runtime/channel.h"
#include "src/runtime/check.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/task.h"
#include "src/segment/segment.h"

namespace pandora {

template <typename T>
class RefPool;

template <typename T>
class PoolRef {
 public:
  PoolRef() = default;
  PoolRef(PoolRef&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)), index_(std::exchange(other.index_, -1)) {}
  PoolRef& operator=(PoolRef&& other) noexcept {
    if (this != &other) {
      Reset();
      pool_ = std::exchange(other.pool_, nullptr);
      index_ = std::exchange(other.index_, -1);
    }
    return *this;
  }
  PoolRef(const PoolRef&) = delete;
  PoolRef& operator=(const PoolRef&) = delete;
  ~PoolRef() { Reset(); }

  explicit operator bool() const { return pool_ != nullptr; }

  // Takes an additional reference for a second destination.  Both handles
  // alias the same buffer; holders must treat shared buffers as read-only.
  PoolRef Dup() const {
    if (pool_ == nullptr) {
      return PoolRef();
    }
    pool_->IncRef(index_);
    return PoolRef(pool_, index_);
  }

  T& operator*() const { return *get(); }
  T* operator->() const { return get(); }
  T* get() const {
    PANDORA_CHECK(pool_ != nullptr, "dereferencing an empty buffer reference");
    return &pool_->SlotAt(index_).value;
  }

  int32_t index() const { return index_; }
  // The owning pool (null for an empty handle); lets holders of a handle
  // allocate siblings from the same pool (copy-on-corrupt, src/net/atm.cc).
  RefPool<T>* pool() const { return pool_; }

  // Drops this reference (informing the allocator).
  void Reset() {
    if (pool_ != nullptr) {
      pool_->DecRef(index_);
      pool_ = nullptr;
      index_ = -1;
    }
  }

 private:
  friend class RefPool<T>;
  PoolRef(RefPool<T>* pool, int32_t index) : pool_(pool), index_(index) {}

  RefPool<T>* pool_ = nullptr;
  int32_t index_ = -1;
};

template <typename T>
class RefPool {
 public:
  // `capacity` fixed buffers are shared by all processes on the board.
  RefPool(Scheduler* sched, std::string name, size_t capacity, ReportSink* report_sink = nullptr)
      : sched_(sched),
        name_(std::move(name)),
        reporter_(sched, report_sink, name_),
        slots_(capacity),
        handoff_(sched, name_ + ".handoff"),
        min_free_seen_(capacity) {
    free_.reserve(capacity);
    // Hand out low indices first so tests are deterministic.
    for (size_t i = capacity; i > 0; --i) {
      free_.push_back(static_cast<int32_t>(i - 1));
    }
    // The handoff channel passes raw slot indices whose refcount was already
    // transferred to the woken requester.  If that requester is killed before
    // resuming (box crash), the kill sweep hands the index back so the buffer
    // is not lost for the rest of the run.
    handoff_.set_kill_drop_handler([this](int32_t&& index) { DecRef(index); });
  }

  RefPool(const RefPool&) = delete;
  RefPool& operator=(const RefPool&) = delete;

  // Obtains an empty buffer, parking the caller while the pool is starved
  // (the allocator "will not listen for any requests").  Starvation is
  // reported as the serious fault it is.
  Task<PoolRef<T>> Allocate() {
    if (!free_.empty()) {
      int32_t index = free_.back();
      free_.pop_back();
      if (free_.size() < min_free_seen_) {
        min_free_seen_ = free_.size();
      }
      co_return MakeRef(index);
    }
    ++starvation_events_;
    min_free_seen_ = 0;
    reporter_.Report("allocator.starved", ReportSeverity::kError,
                     "no buffers available; requester descheduled");
    // Park until DecRef hands a freed buffer straight to us.  The slot's
    // reference count is already set to 1 by the handoff path.
    int32_t index = co_await handoff_.Receive();
    ++allocations_;
    co_return PoolRef<T>(this, index);
  }

  // Non-blocking variant for callers that would rather drop than wait.
  std::optional<PoolRef<T>> TryAllocate() {
    if (free_.empty()) {
      return std::nullopt;
    }
    int32_t index = free_.back();
    free_.pop_back();
    if (free_.size() < min_free_seen_) {
      min_free_seen_ = free_.size();
    }
    return MakeRef(index);
  }

  // Fault hook: seizes up to `count` free buffers so real traffic sees an
  // artificially starved pool (the paper's "serious fault" path exercised
  // on demand).  Returns how many were actually seized; ReleasePressure
  // returns them all, handing off directly to parked requesters first.
  size_t InjectPressure(size_t count) {
    size_t seized = 0;
    while (seized < count && !free_.empty()) {
      int32_t index = free_.back();
      free_.pop_back();
      SlotAt(index).refs = 1;
      pressured_.push_back(index);
      ++seized;
    }
    if (free_.size() < min_free_seen_) {
      min_free_seen_ = free_.size();
    }
    if (seized > 0) {
      reporter_.Report("allocator.pressure", ReportSeverity::kWarning,
                       "fault injection seized buffers");
    }
    return seized;
  }

  void ReleasePressure() {
    while (!pressured_.empty()) {
      int32_t index = pressured_.back();
      pressured_.pop_back();
      // DecRef takes the normal free path: direct handoff to the longest
      // parked requester first, free list otherwise.
      DecRef(index);
    }
  }

  size_t pressure_held() const { return pressured_.size(); }

  size_t capacity() const { return slots_.size(); }
  size_t free_count() const { return free_.size(); }
  size_t in_use() const { return slots_.size() - free_.size(); }
  uint64_t allocations() const { return allocations_; }
  uint64_t starvation_events() const { return starvation_events_; }
  size_t min_free_seen() const { return min_free_seen_; }

  // Reference count of a slot (testing/diagnostics).
  int RefCount(int32_t index) const { return slots_[static_cast<size_t>(index)].refs; }

 private:
  friend class PoolRef<T>;
  // Test-only peer (tests/check_test.cc): death tests drive the private
  // refcount mutators directly to prove the PANDORA_CHECKs fire.
  friend class BufferPoolPeer;

  struct Slot {
    T value;
    int refs = 0;
  };

  PoolRef<T> MakeRef(int32_t index) {
    Slot& slot = SlotAt(index);
    PANDORA_CHECK(slot.refs == 0, "allocating a buffer that is still referenced");
    slot.refs = 1;
    ++allocations_;
    return PoolRef<T>(this, index);
  }

  Slot& SlotAt(int32_t index) {
    PANDORA_CHECK(index >= 0 && static_cast<size_t>(index) < slots_.size(),
                  "buffer index out of range");
    return slots_[static_cast<size_t>(index)];
  }

  void IncRef(int32_t index) {
    Slot& slot = SlotAt(index);
    PANDORA_CHECK(slot.refs > 0, "IncRef on a buffer that was already freed");
    ++slot.refs;
  }

  void DecRef(int32_t index) {
    Slot& slot = SlotAt(index);
    PANDORA_CHECK(slot.refs > 0, "DecRef on a buffer that was already freed");
    if (--slot.refs > 0) {
      return;
    }
    // Scrub the buffer (type-specific, found by ADL): keep heap capacity
    // (real Pandora reuses fixed buffers) but drop contents so stale data
    // cannot leak between streams.
    PoolRecycle(slot.value);
    if (sched_->shutting_down()) {
      // Teardown: parked requesters' frames may already be gone; just free.
      free_.push_back(index);
      return;
    }
    if (handoff_.TrySend(index)) {
      // A starved requester was parked: the buffer goes straight to it.
      slot.refs = 1;
      return;
    }
    free_.push_back(index);
  }

  Scheduler* sched_;
  std::string name_;
  Reporter reporter_;
  std::vector<Slot> slots_;
  std::vector<int32_t> free_;
  // Buffers seized by InjectPressure (refs held at 1 until released).
  std::vector<int32_t> pressured_;
  // Direct handoff to parked allocators: DecRef passes a freed index
  // straight to the longest-waiting requester.
  Channel<int32_t> handoff_;
  uint64_t allocations_ = 0;
  uint64_t starvation_events_ = 0;
  size_t min_free_seen_;
};

// Recycle hook for the segment pools: stale payloads must not leak between
// streams sharing a buffer slot.
inline void PoolRecycle(Segment& segment) {
  segment.payload.clear();
  segment.compression_args.clear();
  segment.stream = kInvalidStream;
}

// The box-side pool of decoded segments, as in the paper's figure 3.3.
using BufferPool = RefPool<Segment>;
using SegmentRef = PoolRef<Segment>;

}  // namespace pandora

#endif  // PANDORA_SRC_BUFFER_POOL_H_
