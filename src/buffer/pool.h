// BufferPool: the allocator process with reference counting (fig 3.3/3.4).
//
// "The input processes obtain empty buffers from an allocator process in
// advance, fill them as the data become available, and then transmit the
// buffer index numbers through the rest of the system...  The allocator
// keeps a reference count of the number of processes using each buffer"
// (section 3.4).  Copying happens once in and once out per output device;
// everything between passes 32-bit buffer indices.
//
// "If there are no buffers available, then the allocator will not listen
// for any requests, and the requesting processes will be descheduled by the
// usual channel synchronisation mechanism until the allocator is ready to
// receive again.  The allocator reports this (serious) fault on its report
// channel so that it can be logged."
//
// SegmentRef is the RAII face of a buffer index: moving it passes the
// reference on (no count change, the common case the paper optimises);
// Dup() increments the count (stream splitting); destruction decrements it.
#ifndef PANDORA_SRC_BUFFER_POOL_H_
#define PANDORA_SRC_BUFFER_POOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/control/report.h"
#include "src/runtime/channel.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/task.h"
#include "src/segment/segment.h"

namespace pandora {

class BufferPool;

class SegmentRef {
 public:
  SegmentRef() = default;
  SegmentRef(SegmentRef&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)), index_(std::exchange(other.index_, -1)) {}
  SegmentRef& operator=(SegmentRef&& other) noexcept {
    if (this != &other) {
      Reset();
      pool_ = std::exchange(other.pool_, nullptr);
      index_ = std::exchange(other.index_, -1);
    }
    return *this;
  }
  SegmentRef(const SegmentRef&) = delete;
  SegmentRef& operator=(const SegmentRef&) = delete;
  ~SegmentRef() { Reset(); }

  explicit operator bool() const { return pool_ != nullptr; }

  // Takes an additional reference for a second destination.  Both handles
  // alias the same buffer; holders must treat shared segments as read-only.
  SegmentRef Dup() const;

  Segment& operator*() const;
  Segment* operator->() const;
  Segment* get() const;

  int32_t index() const { return index_; }

  // Drops this reference (informing the allocator).
  void Reset();

 private:
  friend class BufferPool;
  SegmentRef(BufferPool* pool, int32_t index) : pool_(pool), index_(index) {}

  BufferPool* pool_ = nullptr;
  int32_t index_ = -1;
};

class BufferPool {
 public:
  // `capacity` fixed buffers are shared by all processes on the board.
  BufferPool(Scheduler* sched, std::string name, size_t capacity,
             ReportSink* report_sink = nullptr);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Obtains an empty buffer, parking the caller while the pool is starved
  // (the allocator "will not listen for any requests").  Starvation is
  // reported as the serious fault it is.
  Task<SegmentRef> Allocate();

  // Non-blocking variant for callers that would rather drop than wait.
  std::optional<SegmentRef> TryAllocate();

  // Fault hook: seizes up to `count` free buffers so real traffic sees an
  // artificially starved pool (the paper's "serious fault" path exercised
  // on demand).  Returns how many were actually seized; ReleasePressure
  // returns them all, handing off directly to parked requesters first.
  size_t InjectPressure(size_t count);
  void ReleasePressure();
  size_t pressure_held() const { return pressured_.size(); }

  size_t capacity() const { return slots_.size(); }
  size_t free_count() const { return free_.size(); }
  size_t in_use() const { return slots_.size() - free_.size(); }
  uint64_t allocations() const { return allocations_; }
  uint64_t starvation_events() const { return starvation_events_; }
  size_t min_free_seen() const { return min_free_seen_; }

  // Reference count of a slot (testing/diagnostics).
  int RefCount(int32_t index) const { return slots_[static_cast<size_t>(index)].refs; }

 private:
  friend class SegmentRef;
  // Test-only peer (tests/check_test.cc): death tests drive the private
  // refcount mutators directly to prove the PANDORA_CHECKs fire.
  friend class BufferPoolPeer;

  struct Slot {
    Segment segment;
    int refs = 0;
  };

  void IncRef(int32_t index);
  void DecRef(int32_t index);
  SegmentRef MakeRef(int32_t index);
  Slot& SlotAt(int32_t index);

  Scheduler* sched_;
  std::string name_;
  Reporter reporter_;
  std::vector<Slot> slots_;
  std::vector<int32_t> free_;
  // Buffers seized by InjectPressure (refs held at 1 until released).
  std::vector<int32_t> pressured_;
  // Direct handoff to parked allocators: DecRef passes a freed index
  // straight to the longest-waiting requester.
  Channel<int32_t> handoff_;
  uint64_t allocations_ = 0;
  uint64_t starvation_events_ = 0;
  size_t min_free_seen_;
};

}  // namespace pandora

#endif  // PANDORA_SRC_BUFFER_POOL_H_
