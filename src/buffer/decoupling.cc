#include "src/buffer/decoupling.h"

#include <sstream>
#include <utility>

#include "src/runtime/check.h"

namespace pandora {

DecouplingBuffer::DecouplingBuffer(Scheduler* sched, Options options, ReportSink* report_sink)
    : sched_(sched),
      options_name_(options.name),
      capacity_(options.capacity),
      use_ready_channel_(options.use_ready_channel),
      reporter_(sched, report_sink, options.name),
      input_(sched, options.name + ".in"),
      ready_(sched, options.name + ".ready"),
      output_(sched, options.name + ".out"),
      command_(sched, options.name + ".cmd"),
      dispatch_(sched, options.name + ".dispatch"),
      idle_(sched, options.name + ".idle") {
  PANDORA_CHECK(capacity_ > 0, "decoupling buffer needs at least one slot");
}

void DecouplingBuffer::Start(Priority priority) {
  PANDORA_CHECK(!started_, "DecouplingBuffer started twice");
  started_ = true;
  sched_->Spawn(CoreProc(), options_name_ + ".core", priority);
  // The sender runs at high priority: Pandora arranges "that the output
  // processes have priority" so back pressure pushes loss toward sources.
  sched_->Spawn(SenderProc(), options_name_ + ".sender", Priority::kHigh);
}

Process DecouplingBuffer::SenderProc() {
  for (;;) {
    SegmentRef item = co_await dispatch_.Receive();
    co_await output_.Send(std::move(item));
    co_await idle_.Send(true);
  }
}

Task<void> DecouplingBuffer::MaybeSendDeferredReady() {
  if (owe_ready_ && queue_.size() < capacity_) {
    owe_ready_ = false;
    co_await ready_.Send(true);
  }
}

Task<void> DecouplingBuffer::HandleCommand(const Command& command) {
  switch (command.verb) {
    case CommandVerb::kReportStatus: {
      std::ostringstream text;
      text << "length=" << queue_.size() << " limit=" << capacity_ << " in=" << total_in_
           << " out=" << total_out_ << " max=" << max_depth_seen_;
      reporter_.ReportNow("decoupling.status", ReportSeverity::kInfo, text.str(),
                          static_cast<int64_t>(queue_.size()));
      break;
    }
    case CommandVerb::kResizeBuffer: {
      // "It is also possible to specify a new buffer size dynamically, and
      // the buffer will adjust to this size without any loss of data."  A
      // shrink below the present depth simply pauses intake until drained.
      capacity_ = static_cast<size_t>(command.arg0 > 0 ? command.arg0 : 1);
      co_await MaybeSendDeferredReady();
      break;
    }
    default:
      reporter_.Report("decoupling.badcmd", ReportSeverity::kWarning, "unsupported command verb");
      break;
  }
}

Process DecouplingBuffer::CoreProc() {
  for (;;) {
    Alt alt(sched_);
    alt.OnReceive(command_);  // guard 0: principle 4, commands first
    alt.OnReceive(idle_);     // guard 1: sender finished a segment
    const bool can_dispatch = !queue_.empty() && sender_idle_;
    int next_guard = 2;
    const int dispatch_guard = can_dispatch ? next_guard++ : -1;
    if (can_dispatch) {
      alt.OnSkip();
    }
    // A TryPopBatch steal frees slots without passing through the dispatch
    // branch, so the deferred TRUE owed after a FALSE reply must also be
    // sendable from here.  In unbatched operation owe_ready_ implies a full
    // queue at the top of the loop (dispatch and resize both settle the debt
    // inline), so this guard never arms and the Alt shape is unchanged.
    const bool owes_ready = use_ready_channel_ && owe_ready_ && queue_.size() < capacity_;
    const int owed_guard = owes_ready ? next_guard++ : -1;
    if (owes_ready) {
      alt.OnSkip();
    }
    const bool can_input = queue_.size() < capacity_;
    const int input_guard = can_input ? next_guard++ : -1;
    if (can_input) {
      alt.OnReceive(input_);
    }

    int chosen = co_await alt.Select();
    if (chosen == 0) {
      Command command = co_await command_.Receive();
      co_await HandleCommand(command);
    } else if (chosen == 1) {
      (void)co_await idle_.Receive();
      sender_idle_ = true;
    } else if (chosen == dispatch_guard) {
      SegmentRef item = std::move(queue_.front());
      queue_.pop_front();
      ++total_out_;
      PANDORA_TRACE_COUNTER(sched_->trace(), trace_depth_site_, options_name_ + ".depth",
                            static_cast<int64_t>(queue_.size()));
      sender_idle_ = false;
      co_await dispatch_.Send(std::move(item));  // sender is parked: instant
      co_await MaybeSendDeferredReady();
    } else if (chosen == owed_guard) {
      co_await MaybeSendDeferredReady();
    } else if (chosen == input_guard) {
      SegmentRef item = co_await input_.Receive();
      queue_.push_back(std::move(item));
      ++total_in_;
      PANDORA_TRACE_COUNTER(sched_->trace(), trace_depth_site_, options_name_ + ".depth",
                            static_cast<int64_t>(queue_.size()));
      if (queue_.size() > max_depth_seen_) {
        max_depth_seen_ = queue_.size();
      }
      const bool space_left = queue_.size() < capacity_;
      if (!space_left) {
        reporter_.Report("decoupling.full", ReportSeverity::kWarning,
                         "buffer reached its size limit",
                         static_cast<int64_t>(capacity_));
      }
      if (use_ready_channel_) {
        // Fig 3.6: an immediate reply after every input, TRUE iff there are
        // more free slots; after FALSE a deferred TRUE follows when a slot
        // frees.
        if (!space_left) {
          owe_ready_ = true;
        }
        co_await ready_.Send(space_left);
      }
    }
  }
}

}  // namespace pandora
