// Decoupling buffers (paper section 3.7.1, figures 3.5 and 3.6).
//
// "Generic circular buffers, holding a FIFO queue of references to pandora
// segments.  In addition to an input and an output channel for segment
// references, they also respond to commands and generate reports."
//
// Two forms exist:
//  * Plain: when full the buffer stops listening on its input, blocking the
//    upstream sender — back pressure that pushes data loss towards the
//    source (output processes run at high priority).
//  * Ready-channel (fig 3.6): after EVERY accepted input the buffer replies
//    immediately on the ready channel — TRUE if more slots remain, FALSE if
//    not — and sends a deferred TRUE when a slot frees.  An upstream
//    process that got FALSE may throw data away rather than block; this is
//    how the switch protects split streams (principle 5).
//
// The buffer honours principle 4 by alting its command channel at the
// highest priority, and supports dynamic resize "without any loss of data".
#ifndef PANDORA_SRC_BUFFER_DECOUPLING_H_
#define PANDORA_SRC_BUFFER_DECOUPLING_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/buffer/pool.h"
#include "src/buffer/small_vec.h"
#include "src/control/command.h"
#include "src/control/report.h"
#include "src/runtime/alt.h"
#include "src/runtime/channel.h"
#include "src/runtime/scheduler.h"

namespace pandora {

class DecouplingBuffer {
 public:
  struct Options {
    std::string name = "decouple";
    size_t capacity = 16;
    bool use_ready_channel = false;
  };

  DecouplingBuffer(Scheduler* sched, Options options, ReportSink* report_sink = nullptr);

  DecouplingBuffer(const DecouplingBuffer&) = delete;
  DecouplingBuffer& operator=(const DecouplingBuffer&) = delete;

  // Spawns the buffer's processes.  Call once.
  void Start(Priority priority = Priority::kLow);

  Channel<SegmentRef>& input() { return input_; }
  Channel<bool>& ready() { return ready_; }
  Channel<SegmentRef>& output() { return output_; }
  CommandChannel& commands() { return command_; }

  // Batched egress steal (DESIGN.md §15): moves up to `max` queued segments
  // into `out`, FIFO, without the per-segment dispatch/output/idle rendezvous
  // round-trips.  Only safe for the buffer's single downstream consumer, and
  // only at a point where no segment is in the internal sender's hand ahead
  // of the queue — i.e. immediately after receiving from output() (drain
  // output()'s parked sender first if the caller suspended in between).
  // CoreProc still owns the ready protocol: it notices the freed slots at
  // its next guard evaluation and sends any owed deferred TRUE.
  template <std::size_t N>
  int TryPopBatch(SmallVec<SegmentRef, N>& out, int max) {
    int popped = 0;
    while (popped < max && !queue_.empty()) {
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
      ++total_out_;
      ++popped;
    }
    if (popped > 0) {
      PANDORA_TRACE_COUNTER(sched_->trace(), trace_depth_site_, options_name_ + ".depth",
                            static_cast<int64_t>(queue_.size()));
      // Each stolen segment replaced at least one full dispatch round-trip
      // in the one-segment-per-rendezvous engine (see Scheduler::events).
      sched_->CountBatchedEvents(static_cast<uint64_t>(popped));
    }
    return popped;
  }

  // Observability (the numbers a kReportStatus command returns).
  size_t depth() const { return queue_.size(); }
  size_t capacity() const { return capacity_; }
  bool full() const { return queue_.size() >= capacity_; }
  size_t max_depth_seen() const { return max_depth_seen_; }
  uint64_t total_in() const { return total_in_; }
  uint64_t total_out() const { return total_out_; }
  const std::string& name() const { return options_name_; }

 private:
  Process CoreProc();
  Process SenderProc();
  Task<void> HandleCommand(const Command& command);
  Task<void> MaybeSendDeferredReady();

  Scheduler* sched_;
  std::string options_name_;
  size_t capacity_;
  bool use_ready_channel_;
  Reporter reporter_;

  Channel<SegmentRef> input_;
  Channel<bool> ready_;
  Channel<SegmentRef> output_;
  CommandChannel command_;
  // Internal: core hands queue heads to a dedicated sender so a slow
  // consumer can never stall command processing.
  Channel<SegmentRef> dispatch_;
  Channel<bool> idle_;

  std::deque<SegmentRef> queue_;
  bool sender_idle_ = true;
  bool owe_ready_ = false;  // we replied FALSE and owe a deferred TRUE
  bool started_ = false;

  size_t max_depth_seen_ = 0;
  uint64_t total_in_ = 0;
  uint64_t total_out_ = 0;
  TraceSiteId trace_depth_site_ = 0;  // occupancy counter track
};

// Producer-side helper for the ready-channel protocol.  Tracks the latest
// TRUE/FALSE and exposes the ready channel for inclusion in the producer's
// alternation, exactly as section 3.7.1 prescribes.
class ReadySender {
 public:
  ReadySender(Channel<SegmentRef>* input, Channel<bool>* ready) : input_(input), ready_(ready) {}

  // True when the last reply said the buffer has room.
  bool can_send() const { return can_send_; }

  // Sends one segment and consumes the immediate reply.  Only valid when
  // can_send() — callers drop instead of calling this otherwise.
  Task<void> Send(SegmentRef ref) {
    co_await input_->Send(std::move(ref));
    can_send_ = co_await ready_->Receive();
    ++sent_;
  }

  // The channel to include in the producer's alternation while blocked.
  Channel<bool>& ready_channel() { return *ready_; }

  // After the alternation selects the ready channel: take the signal.
  Task<void> ConsumeReadySignal() { can_send_ = co_await ready_->Receive(); }

  // Drains any deferred TRUE without blocking (for poll-style producers).
  void Poll() {
    while (auto v = ready_->TryReceive()) {
      can_send_ = *v;
    }
  }

  void CountDrop() { ++drops_; }
  uint64_t drops() const { return drops_; }
  uint64_t sent() const { return sent_; }

 private:
  Channel<SegmentRef>* input_;
  Channel<bool>* ready_;
  bool can_send_ = true;
  uint64_t drops_ = 0;
  uint64_t sent_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_BUFFER_DECOUPLING_H_
