// FramePool: size-classed free-list recycler for coroutine frames.
//
// The paper's runtime spawns a short-lived Occam process per delivered
// segment (section 3.4: lifetimes "measured in microseconds"); our
// reproduction mirrors that with a coroutine per forwarded segment, which
// means a frame allocation on every network event unless frames are
// recycled.  FramePool backs the pooled `operator new/delete` on
// Process::promise_type and Task promises: frames are rounded up to a
// 64-byte granule, capped at 4 KiB (larger frames pass through to the
// global heap), and freed frames park on a per-class free list so
// steady-state spawn/exit churn never touches malloc.
//
// The free lists are per executor thread (`thread_local`): under the
// sharded M:N scheduler (src/runtime/shard_set.h) every worker recycles the
// frames of the shards it runs, and the static shard-to-worker assignment
// means a shard's spawn/exit churn stays on one worker's lists — no
// synchronisation, no cross-thread frees in steady state.  A frame that
// does migrate (allocated on the main thread before Run, recycled inside a
// worker window) simply seeds the recycler that freed it; blocks are plain
// heap storage, so which thread's list holds a free block never affects
// behaviour, only which thread skips its next malloc.  Under
// AddressSanitizer the pool degrades to a passthrough: recycling would
// defeat ASan's use-after-free quarantine and report the retained free
// lists as leaks.
#ifndef PANDORA_SRC_BUFFER_FRAME_POOL_H_
#define PANDORA_SRC_BUFFER_FRAME_POOL_H_

#include <cstddef>
#include <cstdint>
#include <new>

#include "src/runtime/shard.h"

#if defined(__SANITIZE_ADDRESS__)
#define PANDORA_FRAME_POOL_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PANDORA_FRAME_POOL_PASSTHROUGH 1
#endif
#endif
#ifndef PANDORA_FRAME_POOL_PASSTHROUGH
#define PANDORA_FRAME_POOL_PASSTHROUGH 0
#endif

namespace pandora {

class FramePool {
 public:
  static void* Allocate(std::size_t n) {
#if PANDORA_FRAME_POOL_PASSTHROUGH
    return ::operator new(n);
#else
    const std::size_t wanted = n == 0 ? 1 : n;
    const std::size_t cls = (wanted + kGranule - 1) / kGranule - 1;
    if (cls >= kNumClasses) {
      Header* header = static_cast<Header*>(::operator new(sizeof(Header) + wanted));
      header->cls = kHuge;
      return header + 1;
    }
    FreeNode*& head = FreeListHead(cls);
    Header* header;
    if (head != nullptr) {
      FreeNode* node = head;
      head = node->next;
      header = reinterpret_cast<Header*>(node);
    } else {
      header = static_cast<Header*>(::operator new(sizeof(Header) + (cls + 1) * kGranule));
    }
    header->cls = static_cast<std::uint32_t>(cls);
    return header + 1;
#endif
  }

  static void Deallocate(void* p) noexcept {
#if PANDORA_FRAME_POOL_PASSTHROUGH
    ::operator delete(p);
#else
    if (p == nullptr) {
      return;
    }
    Header* header = static_cast<Header*>(p) - 1;
    if (header->cls == kHuge) {
      ::operator delete(header);
      return;
    }
    const std::size_t cls = header->cls;
    // The dead block's own bytes become the free-list node.
    FreeNode* node = reinterpret_cast<FreeNode*>(header);
    node->next = FreeListHead(cls);
    FreeListHead(cls) = node;
#endif
  }

 private:
  // 64 classes x 64-byte granule covers frames up to 4 KiB; every coroutine
  // in the codebase measures well under that (a Process frame is a few
  // hundred bytes), so the passthrough path is cold.
  static constexpr std::size_t kGranule = 64;
  static constexpr std::size_t kMaxPooled = 4096;
  static constexpr std::size_t kNumClasses = kMaxPooled / kGranule;
  static constexpr std::uint32_t kHuge = 0xffffffffu;

  // The header keeps the payload max-aligned, as operator new must.
  struct alignas(alignof(std::max_align_t)) Header {
    std::uint32_t cls;
  };
  static_assert(sizeof(Header) == alignof(std::max_align_t));

  struct FreeNode {
    FreeNode* next;
  };
  static_assert(sizeof(FreeNode) <= sizeof(Header) + kGranule);

  static FreeNode*& FreeListHead(std::size_t cls) {
    // Frame recycling is an allocator fast path.  thread_local + zero-init
    // means no guard variable and no synchronisation: each ShardSet worker
    // (and the main thread) owns its lists outright, and the barrier
    // protocol hands shards between threads with full happens-before.
    PANDORA_SHARD_LOCAL static thread_local FreeNode* heads[kNumClasses] = {};
    return heads[cls];
  }
};

}  // namespace pandora

#endif  // PANDORA_SRC_BUFFER_FRAME_POOL_H_
