#include "src/net/atm.h"

#include <algorithm>
#include <optional>

namespace pandora {

AtmPort::AtmPort(Scheduler* sched, AtmNetwork* net, std::string name, int64_t egress_bps,
                 size_t wire_buffers, ReportSink* report_sink)
    : sched_(sched),
      net_(net),
      name_(std::move(name)),
      fwd_name_(name_ + ".fwd"),
      tx_(sched, name_ + ".tx"),
      rx_(sched, name_ + ".rx"),
      wire_pool_(sched, name_ + ".wire", wire_buffers, report_sink),
      egress_(sched, name_ + ".egress", egress_bps) {}

Process AtmPort::TxProc() {
  for (;;) {
    NetTx out = co_await tx_.Receive();
    // Whole-segment serialization at the interface: no interleaving, so a
    // large video segment delays any audio queued behind it (section 4.2).
    // The charge is the TRUE encoded size — exactly the bytes in the wire
    // image (stream field omitted, it rides in the VCI).
    const size_t bytes = out.wire->bytes.size();
    co_await egress_.Transmit(bytes);
    ++sent_;
    net_->bytes_on_wire_ += bytes;
    PANDORA_TRACE_COUNTER(sched_->trace(), net_->trace_wire_bytes_, "net.bytes_on_wire",
                          static_cast<int64_t>(net_->bytes_on_wire_));

    auto it = net_->circuits_.find({this, out.vci});
    if (it == net_->circuits_.end()) {
      ++unrouted_;
      continue;  // circuit closed mid-flight: traffic discarded (handle dropped)
    }
    AtmNetwork::Circuit* circuit = it->second.get();
    ++circuit->stats.offered;
    // "Incoming streams from the network carry the stream number allocated
    // by the destination box in their VCIs."  The wire image omits the
    // stream field, so relabelling costs nothing: the refcounted handle
    // moves into the fabric untouched, no payload copy.
    sched_->Spawn(net_->ForwardProc(this, out.vci, std::move(out.wire)), fwd_name_,
                  Priority::kHigh);
  }
}

AtmNetwork::AtmNetwork(Scheduler* sched, uint64_t seed) : sched_(sched), rng_(seed) {}

AtmPort* AtmNetwork::AddPort(const std::string& name, int64_t egress_bps, size_t wire_buffers,
                             ReportSink* report_sink) {
  ports_.push_back(
      std::make_unique<AtmPort>(sched_, this, name, egress_bps, wire_buffers, report_sink));
  AtmPort* port = ports_.back().get();
  sched_->Spawn(port->TxProc(), name + ".txproc", Priority::kHigh);
  return port;
}

NetHop* AtmNetwork::AddHop(const std::string& name, const HopQuality& quality) {
  hops_.push_back(std::make_unique<NetHop>(sched_, name, quality, rng_.Fork()));
  return hops_.back().get();
}

void AtmNetwork::OpenCircuit(AtmPort* src, Vci vci, AtmPort* dst, std::vector<NetHop*> path,
                             const HopQuality& direct) {
  auto circuit = std::make_unique<Circuit>();
  circuit->dst = dst;
  circuit->path = std::move(path);
  circuit->direct = direct;
  circuit->generation = ++next_generation_;
  circuit->trace_name = dst->name() + ".net.vci" + std::to_string(vci);
  circuit->stage_last_exit.assign(std::max<size_t>(1, circuit->path.size()), 0);
  circuits_[{src, vci}] = std::move(circuit);
}

void AtmNetwork::CloseCircuit(AtmPort* src, Vci vci) { circuits_.erase({src, vci}); }

void AtmNetwork::SetPortUp(AtmPort* port, bool up) {
  port->up_ = up;
  if (!up) {
    // Discard deliveries already parked on the rx channel: their forwarders
    // resume and finish normally, but the segments never reach a box (the
    // dropped NetRx releases its wire buffer back to the source pool).
    while (port->rx_.TryReceive().has_value()) {
      ++port->rx_discarded_;
      ++total_lost_;
    }
  }
}

void AtmNetwork::RestartPort(AtmPort* port) {
  sched_->Spawn(port->TxProc(), port->name_ + ".txproc", Priority::kHigh);
}

bool AtmNetwork::SetCircuitQuality(AtmPort* src, Vci vci, const HopQuality& quality) {
  auto it = circuits_.find({src, vci});
  if (it == circuits_.end() || !it->second->path.empty()) {
    return false;  // closed, or bridged: ForwardProc never reads `direct` then
  }
  it->second->direct = quality;
  return true;
}

const HopQuality* AtmNetwork::CircuitQuality(AtmPort* src, Vci vci) const {
  auto it = circuits_.find({src, vci});
  return it == circuits_.end() || !it->second->path.empty() ? nullptr : &it->second->direct;
}

bool AtmNetwork::SetCircuitUp(AtmPort* src, Vci vci, bool up) {
  auto it = circuits_.find({src, vci});
  if (it == circuits_.end()) {
    return false;
  }
  it->second->up = up;
  return true;
}

void AtmNetwork::SetHopQuality(NetHop* hop, const HopQuality& quality) {
  hop->quality = quality;
  hop->gate.SetRate(quality.bits_per_second);
}

const CircuitStats* AtmNetwork::StatsFor(AtmPort* src, Vci vci) const {
  auto it = circuits_.find({src, vci});
  return it == circuits_.end() ? nullptr : &it->second->stats;
}

AtmNetwork::Circuit* AtmNetwork::FindCircuit(AtmPort* src, Vci vci) {
  auto it = circuits_.find({src, vci});
  return it == circuits_.end() ? nullptr : it->second.get();
}

bool AtmNetwork::CorruptInFlight(WireRef& wire, Rng& rng, Circuit* circuit) {
  if (wire->bytes.empty()) {
    return true;  // nothing to damage
  }
  // Copy-on-corrupt: sibling handles of this buffer (multi-destination
  // fanout) must keep the pristine bytes, so the damage lands in a scratch
  // buffer from the same pool.  A starved pool drops the segment instead.
  std::optional<WireRef> scratch = wire.pool()->TryAllocate();
  if (!scratch.has_value()) {
    return false;
  }
  (*scratch)->bytes = wire->bytes;
  const int64_t bit =
      rng.UniformInt(0, static_cast<int64_t>((*scratch)->bytes.size()) * 8 - 1);
  (*scratch)->bytes[static_cast<size_t>(bit / 8)] ^=
      static_cast<uint8_t>(1u << static_cast<unsigned>(bit % 8));
  wire = std::move(*scratch);
  ++circuit->stats.corrupted;
  ++total_corrupted_;
  return true;
}

Process AtmNetwork::ForwardProc(AtmPort* src, Vci vci, WireRef wire) {
  const Time departed = sched_->now();
  const size_t bytes = wire->bytes.size();
  // One cheap header peek for telemetry — which sequence number a loss or
  // corrupt event struck.  The full decode happens only at the destination
  // box (src/server/netio.cc).
  WireHeaderPeek peek;
  const int64_t seq = PeekWireHeader(wire->bytes, StreamField::kOmitted, &peek, vci)
                          ? static_cast<int64_t>(peek.sequence)
                          : -1;

  Circuit* circuit = FindCircuit(src, vci);
  if (circuit == nullptr) {
    ++total_lost_;  // closed before this forwarder first ran
    co_return;
  }
  // Every re-fetch below must also land on this incarnation: a crash and
  // restart re-opens the circuit under the same key, and a segment from the
  // old call must not be delivered into (or clamp the FIFO bookkeeping of)
  // the new one.
  const uint64_t generation = circuit->generation;

  // An administratively-down circuit loses everything offered to it.
  if (!circuit->up) {
    ++circuit->stats.lost;
    ++total_lost_;
    PANDORA_TRACE_INSTANT2(sched_->trace(), circuit->trace_loss, circuit->trace_name + ".loss",
                           "seq", seq, "bytes", static_cast<int64_t>(bytes));
    co_return;
  }

  // FIFO per circuit: each stage's exit time is computed and CLAMPED
  // against the previous segment's exit BEFORE waiting, so segments that
  // draw a small jitter sample cannot overtake earlier ones — virtual
  // circuits are order-preserving, and jitter is queueing, which is FIFO.
  // ForwardProcs start in send order (spawned FIFO by the port), so each
  // stage's bookkeeping executes in send order too.
  if (circuit->path.empty()) {
    if (rng_.Bernoulli(circuit->direct.loss_rate)) {
      ++circuit->stats.lost;
      ++total_lost_;
      PANDORA_TRACE_INSTANT2(sched_->trace(), circuit->trace_loss,
                             circuit->trace_name + ".loss", "seq", seq, "bytes",
                             static_cast<int64_t>(bytes));
      co_return;
    }
    // Bit corruption (line noise): the damaged copy still travels and is
    // delivered for the destination decoder to reject.  The rate check
    // short-circuits so healthy circuits draw nothing (determinism).
    if (circuit->direct.corrupt_rate > 0 && rng_.Bernoulli(circuit->direct.corrupt_rate)) {
      if (!CorruptInFlight(wire, rng_, circuit)) {
        ++circuit->stats.lost;
        ++total_lost_;
        PANDORA_TRACE_INSTANT2(sched_->trace(), circuit->trace_loss,
                               circuit->trace_name + ".loss", "seq", seq, "bytes",
                               static_cast<int64_t>(bytes));
        co_return;
      }
      PANDORA_TRACE_INSTANT2(sched_->trace(), circuit->trace_corrupt,
                             circuit->trace_name + ".corrupt", "seq", seq, "bytes",
                             static_cast<int64_t>(bytes));
    }
    Duration jitter = circuit->direct.jitter_max > 0
                          ? static_cast<Duration>(rng_.Uniform(
                                0.0, static_cast<double>(circuit->direct.jitter_max)))
                          : 0;
    Time exit_at =
        std::max(sched_->now() + circuit->direct.propagation + jitter,
                 circuit->stage_last_exit[0] + 1);
    circuit->stage_last_exit[0] = exit_at;
    co_await sched_->WaitUntil(exit_at);
    circuit = FindCircuit(src, vci);
    if (circuit == nullptr || circuit->generation != generation) {
      ++total_lost_;  // closed (or re-opened for a new call) while in flight
      co_return;
    }
  } else {
    for (size_t i = 0; i < circuit->path.size(); ++i) {
      NetHop* hop = circuit->path[i];
      if (hop->rng.Bernoulli(hop->quality.loss_rate) ||
          hop->gate.current_queue_delay() > hop->quality.max_queue) {
        ++circuit->stats.lost;
        ++total_lost_;
        PANDORA_TRACE_INSTANT2(sched_->trace(), circuit->trace_loss,
                               circuit->trace_name + ".loss", "seq", seq, "bytes",
                               static_cast<int64_t>(bytes));
        co_return;
      }
      if (hop->quality.corrupt_rate > 0 && hop->rng.Bernoulli(hop->quality.corrupt_rate)) {
        if (!CorruptInFlight(wire, hop->rng, circuit)) {
          ++circuit->stats.lost;
          ++total_lost_;
          PANDORA_TRACE_INSTANT2(sched_->trace(), circuit->trace_loss,
                                 circuit->trace_name + ".loss", "seq", seq, "bytes",
                                 static_cast<int64_t>(bytes));
          co_return;
        }
        PANDORA_TRACE_INSTANT2(sched_->trace(), circuit->trace_corrupt,
                               circuit->trace_name + ".corrupt", "seq", seq, "bytes",
                               static_cast<int64_t>(bytes));
      }
      // The gate serializes whole segments FIFO across every circuit
      // sharing the hop (contention); reservations are made in program
      // order, which per circuit is send order by induction.
      co_await hop->gate.Transmit(bytes);
      bytes_on_wire_ += bytes;
      PANDORA_TRACE_COUNTER(sched_->trace(), trace_wire_bytes_, "net.bytes_on_wire",
                            static_cast<int64_t>(bytes_on_wire_));
      circuit = FindCircuit(src, vci);
      if (circuit == nullptr || circuit->generation != generation) {
        ++total_lost_;  // closed (or re-opened for a new call) while in flight
        co_return;
      }
      // Re-borrow the hop from the re-fetched circuit: the bridged path is
      // immutable after OpenCircuit, so this is the same pointer today, but
      // it keeps every pointer read downstream of a suspension fresh.
      hop = circuit->path[i];
      Duration jitter = hop->quality.jitter_max > 0
                            ? static_cast<Duration>(hop->rng.Uniform(
                                  0.0, static_cast<double>(hop->quality.jitter_max)))
                            : 0;
      Time exit_at = std::max(sched_->now() + hop->quality.propagation + jitter,
                              circuit->stage_last_exit[i] + 1);
      circuit->stage_last_exit[i] = exit_at;
      co_await sched_->WaitUntil(exit_at);
      circuit = FindCircuit(src, vci);
      if (circuit == nullptr || circuit->generation != generation) {
        ++total_lost_;
        co_return;
      }
    }
  }

  // The destination link may have gone down while this segment was in
  // flight; a dead box receives nothing (PandoraBox::Crash takes the port
  // down before killing the box's processes, so nothing parks forever on an
  // unreceived rx channel).
  if (!circuit->dst->up_) {
    ++circuit->dst->rx_discarded_;
    ++circuit->stats.lost;
    ++total_lost_;
    PANDORA_TRACE_INSTANT2(sched_->trace(), circuit->trace_loss, circuit->trace_name + ".loss",
                           "seq", seq, "bytes", static_cast<int64_t>(bytes));
    co_return;
  }
  ++circuit->stats.delivered;
  ++total_delivered_;
  circuit->stats.latency.Add(static_cast<double>(sched_->now() - departed));
  // Per-(stream, network-hop) transit latency, keyed by the destination VCI.
  PANDORA_TRACE_HISTOGRAM(sched_->trace(), circuit->trace_hist,
                          circuit->trace_name + ".latency", "us", sched_->now() - departed);
  if (circuit->last_rx_time >= 0) {
    circuit->stats.inter_arrival.Add(static_cast<double>(sched_->now() - circuit->last_rx_time));
  }
  circuit->last_rx_time = sched_->now();
  NetRx delivery;
  delivery.vci = vci;
  delivery.wire = std::move(wire);
  co_await circuit->dst->rx().Send(std::move(delivery));
}

}  // namespace pandora
