#include "src/net/atm.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/runtime/check.h"

namespace pandora {

AtmPort::AtmPort(Scheduler* sched, AtmNetwork* net, std::string name, int64_t egress_bps,
                 size_t wire_buffers, ReportSink* report_sink, int shard)
    : sched_(sched),
      net_(net),
      name_(std::move(name)),
      fwd_name_(name_ + ".fwd"),
      tx_(sched, name_ + ".tx"),
      rx_(sched, name_ + ".rx"),
      wire_pool_(sched, name_ + ".wire", wire_buffers, report_sink),
      egress_(sched, name_ + ".egress", egress_bps),
      shard_(shard) {}

Process AtmPort::TxProc() {
  for (;;) {
    NetTx out = co_await tx_.Receive();
    // Whole-segment serialization at the interface: no interleaving, so a
    // large video segment delays any audio queued behind it (section 4.2).
    // The charge is the TRUE encoded size — exactly the bytes in the wire
    // image (stream field omitted, it rides in the VCI).
    const size_t bytes = out.wire->bytes.size();
    co_await egress_.Transmit(bytes);
    ++sent_;
    // This shard's slice of the wire-byte counter: single-writer, and the
    // trace site id belongs to this shard's recorder.
    net_->bytes_on_wire_[static_cast<size_t>(shard_)] += bytes;
    PANDORA_TRACE_COUNTER(sched_->trace(), net_->trace_wire_bytes_[static_cast<size_t>(shard_)],
                          "net.bytes_on_wire",
                          static_cast<int64_t>(net_->bytes_on_wire_[static_cast<size_t>(shard_)]));

    auto it = net_->circuits_.find({this, out.vci});
    if (it == net_->circuits_.end()) {
      ++unrouted_;
      continue;  // circuit closed mid-flight: traffic discarded (handle dropped)
    }
    AtmNetwork::Circuit* circuit = it->second.get();
    ++circuit->stats.offered;
    // "Incoming streams from the network carry the stream number allocated
    // by the destination box in their VCIs."  The wire image omits the
    // stream field, so relabelling costs nothing: the refcounted handle
    // moves into the fabric untouched, no payload copy.
    sched_->Spawn(net_->ForwardProc(this, out.vci, std::move(out.wire)), fwd_name_,
                  Priority::kHigh);
  }
}

AtmNetwork::AtmNetwork(Scheduler* sched, uint64_t seed) : sched_(sched), rng_(seed) {
  total_delivered_.assign(1, 0);
  total_lost_.assign(1, 0);
  total_corrupted_.assign(1, 0);
  bytes_on_wire_.assign(1, 0);
  trace_wire_bytes_.assign(1, 0);
  transfers_.resize(1);
}

AtmNetwork::AtmNetwork(ShardSet* shards, uint64_t seed)
    : sched_(&shards->scheduler()), rng_(seed), shards_(shards) {
  const size_t n = static_cast<size_t>(shards->shard_count());
  // Shard 0 forwards with the legacy stream (`rng_`): a shards=1 network is
  // bit-identical to the Scheduler constructor.  The other shards draw from
  // independently-seeded streams — forking rng_ here would perturb shard 0.
  extra_rngs_.reserve(n > 0 ? n - 1 : 0);
  for (size_t i = 1; i < n; ++i) {
    extra_rngs_.push_back(Rng(seed + 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(i)));
  }
  total_delivered_.assign(n, 0);
  total_lost_.assign(n, 0);
  total_corrupted_.assign(n, 0);
  bytes_on_wire_.assign(n, 0);
  trace_wire_bytes_.assign(n, 0);
  transfers_.resize(n);
  if (n > 1) {
    shards_->AddBarrierTask(this);
  }
}

AtmNetwork::~AtmNetwork() {
  if (shards_ != nullptr && shards_->shard_count() > 1) {
    shards_->RemoveBarrierTask(this);
  }
}

AtmPort* AtmNetwork::AddPort(const std::string& name, int64_t egress_bps, size_t wire_buffers,
                             ReportSink* report_sink, int shard) {
  PANDORA_CHECK(shard == 0 || (shards_ != nullptr && shard < shards_->shard_count()),
                "port placed on a shard this network does not span");
  Scheduler* sched = shards_ != nullptr ? &shards_->shard(shard) : sched_;
  ports_.push_back(
      std::make_unique<AtmPort>(sched, this, name, egress_bps, wire_buffers, report_sink, shard));
  AtmPort* port = ports_.back().get();
  sched->Spawn(port->TxProc(), name + ".txproc", Priority::kHigh);
  return port;
}

NetHop* AtmNetwork::AddHop(const std::string& name, const HopQuality& quality, int shard) {
  PANDORA_CHECK(shard == 0 || (shards_ != nullptr && shard < shards_->shard_count()),
                "hop placed on a shard this network does not span");
  Scheduler* sched = shards_ != nullptr ? &shards_->shard(shard) : sched_;
  // Shard 0 hops keep the legacy fork-from-rng_ stream; other shards fork
  // from their own shard's stream so shard 0 stays bit-identical.
  hops_.push_back(std::make_unique<NetHop>(sched, name, quality, RngFor(shard).Fork(), shard));
  return hops_.back().get();
}

void AtmNetwork::OpenCircuit(AtmPort* src, Vci vci, AtmPort* dst, std::vector<NetHop*> path,
                             const HopQuality& direct) {
  auto circuit = std::make_unique<Circuit>();
  circuit->dst = dst;
  circuit->path = std::move(path);
  circuit->direct = direct;
  circuit->generation = ++next_generation_;
  circuit->trace_name = dst->name() + ".net.vci" + std::to_string(vci);
  circuit->stage_last_exit.assign(std::max<size_t>(1, circuit->path.size()), 0);
  // Forwarding runs on the source port's shard: every bridged hop must live
  // there too (its gate belongs to that shard's scheduler).
  for (const NetHop* hop : circuit->path) {
    PANDORA_CHECK(hop->shard == src->shard_,
                  "bridged hop on a different shard than the circuit's source port");
  }
  if (dst->shard_ != src->shard_) {
    // Cross-shard: the fabric exit posts into the destination shard's
    // mailbox, so the final stage's propagation is the lookahead floor —
    // anything smaller would ask the destination to rewrite a window it may
    // already have executed (ShardSet::Post re-checks per delivery).
    PANDORA_CHECK(shards_ != nullptr, "cross-shard circuit on a network without a ShardSet");
    const Duration final_propagation =
        circuit->path.empty() ? circuit->direct.propagation : circuit->path.back()->quality.propagation;
    PANDORA_CHECK(final_propagation >= shards_->lookahead(),
                  "cross-shard circuit latency below the ShardSet lookahead floor");
  }
  circuits_[{src, vci}] = std::move(circuit);
}

void AtmNetwork::CloseCircuit(AtmPort* src, Vci vci) { circuits_.erase({src, vci}); }

void AtmNetwork::SetPortUp(AtmPort* port, bool up) {
  port->up_ = up;
  if (!up) {
    // Discard deliveries already parked on the rx channel: their forwarders
    // resume and finish normally, but the segments never reach a box (the
    // dropped NetRx releases its wire buffer back to the source pool).
    // Control-plane context (between Run* calls, or stop-the-world in a
    // spanning world), so touching the port's shard state here is safe.
    while (port->rx_.TryReceive().has_value()) {
      ++port->rx_discarded_;
      ++total_lost_[static_cast<size_t>(port->shard_)];
    }
  }
}

void AtmNetwork::RestartPort(AtmPort* port) {
  port->sched_->Spawn(port->TxProc(), port->name_ + ".txproc", Priority::kHigh);
}

bool AtmNetwork::SetCircuitQuality(AtmPort* src, Vci vci, const HopQuality& quality) {
  auto it = circuits_.find({src, vci});
  if (it == circuits_.end() || !it->second->path.empty()) {
    return false;  // closed, or bridged: ForwardProc never reads `direct` then
  }
  if (it->second->dst->shard_ != src->shard_) {
    // Storms may squeeze bandwidth, add jitter or loss — but never shrink a
    // cross-shard link below the lookahead floor (the fault kinds all
    // preserve propagation; a direct caller must too).
    PANDORA_CHECK(shards_ != nullptr && quality.propagation >= shards_->lookahead(),
                  "cross-shard circuit quality below the ShardSet lookahead floor");
  }
  it->second->direct = quality;
  return true;
}

const HopQuality* AtmNetwork::CircuitQuality(AtmPort* src, Vci vci) const {
  auto it = circuits_.find({src, vci});
  return it == circuits_.end() || !it->second->path.empty() ? nullptr : &it->second->direct;
}

bool AtmNetwork::SetCircuitUp(AtmPort* src, Vci vci, bool up) {
  auto it = circuits_.find({src, vci});
  if (it == circuits_.end()) {
    return false;
  }
  it->second->up = up;
  return true;
}

void AtmNetwork::SetHopQuality(NetHop* hop, const HopQuality& quality) {
  hop->quality = quality;
  hop->gate.SetRate(quality.bits_per_second);
}

const CircuitStats* AtmNetwork::StatsFor(AtmPort* src, Vci vci) const {
  auto it = circuits_.find({src, vci});
  return it == circuits_.end() ? nullptr : &it->second->stats;
}

AtmNetwork::Circuit* AtmNetwork::FindCircuit(AtmPort* src, Vci vci) {
  auto it = circuits_.find({src, vci});
  return it == circuits_.end() ? nullptr : it->second.get();
}

bool AtmNetwork::CorruptInFlight(WireRef& wire, Rng& rng, Circuit* circuit, int shard) {
  if (wire->bytes.empty()) {
    return true;  // nothing to damage
  }
  // Copy-on-corrupt: sibling handles of this buffer (multi-destination
  // fanout) must keep the pristine bytes, so the damage lands in a scratch
  // buffer from the same pool.  A starved pool drops the segment instead.
  std::optional<WireRef> scratch = wire.pool()->TryAllocate();
  if (!scratch.has_value()) {
    return false;
  }
  (*scratch)->bytes = wire->bytes;
  const int64_t bit =
      rng.UniformInt(0, static_cast<int64_t>((*scratch)->bytes.size()) * 8 - 1);
  (*scratch)->bytes[static_cast<size_t>(bit / 8)] ^=
      static_cast<uint8_t>(1u << static_cast<unsigned>(bit % 8));
  wire = std::move(*scratch);
  ++circuit->stats.corrupted;
  ++total_corrupted_[static_cast<size_t>(shard)];
  return true;
}

Process AtmNetwork::ForwardProc(AtmPort* src, Vci vci, WireRef wire) {
  // Everything below runs on the SOURCE port's shard: its scheduler, its
  // slice of the counters, its rng (shard 0's is the legacy stream).  The
  // destination only becomes involved at the fabric exit.
  Scheduler* sched = src->sched_;
  const int shard = src->shard_;
  Rng& rng = RngFor(shard);
  const Time departed = sched->now();
  const size_t bytes = wire->bytes.size();
  // One cheap header peek for telemetry — which sequence number a loss or
  // corrupt event struck.  The full decode happens only at the destination
  // box (src/server/netio.cc).
  WireHeaderPeek peek;
  const int64_t seq = PeekWireHeader(wire->bytes, StreamField::kOmitted, &peek, vci)
                          ? static_cast<int64_t>(peek.sequence)
                          : -1;

  Circuit* circuit = FindCircuit(src, vci);
  if (circuit == nullptr) {
    ++total_lost_[static_cast<size_t>(shard)];  // closed before this forwarder first ran
    co_return;
  }
  // Every re-fetch below must also land on this incarnation: a crash and
  // restart re-opens the circuit under the same key, and a segment from the
  // old call must not be delivered into (or clamp the FIFO bookkeeping of)
  // the new one.
  const uint64_t generation = circuit->generation;

  // An administratively-down circuit loses everything offered to it.
  if (!circuit->up) {
    ++circuit->stats.lost;
    ++total_lost_[static_cast<size_t>(shard)];
    PANDORA_TRACE_INSTANT2(sched->trace(), circuit->trace_loss, circuit->trace_name + ".loss",
                           "seq", seq, "bytes", static_cast<int64_t>(bytes));
    co_return;
  }

  // FIFO per circuit: each stage's exit time is computed and CLAMPED
  // against the previous segment's exit BEFORE waiting, so segments that
  // draw a small jitter sample cannot overtake earlier ones — virtual
  // circuits are order-preserving, and jitter is queueing, which is FIFO.
  // ForwardProcs start in send order (spawned FIFO by the port), so each
  // stage's bookkeeping executes in send order too.
  if (circuit->path.empty()) {
    if (rng.Bernoulli(circuit->direct.loss_rate)) {
      ++circuit->stats.lost;
      ++total_lost_[static_cast<size_t>(shard)];
      PANDORA_TRACE_INSTANT2(sched->trace(), circuit->trace_loss,
                             circuit->trace_name + ".loss", "seq", seq, "bytes",
                             static_cast<int64_t>(bytes));
      co_return;
    }
    // Bit corruption (line noise): the damaged copy still travels and is
    // delivered for the destination decoder to reject.  The rate check
    // short-circuits so healthy circuits draw nothing (determinism).
    if (circuit->direct.corrupt_rate > 0 && rng.Bernoulli(circuit->direct.corrupt_rate)) {
      if (!CorruptInFlight(wire, rng, circuit, shard)) {
        ++circuit->stats.lost;
        ++total_lost_[static_cast<size_t>(shard)];
        PANDORA_TRACE_INSTANT2(sched->trace(), circuit->trace_loss,
                               circuit->trace_name + ".loss", "seq", seq, "bytes",
                               static_cast<int64_t>(bytes));
        co_return;
      }
      PANDORA_TRACE_INSTANT2(sched->trace(), circuit->trace_corrupt,
                             circuit->trace_name + ".corrupt", "seq", seq, "bytes",
                             static_cast<int64_t>(bytes));
    }
    Duration jitter = circuit->direct.jitter_max > 0
                          ? static_cast<Duration>(rng.Uniform(
                                0.0, static_cast<double>(circuit->direct.jitter_max)))
                          : 0;
    Time exit_at =
        std::max(sched->now() + circuit->direct.propagation + jitter,
                 circuit->stage_last_exit[0] + 1);
    circuit->stage_last_exit[0] = exit_at;
    if (circuit->dst->shard_ != shard) {
      // Cross-shard fabric exit: no final wait here — the delivery time
      // rides the mailbox instead (exit_at clears the lookahead contract
      // because OpenCircuit pinned propagation >= lookahead).
      DeliverCrossShard(circuit, src, vci, exit_at, seq, bytes, std::move(wire), departed);
      co_return;
    }
    co_await sched->WaitUntil(exit_at);
    circuit = FindCircuit(src, vci);
    if (circuit == nullptr || circuit->generation != generation) {
      ++total_lost_[static_cast<size_t>(shard)];  // closed (or re-opened) while in flight
      co_return;
    }
  } else {
    for (size_t i = 0; i < circuit->path.size(); ++i) {
      NetHop* hop = circuit->path[i];
      if (hop->rng.Bernoulli(hop->quality.loss_rate) ||
          hop->gate.current_queue_delay() > hop->quality.max_queue) {
        ++circuit->stats.lost;
        ++total_lost_[static_cast<size_t>(shard)];
        PANDORA_TRACE_INSTANT2(sched->trace(), circuit->trace_loss,
                               circuit->trace_name + ".loss", "seq", seq, "bytes",
                               static_cast<int64_t>(bytes));
        co_return;
      }
      if (hop->quality.corrupt_rate > 0 && hop->rng.Bernoulli(hop->quality.corrupt_rate)) {
        if (!CorruptInFlight(wire, hop->rng, circuit, shard)) {
          ++circuit->stats.lost;
          ++total_lost_[static_cast<size_t>(shard)];
          PANDORA_TRACE_INSTANT2(sched->trace(), circuit->trace_loss,
                                 circuit->trace_name + ".loss", "seq", seq, "bytes",
                                 static_cast<int64_t>(bytes));
          co_return;
        }
        PANDORA_TRACE_INSTANT2(sched->trace(), circuit->trace_corrupt,
                               circuit->trace_name + ".corrupt", "seq", seq, "bytes",
                               static_cast<int64_t>(bytes));
      }
      // The gate serializes whole segments FIFO across every circuit
      // sharing the hop (contention); reservations are made in program
      // order, which per circuit is send order by induction.
      co_await hop->gate.Transmit(bytes);
      bytes_on_wire_[static_cast<size_t>(shard)] += bytes;
      PANDORA_TRACE_COUNTER(sched->trace(), trace_wire_bytes_[static_cast<size_t>(shard)],
                            "net.bytes_on_wire",
                            static_cast<int64_t>(bytes_on_wire_[static_cast<size_t>(shard)]));
      circuit = FindCircuit(src, vci);
      if (circuit == nullptr || circuit->generation != generation) {
        ++total_lost_[static_cast<size_t>(shard)];  // closed (or re-opened) while in flight
        co_return;
      }
      // Re-borrow the hop from the re-fetched circuit: the bridged path is
      // immutable after OpenCircuit, so this is the same pointer today, but
      // it keeps every pointer read downstream of a suspension fresh.
      hop = circuit->path[i];
      Duration jitter = hop->quality.jitter_max > 0
                            ? static_cast<Duration>(hop->rng.Uniform(
                                  0.0, static_cast<double>(hop->quality.jitter_max)))
                            : 0;
      Time exit_at = std::max(sched->now() + hop->quality.propagation + jitter,
                              circuit->stage_last_exit[i] + 1);
      circuit->stage_last_exit[i] = exit_at;
      if (i + 1 == circuit->path.size() && circuit->dst->shard_ != shard) {
        // Last hop of a cross-shard bridged path: the exit posts into the
        // destination shard instead of waiting here (the hop's propagation
        // is the lookahead floor, pinned at OpenCircuit).
        DeliverCrossShard(circuit, src, vci, exit_at, seq, bytes, std::move(wire), departed);
        co_return;
      }
      co_await sched->WaitUntil(exit_at);
      circuit = FindCircuit(src, vci);
      if (circuit == nullptr || circuit->generation != generation) {
        ++total_lost_[static_cast<size_t>(shard)];
        co_return;
      }
    }
  }

  // The destination link may have gone down while this segment was in
  // flight; a dead box receives nothing (PandoraBox::Crash takes the port
  // down before killing the box's processes, so nothing parks forever on an
  // unreceived rx channel).
  if (!circuit->dst->up_) {
    ++circuit->dst->rx_discarded_;
    ++circuit->stats.lost;
    ++total_lost_[static_cast<size_t>(shard)];
    PANDORA_TRACE_INSTANT2(sched->trace(), circuit->trace_loss, circuit->trace_name + ".loss",
                           "seq", seq, "bytes", static_cast<int64_t>(bytes));
    co_return;
  }
  ++circuit->stats.delivered;
  ++total_delivered_[static_cast<size_t>(shard)];
  circuit->stats.latency.Add(static_cast<double>(sched->now() - departed));
  // Per-(stream, network-hop) transit latency, keyed by the destination VCI.
  PANDORA_TRACE_HISTOGRAM(sched->trace(), circuit->trace_hist,
                          circuit->trace_name + ".latency", "us", sched->now() - departed);
  if (circuit->last_rx_time >= 0) {
    circuit->stats.inter_arrival.Add(static_cast<double>(sched->now() - circuit->last_rx_time));
  }
  circuit->last_rx_time = sched->now();
  NetRx delivery;
  delivery.vci = vci;
  delivery.wire = std::move(wire);
  co_await circuit->dst->rx().Send(std::move(delivery));
}

void AtmNetwork::DeliverCrossShard(Circuit* circuit, AtmPort* src, Vci vci, Time exit_at,
                                   int64_t seq, size_t bytes, WireRef wire, Time departed) {
  const int shard = src->shard_;
  AtmPort* dst = circuit->dst;
  // The destination link state only changes at stop-the-world instants
  // (SetPortUp is control-plane), so this read is stable for the whole
  // window.  A port that is down NOW loses the segment at the exit, exactly
  // like the same-shard tail; a port that goes down between this post and
  // the arrival window is handled again in ArriveTransfer (that corner
  // counts as a delivery here and a discard there — documented in §14).
  if (!dst->up_) {
    ++circuit->stats.lost;
    ++total_lost_[static_cast<size_t>(shard)];
    PANDORA_TRACE_INSTANT2(src->sched_->trace(), circuit->trace_loss,
                           circuit->trace_name + ".loss", "seq", seq, "bytes",
                           static_cast<int64_t>(bytes));
    return;
  }
  // Fabric-exit accounting on the source shard, which owns the circuit: the
  // delivery instant is exit_at by construction (the posted timer fires then).
  ++circuit->stats.delivered;
  ++total_delivered_[static_cast<size_t>(shard)];
  circuit->stats.latency.Add(static_cast<double>(exit_at - departed));
  PANDORA_TRACE_HISTOGRAM(src->sched_->trace(), circuit->trace_hist,
                          circuit->trace_name + ".latency", "us", exit_at - departed);
  if (circuit->last_rx_time >= 0) {
    circuit->stats.inter_arrival.Add(static_cast<double>(exit_at - circuit->last_rx_time));
  }
  circuit->last_rx_time = exit_at;

  // Copy the encoded bytes into a transfer record: WireRef refcounts are
  // shard-local, so the handle itself must not cross the boundary.  Records
  // recycle through the lane's free list, so a warmed lane allocates nothing.
  TransferLane& lane = transfers_[static_cast<size_t>(shard)];
  WireTransfer record;
  if (!lane.free.empty()) {
    record = std::move(lane.free.back());
    lane.free.pop_back();
  }
  record.bytes.assign(wire->bytes.begin(), wire->bytes.end());
  record.vci = vci;
  record.dst = dst;
  record.consumed = false;
  lane.live.push_back(std::move(record));
  WireTransfer* slot = &lane.live.back();
  AtmNetwork* net = this;
  shards_->Post(shard, dst->shard_, exit_at,
                TimerCallback([net, slot] { net->ArriveTransfer(slot); }));
  // `wire` releases here, on the owning shard.
}

void AtmNetwork::ArriveTransfer(WireTransfer* transfer) {
  // Destination-shard timer context, at the posted exit_at.
  AtmPort* dst = transfer->dst;
  transfer->consumed = true;  // the next barrier recycles the record
  if (!dst->up_) {
    // Went down at a stop-the-world instant while the bytes were in flight.
    ++dst->rx_discarded_;
    ++total_lost_[static_cast<size_t>(dst->shard_)];
    return;
  }
  // Re-home the bytes into the destination port's pool (the source pool's
  // refcounts must stay on the source shard).  A starved pool discards, the
  // same back-pressure answer a down port gets.
  std::optional<WireRef> wire = dst->wire_pool_.TryAllocate();
  if (!wire.has_value()) {
    ++dst->rx_discarded_;
    ++total_lost_[static_cast<size_t>(dst->shard_)];
    return;
  }
  (*wire)->bytes = transfer->bytes;
  NetRx delivery;
  delivery.vci = transfer->vci;
  delivery.wire = std::move(*wire);
  // Fast path: the box's ingress handler is already parked on rx() — hand
  // the image over without spawning a process (one dispatch per segment
  // saved; the batched NetworkInput drains these in bursts).  A parked
  // receiver implies no parked senders, so this can never jump ahead of a
  // queued delivery.
  if (dst->rx_.waiting_receivers() > 0) {
    const bool handed = dst->rx_.TrySend(std::move(delivery));
    PANDORA_DCHECK(handed, "rx TrySend failed with a parked receiver");
    return;
  }
  // rx().Send may park while the box drains; suspend in a process, exactly
  // like the tail of ForwardProc.
  dst->sched_->Spawn(DeliverProc(dst, std::move(delivery)), dst->fwd_name_, Priority::kHigh);
}

Process AtmNetwork::DeliverProc(AtmPort* dst, NetRx delivery) {
  co_await dst->rx().Send(std::move(delivery));
}

void AtmNetwork::OnShardBarrier() {
  // Coordinator context, workers parked: consumption flags written by
  // destination shards during the window are visible now.  Only the front
  // is popped — later consumed records wait for their elders so that live
  // pointers handed to mailboxes stay stable (deque guarantees).
  for (TransferLane& lane : transfers_) {
    while (!lane.live.empty() && lane.live.front().consumed) {
      lane.free.push_back(std::move(lane.live.front()));
      lane.live.pop_front();
    }
  }
}

}  // namespace pandora
