// ATM network simulation (sections 1.1, 4.2; DESIGN.md substitution).
//
// Pandora boxes exchange segments over a dedicated ATM network; "incoming
// streams from the network carry the stream number allocated by the
// destination box in their VCIs".  The reproduction models the properties
// the paper's mechanisms react to:
//
//  * each box's network interface serializes whole segments at its link
//    rate and does NOT interleave transmissions — "video segments can hold
//    up following audio segments, introducing up to 20ms of jitter in a
//    stream" (section 4.2, measured by bench E7);
//  * a circuit may traverse several store-and-forward hops (bridges,
//    backbone links, protocol conversions — the SuperJanet trial of
//    section 3.7.2), each with its own bandwidth, propagation delay,
//    queueing jitter, loss and bit corruption;
//  * delivery is FIFO per circuit (jitter never reorders one stream).
//
// The network carries ENCODED segments: the source box serializes once into
// a refcounted WireBuffer drawn from its port's WirePool, every stage below
// (egress gate, hops, delivery) moves the handle, and only the destination
// box decodes (DESIGN.md §9).  Per-hop byte accounting therefore uses the
// true encoded size, and damage (corrupt_rate) flips bits in the actual
// wire image for the receiver's decoder to catch.
//
// Sharding (DESIGN.md §14): when constructed over a ShardSet, every port
// lives on one shard and all forwarding for a circuit runs on the SOURCE
// port's shard (its rng, its trace recorder, its slice of the network
// counters).  A cross-shard circuit hands the encoded bytes to the
// destination shard through ShardSet::Post at the fabric-exit instant; the
// final-stage propagation delay is the lookahead floor, validated at
// OpenCircuit (and re-checked by Post itself).  The payload crosses the
// boundary as a byte copy into a capacity-recycled transfer record —
// WireRef refcounts are shard-local and never shared between threads.
#ifndef PANDORA_SRC_NET_ATM_H_
#define PANDORA_SRC_NET_ATM_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/buffer/pool.h"
#include "src/runtime/channel.h"
#include "src/runtime/random.h"
#include "src/runtime/resource.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/shard_set.h"
#include "src/runtime/stats.h"
#include "src/segment/constants.h"
#include "src/segment/wire.h"
#include "src/trace/trace.h"

namespace pandora {

// Characteristics of one hop of a network path.
struct HopQuality {
  int64_t bits_per_second = 100'000'000;
  Duration propagation = Micros(20);
  Duration jitter_max = 0;  // uniform [0, jitter_max) queueing delay
  double loss_rate = 0.0;
  // Probability that a traversal flips a bit somewhere in the segment's
  // wire image (line noise, a flaky bridge).  The damaged copy is still
  // delivered; the destination's decoder rejects it (wire-corrupt fault).
  double corrupt_rate = 0.0;
  // Queue bound: a segment arriving when the hop's backlog exceeds this is
  // discarded (bridges have finite buffers; overload shows as loss, not as
  // unbounded delay).
  Duration max_queue = Millis(500);
};

// A shared store-and-forward element (backbone link, bridge).  Contention:
// simultaneous circuits queue on its gate.
class NetHop {
 public:
  NetHop(Scheduler* sched, std::string name, const HopQuality& quality, Rng rng, int shard = 0)
      : quality(quality),
        gate(sched, std::move(name), quality.bits_per_second),
        rng(rng),
        shard(shard) {}

  HopQuality quality;
  BandwidthGate gate;
  Rng rng;
  // Shard whose scheduler owns the gate; every circuit through this hop must
  // originate on the same shard (hop traversal is source-shard work).
  int shard = 0;
};

// What the box's network output handler hands to its port: an encoded
// segment (stream field omitted — the VCI carries it) ready for the wire.
struct NetTx {
  Vci vci = 0;
  WireRef wire;
};

// What the network delivers to the destination port: the same encoded
// bytes, untouched unless a corrupt_rate impairment struck in flight.
struct NetRx {
  Vci vci = 0;
  WireRef wire;
};

class AtmNetwork;

class AtmPort {
 public:
  AtmPort(Scheduler* sched, AtmNetwork* net, std::string name, int64_t egress_bps,
          size_t wire_buffers, ReportSink* report_sink, int shard = 0);

  // Box-side channels.  Transmission passes a refcounted handle to encoded
  // bytes drawn from this port's wire pool; the source box's segment buffer
  // is freed as soon as serialization completes ("copy once into memory,
  // once out", section 3.4), and nothing below this line copies payloads.
  Channel<NetTx>& tx() { return tx_; }
  Channel<NetRx>& rx() { return rx_; }

  // The pool of fixed wire buffers this port's transmit path encodes into.
  // Owned by the port (not the box) so handles held by in-flight forwarders
  // stay valid across a box crash.
  WirePool& wire_pool() { return wire_pool_; }

  // The non-interleaving interface gate (the E7 bottleneck).
  BandwidthGate& egress() { return egress_; }

  const std::string& name() const { return name_; }
  // ShardSet shard whose Scheduler runs this port's processes (0 for a
  // legacy single-scheduler network).
  int shard() const { return shard_; }
  uint64_t sent() const { return sent_; }
  uint64_t unrouted() const { return unrouted_; }
  // Link state (AtmNetwork::SetPortUp).  A down port receives nothing:
  // in-flight segments aimed at it are discarded on arrival.
  bool up() const { return up_; }
  // Segments discarded because this port was down when they arrived.
  uint64_t rx_discarded() const { return rx_discarded_; }

 private:
  friend class AtmNetwork;
  Process TxProc();

  Scheduler* sched_;
  AtmNetwork* net_;
  std::string name_;
  // Precomputed name for the per-segment forwarder spawn in TxProc: the
  // spawn happens once per delivered segment, and building "name.fwd" there
  // would put a string concatenation on the data-plane hot path.
  std::string fwd_name_;
  Channel<NetTx> tx_;
  Channel<NetRx> rx_;
  WirePool wire_pool_;
  BandwidthGate egress_;
  int shard_ = 0;
  bool up_ = true;
  uint64_t sent_ = 0;
  uint64_t unrouted_ = 0;
  uint64_t rx_discarded_ = 0;
};

// One virtual circuit: (source port, VCI) -> destination port; the VCI is
// the stream number the destination box allocated for this stream.
struct CircuitStats {
  uint64_t offered = 0;
  uint64_t delivered = 0;
  uint64_t lost = 0;
  // Segments delivered with in-flight bit damage (corrupt_rate).
  uint64_t corrupted = 0;
  StatAccumulator latency;        // network transit per segment (us)
  StatAccumulator inter_arrival;  // spacing at destination (us), for jitter
};

class AtmNetwork : public ShardBarrierTask {
 public:
  AtmNetwork(Scheduler* sched, uint64_t seed = 1);
  // Shard-spanning fabric: ports may be placed on any of `shards`' shards
  // and cross-shard circuits ride the mailboxes.  With shards=1 this is
  // bit-identical to the Scheduler constructor (same rng stream, same
  // dispatch).  The network must be destroyed before the ShardSet.
  AtmNetwork(ShardSet* shards, uint64_t seed = 1);
  ~AtmNetwork() override;

  AtmPort* AddPort(const std::string& name, int64_t egress_bps = 20'000'000,
                   size_t wire_buffers = 256, ReportSink* report_sink = nullptr, int shard = 0);
  NetHop* AddHop(const std::string& name, const HopQuality& quality, int shard = 0);

  // Opens a circuit; `path` lists intermediate hops (may be empty for a
  // direct LAN connection with `direct` quality).  Every hop must live on
  // the source port's shard, and when the destination port lives on another
  // shard the final stage's propagation must cover the ShardSet lookahead —
  // the conservative-sync contract that lets the fabric exit post straight
  // into the destination shard's next window (both checked).
  void OpenCircuit(AtmPort* src, Vci vci, AtmPort* dst, std::vector<NetHop*> path = {},
                   const HopQuality& direct = HopQuality{});
  void CloseCircuit(AtmPort* src, Vci vci);

  // --- Fault hooks ---------------------------------------------------------
  // All runtime impairment goes through these mutators (and from there
  // through src/fault/'s FaultDriver); nothing else may poke circuit or hop
  // parameters mid-run (pandora-lint rule `fault-hooks`).

  // Takes a port's link down or back up.  Going down discards anything
  // already parked for delivery on the port's rx channel and everything
  // that arrives while down (counted in AtmPort::rx_discarded and the
  // circuit's loss stats).  The box-side processes are the box's problem
  // (PandoraBox::Crash kills them); the port object itself survives.
  void SetPortUp(AtmPort* port, bool up);

  // Respawns a port's transmit process after its box restarts (the old one
  // died with the box's process group).
  void RestartPort(AtmPort* port);

  // Per-circuit impairment for circuits with no intermediate hops: replaces
  // the direct-path quality (burst loss, jitter storm, rate change, bit
  // corruption).  Returns false if no such circuit is open, or if the
  // circuit is bridged — a hop path never consults the direct quality, so
  // accepting the write would let a storm silently not happen (impair
  // bridged paths through SetHopQuality instead).
  bool SetCircuitQuality(AtmPort* src, Vci vci, const HopQuality& quality);
  // Snapshot of the current direct-path quality, for restore-after-episode.
  // Null for closed and for bridged circuits, matching SetCircuitQuality.
  const HopQuality* CircuitQuality(AtmPort* src, Vci vci) const;
  // Administrative circuit state: a down circuit loses every segment.
  bool SetCircuitUp(AtmPort* src, Vci vci, bool up);

  // Replaces a shared hop's quality, keeping its bandwidth gate in sync.
  void SetHopQuality(NetHop* hop, const HopQuality& quality);

  const CircuitStats* StatsFor(AtmPort* src, Vci vci) const;
  // Network totals are kept per shard (each slice written only by its own
  // worker) and summed here; call between Run* calls or at a barrier.
  uint64_t total_delivered() const { return SumCounter(total_delivered_); }
  uint64_t total_lost() const { return SumCounter(total_lost_); }
  // Segments delivered carrying in-flight bit damage.
  uint64_t total_corrupted() const { return SumCounter(total_corrupted_); }
  // True encoded bytes pushed through transmission stages (source egress
  // plus every store-and-forward hop traversal).
  uint64_t bytes_on_wire() const { return SumCounter(bytes_on_wire_); }

  // Barrier task: recycles cross-shard transfer records whose consumption
  // the barrier just made visible (coordinator context, workers parked).
  void OnShardBarrier() override;

 private:
  friend class AtmPort;

  struct Circuit {
    AtmPort* dst = nullptr;
    std::vector<NetHop*> path;
    HopQuality direct;
    bool up = true;
    // Incarnation stamp, unique per OpenCircuit: a crash+restart re-opens
    // a call's circuit under the SAME (src, vci) key, and a forwarder that
    // suspended inside the old incarnation must not deliver into the new
    // one (the key-based re-fetch alone would ABA onto it).
    uint64_t generation = 0;
    // Per-stage FIFO clamps (one per hop, or one for a direct path): the
    // exit time of the previous segment of THIS circuit through each stage.
    std::vector<Time> stage_last_exit;
    Time last_rx_time = -1;
    CircuitStats stats;
    // Telemetry track prefix "<dst>.net.vci<N>" (per stream, network hop).
    std::string trace_name;
    TraceSiteId trace_hist = 0;
    TraceSiteId trace_loss = 0;
    TraceSiteId trace_corrupt = 0;
  };

  // Walks the remaining hops of one segment's journey; spawned per segment
  // so transmissions overlap (store and forward).  Keyed by (src, vci), not
  // a Circuit*: the circuit can be closed (box crash, hang-up) while this
  // segment is mid-flight, so the pointer is re-fetched after every
  // suspension — and its generation compared, since the key may have been
  // re-opened for a new call — with the segment counted as lost if the
  // original circuit is gone.  The wire handle is MOVED stage to stage; the
  // encoded bytes are never copied (except copy-on-corrupt below).
  Process ForwardProc(AtmPort* src, Vci vci, WireRef wire);
  Circuit* FindCircuit(AtmPort* src, Vci vci);

  // Applies a corrupt_rate strike: replaces `wire` with a damaged COPY so
  // sibling handles of the same buffer (multi-destination fanout) keep the
  // pristine bytes.  Draws the bit index from `rng`.  Returns false when
  // the wire pool has no scratch buffer — the strike then drops the
  // segment instead (the caller counts it as lost).  `shard` is the source
  // port's shard, which owns the corruption counters being charged.
  bool CorruptInFlight(WireRef& wire, Rng& rng, Circuit* circuit, int shard);

  // One segment crossing a shard boundary: the encoded bytes are copied in
  // on the source shard (WireRef refcounts are shard-local), consumed on the
  // destination shard, and the record recycled — capacity intact — by the
  // coordinator once a barrier has made the consumption visible.
  struct WireTransfer {
    std::vector<uint8_t> bytes;
    Vci vci = 0;
    AtmPort* dst = nullptr;
    bool consumed = false;
  };
  // Per-source-shard transfer queue.  `live` is appended by the source
  // shard's worker during windows and popped by the coordinator at barriers;
  // `free` recycles records the opposite way.  The two sides never run
  // concurrently (barrier-separated), and deque references are stable, so
  // the destination shard's consumption writes race with nothing.
  struct TransferLane {
    std::deque<WireTransfer> live;
    std::vector<WireTransfer> free;
  };

  // Fabric-exit handoff for a cross-shard circuit: source-shard accounting
  // at `exit_at`, then the bytes ride the mailbox to the destination shard.
  void DeliverCrossShard(Circuit* circuit, AtmPort* src, Vci vci, Time exit_at, int64_t seq,
                         size_t bytes, WireRef wire, Time departed);
  // Destination-shard arrival (timer context): re-homes the bytes into the
  // destination port's pool and hands them to the box.
  void ArriveTransfer(WireTransfer* transfer);
  Process DeliverProc(AtmPort* dst, NetRx delivery);

  // Per-shard forwarding rng.  Shard 0 is the legacy stream (bit-identity);
  // the others are independently seeded.
  Rng& RngFor(int shard) { return shard == 0 ? rng_ : extra_rngs_[static_cast<size_t>(shard - 1)]; }
  static uint64_t SumCounter(const std::vector<uint64_t>& v) {
    uint64_t n = 0;
    for (uint64_t x : v) {
      n += x;
    }
    return n;
  }

  Scheduler* sched_;
  Rng rng_;
  ShardSet* shards_ = nullptr;  // null for a legacy single-scheduler network
  std::vector<Rng> extra_rngs_;  // shards 1..N-1
  std::vector<std::unique_ptr<AtmPort>> ports_;
  std::vector<std::unique_ptr<NetHop>> hops_;
  std::map<std::pair<AtmPort*, Vci>, std::unique_ptr<Circuit>> circuits_;
  std::vector<TransferLane> transfers_;  // index = source shard
  uint64_t next_generation_ = 0;
  // Index = shard; single-writer during windows, summed at the control plane.
  std::vector<uint64_t> total_delivered_;
  std::vector<uint64_t> total_lost_;
  std::vector<uint64_t> total_corrupted_;
  std::vector<uint64_t> bytes_on_wire_;
  std::vector<TraceSiteId> trace_wire_bytes_;  // per-shard recorder intern ids
};

}  // namespace pandora

#endif  // PANDORA_SRC_NET_ATM_H_
