// Simulated-time tracing & telemetry subsystem.
//
// The paper's control plane treats observability as first-class: reports are
// "collected from all main processes, and multiplexed together" (sections 1.1,
// 3.8).  TraceRecorder extends that idea to a full event timeline: spans,
// instants, counters and fixed-bucket latency histograms, stamped with the
// *simulated* clock (never wall time, so tracing cannot perturb determinism
// or the E4 CPU calibration) and exported as Chrome/Perfetto trace-event JSON
// that loads directly in ui.perfetto.dev.
//
// Design rules:
//   - Zero overhead when disabled: every PANDORA_TRACE_* macro guards on
//     `rec != nullptr && rec->enabled()` before evaluating anything else, and
//     the whole family compiles to nothing under PANDORA_TRACE_DISABLED.
//   - No allocation on the hot path when enabled: call sites cache an
//     interned TraceSiteId in a caller-owned variable (the `idvar` macro
//     argument); the name expression is evaluated only on the first hit.
//     Event storage is reserved up front by Enable(); when full, events are
//     dropped and counted rather than grown.
//   - Tracks: a site name "tx.audio.mixer" is grouped under process "tx"
//     (the prefix before the first '.'), one thread track per site.  This
//     gives the "one track per board/process" layout the paper's per-board
//     process meshes call for.
//
// Instrumentation outside src/trace/ must go through the macros, never call
// TraceRecorder::Record* directly (enforced by the pandora-lint
// `trace-macros` rule): the macros are where the disabled-path guarantees
// live.
#ifndef PANDORA_SRC_TRACE_TRACE_H_
#define PANDORA_SRC_TRACE_TRACE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/runtime/time.h"

namespace pandora {

// 0 is "not yet interned"; valid ids start at 1.
using TraceSiteId = uint32_t;

// Chrome trace-event phases used by the recorder.
inline constexpr char kTracePhaseBegin = 'B';
inline constexpr char kTracePhaseEnd = 'E';
inline constexpr char kTracePhaseComplete = 'X';
inline constexpr char kTracePhaseInstant = 'i';
inline constexpr char kTracePhaseCounter = 'C';
inline constexpr char kTracePhaseAsyncBegin = 'b';
inline constexpr char kTracePhaseAsyncEnd = 'e';

// Power-of-two latency buckets: bucket i counts values v with
// 2^(i-1) <= v < 2^i (bucket 0 counts v <= 0).  40 buckets cover every
// representable simulated duration we care about (~2^39 us > 6 days).
inline constexpr int kTraceHistogramBuckets = 40;

struct TraceHistogram {
  std::string name;
  std::string unit;
  uint64_t count = 0;
  int64_t min = 0;
  int64_t max = 0;
  double sum = 0.0;
  std::array<uint64_t, kTraceHistogramBuckets> buckets{};
};

// Smallest bucket upper bound covering quantile `q` (clamped to the observed
// max) — a conservative percentile estimate from the power-of-two buckets.
// Benches report gate metrics (e.g. p99 join-to-first-segment latency)
// through this, so regressions show up even when only the histogram is kept.
int64_t TraceHistogramQuantile(const TraceHistogram& h, double q);

class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1u << 20;  // ~40 MB of events

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // The recorder reads simulated time through this pointer; the Scheduler
  // binds its own clock at construction.  Must outlive the recorder.
  void BindClock(const Time* clock) { clock_ = clock; }

  // Reserves event storage and starts recording.  Idempotent; a second call
  // with a larger capacity grows the reservation.
  void Enable(size_t max_events = kDefaultCapacity);
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  size_t event_count() const { return events_.size(); }
  uint64_t dropped_events() const { return dropped_; }

  // --- Interning (cold path; may allocate) ---------------------------------

  // Returns a stable id for `name`, creating the site on first use.  Sites
  // are deduplicated by name, so two call sites sharing a name share a track.
  TraceSiteId InternSite(std::string_view name);
  // As InternSite, but also names the two instant-event argument slots.
  TraceSiteId InternSiteArgs(std::string_view name, std::string_view arg1, std::string_view arg2);
  // Histogram ids live in a separate namespace from event sites.
  TraceSiteId InternHistogram(std::string_view name, std::string_view unit);

  // Fresh id for correlating an async begin/end pair (rendezvous waits).
  uint64_t NextAsyncId() { return ++async_seq_; }

  // --- Recording (hot path; never allocates) -------------------------------
  //
  // Call through the PANDORA_TRACE_* macros, which own the enabled checks
  // and lazy interning; see the lint rule note above.

  void RecordBegin(TraceSiteId site) { Append(kTracePhaseBegin, site, 0, 0); }
  void RecordEnd(TraceSiteId site) { Append(kTracePhaseEnd, site, 0, 0); }
  void RecordComplete(TraceSiteId site, Time start, Duration dur) {
    AppendAt(kTracePhaseComplete, site, start, dur, 0);
  }
  void RecordInstant(TraceSiteId site) { Append(kTracePhaseInstant, site, 0, 0); }
  void RecordInstantArgs(TraceSiteId site, int64_t arg1, int64_t arg2) {
    Append(kTracePhaseInstant, site, arg1, arg2);
  }
  void RecordCounter(TraceSiteId site, int64_t value) { Append(kTracePhaseCounter, site, value, 0); }
  void RecordAsyncBegin(TraceSiteId site, uint64_t id) {
    Append(kTracePhaseAsyncBegin, site, static_cast<int64_t>(id), 0);
  }
  void RecordAsyncEnd(TraceSiteId site, uint64_t id) {
    Append(kTracePhaseAsyncEnd, site, static_cast<int64_t>(id), 0);
  }
  void RecordHistogram(TraceSiteId hist, int64_t value);

  // --- Export --------------------------------------------------------------

  // Chrome trace-event JSON (object form).  Events are stably sorted by
  // timestamp, unbalanced B spans are closed synthetically, and custom
  // sections carry the histograms and drop count.  Deterministic for a
  // deterministic run.
  std::string ExportJson() const;
  // Writes ExportJson() to `path`; false on I/O error.
  bool ExportJsonTo(const std::string& path) const;

  // Copies every event, site and histogram from `other` into this recorder,
  // re-interning names with `prefix` prepended (so "tx.audio" from shard 2
  // becomes "s2:tx.audio" and lands on its own process track) and offsetting
  // async ids past this recorder's to keep rendezvous pairs correlated.
  // Same-name histograms accumulate.  ShardSet merges per-shard buffers
  // through this into one exportable timeline; the merge target needs no
  // clock and never records live.
  void MergeFrom(const TraceRecorder& other, std::string_view prefix);

  const std::vector<TraceHistogram>& histograms() const { return histograms_; }

 private:
  struct Site {
    std::string name;
    std::string arg1;  // instant-event argument names ("" = no args)
    std::string arg2;
    uint32_t pid = 1;
  };
  struct Event {
    Time ts = 0;
    int64_t value = 0;   // X: dur | C: value | b/e: async id | i: arg1
    int64_t value2 = 0;  // i: arg2
    TraceSiteId site = 0;
    char ph = 0;
  };

  Time Now() const { return clock_ != nullptr ? *clock_ : 0; }
  void Append(char ph, TraceSiteId site, int64_t value, int64_t value2) {
    AppendAt(ph, site, Now(), value, value2);
  }
  void AppendAt(char ph, TraceSiteId site, Time ts, int64_t value, int64_t value2) {
    if (!enabled_ || site == 0) {
      return;
    }
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(Event{ts, value, value2, site, ph});
  }
  uint32_t InternPid(std::string_view site_name);

  const Time* clock_ = nullptr;
  bool enabled_ = false;
  size_t capacity_ = 0;
  uint64_t dropped_ = 0;
  uint64_t async_seq_ = 0;

  std::vector<Event> events_;
  std::vector<Site> sites_;  // index = TraceSiteId - 1
  std::map<std::string, TraceSiteId, std::less<>> site_ids_;
  std::vector<std::string> pid_names_;  // index = pid - 1
  std::map<std::string, uint32_t, std::less<>> pid_ids_;
  std::vector<TraceHistogram> histograms_;  // index = TraceSiteId - 1
  std::map<std::string, TraceSiteId, std::less<>> histogram_ids_;
};

// RAII duration span; emitted as a B/E pair on the site's own track, so a
// span may cross co_await suspension points without unbalancing the
// scheduler's per-process run-slice tracks.  Construct via
// PANDORA_TRACE_SPAN, which resolves the recorder to nullptr when disabled.
class TraceScope {
 public:
  TraceScope(TraceRecorder* rec, TraceSiteId site) : rec_(rec), site_(site) {
    if (rec_ != nullptr) {
      rec_->RecordBegin(site_);
    }
  }
  ~TraceScope() {
    if (rec_ != nullptr) {
      rec_->RecordEnd(site_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRecorder* rec_;
  TraceSiteId site_;
};

// --- Guarded macros ---------------------------------------------------------
//
// Common shape: PANDORA_TRACE_X(rec, idvar, name_expr, ...).
//   rec       TraceRecorder* (may be null).
//   idvar     caller-owned TraceSiteId lvalue, zero-initialised; caches the
//             interned site so steady-state recording never touches a map.
//   name_expr evaluated only while interning (first enabled hit), so it may
//             build a std::string without taxing the hot path.
//
// Every macro is an expression-statement usable where a statement is
// expected; none evaluates any argument when tracing is disabled.

#if defined(PANDORA_TRACE_DISABLED)

#define PANDORA_TRACE_ACTIVE_(rec) (false)

#define PANDORA_TRACE_BEGIN(rec, idvar, name_expr) \
  do {                                             \
  } while (false)
#define PANDORA_TRACE_END(rec, idvar) \
  do {                                \
  } while (false)
#define PANDORA_TRACE_SPAN(rec, idvar, name_expr) \
  do {                                            \
  } while (false)
#define PANDORA_TRACE_COMPLETE(rec, idvar, name_expr, start, dur) \
  do {                                                            \
  } while (false)
#define PANDORA_TRACE_INSTANT(rec, idvar, name_expr) \
  do {                                               \
  } while (false)
#define PANDORA_TRACE_INSTANT2(rec, idvar, name_expr, a1name, a1val, a2name, a2val) \
  do {                                                                              \
  } while (false)
#define PANDORA_TRACE_INSTANT_DYN(rec, name_expr, a1val, a2val) \
  do {                                                          \
  } while (false)
#define PANDORA_TRACE_COUNTER(rec, idvar, name_expr, value) \
  do {                                                      \
  } while (false)
#define PANDORA_TRACE_RENDEZVOUS_BEGIN(rec, idvar, name_expr, id_lvalue) \
  do {                                                                   \
  } while (false)
#define PANDORA_TRACE_RENDEZVOUS_END(rec, idvar, id_value) \
  do {                                                     \
  } while (false)
#define PANDORA_TRACE_HISTOGRAM(rec, idvar, name_expr, unit, value) \
  do {                                                              \
  } while (false)

#else  // !PANDORA_TRACE_DISABLED

#define PANDORA_TRACE_ACTIVE_(rec) ((rec) != nullptr && (rec)->enabled())

#define PANDORA_TRACE_BEGIN(rec, idvar, name_expr)          \
  do {                                                      \
    ::pandora::TraceRecorder* _pandora_tr = (rec);          \
    if (_pandora_tr != nullptr && _pandora_tr->enabled()) { \
      if ((idvar) == 0) {                                   \
        (idvar) = _pandora_tr->InternSite((name_expr));     \
      }                                                     \
      _pandora_tr->RecordBegin((idvar));                    \
    }                                                       \
  } while (false)

#define PANDORA_TRACE_END(rec, idvar)                                          \
  do {                                                                         \
    ::pandora::TraceRecorder* _pandora_tr = (rec);                             \
    if (_pandora_tr != nullptr && _pandora_tr->enabled() && (idvar) != 0) {    \
      _pandora_tr->RecordEnd((idvar));                                         \
    }                                                                          \
  } while (false)

// RAII span covering the enclosing scope.  The helper lambda resolves to a
// null recorder when tracing is off, so the TraceScope is inert.
#define PANDORA_TRACE_SPAN(rec, idvar, name_expr)                        \
  ::pandora::TraceScope PANDORA_TRACE_CONCAT_(pandora_trace_scope_,      \
                                              __LINE__)(                 \
      [&]() -> ::pandora::TraceRecorder* {                               \
        ::pandora::TraceRecorder* _pandora_tr = (rec);                   \
        if (_pandora_tr == nullptr || !_pandora_tr->enabled()) {         \
          return nullptr;                                                \
        }                                                                \
        if ((idvar) == 0) {                                              \
          (idvar) = _pandora_tr->InternSite((name_expr));                \
        }                                                                \
        return _pandora_tr;                                              \
      }(),                                                               \
      (idvar))

#define PANDORA_TRACE_COMPLETE(rec, idvar, name_expr, start, dur) \
  do {                                                            \
    ::pandora::TraceRecorder* _pandora_tr = (rec);                \
    if (_pandora_tr != nullptr && _pandora_tr->enabled()) {       \
      if ((idvar) == 0) {                                         \
        (idvar) = _pandora_tr->InternSite((name_expr));           \
      }                                                           \
      _pandora_tr->RecordComplete((idvar), (start), (dur));       \
    }                                                             \
  } while (false)

#define PANDORA_TRACE_INSTANT(rec, idvar, name_expr)        \
  do {                                                      \
    ::pandora::TraceRecorder* _pandora_tr = (rec);          \
    if (_pandora_tr != nullptr && _pandora_tr->enabled()) { \
      if ((idvar) == 0) {                                   \
        (idvar) = _pandora_tr->InternSite((name_expr));     \
      }                                                     \
      _pandora_tr->RecordInstant((idvar));                  \
    }                                                       \
  } while (false)

#define PANDORA_TRACE_INSTANT2(rec, idvar, name_expr, a1name, a1val, a2name, a2val) \
  do {                                                                              \
    ::pandora::TraceRecorder* _pandora_tr = (rec);                                  \
    if (_pandora_tr != nullptr && _pandora_tr->enabled()) {                         \
      if ((idvar) == 0) {                                                           \
        (idvar) = _pandora_tr->InternSiteArgs((name_expr), (a1name), (a2name));     \
      }                                                                             \
      _pandora_tr->RecordInstantArgs((idvar), (a1val), (a2val));                    \
    }                                                                               \
  } while (false)

// Dynamic-name instant for cold paths (e.g. mirroring throttled Reports):
// interns by name on every hit, so do not use on hot paths.
#define PANDORA_TRACE_INSTANT_DYN(rec, name_expr, a1val, a2val)                     \
  do {                                                                              \
    ::pandora::TraceRecorder* _pandora_tr = (rec);                                  \
    if (_pandora_tr != nullptr && _pandora_tr->enabled()) {                         \
      ::pandora::TraceSiteId _pandora_site =                                        \
          _pandora_tr->InternSiteArgs((name_expr), "value", "severity");            \
      _pandora_tr->RecordInstantArgs(_pandora_site, (a1val), (a2val));              \
    }                                                                               \
  } while (false)

#define PANDORA_TRACE_COUNTER(rec, idvar, name_expr, value) \
  do {                                                      \
    ::pandora::TraceRecorder* _pandora_tr = (rec);          \
    if (_pandora_tr != nullptr && _pandora_tr->enabled()) { \
      if ((idvar) == 0) {                                   \
        (idvar) = _pandora_tr->InternSite((name_expr));     \
      }                                                     \
      _pandora_tr->RecordCounter((idvar), (value));         \
    }                                                       \
  } while (false)

// Opens an async span and stores the correlation id into `id_lvalue` (left
// at 0 when tracing is off).  The id must be parked in heap-stable state —
// e.g. a channel's ParkedSender record — never in an awaiter subobject that
// could relocate across suspension.
#define PANDORA_TRACE_RENDEZVOUS_BEGIN(rec, idvar, name_expr, id_lvalue) \
  do {                                                                   \
    ::pandora::TraceRecorder* _pandora_tr = (rec);                       \
    if (_pandora_tr != nullptr && _pandora_tr->enabled()) {              \
      if ((idvar) == 0) {                                                \
        (idvar) = _pandora_tr->InternSite((name_expr));                  \
      }                                                                  \
      (id_lvalue) = _pandora_tr->NextAsyncId();                          \
      _pandora_tr->RecordAsyncBegin((idvar), (id_lvalue));               \
    }                                                                    \
  } while (false)

#define PANDORA_TRACE_RENDEZVOUS_END(rec, idvar, id_value)                  \
  do {                                                                      \
    ::pandora::TraceRecorder* _pandora_tr = (rec);                          \
    if (_pandora_tr != nullptr && _pandora_tr->enabled() && (idvar) != 0 && \
        (id_value) != 0) {                                                  \
      _pandora_tr->RecordAsyncEnd((idvar), (id_value));                     \
    }                                                                       \
  } while (false)

#define PANDORA_TRACE_HISTOGRAM(rec, idvar, name_expr, unit, value)  \
  do {                                                               \
    ::pandora::TraceRecorder* _pandora_tr = (rec);                   \
    if (_pandora_tr != nullptr && _pandora_tr->enabled()) {          \
      if ((idvar) == 0) {                                            \
        (idvar) = _pandora_tr->InternHistogram((name_expr), (unit)); \
      }                                                              \
      _pandora_tr->RecordHistogram((idvar), (value));                \
    }                                                                \
  } while (false)

#endif  // PANDORA_TRACE_DISABLED

#define PANDORA_TRACE_CONCAT_IMPL_(a, b) a##b
#define PANDORA_TRACE_CONCAT_(a, b) PANDORA_TRACE_CONCAT_IMPL_(a, b)

}  // namespace pandora

#endif  // PANDORA_SRC_TRACE_TRACE_H_
