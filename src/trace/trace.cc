#include "src/trace/trace.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <utility>

namespace pandora {
namespace {

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendJsonString(std::string* out, std::string_view s) {
  *out += '"';
  AppendEscaped(out, s);
  *out += '"';
}

// Upper bound of histogram bucket `i` in the recorded unit.
int64_t BucketUpperBound(int i) {
  if (i <= 0) {
    return 0;
  }
  if (i >= 63) {
    return INT64_MAX;
  }
  return (int64_t{1} << i) - 1;
}

}  // namespace

int64_t TraceHistogramQuantile(const TraceHistogram& h, double q) {
  if (h.count == 0) {
    return 0;
  }
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(h.count - 1));
  uint64_t seen = 0;
  for (int i = 0; i < kTraceHistogramBuckets; ++i) {
    seen += h.buckets[i];
    if (seen > rank) {
      return std::min<int64_t>(BucketUpperBound(i), h.max);
    }
  }
  return h.max;
}

void TraceRecorder::Enable(size_t max_events) {
  if (max_events > capacity_) {
    capacity_ = max_events;
    events_.reserve(capacity_);
  }
  enabled_ = true;
}

uint32_t TraceRecorder::InternPid(std::string_view site_name) {
  std::string_view pid_name = site_name.substr(0, site_name.find('.'));
  auto it = pid_ids_.find(pid_name);
  if (it != pid_ids_.end()) {
    return it->second;
  }
  pid_names_.emplace_back(pid_name);
  uint32_t pid = static_cast<uint32_t>(pid_names_.size());
  pid_ids_.emplace(std::string(pid_name), pid);
  return pid;
}

TraceSiteId TraceRecorder::InternSite(std::string_view name) {
  return InternSiteArgs(name, {}, {});
}

TraceSiteId TraceRecorder::InternSiteArgs(std::string_view name, std::string_view arg1,
                                          std::string_view arg2) {
  auto it = site_ids_.find(name);
  if (it != site_ids_.end()) {
    return it->second;
  }
  Site site;
  site.name = std::string(name);
  site.arg1 = std::string(arg1);
  site.arg2 = std::string(arg2);
  site.pid = InternPid(name);
  sites_.push_back(std::move(site));
  TraceSiteId id = static_cast<TraceSiteId>(sites_.size());
  site_ids_.emplace(sites_.back().name, id);
  return id;
}

TraceSiteId TraceRecorder::InternHistogram(std::string_view name, std::string_view unit) {
  auto it = histogram_ids_.find(name);
  if (it != histogram_ids_.end()) {
    return it->second;
  }
  TraceHistogram hist;
  hist.name = std::string(name);
  hist.unit = std::string(unit);
  histograms_.push_back(std::move(hist));
  TraceSiteId id = static_cast<TraceSiteId>(histograms_.size());
  histogram_ids_.emplace(histograms_.back().name, id);
  return id;
}

void TraceRecorder::RecordHistogram(TraceSiteId hist, int64_t value) {
  if (!enabled_ || hist == 0 || hist > histograms_.size()) {
    return;
  }
  TraceHistogram& h = histograms_[hist - 1];
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += static_cast<double>(value);
  int bucket = 0;
  if (value > 0) {
    bucket = std::bit_width(static_cast<uint64_t>(value));
    bucket = std::min(bucket, kTraceHistogramBuckets - 1);
  }
  ++h.buckets[bucket];
}

void TraceRecorder::MergeFrom(const TraceRecorder& other, std::string_view prefix) {
  std::vector<TraceSiteId> site_map(other.sites_.size());
  std::string renamed;
  for (size_t i = 0; i < other.sites_.size(); ++i) {
    renamed.assign(prefix);
    renamed += other.sites_[i].name;
    site_map[i] = InternSiteArgs(renamed, other.sites_[i].arg1, other.sites_[i].arg2);
  }
  const uint64_t async_base = async_seq_;
  async_seq_ += other.async_seq_;
  events_.reserve(events_.size() + other.events_.size());
  for (const Event& ev : other.events_) {
    Event copy = ev;
    copy.site = site_map[ev.site - 1];
    if (ev.ph == kTracePhaseAsyncBegin || ev.ph == kTracePhaseAsyncEnd) {
      copy.value += static_cast<int64_t>(async_base);
    }
    events_.push_back(copy);
  }
  if (capacity_ < events_.size()) {
    capacity_ = events_.size();
  }
  dropped_ += other.dropped_;
  for (const TraceHistogram& h : other.histograms_) {
    renamed.assign(prefix);
    renamed += h.name;
    TraceHistogram& mine = histograms_[InternHistogram(renamed, h.unit) - 1];
    if (h.count != 0) {
      if (mine.count == 0) {
        mine.min = h.min;
        mine.max = h.max;
      } else {
        mine.min = std::min(mine.min, h.min);
        mine.max = std::max(mine.max, h.max);
      }
      mine.count += h.count;
      mine.sum += h.sum;
      for (int i = 0; i < kTraceHistogramBuckets; ++i) {
        mine.buckets[i] += h.buckets[i];
      }
    }
  }
}

std::string TraceRecorder::ExportJson() const {
  // Stable sort by timestamp so every track reads monotonically while
  // same-instant events keep their recording order (determinism).
  std::vector<uint32_t> order(events_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    return events_[a].ts < events_[b].ts;
  });

  // Sanitize duration spans per track: drop an 'E' with no open 'B' (e.g.
  // tracing enabled mid-slice) and close spans still open at export time, so
  // consumers always see balanced, properly nested B/E pairs.
  std::vector<uint32_t> open_depth(sites_.size(), 0);
  std::vector<bool> skip(events_.size(), false);
  Time last_ts = 0;
  for (uint32_t idx : order) {
    const Event& ev = events_[idx];
    last_ts = ev.ts;
    if (ev.ph == kTracePhaseBegin) {
      ++open_depth[ev.site - 1];
    } else if (ev.ph == kTracePhaseEnd) {
      if (open_depth[ev.site - 1] == 0) {
        skip[idx] = true;
      } else {
        --open_depth[ev.site - 1];
      }
    }
  }

  std::string out;
  out.reserve(events_.size() * 96 + 4096);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&out, &first] {
    if (!first) {
      out += ',';
    }
    first = false;
  };

  // Metadata: process names (board prefixes) and one named thread per site.
  for (size_t pid = 1; pid <= pid_names_.size(); ++pid) {
    comma();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"ts\":0,\"args\":{\"name\":";
    AppendJsonString(&out, pid_names_[pid - 1]);
    out += "}}";
  }
  for (size_t tid = 1; tid <= sites_.size(); ++tid) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(sites_[tid - 1].pid);
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"ts\":0,\"args\":{\"name\":";
    AppendJsonString(&out, sites_[tid - 1].name);
    out += "}}";
  }

  auto emit_common = [&out](const Site& site, TraceSiteId site_id, char ph, Time ts) {
    out += "{\"name\":";
    AppendJsonString(&out, site.name);
    out += ",\"ph\":\"";
    out += ph;
    out += "\",\"ts\":";
    out += std::to_string(ts);
    out += ",\"pid\":";
    out += std::to_string(site.pid);
    out += ",\"tid\":";
    out += std::to_string(site_id);
  };

  for (uint32_t idx : order) {
    if (skip[idx]) {
      continue;
    }
    const Event& ev = events_[idx];
    const Site& site = sites_[ev.site - 1];
    comma();
    emit_common(site, ev.site, ev.ph, ev.ts);
    switch (ev.ph) {
      case kTracePhaseComplete:
        out += ",\"dur\":";
        out += std::to_string(ev.value);
        break;
      case kTracePhaseCounter:
        out += ",\"args\":{\"value\":";
        out += std::to_string(ev.value);
        out += '}';
        break;
      case kTracePhaseInstant:
        out += ",\"s\":\"t\"";
        if (!site.arg1.empty()) {
          out += ",\"args\":{";
          AppendJsonString(&out, site.arg1);
          out += ':';
          out += std::to_string(ev.value);
          if (!site.arg2.empty()) {
            out += ',';
            AppendJsonString(&out, site.arg2);
            out += ':';
            out += std::to_string(ev.value2);
          }
          out += '}';
        }
        break;
      case kTracePhaseAsyncBegin:
      case kTracePhaseAsyncEnd:
        out += ",\"cat\":\"rendezvous\",\"id\":";
        out += std::to_string(ev.value);
        break;
      default:
        break;
    }
    out += '}';
  }

  // Close spans left open (processes parked mid-span at export time).
  for (size_t i = 0; i < open_depth.size(); ++i) {
    for (uint32_t d = 0; d < open_depth[i]; ++d) {
      comma();
      emit_common(sites_[i], static_cast<TraceSiteId>(i + 1), kTracePhaseEnd, last_ts);
      out += '}';
    }
  }

  out += "],\"pandoraDroppedEvents\":";
  out += std::to_string(dropped_);
  out += ",\"pandoraHistograms\":[";
  first = true;
  for (const TraceHistogram& h : histograms_) {
    comma();
    out += "{\"name\":";
    AppendJsonString(&out, h.name);
    out += ",\"unit\":";
    AppendJsonString(&out, h.unit);
    out += ",\"count\":";
    out += std::to_string(h.count);
    out += ",\"min\":";
    out += std::to_string(h.count == 0 ? 0 : h.min);
    out += ",\"max\":";
    out += std::to_string(h.count == 0 ? 0 : h.max);
    out += ",\"mean\":";
    out += std::to_string(h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count));
    out += ",\"p50\":";
    out += std::to_string(TraceHistogramQuantile(h, 0.50));
    out += ",\"p99\":";
    out += std::to_string(TraceHistogramQuantile(h, 0.99));
    out += ",\"buckets\":[";
    for (int i = 0; i < kTraceHistogramBuckets; ++i) {
      if (i != 0) {
        out += ',';
      }
      out += std::to_string(h.buckets[i]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

bool TraceRecorder::ExportJsonTo(const std::string& path) const {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    return false;
  }
  file << ExportJson();
  return static_cast<bool>(file.flush());
}

}  // namespace pandora
