#include "src/fault/plan.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/runtime/random.h"

namespace pandora {
namespace {

struct KindName {
  FaultKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::kCircuitDown, "circuit-down"},
    {FaultKind::kBandwidthCollapse, "bandwidth-collapse"},
    {FaultKind::kBurstLoss, "burst-loss"},
    {FaultKind::kJitterStorm, "jitter-storm"},
    {FaultKind::kBoxCrash, "crash"},
    {FaultKind::kClockStep, "clock-step"},
    {FaultKind::kPoolPressure, "pool-pressure"},
    {FaultKind::kWireCorrupt, "wire-corrupt"},
    {FaultKind::kChurn, "churn"},
};

const char* TargetToken(FaultKind kind) {
  switch (TargetOf(kind)) {
    case FaultTarget::kCall:
      return " call=";
    case FaultTarget::kBox:
      return " box=";
    case FaultTarget::kReceiver:
      return " recv=";
  }
  return " box=";
}

// Durations are emitted in plain microseconds so Format -> Parse is an
// identity on the integer; the human-friendly ms/s suffixes are for
// hand-written plans.
bool ParseDuration(std::string_view text, Duration* out) {
  if (text.empty()) {
    return false;
  }
  int64_t scale = 1;
  if (text.size() >= 2 && text.substr(text.size() - 2) == "us") {
    text.remove_suffix(2);
  } else if (text.size() >= 2 && text.substr(text.size() - 2) == "ms") {
    scale = kMillisecond;
    text.remove_suffix(2);
  } else if (text.back() == 's') {
    scale = kSecond;
    text.remove_suffix(1);
  }
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  std::string buf(text);
  double n = std::strtod(buf.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = static_cast<Duration>(n * static_cast<double>(scale) + (n >= 0 ? 0.5 : -0.5));
  return true;
}

std::vector<std::string_view> SplitTokens(std::string_view text) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) == 0) {
      ++i;
    }
    if (i > start) {
      tokens.push_back(text.substr(start, i - start));
    }
  }
  return tokens;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

}  // namespace

void FaultPlan::Normalize() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
}

std::string FormatFaultKind(FaultKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) {
      return entry.name;
    }
  }
  return "unknown";
}

bool ParseFaultKind(std::string_view text, FaultKind* kind) {
  for (const KindName& entry : kKindNames) {
    if (text == entry.name) {
      *kind = entry.kind;
      return true;
    }
  }
  return false;
}

std::string FormatFaultPlan(const FaultPlan& plan) {
  std::string out = "seed=" + std::to_string(plan.seed);
  char buf[64];
  for (const FaultEvent& event : plan.events) {
    out += "; @" + std::to_string(event.at) + "us " + FormatFaultKind(event.kind);
    out += TargetToken(event.kind);
    out += std::to_string(event.target);
    if (event.value != 0.0) {
      std::snprintf(buf, sizeof(buf), " value=%.17g", event.value);
      out += buf;
    }
    if (event.duration != 0) {
      out += " for=" + std::to_string(event.duration) + "us";
    }
  }
  return out;
}

bool ParseFaultPlan(std::string_view text, FaultPlan* plan, std::string* error) {
  FaultPlan parsed;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t semi = text.find(';', pos);
    std::string_view clause =
        text.substr(pos, semi == std::string_view::npos ? std::string_view::npos : semi - pos);
    pos = semi == std::string_view::npos ? text.size() + 1 : semi + 1;
    std::vector<std::string_view> tokens = SplitTokens(clause);
    if (tokens.empty()) {
      continue;
    }
    if (tokens[0].rfind("seed=", 0) == 0) {
      if (tokens.size() != 1) {
        return Fail(error, "seed clause takes no other tokens");
      }
      parsed.seed = std::strtoull(std::string(tokens[0].substr(5)).c_str(), nullptr, 10);
      continue;
    }
    FaultEvent event;
    bool have_at = false;
    bool have_kind = false;
    bool have_target = false;
    for (std::string_view token : tokens) {
      if (token[0] == '@') {
        if (!ParseDuration(token.substr(1), &event.at)) {
          return Fail(error, "bad onset time: " + std::string(token));
        }
        have_at = true;
      } else if (token.rfind("call=", 0) == 0 || token.rfind("box=", 0) == 0 ||
                 token.rfind("recv=", 0) == 0) {
        std::string_view num = token.substr(token.find('=') + 1);
        event.target = static_cast<int>(std::strtol(std::string(num).c_str(), nullptr, 10));
        have_target = true;
      } else if (token.rfind("value=", 0) == 0) {
        event.value = std::strtod(std::string(token.substr(6)).c_str(), nullptr);
      } else if (token.rfind("for=", 0) == 0) {
        if (!ParseDuration(token.substr(4), &event.duration)) {
          return Fail(error, "bad episode length: " + std::string(token));
        }
      } else if (ParseFaultKind(token, &event.kind)) {
        have_kind = true;
      } else {
        return Fail(error, "unrecognized token: " + std::string(token));
      }
    }
    if (!have_at || !have_kind || !have_target) {
      return Fail(error, "event needs @time, a kind and a call=/box=/recv= target: \"" +
                             std::string(clause) + "\"");
    }
    parsed.events.push_back(event);
  }
  parsed.Normalize();
  *plan = std::move(parsed);
  return true;
}

bool FaultPlanFromEnv(FaultPlan* plan, std::string* error) {
  const char* text = std::getenv("PANDORA_FAULT_PLAN");
  if (text == nullptr || *text == '\0') {
    return false;
  }
  if (!ParseFaultPlan(text, plan, error)) {
    return false;
  }
  return true;
}

FaultPlan RandomFaultPlan(uint64_t seed, const RandomPlanOptions& options) {
  Rng rng(seed);
  FaultPlan plan;
  plan.seed = seed;

  auto allowed = [&](int target, const std::vector<int>& excluded) {
    return std::find(excluded.begin(), excluded.end(), target) == excluded.end();
  };
  std::vector<int> calls;
  for (int i = 0; i < options.call_count; ++i) {
    if (allowed(i, options.protected_calls)) {
      calls.push_back(i);
    }
  }
  std::vector<int> boxes;
  for (int i = 0; i < options.box_count; ++i) {
    if (allowed(i, options.protected_boxes)) {
      boxes.push_back(i);
    }
  }
  std::vector<int> receivers;
  for (int i = 0; i < options.receiver_count; ++i) {
    if (allowed(i, options.protected_receivers)) {
      receivers.push_back(i);
    }
  }

  std::vector<FaultKind> kinds;
  if (!calls.empty()) {
    kinds.insert(kinds.end(), {FaultKind::kCircuitDown, FaultKind::kBandwidthCollapse,
                               FaultKind::kBurstLoss, FaultKind::kJitterStorm});
    if (options.allow_wire_corrupt) {
      kinds.push_back(FaultKind::kWireCorrupt);
    }
  }
  if (!boxes.empty()) {
    if (options.allow_crash) {
      kinds.push_back(FaultKind::kBoxCrash);
    }
    if (options.allow_clock_step) {
      kinds.push_back(FaultKind::kClockStep);
    }
    if (options.allow_pool_pressure) {
      kinds.push_back(FaultKind::kPoolPressure);
    }
  }
  if (!receivers.empty() && options.allow_churn) {
    kinds.push_back(FaultKind::kChurn);
  }
  if (kinds.empty()) {
    return plan;
  }

  const int count = static_cast<int>(
      rng.UniformInt(options.min_events, std::max(options.min_events, options.max_events)));
  for (int i = 0; i < count; ++i) {
    FaultEvent event;
    event.at = static_cast<Time>(
        rng.UniformInt(options.start, std::max(options.start, options.horizon - 1)));
    event.kind = kinds[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(kinds.size()) - 1))];
    event.duration =
        rng.UniformInt(options.min_episode, std::max(options.min_episode, options.max_episode));
    if (TargetOf(event.kind) == FaultTarget::kCall) {
      event.target = calls[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(calls.size()) - 1))];
    } else if (TargetOf(event.kind) == FaultTarget::kReceiver) {
      event.target =
          receivers[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(receivers.size()) - 1))];
    } else {
      event.target = boxes[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(boxes.size()) - 1))];
    }
    switch (event.kind) {
      case FaultKind::kBandwidthCollapse:
        // Collapse to somewhere between 64 kbit/s and 2 Mbit/s: enough to
        // hurt, not enough to look like a dead circuit.
        event.value = static_cast<double>(rng.UniformInt(64'000, 2'000'000));
        break;
      case FaultKind::kBurstLoss:
        event.value = rng.Uniform(0.05, 0.6);
        break;
      case FaultKind::kWireCorrupt:
        event.value = rng.Uniform(0.05, 0.5);
        break;
      case FaultKind::kJitterStorm:
        event.value = static_cast<double>(rng.UniformInt(2'000, 40'000));  // us
        break;
      case FaultKind::kClockStep:
        event.value = rng.Uniform(-5e-5, 5e-5);
        break;
      case FaultKind::kPoolPressure:
        event.value = static_cast<double>(rng.UniformInt(8, 64));
        break;
      case FaultKind::kCircuitDown:
      case FaultKind::kBoxCrash:
      case FaultKind::kChurn:
        break;
    }
    plan.events.push_back(event);
  }
  plan.Normalize();
  return plan;
}

FaultPlan RandomChurnPlan(uint64_t seed, const ChurnStormOptions& options) {
  Rng rng(seed);
  FaultPlan plan;
  plan.seed = seed;

  std::vector<int> receivers;
  for (int i = 0; i < options.receiver_count; ++i) {
    if (std::find(options.protected_receivers.begin(), options.protected_receivers.end(), i) ==
        options.protected_receivers.end()) {
      receivers.push_back(i);
    }
  }
  if (receivers.empty()) {
    return plan;
  }

  const int count = static_cast<int>(
      rng.UniformInt(options.min_events, std::max(options.min_events, options.max_events)));
  for (int i = 0; i < count; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kChurn;
    event.at = static_cast<Time>(
        rng.UniformInt(options.start, std::max(options.start, options.horizon - 1)));
    event.target =
        receivers[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(receivers.size()) - 1))];
    event.duration =
        rng.UniformInt(options.min_away, std::max(options.min_away, options.max_away));
    if (rng.Bernoulli(options.permanent_fraction)) {
      event.duration = 0;  // leaves for good
    }
    plan.events.push_back(event);
  }
  plan.Normalize();
  return plan;
}

}  // namespace pandora
