// FaultDriver: applies a FaultPlan from inside the scheduler.
//
// The driver is one more cooperative process on the simulated timeline — it
// waits (in simulated time) for each event's onset, applies it through the
// sanctioned mutators (AtmNetwork's fault hooks, Simulation's
// CrashBox/RestartBox, PandoraBox::SetAudioClockDrift, BufferPool's
// pressure injection) and, for episodic faults, snapshots the prior state
// and schedules its own restore.  It draws no randomness: given the same
// plan against the same topology, every apply and restore lands on the same
// microsecond, so chaos runs replay bit-identically.
//
// Events whose target no longer makes sense when their onset arrives — the
// call was hung up, its circuit is already closed, the box is already down
// — are counted as skipped, not errors: a random plan is allowed to race
// the faults it injected earlier (a crash closes the circuits a later
// burst-loss episode would have impaired).
#ifndef PANDORA_SRC_FAULT_DRIVER_H_
#define PANDORA_SRC_FAULT_DRIVER_H_

#include <string>
#include <vector>

#include "src/core/simulation.h"
#include "src/fault/plan.h"
#include "src/net/atm.h"
#include "src/runtime/scheduler.h"

namespace pandora {

struct FaultDriverOptions {
  // Deliberately NOT under any box's "<name>." prefix, so a box crash's
  // process-group kill can never take the fault driver with it.
  std::string name = "fault.driver";
};

class FaultDriver {
 public:
  FaultDriver(Simulation* sim, FaultPlan plan, FaultDriverOptions options = {});

  // Spawns the driver process.  Call after Simulation::Start() and after
  // the calls the plan targets have been plumbed (targets are call/box
  // indices into the Simulation's registries).
  void Start();

  const FaultPlan& plan() const { return plan_; }
  size_t applied() const { return applied_; }
  size_t skipped() const { return skipped_; }
  size_t restored() const { return restored_; }
  // True once every event fired and every episodic restore has run: from
  // here on the environment is healthy and recovery clocks may be started.
  bool quiescent() const { return quiescent_; }
  // Simulated time the driver went quiescent (-1 while still active).
  Time quiescent_at() const { return quiescent_at_; }

 private:
  // One scheduled undo of an episodic fault, with the state it restores.
  struct Restore {
    Time at = 0;
    uint64_t order = 0;  // tie-break: restores replay in schedule order
    FaultKind kind = FaultKind::kCircuitDown;
    int target = 0;
    HopQuality quality;     // circuit episodes
    double prev_value = 0;  // clock steps
  };

  Process Run();
  void Apply(const FaultEvent& event);
  void ApplyRestore(const Restore& restore);
  void PushRestore(Restore restore);
  Restore PopRestore();
  void TraceFault(const std::string& what, int target, int64_t value);

  Simulation* sim_;
  FaultPlan plan_;
  FaultDriverOptions options_;
  std::vector<Restore> restores_;  // min-heap on (at, order)
  uint64_t next_restore_order_ = 0;
  size_t applied_ = 0;
  size_t skipped_ = 0;
  size_t restored_ = 0;
  bool quiescent_ = false;
  Time quiescent_at_ = -1;
  bool started_ = false;
};

}  // namespace pandora

#endif  // PANDORA_SRC_FAULT_DRIVER_H_
