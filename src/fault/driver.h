// FaultDriver: applies a FaultPlan from inside the scheduler.
//
// The driver is one more cooperative process on the simulated timeline — it
// waits (in simulated time) for each event's onset, applies it through the
// sanctioned mutators (AtmNetwork's fault hooks, Simulation's
// CrashBox/RestartBox, PandoraBox::SetAudioClockDrift, BufferPool's
// pressure injection) and, for episodic faults, snapshots the prior state
// and schedules its own restore.  It draws no randomness: given the same
// plan against the same topology, every apply and restore lands on the same
// microsecond, so chaos runs replay bit-identically.
//
// In a shard-spanning Simulation the driver cannot live as a process on any
// one shard: a crash kills processes and closes circuits on whatever shards
// the victim's calls touch.  There it runs each step as a
// ShardSet::PostGlobal stop-the-world callback on the coordinator — every
// worker parked at the event's exact microsecond — which keeps the same
// apply/restore ordering and the same bit-exact replay guarantee,
// independent of the worker-thread count.
//
// Events whose target no longer makes sense when their onset arrives — the
// call was hung up, its circuit is already closed, the box is already down
// — are counted as skipped, not errors: a random plan is allowed to race
// the faults it injected earlier (a crash closes the circuits a later
// burst-loss episode would have impaired).
//
// Random plans freely overlap episodes on one target, so episodes of one
// kind share bookkeeping: the pre-episode state is snapshotted when the
// FIRST overlapping episode begins and put back when the LAST one ends.  A
// later onset must never snapshot the already-impaired state — that would
// leave the impairment in place after every restore had run, with
// quiescent() claiming a healthy environment.  An event with no episode
// length (duration 0) makes its impairment permanent for the run: no
// restore of the same kind may undo it.
#ifndef PANDORA_SRC_FAULT_DRIVER_H_
#define PANDORA_SRC_FAULT_DRIVER_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/core/simulation.h"
#include "src/fault/plan.h"
#include "src/net/atm.h"
#include "src/runtime/scheduler.h"

namespace pandora {

struct FaultDriverOptions {
  // Deliberately NOT under any box's "<name>." prefix, so a box crash's
  // process-group kill can never take the fault driver with it.
  std::string name = "fault.driver";
};

class FaultDriver {
 public:
  FaultDriver(Simulation* sim, FaultPlan plan, FaultDriverOptions options = {});

  // Spawns the driver process.  Call after Simulation::Start() and after
  // the calls the plan targets have been plumbed (targets are call/box
  // indices into the Simulation's registries).
  void Start();

  const FaultPlan& plan() const { return plan_; }
  size_t applied() const { return applied_; }
  size_t skipped() const { return skipped_; }
  size_t restored() const { return restored_; }
  // True once every event fired and every episodic restore has run: from
  // here on the environment is healthy and recovery clocks may be started.
  bool quiescent() const { return quiescent_; }
  // Simulated time the driver went quiescent (-1 while still active).
  Time quiescent_at() const { return quiescent_at_; }

 private:
  // One scheduled undo of an episodic fault.  The state it restores lives
  // in the shared EpisodeState, not here: with overlapping episodes only
  // the last restore of a kind may put the pre-episode snapshot back.
  struct Restore {
    Time at = 0;
    uint64_t order = 0;  // tie-break: restores replay in schedule order
    FaultKind kind = FaultKind::kCircuitDown;
    int target = 0;
  };

  // Bookkeeping shared by every episode of one fault kind on one target.
  struct EpisodeState {
    int active = 0;          // episodes currently open (restore pending)
    bool permanent = false;  // a duration-0 event: the impairment stays
    HopQuality base;         // quality kinds: state before the first episode
    double base_value = 0;   // clock steps: drift before the first episode
  };

  Process Run();
  // Stop-the-world path (shard-spanning worlds): each step applies every
  // restore and onset due at the coordinator's current instant, then arms
  // the next PostGlobal for the next due time.
  void ArmNextGlobal();
  void StepGlobal();
  void Apply(const FaultEvent& event);
  void ApplyRestore(const Restore& restore);
  // Opens one episode of `event`'s kind on its target: a timed event heaps
  // its restore; a duration-0 event marks the impairment permanent.
  void BeginEpisode(const FaultEvent& event, EpisodeState& episode);
  void PushRestore(Restore restore);
  Restore PopRestore();
  void TraceFault(const std::string& what, int target, int64_t value);

  Simulation* sim_;
  FaultPlan plan_;
  FaultDriverOptions options_;
  std::vector<Restore> restores_;  // min-heap on (at, order)
  std::map<std::pair<FaultKind, int>, EpisodeState> episodes_;
  uint64_t next_restore_order_ = 0;
  size_t next_event_ = 0;  // cursor into plan_.events (stop-the-world path)
  size_t applied_ = 0;
  size_t skipped_ = 0;
  size_t restored_ = 0;
  bool quiescent_ = false;
  Time quiescent_at_ = -1;
  bool started_ = false;
};

}  // namespace pandora

#endif  // PANDORA_SRC_FAULT_DRIVER_H_
