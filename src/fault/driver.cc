#include "src/fault/driver.h"

#include <algorithm>

#include "src/runtime/check.h"
#include "src/trace/trace.h"

namespace pandora {

FaultDriver::FaultDriver(Simulation* sim, FaultPlan plan, FaultDriverOptions options)
    : sim_(sim), plan_(std::move(plan)), options_(std::move(options)) {
  plan_.Normalize();
}

void FaultDriver::Start() {
  PANDORA_CHECK(!started_);
  started_ = true;
  if (sim_->shard_set().shard_count() > 1) {
    // Spanning world: every step runs stop-the-world on the coordinator
    // (see the header).  Nothing is due yet, so this only arms the first
    // global event — or declares an empty plan quiescent immediately.
    ArmNextGlobal();
    return;
  }
  // High priority: an onset scheduled for time T is applied before ordinary
  // traffic processing at T, so the fault's first victim is deterministic.
  sim_->scheduler().Spawn(Run(), options_.name, Priority::kHigh);
}

void FaultDriver::ArmNextGlobal() {
  Time next = kNever;
  if (next_event_ < plan_.events.size()) {
    next = plan_.events[next_event_].at;
  }
  if (!restores_.empty()) {
    next = std::min(next, restores_.front().at);
  }
  if (next == kNever) {
    quiescent_ = true;
    quiescent_at_ = sim_->now();
    TraceFault("quiescent", 0, static_cast<int64_t>(applied_));
    return;
  }
  FaultDriver* self = this;
  sim_->shard_set().PostGlobal(next, TimerCallback([self] { self->StepGlobal(); }));
}

void FaultDriver::StepGlobal() {
  // Same intra-instant order as Run(): restores before onsets, so a plan
  // may end one episode and begin another on the same microsecond and see
  // the healthy state in between.
  const Time now = sim_->now();
  while (!restores_.empty() && restores_.front().at <= now) {
    ApplyRestore(PopRestore());
  }
  while (next_event_ < plan_.events.size() && plan_.events[next_event_].at <= now) {
    Apply(plan_.events[next_event_]);
    ++next_event_;
  }
  ArmNextGlobal();
}

void FaultDriver::BeginEpisode(const FaultEvent& event, EpisodeState& episode) {
  if (event.duration <= 0) {
    episode.permanent = true;
    return;
  }
  ++episode.active;
  Restore restore;
  restore.at = event.at + event.duration;
  restore.kind = event.kind;
  restore.target = event.target;
  PushRestore(std::move(restore));
}

void FaultDriver::PushRestore(Restore restore) {
  restore.order = next_restore_order_++;
  restores_.push_back(std::move(restore));
  std::push_heap(restores_.begin(), restores_.end(), [](const Restore& a, const Restore& b) {
    return a.at != b.at ? a.at > b.at : a.order > b.order;
  });
}

FaultDriver::Restore FaultDriver::PopRestore() {
  std::pop_heap(restores_.begin(), restores_.end(), [](const Restore& a, const Restore& b) {
    return a.at != b.at ? a.at > b.at : a.order > b.order;
  });
  Restore restore = std::move(restores_.back());
  restores_.pop_back();
  return restore;
}

void FaultDriver::TraceFault(const std::string& what, int target, int64_t value) {
  // Cold path (a handful of events per run): the dynamic-name instant keeps
  // one trace track per fault kind without pre-interned sites.
  PANDORA_TRACE_INSTANT_DYN(sim_->scheduler().trace(), "fault." + what,
                            static_cast<int64_t>(target), value);
}

Process FaultDriver::Run() {
  Scheduler& sched = sim_->scheduler();
  size_t next_event = 0;
  while (next_event < plan_.events.size() || !restores_.empty()) {
    Time next = kNever;
    if (next_event < plan_.events.size()) {
      next = plan_.events[next_event].at;
    }
    if (!restores_.empty()) {
      next = std::min(next, restores_.front().at);
    }
    if (next > sched.now()) {
      co_await sched.WaitUntil(next);
    }
    // Restores fire before onsets at the same instant, so a plan may end
    // one episode and begin another on the same microsecond and see the
    // healthy state in between.
    while (!restores_.empty() && restores_.front().at <= sched.now()) {
      ApplyRestore(PopRestore());
    }
    while (next_event < plan_.events.size() && plan_.events[next_event].at <= sched.now()) {
      Apply(plan_.events[next_event]);
      ++next_event;
    }
  }
  quiescent_ = true;
  quiescent_at_ = sched.now();
  TraceFault("quiescent", 0, static_cast<int64_t>(applied_));
}

void FaultDriver::Apply(const FaultEvent& event) {
  AtmNetwork& net = sim_->network();
  const std::string kind_name = FormatFaultKind(event.kind);

  if (TargetOf(event.kind) == FaultTarget::kReceiver) {
    // Receiver-targeted kinds (churn) belong to the overlay's churn driver;
    // a Simulation has no receiver registry to apply them to.  A mixed plan
    // replayed here still applies its call/box events at the same instants.
    ++skipped_;
    TraceFault(kind_name + ".skip", event.target, 0);
    return;
  }

  if (TargetOf(event.kind) == FaultTarget::kCall) {
    if (event.target < 0 || static_cast<size_t>(event.target) >= sim_->calls().size()) {
      ++skipped_;
      TraceFault(kind_name + ".skip", event.target, 0);
      return;
    }
    const Simulation::CallRecord& call = sim_->calls()[static_cast<size_t>(event.target)];
    if (!call.active || call.suspended || call.src->crashed()) {
      // The circuit this fault would impair is gone (hung up, or torn down
      // by an earlier crash in the same plan).
      ++skipped_;
      TraceFault(kind_name + ".skip", event.target, 0);
      return;
    }
    AtmPort* port = call.src->port();
    const Vci vci = call.at_dst;
    switch (event.kind) {
      case FaultKind::kCircuitDown: {
        if (!net.SetCircuitUp(port, vci, false)) {
          ++skipped_;
          TraceFault(kind_name + ".skip", event.target, 0);
          return;
        }
        BeginEpisode(event, episodes_[{event.kind, event.target}]);
        break;
      }
      case FaultKind::kBandwidthCollapse:
      case FaultKind::kBurstLoss:
      case FaultKind::kJitterStorm:
      case FaultKind::kWireCorrupt: {
        // Null when the circuit is closed — or bridged, where the direct
        // quality is never consulted and the storm would be a silent no-op.
        const HopQuality* current = net.CircuitQuality(port, vci);
        if (current == nullptr) {
          ++skipped_;
          TraceFault(kind_name + ".skip", event.target, 0);
          return;
        }
        EpisodeState& episode = episodes_[{event.kind, event.target}];
        if (episode.active == 0) {
          // First episode of this kind on this target: this (and only
          // this) snapshot is what the last overlapping restore puts back.
          episode.base = *current;
        }
        HopQuality impaired = *current;
        if (event.kind == FaultKind::kBandwidthCollapse) {
          impaired.bits_per_second = std::max<int64_t>(1, static_cast<int64_t>(event.value));
        } else if (event.kind == FaultKind::kBurstLoss) {
          impaired.loss_rate = std::clamp(event.value, 0.0, 1.0);
        } else if (event.kind == FaultKind::kJitterStorm) {
          impaired.jitter_max = std::max<Duration>(0, static_cast<Duration>(event.value));
        } else {
          impaired.corrupt_rate = std::clamp(event.value, 0.0, 1.0);
        }
        net.SetCircuitQuality(port, vci, impaired);
        BeginEpisode(event, episode);
        break;
      }
      default:
        break;
    }
    ++applied_;
    TraceFault(kind_name, event.target, static_cast<int64_t>(event.value));
    return;
  }

  // Box-targeted faults.
  if (event.target < 0 || static_cast<size_t>(event.target) >= sim_->box_count()) {
    ++skipped_;
    TraceFault(kind_name + ".skip", event.target, 0);
    return;
  }
  PandoraBox& box = sim_->box(static_cast<size_t>(event.target));
  switch (event.kind) {
    case FaultKind::kBoxCrash: {
      if (box.crashed()) {
        ++skipped_;
        TraceFault(kind_name + ".skip", event.target, 0);
        return;
      }
      sim_->CrashBox(box);
      BeginEpisode(event, episodes_[{event.kind, event.target}]);
      break;
    }
    case FaultKind::kClockStep: {
      EpisodeState& episode = episodes_[{event.kind, event.target}];
      if (episode.active == 0) {
        episode.base_value = box.audio_clock_drift();
      }
      box.SetAudioClockDrift(event.value);
      BeginEpisode(event, episode);
      break;
    }
    case FaultKind::kPoolPressure: {
      if (box.crashed()) {
        ++skipped_;
        TraceFault(kind_name + ".skip", event.target, 0);
        return;
      }
      box.pool().InjectPressure(static_cast<size_t>(std::max(0.0, event.value)));
      BeginEpisode(event, episodes_[{event.kind, event.target}]);
      break;
    }
    default:
      break;
  }
  ++applied_;
  TraceFault(kind_name, event.target, static_cast<int64_t>(event.value));
}

void FaultDriver::ApplyRestore(const Restore& restore) {
  AtmNetwork& net = sim_->network();
  const std::string kind_name = FormatFaultKind(restore.kind);
  EpisodeState& episode = episodes_[{restore.kind, restore.target}];
  if (episode.active > 0) {
    --episode.active;
  }
  ++restored_;
  if (episode.active > 0 || episode.permanent) {
    // A sibling episode of the same kind still covers this target (or a
    // duration-0 event made the impairment permanent): the state stays
    // impaired until the LAST restore puts the pre-episode snapshot back.
    TraceFault(kind_name + ".restore", restore.target, static_cast<int64_t>(episode.active));
    return;
  }
  switch (restore.kind) {
    case FaultKind::kCircuitDown:
    case FaultKind::kBandwidthCollapse:
    case FaultKind::kBurstLoss:
    case FaultKind::kJitterStorm:
    case FaultKind::kWireCorrupt: {
      const Simulation::CallRecord& call = sim_->calls()[static_cast<size_t>(restore.target)];
      if (!call.active || call.suspended || call.src->crashed()) {
        break;  // a crash tore the circuit down; restart re-plumbs it healthy
      }
      if (restore.kind == FaultKind::kCircuitDown) {
        net.SetCircuitUp(call.src->port(), call.at_dst, true);
        break;
      }
      const HopQuality* current = net.CircuitQuality(call.src->port(), call.at_dst);
      if (current == nullptr) {
        break;
      }
      // Put back only this kind's own field: episodes of the OTHER quality
      // kinds may still be holding theirs on the same circuit.
      HopQuality restored = *current;
      if (restore.kind == FaultKind::kBandwidthCollapse) {
        restored.bits_per_second = episode.base.bits_per_second;
      } else if (restore.kind == FaultKind::kBurstLoss) {
        restored.loss_rate = episode.base.loss_rate;
      } else if (restore.kind == FaultKind::kJitterStorm) {
        restored.jitter_max = episode.base.jitter_max;
      } else {
        restored.corrupt_rate = episode.base.corrupt_rate;
      }
      net.SetCircuitQuality(call.src->port(), call.at_dst, restored);
      break;
    }
    case FaultKind::kBoxCrash: {
      PandoraBox& box = sim_->box(static_cast<size_t>(restore.target));
      if (box.crashed()) {
        sim_->RestartBox(box);
      }
      break;
    }
    case FaultKind::kClockStep: {
      sim_->box(static_cast<size_t>(restore.target)).SetAudioClockDrift(episode.base_value);
      break;
    }
    case FaultKind::kPoolPressure: {
      PandoraBox& box = sim_->box(static_cast<size_t>(restore.target));
      if (!box.crashed()) {
        // After a crash+restart the rebuilt pool holds no pressure and this
        // release is a harmless no-op.
        box.pool().ReleasePressure();
      }
      break;
    }
    case FaultKind::kChurn:
      // Never reached: Apply skips receiver-targeted events before any
      // episode (and hence any restore) can be opened.
      break;
  }
  TraceFault(kind_name + ".restore", restore.target, 0);
}

}  // namespace pandora
