// Fault plans: deterministic, simulated-time schedules of impairment.
//
// The paper's machinery exists to survive a hostile environment — congested
// bridges, lossy trunks, boxes that power-cycle mid-call — but the
// reproduction's experiments so far only dialled those conditions in by
// hand.  A FaultPlan makes the hostile environment itself a first-class,
// replayable artifact: a seeded list of timed FaultEvents (circuit down,
// bandwidth collapse, burst-loss episode, jitter storm, box crash and
// restart, clock step, buffer-pool pressure) that a FaultDriver process
// applies from inside the scheduler.  Every chaos run is exactly
// reproducible from (plan, seed): the driver consumes no randomness at
// apply time, and the plan itself round-trips through a text format so a
// failing run's schedule can be attached to a bug report and replayed with
// PANDORA_FAULT_PLAN=<text>.
#ifndef PANDORA_SRC_FAULT_PLAN_H_
#define PANDORA_SRC_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/runtime/time.h"

namespace pandora {

enum class FaultKind {
  kCircuitDown,         // call's circuit administratively down for `duration`
  kBandwidthCollapse,   // call's direct path collapses to `value` bits/s
  kBurstLoss,           // call's direct path loses `value` fraction of segments
  kJitterStorm,         // call's direct path jitters up to `value` microseconds
  kBoxCrash,            // box power-fails; restarts after `duration` (0: never)
  kClockStep,           // box's audio quartz steps to drift `value`
  kPoolPressure,        // `value` buffers of the box's pool seized
  kWireCorrupt,         // call's direct path flips bits in `value` of segments
  kChurn,               // receiver leaves at onset, rejoins after `duration`
                        // (0: gone for good) — consumed by the overlay's
                        // churn driver (src/overlay/churn.h)
};

// Which kind of entity an event's `target` indexes.  Receivers are overlay
// distribution-tree members (src/overlay/), indexed by the topology
// generator's receiver ids; the Simulation-level FaultDriver has no
// receiver registry and counts receiver-targeted events as skipped.
enum class FaultTarget { kCall, kBox, kReceiver };

inline FaultTarget TargetOf(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCircuitDown:
    case FaultKind::kBandwidthCollapse:
    case FaultKind::kBurstLoss:
    case FaultKind::kJitterStorm:
    case FaultKind::kWireCorrupt:
      return FaultTarget::kCall;
    case FaultKind::kBoxCrash:
    case FaultKind::kClockStep:
    case FaultKind::kPoolPressure:
      return FaultTarget::kBox;
    case FaultKind::kChurn:
      return FaultTarget::kReceiver;
  }
  return FaultTarget::kBox;
}

struct FaultEvent {
  Time at = 0;          // simulated time of onset
  FaultKind kind = FaultKind::kCircuitDown;
  int target = 0;       // call index (Simulation::calls()) or box index
  double value = 0.0;   // kind-specific magnitude (bps, loss rate, us, drift, buffers)
  Duration duration = 0;  // episode length; 0 = permanent (or never-restart)
};

struct FaultPlan {
  uint64_t seed = 0;  // provenance only; the driver never draws from it
  std::vector<FaultEvent> events;

  // Stable-sorts events by onset time, preserving authored order at ties so
  // replay order is exactly the plan order.
  void Normalize();
};

// Options for RandomFaultPlan.  Target counts come from the caller (who
// knows the topology); constrained targeting keeps property-test invariants
// meaningful — e.g. a P5 "good copy loses nothing" check must exclude the
// good copy's call from impairment.
struct RandomPlanOptions {
  Time start = Seconds(1);      // no faults before traffic has plateaued
  Time horizon = Seconds(8);    // onsets drawn in [start, horizon)
  int min_events = 3;
  int max_events = 8;
  int call_count = 0;           // calls eligible for circuit faults
  int box_count = 0;            // boxes eligible for crash/clock/pressure
  std::vector<int> protected_calls;  // never impaired (P5 good copies)
  std::vector<int> protected_boxes;  // never crashed/stepped/pressured
  bool allow_crash = true;
  bool allow_clock_step = true;
  bool allow_pool_pressure = true;
  // Corruption storms (bit flips the destination decoder must reject).
  bool allow_wire_corrupt = true;
  // Overlay receiver churn (join/leave storms).  Zero receivers — the
  // default, and what every pre-overlay caller passes — keeps churn events
  // out of the kind pool, so existing seeds draw exactly the plans they
  // always drew.
  int receiver_count = 0;
  std::vector<int> protected_receivers;  // never churned (pinned observers)
  bool allow_churn = true;
  Duration min_episode = Millis(100);
  Duration max_episode = Millis(800);
};

// Draws a plan from `seed`.  Same (seed, options) -> same plan, always.
FaultPlan RandomFaultPlan(uint64_t seed, const RandomPlanOptions& options);

// Options for RandomChurnPlan: a join/leave storm against an overlay
// receiver population.  Unlike RandomPlanOptions' one-kind-at-a-time draws,
// a churn storm is dense by design — tens to hundreds of receivers drop out
// inside the window and (usually) rejoin, which is what makes join-to-first-
// segment latency a distribution worth measuring rather than an anecdote.
struct ChurnStormOptions {
  Time start = Seconds(1);       // first departure no earlier than this
  Time horizon = Seconds(3);     // onsets drawn in [start, horizon)
  int receiver_count = 0;        // receivers eligible for churn
  std::vector<int> protected_receivers;  // pinned observers, never churned
  int min_events = 32;
  int max_events = 128;
  Duration min_away = Millis(50);   // time off the trees before rejoining
  Duration max_away = Millis(600);
  double permanent_fraction = 0.0;  // probability a departure never rejoins
};

// Draws a pure-churn plan from `seed`.  Same (seed, options) -> same storm.
// The same receiver may be struck more than once; the churn driver treats a
// departure of an already-absent receiver as skipped, exactly like the
// FaultDriver treats faults against closed circuits.
FaultPlan RandomChurnPlan(uint64_t seed, const ChurnStormOptions& options);

// --- Text format -------------------------------------------------------------
//
//   seed=42; @1500ms circuit-down call=0 for=300ms; @2s burst-loss call=1
//   value=0.25 for=500ms; @3s crash box=2 for=1s; @4s clock-step box=0
//   value=2e-05
//
// Events are ';'-separated; within an event, whitespace-separated tokens:
// `@<duration>` (onset), a kind name, then `call=`/`box=`/`recv=` (target),
// `value=`, `for=` (episode length).  Durations take us/ms/s suffixes; a
// bare number is microseconds.  Format output round-trips through Parse
// bit-exactly (times in us, values via %.17g).  Churn events target
// receivers: `@2s churn recv=117 for=400ms` takes overlay receiver 117 out
// of its distribution trees at 2s and rejoins it 400ms later.

std::string FormatFaultKind(FaultKind kind);
bool ParseFaultKind(std::string_view text, FaultKind* kind);

std::string FormatFaultPlan(const FaultPlan& plan);
bool ParseFaultPlan(std::string_view text, FaultPlan* plan, std::string* error = nullptr);

// Parses $PANDORA_FAULT_PLAN if set; false (untouched plan) when unset.
// A set-but-malformed value is reported through `error` and also false.
bool FaultPlanFromEnv(FaultPlan* plan, std::string* error = nullptr);

}  // namespace pandora

#endif  // PANDORA_SRC_FAULT_PLAN_H_
