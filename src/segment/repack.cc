#include "src/segment/repack.h"

#include "src/runtime/check.h"

namespace pandora {
namespace {

// Source time of the byte at `offset` within a run of contiguous samples
// starting at `start`.
Time TimeAtByte(Time start, size_t offset) {
  return start + static_cast<Time>(offset) * kAudioSamplePeriod;
}

}  // namespace

std::vector<Segment> AudioRepacker::Push(const Segment& live) {
  PANDORA_CHECK(live.is_audio());
  if (!have_pending_time_ && !live.payload.empty()) {
    pending_start_time_ = live.source_time();
    have_pending_time_ = true;
  }
  pending_.insert(pending_.end(), live.payload.begin(), live.payload.end());
  blocks_consumed_ += static_cast<uint64_t>(live.payload.size()) / kAudioBlockBytes;

  std::vector<Segment> out;
  while (pending_.size() >= kRepositorySegmentBytes) {
    out.push_back(Emit(kRepositorySegmentBytes));
  }
  return out;
}

std::optional<Segment> AudioRepacker::Flush() {
  if (pending_.empty()) {
    return std::nullopt;
  }
  return Emit(pending_.size());
}

Segment AudioRepacker::Emit(size_t bytes) {
  std::vector<uint8_t> data(pending_.begin(), pending_.begin() + static_cast<ptrdiff_t>(bytes));
  pending_.erase(pending_.begin(), pending_.begin() + static_cast<ptrdiff_t>(bytes));
  Segment segment = MakeAudioSegment(stream_, out_sequence_++, pending_start_time_, std::move(data));
  segment.audio().compression = AudioCoding::kRepacked;
  segment.header.length = static_cast<uint32_t>(segment.EncodedSize());
  pending_start_time_ = TimeAtByte(pending_start_time_, bytes);
  if (pending_.empty()) {
    have_pending_time_ = false;
  }
  return segment;
}

std::vector<Segment> AudioUnpacker::Push(const Segment& stored) {
  PANDORA_CHECK(stored.is_audio());
  if (!have_pending_time_ && !stored.payload.empty()) {
    pending_start_time_ = stored.source_time();
    have_pending_time_ = true;
  }
  pending_.insert(pending_.end(), stored.payload.begin(), stored.payload.end());

  const size_t chunk = static_cast<size_t>(blocks_per_segment_) * kAudioBlockBytes;
  std::vector<Segment> out;
  while (pending_.size() >= chunk) {
    out.push_back(Emit(chunk));
  }
  return out;
}

std::optional<Segment> AudioUnpacker::Flush() {
  if (pending_.empty()) {
    return std::nullopt;
  }
  return Emit(pending_.size());
}

Segment AudioUnpacker::Emit(size_t bytes) {
  std::vector<uint8_t> data(pending_.begin(), pending_.begin() + static_cast<ptrdiff_t>(bytes));
  pending_.erase(pending_.begin(), pending_.begin() + static_cast<ptrdiff_t>(bytes));
  Segment segment = MakeAudioSegment(stream_, out_sequence_++, pending_start_time_, std::move(data));
  pending_start_time_ = TimeAtByte(pending_start_time_, bytes);
  if (pending_.empty()) {
    have_pending_time_ = false;
  }
  return segment;
}

double AudioHeaderOverhead(int blocks) {
  double header = static_cast<double>(kAudioSegmentHeaderBytes);
  double data = static_cast<double>(blocks) * kAudioBlockBytes;
  return header / (header + data);
}

}  // namespace pandora
