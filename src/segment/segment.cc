#include "src/segment/segment.h"

#include <sstream>

namespace pandora {

size_t Segment::EncodedSize() const {
  size_t size = kCommonHeaderBytes;
  if (std::holds_alternative<AudioHeader>(sub)) {
    size += kAudioHeaderBytes;
  } else if (std::holds_alternative<VideoHeader>(sub)) {
    size += kVideoHeaderFixedBytes + compression_args.size() * 4;
  }
  return size + payload.size();
}

int Segment::AudioBlockCount() const {
  if (!is_audio()) {
    return 0;
  }
  return static_cast<int>(payload.size() / kAudioBlockBytes);
}

Segment MakeAudioSegment(StreamId stream, uint32_t sequence, Time source_time,
                         std::vector<uint8_t> samples) {
  Segment segment;
  segment.stream = stream;
  segment.header.sequence = sequence;
  segment.header.timestamp = ToTimestampTicks(source_time);
  segment.header.type = SegmentType::kAudio;
  AudioHeader ah;
  ah.data_length = static_cast<uint32_t>(samples.size());
  segment.sub = ah;
  segment.payload = std::move(samples);
  segment.header.length = static_cast<uint32_t>(segment.EncodedSize());
  return segment;
}

Segment MakeVideoSegment(StreamId stream, uint32_t sequence, Time source_time,
                         const VideoHeader& vh, std::vector<uint8_t> data) {
  Segment segment;
  segment.stream = stream;
  segment.header.sequence = sequence;
  segment.header.timestamp = ToTimestampTicks(source_time);
  segment.header.type = SegmentType::kVideo;
  VideoHeader header = vh;
  header.data_length = static_cast<uint32_t>(data.size());
  segment.sub = header;
  segment.payload = std::move(data);
  segment.header.length = static_cast<uint32_t>(segment.EncodedSize());
  return segment;
}

std::string DescribeSegment(const Segment& segment) {
  std::ostringstream out;
  out << "stream=" << segment.stream << " seq=" << segment.header.sequence
      << " ts=" << segment.header.timestamp;
  if (segment.is_audio()) {
    out << " audio blocks=" << segment.AudioBlockCount() << " rate=" << segment.audio().sampling_rate;
  } else if (segment.is_video()) {
    const VideoHeader& vh = segment.video();
    out << " video frame=" << vh.frame_number << " seg=" << vh.segment_number << "/"
        << vh.segments_in_frame << " rect=" << vh.x_width << "x" << vh.line_count << "@("
        << vh.x_offset << "," << vh.y_offset << ")";
  } else {
    out << " test bytes=" << segment.payload.size();
  }
  return out.str();
}

}  // namespace pandora
