#include "src/segment/wire.h"

#include <cstddef>
#include <cstring>

#include "src/runtime/check.h"

namespace pandora {
namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t value) {
  out->push_back(static_cast<uint8_t>(value & 0xff));
  out->push_back(static_cast<uint8_t>((value >> 8) & 0xff));
  out->push_back(static_cast<uint8_t>((value >> 16) & 0xff));
  out->push_back(static_cast<uint8_t>((value >> 24) & 0xff));
}

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  bool GetU32(uint32_t* out) {
    if (pos_ + 4 > bytes_.size()) {
      return false;
    }
    *out = static_cast<uint32_t>(bytes_[pos_]) | (static_cast<uint32_t>(bytes_[pos_ + 1]) << 8) |
           (static_cast<uint32_t>(bytes_[pos_ + 2]) << 16) |
           (static_cast<uint32_t>(bytes_[pos_ + 3]) << 24);
    pos_ += 4;
    return true;
  }

  bool GetBytes(size_t n, std::vector<uint8_t>* out) {
    if (pos_ + n > bytes_.size()) {
      return false;
    }
    out->assign(bytes_.begin() + static_cast<ptrdiff_t>(pos_),
                bytes_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }

  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

DecodeResult Fail(std::string error) {
  DecodeResult result;
  result.ok = false;
  result.error = std::move(error);
  return result;
}

}  // namespace

void EncodeSegmentInto(const Segment& segment, StreamField stream_field,
                       std::vector<uint8_t>* out) {
  // Make*Segment stamp `length` once; mutating the payload (or the video
  // compression args) afterwards silently desynchronizes them, and the
  // receiver would reject the segment as damaged.  Catch it at the source.
  PANDORA_DCHECK(segment.header.length == segment.EncodedSize(),
                 "header.length drifted from EncodedSize(); "
                 "restamp length after mutating payload or compression args");
  out->clear();
  out->reserve(segment.EncodedSize() + 4);
  if (stream_field == StreamField::kIncluded) {
    PutU32(out, segment.stream);
  }
  PutU32(out, segment.header.version_id);
  PutU32(out, segment.header.sequence);
  PutU32(out, segment.header.timestamp);
  PutU32(out, static_cast<uint32_t>(segment.header.type));
  PutU32(out, static_cast<uint32_t>(segment.EncodedSize()));

  if (const auto* audio = std::get_if<AudioHeader>(&segment.sub)) {
    PutU32(out, audio->sampling_rate);
    PutU32(out, static_cast<uint32_t>(audio->format));
    PutU32(out, static_cast<uint32_t>(audio->compression));
    PutU32(out, static_cast<uint32_t>(segment.payload.size()));
  } else if (const auto* video = std::get_if<VideoHeader>(&segment.sub)) {
    PutU32(out, video->frame_number);
    PutU32(out, video->segments_in_frame);
    PutU32(out, video->segment_number);
    PutU32(out, video->x_offset);
    PutU32(out, video->y_offset);
    PutU32(out, static_cast<uint32_t>(video->pixel_format));
    PutU32(out, static_cast<uint32_t>(video->compression_type));
    PutU32(out, static_cast<uint32_t>(segment.compression_args.size()));
    for (uint32_t arg : segment.compression_args) {
      PutU32(out, arg);
    }
    PutU32(out, video->x_width);
    PutU32(out, video->start_line_y);
    PutU32(out, video->line_count);
    PutU32(out, static_cast<uint32_t>(segment.payload.size()));
  }
  out->insert(out->end(), segment.payload.begin(), segment.payload.end());
}

std::vector<uint8_t> EncodeSegment(const Segment& segment, StreamField stream_field) {
  std::vector<uint8_t> out;
  EncodeSegmentInto(segment, stream_field, &out);
  return out;
}

DecodeResult DecodeSegment(const std::vector<uint8_t>& bytes, StreamField stream_field,
                           StreamId vci_stream) {
  Reader reader(bytes);
  DecodeResult result;
  Segment& segment = result.segment;

  if (stream_field == StreamField::kIncluded) {
    uint32_t stream = 0;
    if (!reader.GetU32(&stream)) {
      return Fail("truncated stream field");
    }
    segment.stream = stream;
  } else {
    segment.stream = vci_stream;
  }

  uint32_t type_raw = 0;
  uint32_t length = 0;
  if (!reader.GetU32(&segment.header.version_id) || !reader.GetU32(&segment.header.sequence) ||
      !reader.GetU32(&segment.header.timestamp) || !reader.GetU32(&type_raw) ||
      !reader.GetU32(&length)) {
    return Fail("truncated common header");
  }
  if (segment.header.version_id != kSegmentVersionId) {
    return Fail("bad version id");
  }
  segment.header.type = static_cast<SegmentType>(type_raw);
  segment.header.length = length;

  switch (segment.header.type) {
    case SegmentType::kAudio: {
      AudioHeader audio;
      uint32_t format = 0;
      uint32_t compression = 0;
      uint32_t data_length = 0;
      if (!reader.GetU32(&audio.sampling_rate) || !reader.GetU32(&format) ||
          !reader.GetU32(&compression) || !reader.GetU32(&data_length)) {
        return Fail("truncated audio header");
      }
      audio.format = static_cast<AudioFormat>(format);
      audio.compression = static_cast<AudioCoding>(compression);
      audio.data_length = data_length;
      if (data_length != reader.remaining()) {
        return Fail("audio data length mismatch");
      }
      if (!reader.GetBytes(data_length, &segment.payload)) {
        return Fail("truncated audio data");
      }
      segment.sub = audio;
      break;
    }
    case SegmentType::kVideo: {
      VideoHeader video;
      uint32_t pixel_format = 0;
      uint32_t compression = 0;
      uint32_t argument_count = 0;
      if (!reader.GetU32(&video.frame_number) || !reader.GetU32(&video.segments_in_frame) ||
          !reader.GetU32(&video.segment_number) || !reader.GetU32(&video.x_offset) ||
          !reader.GetU32(&video.y_offset) || !reader.GetU32(&pixel_format) ||
          !reader.GetU32(&compression) || !reader.GetU32(&argument_count)) {
        return Fail("truncated video header");
      }
      if (argument_count > 64) {
        return Fail("unreasonable compression argument count");
      }
      segment.compression_args.resize(argument_count);
      for (uint32_t i = 0; i < argument_count; ++i) {
        if (!reader.GetU32(&segment.compression_args[i])) {
          return Fail("truncated compression arguments");
        }
      }
      uint32_t data_length = 0;
      if (!reader.GetU32(&video.x_width) || !reader.GetU32(&video.start_line_y) ||
          !reader.GetU32(&video.line_count) || !reader.GetU32(&data_length)) {
        return Fail("truncated video geometry");
      }
      video.pixel_format = static_cast<PixelFormat>(pixel_format);
      video.compression_type = static_cast<VideoCoding>(compression);
      video.data_length = data_length;
      if (video.segments_in_frame == 0 || video.segment_number >= video.segments_in_frame) {
        return Fail("bad segment-in-frame numbering");
      }
      if (data_length != reader.remaining()) {
        return Fail("video data length mismatch");
      }
      if (!reader.GetBytes(data_length, &segment.payload)) {
        return Fail("truncated video data");
      }
      segment.sub = video;
      break;
    }
    case SegmentType::kTest: {
      if (!reader.GetBytes(reader.remaining(), &segment.payload)) {
        return Fail("truncated test data");
      }
      break;
    }
    default:
      return Fail("unknown segment type");
  }

  if (segment.EncodedSize() != length) {
    return Fail("common header length disagrees with contents");
  }
  result.ok = true;
  return result;
}

bool PeekWireHeader(const std::vector<uint8_t>& bytes, StreamField stream_field,
                    WireHeaderPeek* out, StreamId vci_stream) {
  Reader reader(bytes);
  if (stream_field == StreamField::kIncluded) {
    uint32_t stream = 0;
    if (!reader.GetU32(&stream)) {
      return false;
    }
    out->stream = stream;
  } else {
    out->stream = vci_stream;
  }
  uint32_t type_raw = 0;
  if (!reader.GetU32(&out->version_id) || !reader.GetU32(&out->sequence) ||
      !reader.GetU32(&out->timestamp) || !reader.GetU32(&type_raw) || !reader.GetU32(&out->length)) {
    return false;
  }
  if (out->version_id != kSegmentVersionId) {
    return false;
  }
  switch (static_cast<SegmentType>(type_raw)) {
    case SegmentType::kAudio:
    case SegmentType::kVideo:
    case SegmentType::kTest:
      out->type = static_cast<SegmentType>(type_raw);
      break;
    default:
      return false;
  }
  // The declared length covers everything but the optional stream prefix; a
  // well-formed buffer contains the whole segment and nothing else.
  const size_t prefix = stream_field == StreamField::kIncluded ? 4u : 0u;
  return bytes.size() == static_cast<size_t>(out->length) + prefix;
}

// The explicit instantiation of the wire-buffer pool lives in
// src/buffer/pool.cc: RefPool reports starvation through the control plane,
// and control already depends on this library.

}  // namespace pandora
