// Per-stream sequence tracking for loss detection and recovery.
//
// "As all pandora segments carry sequence numbers, the destination can
// detect that segments are missing as soon as a later one arrives.  Action
// appropriate to the type of data can then be taken." (section 3.8).  Also
// the recovery half of principle 5: a split point silently drops segments
// for a stalled destination, and it is "the destination's responsibility to
// detect (by segment sequence number) and recover from this".
#ifndef PANDORA_SRC_SEGMENT_SEQUENCE_H_
#define PANDORA_SRC_SEGMENT_SEQUENCE_H_

#include <cstdint>

namespace pandora {

class SequenceTracker {
 public:
  enum class Outcome {
    kFirst,      // first segment seen on the stream
    kInOrder,    // expected next sequence number
    kGap,        // one or more segments missing before this one
    kDuplicate,  // sequence number already consumed
    kStale,      // older than anything useful (late reordered arrival)
    kSuspect,    // implausible jump — discarded, expectation unchanged
    kResync,     // a suspect jump confirmed by its successor; re-anchored
  };

  struct Observation {
    Outcome outcome = Outcome::kFirst;
    uint32_t missing = 0;  // count of skipped sequence numbers, if kGap
  };

  // Any jump (forward or back) larger than this is treated as suspect: the
  // wire format has no checksum, so a bit flip landing in the sequence
  // field decodes cleanly and would otherwise re-anchor the expectation by
  // up to 2^31 — after which every genuine segment reads as stale and the
  // stream is dead forever.  A suspect segment is discarded, but its
  // successor is remembered: a REAL discontinuity this large (sender
  // re-origination) keeps counting from the new point, confirms on the next
  // arrival, and costs exactly one segment.  16 s of audio at the default
  // 4 ms cadence — far above any plausible shed/jitter gap, far below any
  // interesting bit flip.
  static constexpr int32_t kMaxPlausibleJump = 4096;

  // Feeds the sequence number of an arriving segment.
  Observation Observe(uint32_t sequence) {
    Observation obs;
    if (!started_) {
      started_ = true;
      next_expected_ = sequence + 1;
      ++received_;
      obs.outcome = Outcome::kFirst;
      return obs;
    }
    if (sequence == next_expected_) {
      ++received_;
      ++next_expected_;
      suspect_pending_ = false;
      obs.outcome = Outcome::kInOrder;
      return obs;
    }
    // Wrap-aware signed distance from the expected number.
    int32_t delta = static_cast<int32_t>(sequence - next_expected_);
    if (delta > kMaxPlausibleJump || delta < -kMaxPlausibleJump) {
      if (suspect_pending_ && sequence == suspect_next_) {
        // Two consecutive numbers in the new space: genuine re-origination,
        // not line noise.  Re-anchor without polluting the gap accounting
        // (the distance across a resync is meaningless).
        suspect_pending_ = false;
        next_expected_ = sequence + 1;
        ++received_;
        ++resyncs_;
        obs.outcome = Outcome::kResync;
        return obs;
      }
      suspect_pending_ = true;
      suspect_next_ = sequence + 1;
      ++suspects_;
      obs.outcome = Outcome::kSuspect;
      return obs;
    }
    suspect_pending_ = false;
    if (delta > 0) {
      obs.outcome = Outcome::kGap;
      obs.missing = static_cast<uint32_t>(delta);
      missing_total_ += static_cast<uint32_t>(delta);
      if (static_cast<uint32_t>(delta) > max_gap_) {
        max_gap_ = static_cast<uint32_t>(delta);
      }
      ++gap_events_;
      ++received_;
      next_expected_ = sequence + 1;
      return obs;
    }
    if (delta == -1) {
      ++duplicates_;
      obs.outcome = Outcome::kDuplicate;
      return obs;
    }
    ++stale_;
    obs.outcome = Outcome::kStale;
    return obs;
  }

  uint64_t received() const { return received_; }
  uint64_t missing_total() const { return missing_total_; }
  uint64_t gap_events() const { return gap_events_; }
  uint64_t duplicates() const { return duplicates_; }
  uint64_t stale() const { return stale_; }
  uint64_t suspects() const { return suspects_; }
  uint64_t resyncs() const { return resyncs_; }
  uint32_t max_gap() const { return max_gap_; }
  double LossFraction() const {
    uint64_t offered = received_ + missing_total_;
    return offered == 0 ? 0.0 : static_cast<double>(missing_total_) / static_cast<double>(offered);
  }

  void Reset() { *this = SequenceTracker(); }

 private:
  bool started_ = false;
  uint32_t next_expected_ = 0;
  bool suspect_pending_ = false;
  uint32_t suspect_next_ = 0;
  uint64_t received_ = 0;
  uint64_t missing_total_ = 0;
  uint64_t gap_events_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t stale_ = 0;
  uint64_t suspects_ = 0;
  uint64_t resyncs_ = 0;
  uint32_t max_gap_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_SEGMENT_SEQUENCE_H_
