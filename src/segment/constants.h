// Stream and audio-format constants shared across the system.
//
// Paper section 3.2: "Audio is sampled by a standard 8-bit u-law codec at
// 125us intervals.  It is handled in blocks of 16 samples, representing 2ms
// of audio."  Live segments usually carry 2 blocks (4ms, principle 7) but
// anywhere from 1 to 12 blocks (2..24ms) depending on recipient capacity;
// the repository repacks stored audio into 40ms/20-block segments.
#ifndef PANDORA_SRC_SEGMENT_CONSTANTS_H_
#define PANDORA_SRC_SEGMENT_CONSTANTS_H_

#include <cstdint>

#include "src/runtime/time.h"

namespace pandora {

// Stream numbers label every data stream through a box (section 3.4); they
// are allocated by the interface code and carried in ATM VCIs between boxes.
using StreamId = uint32_t;
inline constexpr StreamId kInvalidStream = 0;

// Virtual circuit identifier on the ATM network.
using Vci = uint32_t;

// --- Audio timing --------------------------------------------------------

inline constexpr uint32_t kAudioSampleRateHz = 8000;
inline constexpr Duration kAudioSamplePeriod = 125;  // microseconds
inline constexpr int kAudioBlockSamples = 16;
inline constexpr int kAudioBlockBytes = 16;  // 8-bit u-law, 1 byte/sample
inline constexpr Duration kAudioBlockDuration = Millis(2);

// Default blocks per live segment: 2 blocks = 4ms (principle 7).
inline constexpr int kDefaultBlocksPerSegment = 2;
inline constexpr int kMinBlocksPerSegment = 1;    // 2ms, lowest latency
inline constexpr int kMaxBlocksPerSegment = 12;   // 24ms, overloaded receiver

// Repository storage format: 40ms segments of 320 bytes (section 3.2).
inline constexpr int kRepositoryBlocksPerSegment = 20;
inline constexpr int kRepositorySegmentBytes = 320;
inline constexpr Duration kRepositorySegmentDuration = Millis(40);

// --- Video timing ---------------------------------------------------------

// Full frame rate of the PAL-derived capture hardware.
inline constexpr int kFullFrameRateHz = 25;
inline constexpr Duration kFramePeriod = kSecond / kFullFrameRateHz;  // 40ms

}  // namespace pandora

#endif  // PANDORA_SRC_SEGMENT_CONSTANTS_H_
