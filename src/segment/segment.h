// Pandora segment formats (paper figures 3.1 and 3.2).
//
// A segment is a self-contained unit of stream data: "Stream implementation
// is based on self-contained segments of data containing information for
// delivery, synchronisation and error recovery" (abstract).  Every field in
// the header is 32 bits; the first five fields are common to audio and
// video.  The segment header completely describes the samples that follow,
// and compression schemes/parameters can change from one segment to the
// next.
#ifndef PANDORA_SRC_SEGMENT_SEGMENT_H_
#define PANDORA_SRC_SEGMENT_SEGMENT_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/runtime/time.h"
#include "src/segment/constants.h"

namespace pandora {

// 'PAN1' — identifies the segment layout version.
inline constexpr uint32_t kSegmentVersionId = 0x50414E31;

enum class SegmentType : uint32_t {
  kAudio = 1,
  kVideo = 2,
  kTest = 3,  // software test generators (fig 3.3 "test in/out")
};

// --- Common header (fig 3.1/3.2, first five fields) ------------------------

struct CommonHeader {
  uint32_t version_id = kSegmentVersionId;
  uint32_t sequence = 0;   // per-stream sequence number
  uint32_t timestamp = 0;  // 64us ticks since box boot, taken near the source
  SegmentType type = SegmentType::kTest;
  uint32_t length = 0;  // total encoded segment length in bytes
};

inline constexpr size_t kCommonHeaderBytes = 5 * 4;

// --- Audio-specific header (fig 3.1) ---------------------------------------

enum class AudioFormat : uint32_t {
  kULaw8 = 1,    // 8-bit u-law, the codec's native format
  kLinear16 = 2  // 16-bit linear (used by software test paths)
};

enum class AudioCoding : uint32_t {
  kNone = 0,
  kRepacked = 1,  // repository 40ms repacked storage
};

struct AudioHeader {
  uint32_t sampling_rate = kAudioSampleRateHz;
  AudioFormat format = AudioFormat::kULaw8;
  AudioCoding compression = AudioCoding::kNone;
  uint32_t data_length = 0;  // bytes of sample data following
};

inline constexpr size_t kAudioHeaderBytes = 4 * 4;
// 20 (common) + 16 (audio) = 36 bytes: matches the paper's "320 bytes of
// data plus a new 36 byte header" for repository segments.
inline constexpr size_t kAudioSegmentHeaderBytes = kCommonHeaderBytes + kAudioHeaderBytes;
static_assert(kAudioSegmentHeaderBytes == 36);

// --- Video-specific header (fig 3.2) ----------------------------------------

enum class PixelFormat : uint32_t {
  kGrey8 = 1,
  kColour16 = 2,
};

enum class VideoCoding : uint32_t {
  kRaw = 0,
  kDpcm = 1,          // DPCM per line
  kDpcmSubsampled = 2  // horizontal sub-sampling + DPCM
};

struct VideoHeader {
  uint32_t frame_number = 0;
  // A frame can be broken into several rectangular segments; these place
  // this segment within its frame.
  uint32_t segments_in_frame = 1;
  uint32_t segment_number = 0;  // 0-based within the frame
  uint32_t x_offset = 0;
  uint32_t y_offset = 0;
  PixelFormat pixel_format = PixelFormat::kGrey8;
  VideoCoding compression_type = VideoCoding::kRaw;
  // Variable number of 32-bit compression arguments follow the compression
  // type field so that parameters for any scheme can be accommodated.
  uint32_t argument_count = 0;
  uint32_t x_width = 0;
  uint32_t start_line_y = 0;
  uint32_t line_count = 0;
  uint32_t data_length = 0;
};

inline constexpr size_t kVideoHeaderFixedBytes = 12 * 4;

// --- Segment ---------------------------------------------------------------

struct Segment {
  // "streams within pandora pass the stream number in an extra field
  // preceding the segment header" (section 3.4).
  StreamId stream = kInvalidStream;

  CommonHeader header;
  std::variant<std::monostate, AudioHeader, VideoHeader> sub;
  std::vector<uint32_t> compression_args;  // video only
  std::vector<uint8_t> payload;

  bool is_audio() const { return header.type == SegmentType::kAudio; }
  bool is_video() const { return header.type == SegmentType::kVideo; }

  AudioHeader& audio() { return std::get<AudioHeader>(sub); }
  const AudioHeader& audio() const { return std::get<AudioHeader>(sub); }
  VideoHeader& video() { return std::get<VideoHeader>(sub); }
  const VideoHeader& video() const { return std::get<VideoHeader>(sub); }

  // Full-resolution source timestamp.
  Time source_time() const { return FromTimestampTicks(header.timestamp); }

  // Encoded size in bytes (headers + args + payload), as would travel on a
  // link; kept in header.length.
  size_t EncodedSize() const;

  // Number of 2ms audio blocks carried (audio segments only).
  int AudioBlockCount() const;
};

// Builds an audio segment carrying `blocks` x 16 u-law samples.
Segment MakeAudioSegment(StreamId stream, uint32_t sequence, Time source_time,
                         std::vector<uint8_t> samples);

// Builds a video segment for a rectangle of a frame.
Segment MakeVideoSegment(StreamId stream, uint32_t sequence, Time source_time,
                         const VideoHeader& vh, std::vector<uint8_t> data);

// Human-readable one-line description (for reports/logs).
std::string DescribeSegment(const Segment& segment);

}  // namespace pandora

#endif  // PANDORA_SRC_SEGMENT_SEGMENT_H_
