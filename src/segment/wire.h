// Wire encoding of Pandora segments.
//
// Serializes segments exactly as figs 3.1/3.2 lay them out: 32-bit fields,
// common header first, then the type-specific header (with a variable count
// of compression arguments for video), then the data.  Within a box the
// 32-bit stream number travels as an extra field preceding the header
// (section 3.4); over the ATM network the stream number rides in the VCI
// instead, so encoders can omit the prefix.
//
// Byte order is little-endian (the transputer is a little-endian machine).
#ifndef PANDORA_SRC_SEGMENT_WIRE_H_
#define PANDORA_SRC_SEGMENT_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/segment/segment.h"

namespace pandora {

enum class StreamField {
  kIncluded,  // intra-box: stream number prefixes the header
  kOmitted,   // network: stream number carried in the VCI
};

// Encodes `segment` to bytes.  The result's length equals
// segment.EncodedSize() (+4 if the stream field is included).
std::vector<uint8_t> EncodeSegment(const Segment& segment,
                                   StreamField stream_field = StreamField::kIncluded);

struct DecodeResult {
  bool ok = false;
  std::string error;
  Segment segment;
};

// Decodes bytes back into a segment, validating version id, type, length
// consistency and header/data agreement.  When the stream field is omitted,
// pass the stream id recovered from the VCI.
DecodeResult DecodeSegment(const std::vector<uint8_t>& bytes,
                           StreamField stream_field = StreamField::kIncluded,
                           StreamId vci_stream = kInvalidStream);

}  // namespace pandora

#endif  // PANDORA_SRC_SEGMENT_WIRE_H_
