// Wire encoding of Pandora segments.
//
// Serializes segments exactly as figs 3.1/3.2 lay them out: 32-bit fields,
// common header first, then the type-specific header (with a variable count
// of compression arguments for video), then the data.  Within a box the
// 32-bit stream number travels as an extra field preceding the header
// (section 3.4); over the ATM network the stream number rides in the VCI
// instead, so encoders can omit the prefix.
//
// This codec is the production data plane, not just a test harness: the
// network carries refcounted WireBuffers of encoded bytes (WirePool below),
// encoded exactly once at the source port (src/server/netio.cc) and decoded
// exactly once at the destination.  Intermediate hops that only need
// routing metadata use PeekWireHeader instead of a full decode.
//
// Byte order is little-endian (the transputer is a little-endian machine).
#ifndef PANDORA_SRC_SEGMENT_WIRE_H_
#define PANDORA_SRC_SEGMENT_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/buffer/pool.h"
#include "src/segment/segment.h"

namespace pandora {

enum class StreamField {
  kIncluded,  // intra-box: stream number prefixes the header
  kOmitted,   // network: stream number carried in the VCI
};

// One fixed wire buffer: a segment's encoded bytes, owned by a port-side
// WirePool and passed between network stages by refcounted handle.
struct WireBuffer {
  std::vector<uint8_t> bytes;
};

// Recycle hook (ADL, src/buffer/pool.h): keep capacity, drop contents.
inline void PoolRecycle(WireBuffer& buffer) { buffer.bytes.clear(); }

// The port-side pool of encoded segments crossing the network.
using WirePool = RefPool<WireBuffer>;
using WireRef = PoolRef<WireBuffer>;

// Encodes `segment` into `*out` (cleared first; heap capacity is reused, so
// encoding into a recycled WireBuffer allocates nothing in steady state).
// The result's length equals segment.EncodedSize() (+4 if the stream field
// is included).  DCHECKs that header.length has not drifted from
// EncodedSize() — mutating a payload after Make*Segment desynchronizes them.
void EncodeSegmentInto(const Segment& segment, StreamField stream_field,
                       std::vector<uint8_t>* out);

// Convenience wrapper allocating a fresh vector.
std::vector<uint8_t> EncodeSegment(const Segment& segment,
                                   StreamField stream_field = StreamField::kIncluded);

struct DecodeResult {
  bool ok = false;
  std::string error;
  Segment segment;
};

// Decodes bytes back into a segment, validating version id, type, length
// consistency and header/data agreement.  When the stream field is omitted,
// pass the stream id recovered from the VCI.
DecodeResult DecodeSegment(const std::vector<uint8_t>& bytes,
                           StreamField stream_field = StreamField::kIncluded,
                           StreamId vci_stream = kInvalidStream);

// The common header of an encoded segment, read without touching the
// type-specific header or payload.
struct WireHeaderPeek {
  StreamId stream = kInvalidStream;
  uint32_t version_id = 0;
  uint32_t sequence = 0;
  uint32_t timestamp = 0;
  SegmentType type = SegmentType::kTest;
  uint32_t length = 0;  // EncodedSize() of the segment (excludes stream field)
};

// Extracts the common header from encoded bytes without a full decode.
// Validates only what it reads: the buffer is long enough, the version id
// matches, the type is known, and the declared length agrees with the
// buffer size.  A successful full decode implies a successful peek with the
// same field values; the converse does not hold (a peek cannot see
// type-specific damage).
bool PeekWireHeader(const std::vector<uint8_t>& bytes, StreamField stream_field,
                    WireHeaderPeek* out, StreamId vci_stream = kInvalidStream);

}  // namespace pandora

#endif  // PANDORA_SRC_SEGMENT_WIRE_H_
