// AudioBlock: the 2ms, 16-sample unit of audio handling.
//
// "It is handled in blocks of 16 samples, representing 2ms of audio"
// (section 3.2).  Blocks are the granularity of clawback buffering, mixing,
// loss recovery (drop/replay a block) and muting.
#ifndef PANDORA_SRC_SEGMENT_AUDIO_BLOCK_H_
#define PANDORA_SRC_SEGMENT_AUDIO_BLOCK_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/runtime/time.h"
#include "src/segment/constants.h"
#include "src/segment/segment.h"

namespace pandora {

struct AudioBlock {
  std::array<uint8_t, kAudioBlockBytes> samples{};
  // Source-clock time of the first sample (full resolution, for metrics).
  Time source_time = 0;
};

// Splits an audio segment's payload into 2ms blocks, reconstructing each
// block's source time from the segment timestamp.  A trailing partial block
// (possible after single-sample loss recovery) is dropped.
inline std::vector<AudioBlock> SplitIntoBlocks(const Segment& segment) {
  std::vector<AudioBlock> blocks;
  const size_t whole = segment.payload.size() / kAudioBlockBytes;
  blocks.reserve(whole);
  Time t = segment.source_time();
  for (size_t b = 0; b < whole; ++b) {
    AudioBlock block;
    for (int i = 0; i < kAudioBlockBytes; ++i) {
      block.samples[static_cast<size_t>(i)] =
          segment.payload[b * kAudioBlockBytes + static_cast<size_t>(i)];
    }
    block.source_time = t;
    blocks.push_back(block);
    t += kAudioBlockDuration;
  }
  return blocks;
}

}  // namespace pandora

#endif  // PANDORA_SRC_SEGMENT_AUDIO_BLOCK_H_
