// Audio repacking between live and repository formats.
//
// Section 3.2: live audio segments carry 1..12 two-millisecond blocks with a
// full header each, keeping latency low.  Once a stream is stored on a
// repository there is no latency requirement, so "this is done as a separate
// operation after the stream has been recorded, by splitting out the 2ms
// blocks, and merging them to form 40ms long segments containing 320 bytes
// of data plus a new 36 byte header.  These can be played back directly to
// any Pandora box."
#ifndef PANDORA_SRC_SEGMENT_REPACK_H_
#define PANDORA_SRC_SEGMENT_REPACK_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/segment/segment.h"

namespace pandora {

// Merges live audio segments into repository 40ms segments.  Input segments
// may carry any mixture of block counts ("Incoming segments of any mixture
// of sizes are accepted"); output segments carry exactly 20 blocks except
// possibly a short final one from Flush().
class AudioRepacker {
 public:
  explicit AudioRepacker(StreamId stream) : stream_(stream) {}

  // Consumes one live segment; returns any repository segments completed.
  std::vector<Segment> Push(const Segment& live);

  // Emits a final short segment for any buffered remainder.
  std::optional<Segment> Flush();

  uint64_t blocks_consumed() const { return blocks_consumed_; }
  uint32_t segments_emitted() const { return out_sequence_; }

 private:
  Segment Emit(size_t bytes);

  StreamId stream_;
  std::vector<uint8_t> pending_;
  Time pending_start_time_ = 0;  // source time of pending_[0]
  bool have_pending_time_ = false;
  uint32_t out_sequence_ = 0;
  uint64_t blocks_consumed_ = 0;
};

// Splits repository segments back into live segments of `blocks_per_segment`
// blocks for playback to any Pandora box.
class AudioUnpacker {
 public:
  AudioUnpacker(StreamId stream, int blocks_per_segment)
      : stream_(stream), blocks_per_segment_(blocks_per_segment) {}

  std::vector<Segment> Push(const Segment& stored);
  std::optional<Segment> Flush();

 private:
  Segment Emit(size_t bytes);

  StreamId stream_;
  int blocks_per_segment_;
  std::vector<uint8_t> pending_;
  Time pending_start_time_ = 0;
  bool have_pending_time_ = false;
  uint32_t out_sequence_ = 0;
};

// Header overhead fraction for an audio segment carrying `blocks` blocks —
// the quantity the 40ms repacking optimises (used by bench E13).
double AudioHeaderOverhead(int blocks);

}  // namespace pandora

#endif  // PANDORA_SRC_SEGMENT_REPACK_H_
