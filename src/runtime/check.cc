#include "src/runtime/check.h"

#include <cstdio>
#include <cstdlib>

namespace pandora {
namespace check_internal {

void CheckFail(const char* expr, const char* file, int line, const char* message) {
  if (message != nullptr) {
    std::fprintf(stderr, "PANDORA_CHECK failed: %s (%s) at %s:%d\n", expr, message, file, line);
  } else {
    std::fprintf(stderr, "PANDORA_CHECK failed: %s at %s:%d\n", expr, file, line);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace check_internal
}  // namespace pandora
