// Simulated-time units for the Pandora runtime.
//
// The original Pandora's Box is built on Inmos transputers whose hardware
// timer has one-microsecond resolution (paper, section 3.1).  The whole
// reproduction therefore runs on a discrete-event clock measured in integer
// microseconds since box boot.  Segment timestamps are carried at the
// paper's 64 microsecond resolution (section 3.2) and converted at the edge.
#ifndef PANDORA_SRC_RUNTIME_TIME_H_
#define PANDORA_SRC_RUNTIME_TIME_H_

#include <cstdint>
#include <limits>

namespace pandora {

// Absolute simulated time, microseconds since boot.
using Time = int64_t;

// A span of simulated time, microseconds.
using Duration = int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1'000'000;

// A time later than every representable event.
inline constexpr Time kNever = std::numeric_limits<Time>::max();

constexpr Duration Micros(int64_t n) { return n * kMicrosecond; }
constexpr Duration Millis(int64_t n) { return n * kMillisecond; }
constexpr Duration Seconds(int64_t n) { return n * kSecond; }

// Fractional seconds, rounded to the nearest microsecond.
constexpr Duration SecondsF(double s) { return static_cast<Duration>(s * 1e6 + (s >= 0 ? 0.5 : -0.5)); }

constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToMillis(Duration d) { return static_cast<double>(d) / 1e3; }

// Pandora segment timestamps have 64us resolution (paper fig 3.1).
inline constexpr Duration kTimestampTick = 64;

constexpr uint32_t ToTimestampTicks(Time t) { return static_cast<uint32_t>(t / kTimestampTick); }
constexpr Time FromTimestampTicks(uint32_t ticks) {
  return static_cast<Time>(ticks) * kTimestampTick;
}

}  // namespace pandora

#endif  // PANDORA_SRC_RUNTIME_TIME_H_
