#include "src/runtime/alt.h"

#include <algorithm>

namespace pandora {

int Alt::ScanReady() const {
  for (size_t i = 0; i < guards_.size(); ++i) {
    const Guard& guard = guards_[i];
    switch (guard.kind) {
      case Guard::kChannel:
        if (guard.channel->InputReady()) {
          return static_cast<int>(i);
        }
        break;
      case Guard::kTimeout:
        if (sched_->now() >= guard.deadline) {
          return static_cast<int>(i);
        }
        break;
      case Guard::kSkip:
        return static_cast<int>(i);
    }
  }
  return -1;
}

void Alt::SuspendOp::await_suspend(std::coroutine_handle<> h) {
  Scheduler* sched = alt->sched_;
  ProcessCtx* ctx = sched->current();
  ctx->resume_point = h;
  alt->waiting_ctx_ = ctx;
  alt->notified_ = false;

  Time earliest = kNever;
  for (const Guard& guard : alt->guards_) {
    if (guard.kind == Guard::kChannel) {
      guard.channel->RegisterAltWaiter(alt);
    } else if (guard.kind == Guard::kTimeout) {
      earliest = std::min(earliest, guard.deadline);
    }
  }
  if (earliest != kNever) {
    alt->timeout_timer_ = sched->AddTimer(earliest, [alt = alt] { alt->NotifyFromChannel(); });
  }
}

void Alt::SuspendOp::await_resume() {
  for (const Guard& guard : alt->guards_) {
    if (guard.kind == Guard::kChannel) {
      guard.channel->UnregisterAltWaiter(alt);
    }
  }
  alt->timeout_timer_.Cancel();
  alt->waiting_ctx_ = nullptr;
}

Task<int> Alt::Select() {
  for (;;) {
    int ready = ScanReady();
    if (ready >= 0) {
      co_return ready;
    }
    // Park until a sender arrives on some guard channel or a timeout guard
    // expires.  A lost race (another receiver took the data first) simply
    // loops and parks again.
    co_await SuspendOp{this};
  }
}

}  // namespace pandora
