// Shard annotations for mutable static state.
//
// The sharded M:N scheduler (src/runtime/shard_set.h, ROADMAP item 1) runs
// shards — each its own timer wheel, slab and run queue — on a pool of OS
// worker threads.  Every mutable namespace-scope or function-local static
// in src/ is therefore either a data race or a source of cross-shard
// nondeterminism — the two failure modes the golden-hash and chaos-replay
// gates exist to catch.
//
// tools/lint/shard_audit.py therefore requires every non-const static in
// src/ to either be constexpr/const or to carry exactly one of these
// annotations, which make the sharding intent explicit and grep-able:
//
//   PANDORA_SHARD_LOCAL
//       This state is replicated per executor thread.  Now that the worker
//       pool is real, the annotation is no longer an IOU: the declaration
//       must actually be `thread_local` (shards are statically assigned to
//       workers, so per-thread storage is per-shard-group storage), and the
//       audit's `shard-local-not-threadlocal` rule fails anything annotated
//       but not replicated.
//
//         PANDORA_SHARD_LOCAL static thread_local FreeNode* heads[kNumClasses] = {};
//
//   PANDORA_SHARD_SHARED(reason)
//       This state is deliberately cross-shard (a true global).  The reason
//       string must say how it will be made safe — a lock is NOT an answer
//       inside src/ (pandora-thread-primitives); sharded designs want
//       per-shard accumulation with a quiescent merge, or immutable-after-
//       startup data.
//
//         PANDORA_SHARD_SHARED("written only before Scheduler::Run")
//         static Config g_config;
//
// Both annotations compile to nothing: they exist for the auditor and the
// reader, never for the optimizer (tests/shard_annotation_test.cc pins the
// zero-overhead guarantee).
#ifndef PANDORA_SRC_RUNTIME_SHARD_H_
#define PANDORA_SRC_RUNTIME_SHARD_H_

#define PANDORA_SHARD_LOCAL
#define PANDORA_SHARD_SHARED(reason)

#endif  // PANDORA_SRC_RUNTIME_SHARD_H_
