// Shard-readiness annotations for mutable static state.
//
// ROADMAP item 1 turns the single-threaded simulator into a sharded M:N
// scheduler: each Pandora box / switch domain becomes a shard with its own
// timer wheel, slab and run queue, executed by a pool of OS threads.  At
// that point every mutable namespace-scope or function-local static in src/
// is either a data race or a source of cross-shard nondeterminism — the two
// failure modes the golden-hash and chaos-replay gates exist to catch.
//
// tools/lint/shard_audit.py therefore requires every non-const static in
// src/ to either be constexpr/const or to carry exactly one of these
// annotations, which make the sharding intent explicit and grep-able:
//
//   PANDORA_SHARD_LOCAL
//       This state must be replicated per shard when threads land (thread-
//       local, or keyed off the owning shard).  The annotation is the
//       work-list entry for the sharding PR: `shard_audit --json` inventories
//       every occurrence so the refactor can be diffed against it.
//
//         PANDORA_SHARD_LOCAL static FreeNode* heads[kNumClasses] = {};
//
//   PANDORA_SHARD_SHARED(reason)
//       This state is deliberately cross-shard (a true global).  The reason
//       string must say how it will be made safe — a lock is NOT an answer
//       inside src/ (pandora-thread-primitives); sharded designs want
//       per-shard accumulation with a quiescent merge, or immutable-after-
//       startup data.
//
//         PANDORA_SHARD_SHARED("written only before Scheduler::Run")
//         static Config g_config;
//
// Both annotations compile to nothing: they exist for the auditor and the
// reader, never for the optimizer (tests/shard_annotation_test.cc pins the
// zero-overhead guarantee).
#ifndef PANDORA_SRC_RUNTIME_SHARD_H_
#define PANDORA_SRC_RUNTIME_SHARD_H_

#define PANDORA_SHARD_LOCAL
#define PANDORA_SHARD_SHARED(reason)

#endif  // PANDORA_SRC_RUNTIME_SHARD_H_
