// PANDORA_CHECK / PANDORA_DCHECK: always-on invariant checks.
//
// The paper's mechanisms rest on low-level invariants -- buffer reference
// counts (section 3.4), rendezvous channel discipline, single-threaded
// deterministic scheduling.  A violated invariant means corrupted streams or
// use-after-free, so these checks are part of the product, not the debug
// build: PANDORA_CHECK is never compiled out, prints the failed expression
// with its location, and aborts.
//
//   PANDORA_CHECK(slot.refs > 0);
//   PANDORA_CHECK(capacity > 0, "decoupling buffer needs at least one slot");
//
// PANDORA_DCHECK has the same shape but compiles to a no-op under NDEBUG;
// use it only on hot paths where the check is measurable and the invariant
// is already enforced elsewhere.  The expression is still parsed (and its
// operands odr-used) in NDEBUG builds, so a DCHECK cannot silently rot.
#ifndef PANDORA_SRC_RUNTIME_CHECK_H_
#define PANDORA_SRC_RUNTIME_CHECK_H_

namespace pandora {
namespace check_internal {

// Prints "CHECK failed: <expr> (<message>) at <file>:<line>" to stderr and
// aborts.  Out of line so the macro expansion stays small at every call
// site; [[noreturn]] lets the compiler treat the failure arm as cold.
[[noreturn]] void CheckFail(const char* expr, const char* file, int line,
                            const char* message);

}  // namespace check_internal
}  // namespace pandora

// Both macros accept an optional second argument: a string literal giving
// the operator-facing description of the invariant.
#define PANDORA_CHECK(...) \
  PANDORA_CHECK_SELECT_(__VA_ARGS__, PANDORA_CHECK_MSG_, PANDORA_CHECK_BARE_)(__VA_ARGS__)

#define PANDORA_CHECK_SELECT_(cond, msg, macro, ...) macro
#define PANDORA_CHECK_BARE_(cond) PANDORA_CHECK_MSG_(cond, nullptr)
#define PANDORA_CHECK_MSG_(cond, msg)                                           \
  (static_cast<bool>(cond)                                                      \
       ? static_cast<void>(0)                                                   \
       : ::pandora::check_internal::CheckFail(#cond, __FILE__, __LINE__, msg))

#ifdef NDEBUG
// The expression must still compile; `false && (cond)` keeps it odr-used
// without evaluating it, and the whole thing folds away.
#define PANDORA_DCHECK(...) \
  PANDORA_CHECK_SELECT_(__VA_ARGS__, PANDORA_DCHECK_MSG_, PANDORA_DCHECK_BARE_)(__VA_ARGS__)
#define PANDORA_DCHECK_BARE_(cond) static_cast<void>(false && static_cast<bool>(cond))
#define PANDORA_DCHECK_MSG_(cond, msg) static_cast<void>(false && static_cast<bool>(cond))
#else
#define PANDORA_DCHECK(...) PANDORA_CHECK(__VA_ARGS__)
#endif

#endif  // PANDORA_SRC_RUNTIME_CHECK_H_
