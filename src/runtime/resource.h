// Serial resources: CPU-time and link-bandwidth cost models.
//
// The reproduction substitutes discrete-event cost accounting for the real
// T425 transputers and Inmos links (see DESIGN.md, substitutions).  A
// SerialResource hands out FIFO reservations on a single-server timeline:
// each acquisition starts no earlier than the previous one finished, and the
// holder sleeps (in simulated time) until its reservation completes.
// Because the scheduler runs high-priority processes first within an
// instant, they also reserve first — matching Pandora's output-side CPU
// priority (section 3.7.1).
//
// CpuModel charges per-operation microsecond costs (mixing a block, applying
// jitter correction, running interface code...).  BandwidthGate converts
// bytes to transmission time at a configured bit rate and, like the paper's
// network code, does NOT interleave transmissions — a large video segment
// occupies the link end-to-end and delays any audio queued behind it
// (section 4.2, the source of up to 20 ms audio jitter).
#ifndef PANDORA_SRC_RUNTIME_RESOURCE_H_
#define PANDORA_SRC_RUNTIME_RESOURCE_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "src/runtime/check.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/task.h"
#include "src/runtime/time.h"
#include "src/trace/trace.h"

namespace pandora {

class SerialResource {
 public:
  SerialResource(Scheduler* sched, std::string name)
      : sched_(sched), name_(std::move(name)), stats_epoch_(sched->now()) {}

  SerialResource(const SerialResource&) = delete;
  SerialResource& operator=(const SerialResource&) = delete;

  // Occupies the resource for `hold`, queueing FIFO behind earlier users.
  // Completes when the reservation ends.
  Task<void> Acquire(Duration hold) {
    Time start = std::max(sched_->now(), next_free_);
    queue_delay_last_ = start - sched_->now();
    max_queue_delay_ = std::max(max_queue_delay_, queue_delay_last_);
    next_free_ = start + hold;
    busy_time_ += hold;
    ++acquisitions_;
    // One complete span per reservation on the resource's own track (link
    // transmissions, CPU charges), plus queue-delay and utilization
    // counters.  The span starts at the reservation start, not now(), so a
    // queued transmission renders where the link actually carried it.
    PANDORA_TRACE_COMPLETE(sched_->trace(), trace_span_site_, name_, start, hold);
    PANDORA_TRACE_COUNTER(sched_->trace(), trace_queue_site_, name_ + ".queue_us",
                          queue_delay_last_);
    PANDORA_TRACE_COUNTER(sched_->trace(), trace_util_site_, name_ + ".util_pct",
                          static_cast<int64_t>(Utilization() * 100.0));
    co_await sched_->WaitUntil(next_free_);
  }

  // Time at which a new acquisition would begin.
  Time next_free() const { return std::max(sched_->now(), next_free_); }

  // Backlog visible right now: how long a new arrival would wait.
  Duration current_queue_delay() const { return std::max<Duration>(0, next_free_ - sched_->now()); }

  // Fraction of time busy since the last ResetStats().
  double Utilization() const {
    Duration elapsed = sched_->now() - stats_epoch_;
    if (elapsed <= 0) {
      return 0.0;
    }
    return static_cast<double>(busy_time_) / static_cast<double>(elapsed);
  }

  Duration busy_time() const { return busy_time_; }
  Duration max_queue_delay() const { return max_queue_delay_; }
  uint64_t acquisitions() const { return acquisitions_; }
  const std::string& name() const { return name_; }
  Scheduler* scheduler() const { return sched_; }

  void ResetStats() {
    stats_epoch_ = sched_->now();
    busy_time_ = 0;
    max_queue_delay_ = 0;
    acquisitions_ = 0;
  }

 private:
  Scheduler* sched_;
  std::string name_;
  Time next_free_ = 0;
  Time stats_epoch_ = 0;
  Duration busy_time_ = 0;
  Duration queue_delay_last_ = 0;
  Duration max_queue_delay_ = 0;
  uint64_t acquisitions_ = 0;
  TraceSiteId trace_span_site_ = 0;
  TraceSiteId trace_queue_site_ = 0;
  TraceSiteId trace_util_site_ = 0;
};

// One board's embedded CPU.  Processes charge microsecond costs for the
// compute they perform; the costs serialize on the board's single CPU.
class CpuModel : public SerialResource {
 public:
  CpuModel(Scheduler* sched, std::string name) : SerialResource(sched, std::move(name)) {}

  // Charge `cost` microseconds of compute.
  Task<void> Consume(Duration cost) { return Acquire(cost); }
};

// A serial transmission resource with a bit rate: an Inmos link, a network
// interface, or a bridged ATM path segment.
class BandwidthGate : public SerialResource {
 public:
  BandwidthGate(Scheduler* sched, std::string name, int64_t bits_per_second)
      : SerialResource(sched, std::move(name)), bits_per_second_(bits_per_second) {}

  int64_t bits_per_second() const { return bits_per_second_; }

  // Fault hook: changes the link rate in place (bandwidth collapse and
  // restore).  Reservations already made keep their old completion times —
  // the bits on the wire were already clocked out; only future
  // transmissions see the new rate.
  void SetRate(int64_t bits_per_second) {
    PANDORA_CHECK(bits_per_second > 0, "link rate must be positive");
    bits_per_second_ = bits_per_second;
  }

  Duration TransmissionTime(size_t bytes) const {
    // ceil(bytes * 8 / bps) in microseconds.
    int64_t bits = static_cast<int64_t>(bytes) * 8;
    return (bits * kSecond + bits_per_second_ - 1) / bits_per_second_;
  }

  // Transmits `bytes`, queueing whole (non-interleaved) behind earlier
  // transmissions.  Completes when the last bit clears the gate.
  Task<void> Transmit(size_t bytes) {
    bytes_sent_ += bytes;
    return Acquire(TransmissionTime(bytes));
  }

  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  int64_t bits_per_second_;
  uint64_t bytes_sent_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_RUNTIME_RESOURCE_H_
