// Process: the top-level coroutine type for Pandora runtime processes.
//
// Pandora processes mirror the long-lived Occam processes of the paper: each
// board runs a mesh of communicating processes (input handlers, switches,
// buffers, mixers...) that exchange data over rendezvous channels.  A
// Process is a C++20 coroutine spawned onto a Scheduler; it may never
// terminate (device handlers "run for all time", section 3.4) or may finish
// after a bounded job (lifetimes "measured in microseconds").
#ifndef PANDORA_SRC_RUNTIME_PROCESS_H_
#define PANDORA_SRC_RUNTIME_PROCESS_H_

#include <coroutine>
#include <cstdint>
#include <exception>
#include <string>
#include <utility>

#include "src/runtime/time.h"
#include "src/trace/trace.h"

namespace pandora {

class Scheduler;

// Scheduling priority: the transputer has two hardware priority levels.
// Pandora runs output/device processes at high priority so that under
// overload, back-pressure pushes data loss towards the source (section
// 3.7.1).
enum class Priority : uint8_t {
  kHigh = 0,
  kLow = 1,
};

inline constexpr int kNumPriorities = 2;

// Per-process bookkeeping owned by the Scheduler.  Channel and timer
// awaitables park and ready processes through this record.
struct ProcessCtx {
  Scheduler* sched = nullptr;
  std::string name;
  Priority priority = Priority::kLow;

  // Top-level coroutine frame; destroyed by the Scheduler.
  std::coroutine_handle<> top;
  // Innermost suspended frame to resume next (may belong to a nested Task).
  std::coroutine_handle<> resume_point;

  bool done = false;
  bool queued = false;  // present in a ready queue
  // Set by Scheduler::KillProcesses before the frame is destroyed; channels
  // and pools consult it to sweep parked state the victim will never claim.
  bool killed = false;
  // Timers created by WaitUntil that have not fired yet.  Their fire
  // closures hold this ProcessCtx by raw pointer, so PruneCompleted must
  // not release the record while any are outstanding (a killed process can
  // leave its wakeup timer pending).
  int pending_timers = 0;
  std::exception_ptr error;
  uint64_t resumptions = 0;  // context switches into this process
  // Cached trace site for this process's run-slice track (0 = uninterned).
  TraceSiteId trace_site = 0;
};

// Coroutine return type for top-level processes.  A Process is inert until
// handed to Scheduler::Spawn, which takes ownership of the frame.
class Process {
 public:
  struct promise_type {
    ProcessCtx* ctx = nullptr;

    Process get_return_object() {
      return Process(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept;
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() {
      if (ctx != nullptr) {
        ctx->error = std::current_exception();
      } else {
        std::terminate();
      }
    }
  };

  Process(Process&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      if (handle_) {
        handle_.destroy();
      }
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() {
    if (handle_) {
      handle_.destroy();
    }
  }

 private:
  friend class Scheduler;
  explicit Process(std::coroutine_handle<promise_type> h) : handle_(h) {}

  std::coroutine_handle<promise_type> Release() { return std::exchange(handle_, nullptr); }

  std::coroutine_handle<promise_type> handle_;
};

// Lightweight observer of a spawned process, returned by Scheduler::Spawn.
class ProcessHandle {
 public:
  ProcessHandle() = default;

  bool valid() const { return ctx_ != nullptr; }
  bool done() const { return ctx_ != nullptr && ctx_->done; }
  const std::string& name() const { return ctx_->name; }
  uint64_t resumptions() const { return ctx_->resumptions; }

  // Rethrows the process's unhandled exception, if any.
  void CheckError() const {
    if (ctx_ != nullptr && ctx_->error) {
      std::rethrow_exception(ctx_->error);
    }
  }

 private:
  friend class Scheduler;
  explicit ProcessHandle(ProcessCtx* ctx) : ctx_(ctx) {}

  ProcessCtx* ctx_ = nullptr;
};

}  // namespace pandora

#endif  // PANDORA_SRC_RUNTIME_PROCESS_H_
