// Process: the top-level coroutine type for Pandora runtime processes.
//
// Pandora processes mirror the long-lived Occam processes of the paper: each
// board runs a mesh of communicating processes (input handlers, switches,
// buffers, mixers...) that exchange data over rendezvous channels.  A
// Process is a C++20 coroutine spawned onto a Scheduler; it may never
// terminate (device handlers "run for all time", section 3.4) or may finish
// after a bounded job (lifetimes "measured in microseconds").
#ifndef PANDORA_SRC_RUNTIME_PROCESS_H_
#define PANDORA_SRC_RUNTIME_PROCESS_H_

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <string>
#include <utility>

#include "src/buffer/frame_pool.h"
#include "src/runtime/time.h"
#include "src/trace/trace.h"

namespace pandora {

class Scheduler;

// Scheduling priority: the transputer has two hardware priority levels.
// Pandora runs output/device processes at high priority so that under
// overload, back-pressure pushes data loss towards the source (section
// 3.7.1).
enum class Priority : uint8_t {
  kHigh = 0,
  kLow = 1,
};

inline constexpr int kNumPriorities = 2;

// Per-process bookkeeping owned by the Scheduler.  Channel and timer
// awaitables park and ready processes through this record.
//
// Records live in a slab and are recycled the moment a process finishes
// (see Scheduler); `generation` ticks on every recycle so a ProcessHandle
// over a reused slot reads as done rather than aliasing the new occupant.
struct ProcessCtx {
  Scheduler* sched = nullptr;
  std::string name;
  Priority priority = Priority::kLow;

  // Top-level coroutine frame; destroyed by the Scheduler.
  std::coroutine_handle<> top;
  // Innermost suspended frame to resume next (may belong to a nested Task).
  std::coroutine_handle<> resume_point;

  bool done = false;
  bool queued = false;  // present in a ready queue
  // Set by Scheduler::KillProcesses before the frame is destroyed; channels
  // and pools consult it to sweep parked state the victim will never claim.
  bool killed = false;
  bool in_use = false;  // slab slot currently owns a spawned process
  // Timers created by WaitUntil that have not fired yet.  Their fire
  // closures hold this ProcessCtx by raw pointer, so the slot must not be
  // recycled while any are outstanding (a killed process can leave its
  // wakeup timer pending).
  int pending_timers = 0;
  std::exception_ptr error;
  uint64_t resumptions = 0;  // context switches into this process
  uint64_t generation = 0;   // bumped when the slot is recycled
  // Cached trace site for this process's run-slice track (0 = uninterned).
  TraceSiteId trace_site = 0;

  // Intrusive links, owned by the Scheduler: the ready queues, the slab
  // free list, and the active list (kept in spawn order so kill/shutdown
  // sweeps walk processes in the same order the old registry vector did).
  ProcessCtx* next_ready = nullptr;
  ProcessCtx* next_free = nullptr;
  ProcessCtx* prev_active = nullptr;
  ProcessCtx* next_active = nullptr;
};

// Coroutine return type for top-level processes.  A Process is inert until
// handed to Scheduler::Spawn, which takes ownership of the frame.
class Process {
 public:
  struct promise_type {
    ProcessCtx* ctx = nullptr;

    // Coroutine frames come from the frame pool: per-segment forwarder
    // churn (src/net/atm.cc, src/server/switch.cc) spawns one short-lived
    // frame per delivered segment, and recycling keeps that off malloc.
    static void* operator new(std::size_t n) {   // NOLINT(pandora-raw-new-delete)
      return FramePool::Allocate(n);
    }
    static void operator delete(void* p) noexcept {  // NOLINT(pandora-raw-new-delete)
      FramePool::Deallocate(p);
    }

    Process get_return_object() {
      return Process(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept;
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() {
      if (ctx != nullptr) {
        ctx->error = std::current_exception();
      } else {
        std::terminate();
      }
    }
  };

  Process(Process&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      if (handle_) {
        handle_.destroy();
      }
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() {
    if (handle_) {
      handle_.destroy();
    }
  }

 private:
  friend class Scheduler;
  explicit Process(std::coroutine_handle<promise_type> h) : handle_(h) {}

  std::coroutine_handle<promise_type> Release() { return std::exchange(handle_, nullptr); }

  std::coroutine_handle<promise_type> handle_;
};

// Lightweight observer of a spawned process, returned by Scheduler::Spawn.
// Carries the slot's generation at spawn time: once the process finishes
// and the scheduler recycles its ProcessCtx, the handle reads as done and
// every other accessor degrades gracefully instead of aliasing whatever
// process reuses the slot.
class ProcessHandle {
 public:
  ProcessHandle() = default;

  bool valid() const { return ctx_ != nullptr; }
  bool done() const { return ctx_ != nullptr && (stale() || ctx_->done); }
  const std::string& name() const {
    static const std::string kRecycled = "<done>";
    return stale() ? kRecycled : ctx_->name;
  }
  uint64_t resumptions() const { return stale() ? 0 : ctx_->resumptions; }

  // Rethrows the process's unhandled exception, if any.  Errored processes
  // are never recycled while the error is unclaimed, so this survives
  // completion.
  void CheckError() const {
    if (ctx_ != nullptr && !stale() && ctx_->error) {
      std::rethrow_exception(ctx_->error);
    }
  }

 private:
  friend class Scheduler;
  ProcessHandle(ProcessCtx* ctx, uint64_t generation) : ctx_(ctx), generation_(generation) {}

  bool stale() const { return ctx_ == nullptr || ctx_->generation != generation_; }

  ProcessCtx* ctx_ = nullptr;
  uint64_t generation_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_RUNTIME_PROCESS_H_
