// Rendezvous channels, modelled on Occam/transputer channel semantics.
//
// Interprocess communication in Pandora "is by rendezvous between the sender
// and receiver of some data on a unidirectional transputer channel" (paper
// section 3.1): the hardware blocks whichever party arrives first and wakes
// it when the transfer completes.  Channel<T> reproduces this: Send parks
// the sender until a receiver takes the value (or completes instantly if a
// receiver is already parked), and vice versa.
//
// Unlike a strict Occam channel we permit multiple concurrent senders and
// receivers (queued FIFO); Pandora uses this where Occam code would use an
// array of channels plus a replicated ALT.
//
// Implementation note: no address of an awaiter subobject is ever retained
// across a suspension.  A parked sender's value moves INTO the channel's
// (heap-stable) ring before suspending, and a woken receiver claims its
// delivery from the channel by ticket.  GCC 12 materializes co_await
// operand temporaries on the stack and copies them into the coroutine frame
// around the suspension point, so pointers captured into an awaiter during
// await_suspend may not survive to await_resume; values do.
//
// The hot path is allocation-free in steady state: parked parties queue in
// RingQueues (one buffer, doubled only at high water) and deliveries fill
// recycled slots in a ticket table, where a ticket is the slot's index.
#ifndef PANDORA_SRC_RUNTIME_CHANNEL_H_
#define PANDORA_SRC_RUNTIME_CHANNEL_H_

#include <algorithm>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/buffer/ring_queue.h"
#include "src/buffer/small_vec.h"
#include "src/runtime/check.h"
#include "src/runtime/process.h"
#include "src/runtime/scheduler.h"
#include "src/trace/trace.h"

namespace pandora {

// Bounds for a batched drain cycle (DESIGN.md §15).  A drain takes at most
// `max_batch` elements per wakeup, and a consumer that holds a partial batch
// open waits at most `max_hold` of *simulated* time before flushing — so the
// added delay is bounded (P7) and every batch boundary is a pure function of
// simulated time, never of wall-clock interleaving (replay stays bit-exact,
// shards stay thread-count-invariant).  max_hold = 0 means "drain only what
// is already parked": zero added simulated delay, pure wall-clock win.
struct BatchOptions {
  int max_batch = 16;
  Duration max_hold = 0;
};

// Something (an Alt) that wants to learn when a channel becomes readable.
class AltWaiter {
 public:
  virtual void NotifyFromChannel() = 0;

 protected:
  ~AltWaiter() = default;
};

// Type-erased channel interface used by Alt guards.
class ChannelBase {
 public:
  virtual ~ChannelBase() = default;

  // True when a Receive would complete without blocking.
  virtual bool InputReady() const = 0;

  void RegisterAltWaiter(AltWaiter* waiter) { alt_waiters_.push_back(waiter); }
  void UnregisterAltWaiter(AltWaiter* waiter) {
    for (auto it = alt_waiters_.begin(); it != alt_waiters_.end(); ++it) {
      if (*it == waiter) {
        alt_waiters_.erase(it);
        return;
      }
    }
  }

 protected:
  void NotifyAltWaiters() {
    // Notify is idempotent and waiters re-check readiness, so waking all of
    // them is safe even though only one will win the data.  A notified
    // waiter may call UnregisterAltWaiter (on itself or a peer) from inside
    // NotifyFromChannel, which would invalidate iterators into the live
    // vector — so notify from a snapshot, and skip any waiter that was
    // unregistered by an earlier callback in the same round.
    notify_snapshot_ = alt_waiters_;
    for (AltWaiter* waiter : notify_snapshot_) {
      if (IsRegistered(waiter)) {
        waiter->NotifyFromChannel();
      }
    }
    notify_snapshot_.clear();
  }

 private:
  bool IsRegistered(const AltWaiter* waiter) const {
    for (const AltWaiter* registered : alt_waiters_) {
      if (registered == waiter) {
        return true;
      }
    }
    return false;
  }

  std::vector<AltWaiter*> alt_waiters_;
  // Scratch for NotifyAltWaiters; member so repeated notifies reuse capacity.
  std::vector<AltWaiter*> notify_snapshot_;
};

template <typename T>
class Channel : public ChannelBase, public ShutdownParticipant {
 public:
  explicit Channel(Scheduler* sched, std::string name = "chan")
      : sched_(sched), name_(std::move(name)) {
    sched_->RegisterShutdownParticipant(this);
  }

  ~Channel() override { sched_->UnregisterShutdownParticipant(this); }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Scheduler::Shutdown destroys coroutine frames, but values parked here
  // (a ParkedSender's payload, an undelivered ticket in delivered_) live in
  // the channel, not the frame.  If T owns resources — a SegmentRef into a
  // BufferPool — they must be released now, while the pool still exists; the
  // channel object itself may outlive the pool (e.g. a network port's tx
  // channel vs. a device-owned pool).
  void OnSchedulerShutdown() override {
    senders_.clear();
    receivers_.clear();
    delivered_.clear();
    delivered_free_ = kNoFreeSlot;
  }

  // Kill sweep, phase 1 (before the victims' frames die): forget parked
  // receivers that belong to killed processes so nothing delivers to them,
  // and return their tickets.
  void OnProcessesKilled() override {
    receivers_.remove_if([this](const ParkedReceiver& r) {
      if (r.ctx->killed) {
        FreeTicket(r.ticket);
        return true;
      }
      return false;
    });
  }

  // Kill sweep, phase 2 (after the victims' frames died): drop the values
  // killed processes parked here — a killed sender's payload, a delivery a
  // killed receiver was woken for but never resumed to claim.
  void OnKilledFramesDestroyed() override {
    auto drop = [this](T&& value) {
      if (kill_drop_handler_) {
        kill_drop_handler_(std::move(value));
      }
    };
    senders_.remove_if([&drop](ParkedSender& s) {
      if (s.ctx->killed) {
        drop(std::move(s.value));
        return true;
      }
      return false;
    });
    for (size_t ticket = 0; ticket < delivered_.size(); ++ticket) {
      Delivery& d = delivered_[ticket];
      if (d.in_use && d.value.has_value() && d.ctx->killed) {
        drop(std::move(*d.value));
        FreeTicket(ticket);
      }
    }
  }

  // Invoked for each parked value dropped by a kill sweep.  Channels whose
  // payload carries out-of-band ownership (the pool handoff channel passes
  // raw slot indices whose refcount was already transferred to the doomed
  // receiver) use this to reclaim it; RAII payloads need no handler.
  // Cold-path state, sanctioned exception to the no-std::function rule.
  void set_kill_drop_handler(std::function<void(T&&)> handler) {
    kill_drop_handler_ = std::move(handler);
  }

  bool InputReady() const override { return !senders_.empty(); }
  size_t waiting_senders() const { return senders_.size(); }
  size_t waiting_receivers() const { return receivers_.size(); }
  const std::string& name() const { return name_; }
  uint64_t transfers() const { return transfers_; }

  struct SendAwaiter {
    Channel* channel;
    T value;

    bool await_ready() {
      if (!channel->receivers_.empty()) {
        // A receiver is already parked: deliver into the channel's inbox
        // under its ticket and wake it.  Rendezvous complete; the sender
        // continues without suspending.
        ParkedReceiver receiver = channel->receivers_.front();
        channel->receivers_.pop_front();
        channel->delivered_[receiver.ticket].value.emplace(std::move(value));
        ++channel->transfers_;
        channel->sched_->Ready(receiver.ctx);
        PANDORA_TRACE_RENDEZVOUS_END(channel->sched_->trace(), channel->trace_site_,
                                     receiver.trace_id);
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ProcessCtx* ctx = channel->sched_->current();
      PANDORA_DCHECK(ctx != nullptr, "channel Send awaited outside a process");
      ctx->resume_point = h;
      // The wait span's async id parks in the channel's ring alongside the
      // value (heap-stable; awaiter subobjects may relocate).
      uint64_t trace_id = 0;
      PANDORA_TRACE_RENDEZVOUS_BEGIN(channel->sched_->trace(), channel->trace_site_,
                                     channel->name_, trace_id);
      // The value parks INSIDE the channel (heap-stable), never by address
      // into this possibly-relocating awaiter.
      channel->senders_.push_back(ParkedSender{ctx, std::move(value), trace_id});
      // A parked sender makes the channel "ready" for any waiting Alt.  The
      // sender stays parked until an actual Receive takes the value, so an
      // Alt that loses the race simply re-checks and finds nothing.
      channel->NotifyAltWaiters();
    }
    void await_resume() const {}
  };

  struct RecvAwaiter {
    Channel* channel;
    // Fast path (no suspension): the value rides in the awaiter, which is
    // safe because await_ready and await_resume run on the same object when
    // no suspension intervenes.
    std::optional<T> immediate;
    uint64_t ticket = 0;

    bool await_ready() {
      if (!channel->senders_.empty()) {
        ParkedSender& sender = channel->senders_.front();
        immediate.emplace(std::move(sender.value));
        ++channel->transfers_;
        channel->sched_->Ready(sender.ctx);
        PANDORA_TRACE_RENDEZVOUS_END(channel->sched_->trace(), channel->trace_site_,
                                     sender.trace_id);
        channel->senders_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ProcessCtx* ctx = channel->sched_->current();
      PANDORA_DCHECK(ctx != nullptr, "channel Receive awaited outside a process");
      ctx->resume_point = h;
      ticket = channel->AllocTicket(ctx);
      uint64_t trace_id = 0;
      PANDORA_TRACE_RENDEZVOUS_BEGIN(channel->sched_->trace(), channel->trace_site_,
                                     channel->name_, trace_id);
      channel->receivers_.push_back(ParkedReceiver{ctx, ticket, trace_id});
    }
    T await_resume() {
      if (immediate.has_value()) {
        return std::move(*immediate);
      }
      // Parked path: claim the delivery by ticket (a value, so it survives
      // any frame relocation of this awaiter).
      Delivery& d = channel->delivered_[ticket];
      PANDORA_CHECK(d.in_use && d.value.has_value());
      T value = std::move(*d.value);
      channel->FreeTicket(ticket);
      return value;
    }
  };

  // co_await channel.Send(v): rendezvous write.
  SendAwaiter Send(T value) { return SendAwaiter{this, std::move(value)}; }

  // co_await channel.Receive(): rendezvous read.
  RecvAwaiter Receive() { return RecvAwaiter{this, std::nullopt, 0}; }

  // Non-blocking send: succeeds only if a receiver is already parked.
  bool TrySend(T value) {
    if (receivers_.empty()) {
      return false;
    }
    ParkedReceiver receiver = receivers_.front();
    receivers_.pop_front();
    delivered_[receiver.ticket].value.emplace(std::move(value));
    ++transfers_;
    sched_->Ready(receiver.ctx);
    PANDORA_TRACE_RENDEZVOUS_END(sched_->trace(), trace_site_, receiver.trace_id);
    return true;
  }

  // Non-blocking receive: succeeds only if a sender is already parked.
  std::optional<T> TryReceive() {
    if (senders_.empty()) {
      return std::nullopt;
    }
    uint64_t trace_id = senders_.front().trace_id;
    std::optional<T> value(std::move(senders_.front().value));
    sched_->Ready(senders_.front().ctx);
    senders_.pop_front();
    ++transfers_;
    PANDORA_TRACE_RENDEZVOUS_END(sched_->trace(), trace_site_, trace_id);
    return value;
  }

  // Batched drain (DESIGN.md §15): moves up to `max` already-parked sender
  // values into `out` (FIFO, appended after any existing contents) and wakes
  // each sender, without suspending.  Returns the number drained; 0 when no
  // sender is parked.  Elements beyond the first are counted as batched
  // events — each replaced a whole dispatch in the one-segment-per-wakeup
  // engine — so events()/s stays comparable across engines.
  template <std::size_t N>
  int TryReceiveBatch(SmallVec<T, N>& out, int max) {
    int drained = 0;
    while (drained < max && !senders_.empty()) {
      ParkedSender& sender = senders_.front();
      out.push_back(std::move(sender.value));
      sched_->Ready(sender.ctx);
      PANDORA_TRACE_RENDEZVOUS_END(sched_->trace(), trace_site_, sender.trace_id);
      senders_.pop_front();
      ++transfers_;
      ++drained;
    }
    if (drained > 1) {
      sched_->CountBatchedEvents(static_cast<uint64_t>(drained - 1));
    }
    return drained;
  }

  // Batched delivery: hands a prefix of `values` to already-parked receivers
  // (FIFO, at most `max`; max < 0 means all of `values`), waking each,
  // without suspending.  The consumed prefix is popped from `values`; the
  // unconsumed tail stays, in order, for the caller's next cycle (typically
  // a blocking Send per remaining element).  Returns the number delivered.
  template <std::size_t N>
  int TrySendBatch(SmallVec<T, N>& values, int max = -1) {
    const int limit = max < 0 ? static_cast<int>(values.size())
                              : std::min(max, static_cast<int>(values.size()));
    int sent = 0;
    while (sent < limit && !receivers_.empty()) {
      ParkedReceiver receiver = receivers_.front();
      receivers_.pop_front();
      delivered_[receiver.ticket].value.emplace(std::move(values[sent]));
      ++transfers_;
      sched_->Ready(receiver.ctx);
      PANDORA_TRACE_RENDEZVOUS_END(sched_->trace(), trace_site_, receiver.trace_id);
      ++sent;
    }
    values.pop_front_n(static_cast<std::size_t>(sent));
    if (sent > 1) {
      sched_->CountBatchedEvents(static_cast<uint64_t>(sent - 1));
    }
    return sent;
  }

 private:
  struct ParkedSender {
    ProcessCtx* ctx;
    T value;
    uint64_t trace_id = 0;  // open rendezvous-wait span (0 = untraced)
  };
  struct ParkedReceiver {
    ProcessCtx* ctx;
    uint64_t ticket;
    uint64_t trace_id = 0;
  };
  // One slot of the ticket table: the receiver it belongs to, and the value
  // once a sender delivered.  Slots recycle through a free list; a ticket
  // is simply the slot's index, allocated when the receiver parks.
  struct Delivery {
    ProcessCtx* ctx = nullptr;
    std::optional<T> value;
    uint32_t next_free = 0;
    bool in_use = false;
  };

  static constexpr uint32_t kNoFreeSlot = 0xffffffffu;

  uint64_t AllocTicket(ProcessCtx* ctx) {
    uint32_t index;
    if (delivered_free_ != kNoFreeSlot) {
      index = delivered_free_;
      delivered_free_ = delivered_[index].next_free;
    } else {
      index = static_cast<uint32_t>(delivered_.size());
      delivered_.emplace_back();
    }
    Delivery& d = delivered_[index];
    d.ctx = ctx;
    d.in_use = true;
    PANDORA_DCHECK(!d.value.has_value());
    return index;
  }

  void FreeTicket(uint64_t ticket) {
    Delivery& d = delivered_[ticket];
    d.ctx = nullptr;
    d.value.reset();
    d.in_use = false;
    d.next_free = delivered_free_;
    delivered_free_ = static_cast<uint32_t>(ticket);
  }

  Scheduler* sched_;
  std::string name_;
  RingQueue<ParkedSender> senders_;
  RingQueue<ParkedReceiver> receivers_;
  // Ticket table: values handed to woken-but-not-yet-resumed receivers.
  std::vector<Delivery> delivered_;
  uint32_t delivered_free_ = kNoFreeSlot;
  std::function<void(T&&)> kill_drop_handler_;  // NOLINT(pandora-std-function-member): cold path
  uint64_t transfers_ = 0;
  // Cached trace site for this channel's rendezvous-wait track.
  TraceSiteId trace_site_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_SRC_RUNTIME_CHANNEL_H_
