// Task<T>: nested awaitable coroutine for decomposing processes.
//
// Occam processes are built by composing simpler processes (section 3.4:
// "many of these processes will be found to contain several long-lived Occam
// processes inside").  Task<T> is the sequential-composition half of that:
// a process can factor work into coroutine subroutines that themselves await
// channels and timers.  Completion returns control to the awaiting frame by
// symmetric transfer, so nesting costs no scheduler round-trip.
#ifndef PANDORA_SRC_RUNTIME_TASK_H_
#define PANDORA_SRC_RUNTIME_TASK_H_

#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "src/buffer/frame_pool.h"

namespace pandora {

template <typename T>
class [[nodiscard]] Task;

namespace task_internal {

struct FinalAwaiter {
  bool await_ready() noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
    // Resume whoever co_awaited this task.  A task is always awaited before
    // it runs (lazy start), so continuation is never null here.
    return h.promise().continuation;
  }
  void await_resume() noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  // Task frames recycle through the frame pool (inherited by every derived
  // promise): Alt::Select and other per-event tasks spawn one frame per
  // call, which must stay off malloc in the steady state.
  static void* operator new(std::size_t n) {   // NOLINT(pandora-raw-new-delete)
    return FramePool::Allocate(n);
  }
  static void operator delete(void* p) noexcept {  // NOLINT(pandora-raw-new-delete)
    FramePool::Deallocate(p);
  }

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace task_internal

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : task_internal::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) {
        handle_.destroy();
      }
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Task() {
    if (handle_) {
      handle_.destroy();
    }
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    return handle_;  // start the task body
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.error) {
      std::rethrow_exception(p.error);
    }
    return std::move(*p.value);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : task_internal::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) {
        handle_.destroy();
      }
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Task() {
    if (handle_) {
      handle_.destroy();
    }
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    return handle_;
  }
  void await_resume() {
    if (handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace pandora

#endif  // PANDORA_SRC_RUNTIME_TASK_H_
