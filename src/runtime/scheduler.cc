#include "src/runtime/scheduler.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "src/runtime/check.h"

namespace pandora {

void Process::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept {
  ProcessCtx* ctx = h.promise().ctx;
  ctx->sched->OnProcessDone(ctx);
}

Scheduler::Scheduler() : trace_(std::make_unique<TraceRecorder>()) {
  trace_->BindClock(&now_);
  // Opt-in tracing without touching code: PANDORA_TRACE=1 enables the
  // recorder for every scheduler in the process; PANDORA_TRACE_EVENTS caps
  // the event reservation.
  const char* env = std::getenv("PANDORA_TRACE");
  if (env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0')) {
    size_t capacity = TraceRecorder::kDefaultCapacity;
    if (const char* cap_env = std::getenv("PANDORA_TRACE_EVENTS")) {
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(cap_env, &end, 10);
      if (end != cap_env && parsed > 0) {
        capacity = static_cast<size_t>(parsed);
      }
    }
    trace_->Enable(capacity);
  }
}

Scheduler::~Scheduler() { Shutdown(); }

void Scheduler::Shutdown() {
  shutting_down_ = true;
  // Destroying a frame runs destructors of objects held inside it (e.g.
  // SegmentRefs, which return buffers to their pool); Ready() is a no-op
  // during shutdown so nothing gets queued.
  for (auto& ctx : processes_) {
    if (!ctx->done && ctx->top) {
      ctx->top.destroy();
      ctx->top = nullptr;
      ctx->done = true;
      --live_processes_;
    }
  }
  for (auto& queue : ready_) {
    queue.clear();
  }
  while (!timers_.empty()) {
    timers_.pop();
  }
  // Frames are gone, but rendezvous values parked inside channels are not:
  // they live in the channel object, not the coroutine frame, and may hold
  // SegmentRefs into pools that die before the channel does.  Drain them now,
  // while every pool is still alive.  Iterate over a snapshot: dropping a
  // parked value can destroy another channel (e.g. one owned by a parked
  // object), which unregisters mid-walk.
  std::vector<ShutdownParticipant*> snapshot = shutdown_participants_;
  for (ShutdownParticipant* participant : snapshot) {
    if (std::find(shutdown_participants_.begin(), shutdown_participants_.end(), participant) !=
        shutdown_participants_.end()) {
      participant->OnSchedulerShutdown();
    }
  }
}

void Scheduler::RegisterShutdownParticipant(ShutdownParticipant* participant) {
  shutdown_participants_.push_back(participant);
}

void Scheduler::UnregisterShutdownParticipant(ShutdownParticipant* participant) {
  auto it = std::find(shutdown_participants_.begin(), shutdown_participants_.end(), participant);
  if (it != shutdown_participants_.end()) {
    *it = shutdown_participants_.back();
    shutdown_participants_.pop_back();
  }
}

ProcessHandle Scheduler::Spawn(Process process, std::string name, Priority priority) {
  auto handle = process.Release();
  auto ctx = std::make_unique<ProcessCtx>();
  ctx->sched = this;
  ctx->name = std::move(name);
  ctx->priority = priority;
  ctx->top = handle;
  ctx->resume_point = handle;
  handle.promise().ctx = ctx.get();

  ProcessCtx* raw = ctx.get();
  processes_.push_back(std::move(ctx));
  ++live_processes_;
  Ready(raw);
  return ProcessHandle(raw);
}

void Scheduler::Ready(ProcessCtx* ctx) {
  PANDORA_CHECK(ctx != nullptr);
  if (shutting_down_ || ctx->done || ctx->killed || ctx->queued) {
    return;
  }
  ctx->queued = true;
  ready_[static_cast<int>(ctx->priority)].push_back(ctx);
}

TimerHandle Scheduler::AddTimer(Time when, std::function<void()> fire) {
  auto record = std::make_shared<TimerHandle::Record>();
  record->when = when;
  record->seq = timer_seq_++;
  record->fire = std::move(fire);
  timers_.push(record);
  return TimerHandle(record);
}

size_t Scheduler::PruneCompleted() {
  size_t before = processes_.size();
  std::erase_if(processes_, [](const std::unique_ptr<ProcessCtx>& ctx) {
    // A killed process can leave its WaitUntil wakeup timer pending; the
    // timer closure holds the ctx raw, so the record stays until it fires.
    return ctx->done && !ctx->error && ctx->pending_timers == 0;
  });
  return before - processes_.size();
}

size_t Scheduler::KillProcesses(const std::function<bool(const ProcessCtx&)>& predicate) {
  // Mark every victim first: the sweep hooks and the destructors that run
  // during frame teardown identify doomed processes by ctx->killed.
  std::vector<ProcessCtx*> victims;
  for (auto& ctx : processes_) {
    if (!ctx->done && ctx->top && predicate(*ctx)) {
      PANDORA_CHECK(ctx.get() != current_, "a process cannot kill itself");
      ctx->killed = true;
      victims.push_back(ctx.get());
    }
  }
  if (victims.empty()) {
    return 0;
  }
  // Phase 1: pull killed receivers out of every channel while no frame has
  // been touched yet.  Once they are gone, a DecRef running inside a frame
  // destructor below cannot hand a buffer to a process that will never
  // resume to claim it.  Snapshot: destroying frames can destroy channels.
  std::vector<ShutdownParticipant*> snapshot = shutdown_participants_;
  for (ShutdownParticipant* participant : snapshot) {
    if (std::find(shutdown_participants_.begin(), shutdown_participants_.end(), participant) !=
        shutdown_participants_.end()) {
      participant->OnProcessesKilled();
    }
  }
  // Destroy the victims' frames.  This runs the destructors of everything
  // the frame holds: SegmentRefs go back to their pools, Alts unregister
  // from their guard channels, nested Task frames cascade.
  for (ProcessCtx* ctx : victims) {
    ctx->top.destroy();
    ctx->top = nullptr;
    ctx->done = true;
    --live_processes_;
  }
  for (auto& queue : ready_) {
    std::erase_if(queue, [](const ProcessCtx* ctx) { return ctx->killed; });
  }
  for (ProcessCtx* ctx : victims) {
    ctx->queued = false;
  }
  // Phase 2: drop the values the victims parked (sender payloads, unclaimed
  // deliveries).  Pools are still alive, so dropping a SegmentRef here is a
  // normal DecRef — and with the killed receivers already removed it can
  // only hand off to live requesters.
  snapshot = shutdown_participants_;
  for (ShutdownParticipant* participant : snapshot) {
    if (std::find(shutdown_participants_.begin(), shutdown_participants_.end(), participant) !=
        shutdown_participants_.end()) {
      participant->OnKilledFramesDestroyed();
    }
  }
  return victims.size();
}

void Scheduler::OnProcessDone(ProcessCtx* ctx) {
  ctx->done = true;
  --live_processes_;
}

ProcessCtx* Scheduler::PopReady() {
  for (auto& queue : ready_) {
    if (!queue.empty()) {
      ProcessCtx* ctx = queue.front();
      queue.pop_front();
      ctx->queued = false;
      return ctx;
    }
  }
  return nullptr;
}

bool Scheduler::DispatchOne() {
  ProcessCtx* ctx = PopReady();
  if (ctx == nullptr) {
    return false;
  }
  current_ = ctx;
  ++context_switches_;
  ++ctx->resumptions;
  std::coroutine_handle<> h = ctx->resume_point;
  PANDORA_CHECK(h != nullptr, "readied process has no resume point");
  ctx->resume_point = nullptr;
  // Run slices bracket the resume on the process's own track; nested trace
  // events recorded from inside the slice land between B and E at the same
  // simulated timestamp, which the stable export sort preserves.
  PANDORA_TRACE_BEGIN(trace_.get(), ctx->trace_site, ctx->name);
  h.resume();
  current_ = nullptr;
  PANDORA_TRACE_END(trace_.get(), ctx->trace_site);
  if ((context_switches_ & 63) == 0) {
    PANDORA_TRACE_COUNTER(trace_.get(), trace_cs_site_, "sched.context_switches",
                          static_cast<int64_t>(context_switches_));
  }
  if (ctx->done && ctx->top) {
    ctx->top.destroy();
    ctx->top = nullptr;
    MaybeRethrow(ctx);
  }
  return true;
}

bool Scheduler::AdvanceToNextTimer(Time limit) {
  while (!timers_.empty() && timers_.top()->cancelled) {
    timers_.pop();
  }
  if (timers_.empty() || timers_.top()->when > limit) {
    return false;
  }
  auto record = timers_.top();
  timers_.pop();
  if (record->when > now_) {
    now_ = record->when;
  }
  record->fired = true;
  record->fire();
  return true;
}

void Scheduler::MaybeRethrow(ProcessCtx* ctx) {
  if (rethrow_process_errors_ && ctx->error) {
    std::exception_ptr error = std::exchange(ctx->error, nullptr);
    std::rethrow_exception(error);
  }
}

void Scheduler::RunUntilQuiescent() {
  for (;;) {
    while (DispatchOne()) {
    }
    if (!AdvanceToNextTimer(kNever)) {
      return;
    }
  }
}

void Scheduler::RunUntil(Time limit) {
  for (;;) {
    while (DispatchOne()) {
    }
    if (!AdvanceToNextTimer(limit)) {
      break;
    }
  }
  if (now_ < limit) {
    now_ = limit;
  }
}

}  // namespace pandora
