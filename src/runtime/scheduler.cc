#include "src/runtime/scheduler.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "src/runtime/check.h"

namespace pandora {

void Process::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept {
  ProcessCtx* ctx = h.promise().ctx;
  ctx->sched->OnProcessDone(ctx);
}

Scheduler::Scheduler() : trace_(std::make_unique<TraceRecorder>()) {
  trace_->BindClock(&now_);
  // Opt-in tracing without touching code: PANDORA_TRACE=1 enables the
  // recorder for every scheduler in the process; PANDORA_TRACE_EVENTS caps
  // the event reservation.
  const char* env = std::getenv("PANDORA_TRACE");
  if (env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0')) {
    size_t capacity = TraceRecorder::kDefaultCapacity;
    if (const char* cap_env = std::getenv("PANDORA_TRACE_EVENTS")) {
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(cap_env, &end, 10);
      if (end != cap_env && parsed > 0) {
        capacity = static_cast<size_t>(parsed);
      }
    }
    trace_->Enable(capacity);
  }
}

Scheduler::~Scheduler() { Shutdown(); }

void Scheduler::Shutdown() {
  shutting_down_ = true;
  // Destroying a frame runs destructors of objects held inside it (e.g.
  // SegmentRefs, which return buffers to their pool); Ready() is a no-op
  // during shutdown so nothing gets queued.  Walk the active list in spawn
  // order, the order the old registry vector used.
  ProcessCtx* ctx = active_head_;
  while (ctx != nullptr) {
    ProcessCtx* next = ctx->next_active;
    if (!ctx->done && ctx->top) {
      ctx->top.destroy();
      ctx->top = nullptr;
      ctx->done = true;
      --live_processes_;
    }
    ctx = next;
  }
  for (int p = 0; p < kNumPriorities; ++p) {
    ProcessCtx* queued = ready_head_[p];
    while (queued != nullptr) {
      ProcessCtx* next = queued->next_ready;
      queued->queued = false;
      queued->next_ready = nullptr;
      queued = next;
    }
    ready_head_[p] = ready_tail_[p] = nullptr;
  }
  wheel_.Clear();
  // Frames are gone, but rendezvous values parked inside channels are not:
  // they live in the channel object, not the coroutine frame, and may hold
  // SegmentRefs into pools that die before the channel does.  Drain them now,
  // while every pool is still alive.  Iterate over a snapshot: dropping a
  // parked value can destroy another channel (e.g. one owned by a parked
  // object), which unregisters mid-walk.
  std::vector<ShutdownParticipant*> snapshot = shutdown_participants_;
  for (ShutdownParticipant* participant : snapshot) {
    if (std::find(shutdown_participants_.begin(), shutdown_participants_.end(), participant) !=
        shutdown_participants_.end()) {
      participant->OnSchedulerShutdown();
    }
  }
}

void Scheduler::RegisterShutdownParticipant(ShutdownParticipant* participant) {
  shutdown_participants_.push_back(participant);
}

void Scheduler::UnregisterShutdownParticipant(ShutdownParticipant* participant) {
  auto it = std::find(shutdown_participants_.begin(), shutdown_participants_.end(), participant);
  if (it != shutdown_participants_.end()) {
    *it = shutdown_participants_.back();
    shutdown_participants_.pop_back();
  }
}

ProcessCtx* Scheduler::AllocCtx() {
  ProcessCtx* ctx;
  if (free_ctx_ != nullptr) {
    ctx = free_ctx_;
    free_ctx_ = ctx->next_free;
    ctx->next_free = nullptr;
  } else {
    process_slab_.emplace_back();
    ctx = &process_slab_.back();
  }
  PANDORA_DCHECK(!ctx->in_use && ctx->pending_timers == 0);
  ctx->in_use = true;
  // Append to the active list: spawn order, which kill/shutdown sweeps walk.
  ctx->prev_active = active_tail_;
  ctx->next_active = nullptr;
  if (active_tail_ != nullptr) {
    active_tail_->next_active = ctx;
  } else {
    active_head_ = ctx;
  }
  active_tail_ = ctx;
  ++in_use_processes_;
  return ctx;
}

void Scheduler::RecycleCtx(ProcessCtx* ctx) {
  PANDORA_DCHECK(ctx->in_use && ctx->done && ctx->pending_timers == 0);
  if (ctx->prev_active != nullptr) {
    ctx->prev_active->next_active = ctx->next_active;
  } else {
    active_head_ = ctx->next_active;
  }
  if (ctx->next_active != nullptr) {
    ctx->next_active->prev_active = ctx->prev_active;
  } else {
    active_tail_ = ctx->prev_active;
  }
  ctx->prev_active = ctx->next_active = nullptr;
  // Outstanding ProcessHandles see the bump and report done.
  ++ctx->generation;
  ctx->in_use = false;
  ctx->done = false;
  ctx->queued = false;
  ctx->killed = false;
  ctx->error = nullptr;
  ctx->top = nullptr;
  ctx->resume_point = nullptr;
  ctx->resumptions = 0;
  ctx->trace_site = 0;
  // ctx->name keeps its capacity for the next occupant's assign().
  ctx->next_free = free_ctx_;
  free_ctx_ = ctx;
  --in_use_processes_;
}

ProcessHandle Scheduler::Spawn(Process process, std::string_view name, Priority priority) {
  auto handle = process.Release();
  ProcessCtx* ctx = AllocCtx();
  ctx->sched = this;
  ctx->name.assign(name.data(), name.size());
  ctx->priority = priority;
  ctx->top = handle;
  ctx->resume_point = handle;
  handle.promise().ctx = ctx;

  ++live_processes_;
  Ready(ctx);
  return ProcessHandle(ctx, ctx->generation);
}

void Scheduler::Ready(ProcessCtx* ctx) {
  PANDORA_CHECK(ctx != nullptr);
  if (shutting_down_ || ctx->done || ctx->killed || ctx->queued) {
    return;
  }
  ctx->queued = true;
  ctx->next_ready = nullptr;
  const int p = static_cast<int>(ctx->priority);
  if (ready_tail_[p] != nullptr) {
    ready_tail_[p]->next_ready = ctx;
  } else {
    ready_head_[p] = ctx;
  }
  ready_tail_[p] = ctx;
}

size_t Scheduler::KillProcesses(const std::function<bool(const ProcessCtx&)>& predicate) {
  // Mark every victim first: the sweep hooks and the destructors that run
  // during frame teardown identify doomed processes by ctx->killed.  The
  // active list is in spawn order, matching the old registry order.
  std::vector<ProcessCtx*> victims;
  for (ProcessCtx* ctx = active_head_; ctx != nullptr; ctx = ctx->next_active) {
    if (!ctx->done && ctx->top && predicate(*ctx)) {
      PANDORA_CHECK(ctx != current_, "a process cannot kill itself");
      ctx->killed = true;
      victims.push_back(ctx);
    }
  }
  if (victims.empty()) {
    return 0;
  }
  // Phase 1: pull killed receivers out of every channel while no frame has
  // been touched yet.  Once they are gone, a DecRef running inside a frame
  // destructor below cannot hand a buffer to a process that will never
  // resume to claim it.  Snapshot: destroying frames can destroy channels.
  std::vector<ShutdownParticipant*> snapshot = shutdown_participants_;
  for (ShutdownParticipant* participant : snapshot) {
    if (std::find(shutdown_participants_.begin(), shutdown_participants_.end(), participant) !=
        shutdown_participants_.end()) {
      participant->OnProcessesKilled();
    }
  }
  // Destroy the victims' frames.  This runs the destructors of everything
  // the frame holds: SegmentRefs go back to their pools, Alts unregister
  // from their guard channels, nested Task frames cascade.
  for (ProcessCtx* ctx : victims) {
    ctx->top.destroy();
    ctx->top = nullptr;
    ctx->done = true;
    --live_processes_;
  }
  for (int p = 0; p < kNumPriorities; ++p) {
    ProcessCtx* kept_head = nullptr;
    ProcessCtx* kept_tail = nullptr;
    ProcessCtx* queued = ready_head_[p];
    while (queued != nullptr) {
      ProcessCtx* next = queued->next_ready;
      queued->next_ready = nullptr;
      if (queued->killed) {
        queued->queued = false;
      } else if (kept_tail != nullptr) {
        kept_tail->next_ready = queued;
        kept_tail = queued;
      } else {
        kept_head = kept_tail = queued;
      }
      queued = next;
    }
    ready_head_[p] = kept_head;
    ready_tail_[p] = kept_tail;
  }
  // Phase 2: drop the values the victims parked (sender payloads, unclaimed
  // deliveries).  Pools are still alive, so dropping a SegmentRef here is a
  // normal DecRef — and with the killed receivers already removed it can
  // only hand off to live requesters.
  snapshot = shutdown_participants_;
  for (ShutdownParticipant* participant : snapshot) {
    if (std::find(shutdown_participants_.begin(), shutdown_participants_.end(), participant) !=
        shutdown_participants_.end()) {
      participant->OnKilledFramesDestroyed();
    }
  }
  // Victims with a pending wakeup timer stay pinned until it fires (the
  // timer closure holds the ctx raw); the rest recycle now.
  const size_t killed = victims.size();
  for (ProcessCtx* ctx : victims) {
    if (ctx->pending_timers == 0 && !ctx->error) {
      RecycleCtx(ctx);
    }
  }
  return killed;
}

void Scheduler::OnProcessDone(ProcessCtx* ctx) {
  ctx->done = true;
  --live_processes_;
}

void Scheduler::OnWaitTimerFired(ProcessCtx* ctx) {
  --ctx->pending_timers;
  if (ctx->done) {
    // Killed while its wakeup was pending: the last outstanding timer
    // releases the slab slot.
    if (ctx->in_use && ctx->pending_timers == 0 && !ctx->error) {
      RecycleCtx(ctx);
    }
    return;
  }
  Ready(ctx);
}

ProcessCtx* Scheduler::PopReady() {
  for (int p = 0; p < kNumPriorities; ++p) {
    ProcessCtx* ctx = ready_head_[p];
    if (ctx != nullptr) {
      ready_head_[p] = ctx->next_ready;
      if (ready_head_[p] == nullptr) {
        ready_tail_[p] = nullptr;
      }
      ctx->next_ready = nullptr;
      ctx->queued = false;
      return ctx;
    }
  }
  return nullptr;
}

bool Scheduler::DispatchOne() {
  ProcessCtx* ctx = PopReady();
  if (ctx == nullptr) {
    return false;
  }
  current_ = ctx;
  ++context_switches_;
  ++ctx->resumptions;
  std::coroutine_handle<> h = ctx->resume_point;
  PANDORA_CHECK(h != nullptr, "readied process has no resume point");
  ctx->resume_point = nullptr;
  // Run slices bracket the resume on the process's own track; nested trace
  // events recorded from inside the slice land between B and E at the same
  // simulated timestamp, which the stable export sort preserves.
  PANDORA_TRACE_BEGIN(trace_.get(), ctx->trace_site, ctx->name);
  h.resume();
  current_ = nullptr;
  PANDORA_TRACE_END(trace_.get(), ctx->trace_site);
  if ((context_switches_ & 63) == 0) {
    PANDORA_TRACE_COUNTER(trace_.get(), trace_cs_site_, "sched.context_switches",
                          static_cast<int64_t>(context_switches_));
  }
  if (ctx->done && ctx->top) {
    ctx->top.destroy();
    ctx->top = nullptr;
    if (ctx->error) {
      if (rethrow_process_errors_) {
        std::exception_ptr error = std::exchange(ctx->error, nullptr);
        if (ctx->pending_timers == 0) {
          RecycleCtx(ctx);
        }
        std::rethrow_exception(error);
      }
      // Error kept for ProcessHandle::CheckError; the slot stays in use.
    } else if (ctx->pending_timers == 0) {
      // The common exit: the record returns to the slab immediately, no
      // manual PruneCompleted required.
      RecycleCtx(ctx);
    }
  }
  return true;
}

bool Scheduler::AdvanceToNextTimer(Time limit) {
  TimerWheel::Due due = wheel_.PopDue(limit);
  if (!due.found) {
    return false;
  }
  if (due.when > now_) {
    now_ = due.when;
  }
  due.fire();
  return true;
}

void Scheduler::RunUntilQuiescent() {
  for (;;) {
    while (DispatchOne()) {
    }
    if (!AdvanceToNextTimer(kNever)) {
      return;
    }
  }
}

void Scheduler::RunUntil(Time limit) {
  for (;;) {
    while (DispatchOne()) {
    }
    if (!AdvanceToNextTimer(limit)) {
      break;
    }
  }
  if (now_ < limit) {
    now_ = limit;
  }
}

}  // namespace pandora
