// Alt: prioritized alternation over channel inputs, timeouts and skip.
//
// Models the Occam 2 PRI ALT construct (paper section 3.1): a process can
// wait on several inputs at once, and "the alternatives in the clause can be
// prioritised so that important channels (such as those receiving commands)
// cannot be ignored even if other alternatives are always ready".  This is
// the mechanism behind Principle 4 (command priority): every Pandora process
// lists its command channel as the first guard.
//
// Usage:
//   Alt alt(sched);
//   alt.OnReceive(command_channel)   // guard 0 = highest priority
//      .OnReceive(data_channel)      // guard 1
//      .OnTimeoutAfter(Millis(2));   // guard 2
//   int chosen = co_await alt.Select();
//   if (chosen == 0) { Command c = co_await command_channel.Receive(); ... }
//
// Select returns the index of a ready guard; the caller then performs the
// actual Receive, which completes immediately because the peer sender stays
// parked on the channel until the data is taken.
#ifndef PANDORA_SRC_RUNTIME_ALT_H_
#define PANDORA_SRC_RUNTIME_ALT_H_

#include <coroutine>

#include "src/buffer/small_vec.h"
#include "src/runtime/channel.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/task.h"
#include "src/runtime/time.h"

namespace pandora {

class Alt : public AltWaiter {
 public:
  explicit Alt(Scheduler* sched) : sched_(sched) {}

  // An Alt lives in a coroutine frame; if that frame is destroyed while
  // parked in Select (Scheduler::KillProcesses — a crashing box), the guard
  // channels still hold a registration and the timeout timer still holds a
  // raw pointer to this object.  Undo both.  Guard channels are owned by
  // boards, not frames, so they outlive the Alt here.
  ~Alt() {
    if (waiting_ctx_ != nullptr) {
      for (const Guard& guard : guards_) {
        if (guard.kind == Guard::kChannel) {
          guard.channel->UnregisterAltWaiter(this);
        }
      }
      timeout_timer_.Cancel();
      waiting_ctx_ = nullptr;
    }
  }

  Alt(const Alt&) = delete;
  Alt& operator=(const Alt&) = delete;

  // Guards are checked in the order added; index 0 has highest priority.
  Alt& OnReceive(ChannelBase& channel) {
    guards_.push_back(Guard{Guard::kChannel, &channel, kNever});
    return *this;
  }
  Alt& OnTimeout(Time deadline) {
    guards_.push_back(Guard{Guard::kTimeout, nullptr, deadline});
    return *this;
  }
  Alt& OnTimeoutAfter(Duration d) { return OnTimeout(sched_->now() + d); }
  // A skip guard is always ready; it makes Select non-blocking.
  Alt& OnSkip() {
    guards_.push_back(Guard{Guard::kSkip, nullptr, kNever});
    return *this;
  }

  // Waits until some guard is ready; returns the index of the
  // highest-priority ready guard.
  Task<int> Select();

  // AltWaiter:
  void NotifyFromChannel() override {
    if (notified_ || waiting_ctx_ == nullptr) {
      return;
    }
    notified_ = true;
    sched_->Ready(waiting_ctx_);
  }

 private:
  struct Guard {
    enum Kind { kChannel, kTimeout, kSkip } kind;
    ChannelBase* channel;
    Time deadline;
  };

  // Index of the highest-priority ready guard, or -1.
  int ScanReady() const;

  // State mutated across the suspension lives in the Alt object (a named
  // frame local of the selecting process), never in the awaiter: GCC 12 can
  // relocate co_await operand temporaries between suspend and resume.
  struct SuspendOp {
    Alt* alt;

    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume();
  };

  Scheduler* sched_;
  // Guard lists are tiny and rebuilt per select; inline storage keeps them
  // out of the heap (eight guards covers every Alt in the codebase except
  // wide switch fan-outs, which spill and pay one allocation).
  SmallVec<Guard, 8> guards_;
  ProcessCtx* waiting_ctx_ = nullptr;
  TimerHandle timeout_timer_;
  bool notified_ = false;
};

}  // namespace pandora

#endif  // PANDORA_SRC_RUNTIME_ALT_H_
