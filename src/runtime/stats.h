// Small numeric accumulators used by metrics throughout the system.
#ifndef PANDORA_SRC_RUNTIME_STATS_H_
#define PANDORA_SRC_RUNTIME_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace pandora {

// Streaming min/mean/max/stddev accumulator.  Variance uses Welford's
// online algorithm: the naive sum_sq/n - mean^2 form cancels
// catastrophically once values carry a large offset (e.g. latencies
// measured against a large absolute timestamp), returning 0 or garbage.
class StatAccumulator {
 public:
  void Add(double value) {
    ++count_;
    sum_ += value;
    double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  // Population variance.
  double Variance() const {
    if (count_ < 2) {
      return 0.0;
    }
    double var = m2_ / static_cast<double>(count_);
    return var < 0.0 ? 0.0 : var;
  }
  double StdDev() const { return std::sqrt(Variance()); }

  void Reset() { *this = StatAccumulator(); }

 private:
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;  // Welford running mean
  double m2_ = 0.0;    // Welford sum of squared deviations
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace pandora

#endif  // PANDORA_SRC_RUNTIME_STATS_H_
