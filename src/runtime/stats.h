// Small numeric accumulators used by metrics throughout the system.
#ifndef PANDORA_SRC_RUNTIME_STATS_H_
#define PANDORA_SRC_RUNTIME_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace pandora {

// Streaming min/mean/max/stddev accumulator.
class StatAccumulator {
 public:
  void Add(double value) {
    ++count_;
    sum_ += value;
    sum_sq_ += value * value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double Variance() const {
    if (count_ < 2) {
      return 0.0;
    }
    double mean = Mean();
    double var = sum_sq_ / static_cast<double>(count_) - mean * mean;
    return var < 0.0 ? 0.0 : var;
  }
  double StdDev() const { return std::sqrt(Variance()); }

  void Reset() { *this = StatAccumulator(); }

 private:
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace pandora

#endif  // PANDORA_SRC_RUNTIME_STATS_H_
