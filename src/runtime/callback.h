// InlineCallback: a fixed-size, non-allocating stand-in for
// std::function<void()> on the timer hot path.
//
// Every timer the runtime arms today captures at most two pointers
// ({scheduler, process} for WaitUntil, {alt} for Alt timeouts), yet
// std::function heap-allocates its callable and drags an RTTI-driven
// manager along.  InlineCallback stores the callable inline in a small
// aligned buffer and dispatches through one function pointer; the capture
// budget is enforced at compile time, so growing a lambda past the budget
// is a build error rather than a silent allocation.
#ifndef PANDORA_SRC_RUNTIME_CALLBACK_H_
#define PANDORA_SRC_RUNTIME_CALLBACK_H_

#include <cstddef>
#include <new>  // NOLINT(pandora-raw-new-delete): placement-new declaration
#include <type_traits>
#include <utility>

namespace pandora {

template <std::size_t Capacity>
class InlineCallback {
 public:
  InlineCallback() = default;

  template <typename F, typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineCallback>>>
  InlineCallback(F f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity, "capture too large for InlineCallback; grow a pointer "
                                          "indirection instead of the inline budget");
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    static_assert(std::is_trivially_copyable_v<Fn>,
                  "InlineCallback requires trivially copyable captures");
    static_assert(std::is_trivially_destructible_v<Fn>);
    // Placement-new into owned inline storage: no allocation, no ownership
    // transfer, exempt from the raw-new ban by construction.
    ::new (static_cast<void*>(storage_)) Fn(std::move(f));  // NOLINT(pandora-raw-new-delete)
    invoke_ = [](void* storage) { (*static_cast<Fn*>(storage))(); };
  }

  void operator()() { invoke_(storage_); }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void (*invoke_)(void*) = nullptr;
  alignas(alignof(std::max_align_t)) unsigned char storage_[Capacity];
};

// Timer callbacks: {Scheduler*, ProcessCtx*} is the largest capture today;
// 32 bytes leaves room for a small id alongside without touching the heap.
using TimerCallback = InlineCallback<32>;

}  // namespace pandora

#endif  // PANDORA_SRC_RUNTIME_CALLBACK_H_
