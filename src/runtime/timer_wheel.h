// Hierarchical timing wheel over the simulated microsecond clock.
//
// Replaces the scheduler's shared_ptr<Record> priority queue: arming a
// timer was a make_shared plus a heap percolation, and cancelled timers
// (every Alt timeout that lost its race) lingered until their deadline
// popped them.  The wheel gives O(1) insert and O(1) cancel-unlink with
// nodes drawn from an internal free list, so the steady-state timer path
// performs no allocation at all.
//
// Geometry: four levels of 256 slots, 8 bits of deadline per level, which
// spans 2^32 us (~71 simulated minutes) — comfortably past the workload's
// 2 ms segment cadence and 8 s clawback horizons.  Deadlines beyond the
// wheel go to a small overflow binary heap of the same nodes and are
// compared against wheel candidates at pop time (no eager migration).
//
// A node's level is chosen by the most significant bit in which its
// deadline differs from the wheel cursor `wnow_` (an XOR prefix match, the
// scheme of Varghese & Lauck's hierarchical wheels).  This keeps the FIFO
// guarantee the scheduler needs: within one level-0 slot all nodes share a
// deadline and are appended in sequence order; a cascade re-places a
// window's nodes in list order before any new timer can land there, so
// equal-deadline timers always fire in the order they were armed — wheel
// and heap alike (a heap node predates, hence out-sequences, any
// equal-deadline wheel node).
//
// Deadlines already in the past are placed in the cursor slot and fire on
// the next pop with their original `when` (the scheduler never moves its
// clock backwards).  No current caller arms a past timer; see DESIGN.md
// section 10 for the ordering fine print.
#ifndef PANDORA_SRC_RUNTIME_TIMER_WHEEL_H_
#define PANDORA_SRC_RUNTIME_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/runtime/callback.h"
#include "src/runtime/time.h"

namespace pandora {

// One pending (or recycled) timer.  Nodes live in the wheel's arena and are
// reused; `generation` ticks every time a node is invalidated so that a
// stale TimerHandle over a recycled node is a safe no-op.
struct TimerNode {
  Time when = 0;
  uint64_t seq = 0;
  uint64_t generation = 0;
  TimerCallback fire;
  TimerNode* prev = nullptr;
  TimerNode* next = nullptr;
  enum class Where : uint8_t {
    kFree,           // on the free list
    kWheel,          // linked into slots_[level][slot]
    kHeap,           // in the far-future overflow heap
    kHeapCancelled,  // cancelled but still parked in the heap (lazy removal)
  };
  Where where = Where::kFree;
  uint8_t level = 0;
  uint8_t slot = 0;
};

class TimerWheel {
 public:
  // A due timer, detached from the wheel.  The node is recycled before the
  // caller runs `fire`, so a callback may re-arm timers reentrantly.
  struct Due {
    bool found = false;
    Time when = 0;
    TimerCallback fire;
  };

  TimerWheel() = default;
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Arms a timer; the returned node plus its current generation form a
  // cancellation handle.
  TimerNode* Add(Time when, TimerCallback fire);

  // O(1) for wheel nodes (unlink + recycle).  Heap nodes are marked and
  // lazily dropped at pop time, with a compaction once cancelled nodes
  // outnumber live ones.  Stale generations are ignored.
  void Cancel(TimerNode* node, uint64_t generation);

  bool IsActive(const TimerNode* node, uint64_t generation) const {
    return node != nullptr && node->generation == generation;
  }

  // Detaches and returns the earliest pending timer with deadline <= limit,
  // in (when, seq) order; {found=false} if none qualifies.  May advance the
  // internal cursor up to `limit` while cascading.
  Due PopDue(Time limit);

  // Drops every pending timer (scheduler shutdown).
  void Clear();

  // Earliest pending deadline without detaching anything (kNever if empty).
  // The sharded scheduler's conservative-sync loop peeks every shard's
  // horizon each window, so this must not mutate cursor or heap.  A
  // past-deadline node parked in the cursor slot reports its original
  // `when`; callers clamp against their own clock.
  Time NextDeadline() const;

  std::size_t pending_count() const { return pending_; }

 private:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr int kSlots = 1 << kSlotBits;
  static constexpr Time kSlotMask = kSlots - 1;
  static constexpr int kWordsPerLevel = kSlots / 64;

  struct SlotList {
    TimerNode* head = nullptr;
    TimerNode* tail = nullptr;
  };

  TimerNode* AllocNode();
  void Recycle(TimerNode* node);
  void Place(TimerNode* node);
  void Unlink(TimerNode* node);
  Due Take(TimerNode* node);
  int LowestSetSlot(int level) const;
  Time WindowStart(int level, int slot) const;
  void Cascade(int level, int slot);

  static bool HeapLess(const TimerNode* a, const TimerNode* b) {
    return a->when != b->when ? a->when < b->when : a->seq < b->seq;
  }
  void HeapPush(TimerNode* node);
  TimerNode* HeapPopTop();
  void HeapSiftDown(std::size_t i);
  void PruneHeapTop();
  void CompactHeap();

  Time wnow_ = 0;  // wheel cursor: <= every pending deadline and <= the clock
  uint64_t next_seq_ = 0;
  std::size_t pending_ = 0;
  SlotList slots_[kLevels][kSlots];
  uint64_t occupied_[kLevels][kWordsPerLevel] = {};
  std::vector<TimerNode*> heap_;  // min-heap on (when, seq)
  std::size_t heap_cancelled_ = 0;
  // Node storage: deque for stable addresses; the free list makes growth a
  // warmup-only event.
  std::deque<TimerNode> arena_;
  TimerNode* free_ = nullptr;
};

}  // namespace pandora

#endif  // PANDORA_SRC_RUNTIME_TIMER_WHEEL_H_
