#include "src/runtime/shard_set.h"

#include <algorithm>
#include <cstddef>
#include <exception>
#include <utility>

#include "src/runtime/check.h"
#include "src/trace/trace.h"

namespace pandora {

ShardSet::ShardSet(ShardSetOptions options) : options_(options) {
  PANDORA_CHECK(options_.shards >= 1, "a ShardSet needs at least one shard");
  PANDORA_CHECK(options_.lookahead >= 1,
                "conservative sync needs at least one microsecond of lookahead");
  threads_ = std::clamp(options_.threads, 1, options_.shards);
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Scheduler>());
  }
  outboxes_.resize(shards_.size());
  shard_errors_.resize(shards_.size());
  next_event_cache_.assign(shards_.size(), kNever);
  if (threads_ > 1) {
    workers_.reserve(static_cast<size_t>(threads_));
    for (int w = 0; w < threads_; ++w) {
      workers_.emplace_back([this, w] { WorkerMain(w); });
    }
  }
}

ShardSet::~ShardSet() {
  StopWorkers();
  Shutdown();
}

void ShardSet::Post(int src, int dst, Time when, TimerCallback fire) {
  PANDORA_CHECK(src >= 0 && src < shard_count(), "Post: source shard out of range");
  PANDORA_CHECK(dst >= 0 && dst < shard_count(), "Post: destination shard out of range");
  if (src == dst) {
    // Shard-local: arm directly, keeping the legacy arm-order FIFO semantics
    // (and, with shards=1, bit-identical behaviour to a bare Scheduler).
    shards_[static_cast<size_t>(dst)]->AddTimer(when, fire);
    return;
  }
  // Lookahead contract: the destination may already have run up to
  // window_end_, so a delivery at or before it would rewrite history.
  PANDORA_CHECK(when > window_end_,
                "cross-shard Post inside the conservative window (latency < lookahead?)");
  PANDORA_CHECK(when >= shards_[static_cast<size_t>(src)]->now(),
                "cross-shard Post into the source shard's past");
  Outbox& outbox = outboxes_[static_cast<size_t>(src)];
  MailboxEntry entry;
  entry.when = when;
  entry.seq = outbox.next_seq++;
  entry.src = src;
  entry.dst = dst;
  entry.fire = fire;
  outbox.entries.push_back(entry);
}

void ShardSet::PostGlobal(Time when, TimerCallback fire) {
  if (legacy()) {
    // One shard: a stop-the-world instant is just a timer on the only world
    // there is.  Bit-identical to the pre-shard engine by construction.
    shards_[0]->AddTimer(when, fire);
    return;
  }
  PANDORA_CHECK(when >= window_end_,
                "PostGlobal into an already-executed window would rewrite history");
  GlobalEvent event;
  event.when = when;
  event.seq = next_global_seq_++;
  event.fire = fire;
  global_events_.push_back(event);
  std::push_heap(global_events_.begin(), global_events_.end(), GlobalEventLater());
}

void ShardSet::AddBarrierTask(ShardBarrierTask* task) {
  PANDORA_CHECK(task != nullptr);
  barrier_tasks_.push_back(task);
}

void ShardSet::RemoveBarrierTask(ShardBarrierTask* task) {
  for (size_t i = 0; i < barrier_tasks_.size(); ++i) {
    if (barrier_tasks_[i] == task) {
      barrier_tasks_.erase(barrier_tasks_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

void ShardSet::RunGlobalEvents(Time upto) {
  while (!global_events_.empty() && global_events_.front().when <= upto) {
    std::pop_heap(global_events_.begin(), global_events_.end(), GlobalEventLater());
    GlobalEvent event = global_events_.back();
    global_events_.pop_back();
    // May PostGlobal again (heap push mid-loop is fine) and may mutate any
    // shard: every worker is parked and every clock has reached event.when.
    event.fire();
    ++global_events_run_;
  }
}

void ShardSet::RunBarrierTasks() {
  for (ShardBarrierTask* task : barrier_tasks_) {
    task->OnShardBarrier();
  }
}

void ShardSet::DrainMailboxes() {
  // Fast path: barriers where nothing crossed a shard boundary pay one
  // empty-check per outbox and nothing else (E19 shaved the shards=8
  // threads=1 gap with this plus the idle-shard skip in RunWindow).
  size_t pending = 0;
  for (const Outbox& outbox : outboxes_) {
    pending += outbox.entries.size();
  }
  if (pending == 0) {
    ++empty_mailbox_barriers_;
    return;
  }
  drain_scratch_.clear();
  for (Outbox& outbox : outboxes_) {
    drain_scratch_.insert(drain_scratch_.end(), outbox.entries.begin(), outbox.entries.end());
    outbox.entries.clear();  // keeps capacity: steady-state drains don't allocate
  }
  // (when, src, seq) is unique per entry, so this is a total order and the
  // destination wheels see one deterministic arm sequence regardless of how
  // many threads produced the entries.
  std::sort(drain_scratch_.begin(), drain_scratch_.end(),
            [](const MailboxEntry& a, const MailboxEntry& b) {
              if (a.when != b.when) {
                return a.when < b.when;
              }
              if (a.src != b.src) {
                return a.src < b.src;
              }
              return a.seq < b.seq;
            });
  for (const MailboxEntry& entry : drain_scratch_) {
    shards_[static_cast<size_t>(entry.dst)]->AddTimer(entry.when, entry.fire);
  }
  cross_shard_messages_ += drain_scratch_.size();
  drain_scratch_.clear();
}

Time ShardSet::MinNextEvent() {
  Time t = kNever;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Time next = shards_[i]->NextEventTime();
    next_event_cache_[i] = next;
    t = next < t ? next : t;
  }
  return t;
}

void ShardSet::RunShardsInline(Time window_end) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (skip_idle_ && next_event_cache_[i] > window_end) {
      continue;
    }
    try {
      shards_[i]->RunUntil(window_end);
    } catch (...) {
      shard_errors_[i] = std::current_exception();
    }
  }
}

void ShardSet::RunWindow(Time window_end, bool allow_idle_skip) {
  ++windows_;
  if (allow_idle_skip) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (next_event_cache_[i] > window_end) {
        ++idle_shard_skips_;
      }
    }
  }
  if (workers_.empty()) {
    window_end_ = window_end;
    skip_idle_ = allow_idle_skip;
    RunShardsInline(window_end);
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      window_end_ = window_end;
      skip_idle_ = allow_idle_skip;
      workers_busy_ = threads_;
      ++round_;
    }
    work_cv_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return workers_busy_ == 0; });
  }
  RethrowFirstShardError();
}

void ShardSet::WorkerMain(int worker_index) {
  uint64_t seen_round = 0;
  for (;;) {
    Time window_end;
    bool skip_idle;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_round] { return stop_ || round_ != seen_round; });
      if (stop_) {
        return;
      }
      seen_round = round_;
      window_end = window_end_;
      skip_idle = skip_idle_;
    }
    // Static assignment: shard i always runs on worker i % threads, so
    // results cannot depend on which worker drains faster and each shard's
    // frame churn stays on one thread's FramePool free lists.
    for (int i = worker_index; i < shard_count(); i += threads_) {
      if (skip_idle && next_event_cache_[static_cast<size_t>(i)] > window_end) {
        continue;  // provably nothing due in the window; see RunWindow's doc
      }
      try {
        shards_[static_cast<size_t>(i)]->RunUntil(window_end);
      } catch (...) {
        shard_errors_[static_cast<size_t>(i)] = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_busy_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void ShardSet::RethrowFirstShardError() {
  std::exception_ptr first;
  // Lowest shard index wins, every time: which error escapes must not depend
  // on thread timing.  Later shards' errors are dropped, matching a single
  // Scheduler run that stops at its first escaping exception.
  for (std::exception_ptr& err : shard_errors_) {
    if (err != nullptr) {
      if (first == nullptr) {
        first = err;
      }
      err = nullptr;
    }
  }
  if (first != nullptr) {
    std::rethrow_exception(first);
  }
}

void ShardSet::RunUntilQuiescent() {
  if (legacy()) {
    shards_[0]->RunUntilQuiescent();
    return;
  }
  for (;;) {
    DrainMailboxes();
    const Time t_min = MinNextEvent();
    const Time g = NextGlobalTime();
    if (t_min == kNever && g == kNever) {
      // Idle-skipped shards' clocks may lag the last window; catch them up so
      // every clock (and so now()) reports the same quiescence point a
      // non-skipping run would.  No events fire: everything is quiescent.
      for (auto& shard : shards_) {
        shard->RunUntil(window_end_);
      }
      return;
    }
    if (g <= t_min) {
      // Stop-the-world instant: advance every shard through g (shard events
      // at g dispatch first, on their own shards), then run the due globals
      // on this thread with the workers parked.
      RunWindow(g, /*allow_idle_skip=*/false);
      RunBarrierTasks();
      RunGlobalEvents(g);
      continue;
    }
    Time window_end = t_min + options_.lookahead - 1;
    if (window_end < t_min) {  // arithmetic overflow near kNever
      window_end = t_min;
    }
    if (window_end >= g) {  // never run a shard past a pending global
      window_end = g - 1;
    }
    RunWindow(window_end, /*allow_idle_skip=*/true);
    RunBarrierTasks();
  }
}

void ShardSet::RunUntil(Time limit) {
  if (legacy()) {
    shards_[0]->RunUntil(limit);
    return;
  }
  for (;;) {
    DrainMailboxes();
    const Time t_min = MinNextEvent();
    const Time g = NextGlobalTime();
    const Time next = g < t_min ? g : t_min;
    if (next > limit) {
      break;
    }
    if (g <= t_min) {
      RunWindow(g, /*allow_idle_skip=*/false);
      RunBarrierTasks();
      RunGlobalEvents(g);
      continue;
    }
    Time window_end = t_min + options_.lookahead - 1;
    if (window_end > limit || window_end < t_min) {
      window_end = limit;
    }
    if (window_end >= g) {
      window_end = g - 1;
    }
    RunWindow(window_end, /*allow_idle_skip=*/true);
    RunBarrierTasks();
  }
  // Nothing left at or before `limit`: advance every clock to the limit so
  // callers see the same now() a bare Scheduler would report.  Inline on the
  // coordinator — no events fire, the barrier already synchronised.
  for (auto& shard : shards_) {
    shard->RunUntil(limit);
  }
  window_end_ = limit > window_end_ ? limit : window_end_;
}

void ShardSet::Shutdown() {
  if (shut_down_) {
    return;
  }
  shut_down_ = true;
  // Undelivered mailbox entries die with the world; their captures are
  // trivially-copyable by TimerCallback's contract, so dropping is safe.
  for (Outbox& outbox : outboxes_) {
    outbox.entries.clear();
  }
  global_events_.clear();
  for (auto& shard : shards_) {
    shard->Shutdown();
  }
}

size_t ShardSet::undrained_messages() const {
  size_t n = 0;
  for (const Outbox& outbox : outboxes_) {
    n += outbox.entries.size();
  }
  return n;
}

uint64_t ShardSet::ShardDigest(int i) const {
  PANDORA_CHECK(i >= 0 && i < shard_count());
  const Scheduler& shard = *shards_[static_cast<size_t>(i)];
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xff;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  mix(shard.context_switches());
  mix(static_cast<uint64_t>(shard.now()));
  mix(shard.pending_timer_count());
  mix(shard.live_process_count());
  mix(outboxes_[static_cast<size_t>(i)].next_seq);
  return h;
}

void ShardSet::EnableTrace(size_t max_events_per_shard) {
  for (auto& shard : shards_) {
    shard->trace()->Enable(max_events_per_shard);
  }
}

std::string ShardSet::ExportMergedTraceJson() const {
  TraceRecorder merged;
  std::string prefix;
  for (size_t i = 0; i < shards_.size(); ++i) {
    prefix = "s";
    prefix += std::to_string(i);
    prefix += ':';
    merged.MergeFrom(*shards_[i]->trace(), prefix);
  }
  return merged.ExportJson();
}

bool ShardSet::ExportMergedTraceTo(const std::string& path) const {
  TraceRecorder merged;
  std::string prefix;
  for (size_t i = 0; i < shards_.size(); ++i) {
    prefix = "s";
    prefix += std::to_string(i);
    prefix += ':';
    merged.MergeFrom(*shards_[i]->trace(), prefix);
  }
  return merged.ExportJsonTo(path);
}

void ShardSet::StopWorkers() {
  if (workers_.empty()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
}

}  // namespace pandora
