#include "src/runtime/shard_set.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "src/runtime/check.h"
#include "src/trace/trace.h"

namespace pandora {

ShardSet::ShardSet(ShardSetOptions options) : options_(options) {
  PANDORA_CHECK(options_.shards >= 1, "a ShardSet needs at least one shard");
  PANDORA_CHECK(options_.lookahead >= 1,
                "conservative sync needs at least one microsecond of lookahead");
  threads_ = std::clamp(options_.threads, 1, options_.shards);
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Scheduler>());
  }
  outboxes_.resize(shards_.size());
  shard_errors_.resize(shards_.size());
  if (threads_ > 1) {
    workers_.reserve(static_cast<size_t>(threads_));
    for (int w = 0; w < threads_; ++w) {
      workers_.emplace_back([this, w] { WorkerMain(w); });
    }
  }
}

ShardSet::~ShardSet() {
  StopWorkers();
  Shutdown();
}

void ShardSet::Post(int src, int dst, Time when, TimerCallback fire) {
  PANDORA_CHECK(src >= 0 && src < shard_count(), "Post: source shard out of range");
  PANDORA_CHECK(dst >= 0 && dst < shard_count(), "Post: destination shard out of range");
  if (src == dst) {
    // Shard-local: arm directly, keeping the legacy arm-order FIFO semantics
    // (and, with shards=1, bit-identical behaviour to a bare Scheduler).
    shards_[static_cast<size_t>(dst)]->AddTimer(when, fire);
    return;
  }
  // Lookahead contract: the destination may already have run up to
  // window_end_, so a delivery at or before it would rewrite history.
  PANDORA_CHECK(when > window_end_,
                "cross-shard Post inside the conservative window (latency < lookahead?)");
  PANDORA_CHECK(when >= shards_[static_cast<size_t>(src)]->now(),
                "cross-shard Post into the source shard's past");
  Outbox& outbox = outboxes_[static_cast<size_t>(src)];
  MailboxEntry entry;
  entry.when = when;
  entry.seq = outbox.next_seq++;
  entry.src = src;
  entry.dst = dst;
  entry.fire = fire;
  outbox.entries.push_back(entry);
}

void ShardSet::DrainMailboxes() {
  drain_scratch_.clear();
  for (Outbox& outbox : outboxes_) {
    drain_scratch_.insert(drain_scratch_.end(), outbox.entries.begin(), outbox.entries.end());
    outbox.entries.clear();  // keeps capacity: steady-state drains don't allocate
  }
  if (drain_scratch_.empty()) {
    return;
  }
  // (when, src, seq) is unique per entry, so this is a total order and the
  // destination wheels see one deterministic arm sequence regardless of how
  // many threads produced the entries.
  std::sort(drain_scratch_.begin(), drain_scratch_.end(),
            [](const MailboxEntry& a, const MailboxEntry& b) {
              if (a.when != b.when) {
                return a.when < b.when;
              }
              if (a.src != b.src) {
                return a.src < b.src;
              }
              return a.seq < b.seq;
            });
  for (const MailboxEntry& entry : drain_scratch_) {
    shards_[static_cast<size_t>(entry.dst)]->AddTimer(entry.when, entry.fire);
  }
  cross_shard_messages_ += drain_scratch_.size();
  drain_scratch_.clear();
}

Time ShardSet::MinNextEvent() const {
  Time t = kNever;
  for (const auto& shard : shards_) {
    const Time next = shard->NextEventTime();
    t = next < t ? next : t;
  }
  return t;
}

void ShardSet::RunShardsInline(Time window_end) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    try {
      shards_[i]->RunUntil(window_end);
    } catch (...) {
      shard_errors_[i] = std::current_exception();
    }
  }
}

void ShardSet::RunWindow(Time window_end) {
  ++windows_;
  if (workers_.empty()) {
    window_end_ = window_end;
    RunShardsInline(window_end);
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      window_end_ = window_end;
      workers_busy_ = threads_;
      ++round_;
    }
    work_cv_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return workers_busy_ == 0; });
  }
  RethrowFirstShardError();
}

void ShardSet::WorkerMain(int worker_index) {
  uint64_t seen_round = 0;
  for (;;) {
    Time window_end;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_round] { return stop_ || round_ != seen_round; });
      if (stop_) {
        return;
      }
      seen_round = round_;
      window_end = window_end_;
    }
    // Static assignment: shard i always runs on worker i % threads, so
    // results cannot depend on which worker drains faster and each shard's
    // frame churn stays on one thread's FramePool free lists.
    for (int i = worker_index; i < shard_count(); i += threads_) {
      try {
        shards_[static_cast<size_t>(i)]->RunUntil(window_end);
      } catch (...) {
        shard_errors_[static_cast<size_t>(i)] = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_busy_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void ShardSet::RethrowFirstShardError() {
  std::exception_ptr first;
  // Lowest shard index wins, every time: which error escapes must not depend
  // on thread timing.  Later shards' errors are dropped, matching a single
  // Scheduler run that stops at its first escaping exception.
  for (std::exception_ptr& err : shard_errors_) {
    if (err != nullptr) {
      if (first == nullptr) {
        first = err;
      }
      err = nullptr;
    }
  }
  if (first != nullptr) {
    std::rethrow_exception(first);
  }
}

void ShardSet::RunUntilQuiescent() {
  if (legacy()) {
    shards_[0]->RunUntilQuiescent();
    return;
  }
  for (;;) {
    DrainMailboxes();
    const Time t_min = MinNextEvent();
    if (t_min == kNever) {
      return;
    }
    Time window_end = t_min + options_.lookahead - 1;
    if (window_end < t_min) {  // arithmetic overflow near kNever
      window_end = t_min;
    }
    RunWindow(window_end);
  }
}

void ShardSet::RunUntil(Time limit) {
  if (legacy()) {
    shards_[0]->RunUntil(limit);
    return;
  }
  for (;;) {
    DrainMailboxes();
    const Time t_min = MinNextEvent();
    if (t_min > limit) {
      break;
    }
    Time window_end = t_min + options_.lookahead - 1;
    if (window_end > limit || window_end < t_min) {
      window_end = limit;
    }
    RunWindow(window_end);
  }
  // Nothing left at or before `limit`: advance every clock to the limit so
  // callers see the same now() a bare Scheduler would report.  Inline on the
  // coordinator — no events fire, the barrier already synchronised.
  for (auto& shard : shards_) {
    shard->RunUntil(limit);
  }
  window_end_ = limit > window_end_ ? limit : window_end_;
}

void ShardSet::Shutdown() {
  if (shut_down_) {
    return;
  }
  shut_down_ = true;
  // Undelivered mailbox entries die with the world; their captures are
  // trivially-copyable by TimerCallback's contract, so dropping is safe.
  for (Outbox& outbox : outboxes_) {
    outbox.entries.clear();
  }
  for (auto& shard : shards_) {
    shard->Shutdown();
  }
}

size_t ShardSet::undrained_messages() const {
  size_t n = 0;
  for (const Outbox& outbox : outboxes_) {
    n += outbox.entries.size();
  }
  return n;
}

uint64_t ShardSet::ShardDigest(int i) const {
  PANDORA_CHECK(i >= 0 && i < shard_count());
  const Scheduler& shard = *shards_[static_cast<size_t>(i)];
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xff;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  mix(shard.context_switches());
  mix(static_cast<uint64_t>(shard.now()));
  mix(shard.pending_timer_count());
  mix(shard.live_process_count());
  mix(outboxes_[static_cast<size_t>(i)].next_seq);
  return h;
}

void ShardSet::EnableTrace(size_t max_events_per_shard) {
  for (auto& shard : shards_) {
    shard->trace()->Enable(max_events_per_shard);
  }
}

std::string ShardSet::ExportMergedTraceJson() const {
  TraceRecorder merged;
  std::string prefix;
  for (size_t i = 0; i < shards_.size(); ++i) {
    prefix = "s";
    prefix += std::to_string(i);
    prefix += ':';
    merged.MergeFrom(*shards_[i]->trace(), prefix);
  }
  return merged.ExportJson();
}

bool ShardSet::ExportMergedTraceTo(const std::string& path) const {
  TraceRecorder merged;
  std::string prefix;
  for (size_t i = 0; i < shards_.size(); ++i) {
    prefix = "s";
    prefix += std::to_string(i);
    prefix += ':';
    merged.MergeFrom(*shards_[i]->trace(), prefix);
  }
  return merged.ExportJsonTo(path);
}

void ShardSet::StopWorkers() {
  if (workers_.empty()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
}

}  // namespace pandora
