#include "src/runtime/timer_wheel.h"

#include <bit>
#include <utility>

#include "src/runtime/check.h"

namespace pandora {

TimerNode* TimerWheel::AllocNode() {
  if (free_ != nullptr) {
    TimerNode* node = free_;
    free_ = node->next;
    node->next = nullptr;
    return node;
  }
  arena_.emplace_back();
  return &arena_.back();
}

void TimerWheel::Recycle(TimerNode* node) {
  ++node->generation;  // outstanding handles over this node go stale
  node->where = TimerNode::Where::kFree;
  node->fire = TimerCallback();
  node->prev = nullptr;
  node->next = free_;
  free_ = node;
}

void TimerWheel::Place(TimerNode* node) {
  // Past deadlines park in the cursor slot (fire on the next pop); the
  // node keeps its original `when`.
  const Time target = node->when < wnow_ ? wnow_ : node->when;
  const uint64_t diff = static_cast<uint64_t>(target) ^ static_cast<uint64_t>(wnow_);
  const int level = diff == 0 ? 0 : (std::bit_width(diff) - 1) / kSlotBits;
  if (level >= kLevels) {
    node->where = TimerNode::Where::kHeap;
    HeapPush(node);
    return;
  }
  const int slot = static_cast<int>((target >> (level * kSlotBits)) & kSlotMask);
  node->where = TimerNode::Where::kWheel;
  node->level = static_cast<uint8_t>(level);
  node->slot = static_cast<uint8_t>(slot);
  SlotList& list = slots_[level][slot];
  node->prev = list.tail;
  node->next = nullptr;
  if (list.tail != nullptr) {
    list.tail->next = node;
  } else {
    list.head = node;
    occupied_[level][slot >> 6] |= uint64_t{1} << (slot & 63);
  }
  list.tail = node;
}

void TimerWheel::Unlink(TimerNode* node) {
  SlotList& list = slots_[node->level][node->slot];
  if (node->prev != nullptr) {
    node->prev->next = node->next;
  } else {
    list.head = node->next;
  }
  if (node->next != nullptr) {
    node->next->prev = node->prev;
  } else {
    list.tail = node->prev;
  }
  node->prev = node->next = nullptr;
  if (list.head == nullptr) {
    occupied_[node->level][node->slot >> 6] &= ~(uint64_t{1} << (node->slot & 63));
  }
}

TimerNode* TimerWheel::Add(Time when, TimerCallback fire) {
  TimerNode* node = AllocNode();
  node->when = when;
  node->seq = next_seq_++;
  node->fire = fire;
  Place(node);
  ++pending_;
  return node;
}

void TimerWheel::Cancel(TimerNode* node, uint64_t generation) {
  if (node == nullptr || node->generation != generation) {
    return;  // already fired, cancelled, or recycled into a new timer
  }
  if (node->where == TimerNode::Where::kWheel) {
    Unlink(node);
    --pending_;
    Recycle(node);
  } else if (node->where == TimerNode::Where::kHeap) {
    node->where = TimerNode::Where::kHeapCancelled;
    ++node->generation;
    --pending_;
    ++heap_cancelled_;
    // Lazy removal is O(1); compact once corpses outnumber live entries so
    // a cancel flood cannot grow the heap unboundedly.
    if (heap_cancelled_ > 64 && heap_cancelled_ * 2 > heap_.size()) {
      CompactHeap();
    }
  }
}

TimerWheel::Due TimerWheel::Take(TimerNode* node) {
  Due due;
  due.found = true;
  due.when = node->when;
  due.fire = node->fire;
  --pending_;
  // Recycle before the caller fires: a reentrant Add may reuse this node,
  // and the generation bump keeps the old handle inert.
  Recycle(node);
  return due;
}

int TimerWheel::LowestSetSlot(int level) const {
  for (int w = 0; w < kWordsPerLevel; ++w) {
    const uint64_t bits = occupied_[level][w];
    if (bits != 0) {
      return w * 64 + std::countr_zero(bits);
    }
  }
  return -1;
}

Time TimerWheel::WindowStart(int level, int slot) const {
  const int shift = level * kSlotBits;
  const Time above = wnow_ & ~((Time{1} << (shift + kSlotBits)) - 1);
  return above | (static_cast<Time>(slot) << shift);
}

void TimerWheel::Cascade(int level, int slot) {
  SlotList& list = slots_[level][slot];
  TimerNode* node = list.head;
  list.head = list.tail = nullptr;
  occupied_[level][slot >> 6] &= ~(uint64_t{1} << (slot & 63));
  // Re-place in list order: within the window, equal deadlines keep their
  // arming order, and they land before any timer armed after this cascade.
  while (node != nullptr) {
    TimerNode* next = node->next;
    node->prev = node->next = nullptr;
    Place(node);
    node = next;
  }
}

TimerWheel::Due TimerWheel::PopDue(Time limit) {
  for (;;) {
    PruneHeapTop();
    const bool heap_live = !heap_.empty();
    const Time heap_when = heap_live ? heap_.front()->when : kNever;

    // Level 0 gives exact deadlines: every slot at or past the cursor holds
    // equal-`when` nodes in seq order.
    const int s0 = LowestSetSlot(0);
    if (s0 >= 0) {
      const Time t0 = (wnow_ & ~kSlotMask) | static_cast<Time>(s0);
      // Heap wins equal-deadline ties: a heap node was armed while its
      // deadline sat beyond the whole wheel, i.e. before any wheel node of
      // the same deadline, so its seq is smaller.
      if (heap_live && heap_when <= t0) {
        if (heap_when > limit) {
          return Due{};
        }
        // heap_when ≤ t0 keeps this inside the cursor's level-0 window, so
        // advancing cannot re-decode any occupied slot.
        wnow_ = heap_when;
        return Take(HeapPopTop());
      }
      if (t0 > limit) {
        return Due{};
      }
      TimerNode* node = slots_[0][s0].head;
      Unlink(node);
      return Take(node);
    }

    // No level-0 candidates: the earliest wheel deadline lives in the first
    // nonempty higher level (its windows start before any higher level's).
    int level = -1;
    int slot = -1;
    for (int l = 1; l < kLevels; ++l) {
      slot = LowestSetSlot(l);
      if (slot >= 0) {
        level = l;
        break;
      }
    }
    if (level < 0) {
      if (!heap_live || heap_when > limit) {
        return Due{};
      }
      // Wheel empty: drag the cursor along so timers armed after a
      // far-future fire land back on the wheel instead of trickling into
      // the heap forever (the cursor otherwise goes stale once simulated
      // time outruns the wheel's 2^32-microsecond span).
      wnow_ = heap_when;
      return Take(HeapPopTop());
    }
    const Time window = WindowStart(level, slot);
    if (heap_live && heap_when < window) {
      if (heap_when > limit) {
        return Due{};
      }
      // heap_when < window ≤ every occupied window start, and it shares the
      // prefix above the earliest occupied level's span with the cursor, so
      // every occupied slot still decodes to the same window.
      wnow_ = heap_when;
      return Take(HeapPopTop());
    }
    if (window > limit) {
      return Due{};
    }
    // Advance the cursor to the window and spread its nodes into finer
    // levels, then rescan.
    wnow_ = window;
    Cascade(level, slot);
  }
}

void TimerWheel::HeapPush(TimerNode* node) {
  heap_.push_back(node);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!HeapLess(heap_[i], heap_[parent])) {
      break;
    }
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void TimerWheel::HeapSiftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    std::size_t smallest = i;
    if (left < n && HeapLess(heap_[left], heap_[smallest])) {
      smallest = left;
    }
    if (right < n && HeapLess(heap_[right], heap_[smallest])) {
      smallest = right;
    }
    if (smallest == i) {
      return;
    }
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

TimerNode* TimerWheel::HeapPopTop() {
  PANDORA_DCHECK(!heap_.empty());
  TimerNode* top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    HeapSiftDown(0);
  }
  return top;
}

void TimerWheel::PruneHeapTop() {
  while (!heap_.empty() && heap_.front()->where == TimerNode::Where::kHeapCancelled) {
    TimerNode* node = HeapPopTop();
    --heap_cancelled_;
    Recycle(node);
  }
}

void TimerWheel::CompactHeap() {
  std::size_t kept = 0;
  for (TimerNode* node : heap_) {
    if (node->where == TimerNode::Where::kHeapCancelled) {
      Recycle(node);
    } else {
      heap_[kept++] = node;
    }
  }
  heap_.resize(kept);
  for (std::size_t i = kept / 2; i-- > 0;) {
    HeapSiftDown(i);
  }
  heap_cancelled_ = 0;
}

Time TimerWheel::NextDeadline() const {
  if (pending_ == 0) {
    return kNever;
  }
  Time best = kNever;
  // Same search order as PopDue, without mutating: the earliest wheel
  // deadline is in level 0's lowest occupied slot, or — with level 0 empty —
  // in the first nonempty higher level's lowest slot (all of a level's
  // occupied slots decode at or past the cursor with a shared prefix, so
  // lower absolute index means earlier window).  One slot list is walked
  // because only the cursor slot may hold past-deadline parkers whose
  // `when` undercuts the slot's decoded time.
  const int s0 = LowestSetSlot(0);
  if (s0 >= 0) {
    for (const TimerNode* node = slots_[0][s0].head; node != nullptr; node = node->next) {
      best = node->when < best ? node->when : best;
    }
  } else {
    for (int level = 1; level < kLevels; ++level) {
      const int slot = LowestSetSlot(level);
      if (slot >= 0) {
        for (const TimerNode* node = slots_[level][slot].head; node != nullptr;
             node = node->next) {
          best = node->when < best ? node->when : best;
        }
        break;
      }
    }
  }
  // The heap top may be a lazily-cancelled corpse; scan past them (the heap
  // stays small: only deadlines beyond the wheel's 2^32 us span live here).
  for (const TimerNode* node : heap_) {
    if (node->where == TimerNode::Where::kHeap && node->when < best) {
      best = node->when;
    }
  }
  return best;
}

void TimerWheel::Clear() {
  for (int level = 0; level < kLevels; ++level) {
    for (int w = 0; w < kWordsPerLevel; ++w) {
      uint64_t bits = occupied_[level][w];
      occupied_[level][w] = 0;
      while (bits != 0) {
        const int slot = w * 64 + std::countr_zero(bits);
        bits &= bits - 1;
        SlotList& list = slots_[level][slot];
        TimerNode* node = list.head;
        list.head = list.tail = nullptr;
        while (node != nullptr) {
          TimerNode* next = node->next;
          node->prev = node->next = nullptr;
          Recycle(node);
          node = next;
        }
      }
    }
  }
  for (TimerNode* node : heap_) {
    Recycle(node);
  }
  heap_.clear();
  heap_cancelled_ = 0;
  pending_ = 0;
}

}  // namespace pandora
