// ShardSet: the sharded M:N parallel scheduler (ROADMAP item 1).
//
// The paper's Pandora boxes are independent machines on an ATM LAN; the
// reproduction so far multiplexed every box onto one single-threaded
// event loop.  A ShardSet partitions the simulation into *shards* — each
// shard is a full Scheduler (its own timer wheel, process slab, ready
// queues, trace recorder, and, via thread-local FramePool free lists, its
// own coroutine-frame recycler) — and executes them on a pool of OS worker
// threads under conservative time synchronization:
//
//   window    All shards agree on a horizon W = min(next event over all
//             shards) + lookahead - 1 and run [.., W] in parallel, each on
//             its own worker, touching only its own state.
//   barrier   Workers rendezvous; the coordinator drains every outbox.
//   drain     Cross-shard messages (sequence-stamped mailbox entries) are
//             merged in (deliver_time, src_shard, seq) order and armed as
//             ordinary timers on their destination shards.
//
// Safety: a cross-shard message produced by an event at time t carries a
// delivery time >= t + lookahead.  Every event in the window satisfies
// t >= min(next event) = W - lookahead + 1, so deliveries land strictly
// after W — no shard can have run past a message it should have seen.
// Lookahead therefore must not exceed the minimum cross-shard link latency;
// in the Pandora world that latency comes free from LinkModel/HopQuality
// (cross-shard traffic always crosses a link with nonzero delay).
//
// Determinism: within a window each shard's dispatch order is a pure
// function of its own state (the Scheduler is sequential); the drain order
// is a pure function of the messages' (deliver_time, src_shard, seq) keys,
// which are assigned by each source shard's own deterministic execution.
// Thread count and OS scheduling therefore cannot perturb dispatch order:
// threads=1 and threads=8 replay byte-identically, which
// tests/shard_determinism_test.cc pins.
//
// Legacy mode: shards=1 bypasses the window machinery entirely —
// RunUntil/RunFor delegate straight to the single Scheduler and Post arms a
// plain timer — so a one-shard ShardSet is bit-identical to the pre-shard
// engine (the existing chaos/overlay goldens run unchanged through it).
//
// This header and shard_set.cc are the single sanctioned home of OS
// threading primitives inside src/ (pandora-lint thread-primitives rule):
// worker threads never touch simulation state outside the barrier protocol.
#ifndef PANDORA_SRC_RUNTIME_SHARD_SET_H_
#define PANDORA_SRC_RUNTIME_SHARD_SET_H_

// This file is on pandora-lint's THREAD_SANCTIONED_FILES list: the thread
// primitives below are the reason the ban exists everywhere else.
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/callback.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/time.h"

namespace pandora {

// Coordinator-side callback run at every window barrier (multi-shard mode
// only), with all workers parked.  The cross-shard data plane uses it to
// reclaim transfer records whose consumption the barrier just made visible.
// Not an std::function member by design: the timer hot path and the lint
// rule both want fixed-size callables, and barrier tasks are long-lived
// objects anyway.
class ShardBarrierTask {
 public:
  virtual ~ShardBarrierTask() = default;
  virtual void OnShardBarrier() = 0;
};

struct ShardSetOptions {
  // Number of shards (independent Schedulers).  1 = legacy single-engine
  // mode, bit-identical to a bare Scheduler.
  int shards = 1;
  // OS worker threads executing the shards; clamped to [1, shards].  Shard
  // i is statically assigned to worker i % threads, so a shard's frame-pool
  // churn stays on one thread's free lists and results never depend on
  // which worker finishes first.
  int threads = 1;
  // Conservative-sync lookahead.  Must be <= the minimum cross-shard
  // message latency (Post enforces per message); larger lookahead = fewer
  // barriers.
  Duration lookahead = Millis(1);
};

class ShardSet {
 public:
  explicit ShardSet(ShardSetOptions options = {});
  ~ShardSet();

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  int thread_count() const { return threads_; }
  Duration lookahead() const { return options_.lookahead; }

  Scheduler& shard(int i) { return *shards_[static_cast<size_t>(i)]; }
  const Scheduler& shard(int i) const { return *shards_[static_cast<size_t>(i)]; }
  // Legacy accessor: the facade scheduler existing single-shard callers use.
  Scheduler& scheduler() { return shard(0); }

  // All shard clocks agree at every barrier (and after every Run* call).
  Time now() const { return shard(0).now(); }

  // Queues `fire` to run on shard `dst` at simulated time `when`, stamped
  // with the source shard's next mailbox sequence number.  Must be called
  // either from code executing on shard `src` (its worker owns the outbox
  // row during a window) or from the coordinating thread between Run*
  // calls.  Cross-shard deliveries must respect the lookahead contract:
  // `when` must lie strictly beyond the current window (checked).
  // Same-shard posts arm a plain timer immediately, preserving the legacy
  // arm-order semantics shard-local traffic always had.
  void Post(int src, int dst, Time when, TimerCallback fire);

  // Queues `fire` to run on the *coordinator* at simulated time `when`, with
  // every worker parked at a barrier and every shard clock advanced exactly
  // to `when` — a deterministic stop-the-world instant.  Unlike Post, the
  // callback may therefore touch state on any shard (crash a box here, close
  // a circuit there): the barrier provides the happens-before edges in both
  // directions.  Global events are ordered by (when, submission seq); the
  // window loop never runs a shard past a pending global.  May be called
  // from the coordinator between Run* calls or from inside another global
  // callback (e.g. a fault driver re-arming its next step) — never from a
  // shard worker.  `when` must not precede the most recent window
  // (rewriting history is checked, exactly like Post).  In legacy mode this
  // is a plain shard-0 timer, preserving single-engine semantics.
  void PostGlobal(Time when, TimerCallback fire);

  // Registers a barrier task (not owned; must outlive the set or be removed).
  // No-op scaffolding in legacy mode: barriers never happen there.
  void AddBarrierTask(ShardBarrierTask* task);
  void RemoveBarrierTask(ShardBarrierTask* task);

  // Runs windows until every shard is quiescent and all mailboxes are empty.
  void RunUntilQuiescent();
  // Runs windows until the simulated clock reaches `limit`; on return every
  // shard's now() == limit (or the quiescence point advanced to limit).
  void RunUntil(Time limit);
  void RunFor(Duration d) { RunUntil(now() + d); }

  // Destroys all shards' live frames and timers (shard-index order) and
  // drops undelivered mailbox entries.  Joins nothing: workers stay parked
  // for reuse until destruction.
  void Shutdown();

  // --- Introspection ---------------------------------------------------------

  // Barrier rounds executed (0 in legacy mode).
  uint64_t windows() const { return windows_; }
  // Cross-shard mailbox entries delivered to destination wheels.
  uint64_t cross_shard_messages() const { return cross_shard_messages_; }
  // Stop-the-world callbacks executed (0 in legacy mode, where they ride the
  // shard-0 wheel and count as ordinary timers).
  uint64_t global_events_run() const { return global_events_run_; }
  // Per-shard window runs skipped because the shard provably had no event in
  // the window (idle fast path); each skip saves a RunUntil invocation.
  uint64_t idle_shard_skips() const { return idle_shard_skips_; }
  // Barriers where every outbox was empty, skipping the merge-and-sort.
  uint64_t empty_mailbox_barriers() const { return empty_mailbox_barriers_; }
  // Mailbox entries accepted but not yet drained to a destination wheel.
  size_t undrained_messages() const;

  // Order-sensitive digest of one shard's execution so far: folds context
  // switches, clock, and mailbox sequence state.  Equal digests across two
  // runs mean the shard dispatched the same number of slices to the same
  // simulated time with the same cross-shard traffic — the cheap half of
  // the determinism story (tests fold per-message observables on top).
  uint64_t ShardDigest(int i) const;

  // Enables every shard's trace recorder (per-shard buffers; merged on
  // export so one Perfetto timeline shows all shards as separate tracks).
  void EnableTrace(size_t max_events_per_shard);
  std::string ExportMergedTraceJson() const;
  bool ExportMergedTraceTo(const std::string& path) const;

 private:
  struct MailboxEntry {
    Time when = 0;
    uint64_t seq = 0;  // per-source send order; ties broken by src below
    int32_t src = 0;
    int32_t dst = 0;
    TimerCallback fire;
  };

  // Per-source outbox row.  A row is written only by the worker executing
  // its shard (or the coordinator between rounds) and drained only by the
  // coordinator at a barrier, so rows need no locks; the barrier's mutex
  // provides the happens-before edge.
  struct Outbox {
    std::vector<MailboxEntry> entries;
    uint64_t next_seq = 0;
  };

  // A stop-the-world callback and its total order key.  Kept in a min-heap
  // over (when, seq): submission order breaks time ties, so replay is exact.
  struct GlobalEvent {
    Time when = 0;
    uint64_t seq = 0;
    TimerCallback fire;
  };
  struct GlobalEventLater {
    bool operator()(const GlobalEvent& a, const GlobalEvent& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  bool legacy() const { return shards_.size() == 1; }
  Time NextGlobalTime() const {
    return global_events_.empty() ? kNever : global_events_.front().when;
  }
  // Pops and runs every global event with when <= upto (coordinator context,
  // workers parked, all shard clocks == upto or beyond their last event).
  void RunGlobalEvents(Time upto);
  void RunBarrierTasks();
  // Merges every outbox into destination wheels in (when, src, seq) order.
  // Fast path: when no cross-shard traffic occurred in the window (by far the
  // common case in compute-heavy windows), one empty-check per outbox is the
  // whole barrier cost — no scratch copy, no sort.
  void DrainMailboxes();
  // Earliest next event over all shards (mailboxes are already drained into
  // wheels, so shard NextEventTime covers them).  Also refreshes
  // next_event_cache_, which the immediately following RunWindow uses to
  // skip shards with nothing due in the window.
  Time MinNextEvent();
  // Runs one window [.., window_end] across all shards, on the worker pool
  // when it exists, inline otherwise; rethrows the lowest-shard process
  // error afterwards.  With allow_idle_skip, shards whose cached next event
  // lies beyond window_end are not run at all: they provably have nothing to
  // dispatch (cross-window traffic lands strictly after window_end by the
  // lookahead contract), so skipping changes no observable — only the
  // skipped shard's clock, which lags until the RunUntil tail or the
  // quiescence catch-up advances it.  The skip decision is a pure function
  // of cached simulated times, so it is identical across thread counts.
  // Global windows pass false: RunGlobalEvents' contract is that every clock
  // has reached the instant before a stop-the-world callback runs.
  void RunWindow(Time window_end, bool allow_idle_skip);
  void RunShardsInline(Time window_end);
  void WorkerMain(int worker_index);
  void StopWorkers();
  void RethrowFirstShardError();

  ShardSetOptions options_;
  int threads_ = 1;
  std::vector<std::unique_ptr<Scheduler>> shards_;
  std::vector<Outbox> outboxes_;              // index = src shard
  std::vector<MailboxEntry> drain_scratch_;   // reused merge buffer
  // Per-shard NextEventTime snapshot taken by MinNextEvent; consumed by the
  // next RunWindow's idle-skip test.  Coordinator-written before the round
  // is published, worker-read after — the barrier mutex orders the two.
  std::vector<Time> next_event_cache_;
  std::vector<GlobalEvent> global_events_;    // min-heap (std::push/pop_heap)
  std::vector<ShardBarrierTask*> barrier_tasks_;
  std::vector<std::exception_ptr> shard_errors_;
  uint64_t next_global_seq_ = 0;
  uint64_t global_events_run_ = 0;
  uint64_t windows_ = 0;
  uint64_t cross_shard_messages_ = 0;
  uint64_t idle_shard_skips_ = 0;
  uint64_t empty_mailbox_barriers_ = 0;
  // Whether the current window may skip idle shards (published with
  // window_end_ under mu_ for the worker pool).
  bool skip_idle_ = false;
  // Window currently (or most recently) executed; cross-shard posts must
  // deliver strictly after it.  Published before workers are released.
  Time window_end_ = 0;
  bool shut_down_ = false;

  // --- Worker-pool barrier protocol (multi-shard only) -----------------------
  // Coordinator publishes (round_, window_end_) under mu_ and wakes workers;
  // each worker runs its statically-assigned shards to window_end_, then
  // reports done.  stop_ tears the pool down.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t round_ = 0;
  int workers_busy_ = 0;
  bool stop_ = false;
};

}  // namespace pandora

#endif  // PANDORA_SRC_RUNTIME_SHARD_SET_H_
