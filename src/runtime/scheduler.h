// Discrete-event cooperative scheduler with a simulated microsecond clock.
//
// Models the aspects of the Inmos transputer runtime that the Pandora design
// depends on (paper section 3.1): two hardware priority levels, very cheap
// context switches, channel rendezvous synchronisation and a timer with one
// microsecond resolution.  The clock only advances when no process is
// runnable, so an 8-second clawback experiment simulates in milliseconds of
// wall time, deterministically.
//
// The hot path is allocation-free in the steady state: timers are intrusive
// nodes in a hierarchical wheel (timer_wheel.h), timer callbacks are inline
// callables (callback.h), process records recycle through a slab the moment
// a process finishes, and ready queues are intrusive lists threaded through
// the records themselves.  See DESIGN.md section 10.
#ifndef PANDORA_SRC_RUNTIME_SCHEDULER_H_
#define PANDORA_SRC_RUNTIME_SCHEDULER_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "src/runtime/callback.h"
#include "src/runtime/process.h"
#include "src/runtime/time.h"
#include "src/runtime/timer_wheel.h"
#include "src/trace/trace.h"

namespace pandora {

// Handle to a pending timer; allows cancellation (used by Alt timeouts).
// Holds the wheel node plus its generation at arm time, so cancelling after
// the timer fired (and the node was recycled into a new timer) is a no-op.
class TimerHandle {
 public:
  TimerHandle() = default;

  void Cancel() {
    if (wheel_ != nullptr) {
      wheel_->Cancel(node_, generation_);
      wheel_ = nullptr;
      node_ = nullptr;
    }
  }
  bool active() const { return wheel_ != nullptr && wheel_->IsActive(node_, generation_); }

 private:
  friend class Scheduler;
  TimerHandle(TimerWheel* wheel, TimerNode* node)
      : wheel_(wheel), node_(node), generation_(node->generation) {}

  TimerWheel* wheel_ = nullptr;
  TimerNode* node_ = nullptr;
  uint64_t generation_ = 0;
};

// Something (a channel) holding parked values that must be dropped when the
// scheduler stops the world.  A parked rendezvous value may reference
// resources (e.g. a SegmentRef into a BufferPool) that die before the
// channel object itself does; Shutdown() drains registered participants
// while those resources are still alive.
class ShutdownParticipant {
 public:
  // Called during Scheduler::Shutdown, after all coroutine frames have been
  // destroyed.  Drop parked values; nothing will run afterwards.
  virtual void OnSchedulerShutdown() = 0;

  // Kill-sweep hooks for Scheduler::KillProcesses (fault injection: a box
  // crash destroys its processes mid-run while the rest of the world keeps
  // going).  Victims are marked ctx->killed before either hook runs.
  //
  // Phase 1, before the victims' frames are destroyed: remove parked
  // *waiters* (receivers) belonging to killed processes, so that
  // destructors running during frame teardown (e.g. a SegmentRef returning
  // a buffer to its pool) cannot hand a value to a process that will never
  // resume.  Do not destroy values here.
  virtual void OnProcessesKilled() {}
  // Phase 2, after the victims' frames are destroyed: drop parked values
  // belonging to killed processes (a killed sender's payload, a delivery a
  // killed receiver never claimed).
  virtual void OnKilledFramesDestroyed() {}

 protected:
  ~ShutdownParticipant() = default;
};

class Scheduler {
 public:
  Scheduler();
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // --- Process management -------------------------------------------------

  // Takes ownership of the coroutine and queues it for execution.  The name
  // is copied into the (recycled) process record, so per-event spawn sites
  // should pass a precomputed string rather than concatenating one.
  ProcessHandle Spawn(Process process, std::string_view name, Priority priority = Priority::kLow);

  // The process currently being executed (valid only from inside awaitables
  // running on this scheduler).
  ProcessCtx* current() const { return current_; }

  // Moves a parked process back onto its ready queue.
  void Ready(ProcessCtx* ctx);

  // --- Clock & timers ------------------------------------------------------

  Time now() const { return now_; }

  // Schedules `fire` to run (in scheduler context, not process context) when
  // the clock reaches `when`.  The callback must fit TimerCallback's inline
  // budget (enforced at compile time).
  TimerHandle AddTimer(Time when, TimerCallback fire) {
    return TimerHandle(&wheel_, wheel_.Add(when, fire));
  }

  // Timers armed but not yet fired or cancelled (regression surface for the
  // cancel-unlink guarantee: cancelled timers leave immediately).
  size_t pending_timer_count() const { return wheel_.pending_count(); }

  // Simulated time of the next thing this scheduler would do: now() if any
  // process is runnable, else the earliest pending timer deadline (clamped
  // to now(); the clock never moves backwards), else kNever.  The ShardSet
  // conservative-sync loop derives each window from the minimum of these
  // across shards.
  Time NextEventTime() const {
    for (int p = 0; p < kNumPriorities; ++p) {
      if (ready_head_[p] != nullptr) {
        return now_;
      }
    }
    const Time deadline = wheel_.NextDeadline();
    if (deadline == kNever) {
      return kNever;
    }
    return deadline < now_ ? now_ : deadline;
  }

  // --- Running -------------------------------------------------------------

  // Runs until no process is runnable and no timer is pending.
  void RunUntilQuiescent();

  // Runs until the clock would pass `limit`; on return now() <= limit.  If
  // the system goes quiescent earlier, returns early with now() == limit
  // only when a timer or runnable work reached it; otherwise leaves the
  // clock at the quiescence point advanced to `limit`.
  void RunUntil(Time limit);
  void RunFor(Duration d) { RunUntil(now_ + d); }

  // If true (default), an unhandled exception escaping a process is
  // re-thrown out of the Run* call that observed it.
  void set_rethrow_process_errors(bool v) { rethrow_process_errors_ = v; }

  // Destroys all live coroutine frames and pending timers.  Call before
  // destroying channels/pools that parked processes may reference; the
  // destructor calls it as a last resort.  Nothing may run afterwards.
  void Shutdown();
  bool shutting_down() const { return shutting_down_; }

  // Destroys the frames of every live process matching `predicate`, mid-run,
  // without stopping the world (fault injection: a crashing box takes down
  // exactly its own processes).  Parked state the victims left in channels
  // is swept via the ShutdownParticipant kill hooks; the victims' wakeup
  // timers are left to fire harmlessly.  Must not be called from inside a
  // process that matches the predicate.  Returns the number killed.
  size_t KillProcesses(const std::function<bool(const ProcessCtx&)>& predicate);

  // Channels register so Shutdown can drain their parked values (see
  // ShutdownParticipant).  Unregister is safe at any time, including from
  // inside another participant's OnSchedulerShutdown.
  void RegisterShutdownParticipant(ShutdownParticipant* participant);
  void UnregisterShutdownParticipant(ShutdownParticipant* participant);

  // --- Awaitables ----------------------------------------------------------

  // co_await sched.WaitUntil(t): suspend until the simulated clock reaches t.
  auto WaitUntil(Time when) {
    struct Awaiter {
      Scheduler* sched;
      Time when;
      bool await_ready() const { return when <= sched->now_; }
      void await_suspend(std::coroutine_handle<> h) {
        ProcessCtx* ctx = sched->current_;
        ctx->resume_point = h;
        // The closure holds ctx raw; pending_timers keeps the slab slot
        // from being recycled past a kill (see ProcessCtx::pending_timers).
        ++ctx->pending_timers;
        Scheduler* s = sched;
        sched->AddTimer(when, TimerCallback([s, ctx] { s->OnWaitTimerFired(ctx); }));
      }
      void await_resume() const {}
    };
    return Awaiter{this, when};
  }

  auto WaitFor(Duration d) { return WaitUntil(now_ + d); }

  // co_await sched.Yield(): requeue behind peers of the same priority.
  auto Yield() {
    struct Awaiter {
      Scheduler* sched;
      bool await_ready() const { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        ProcessCtx* ctx = sched->current_;
        ctx->resume_point = h;
        sched->Ready(ctx);
      }
      void await_resume() const {}
    };
    return Awaiter{this};
  }

  // --- Housekeeping ---------------------------------------------------------

  // Completed processes are recycled automatically the moment they finish
  // (their slab slot returns to the free list), so there is nothing left to
  // prune.  Kept as a no-op shim for callers written against the manual
  // sweep; always returns 0.
  size_t PruneCompleted() { return 0; }

  // --- Telemetry -----------------------------------------------------------

  // The scheduler-owned trace recorder, bound to this scheduler's simulated
  // clock.  Always non-null; disabled (and therefore free) unless Enable()
  // was called or the PANDORA_TRACE environment variable was set at
  // construction (capacity override: PANDORA_TRACE_EVENTS).
  TraceRecorder* trace() const { return trace_.get(); }

  // --- Statistics ----------------------------------------------------------

  uint64_t context_switches() const { return context_switches_; }
  // Logical events handled: one per dispatch, plus one per element a batch
  // drain absorbed beyond its first (each such element replaced a dispatch
  // the unbatched engine would have paid — see Channel::TryReceiveBatch).
  // Throughput benches report events()/s so batched and unbatched engines
  // are compared on work delivered, not on wakeups burned.
  uint64_t events() const { return context_switches_ + batched_events_; }
  // Called by batch drain primitives with the count of elements that rode
  // along in an already-dispatched wakeup.
  void CountBatchedEvents(uint64_t n) { batched_events_ += n; }
  size_t live_process_count() const { return live_processes_; }
  // Process records currently held (live, or completed-with-error awaiting
  // CheckError, or killed-with-pending-timers).  Recycling keeps this near
  // the live count instead of growing with every spawn.
  size_t tracked_process_count() const { return in_use_processes_; }

 private:
  friend struct Process::promise_type::FinalAwaiter;

  void OnProcessDone(ProcessCtx* ctx);
  // Fired by WaitUntil's timer: releases the timer's pin on the slab slot
  // and either resumes the process or recycles a finished one.
  void OnWaitTimerFired(ProcessCtx* ctx);
  ProcessCtx* AllocCtx();
  void RecycleCtx(ProcessCtx* ctx);
  ProcessCtx* PopReady();
  // Runs one process slice; false if nothing is runnable.
  bool DispatchOne();
  // Fires timers due at or before `limit` after advancing the clock to the
  // earliest pending timer.  Returns false if no timer is pending within
  // `limit`.
  bool AdvanceToNextTimer(Time limit);

  Time now_ = 0;
  ProcessCtx* current_ = nullptr;
  // Intrusive FIFO ready queues, one per priority, linked via
  // ProcessCtx::next_ready.
  ProcessCtx* ready_head_[kNumPriorities] = {};
  ProcessCtx* ready_tail_[kNumPriorities] = {};
  TimerWheel wheel_;
  // Process slab: records are deque-backed (stable addresses), recycled
  // through an intrusive free list, and threaded onto an active list in
  // spawn order (kill/shutdown sweeps depend on that order).
  std::deque<ProcessCtx> process_slab_;
  ProcessCtx* free_ctx_ = nullptr;
  ProcessCtx* active_head_ = nullptr;
  ProcessCtx* active_tail_ = nullptr;
  size_t in_use_processes_ = 0;
  size_t live_processes_ = 0;
  uint64_t context_switches_ = 0;
  uint64_t batched_events_ = 0;
  bool rethrow_process_errors_ = true;
  bool shutting_down_ = false;
  std::vector<ShutdownParticipant*> shutdown_participants_;
  std::unique_ptr<TraceRecorder> trace_;
  TraceSiteId trace_cs_site_ = 0;  // "sched.context_switches" counter
};

// Declare after the resources a test's processes reference and it will stop
// the world first:
//   Scheduler sched;
//   BufferPool pool(&sched, ...);
//   ShutdownGuard guard(&sched);  // destroyed first -> frames die before pool
class ShutdownGuard {
 public:
  explicit ShutdownGuard(Scheduler* sched) : sched_(sched) {}
  ~ShutdownGuard() { sched_->Shutdown(); }
  ShutdownGuard(const ShutdownGuard&) = delete;
  ShutdownGuard& operator=(const ShutdownGuard&) = delete;

 private:
  Scheduler* sched_;
};

}  // namespace pandora

#endif  // PANDORA_SRC_RUNTIME_SCHEDULER_H_
