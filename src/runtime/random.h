// Seeded randomness for deterministic simulations.
//
// All nondeterminism in the reproduction (network jitter, loss injection,
// signal noise) flows from explicitly seeded generators so that every test
// and benchmark is exactly reproducible.
#ifndef PANDORA_SRC_RUNTIME_RANDOM_H_
#define PANDORA_SRC_RUNTIME_RANDOM_H_

#include <cstdint>
#include <random>

namespace pandora {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform in [0, 1).
  double Uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  bool Bernoulli(double p) {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return std::bernoulli_distribution(p)(engine_);
  }

  // Derives an independent generator (for per-stream noise sources).
  Rng Fork() { return Rng(engine_()); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pandora

#endif  // PANDORA_SRC_RUNTIME_RANDOM_H_
